package geostat_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"geostat/internal/dataset"
	"geostat/internal/geom"
	"geostat/internal/kde"
	"geostat/internal/kernel"
	"geostat/internal/kfunc"
	"geostat/internal/parallel"
	"geostat/internal/serve"
	"geostat/internal/shard"
	"geostat/internal/shard/shardtest"
)

// Sharded-execution determinism: the coordinator must reproduce the
// single-node KDV raster and K-function plot Float64bits-for-Float64bits
// across every tile decomposition, worker count, and tile completion
// order — including runs where faults force retries and failovers. The
// merge is pure row placement and the workers evaluate exact subsets, so
// nothing about the schedule may leak into the output.

var shardBox = geom.BBox{MinX: 0, MinY: 0, MaxX: 120, MaxY: 90}

func shardData(t *testing.T, n int) *dataset.Dataset {
	t.Helper()
	r := rand.New(rand.NewSource(4242))
	return dataset.GaussianClusters(r, n, shardBox, []dataset.Cluster{
		{Center: geom.Point{X: 35, Y: 50}, Sigma: 9, Weight: 2},
		{Center: geom.Point{X: 90, Y: 25}, Sigma: 6, Weight: 1},
	}, 0.25)
}

func shardCluster(t *testing.T, n int, cfg shard.Config) (*shard.Coordinator, []*shardtest.Worker) {
	t.Helper()
	workers := make([]*shardtest.Worker, n)
	for i := range workers {
		workers[i] = shardtest.NewWorker(t, serve.Config{Workers: 2})
		cfg.Workers = append(cfg.Workers, workers[i].URL())
	}
	client := &http.Client{}
	t.Cleanup(client.CloseIdleConnections)
	cfg.Client = client
	c, err := shard.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, workers
}

func sameBits(t *testing.T, want, got []float64, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d values, want %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s: index %d: %x != %x (%g vs %g)", label, i,
				math.Float64bits(got[i]), math.Float64bits(want[i]), got[i], want[i])
		}
	}
}

// TestShardedKDVDeterminismMatrix sweeps tile decompositions against
// worker counts. Every cell must match the same single-node raster.
func TestShardedKDVDeterminismMatrix(t *testing.T) {
	d := shardData(t, 350)
	req := shard.KDVRequest{
		Kernel: kernel.MustNew(kernel.Quartic, 10),
		Grid:   geom.NewPixelGrid(shardBox, 18, 15),
	}
	ref, err := kde.NaiveCols(d.Columns(), kde.Options{Kernel: req.Kernel, Grid: req.Grid})
	if err != nil {
		t.Fatal(err)
	}

	for _, tiles := range [][2]int{{1, 1}, {2, 2}, {3, 3}} {
		for _, nw := range []int{1, 2, 4} {
			name := fmt.Sprintf("%dx%d-tiles_%d-workers", tiles[0], tiles[1], nw)
			t.Run(name, func(t *testing.T) {
				c, _ := shardCluster(t, nw, shard.Config{Replication: 2})
				r := req
				r.TilesX, r.TilesY = tiles[0], tiles[1]
				got, err := c.KDV(context.Background(), d, "det", r)
				if err != nil {
					t.Fatal(err)
				}
				sameBits(t, ref.Values, got.Values, name)
			})
		}
	}
}

// TestShardedKDVCompletionOrderInvariance delays tiles by different,
// per-run-scrambled amounts so completion order is shuffled, and runs one
// permutation with injected retries on top. The merged raster must not
// care when (or on which attempt) each tile landed.
func TestShardedKDVCompletionOrderInvariance(t *testing.T) {
	d := shardData(t, 300)
	req := shard.KDVRequest{
		Kernel: kernel.MustNew(kernel.Epanechnikov, 12),
		Grid:   geom.NewPixelGrid(shardBox, 18, 15),
		TilesX: 3, TilesY: 3,
	}
	ref, err := kde.NaiveCols(d.Columns(), kde.Options{Kernel: req.Kernel, Grid: req.Grid})
	if err != nil {
		t.Fatal(err)
	}

	delayPerms := [][]time.Duration{
		{0, 40, 80, 10, 70, 20, 60, 30, 50},
		{80, 0, 50, 70, 10, 60, 20, 40, 30},
		{30, 60, 0, 50, 80, 10, 70, 20, 40},
	}
	for perm, delays := range delayPerms {
		injectRetries := perm == 2 // last permutation also takes the fault path
		name := fmt.Sprintf("perm-%d", perm)
		if injectRetries {
			name += "-with-retries"
		}
		t.Run(name, func(t *testing.T) {
			c, workers := shardCluster(t, 2, shard.Config{
				Replication: 2, Retries: 3, Backoff: time.Millisecond, Concurrency: 9,
			})
			for tile, ms := range delays {
				for _, w := range workers {
					w.Script(shardtest.Rule{
						Tool:  "kdv",
						Tile:  tileParam(req, tile),
						Times: 1,
						Delay: time.Duration(ms) * time.Millisecond / 4,
					})
				}
			}
			if injectRetries {
				workers[0].Script(shardtest.Rule{Tool: "kdv", Times: 2, Status: http.StatusServiceUnavailable})
				workers[1].Script(shardtest.Rule{Tool: "kdv", Times: 1, Corrupt: true})
			}
			got, err := c.KDV(context.Background(), d, "det", req)
			if err != nil {
				t.Fatal(err)
			}
			sameBits(t, ref.Values, got.Values, name)
		})
	}
}

// tileParam reproduces the tile= query value the planner emits for tile
// id over req's grid, so delay rules can target individual tiles.
func tileParam(req shard.KDVRequest, id int) string {
	tx := req.TilesX
	ix, iy := id%tx, id/tx
	x0 := ix * req.Grid.NX / tx
	y0 := iy * req.Grid.NY / req.TilesY
	nx := (ix+1)*req.Grid.NX/tx - x0
	ny := (iy+1)*req.Grid.NY/req.TilesY - y0
	return fmt.Sprintf("%d,%d,%d,%d", x0, y0, nx, ny)
}

// TestShardedKFunctionDeterminismMatrix sweeps band-batch sizes against
// worker counts; the merged plot (including Monte-Carlo envelopes) must
// equal the single-node plot exactly because simulation draws depend only
// on (seed, sim index), never on the band partition.
func TestShardedKFunctionDeterminismMatrix(t *testing.T) {
	d := shardData(t, 180)
	thresholds := []float64{4, 8, 12, 16, 20, 24, 28, 32, 36}
	plot, err := kfunc.MakePlot(d.Points(), kfunc.PlotOptions{
		Thresholds: thresholds, Simulations: 4,
	}, parallel.NewRand(99))
	if err != nil {
		t.Fatal(err)
	}

	for _, bands := range []int{1, 2, 4, 9} {
		for _, nw := range []int{1, 2, 4} {
			name := fmt.Sprintf("%d-bands_%d-workers", bands, nw)
			t.Run(name, func(t *testing.T) {
				c, _ := shardCluster(t, nw, shard.Config{Replication: 2})
				got, err := c.KFunction(context.Background(), d, "det", shard.KFuncRequest{
					Thresholds: thresholds, Sims: 4, Seed: 99, Bands: bands,
				})
				if err != nil {
					t.Fatal(err)
				}
				sameBits(t, plot.S, got.S, name+" s")
				sameBits(t, plot.K, got.K, name+" k")
				sameBits(t, plot.Lo, got.Lo, name+" lo")
				sameBits(t, plot.Hi, got.Hi, name+" hi")
			})
		}
	}
}
