package geostat

// One benchmark family per paper artifact / complexity claim, mirroring the
// per-experiment index in DESIGN.md (run `go test -bench=. -benchmem`;
// cmd/geobench prints the same comparisons as human-readable tables):
//
//	T2 -> BenchmarkKDVKernels          F1/F5 -> BenchmarkHeatmapRender
//	F2 -> BenchmarkKFunctionPlot       F3    -> BenchmarkNKDV
//	F4 -> BenchmarkSTKDV               F6    -> BenchmarkSTKFunction
//	C1 -> BenchmarkKFunctionScaling    C2    -> BenchmarkKDVScaling
//	C3 -> BenchmarkKDVApprox           C4    -> BenchmarkKDVSample
//	C5 -> BenchmarkKDVParallel + BenchmarkKFunctionParallel
//	C6 -> BenchmarkNetworkKFunction    C7    -> BenchmarkIDW
//	C8 -> BenchmarkKriging, BenchmarkMoran, BenchmarkGetisOrd, BenchmarkDBSCAN

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

var benchBox = BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}

func benchPoints(n int) []Point {
	rng := rand.New(rand.NewSource(1234))
	return GaussianClusters(rng, n, benchBox, []GaussianCluster{
		{Center: Point{X: 30, Y: 60}, Sigma: 8, Weight: 2},
		{Center: Point{X: 70, Y: 25}, Sigma: 5, Weight: 1},
	}, 0.3).Points()
}

// T2: one exact KDV per kernel type (auto-dispatched algorithm).
func BenchmarkKDVKernels(b *testing.B) {
	pts := benchPoints(5000)
	grid := NewPixelGrid(benchBox, 64, 64)
	for _, kt := range AllKernels() {
		b.Run(kt.String(), func(b *testing.B) {
			opt := KDVOptions{Kernel: MustKernel(kt, 8), Grid: grid}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := KDV(pts, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// C2: KDV scaling — naive vs grid-cutoff vs sweep-line over n.
func BenchmarkKDVScaling(b *testing.B) {
	grid := NewPixelGrid(benchBox, 128, 128)
	k := MustKernel(Quartic, 4)
	for _, n := range []int{2000, 8000, 32000} {
		pts := benchPoints(n)
		for _, m := range []KDVMethod{KDVNaive, KDVGridCutoff, KDVSweepLine} {
			b.Run(fmt.Sprintf("%s/n=%d", m, n), func(b *testing.B) {
				opt := KDVOptions{Kernel: k, Grid: grid, Method: m}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := KDV(pts, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// C3: bound-based (1±ε) approximation on the Gaussian kernel.
func BenchmarkKDVApprox(b *testing.B) {
	pts := benchPoints(20000)
	grid := NewPixelGrid(benchBox, 64, 64)
	k := MustKernel(Gaussian, 8)
	b.Run("naive-exact", func(b *testing.B) {
		opt := KDVOptions{Kernel: k, Grid: grid, Method: KDVNaive}
		for i := 0; i < b.N; i++ {
			if _, err := KDV(pts, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, eps := range []float64{0.5, 0.1, 0.01} {
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			opt := KDVOptions{Kernel: k, Grid: grid, Method: KDVBoundApprox, Epsilon: eps}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := KDV(pts, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// C4: Hoeffding-sampled KDV; cost is n-independent.
func BenchmarkKDVSample(b *testing.B) {
	grid := NewPixelGrid(benchBox, 64, 64)
	k := MustKernel(Quartic, 8)
	for _, n := range []int{20000, 100000} {
		pts := benchPoints(n)
		b.Run(fmt.Sprintf("exact/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := KDV(pts, KDVOptions{Kernel: k, Grid: grid}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("sampled/n=%d", n), func(b *testing.B) {
			opt := KDVOptions{
				Kernel: k, Grid: grid, Method: KDVSampled,
				Epsilon: 0.05, Delta: 0.01, Seed: 9,
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := KDV(pts, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// C5a: row-parallel KDV.
func BenchmarkKDVParallel(b *testing.B) {
	pts := benchPoints(20000)
	grid := NewPixelGrid(benchBox, 256, 256)
	k := MustKernel(Quartic, 4)
	for _, w := range []int{1, -1} {
		name := "serial"
		if w < 0 {
			name = "all-cores"
		}
		b.Run(name, func(b *testing.B) {
			opt := KDVOptions{Kernel: k, Grid: grid, Method: KDVGridCutoff, Workers: w}
			for i := 0; i < b.N; i++ {
				if _, err := KDV(pts, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// C1: K-function scaling — naive vs indexed vs one-pass curve.
func BenchmarkKFunctionScaling(b *testing.B) {
	thresholds := []float64{1, 2, 4, 8}
	for _, n := range []int{2000, 8000} {
		pts := benchPoints(n)
		b.Run(fmt.Sprintf("naive/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				KFunctionNaive(pts, 4)
			}
		})
		b.Run(fmt.Sprintf("grid/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				KFunction(pts, 4)
			}
		})
		b.Run(fmt.Sprintf("kdtree/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				KFunctionKDTree(pts, 4)
			}
		})
		b.Run(fmt.Sprintf("curve4/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := KFunctionCurve(pts, thresholds, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// C5b: parallel one-pass K-curve.
func BenchmarkKFunctionParallel(b *testing.B) {
	pts := benchPoints(30000)
	thresholds := []float64{1, 2, 4, 8}
	for _, w := range []int{1, -1} {
		name := "serial"
		if w < 0 {
			name = "all-cores"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := KFunctionCurve(pts, thresholds, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// F2: the full Definition 3 plot (curve + L simulated envelopes).
func BenchmarkKFunctionPlot(b *testing.B) {
	pts := benchPoints(2000)
	opt := KPlotOptions{
		Thresholds:  []float64{2, 4, 6, 8, 10},
		Simulations: 19,
		Window:      benchBox,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := KFunctionPlot(pts, opt, rand.New(rand.NewSource(7))); err != nil {
			b.Fatal(err)
		}
	}
}

// F3: network KDV, baseline vs event-expansion.
func BenchmarkNKDV(b *testing.B) {
	g := GridNetwork(10, 10, 10, Point{})
	events := ClusteredNetworkEvents(g, 1000, 4, 6, 3)
	opt := NKDVOptions{Kernel: MustKernel(Quartic, 15), LixelLength: 2}
	b.Run("naive-per-lixel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := NKDVNaive(g, events, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("forward-per-event", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := NKDV(g, events, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// C6: network K-function, per-pair baseline vs shared bounded Dijkstra.
func BenchmarkNetworkKFunction(b *testing.B) {
	g := GridNetwork(15, 15, 10, Point{})
	events := RandomNetworkEvents(g, 800, 4)
	thresholds := []float64{5, 10, 20, 40}
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			NetworkKFunction(g, events, 40)
		}
	})
	b.Run("curve", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := NetworkKFunctionCurve(g, events, thresholds, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchSTData(n int) *Dataset {
	rng := rand.New(rand.NewSource(5))
	return SpatioTemporalOutbreak(rng, n, benchBox, 0, 60, []OutbreakWave{
		{Center: Point{X: 25, Y: 30}, Sigma: 6, TimeMean: 15, TimeSigma: 5, Weight: 1},
		{Center: Point{X: 70, Y: 70}, Sigma: 6, TimeMean: 45, TimeSigma: 5, Weight: 1},
	}, 0.1)
}

// F4: STKDV, naive O(XYTn) vs shared footprints.
func BenchmarkSTKDV(b *testing.B) {
	d := benchSTData(5000)
	opt := STKDVOptions{
		SpaceKernel: MustKernel(Quartic, 8),
		TimeKernel:  MustKernel(Epanechnikov, 8),
		Grid:        NewPixelGrid(benchBox, 64, 64),
		Times:       []float64{5, 15, 25, 35, 45, 55},
	}
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := STKDVNaive(d, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("shared", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := STKDV(d, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// F6: the spatiotemporal K surface, naive per-cell vs one-pass histogram.
func BenchmarkSTKFunction(b *testing.B) {
	d := benchSTData(4000)
	sTh := []float64{2, 4, 8, 16}
	tTh := []float64{2, 5, 10, 20}
	b.Run("naive-per-cell", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, s := range sTh {
				for _, t := range tTh {
					STKFunction(d.Points(), d.Times(), s, t)
				}
			}
		}
	})
	b.Run("surface-one-pass", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := STKFunctionSurface(d.Points(), d.Times(), sTh, tTh, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// C7: IDW variants.
func BenchmarkIDW(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	d := UniformCSR(rng, 20000, benchBox)
	WithField(rng, d, func(p Point) float64 { return p.X + p.Y }, 1)
	opt := IDWOptions{Grid: NewPixelGrid(benchBox, 128, 128), Power: 2}
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := IDW(d, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("knn12", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := IDWKNN(d, opt, 12); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("radius8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := IDWRadius(d, opt, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// C8a: ordinary kriging by neighbourhood size.
func BenchmarkKriging(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	d := UniformCSR(rng, 3000, benchBox)
	WithField(rng, d, func(p Point) float64 { return p.X/10 + p.Y/20 }, 0.5)
	bins, err := EmpiricalVariogram(d, 30, 12)
	if err != nil {
		b.Fatal(err)
	}
	v, err := FitVariogram(bins, SphericalModel)
	if err != nil {
		b.Fatal(err)
	}
	grid := NewPixelGrid(benchBox, 48, 48)
	for _, k := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			opt := KrigingOptions{Grid: grid, Variogram: v, Neighbors: k}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Krige(d, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// C8b: Moran's I with permutations.
func BenchmarkMoran(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	d := UniformCSR(rng, 5000, benchBox)
	WithField(rng, d, func(p Point) float64 { return p.X }, 1)
	w, err := KNNWeights(d.Points(), 8)
	if err != nil {
		b.Fatal(err)
	}
	for _, perms := range []int{0, 99} {
		b.Run(fmt.Sprintf("perms=%d", perms), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := MoranI(d.Values(), w, perms, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// C8c: Getis-Ord General G and local Gi*.
func BenchmarkGetisOrd(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	d := UniformCSR(rng, 5000, benchBox)
	WithField(rng, d, func(p Point) float64 { return p.X + 100 }, 1)
	w, err := KNNWeights(d.Points(), 8)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("generalG-perms99", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := GeneralG(d.Values(), w, 99, 7); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("localGstar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := LocalGStar(d.Values(), w); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// C8d: DBSCAN, naive vs grid-accelerated.
func BenchmarkDBSCAN(b *testing.B) {
	pts := benchPoints(8000)
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := DBSCANNaive(pts, 2, 5); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("grid", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := DBSCAN(pts, 2, 5); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// F1/F5: heatmap rendering pipeline (surface -> PNG bytes).
func BenchmarkHeatmapRender(b *testing.B) {
	pts := benchPoints(10000)
	hm, err := KDV(pts, KDVOptions{
		Kernel: MustKernel(Quartic, 6),
		Grid:   NewPixelGrid(benchBox, 256, 256),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		img := hm.Image(HeatRamp)
		if img.Bounds().Dx() != 256 {
			b.Fatal("bad image")
		}
	}
}

// C1 sidebar: the same K count through all four index structures.
func BenchmarkKFunctionIndexes(b *testing.B) {
	pts := benchPoints(10000)
	const s = 4.0
	for name, fn := range map[string]func([]Point, float64) int{
		"grid":     KFunction,
		"kdtree":   KFunctionKDTree,
		"balltree": KFunctionBallTree,
		"rtree":    KFunctionRTree,
	} {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fn(pts, s)
			}
		})
	}
}

// Tentpole: the unified parallel engine at Workers ∈ {1, GOMAXPROCS}.
// Results are bit-identical across worker counts (see determinism_test.go);
// these measure the speedup side of that contract.

// Moran's I with a 999-permutation test over ≥20k sites.
func BenchmarkMoranParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	d := UniformCSR(rng, 20000, benchBox)
	WithField(rng, d, func(p Point) float64 { return p.X }, 1)
	w, err := KNNWeights(d.Points(), 8)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opt := MoranOptions{Perms: 999, Seed: 11, Workers: workers}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := MoranIOpt(d.Values(), w, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// K-function plot: 99 CSR envelope simulations fanned out across workers.
func BenchmarkKPlotParallel(b *testing.B) {
	pts := benchPoints(4000)
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opt := KPlotOptions{
				Thresholds:  []float64{2, 4, 6, 8, 10},
				Simulations: 99,
				Window:      benchBox,
				Workers:     workers,
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := KFunctionPlot(pts, opt, rand.New(rand.NewSource(7))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Weight-matrix construction over 50k sites.
func BenchmarkWeightsParallel(b *testing.B) {
	pts := benchPoints(50000)
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("knn/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := KNNWeightsWorkers(pts, 8, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("band/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := DistanceBandWeightsWorkers(pts, 2, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
