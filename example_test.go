package geostat_test

import (
	"fmt"
	"math/rand"

	"geostat"
)

// Build a heatmap and locate the hotspot — the Definition 1 workflow.
func ExampleKDV() {
	rng := rand.New(rand.NewSource(42))
	region := geostat.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	data := geostat.GaussianClusters(rng, 5000, region, []geostat.GaussianCluster{
		{Center: geostat.Point{X: 30, Y: 70}, Sigma: 5, Weight: 1},
	}, 0.2)

	heat, err := geostat.KDV(data.Points(), geostat.KDVOptions{
		Kernel: geostat.MustKernel(geostat.Quartic, 8),
		Grid:   geostat.NewPixelGrid(region, 100, 100),
	})
	if err != nil {
		panic(err)
	}
	ix, iy, _ := heat.ArgMax()
	c := heat.Spec.Center(ix, iy)
	fmt.Printf("hotspot near (%.0f, %.0f)\n", c.X, c.Y)
	// Output: hotspot near (30, 70)
}

// Test whether apparent hotspots are statistically meaningful — the
// Definition 3 workflow (Figure 2's reading).
func ExampleKFunctionPlot() {
	rng := rand.New(rand.NewSource(7))
	region := geostat.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	clustered := geostat.MaternCluster(rng, region, 0.004, 25, 3)
	random := geostat.UniformCSR(rng, clustered.N(), region)

	opt := geostat.KPlotOptions{
		Thresholds:  []float64{5},
		Simulations: 19,
		Window:      region,
	}
	p1, _ := geostat.KFunctionPlot(clustered.Points(), opt, rng)
	p2, _ := geostat.KFunctionPlot(random.Points(), opt, rng)
	fmt.Println("Matérn process:", p1.RegimeAt(0))
	fmt.Println("uniform process:", p2.RegimeAt(0))
	// Output:
	// Matérn process: clustered
	// uniform process: random
}

// The spatial autocorrelation screen before interpolating sensor data.
func ExampleMoranI() {
	rng := rand.New(rand.NewSource(3))
	region := geostat.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	sensors := geostat.UniformCSR(rng, 500, region)
	geostat.WithField(rng, sensors, func(p geostat.Point) float64 { return p.X / 10 }, 0.5)

	w, _ := geostat.KNNWeights(sensors.Points(), 8)
	res, _ := geostat.MoranI(sensors.Values(), w, 99, rng)
	fmt.Printf("positive autocorrelation: %v (p < 0.05: %v)\n", res.I > 0.5, res.P < 0.05)
	// Output: positive autocorrelation: true (p < 0.05: true)
}

// Network density: events snapped to roads, density per 10 m of street.
func ExampleNKDV() {
	roads := geostat.GridNetwork(5, 5, 100, geostat.Point{})
	accidents := geostat.ClusteredNetworkEvents(roads, 500, 1, 30, 9)

	surf, err := geostat.NKDV(roads, accidents, geostat.NKDVOptions{
		Kernel:      geostat.MustKernel(geostat.Quartic, 120),
		LixelLength: 10,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d road segments scored; hottest density > 0: %v\n",
		len(surf.Lixels), surf.Values[surf.ArgMax()] > 0)
	// Output: 400 road segments scored; hottest density > 0: true
}
