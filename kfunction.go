package geostat

import (
	"context"
	"math/rand"

	"geostat/internal/kfunc"
)

// Regime classifies a dataset against a K-function envelope (Figure 2).
type Regime = kfunc.Regime

// Regime values.
const (
	RegimeRandom    = kfunc.Random
	RegimeClustered = kfunc.Clustered
	RegimeDispersed = kfunc.Dispersed
)

// KPlot is a K-function plot: observed curve plus Monte-Carlo envelopes
// (Definition 3 of the paper).
type KPlot = kfunc.Plot

// STKPlot is a spatiotemporal K-function plot (Figure 6).
type STKPlot = kfunc.STPlot

// KFunction computes K_P(s) (Definition 2; ordered pairs, i≠j) with the
// single-threshold range-query method.
func KFunction(pts []Point, s float64) int { return kfunc.GridIndexed(pts, s) }

// KFunctionNaive computes K_P(s) with the O(n²) baseline.
func KFunctionNaive(pts []Point, s float64) int { return kfunc.Naive(pts, s) }

// KFunctionKDTree computes K_P(s) with kd-tree range counts.
func KFunctionKDTree(pts []Point, s float64) int { return kfunc.KDTreeIndexed(pts, s) }

// KFunctionBallTree computes K_P(s) with ball-tree range counts.
func KFunctionBallTree(pts []Point, s float64) int { return kfunc.BallTreeIndexed(pts, s) }

// KFunctionRTree computes K_P(s) with STR R-tree range counts (the index
// layout of production GIS engines).
func KFunctionRTree(pts []Point, s float64) int { return kfunc.RTreeIndexed(pts, s) }

// KFunctionCurve computes K_P at every threshold (ascending) in one pass
// over the close pairs.
func KFunctionCurve(pts []Point, thresholds []float64, workers int) ([]int, error) {
	return kfunc.Curve(pts, thresholds, workers)
}

// KFunctionCurveCtx is KFunctionCurve with cooperative cancellation:
// workers check ctx between chunks of the pair enumeration and the call
// returns ctx.Err() (with a nil slice) when it fires. Plot construction is
// cancellable too — set KPlotOptions.Ctx.
func KFunctionCurveCtx(ctx context.Context, pts []Point, thresholds []float64, workers int) ([]int, error) {
	return kfunc.CurveCtx(ctx, pts, thresholds, workers)
}

// KPlotOptions configures KFunctionPlot.
type KPlotOptions = kfunc.PlotOptions

// KFunctionPlot computes a K-function plot with min/max envelopes over CSR
// simulations (Definition 3).
func KFunctionPlot(pts []Point, opt KPlotOptions, rng *rand.Rand) (*KPlot, error) {
	return kfunc.MakePlot(pts, opt, rng)
}

// KFunctionPlotWithNull computes a K-function plot against a caller-chosen
// null model: simulate is invoked per envelope run. Pair it with
// SampleFromIntensity over a fitted KDV for the inhomogeneous null that
// separates first-order intensity from true interaction.
func KFunctionPlotWithNull(pts []Point, opt KPlotOptions, simulate func() []Point) (*KPlot, error) {
	return kfunc.MakePlotWithNull(pts, opt, simulate)
}

// KEstimate converts a raw pair count to the classical estimator
// K̂(s) = |A|·count/(n(n−1)).
func KEstimate(count, n int, area float64) float64 { return kfunc.Estimate(count, n, area) }

// BesagL is the variance-stabilised transform L(s) = sqrt(K̂(s)/π); under
// CSR, L(s) ≈ s.
func BesagL(kHat float64) float64 { return kfunc.BesagL(kHat) }

// KFunctionBorderCorrected computes the border-corrected estimator (only
// sources whose s-disc lies inside window count).
func KFunctionBorderCorrected(pts []Point, s float64, window BBox) (kHat float64, eligible int, ok bool) {
	return kfunc.BorderCorrected(pts, s, window)
}

// CrossKFunction counts (a, b) pairs within distance s — the bivariate
// K-function numerator ("do type-a events cluster around type-b events?").
func CrossKFunction(a, b []Point, s float64) int { return kfunc.CrossCount(a, b, s) }

// CrossKFunctionCurve evaluates the cross count at every threshold in one
// pass.
func CrossKFunctionCurve(a, b []Point, thresholds []float64) ([]int, error) {
	return kfunc.CrossCurve(a, b, thresholds)
}

// CrossKFunctionPlot computes the bivariate K-function plot under the
// random-labelling null (type labels shuffled over the pooled points).
// workers fans the relabellings out across goroutines (0/1 serial, <0
// GOMAXPROCS) with envelopes bit-identical for every worker count.
func CrossKFunctionPlot(a, b []Point, thresholds []float64, sims, workers int, rng *rand.Rand) (*KPlot, error) {
	return kfunc.CrossPlot(a, b, thresholds, sims, workers, rng)
}

// KnoxResult is the Knox space-time interaction test.
type KnoxResult = kfunc.KnoxResult

// KnoxTest counts event pairs simultaneously close in space (≤ s) and time
// (≤ t) and tests the count against random time permutations — the classic
// closed-form screen that Equation 8's K(s,t) surface generalises.
// workers fans the permutations out (0/1 serial, <0 GOMAXPROCS) with the
// result bit-identical for every worker count.
func KnoxTest(pts []Point, times []float64, s, t float64, perms, workers int, rng *rand.Rand) (*KnoxResult, error) {
	return kfunc.Knox(pts, times, s, t, perms, workers, rng)
}

// QuadratResult is a chi-square quadrat test of complete spatial
// randomness.
type QuadratResult = kfunc.QuadratResult

// QuadratTest counts points in an nx×ny quadrat grid over window and
// chi-square-tests the counts against CSR (two-sided: clustering inflates
// the statistic, regularity deflates it).
func QuadratTest(pts []Point, window BBox, nx, ny int) (*QuadratResult, error) {
	return kfunc.QuadratTest(pts, window, nx, ny)
}

// ClarkEvansResult is the Clark-Evans nearest-neighbour CSR test.
type ClarkEvansResult = kfunc.ClarkEvansResult

// ClarkEvans computes the Clark-Evans aggregation index R with its normal
// test (R<1 clustered, R>1 dispersed).
func ClarkEvans(pts []Point, window BBox) (*ClarkEvansResult, error) {
	return kfunc.ClarkEvans(pts, window)
}

// STKFunction computes the spatiotemporal K-function K(s, t) (Equation 8)
// by the O(n²) definition.
func STKFunction(pts []Point, times []float64, s, t float64) int {
	return kfunc.STNaive(pts, times, s, t)
}

// STKFunctionSurface computes K(s_α, t_β) for all threshold combinations
// in one pass; entry α·len(tThresholds)+β is K(s_α, t_β).
func STKFunctionSurface(pts []Point, times []float64, sThresholds, tThresholds []float64, workers int) ([]int, error) {
	return kfunc.STSurface(pts, times, sThresholds, tThresholds, workers)
}

// STKFunctionPlot computes the Figure 6 surface-plus-envelopes for a
// spatiotemporal dataset.
func STKFunctionPlot(d *Dataset, sThresholds, tThresholds []float64, sims, workers int, rng *rand.Rand) (*STKPlot, error) {
	return kfunc.MakeSTPlot(d, sThresholds, tThresholds, sims, workers, rng)
}
