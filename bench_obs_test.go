package geostat

// Observability-overhead benchmark backing the acceptance criterion in
// DESIGN.md (Observability): a fully traced KDV request must cost within a
// few percent of the untraced call. Uninstrumented callers hit the nil-span
// fast path (obs.Trace with no active root returns a nil *Span), so the
// "plain" variant here is what every library user pays; "traced" is what
// geostatd pays per request when it opens a root span.
//
//	go test -run NONE -bench BenchmarkKDVObsOverhead -benchmem .

import (
	"context"
	"testing"

	"geostat/internal/obs"
)

func BenchmarkKDVObsOverhead(b *testing.B) {
	pts := benchPoints(8000)
	grid := NewPixelGrid(benchBox, 64, 64)
	opt := KDVOptions{Kernel: MustKernel(Quartic, 6), Method: KDVGridCutoff, Grid: grid}

	b.Run("plain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := KDVCtx(context.Background(), pts, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("traced", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctx, root := obs.NewTrace(context.Background(), "request")
			if _, err := KDVCtx(ctx, pts, opt); err != nil {
				b.Fatal(err)
			}
			root.End()
			if root.Tree() == nil {
				b.Fatal("trace recorded nothing")
			}
		}
	})
}
