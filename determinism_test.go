package geostat

import (
	"math/rand"
	"testing"
)

// Worker-count invariance: every parallel Monte-Carlo and inference path
// must give BIT-IDENTICAL results for Workers=1 and Workers=8 under the
// same seed. Each permutation/simulation draws from an RNG derived from
// (seed, task index), so the schedule cannot leak into the statistics.

const detSeed = 7001

func detValued(n int) *Dataset {
	r := rand.New(rand.NewSource(detSeed))
	d := UniformCSR(r, n, box)
	WithField(r, d, func(p Point) float64 { return p.X + p.Y/3 }, 1.0)
	return d
}

func TestMoranGlobalWorkerInvariance(t *testing.T) {
	d := detValued(300)
	w, err := KNNWeights(d.Points(), 6)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *MoranResult {
		res, err := MoranIOpt(d.Values(), w, MoranOptions{Perms: 199, Seed: detSeed, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	if a.I != b.I || a.Z != b.Z || a.P != b.P || a.PermMean != b.PermMean || a.PermStd != b.PermStd {
		t.Errorf("Moran global differs across workers:\n 1: %+v\n 8: %+v", a, b)
	}
}

func TestMoranLocalWorkerInvariance(t *testing.T) {
	d := detValued(200)
	w, err := KNNWeights(d.Points(), 6)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) []LocalMoranResult {
		out, err := LocalMoranOpt(d.Values(), w, MoranOptions{Perms: 99, Seed: detSeed, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(1), run(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("local Moran site %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGearyWorkerInvariance(t *testing.T) {
	d := detValued(300)
	w, err := KNNWeights(d.Points(), 6)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *GearyResult {
		res, err := GearyCOpt(d.Values(), w, MoranOptions{Perms: 199, Seed: detSeed, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	if *a != *b {
		t.Errorf("Geary differs across workers:\n 1: %+v\n 8: %+v", a, b)
	}
}

func TestGeneralGWorkerInvariance(t *testing.T) {
	d := detValued(300)
	w, err := DistanceBandWeights(d.Points(), 8)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *GeneralGResult {
		res, err := GeneralGOpt(d.Values(), w, GetisOrdOptions{Perms: 199, Seed: detSeed, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	if *a != *b {
		t.Errorf("General G differs across workers:\n 1: %+v\n 8: %+v", a, b)
	}
}

func TestKPlotWorkerInvariance(t *testing.T) {
	d := hotspotData(detSeed, 300)
	run := func(workers int) *KPlot {
		// Same rng seed each run so the envelope seed matches.
		p, err := KFunctionPlot(d.Points(), KPlotOptions{
			Thresholds:  []float64{2, 5, 10},
			Simulations: 19,
			Window:      box,
			Workers:     workers,
		}, rand.New(rand.NewSource(detSeed)))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := run(1), run(8)
	for i := range a.S {
		if a.K[i] != b.K[i] || a.Lo[i] != b.Lo[i] || a.Hi[i] != b.Hi[i] {
			t.Fatalf("K plot differs at threshold %d: K %v/%v Lo %v/%v Hi %v/%v",
				i, a.K[i], b.K[i], a.Lo[i], b.Lo[i], a.Hi[i], b.Hi[i])
		}
	}
}

func TestSTKPlotWorkerInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(detSeed))
	d := SpatioTemporalOutbreak(r, 250, box, 0, 100, []OutbreakWave{
		{Center: Point{X: 30, Y: 30}, Sigma: 5, TimeMean: 25, TimeSigma: 6, Weight: 1},
	}, 0.3)
	run := func(workers int) *STKPlot {
		p, err := STKFunctionPlot(d, []float64{3, 8}, []float64{10, 25}, 9, workers,
			rand.New(rand.NewSource(detSeed)))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := run(1), run(8)
	for i := range a.K {
		if a.K[i] != b.K[i] || a.Lo[i] != b.Lo[i] || a.Hi[i] != b.Hi[i] {
			t.Fatalf("ST K plot differs at cell %d", i)
		}
	}
}

func TestNetworkKPlotWorkerInvariance(t *testing.T) {
	g := GridNetwork(6, 6, 10, Point{})
	events := RandomNetworkEvents(g, 60, detSeed)
	run := func(workers int) *KPlot {
		p, err := NetworkKFunctionPlot(g, events, []float64{5, 12, 25}, 9, workers,
			rand.New(rand.NewSource(detSeed)))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := run(1), run(8)
	for i := range a.S {
		if a.K[i] != b.K[i] || a.Lo[i] != b.Lo[i] || a.Hi[i] != b.Hi[i] {
			t.Fatalf("network K plot differs at threshold %d", i)
		}
	}
}

func TestCrossPlotAndKnoxWorkerInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(detSeed))
	a := UniformCSR(r, 120, box).Points()
	b := UniformCSR(r, 40, box).Points()
	runCross := func(workers int) *KPlot {
		p, err := CrossKFunctionPlot(a, b, []float64{2, 6, 12}, 19, workers,
			rand.New(rand.NewSource(detSeed)))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	c1, c8 := runCross(1), runCross(8)
	for i := range c1.S {
		if c1.Lo[i] != c8.Lo[i] || c1.Hi[i] != c8.Hi[i] {
			t.Fatalf("cross plot envelope differs at threshold %d", i)
		}
	}

	d := SpatioTemporalOutbreak(r, 200, box, 0, 100, []OutbreakWave{
		{Center: Point{X: 40, Y: 40}, Sigma: 6, TimeMean: 50, TimeSigma: 10, Weight: 1},
	}, 0.3)
	runKnox := func(workers int) *KnoxResult {
		res, err := KnoxTest(d.Points(), d.Times(), 5, 10, 199, workers,
			rand.New(rand.NewSource(detSeed)))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	k1, k8 := runKnox(1), runKnox(8)
	if *k1 != *k8 {
		t.Errorf("Knox differs across workers:\n 1: %+v\n 8: %+v", k1, k8)
	}
}

func TestWeightsWorkerInvariance(t *testing.T) {
	d := detValued(400)
	sameMatrix := func(a, b *SpatialWeights) bool {
		if a.N != b.N || a.S0() != b.S0() {
			return false
		}
		for i := 0; i < a.N; i++ {
			var ra, rb [][2]float64
			a.ForEachNeighbor(i, func(j int, w float64) { ra = append(ra, [2]float64{float64(j), w}) })
			b.ForEachNeighbor(i, func(j int, w float64) { rb = append(rb, [2]float64{float64(j), w}) })
			if len(ra) != len(rb) {
				return false
			}
			for k := range ra {
				if ra[k] != rb[k] {
					return false
				}
			}
		}
		return true
	}
	k1, err := KNNWeightsWorkers(d.Points(), 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	k8, err := KNNWeightsWorkers(d.Points(), 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !sameMatrix(k1, k8) {
		t.Error("KNN weights differ across worker counts")
	}
	b1, err := DistanceBandWeightsWorkers(d.Points(), 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	b8, err := DistanceBandWeightsWorkers(d.Points(), 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !sameMatrix(b1, b8) {
		t.Error("distance-band weights differ across worker counts")
	}
}

func TestKrigeLOOCVWorkerInvariance(t *testing.T) {
	d := detValued(120)
	bins, err := EmpiricalVariogram(d, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	v, err := FitVariogram(bins, SphericalModel)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := KrigeLOOCVWorkers(d, v, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := KrigeLOOCVWorkers(d, v, 12, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r1.RMSE != r8.RMSE || r1.MAE != r8.MAE {
		t.Errorf("LOOCV summary differs: RMSE %v/%v MAE %v/%v", r1.RMSE, r8.RMSE, r1.MAE, r8.MAE)
	}
	for i := range r1.Residuals {
		if r1.Residuals[i] != r8.Residuals[i] {
			t.Fatalf("LOOCV residual %d differs: %v vs %v", i, r1.Residuals[i], r8.Residuals[i])
		}
	}
}
