package geostat

import (
	"math"
	"testing"
)

// Same-seed regression: the seed-taking entry points introduced with the
// geolint migration must be bit-identical across repeated runs. Worker
// invariance is covered by determinism_test.go; these tests pin the
// seed-to-result mapping itself so a change to seed plumbing (or a stray
// global-RNG draw) shows up as a test failure, not just a lint finding.

func TestKDVSampledSameSeedBitIdentical(t *testing.T) {
	// eps/delta chosen so the Hoeffding subset size (~124 for a 32x32
	// grid) is far below n: the sampled path must actually draw.
	d := detValued(2000)
	opt := KDVOptions{
		Kernel:  MustKernel(Quartic, 12),
		Grid:    NewPixelGrid(NewBBox(d.Points()).Pad(1), 32, 32),
		Method:  KDVSampled,
		Epsilon: 0.2,
		Delta:   0.1,
		Seed:    detSeed,
	}
	first, err := KDV(d.Points(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		again, err := KDV(d.Points(), opt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range first.Values {
			if math.Float64bits(again.Values[i]) != math.Float64bits(first.Values[i]) {
				t.Fatalf("run %d: pixel %d differs: %v vs %v", run, i, again.Values[i], first.Values[i])
			}
		}
	}
	otherOpt := opt
	otherOpt.Seed = detSeed + 1
	other, err := KDV(d.Points(), otherOpt)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range first.Values {
		if math.Float64bits(other.Values[i]) != math.Float64bits(first.Values[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced an identical sampled surface; seed is not reaching the draw")
	}
}

func TestSelectBandwidthCVSameSeedSameChoice(t *testing.T) {
	d := detValued(300)
	candidates := []float64{4, 8, 16, 32}
	first, err := SelectBandwidthCV(d.Points(), Quartic, candidates, 5, detSeed)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		again, err := SelectBandwidthCV(d.Points(), Quartic, candidates, 5, detSeed)
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("run %d: bandwidth %v, first run chose %v", run, again, first)
		}
	}
}

func TestGeneralGSameSeedBitIdentical(t *testing.T) {
	d := detValued(250)
	w, err := KNNWeights(d.Points(), 6)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, len(d.Values()))
	for i, v := range d.Values() {
		vals[i] = v + 200 // General G needs positive values
	}
	first, err := GeneralG(vals, w, 199, detSeed)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		again, err := GeneralG(vals, w, 199, detSeed)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(again.G) != math.Float64bits(first.G) ||
			math.Float64bits(again.Z) != math.Float64bits(first.Z) ||
			math.Float64bits(again.P) != math.Float64bits(first.P) {
			t.Fatalf("run %d: (G,Z,P)=(%v,%v,%v), first run (%v,%v,%v)",
				run, again.G, again.Z, again.P, first.G, first.Z, first.P)
		}
	}
}

func TestNetworkEventsSameSeedBitIdentical(t *testing.T) {
	g := GridNetwork(8, 8, 10, Point{})
	first := RandomNetworkEvents(g, 200, detSeed)
	clustered := ClusteredNetworkEvents(g, 200, 3, 5, detSeed)
	for run := 0; run < 3; run++ {
		again := RandomNetworkEvents(g, 200, detSeed)
		for i := range first {
			if again[i].Edge != first[i].Edge ||
				math.Float64bits(again[i].Offset) != math.Float64bits(first[i].Offset) {
				t.Fatalf("run %d: event %d differs", run, i)
			}
		}
		c := ClusteredNetworkEvents(g, 200, 3, 5, detSeed)
		for i := range clustered {
			if c[i].Edge != clustered[i].Edge ||
				math.Float64bits(c[i].Offset) != math.Float64bits(clustered[i].Offset) {
				t.Fatalf("run %d: clustered event %d differs", run, i)
			}
		}
	}
}
