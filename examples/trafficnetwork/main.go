// Traffic accident analysis on a road network — the transportation-science
// workflow of §2.2/§2.3 (Figure 3): accidents live ON the network, so
// planar KDV and planar K-functions overestimate density and clustering
// across network gaps. This example compares planar vs network analysis on
// the same accidents.
package main

import (
	"fmt"
	"log"

	"geostat"
)

func main() {
	rng := geostat.NewRand(88)

	// A 12x9 Manhattan street grid, 100 m between intersections.
	roads := geostat.GridNetwork(12, 9, 100, geostat.Point{})
	fmt.Printf("street network: %d intersections, %d segments, %.1f km of road\n",
		roads.NumNodes(), roads.NumEdges(), roads.TotalLength()/1000)

	// 4,000 accidents concentrated around 4 dangerous corridors.
	accidents := geostat.ClusteredNetworkEvents(roads, 4000, 4, 60, 88)

	// Network KDV on 10 m lixels: one bounded Dijkstra per accident.
	surf, err := geostat.NKDV(roads, accidents, geostat.NKDVOptions{
		Kernel:      geostat.MustKernel(geostat.Quartic, 150),
		LixelLength: 10,
		Workers:     -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	li := surf.ArgMax()
	lx := surf.Lixels[li]
	hot := roads.PointAt(lx.Edge, lx.Center())
	fmt.Printf("most dangerous 10 m road segment: edge %d at (%.0f, %.0f), density %.1f\n",
		lx.Edge, hot.X, hot.Y, surf.Values[li])

	// Top-5 corridors by density.
	fmt.Println("top road segments:")
	printed := 0
	used := map[int32]bool{}
	for printed < 5 {
		best, bestV := -1, -1.0
		for i, v := range surf.Values {
			if !used[surf.Lixels[i].Edge] && v > bestV {
				best, bestV = i, v
			}
		}
		if best < 0 {
			break
		}
		l := surf.Lixels[best]
		used[l.Edge] = true
		p := roads.PointAt(l.Edge, l.Center())
		fmt.Printf("  edge %3d near (%4.0f, %4.0f): density %.1f\n", l.Edge, p.X, p.Y, bestV)
		printed++
	}

	// Planar vs network K-function: the planar one sees "clusters" across
	// blocks that are far apart by road.
	thresholds := []float64{50, 100, 200, 400}
	netCurve, err := geostat.NetworkKFunctionCurve(roads, accidents, thresholds, -1)
	if err != nil {
		log.Fatal(err)
	}
	planarPts := make([]geostat.Point, len(accidents))
	for i, ev := range accidents {
		planarPts[i] = roads.PointAt(ev.Edge, ev.Offset)
	}
	planarCurve, err := geostat.KFunctionCurve(planarPts, thresholds, -1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pairs within s: planar (Euclidean) vs network (shortest path):")
	for i, s := range thresholds {
		fmt.Printf("  s=%4.0f m: planar %8d   network %8d   (planar overcounts %.1fx)\n",
			s, planarCurve[i], netCurve[i], float64(planarCurve[i])/float64(netCurve[i]))
	}

	// Significance on the network's own null model (uniform by length).
	plot, err := geostat.NetworkKFunctionPlot(roads, accidents, thresholds, 19, -1, rng)
	if err != nil {
		log.Fatal(err)
	}
	for i, s := range thresholds {
		fmt.Printf("  network K(%4.0f) = %8.0f  envelope [%8.0f, %8.0f]  %s\n",
			s, plot.K[i], plot.Lo[i], plot.Hi[i], plot.RegimeAt(i))
	}
}
