// Realtime monitoring — the streaming-KDE use case (§2.2 cites interactive
// visualization of streaming data): events arrive over time and a sliding
// 24-"hour" hotspot map updates incrementally, each frame costing only the
// footprints of the events entering and leaving the window, not a full
// recomputation. The demo also extracts half-peak hotspot contours per
// frame and exports the final frame to GeoJSON.
package main

import (
	"fmt"
	"log"

	"geostat"
)

func main() {
	rng := geostat.NewRand(99)
	region := geostat.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}

	// A week of events (time unit: hours): the hotspot migrates across town
	// in three phases.
	feed := geostat.SpatioTemporalOutbreak(rng, 20000, region, 0, 168, []geostat.OutbreakWave{
		{Center: geostat.Point{X: 20, Y: 20}, Sigma: 6, TimeMean: 24, TimeSigma: 12, Weight: 1},
		{Center: geostat.Point{X: 50, Y: 70}, Sigma: 6, TimeMean: 84, TimeSigma: 12, Weight: 1},
		{Center: geostat.Point{X: 85, Y: 30}, Sigma: 6, TimeMean: 144, TimeSigma: 12, Weight: 1},
	}, 0.2)

	grid := geostat.NewPixelGrid(region, 128, 128)
	window, err := geostat.NewKDVWindowStream(
		geostat.MustKernel(geostat.Quartic, 7), grid,
		feed.Points(), feed.Times(), 24, // 24-hour sliding window
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("hour  live events  hotspot (x, y)  peak  hotspot area (≥½ peak)")
	var lastFrame *geostat.Heatmap
	for hour := 24.0; hour <= 168; hour += 24 {
		window.Advance(hour)
		frame := window.Snapshot()
		ix, iy, peak := frame.ArgMax()
		c := grid.Center(ix, iy)
		area := frame.AreaAbove(peak / 2)
		fmt.Printf("%4.0f  %11d  (%4.1f, %4.1f)  %6.1f  %.0f km²\n",
			hour, window.Live(), c.X, c.Y, peak, area)
		lastFrame = frame
	}

	// Export the final frame: heatmap PNG + hotspot outline GeoJSON.
	if err := lastFrame.WritePNGFile("realtime_final.png", geostat.HeatRamp); err != nil {
		log.Fatal(err)
	}
	_, _, peak := lastFrame.ArgMax()
	fc := geostat.NewGeoJSON()
	fc.AddBBox(region, map[string]any{"role": "study-area"})
	fc.AddSegments(lastFrame.Contour(peak/2), map[string]any{"level": "half-peak"})
	fc.AddGridCells(lastFrame, peak*0.75, "density")
	if err := fc.WriteFile("realtime_hotspots.geojson"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote realtime_final.png and realtime_hotspots.geojson")
}
