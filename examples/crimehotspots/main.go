// Crime hotspot analysis — the criminology workflow from the paper's
// introduction (Chicago-crime-style data): find hotspots with KDV, verify
// their significance with the K-function, pick the analysis scale from the
// clustered region of the plot, delineate the hotspots with DBSCAN, and
// rank them with local Gi* on an incident-count grid.
package main

import (
	"fmt"
	"log"

	"geostat"
)

func main() {
	rng := geostat.NewRand(2023)
	city := geostat.BBox{MinX: 0, MinY: 0, MaxX: 200, MaxY: 150}

	// 50,000 incidents: three hotspot districts of different intensity over
	// diffuse background crime.
	incidents := geostat.GaussianClusters(rng, 50000, city, []geostat.GaussianCluster{
		{Center: geostat.Point{X: 40, Y: 110}, Sigma: 6, Weight: 3},
		{Center: geostat.Point{X: 150, Y: 40}, Sigma: 9, Weight: 2},
		{Center: geostat.Point{X: 110, Y: 100}, Sigma: 4, Weight: 1},
	}, 0.35)
	pts := incidents.Points()
	fmt.Printf("analyzing %d incidents over a %gx%g km city\n",
		incidents.N(), city.Width(), city.Height())

	// Step 1 — significance first (Figure 2's workflow): without this, any
	// dataset produces a colourful heatmap.
	thresholds := []float64{1, 2, 4, 6, 8, 12, 16}
	plot, err := geostat.KFunctionPlot(pts, geostat.KPlotOptions{
		Thresholds:  thresholds,
		Simulations: 19,
		Window:      city,
		Workers:     -1,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}
	bandwidth := 0.0
	for i := range thresholds {
		fmt.Printf("  K(%4.1f): %s\n", plot.S[i], plot.RegimeAt(i))
		if plot.RegimeAt(i) == geostat.RegimeClustered && bandwidth == 0 {
			bandwidth = plot.S[i]
		}
	}
	if bandwidth == 0 {
		fmt.Println("no clustered scale found — hotspot analysis would be misleading; stopping.")
		return
	}
	// The paper (§2.1): the clustered threshold doubles as the KDV bandwidth.
	bandwidth *= 2
	fmt.Printf("clustered at every tested scale; using bandwidth %.1f for KDV\n", bandwidth)

	// Step 2 — density surface (exact sweep line under the hood).
	heat, err := geostat.KDV(pts, geostat.KDVOptions{
		Kernel:  geostat.MustKernel(geostat.Quartic, bandwidth),
		Grid:    geostat.NewPixelGrid(city, 400, 300),
		Workers: -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if werr := heat.WritePNGFile("crime_heatmap.png", geostat.HeatRamp); werr != nil {
		log.Fatal(werr)
	}
	fmt.Println("wrote crime_heatmap.png")

	// Step 3 — delineate hotspot areas with DBSCAN at the chosen scale.
	labels, err := geostat.DBSCAN(pts, 1.2, 30)
	if err != nil {
		log.Fatal(err)
	}
	nClusters := geostat.NumClusters(labels)
	counts := make([]int, nClusters)
	var centroids []geostat.Point
	sums := make([]geostat.Point, nClusters)
	for i, l := range labels {
		if l == geostat.DBSCANNoise {
			continue
		}
		counts[l]++
		sums[l] = sums[l].Add(pts[i])
	}
	for c := 0; c < nClusters; c++ {
		if counts[c] < 500 {
			continue // skip micro-clusters
		}
		centroids = append(centroids, sums[c].Scale(1/float64(counts[c])))
		fmt.Printf("  hotspot district %d: %d incidents around (%.0f, %.0f)\n",
			len(centroids), counts[c], centroids[len(centroids)-1].X, centroids[len(centroids)-1].Y)
	}

	// Step 4 — hot-spot z-scores: aggregate incidents to a coarse grid and
	// run Getis-Ord Gi* (the ArcGIS "Hot Spot Analysis" equivalent).
	coarse := geostat.NewPixelGrid(city, 20, 15)
	cellCounts := geostat.CountGrid(pts, coarse).Values
	var cellCenters []geostat.Point
	for iy := 0; iy < coarse.NY; iy++ {
		for ix := 0; ix < coarse.NX; ix++ {
			cellCenters = append(cellCenters, coarse.Center(ix, iy))
		}
	}
	w, err := geostat.DistanceBandWeights(cellCenters, 11)
	if err != nil {
		log.Fatal(err)
	}
	z, err := geostat.LocalGStar(cellCounts, w)
	if err != nil {
		log.Fatal(err)
	}
	hot, cold := 0, 0
	for _, v := range z {
		if v >= 1.96 {
			hot++
		}
		if v <= -1.96 {
			cold++
		}
	}
	fmt.Printf("Gi* on a %dx%d grid: %d hot cells, %d cold cells (|z| >= 1.96)\n",
		coarse.NX, coarse.NY, hot, cold)

	// Step 5 — a cross-type question: do incidents concentrate around
	// late-night venues beyond what the city-wide pattern explains? The
	// bivariate K-function with a random-labelling null answers it.
	var venues []geostat.Point
	for i := 0; i < 25; i++ {
		// Venues in the two biggest districts plus a few scattered ones.
		c := geostat.Point{X: 40, Y: 110}
		if i%3 == 1 {
			c = geostat.Point{X: 150, Y: 40}
		} else if i%3 == 2 {
			c = geostat.Point{X: 30 + 140*rng.Float64(), Y: 20 + 110*rng.Float64()}
		}
		venues = append(venues, geostat.Point{
			X: c.X + rng.NormFloat64()*5, Y: c.Y + rng.NormFloat64()*5,
		})
	}
	cross, err := geostat.CrossKFunctionPlot(pts, venues, []float64{2, 5, 10}, 19, -1, rng)
	if err != nil {
		log.Fatal(err)
	}
	for i, s := range cross.S {
		fmt.Printf("  incidents near venues, s=%4.1f km: %s\n", s, cross.RegimeAt(i))
	}
}
