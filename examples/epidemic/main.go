// Epidemic monitoring — the epidemiology workflow behind the paper's Hong
// Kong/Macau COVID-19 hotspot maps (Figures 1, 4, 5): a two-wave outbreak
// analysed with STKDV (where is the outbreak *now*?) and the
// spatiotemporal K-function (is there space-time interaction, i.e. active
// transmission, rather than two independent spatial patterns?).
package main

import (
	"fmt"
	"log"

	"geostat"
)

func main() {
	rng := geostat.NewRand(19)
	region := geostat.BBox{MinX: 0, MinY: 0, MaxX: 120, MaxY: 90}

	// 30,000 cases over 120 days: wave 1 in the west around day 30, wave 2
	// in the east around day 90, over sporadic background cases.
	cases := geostat.SpatioTemporalOutbreak(rng, 30000, region, 0, 120, []geostat.OutbreakWave{
		{Center: geostat.Point{X: 30, Y: 45}, Sigma: 7, TimeMean: 30, TimeSigma: 10, Weight: 1},
		{Center: geostat.Point{X: 90, Y: 50}, Sigma: 7, TimeMean: 90, TimeSigma: 10, Weight: 1.4},
	}, 0.15)
	fmt.Printf("monitoring %d cases over 120 days\n", cases.N())

	// STKDV: density snapshots every 30 days. The shared algorithm computes
	// each case's spatial footprint once regardless of slice count.
	opt := geostat.STKDVOptions{
		SpaceKernel: geostat.MustKernel(geostat.Quartic, 8),
		TimeKernel:  geostat.MustKernel(geostat.Epanechnikov, 12),
		Grid:        geostat.NewPixelGrid(region, 240, 180),
		Times:       []float64{15, 30, 60, 90, 105},
		Workers:     -1,
	}
	cube, err := geostat.STKDV(cases, opt)
	if err != nil {
		log.Fatal(err)
	}
	for i, day := range opt.Times {
		slice := cube.Slice(i)
		ix, iy, peak := slice.ArgMax()
		c := opt.Grid.Center(ix, iy)
		name := fmt.Sprintf("epidemic_day%03.0f.png", day)
		if werr := slice.WritePNGFile(name, geostat.HeatRamp); werr != nil {
			log.Fatal(werr)
		}
		fmt.Printf("  day %3.0f: outbreak center (%.0f, %.0f), intensity %6.0f -> %s\n",
			day, c.X, c.Y, peak, name)
	}

	// Space-time interaction test (Figure 6): K(s,t) against the
	// independence null (same spatial pattern, shuffled times).
	plot, err := geostat.STKFunctionPlot(cases,
		[]float64{3, 6, 12}, []float64{7, 14, 28}, 19, -1, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("spatiotemporal K-function (clustered = space-time interaction):")
	for a, s := range plot.S {
		for b, t := range plot.T {
			k, lo, hi := plot.At(a, b)
			fmt.Printf("  K(s=%4.1f, t=%4.1f) = %9.0f  envelope [%8.0f, %8.0f]  %s\n",
				s, t, k, lo, hi, plot.RegimeAt(a, b))
		}
	}
}
