// Quickstart: generate a clustered dataset, render a KDV heatmap, and test
// whether its hotspots are statistically meaningful with a K-function plot
// — the two headline tools of the paper in ~50 lines.
package main

import (
	"fmt"
	"log"

	"geostat"
)

func main() {
	rng := geostat.NewRand(7)
	region := geostat.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}

	// 10,000 events with one planted hotspot plus background noise.
	data := geostat.GaussianClusters(rng, 10000, region, []geostat.GaussianCluster{
		{Center: geostat.Point{X: 35, Y: 65}, Sigma: 7, Weight: 1},
	}, 0.3)

	// Kernel density visualization (Definition 1): quartic kernel, exact
	// sweep-line algorithm picked automatically, all cores.
	heat, err := geostat.KDV(data.Points(), geostat.KDVOptions{
		Kernel:  geostat.MustKernel(geostat.Quartic, 6),
		Grid:    geostat.NewPixelGrid(region, 256, 256),
		Workers: -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if werr := heat.WritePNGFile("quickstart_heatmap.png", geostat.HeatRamp); werr != nil {
		log.Fatal(werr)
	}
	ix, iy, peak := heat.ArgMax()
	hot := heat.Spec.Center(ix, iy)
	fmt.Printf("hotspot at (%.1f, %.1f), peak density %.1f -> quickstart_heatmap.png\n",
		hot.X, hot.Y, peak)

	// Is the hotspot meaningful, or would random data look the same?
	// K-function plot (Definition 3) with 39 CSR simulations.
	plot, err := geostat.KFunctionPlot(data.Points(), geostat.KPlotOptions{
		Thresholds:  []float64{2, 4, 6, 8, 10},
		Simulations: 39,
		Window:      region,
		Workers:     -1,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}
	for i, s := range plot.S {
		fmt.Printf("K(%4.1f) = %8.0f   envelope [%8.0f, %8.0f]   -> %s\n",
			s, plot.K[i], plot.Lo[i], plot.Hi[i], plot.RegimeAt(i))
	}
}
