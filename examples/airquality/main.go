// Air quality interpolation — the ecology workflow of the paper's
// introduction: sparse sensor readings of a pollution field interpolated
// with IDW and ordinary kriging, cross-validated against each other, and
// screened for spatial structure with Moran's I and General G (it only
// makes sense to interpolate an autocorrelated field).
package main

import (
	"fmt"
	"log"
	"math"

	"geostat"
)

func main() {
	rng := geostat.NewRand(5)
	region := geostat.BBox{MinX: 0, MinY: 0, MaxX: 80, MaxY: 60}

	// True pollution field: two emission plumes over a baseline.
	truth := func(p geostat.Point) float64 {
		plume1 := 60 * math.Exp(-p.Dist2(geostat.Point{X: 20, Y: 40})/(2*8*8))
		plume2 := 40 * math.Exp(-p.Dist2(geostat.Point{X: 60, Y: 20})/(2*12*12))
		return 15 + plume1 + plume2
	}
	// 400 sensors at random sites, each with measurement noise.
	sensors := geostat.UniformCSR(rng, 400, region)
	geostat.WithField(rng, sensors, truth, 1.5)
	fmt.Printf("%d sensors over a %gx%g km region\n", sensors.N(), region.Width(), region.Height())

	// Step 1 — is the field spatially structured at all?
	w, err := geostat.KNNWeights(sensors.Points(), 8)
	if err != nil {
		log.Fatal(err)
	}
	mi, err := geostat.MoranI(sensors.Values(), w, 199, rng)
	if err != nil {
		log.Fatal(err)
	}
	gg, err := geostat.GeneralG(sensors.Values(), w, 199, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Moran's I = %.3f (z = %.1f, p = %.3f) — positive autocorrelation\n", mi.I, mi.Z, mi.P)
	fmt.Printf("General G: z = %.1f (p = %.3f) — high readings cluster (the plumes)\n", gg.Z, gg.P)
	if mi.P > 0.05 {
		fmt.Println("no spatial structure; interpolation would be meaningless. stopping.")
		return
	}

	grid := geostat.NewPixelGrid(region, 160, 120)

	// Step 2 — IDW surface.
	idwSurf, err := geostat.IDWKNN(sensors, geostat.IDWOptions{Grid: grid, Power: 2, Workers: -1}, 12)
	if err != nil {
		log.Fatal(err)
	}

	// Step 3 — kriging: fit a variogram, then interpolate.
	bins, err := geostat.EmpiricalVariogram(sensors, 40, 16)
	if err != nil {
		log.Fatal(err)
	}
	vg, err := geostat.FitVariogram(bins, geostat.SphericalModel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted %s variogram: nugget %.1f, sill %.1f, range %.1f\n",
		vg.Model, vg.Nugget, vg.Sill, vg.Range)
	krSurf, err := geostat.Krige(sensors, geostat.KrigingOptions{
		Grid: grid, Variogram: vg, Neighbors: 16, Workers: -1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Step 4 — model selection WITHOUT ground truth: leave-one-out
	// cross-validation ranks the interpolators on the samples alone.
	if cvIDW, err := geostat.IDWLOOCV(sensors, 2, 12); err == nil {
		fmt.Printf("LOOCV  IDW(p=2, k=12):    RMSE %.2f  MAE %.2f\n", cvIDW.RMSE, cvIDW.MAE)
	}
	if cvKr, err := geostat.KrigeLOOCV(sensors, vg, 16); err == nil {
		fmt.Printf("LOOCV  kriging(k=16):     RMSE %.2f  MAE %.2f\n", cvKr.RMSE, cvKr.MAE)
	}

	// Step 5 — compare both interpolants to the (normally unknown) truth.
	var idwErr, krErr float64
	for iy := 0; iy < grid.NY; iy++ {
		for ix := 0; ix < grid.NX; ix++ {
			want := truth(grid.Center(ix, iy))
			idwErr += math.Abs(idwSurf.At(ix, iy) - want)
			krErr += math.Abs(krSurf.At(ix, iy) - want)
		}
	}
	n := float64(grid.NumPixels())
	fmt.Printf("mean abs error vs truth: IDW %.2f, kriging %.2f (field ranges 15-75)\n",
		idwErr/n, krErr/n)

	if err := idwSurf.WritePNGFile("airquality_idw.png", geostat.HeatRamp); err != nil {
		log.Fatal(err)
	}
	if err := krSurf.WritePNGFile("airquality_kriging.png", geostat.HeatRamp); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote airquality_idw.png and airquality_kriging.png")
}
