package geostat

import (
	"math"
	"testing"
)

// Facade wiring tests for the extension features (multi-bandwidth KDV,
// adaptive KDV, bandwidth selection, CSR tests, equal-split NKDV).

func TestMultiBandwidthFacade(t *testing.T) {
	d := hotspotData(40, 400)
	grid := NewPixelGrid(box, 20, 20)
	bw := []float64{4, 8, 16}
	surfaces, err := KDVMultiBandwidth(d.Points(), grid, Quartic, bw, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range bw {
		want, err := KDV(d.Points(), KDVOptions{Kernel: MustKernel(Quartic, b), Grid: grid})
		if err != nil {
			t.Fatal(err)
		}
		diff, _ := surfaces[i].MaxAbsDiff(want)
		_, peak := want.MinMax()
		if diff > 1e-9*(1+peak) {
			t.Errorf("b=%v differs by %v", b, diff)
		}
	}
}

func TestAdaptiveFacade(t *testing.T) {
	d := hotspotData(41, 500)
	// Pixel pitch 2; keep the bandwidth floor above it so dense-cluster
	// points (tiny kNN distances) still cover pixel centers.
	grid := NewPixelGrid(box, 50, 50)
	bw, err := AdaptiveBandwidths(d.Points(), 10, 1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	hm, err := KDVAdaptive(d.Points(), bw, Quartic, grid, -1)
	if err != nil {
		t.Fatal(err)
	}
	// Adaptive surface must still peak inside the planted cluster.
	ix, iy, _ := hm.ArgMax()
	if grid.Center(ix, iy).Dist(Point{X: 30, Y: 60}) > 15 {
		t.Errorf("adaptive hotspot at %v", grid.Center(ix, iy))
	}
}

func TestBandwidthSelectionFacade(t *testing.T) {
	d := hotspotData(42, 600)
	b, err := SilvermanBandwidth(d.Points())
	if err != nil {
		t.Fatal(err)
	}
	if b <= 0 || b > 50 {
		t.Errorf("Silverman = %v", b)
	}
	best, err := SelectBandwidthCV(d.Points(), Quartic, []float64{b / 4, b, b * 4}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range []float64{b / 4, b, b * 4} {
		if best == c {
			found = true
		}
	}
	if !found {
		t.Errorf("CV returned non-candidate %v", best)
	}
}

func TestCSRTestsFacade(t *testing.T) {
	d := hotspotData(43, 1200)
	q, err := QuadratTest(d.Points(), box, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if q.Regime(0.05) != RegimeClustered {
		t.Errorf("quadrat regime = %v (p=%v vmr=%v)", q.Regime(0.05), q.P, q.VMR)
	}
	ce, err := ClarkEvans(d.Points(), box)
	if err != nil {
		t.Fatal(err)
	}
	if ce.Regime(0.05) != RegimeClustered {
		t.Errorf("Clark-Evans regime = %v (R=%v)", ce.Regime(0.05), ce.R)
	}
}

func TestEqualSplitNKDVFacade(t *testing.T) {
	g := GridNetwork(6, 6, 10, Point{})
	events := RandomNetworkEvents(g, 100, 44)
	opt := NKDVOptions{Kernel: MustKernel(Epanechnikov, 8), LixelLength: 1}
	esd, err := NKDVEqualSplit(g, events, opt)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NKDV(g, events, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Equal split conserves mass; the plain kernel inflates it at
	// degree-3/4 intersections — integrated mass must be strictly smaller.
	integrate := func(s *NKDVSurface) float64 {
		total := 0.0
		for i, l := range s.Lixels {
			total += s.Values[i] * l.Length()
		}
		return total
	}
	if m1, m2 := integrate(esd), integrate(plain); m1 >= m2 {
		t.Errorf("ESD mass %v should be below plain %v", m1, m2)
	}
	if math.IsNaN(esd.Values[0]) {
		t.Error("NaN in ESD surface")
	}
}
