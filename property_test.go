package geostat_test

import (
	"math"
	"testing"
	"testing/quick"

	"geostat"
)

// Property-based equivalence tests: for randomly drawn datasets, every
// accelerated path must agree with its naive O(n²)/O(XYn) definition —
// exactly for the integer K-function counts, within 1e-9 for the float
// surfaces (summation order differs between algorithms). testing/quick
// supplies random seeds; each seed expands deterministically into a
// dataset via geostat.NewRand, so any failure replays from the logged
// seed alone.

// quickConfig bounds the number of random datasets per property so the
// whole file stays inside the tier-1 time budget.
func quickConfig() *quick.Config {
	return &quick.Config{MaxCount: 12, Rand: geostat.NewRand(20260806)}
}

// randomDataset expands a seed into a small clustered dataset with a
// measured field (so the same datasets serve KDV, K-function, and IDW).
func randomDataset(seed int64) *geostat.Dataset {
	rng := geostat.NewRand(seed)
	n := 20 + int(rng.Int63n(60))
	box := geostat.BBox{MinX: 0, MinY: 0, MaxX: 50, MaxY: 30}
	d := geostat.GaussianClusters(rng, n, box, []geostat.GaussianCluster{
		{Center: geostat.Point{X: 15, Y: 10}, Sigma: 4, Weight: 1},
		{Center: geostat.Point{X: 35, Y: 20}, Sigma: 6, Weight: 1},
	}, 0.3)
	return geostat.WithField(rng, d, func(p geostat.Point) float64 {
		return 5 + p.X/5 + p.Y/10
	}, 0.4)
}

func TestPropertySweepLineKDVMatchesNaive(t *testing.T) {
	grid := func(d *geostat.Dataset) geostat.PixelGrid {
		return geostat.NewPixelGrid(d.Bounds().Pad(1e-9), 40, 24)
	}
	property := func(seed int64) bool {
		d := randomDataset(seed)
		k := geostat.MustKernel(geostat.Quartic, 5)
		base := geostat.KDVOptions{Kernel: k, Grid: grid(d), Workers: 2}

		naiveOpt := base
		naiveOpt.Method = geostat.KDVNaive
		naive, err := geostat.KDV(d.Points(), naiveOpt)
		if err != nil {
			t.Logf("seed %d: naive KDV failed: %v", seed, err)
			return false
		}
		for _, method := range []geostat.KDVMethod{geostat.KDVSweepLine, geostat.KDVGridCutoff} {
			opt := base
			opt.Method = method
			got, err := geostat.KDV(d.Points(), opt)
			if err != nil {
				t.Logf("seed %d: %s KDV failed: %v", seed, method, err)
				return false
			}
			diff, err := got.MaxAbsDiff(naive)
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			if diff > 1e-9 {
				t.Logf("seed %d: %s deviates from naive by %g", seed, method, diff)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, quickConfig()); err != nil {
		t.Error(err)
	}
}

func TestPropertyKFunctionIndexesMatchNaive(t *testing.T) {
	property := func(seed int64) bool {
		d := randomDataset(seed)
		rng := geostat.NewRand(seed)
		for trial := 0; trial < 4; trial++ {
			s := 0.5 + rng.Float64()*15
			want := geostat.KFunctionNaive(d.Points(), s)
			for name, got := range map[string]int{
				"grid":      geostat.KFunction(d.Points(), s),
				"kd-tree":   geostat.KFunctionKDTree(d.Points(), s),
				"ball-tree": geostat.KFunctionBallTree(d.Points(), s),
				"r-tree":    geostat.KFunctionRTree(d.Points(), s),
			} {
				if got != want {
					t.Logf("seed %d, s=%g: %s count %d != naive %d", seed, s, name, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, quickConfig()); err != nil {
		t.Error(err)
	}
}

func TestPropertyKFunctionCurveMatchesPointwise(t *testing.T) {
	property := func(seed int64) bool {
		d := randomDataset(seed)
		thresholds := []float64{1, 3, 6, 10, 18}
		curve, err := geostat.KFunctionCurve(d.Points(), thresholds, 3)
		if err != nil {
			t.Logf("seed %d: curve failed: %v", seed, err)
			return false
		}
		for i, s := range thresholds {
			if want := geostat.KFunctionNaive(d.Points(), s); curve[i] != want {
				t.Logf("seed %d: curve[%d]=%d != naive %d at s=%g", seed, i, curve[i], want, s)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, quickConfig()); err != nil {
		t.Error(err)
	}
}

func TestPropertyIDWIndexedPathsMatchNaive(t *testing.T) {
	property := func(seed int64) bool {
		d := randomDataset(seed)
		opt := geostat.IDWOptions{
			Grid:    geostat.NewPixelGrid(d.Bounds().Pad(1e-9), 24, 16),
			Power:   2,
			Workers: 2,
		}
		naive, err := geostat.IDW(d, opt)
		if err != nil {
			t.Logf("seed %d: naive IDW failed: %v", seed, err)
			return false
		}
		// kNN with k = n sees every sample, so it must reproduce the naive
		// surface up to float reordering.
		knn, err := geostat.IDWKNN(d, opt, d.N())
		if err != nil {
			t.Logf("seed %d: kNN IDW failed: %v", seed, err)
			return false
		}
		// A radius beyond the bbox diagonal likewise covers every sample.
		b := d.Bounds()
		diag := math.Hypot(b.Width(), b.Height())
		rad, err := geostat.IDWRadius(d, opt, diag+1)
		if err != nil {
			t.Logf("seed %d: radius IDW failed: %v", seed, err)
			return false
		}
		for name, g := range map[string]*geostat.Heatmap{"knn": knn, "radius": rad} {
			diff, err := g.MaxAbsDiff(naive)
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			if diff > 1e-9 {
				t.Logf("seed %d: %s deviates from naive by %g", seed, name, diff)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, quickConfig()); err != nil {
		t.Error(err)
	}
}
