package geostat

import (
	"context"
	"fmt"

	"geostat/internal/kde"
)

// KDVMethod selects the KDV algorithm (§2.2's acceleration families).
type KDVMethod int

const (
	// KDVAuto picks the fastest exact method for the kernel: sweep line for
	// polynomial kernels, grid cutoff for other finite-support kernels,
	// naive otherwise.
	KDVAuto KDVMethod = iota
	// KDVNaive is the exact O(XYn) baseline.
	KDVNaive
	// KDVGridCutoff is exact for finite-support kernels via a bucket index.
	KDVGridCutoff
	// KDVSweepLine is the exact O(Y(X+n)) computational-sharing algorithm
	// (SLAM family) for kernels polynomial in squared distance.
	KDVSweepLine
	// KDVBoundApprox is the (1±ε) function-approximation algorithm
	// (QUAD/KARL family); works for every kernel, including Gaussian.
	KDVBoundApprox
	// KDVSampled is the Hoeffding-sampling approximation.
	KDVSampled
)

// String returns the method name.
func (m KDVMethod) String() string {
	switch m {
	case KDVAuto:
		return "auto"
	case KDVNaive:
		return "naive"
	case KDVGridCutoff:
		return "grid-cutoff"
	case KDVSweepLine:
		return "sweep-line"
	case KDVBoundApprox:
		return "bound-approx"
	case KDVSampled:
		return "sampled"
	}
	return fmt.Sprintf("KDVMethod(%d)", int(m))
}

// KDVOptions configures KDV (Definition 1 of the paper).
type KDVOptions struct {
	// Kernel is K and its bandwidth b.
	Kernel Kernel
	// Grid is the output raster.
	Grid PixelGrid
	// Method selects the algorithm; KDVAuto by default.
	Method KDVMethod
	// Normalize scales the surface into a probability density.
	Normalize bool
	// Workers parallelises raster rows; 0/1 serial, <0 GOMAXPROCS.
	Workers int

	// Epsilon is the relative error guarantee for KDVBoundApprox
	// (Equation 6) and the fractional additive error for KDVSampled.
	Epsilon float64
	// Delta is KDVSampled's failure probability.
	Delta float64
	// Seed drives KDVSampled's subset draw; the same (points, options,
	// Seed) always yields the same surface.
	Seed int64
	// Weights optionally weights each event (severity, case counts).
	// Supported by the exact methods; the approximate methods reject it.
	Weights []float64
	// Float32 opts into the single-precision fast path: kernel values come
	// from a precomputed lookup table over float32 columns, accumulated in
	// float64. Typical relative error is below 1e-3; the default float64
	// path stays bit-exact and is never affected. Supported by KDVNaive,
	// KDVGridCutoff and KDVAuto; the other methods reject it. Never
	// selected implicitly.
	Float32 bool
	// Ctx optionally bounds the computation (per-request timeouts, client
	// disconnects): raster workers check it between row chunks and KDV
	// returns ctx.Err() with a nil surface when it fires. Nil means no
	// cancellation. KDVCtx is a convenience wrapper that sets this field.
	Ctx context.Context
	// Window optionally restricts evaluation to a pixel sub-rectangle of
	// Grid (the shard coordinator's tile unit). Pixel centers come from the
	// full Grid, so the windowed raster is bit-identical to the matching
	// window of the full-extent result. Supported by KDVNaive (float64
	// path) only; other methods reject it. Zero value = whole grid.
	Window GridWindow
}

// KDVCtx computes a kernel density surface that honors ctx: the
// computation stops between row chunks once ctx is cancelled or times out
// and the error is ctx.Err(). Equivalent to setting opt.Ctx.
func KDVCtx(ctx context.Context, pts []Point, opt KDVOptions) (*Heatmap, error) {
	opt.Ctx = ctx
	return KDV(pts, opt)
}

// KDV computes a kernel density surface over opt.Grid.
func KDV(pts []Point, opt KDVOptions) (*Heatmap, error) {
	kopt := kde.Options{
		Kernel:    opt.Kernel,
		Grid:      opt.Grid,
		Normalize: opt.Normalize,
		Workers:   opt.Workers,
		Weights:   opt.Weights,
		Float32:   opt.Float32,
		Ctx:       opt.Ctx,
		Window:    opt.Window,
	}
	switch opt.Method {
	case KDVAuto:
		return kde.Exact(pts, kopt)
	case KDVNaive:
		return kde.Naive(pts, kopt)
	case KDVGridCutoff:
		return kde.GridCutoff(pts, kopt)
	case KDVSweepLine:
		return kde.SweepLine(pts, kopt)
	case KDVBoundApprox:
		return kde.BoundApprox(pts, kopt, opt.Epsilon)
	case KDVSampled:
		return kde.Sampled(pts, kopt, opt.Seed, opt.Epsilon, opt.Delta)
	}
	return nil, fmt.Errorf("geostat: unknown KDV method %d", int(opt.Method))
}

// KDVDataset computes a kernel density surface directly from a Dataset.
// The naive method (and KDVAuto's naive fallback) reads the dataset's
// columnar storage in place — no []Point materialisation — and uses the
// per-chunk bounding boxes to skip whole chunks outside the kernel
// support. Results are bit-identical to KDV(d.Points(), opt). When
// opt.Weights is nil the dataset's own weights column (if any) applies.
func KDVDataset(d *Dataset, opt KDVOptions) (*Heatmap, error) {
	if opt.Method == KDVNaive && opt.Weights == nil {
		// The columnar path takes the weight column from the dataset itself.
		kopt := kde.Options{
			Kernel:    opt.Kernel,
			Grid:      opt.Grid,
			Normalize: opt.Normalize,
			Workers:   opt.Workers,
			Float32:   opt.Float32,
			Ctx:       opt.Ctx,
			Window:    opt.Window,
		}
		return kde.NaiveCols(d.Columns(), kopt)
	}
	if opt.Weights == nil {
		opt.Weights = d.Weights()
	}
	return KDV(d.Points(), opt)
}

// KDVDatasetCtx is KDVDataset with an explicit context (see KDVCtx).
func KDVDatasetCtx(ctx context.Context, d *Dataset, opt KDVOptions) (*Heatmap, error) {
	opt.Ctx = ctx
	return KDVDataset(d, opt)
}

// SweepLineSupports reports whether the sweep-line method handles the
// kernel type (uniform, Epanechnikov, quartic, triweight).
func SweepLineSupports(t KernelType) bool { return kde.SweepSupported(t) }

// KDVSampleBound returns the Hoeffding subset size KDVSampled would use for
// the given raster size and (eps, delta) guarantee.
func KDVSampleBound(numPixels int, eps, delta float64) (int, error) {
	return kde.SampleBound(numPixels, eps, delta)
}

// KDVMultiBandwidth computes exact KDV surfaces for several bandwidths of
// one polynomial kernel in a single pass (the SAFE bandwidth-exploration
// sharing of §2.2): each extra bandwidth costs O(1) per pixel instead of a
// full support scan. Bandwidths must be strictly increasing.
func KDVMultiBandwidth(pts []Point, grid PixelGrid, typ KernelType, bandwidths []float64, workers int) ([]*Heatmap, error) {
	return kde.MultiBandwidth(pts, grid, typ, bandwidths, workers)
}

// KDVAdaptive computes a sample-point adaptive KDV: every point carries its
// own bandwidth (finite-support kernels only).
func KDVAdaptive(pts []Point, bandwidths []float64, typ KernelType, grid PixelGrid, workers int) (*Heatmap, error) {
	return kde.Adaptive(pts, bandwidths, typ, grid, workers)
}

// AdaptiveBandwidths derives per-point bandwidths from the k-th
// nearest-neighbour distance (scaled, floored) — the standard pilot for
// KDVAdaptive.
func AdaptiveBandwidths(pts []Point, k int, scale, minBandwidth float64) ([]float64, error) {
	return kde.AdaptiveBandwidths(pts, k, scale, minBandwidth)
}

// SilvermanBandwidth returns the 2-D normal-reference pilot bandwidth
// σ̂·n^{−1/6}.
func SilvermanBandwidth(pts []Point) (float64, error) { return kde.SilvermanBandwidth(pts) }

// SelectBandwidthCV picks the candidate bandwidth with the best held-out
// log-likelihood over random folds (finite-support kernels). The fold
// shuffle is reproducible from seed.
func SelectBandwidthCV(pts []Point, typ KernelType, candidates []float64, folds int, seed int64) (float64, error) {
	return kde.SelectBandwidthCV(pts, typ, candidates, folds, seed)
}

// KDVStream maintains a KDV surface under event insertions/removals (live
// hotspot maps over streaming data).
type KDVStream = kde.Stream

// NewKDVStream returns an empty streaming KDV surface (finite-support
// kernels).
func NewKDVStream(k Kernel, grid PixelGrid) (*KDVStream, error) { return kde.NewStream(k, grid) }

// KDVWindowStream drives a KDVStream over a time-ordered event log with a
// sliding window.
type KDVWindowStream = kde.WindowStream

// NewKDVWindowStream sorts the events by time and returns a sliding-window
// driver of the given width.
func NewKDVWindowStream(k Kernel, grid PixelGrid, pts []Point, times []float64, width float64) (*KDVWindowStream, error) {
	return kde.NewWindowStream(k, grid, pts, times, width)
}
