package geostat

import (
	"math/rand"

	"geostat/internal/kfunc"
	"geostat/internal/network"
	"geostat/internal/nkdv"
)

// RoadNetwork is a weighted undirected road graph.
type RoadNetwork = network.Graph

// NetworkBuilder accumulates nodes and edges for a RoadNetwork.
type NetworkBuilder = network.Builder

// NewNetworkBuilder returns an empty road-network builder.
func NewNetworkBuilder() *NetworkBuilder { return network.NewBuilder() }

// NetworkPosition is a location on a network: (edge, offset from edge
// start).
type NetworkPosition = network.Position

// Lixel is a linear pixel — the evaluation unit of NKDV.
type Lixel = network.Lixel

// NKDVSurface is an NKDV result: one density value per lixel.
type NKDVSurface = nkdv.Surface

// NKDVOptions configures network KDV.
type NKDVOptions = nkdv.Options

// GridNetwork returns a Manhattan-grid road network (nx×ny intersections,
// spacing apart).
func GridNetwork(nx, ny int, spacing float64, origin Point) *RoadNetwork {
	return network.GridNetwork(nx, ny, spacing, origin)
}

// RingRadialNetwork returns a ring-and-spoke road network (the Figure 3
// topology).
func RingRadialNetwork(rings, spokes int, ringSpacing float64, center Point) *RoadNetwork {
	return network.RingRadialNetwork(rings, spokes, ringSpacing, center)
}

// ReadNetworkCSVFile builds a road network from an edge-list CSV
// (header x1,y1,x2,y2[,length]; nodes deduplicated by coordinates).
func ReadNetworkCSVFile(path string) (*RoadNetwork, error) {
	return network.ReadEdgeCSVFile(path)
}

// WriteNetworkCSVFile writes a road network as an edge-list CSV.
func WriteNetworkCSVFile(path string, g *RoadNetwork) error {
	return network.WriteEdgeCSVFile(path, g)
}

// SnapToNetwork maps a planar point to its nearest network position.
func SnapToNetwork(g *RoadNetwork, p Point) (NetworkPosition, float64) { return g.Snap(p) }

// RandomNetworkEvents places n events uniformly (by length) on the network
// — the network CSR null model. The placement is reproducible from seed.
func RandomNetworkEvents(g *RoadNetwork, n int, seed int64) []NetworkPosition {
	return network.RandomPositions(g, n, seed)
}

// RandomNetworkEventsRand is RandomNetworkEvents drawing from an existing
// generator — for callers composing several draws from one seeded stream.
func RandomNetworkEventsRand(rng *rand.Rand, g *RoadNetwork, n int) []NetworkPosition {
	return network.RandomPositionsRand(rng, g, n)
}

// ClusteredNetworkEvents places n events around nCenters random hotspots,
// reproducibly from seed.
func ClusteredNetworkEvents(g *RoadNetwork, n, nCenters int, spread float64, seed int64) []NetworkPosition {
	return network.ClusteredPositions(g, n, nCenters, spread, seed)
}

// NKDV computes network kernel density with the fast event-expansion
// algorithm (one bounded Dijkstra per event).
func NKDV(g *RoadNetwork, events []NetworkPosition, opt NKDVOptions) (*NKDVSurface, error) {
	return nkdv.Forward(g, events, opt)
}

// NKDVNaive computes network kernel density with one Dijkstra per lixel —
// the baseline.
func NKDVNaive(g *RoadNetwork, events []NetworkPosition, opt NKDVOptions) (*NKDVSurface, error) {
	return nkdv.Naive(g, events, opt)
}

// NKDVEqualSplit computes NKDV with Okabe's equal-split kernel on the
// shortest-path tree: mass divides among an intersection's onward edges,
// so total density mass is conserved across junctions (the plain kernel
// inflates it).
func NKDVEqualSplit(g *RoadNetwork, events []NetworkPosition, opt NKDVOptions) (*NKDVSurface, error) {
	return nkdv.ForwardESD(g, events, opt)
}

// NetworkKFunction computes the network K-function at a single threshold
// by the per-pair baseline.
func NetworkKFunction(g *RoadNetwork, events []NetworkPosition, s float64) int {
	return kfunc.NetworkNaive(g, events, s)
}

// NetworkKFunctionCurve computes the network K-function at every threshold
// with one bounded Dijkstra per event.
func NetworkKFunctionCurve(g *RoadNetwork, events []NetworkPosition, thresholds []float64, workers int) ([]int, error) {
	return kfunc.NetworkCurve(g, events, thresholds, workers)
}

// NetworkKFunctionPlot computes a network K-function plot with envelopes
// from uniform-on-network simulations.
func NetworkKFunctionPlot(g *RoadNetwork, events []NetworkPosition, thresholds []float64, sims, workers int, rng *rand.Rand) (*KPlot, error) {
	return kfunc.NetworkPlot(g, events, thresholds, sims, workers, rng)
}
