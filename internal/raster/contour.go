package raster

import (
	"geostat/internal/geom"
)

// Segment is one straight piece of an iso-contour line.
type Segment struct {
	A, B geom.Point
}

// Contour extracts the iso-line of the surface at the given level with
// marching squares over the pixel-center lattice (linear interpolation
// along cell edges). The returned segments jointly trace every crossing of
// the level; hotspot outlines (e.g. at 50% of the peak) are the usual use.
func (g *Grid) Contour(level float64) []Segment {
	var segs []Segment
	nx, ny := g.Spec.NX, g.Spec.NY
	for iy := 0; iy+1 < ny; iy++ {
		for ix := 0; ix+1 < nx; ix++ {
			// Cell corners: pixel centers (ix,iy) .. (ix+1,iy+1).
			v00 := g.At(ix, iy)
			v10 := g.At(ix+1, iy)
			v01 := g.At(ix, iy+1)
			v11 := g.At(ix+1, iy+1)
			idx := 0
			if v00 >= level {
				idx |= 1
			}
			if v10 >= level {
				idx |= 2
			}
			if v11 >= level {
				idx |= 4
			}
			if v01 >= level {
				idx |= 8
			}
			if idx == 0 || idx == 15 {
				continue
			}
			p00 := g.Spec.Center(ix, iy)
			p10 := g.Spec.Center(ix+1, iy)
			p01 := g.Spec.Center(ix, iy+1)
			p11 := g.Spec.Center(ix+1, iy+1)
			// Edge crossing points (only those needed per case).
			bottom := func() geom.Point { return lerpPoint(p00, p10, frac(v00, v10, level)) }
			top := func() geom.Point { return lerpPoint(p01, p11, frac(v01, v11, level)) }
			left := func() geom.Point { return lerpPoint(p00, p01, frac(v00, v01, level)) }
			right := func() geom.Point { return lerpPoint(p10, p11, frac(v10, v11, level)) }
			add := func(a, b geom.Point) { segs = append(segs, Segment{A: a, B: b}) }
			switch idx {
			case 1, 14:
				add(left(), bottom())
			case 2, 13:
				add(bottom(), right())
			case 3, 12:
				add(left(), right())
			case 4, 11:
				add(right(), top())
			case 6, 9:
				add(bottom(), top())
			case 7, 8:
				add(left(), top())
			case 5: // saddle: resolve by the cell-center average
				if (v00+v10+v01+v11)/4 >= level {
					add(left(), top())
					add(bottom(), right())
				} else {
					add(left(), bottom())
					add(right(), top())
				}
			case 10: // the opposite saddle
				if (v00+v10+v01+v11)/4 >= level {
					add(left(), bottom())
					add(right(), top())
				} else {
					add(left(), top())
					add(bottom(), right())
				}
			}
		}
	}
	return segs
}

// AreaAbove returns the total area of pixels whose value is >= level —
// the "hotspot area" statistic paired with Contour.
func (g *Grid) AreaAbove(level float64) float64 {
	cell := g.Spec.CellW() * g.Spec.CellH()
	area := 0.0
	for _, v := range g.Values {
		if v >= level {
			area += cell
		}
	}
	return area
}

// frac returns the interpolation parameter where the level crosses between
// values a and b (clamped to [0, 1] against degenerate equal values).
func frac(a, b, level float64) float64 {
	den := b - a
	if den == 0 {
		return 0.5
	}
	t := (level - a) / den
	if t < 0 {
		return 0
	}
	if t > 1 {
		return 1
	}
	return t
}

func lerpPoint(a, b geom.Point, t float64) geom.Point {
	return geom.Point{X: a.X + (b.X-a.X)*t, Y: a.Y + (b.Y-a.Y)*t}
}

// CountGrid rasterises points into per-pixel counts — the aggregation step
// feeding grid-based tools (Gi* hot-spot maps, quadrat-style summaries).
func CountGrid(pts []geom.Point, spec geom.PixelGrid) *Grid {
	g := NewGrid(spec)
	for _, p := range pts {
		ix, iy, inside := spec.Locate(p)
		if inside {
			g.Values[spec.Index(ix, iy)]++
		}
	}
	return g
}
