// Package raster holds evaluated density/interpolation surfaces (one value
// per pixel of a geom.PixelGrid) and renders them as PNG heatmaps or ASCII
// art — the Figure 1/4/5 artifacts of the paper.
package raster

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
	"os"
	"strings"

	"geostat/internal/geom"
)

// Grid is a scalar surface over a pixel grid. Values are stored row-major,
// index iy*NX+ix (see geom.PixelGrid.Index).
type Grid struct {
	Spec   geom.PixelGrid
	Values []float64
}

// NewGrid returns a zero-valued surface over spec.
func NewGrid(spec geom.PixelGrid) *Grid {
	return &Grid{Spec: spec, Values: make([]float64, spec.NumPixels())}
}

// At returns the value at pixel (ix, iy).
func (g *Grid) At(ix, iy int) float64 { return g.Values[g.Spec.Index(ix, iy)] }

// Set sets the value at pixel (ix, iy).
func (g *Grid) Set(ix, iy int, v float64) { g.Values[g.Spec.Index(ix, iy)] = v }

// Add adds v to the value at pixel (ix, iy).
func (g *Grid) Add(ix, iy int, v float64) { g.Values[g.Spec.Index(ix, iy)] += v }

// MinMax returns the smallest and largest values.
func (g *Grid) MinMax() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range g.Values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi
}

// Sum returns the total of all values.
func (g *Grid) Sum() float64 {
	s := 0.0
	for _, v := range g.Values {
		s += v
	}
	return s
}

// ArgMax returns the pixel coordinates and value of the maximum — the
// "hotspot pixel" in a KDV surface.
func (g *Grid) ArgMax() (ix, iy int, v float64) {
	best := 0
	for i := 1; i < len(g.Values); i++ {
		if g.Values[i] > g.Values[best] {
			best = i
		}
	}
	return best % g.Spec.NX, best / g.Spec.NX, g.Values[best]
}

// MaxAbsDiff returns the maximum absolute difference between two surfaces,
// the exactness check used throughout the KDV tests.
func (g *Grid) MaxAbsDiff(o *Grid) (float64, error) {
	if len(g.Values) != len(o.Values) {
		return 0, fmt.Errorf("raster: grid sizes differ (%d vs %d)", len(g.Values), len(o.Values))
	}
	m := 0.0
	for i := range g.Values {
		if d := math.Abs(g.Values[i] - o.Values[i]); d > m {
			m = d
		}
	}
	return m, nil
}

// MaxRelDiff returns the maximum relative difference |a-b|/max(|b|, floor)
// between two surfaces, used to verify (1±ε) approximation guarantees.
func (g *Grid) MaxRelDiff(o *Grid, floor float64) (float64, error) {
	if len(g.Values) != len(o.Values) {
		return 0, fmt.Errorf("raster: grid sizes differ (%d vs %d)", len(g.Values), len(o.Values))
	}
	m := 0.0
	for i := range g.Values {
		den := math.Max(math.Abs(o.Values[i]), floor)
		if den == 0 {
			continue
		}
		if d := math.Abs(g.Values[i]-o.Values[i]) / den; d > m {
			m = d
		}
	}
	return m, nil
}

// ColorRamp maps a normalised value in [0,1] to a color.
type ColorRamp func(t float64) color.RGBA

// HeatRamp is the classic blue→cyan→green→yellow→red hotspot ramp used by
// the GIS heatmaps the paper shows (Figure 1: red = hotspot).
func HeatRamp(t float64) color.RGBA {
	t = clamp01(t)
	// Piecewise linear through 5 anchors.
	anchors := []color.RGBA{
		{R: 0x30, G: 0x30, B: 0xff, A: 0xff}, // blue
		{R: 0x00, G: 0xd0, B: 0xff, A: 0xff}, // cyan
		{R: 0x20, G: 0xc0, B: 0x40, A: 0xff}, // green
		{R: 0xff, G: 0xe0, B: 0x20, A: 0xff}, // yellow
		{R: 0xe0, G: 0x20, B: 0x20, A: 0xff}, // red
	}
	seg := t * float64(len(anchors)-1)
	i := int(seg)
	if i >= len(anchors)-1 {
		return anchors[len(anchors)-1]
	}
	f := seg - float64(i)
	a, b := anchors[i], anchors[i+1]
	return color.RGBA{
		R: lerpByte(a.R, b.R, f),
		G: lerpByte(a.G, b.G, f),
		B: lerpByte(a.B, b.B, f),
		A: 0xff,
	}
}

// GrayRamp maps values to a white→black gradient (for print-friendly
// output).
func GrayRamp(t float64) color.RGBA {
	t = clamp01(t)
	v := uint8(255 - t*255)
	return color.RGBA{R: v, G: v, B: v, A: 0xff}
}

// Image renders g to an image, normalising values to [min, max] and
// flipping the y axis so north is up. A constant surface renders as the
// ramp's zero color.
func (g *Grid) Image(ramp ColorRamp) *image.RGBA {
	lo, hi := g.MinMax()
	span := hi - lo
	img := image.NewRGBA(image.Rect(0, 0, g.Spec.NX, g.Spec.NY))
	for iy := 0; iy < g.Spec.NY; iy++ {
		for ix := 0; ix < g.Spec.NX; ix++ {
			t := 0.0
			if span > 0 {
				t = (g.At(ix, iy) - lo) / span
			}
			img.SetRGBA(ix, g.Spec.NY-1-iy, ramp(t))
		}
	}
	return img
}

// WritePNG renders g with ramp and writes a PNG stream to w.
func (g *Grid) WritePNG(w io.Writer, ramp ColorRamp) error {
	return png.Encode(w, g.Image(ramp))
}

// WritePNGFile renders g to the named PNG file.
func (g *Grid) WritePNGFile(path string, ramp ColorRamp) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WritePNG(f, ramp); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ASCII renders g as character art (one char per pixel, darkest = highest),
// for terminal demos and golden tests. North is up.
func (g *Grid) ASCII() string {
	const shades = " .:-=+*#%@"
	lo, hi := g.MinMax()
	span := hi - lo
	var sb strings.Builder
	for iy := g.Spec.NY - 1; iy >= 0; iy-- {
		for ix := 0; ix < g.Spec.NX; ix++ {
			t := 0.0
			if span > 0 {
				t = (g.At(ix, iy) - lo) / span
			}
			idx := int(t * float64(len(shades)-1))
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			sb.WriteByte(shades[idx])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func clamp01(t float64) float64 {
	if t < 0 || math.IsNaN(t) {
		return 0
	}
	if t > 1 {
		return 1
	}
	return t
}

func lerpByte(a, b uint8, f float64) uint8 {
	return uint8(float64(a) + (float64(b)-float64(a))*f + 0.5)
}
