package raster

import (
	"bytes"
	"image/png"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"geostat/internal/geom"
)

func spec() geom.PixelGrid {
	return geom.NewPixelGrid(geom.BBox{MinX: 0, MinY: 0, MaxX: 10, MaxY: 5}, 10, 5)
}

func TestGridAccessors(t *testing.T) {
	g := NewGrid(spec())
	if len(g.Values) != 50 {
		t.Fatalf("len = %d", len(g.Values))
	}
	g.Set(3, 2, 7)
	if g.At(3, 2) != 7 {
		t.Errorf("At = %v", g.At(3, 2))
	}
	g.Add(3, 2, 1.5)
	if g.At(3, 2) != 8.5 {
		t.Errorf("Add = %v", g.At(3, 2))
	}
	if g.Sum() != 8.5 {
		t.Errorf("Sum = %v", g.Sum())
	}
	lo, hi := g.MinMax()
	if lo != 0 || hi != 8.5 {
		t.Errorf("MinMax = %v, %v", lo, hi)
	}
	ix, iy, v := g.ArgMax()
	if ix != 3 || iy != 2 || v != 8.5 {
		t.Errorf("ArgMax = %d, %d, %v", ix, iy, v)
	}
}

func TestDiffs(t *testing.T) {
	a, b := NewGrid(spec()), NewGrid(spec())
	a.Set(1, 1, 10)
	b.Set(1, 1, 9)
	b.Set(2, 2, 1)
	d, err := a.MaxAbsDiff(b)
	if err != nil || d != 1 {
		t.Errorf("MaxAbsDiff = %v, %v", d, err)
	}
	rd, err := a.MaxRelDiff(b, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	// At (2,2): |0-1|/1 = 1 dominates.
	if math.Abs(rd-1) > 1e-12 {
		t.Errorf("MaxRelDiff = %v", rd)
	}
	other := NewGrid(geom.NewPixelGrid(geom.BBox{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 2, 2))
	if _, err := a.MaxAbsDiff(other); err == nil {
		t.Error("size mismatch not reported")
	}
	if _, err := a.MaxRelDiff(other, 0); err == nil {
		t.Error("size mismatch not reported")
	}
}

func TestRamps(t *testing.T) {
	for _, tt := range []float64{-1, 0, 0.25, 0.5, 0.99, 1, 2, math.NaN()} {
		c := HeatRamp(tt)
		if c.A != 0xff {
			t.Errorf("HeatRamp(%v) alpha = %d", tt, c.A)
		}
		g := GrayRamp(tt)
		if g.R != g.G || g.G != g.B {
			t.Errorf("GrayRamp(%v) not gray", tt)
		}
	}
	// Low end blue-ish, high end red-ish.
	lo, hi := HeatRamp(0), HeatRamp(1)
	if lo.B < lo.R || hi.R < hi.B {
		t.Errorf("ramp endpoints wrong: %v, %v", lo, hi)
	}
}

func TestImageOrientation(t *testing.T) {
	g := NewGrid(spec())
	g.Set(0, 4, 100) // top-left in map coordinates (max y)
	img := g.Image(GrayRamp)
	if img.Bounds().Dx() != 10 || img.Bounds().Dy() != 5 {
		t.Fatalf("image size %v", img.Bounds())
	}
	// North-up: the high value (max iy) must be at image row 0.
	c := img.RGBAAt(0, 0)
	if c.R != 0 { // darkest
		t.Errorf("top-left pixel = %v, want black", c)
	}
}

func TestWritePNG(t *testing.T) {
	g := NewGrid(spec())
	g.Set(5, 2, 1)
	var buf bytes.Buffer
	if err := g.WritePNG(&buf, HeatRamp); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatalf("decoding produced PNG: %v", err)
	}
	if img.Bounds().Dx() != 10 {
		t.Errorf("decoded width %d", img.Bounds().Dx())
	}
	path := filepath.Join(t.TempDir(), "out.png")
	if err := g.WritePNGFile(path, HeatRamp); err != nil {
		t.Fatal(err)
	}
}

func TestASCII(t *testing.T) {
	g := NewGrid(spec())
	g.Set(9, 0, 5) // bottom-right
	art := g.ASCII()
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[4][9] != '@' {
		t.Errorf("hotspot char = %q, want '@'", lines[4][9])
	}
	if lines[0][0] != ' ' {
		t.Errorf("cold char = %q, want space", lines[0][0])
	}
	// Constant surface must not panic or divide by zero.
	flat := NewGrid(spec())
	if s := flat.ASCII(); !strings.Contains(s, " ") {
		t.Error("flat ASCII unexpected")
	}
}
