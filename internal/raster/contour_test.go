package raster

import (
	"math"
	"testing"

	"geostat/internal/geom"
)

// radialGrid builds a surface f(p) = R − dist(p, center): its iso-line at
// level v is the circle of radius R − v.
func radialGrid(n int) *Grid {
	spec := geom.NewPixelGrid(geom.BBox{MinX: -10, MinY: -10, MaxX: 10, MaxY: 10}, n, n)
	g := NewGrid(spec)
	for iy := 0; iy < n; iy++ {
		for ix := 0; ix < n; ix++ {
			g.Set(ix, iy, 10-spec.Center(ix, iy).Norm())
		}
	}
	return g
}

func TestContourCircle(t *testing.T) {
	g := radialGrid(100)
	const level = 5.0 // iso-circle radius 5
	segs := g.Contour(level)
	if len(segs) < 40 {
		t.Fatalf("only %d segments", len(segs))
	}
	totalLen := 0.0
	for _, s := range segs {
		for _, p := range []geom.Point{s.A, s.B} {
			if r := p.Norm(); math.Abs(r-5) > 0.15 {
				t.Fatalf("contour point at radius %v, want 5", r)
			}
		}
		totalLen += s.A.Dist(s.B)
	}
	// Total length ≈ circumference 2π·5.
	if want := 2 * math.Pi * 5; math.Abs(totalLen-want)/want > 0.03 {
		t.Errorf("contour length %v, want ≈ %v", totalLen, want)
	}
}

func TestContourNoCrossing(t *testing.T) {
	g := radialGrid(30)
	if segs := g.Contour(1e9); len(segs) != 0 {
		t.Errorf("level above max produced %d segments", len(segs))
	}
	if segs := g.Contour(-1e9); len(segs) != 0 {
		t.Errorf("level below min produced %d segments", len(segs))
	}
}

func TestContourSaddle(t *testing.T) {
	// A 2x2-cell saddle: opposite corners high.
	spec := geom.NewPixelGrid(geom.BBox{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2}, 2, 2)
	g := NewGrid(spec)
	g.Set(0, 0, 1)
	g.Set(1, 1, 1)
	g.Set(1, 0, -1)
	g.Set(0, 1, -1)
	segs := g.Contour(0)
	// Saddle cell must produce exactly two segments.
	if len(segs) != 2 {
		t.Fatalf("saddle produced %d segments, want 2", len(segs))
	}
	for _, s := range segs {
		if s.A == s.B {
			t.Error("degenerate segment")
		}
	}
}

func TestAreaAbove(t *testing.T) {
	g := radialGrid(200)
	// Area above level 5 ≈ area of the radius-5 disc.
	got := g.AreaAbove(5)
	want := math.Pi * 25
	if math.Abs(got-want)/want > 0.03 {
		t.Errorf("AreaAbove = %v, want ≈ %v", got, want)
	}
	if g.AreaAbove(1e9) != 0 {
		t.Error("area above max should be 0")
	}
	full := g.Spec.Box.Area()
	if a := g.AreaAbove(-1e9); math.Abs(a-full) > 1e-9 {
		t.Errorf("area above min = %v, want %v", a, full)
	}
}

func TestCountGrid(t *testing.T) {
	spec := geom.NewPixelGrid(geom.BBox{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, 2, 2)
	pts := []geom.Point{
		{X: 1, Y: 1}, {X: 2, Y: 2}, // bottom-left cell
		{X: 7, Y: 8},   // top-right
		{X: 50, Y: 50}, // outside: ignored
	}
	g := CountGrid(pts, spec)
	if g.At(0, 0) != 2 {
		t.Errorf("cell(0,0) = %v", g.At(0, 0))
	}
	if g.At(1, 1) != 1 {
		t.Errorf("cell(1,1) = %v", g.At(1, 1))
	}
	if g.Sum() != 3 {
		t.Errorf("total = %v (outside point must not count)", g.Sum())
	}
}
