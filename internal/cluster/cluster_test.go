package cluster

import (
	"math/rand"
	"testing"

	"geostat/internal/dataset"
	"geostat/internal/geom"
)

var box = geom.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}

func blobs(seed int64, n int) []geom.Point {
	r := rand.New(rand.NewSource(seed))
	return dataset.GaussianClusters(r, n, box, []dataset.Cluster{
		{Center: geom.Point{X: 20, Y: 20}, Sigma: 2, Weight: 1},
		{Center: geom.Point{X: 80, Y: 30}, Sigma: 2, Weight: 1},
		{Center: geom.Point{X: 50, Y: 80}, Sigma: 2, Weight: 1},
	}, 0).Points()
}

func TestDBSCANValidation(t *testing.T) {
	pts := blobs(1, 30)
	if _, err := DBSCAN(pts, 0, 3); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := DBSCAN(pts, 1, 0); err == nil {
		t.Error("minPts=0 accepted")
	}
	if _, err := DBSCANNaive(pts, -1, 3); err == nil {
		t.Error("negative eps accepted")
	}
}

func TestDBSCANFindsPlantedClusters(t *testing.T) {
	pts := blobs(2, 600)
	labels, err := DBSCAN(pts, 2.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := NumClusters(labels); got != 3 {
		t.Fatalf("clusters = %d, want 3", got)
	}
	// Points near the same planted center share a label.
	centerLabel := func(c geom.Point) int {
		for i, p := range pts {
			if p.Dist(c) < 1 {
				return labels[i]
			}
		}
		return Noise
	}
	l1 := centerLabel(geom.Point{X: 20, Y: 20})
	l2 := centerLabel(geom.Point{X: 80, Y: 30})
	l3 := centerLabel(geom.Point{X: 50, Y: 80})
	if l1 == Noise || l2 == Noise || l3 == Noise {
		t.Fatal("planted center labelled noise")
	}
	if l1 == l2 || l2 == l3 || l1 == l3 {
		t.Errorf("planted clusters merged: %d %d %d", l1, l2, l3)
	}
}

func TestDBSCANNoise(t *testing.T) {
	pts := blobs(3, 300)
	// Add isolated outliers.
	outliers := []geom.Point{{X: 5, Y: 95}, {X: 95, Y: 95}, {X: 95, Y: 5}}
	pts = append(pts, outliers...)
	labels, err := DBSCAN(pts, 2.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(pts) - 3; i < len(pts); i++ {
		if labels[i] != Noise {
			t.Errorf("outlier %d labelled %d, want Noise", i, labels[i])
		}
	}
}

func TestDBSCANGridMatchesNaive(t *testing.T) {
	for seed := int64(4); seed < 8; seed++ {
		pts := blobs(seed, 400)
		for _, eps := range []float64{1, 3, 8} {
			fast, err := DBSCAN(pts, eps, 4)
			if err != nil {
				t.Fatal(err)
			}
			slow, err := DBSCANNaive(pts, eps, 4)
			if err != nil {
				t.Fatal(err)
			}
			// Labels may be permuted between runs; compare partitions.
			if !samePartition(fast, slow) {
				t.Fatalf("seed %d eps %v: partitions differ", seed, eps)
			}
		}
	}
}

// samePartition checks two labelings induce the same partition with the
// same noise set.
func samePartition(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	mapAB := map[int]int{}
	mapBA := map[int]int{}
	for i := range a {
		if (a[i] == Noise) != (b[i] == Noise) {
			return false
		}
		if a[i] == Noise {
			continue
		}
		if m, ok := mapAB[a[i]]; ok {
			if m != b[i] {
				return false
			}
		} else {
			mapAB[a[i]] = b[i]
		}
		if m, ok := mapBA[b[i]]; ok {
			if m != a[i] {
				return false
			}
		} else {
			mapBA[b[i]] = a[i]
		}
	}
	return true
}

func TestDBSCANEmptyAndSingle(t *testing.T) {
	labels, err := DBSCAN(nil, 1, 2)
	if err != nil || len(labels) != 0 {
		t.Errorf("empty: %v %v", labels, err)
	}
	labels, err = DBSCAN([]geom.Point{{X: 1, Y: 1}}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != Noise {
		t.Errorf("single point label %d, want Noise", labels[0])
	}
	labels, _ = DBSCAN([]geom.Point{{X: 1, Y: 1}}, 1, 1)
	if labels[0] != 0 {
		t.Errorf("single point with minPts=1 label %d, want 0", labels[0])
	}
}

func TestKMeansValidation(t *testing.T) {
	pts := blobs(9, 50)
	r := rand.New(rand.NewSource(1))
	if _, err := KMeans(pts, 0, 10, r); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KMeans(pts, 51, 10, r); err == nil {
		t.Error("k>n accepted")
	}
}

func TestKMeansRecoversBlobs(t *testing.T) {
	pts := blobs(10, 900)
	r := rand.New(rand.NewSource(2))
	res, err := KMeans(pts, 3, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 3 || len(res.Labels) != len(pts) {
		t.Fatalf("shape: %d centers, %d labels", len(res.Centers), len(res.Labels))
	}
	// Each recovered center near one planted center, all distinct.
	planted := []geom.Point{{X: 20, Y: 20}, {X: 80, Y: 30}, {X: 50, Y: 80}}
	used := make([]bool, 3)
	for _, c := range res.Centers {
		found := false
		for i, p := range planted {
			if !used[i] && c.Dist(p) < 3 {
				used[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("center %v matches no planted blob", c)
		}
	}
	if res.Inertia <= 0 {
		t.Errorf("inertia = %v", res.Inertia)
	}
	if res.Iters < 1 {
		t.Errorf("iters = %d", res.Iters)
	}
}

func TestKMeansDeterministicWithSeed(t *testing.T) {
	pts := blobs(11, 300)
	a, err := KMeans(pts, 3, 50, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(pts, 3, 50, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed produced different labelings")
		}
	}
}

func TestKMeansDuplicatePoints(t *testing.T) {
	pts := make([]geom.Point, 40)
	for i := range pts {
		pts[i] = geom.Point{X: 5, Y: 5}
	}
	res, err := KMeans(pts, 3, 20, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Errorf("duplicate points inertia = %v", res.Inertia)
	}
}

func TestNumClusters(t *testing.T) {
	if NumClusters([]int{Noise, Noise}) != 0 {
		t.Error("all-noise count")
	}
	if NumClusters([]int{0, 1, 1, Noise, 2}) != 3 {
		t.Error("count wrong")
	}
	if NumClusters(nil) != 0 {
		t.Error("nil count")
	}
}
