// Package cluster implements the spatial clustering tools the paper's
// introduction groups with hotspot analysis ([18, 88]): DBSCAN (with the
// O(n²) baseline and a grid-index-accelerated variant — the paper cites
// the Ω(n^{4/3}) hardness results for exact Euclidean DBSCAN [48, 49]) and
// k-means with k-means++ seeding.
package cluster

import (
	"fmt"

	"geostat/internal/geom"
	gridindex "geostat/internal/index/grid"
)

// Noise is the label assigned to points in no cluster.
const Noise = -1

// DBSCANNaive runs DBSCAN with O(n²) neighbourhood queries. Labels are
// cluster ids from 0; noise points get Noise.
func DBSCANNaive(pts []geom.Point, eps float64, minPts int) ([]int, error) {
	return dbscan(pts, eps, minPts, func(i int, dst []int) []int {
		p := pts[i]
		e2 := eps * eps
		for j, q := range pts {
			if p.Dist2(q) <= e2 {
				dst = append(dst, j)
			}
		}
		return dst
	})
}

// DBSCAN runs DBSCAN with grid-index neighbourhood queries: the practical
// accelerated variant.
func DBSCAN(pts []geom.Point, eps float64, minPts int) ([]int, error) {
	idx := gridindex.New(pts, eps)
	return dbscan(pts, eps, minPts, func(i int, dst []int) []int {
		return idx.RangeQuery(pts[i], eps, dst)
	})
}

// dbscan is the standard label-propagation formulation: a core point (≥
// minPts neighbours including itself) seeds a cluster that expands through
// the neighbourhoods of its core members.
func dbscan(pts []geom.Point, eps float64, minPts int, neighbors func(i int, dst []int) []int) ([]int, error) {
	if !(eps > 0) {
		return nil, fmt.Errorf("cluster: eps must be positive, got %g", eps)
	}
	if minPts < 1 {
		return nil, fmt.Errorf("cluster: minPts must be >= 1, got %d", minPts)
	}
	const unvisited = -2
	labels := make([]int, len(pts))
	for i := range labels {
		labels[i] = unvisited
	}
	var queue, nbuf []int
	next := 0
	for i := range pts {
		if labels[i] != unvisited {
			continue
		}
		nbuf = neighbors(i, nbuf[:0])
		if len(nbuf) < minPts {
			labels[i] = Noise
			continue
		}
		c := next
		next++
		labels[i] = c
		queue = append(queue[:0], nbuf...)
		for len(queue) > 0 {
			j := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			if labels[j] == Noise {
				labels[j] = c // border point claimed by the cluster
			}
			if labels[j] != unvisited {
				continue
			}
			labels[j] = c
			nbuf = neighbors(j, nbuf[:0])
			if len(nbuf) >= minPts {
				queue = append(queue, nbuf...)
			}
		}
	}
	return labels, nil
}

// NumClusters returns the number of distinct non-noise labels.
func NumClusters(labels []int) int {
	max := -1
	for _, l := range labels {
		if l > max {
			max = l
		}
	}
	return max + 1
}
