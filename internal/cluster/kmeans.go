package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"geostat/internal/geom"
)

// KMeansResult holds a k-means clustering.
type KMeansResult struct {
	Centers []geom.Point
	Labels  []int
	Inertia float64 // sum of squared distances to assigned centers
	Iters   int
}

// KMeans runs Lloyd's algorithm with k-means++ seeding until assignment
// convergence or maxIters.
func KMeans(pts []geom.Point, k, maxIters int, rng *rand.Rand) (*KMeansResult, error) {
	n := len(pts)
	if k < 1 {
		return nil, fmt.Errorf("cluster: k must be >= 1, got %d", k)
	}
	if k > n {
		return nil, fmt.Errorf("cluster: k=%d exceeds n=%d", k, n)
	}
	if maxIters < 1 {
		maxIters = 100
	}
	centers := seedPlusPlus(pts, k, rng)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	var iters int
	for iters = 1; iters <= maxIters; iters++ {
		changed := false
		for i, p := range pts {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centers {
				if d := p.Dist2(ctr); d < bestD {
					best, bestD = c, d
				}
			}
			if labels[i] != best {
				labels[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		// Recompute centers; empty clusters re-seed on the farthest point.
		var sums = make([]geom.Point, k)
		counts := make([]int, k)
		for i, p := range pts {
			sums[labels[i]] = sums[labels[i]].Add(p)
			counts[labels[i]]++
		}
		for c := range centers {
			if counts[c] == 0 {
				centers[c] = farthestPoint(pts, centers)
				continue
			}
			centers[c] = sums[c].Scale(1 / float64(counts[c]))
		}
	}
	inertia := 0.0
	for i, p := range pts {
		inertia += p.Dist2(centers[labels[i]])
	}
	return &KMeansResult{Centers: centers, Labels: labels, Inertia: inertia, Iters: iters}, nil
}

// seedPlusPlus picks k initial centers with the k-means++ scheme.
func seedPlusPlus(pts []geom.Point, k int, rng *rand.Rand) []geom.Point {
	centers := make([]geom.Point, 0, k)
	centers = append(centers, pts[rng.Intn(len(pts))])
	d2 := make([]float64, len(pts))
	for len(centers) < k {
		total := 0.0
		last := centers[len(centers)-1]
		for i, p := range pts {
			d := p.Dist2(last)
			if len(centers) == 1 || d < d2[i] {
				d2[i] = d
			}
			total += d2[i]
		}
		if total == 0 {
			// All remaining points coincide with centers; duplicate one.
			centers = append(centers, pts[rng.Intn(len(pts))])
			continue
		}
		target := rng.Float64() * total
		for i := range pts {
			target -= d2[i]
			if target <= 0 {
				centers = append(centers, pts[i])
				break
			}
		}
		if target > 0 { // floating-point tail
			centers = append(centers, pts[len(pts)-1])
		}
	}
	return centers
}

func farthestPoint(pts []geom.Point, centers []geom.Point) geom.Point {
	best := pts[0]
	bestD := -1.0
	for _, p := range pts {
		near := math.Inf(1)
		for _, c := range centers {
			near = math.Min(near, p.Dist2(c))
		}
		if near > bestD {
			bestD = near
			best = p
		}
	}
	return best
}
