package getisord

import (
	"math"
	"math/rand"
	"testing"

	"geostat/internal/geom"
	"geostat/internal/weights"
)

func gridPoints(n int) []geom.Point {
	pts := make([]geom.Point, 0, n*n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			pts = append(pts, geom.Point{X: float64(x), Y: float64(y)})
		}
	}
	return pts
}

func bandW(t *testing.T, pts []geom.Point) *weights.Matrix {
	t.Helper()
	w, err := weights.DistanceBand(pts, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestValidation(t *testing.T) {
	pts := gridPoints(3)
	w := bandW(t, pts)
	if _, err := GeneralG([]float64{1, 2}, w, 0, 0); err == nil {
		t.Error("length mismatch accepted")
	}
	neg := make([]float64, len(pts))
	neg[0] = -1
	if _, err := GeneralG(neg, w, 0, 0); err == nil {
		t.Error("negative values accepted")
	}
	zeros := make([]float64, len(pts))
	if _, err := GeneralG(zeros, w, 0, 0); err == nil {
		t.Error("all-zero values accepted")
	}
	ok := make([]float64, len(pts))
	for i := range ok {
		ok[i] = 1
	}
	if _, err := LocalGStar(ok[:2], w); err == nil {
		t.Error("LocalGStar length mismatch accepted")
	}
	if _, err := LocalGStar(ok, w); err == nil {
		t.Error("constant values accepted by LocalGStar")
	}
}

// High values concentrated together → G above its permutation mean.
func TestGeneralGDetectsHighValueClustering(t *testing.T) {
	pts := gridPoints(10)
	w := bandW(t, pts)
	vals := make([]float64, len(pts))
	for i, p := range pts {
		if p.X < 3 && p.Y < 3 {
			vals[i] = 10
		} else {
			vals[i] = 1
		}
	}
	res, err := GeneralG(vals, w, 199, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Z < 2 {
		t.Errorf("clustered highs z = %v, want > 2", res.Z)
	}
	if res.P > 0.05 {
		t.Errorf("clustered highs p = %v", res.P)
	}
	if res.G <= res.PermMean {
		t.Errorf("G = %v not above permutation mean %v", res.G, res.PermMean)
	}
}

// Random values → insignificant G.
func TestGeneralGRandomInsignificant(t *testing.T) {
	pts := gridPoints(10)
	w := bandW(t, pts)
	r := rand.New(rand.NewSource(2))
	insig := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		vals := make([]float64, len(pts))
		for i := range vals {
			vals[i] = r.Float64() * 10
		}
		res, err := GeneralG(vals, w, 199, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		if res.P > 0.05 {
			insig++
		}
	}
	if insig < trials-2 {
		t.Errorf("random fields significant too often: %d/%d insignificant", insig, trials)
	}
}

func TestGeneralGExpected(t *testing.T) {
	pts := gridPoints(5)
	w := bandW(t, pts)
	vals := make([]float64, len(pts))
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	res, err := GeneralG(vals, w, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := float64(len(pts))
	want := w.S0() / (n * (n - 1))
	if math.Abs(res.Expected-want) > 1e-12 {
		t.Errorf("Expected = %v, want %v", res.Expected, want)
	}
}

// Gi*: hot inside a high blob, cold inside a low pocket, near zero in the
// flat background.
func TestLocalGStarHotCold(t *testing.T) {
	pts := gridPoints(12)
	w := bandW(t, pts)
	vals := make([]float64, len(pts))
	for i, p := range pts {
		switch {
		case p.X >= 1 && p.X <= 3 && p.Y >= 1 && p.Y <= 3:
			vals[i] = 20 // hot blob
		case p.X >= 8 && p.X <= 10 && p.Y >= 8 && p.Y <= 10:
			vals[i] = 0 // cold pocket
		default:
			vals[i] = 10
		}
	}
	z, err := LocalGStar(vals, w)
	if err != nil {
		t.Fatal(err)
	}
	hot := z[2*12+2]
	cold := z[9*12+9]
	if hot < 1.96 {
		t.Errorf("hot-spot z = %v, want >= 1.96", hot)
	}
	if cold > -1.96 {
		t.Errorf("cold-spot z = %v, want <= −1.96", cold)
	}
	// Background far from both: modest |z|.
	bg := z[6*12+0]
	if math.Abs(bg) > math.Abs(hot) {
		t.Errorf("background |z| = %v exceeds hot-spot %v", bg, hot)
	}
}

// Property: Gi* z-scores have mean ≈ 0 over all sites for random data.
func TestLocalGStarCentered(t *testing.T) {
	pts := gridPoints(15)
	w := bandW(t, pts)
	r := rand.New(rand.NewSource(3))
	vals := make([]float64, len(pts))
	for i := range vals {
		vals[i] = r.Float64() * 100
	}
	z, err := LocalGStar(vals, w)
	if err != nil {
		t.Fatal(err)
	}
	mean := 0.0
	for _, v := range z {
		mean += v
	}
	mean /= float64(len(z))
	if math.Abs(mean) > 0.3 {
		t.Errorf("mean Gi* = %v, want ≈ 0", mean)
	}
}
