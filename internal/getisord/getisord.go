// Package getisord implements the Getis-Ord statistics (Table 1 of the
// paper, [17, 59, 62]): the global General G (concentration of high values)
// with a permutation significance test, and the local Gi* hot/cold-spot
// statistic with its textbook z-score.
package getisord

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"geostat/internal/parallel"
	"geostat/internal/weights"
)

// The permutation RNGs are derived per-task inside parallel.MonteCarloScratch;
// math/rand appears here only as the *rand.Rand callback parameter type.

// Options configures the General G permutation test. Permutation p
// shuffles its own copy of the values with an RNG derived
// deterministically from (Seed, p), so results are bit-identical for
// every Workers value.
type Options struct {
	// Perms is the number of permutations; 0 skips the test.
	Perms int
	// Seed drives the permutation RNGs.
	Seed int64
	// Workers fans permutations out across goroutines (0/1 serial, <0
	// GOMAXPROCS).
	Workers int
	// Ctx optionally bounds the permutation test: workers check it between
	// task chunks and the entry point returns ctx.Err() (with a nil
	// result) when it fires. Nil means no cancellation.
	Ctx context.Context
}

// context returns the effective context of the test.
func (o *Options) context() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// GeneralGResult is the global General G with its permutation test.
type GeneralGResult struct {
	G        float64 // observed statistic
	Expected float64 // E[G] = S0/(n(n−1)) for binary weights
	PermMean float64
	PermStd  float64
	Z        float64
	P        float64 // two-sided pseudo p-value
	Perms    int
}

// GeneralG computes Getis-Ord General G over the weight matrix:
//
//	G = Σ_ij w_ij·x_i·x_j / Σ_{i≠j} x_i·x_j
//
// Values must be non-negative (the statistic is defined for positive
// attributes). perms > 0 adds a permutation test whose shuffles are
// derived deterministically from seed. Equivalent to GeneralGOpt with the
// given seed and every core.
func GeneralG(values []float64, w *weights.Matrix, perms int, seed int64) (*GeneralGResult, error) {
	return GeneralGOpt(values, w, Options{Perms: perms, Seed: seed, Workers: -1})
}

// GeneralGOpt computes General G with an explicit permutation-test
// configuration; permutations fan out across opt.Workers with results
// bit-identical for every worker count.
func GeneralGOpt(values []float64, w *weights.Matrix, opt Options) (*GeneralGResult, error) {
	n := len(values)
	if n != w.N {
		return nil, fmt.Errorf("getisord: %d values but weight matrix over %d sites", n, w.N)
	}
	if n < 3 {
		return nil, fmt.Errorf("getisord: need at least 3 sites, got %d", n)
	}
	for i, v := range values {
		if v < 0 {
			return nil, fmt.Errorf("getisord: General G requires non-negative values (index %d is %g)", i, v)
		}
	}
	// Denominator Σ_{i≠j} x_i x_j = (Σx)² − Σx² is permutation-invariant.
	sum, sum2 := 0.0, 0.0
	for _, v := range values {
		sum += v
		sum2 += v * v
	}
	den := sum*sum - sum2
	if den <= 0 {
		return nil, fmt.Errorf("getisord: degenerate values (all zero or a single nonzero)")
	}
	obs := gNumerator(values, w) / den
	res := &GeneralGResult{
		G:        obs,
		Expected: w.S0() / (float64(n) * float64(n-1)),
		Perms:    opt.Perms,
	}
	if opt.Perms <= 0 {
		return res, nil
	}
	samples := make([]float64, opt.Perms)
	if _, err := parallel.MonteCarloScratchCtx(opt.context(), opt.Perms, opt.Workers, opt.Seed,
		func() []float64 { return make([]float64, n) },
		func(rng *rand.Rand, perm []float64, p int) {
			copy(perm, values)
			rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			samples[p] = gNumerator(perm, w) / den
		}); err != nil {
		return nil, err
	}
	mean, std := meanStd(samples)
	res.PermMean, res.PermStd = mean, std
	if std > 0 {
		res.Z = (obs - mean) / std
	}
	extreme := 0
	for _, s := range samples {
		if math.Abs(s-mean) >= math.Abs(obs-mean) {
			extreme++
		}
	}
	res.P = float64(extreme+1) / float64(opt.Perms+1)
	return res, nil
}

func gNumerator(values []float64, w *weights.Matrix) float64 {
	num := 0.0
	for i := 0; i < w.N; i++ {
		xi := values[i]
		if xi == 0 {
			continue
		}
		w.ForEachNeighbor(i, func(j int, wij float64) {
			num += wij * xi * values[j]
		})
	}
	return num
}

// LocalGStar computes the Gi* statistic for every site — the hot-spot
// z-score used by ArcGIS's "Hot Spot Analysis" tool:
//
//	Gi* = [Σ_j w_ij·x_j − x̄·W_i] / (S·sqrt[(n·Σ_j w_ij² − W_i²)/(n−1)])
//
// where the self-neighbour (w_ii = 1) is included per the Gi* definition,
// W_i = Σ_j w_ij, x̄ and S are the global mean and standard deviation.
// The result is directly interpretable as a standard normal z-score:
// ≥ +1.96 hot at 5%, ≤ −1.96 cold.
func LocalGStar(values []float64, w *weights.Matrix) ([]float64, error) {
	n := len(values)
	if n != w.N {
		return nil, fmt.Errorf("getisord: %d values but weight matrix over %d sites", n, w.N)
	}
	if n < 3 {
		return nil, fmt.Errorf("getisord: need at least 3 sites, got %d", n)
	}
	mean, sd := meanStd(values)
	if sd == 0 {
		return nil, fmt.Errorf("getisord: constant values (zero variance)")
	}
	out := make([]float64, n)
	nf := float64(n)
	for i := 0; i < n; i++ {
		// Include self with weight 1 (the * in Gi*).
		lag := values[i]
		wi := 1.0
		w2 := 1.0
		w.ForEachNeighbor(i, func(j int, wij float64) {
			lag += wij * values[j]
			wi += wij
			w2 += wij * wij
		})
		den := sd * math.Sqrt((nf*w2-wi*wi)/(nf-1))
		if den == 0 {
			continue
		}
		out[i] = (lag - mean*wi) / den
	}
	return out, nil
}

func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}
