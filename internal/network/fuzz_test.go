package network

import (
	"bytes"
	"testing"
)

// FuzzReadEdgeCSV checks the edge-list reader never panics and that any
// graph it accepts has a stable CSV encoding: write/read/write must be a
// fixpoint (node ids follow first-appearance order in the edge list, and
// lengths are formatted with shortest round-trip precision).
func FuzzReadEdgeCSV(f *testing.F) {
	f.Add([]byte("x1,y1,x2,y2\n0,0,1,0\n1,0,1,1\n"))
	f.Add([]byte("x1,y1,x2,y2,length\n0,0,3,4,5\n"))
	f.Add([]byte("x1,y1,x2,y2\n0,0,0,0\n"))
	f.Add([]byte("x1,y1\n1,2\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadEdgeCSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf1 bytes.Buffer
		if err := WriteEdgeCSV(&buf1, g); err != nil {
			t.Fatalf("writing an accepted graph: %v", err)
		}
		g2, err := ReadEdgeCSV(bytes.NewReader(buf1.Bytes()))
		if err != nil {
			t.Fatalf("re-reading written output: %v\noutput: %q", err, buf1.Bytes())
		}
		var buf2 bytes.Buffer
		if err := WriteEdgeCSV(&buf2, g2); err != nil {
			t.Fatalf("second write: %v", err)
		}
		if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
			t.Fatalf("edge CSV round-trip not stable:\nfirst:  %q\nsecond: %q", buf1.Bytes(), buf2.Bytes())
		}
	})
}
