package network

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"geostat/internal/geom"
)

func TestEdgeCSVRoundTrip(t *testing.T) {
	g := GridNetwork(4, 3, 10, geom.Point{X: 5, Y: 5})
	var buf bytes.Buffer
	if err := WriteEdgeCSV(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("shape: %d/%d nodes, %d/%d edges",
			back.NumNodes(), g.NumNodes(), back.NumEdges(), g.NumEdges())
	}
	if math.Abs(back.TotalLength()-g.TotalLength()) > 1e-9 {
		t.Errorf("TotalLength %v vs %v", back.TotalLength(), g.TotalLength())
	}
	// Shortest paths must survive the round trip (node ids may differ, so
	// compare distances between snapped positions).
	for _, probe := range []geom.Point{{X: 5, Y: 5}, {X: 35, Y: 25}} {
		src1, _ := g.Snap(probe)
		src2, _ := back.Snap(probe)
		dst := geom.Point{X: 25, Y: 15}
		d1, _ := g.Snap(dst)
		d2, _ := back.Snap(dst)
		dj1 := NewDijkstra(g)
		dj1.FromPosition(src1, math.Inf(1))
		dj2 := NewDijkstra(back)
		dj2.FromPosition(src2, math.Inf(1))
		v1 := dj1.PositionDist(d1, src1, true)
		v2 := dj2.PositionDist(d2, src2, true)
		if math.Abs(v1-v2) > 1e-9 {
			t.Errorf("probe %v: distance %v vs %v", probe, v1, v2)
		}
	}
}

func TestEdgeCSVWithoutLength(t *testing.T) {
	in := "x1,y1,x2,y2\n0,0,3,4\n3,4,3,10\n"
	g, err := ReadEdgeCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("shape: %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	if math.Abs(g.TotalLength()-11) > 1e-12 { // 5 + 6
		t.Errorf("TotalLength = %v, want 11", g.TotalLength())
	}
}

func TestEdgeCSVCustomLength(t *testing.T) {
	in := "x1,y1,x2,y2,length\n0,0,1,0,99\n"
	g, err := ReadEdgeCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Edge(0).Length != 99 {
		t.Errorf("length = %v", g.Edge(0).Length)
	}
}

func TestEdgeCSVErrors(t *testing.T) {
	cases := []string{
		"a,b,c,d\n",                       // bad header
		"x1,y1,x2,y2\n1,2,3\n",            // short row
		"x1,y1,x2,y2\n1,2,3,zap\n",        // non-numeric
		"x1,y1,x2,y2\nNaN,2,3,4\n",        // non-finite
		"x1,y1,x2,y2,length\n0,0,1,0,0\n", // zero length rejected by Build
	}
	for i, s := range cases {
		if _, err := ReadEdgeCSV(strings.NewReader(s)); err == nil {
			t.Errorf("case %d accepted: %q", i, s)
		}
	}
}

func TestEdgeCSVFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "net.csv")
	g := GridNetwork(3, 3, 5, geom.Point{})
	if err := WriteEdgeCSVFile(path, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Errorf("edges %d vs %d", back.NumEdges(), g.NumEdges())
	}
}
