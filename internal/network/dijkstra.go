package network

import "math"

// Dijkstra is a reusable single-source shortest-path engine. Reuse across
// sources amortises allocation: the per-run reset touches only the nodes
// reached by the previous run, so n bounded searches over a graph with V
// nodes cost O(Σ reached · log V), not O(n·V).
type Dijkstra struct {
	g       *Graph
	dist    []float64
	parent  []int32 // edge id through which each node was settled; -1 unset
	touched []int32
	heap    distHeap
}

// NewDijkstra returns an engine bound to g.
func NewDijkstra(g *Graph) *Dijkstra {
	d := &Dijkstra{
		g:      g,
		dist:   make([]float64, g.NumNodes()),
		parent: make([]int32, g.NumNodes()),
	}
	for i := range d.dist {
		d.dist[i] = math.Inf(1)
		d.parent[i] = -1
	}
	return d
}

// reset clears state from the previous run.
func (d *Dijkstra) reset() {
	for _, u := range d.touched {
		d.dist[u] = math.Inf(1)
		d.parent[u] = -1
	}
	d.touched = d.touched[:0]
	d.heap = d.heap[:0]
}

// seed sets a tentative source distance (multiple seeds express a source
// position in the interior of an edge: its two endpoints with offset
// distances). via records the edge the seed mass arrives through.
func (d *Dijkstra) seed(u int32, dist float64) {
	d.seedVia(u, dist, -1)
}

func (d *Dijkstra) seedVia(u int32, dist float64, via int32) {
	if dist < d.dist[u] {
		if math.IsInf(d.dist[u], 1) {
			d.touched = append(d.touched, u)
		}
		d.dist[u] = dist
		d.parent[u] = via
		d.heap.push(nodeDist{u, dist})
	}
}

// run executes Dijkstra until the heap empties or every remaining node is
// farther than maxDist (use +Inf for an unbounded search).
func (d *Dijkstra) run(maxDist float64) {
	for len(d.heap) > 0 {
		nd := d.heap.pop()
		if nd.dist > d.dist[nd.node] {
			continue // stale entry
		}
		if nd.dist > maxDist {
			break
		}
		d.g.Neighbors(nd.node, func(v, ei int32, w float64) {
			alt := nd.dist + w
			if alt < d.dist[v] && alt <= maxDist {
				if math.IsInf(d.dist[v], 1) {
					d.touched = append(d.touched, v)
				}
				d.dist[v] = alt
				d.parent[v] = ei
				d.heap.push(nodeDist{v, alt})
			}
		})
	}
}

// FromNode computes distances from node src to all nodes within maxDist.
// The returned slice aliases the engine's state and is valid until the next
// call; unreachable (or out-of-range) nodes hold +Inf.
func (d *Dijkstra) FromNode(src int32, maxDist float64) []float64 {
	d.reset()
	d.seed(src, 0)
	d.run(maxDist)
	return d.dist
}

// FromPosition computes distances from a network position to all nodes
// within maxDist, seeding both endpoints of the position's edge. Each
// seed's parent edge is the source edge itself, so shortest-path-tree
// consumers see the mass arriving at the endpoints along that edge.
func (d *Dijkstra) FromPosition(pos Position, maxDist float64) []float64 {
	d.reset()
	e := d.g.Edge(pos.Edge)
	d.seedVia(e.A, pos.Offset, pos.Edge)
	d.seedVia(e.B, e.Length-pos.Offset, pos.Edge)
	d.run(maxDist)
	return d.dist
}

// ParentEdge returns the edge through which node u was settled in the last
// run (-1 if u is an edge-less seed or unreached). Together with Reached
// this exposes the shortest-path tree.
func (d *Dijkstra) ParentEdge(u int32) int32 { return d.parent[u] }

// Dist returns node u's distance from the last run's source.
func (d *Dijkstra) Dist(u int32) float64 { return d.dist[u] }

// Reached returns the nodes touched by the last run (distances <= maxDist
// plus frontier nodes). Useful for enumerating candidate edges without a
// full scan.
func (d *Dijkstra) Reached() []int32 { return d.touched }

// PositionDist returns the network distance from the last run's source to
// the given position, exploiting that nodeDist already holds the source→
// endpoint distances. sameEdge handles a source on the same edge: pass the
// source position (ok=true) to enable the direct along-edge path.
func (d *Dijkstra) PositionDist(pos Position, src Position, srcValid bool) float64 {
	e := d.g.Edge(pos.Edge)
	via := math.Min(d.dist[e.A]+pos.Offset, d.dist[e.B]+e.Length-pos.Offset)
	if srcValid && src.Edge == pos.Edge {
		via = math.Min(via, math.Abs(src.Offset-pos.Offset))
	}
	return via
}

// nodeDist is a heap entry.
type nodeDist struct {
	node int32
	dist float64
}

// distHeap is a binary min-heap on dist. A hand-rolled heap (rather than
// container/heap) avoids interface boxing in the innermost loop of every
// network tool.
type distHeap []nodeDist

func (h *distHeap) push(nd nodeDist) {
	*h = append(*h, nd)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent].dist <= (*h)[i].dist {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *distHeap) pop() nodeDist {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && old[l].dist < old[small].dist {
			small = l
		}
		if r < n && old[r].dist < old[small].dist {
			small = r
		}
		if small == i {
			break
		}
		old[i], old[small] = old[small], old[i]
		i = small
	}
	return top
}
