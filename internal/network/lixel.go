package network

import "math"

// Lixel is one "linear pixel": a subsegment of an edge, the evaluation unit
// of NKDV (the network analogue of Definition 1's pixels). Lixels are
// produced by Lixelize, which splits every edge into pieces of roughly the
// requested length.
type Lixel struct {
	Edge       int32
	Start, End float64 // offsets along the edge, Start < End
}

// Center returns the lixel's center offset along its edge.
func (l Lixel) Center() float64 { return (l.Start + l.End) / 2 }

// Length returns the lixel's length.
func (l Lixel) Length() float64 { return l.End - l.Start }

// Position returns the lixel center as a network position.
func (l Lixel) Position() Position { return Position{Edge: l.Edge, Offset: l.Center()} }

// Lixelize splits every edge of g into lixels of approximately targetLen
// (each edge gets ceil(length/targetLen) equal pieces, so lixels never
// straddle nodes). It returns the lixels ordered by edge id then offset,
// plus edgeOff so that lixels of edge e are lixels[edgeOff[e]:edgeOff[e+1]].
func Lixelize(g *Graph, targetLen float64) (lixels []Lixel, edgeOff []int32) {
	if !(targetLen > 0) {
		targetLen = 1
	}
	edgeOff = make([]int32, g.NumEdges()+1)
	for ei := 0; ei < g.NumEdges(); ei++ {
		e := g.Edge(int32(ei))
		pieces := int(math.Ceil(e.Length / targetLen))
		if pieces < 1 {
			pieces = 1
		}
		step := e.Length / float64(pieces)
		for i := 0; i < pieces; i++ {
			start := float64(i) * step
			end := start + step
			if i == pieces-1 {
				end = e.Length
			}
			lixels = append(lixels, Lixel{Edge: int32(ei), Start: start, End: end})
		}
		edgeOff[ei+1] = int32(len(lixels))
	}
	return lixels, edgeOff
}
