package network

import (
	"math"
	"math/rand"

	"geostat/internal/geom"
	"geostat/internal/parallel"
)

// GridNetwork returns a Manhattan grid road network with nx×ny
// intersections spaced `spacing` apart, anchored at origin. This is the
// synthetic stand-in for the urban road networks used by the network-tool
// literature the paper reviews (traffic accidents on street grids).
func GridNetwork(nx, ny int, spacing float64, origin geom.Point) *Graph {
	b := NewBuilder()
	id := func(ix, iy int) int32 { return int32(iy*nx + ix) }
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			b.AddNode(geom.Point{
				X: origin.X + float64(ix)*spacing,
				Y: origin.Y + float64(iy)*spacing,
			})
		}
	}
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			if ix+1 < nx {
				b.AddEdge(id(ix, iy), id(ix+1, iy))
			}
			if iy+1 < ny {
				b.AddEdge(id(ix, iy), id(ix, iy+1))
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		panic("network: GridNetwork construction failed: " + err.Error())
	}
	return g
}

// RingRadialNetwork returns a network of `rings` concentric ring roads
// crossed by `spokes` radial roads around center — the Figure 3 topology
// where two planar-close points can be network-far (adjacent spokes near
// the center are connected only via ring roads further out).
func RingRadialNetwork(rings, spokes int, ringSpacing float64, center geom.Point) *Graph {
	b := NewBuilder()
	hub := b.AddNode(center)
	// nodeAt[r][s] = node on ring r (1-based radius), spoke s.
	nodeAt := make([][]int32, rings)
	for r := 0; r < rings; r++ {
		nodeAt[r] = make([]int32, spokes)
		radius := float64(r+1) * ringSpacing
		for s := 0; s < spokes; s++ {
			theta := 2 * math.Pi * float64(s) / float64(spokes)
			nodeAt[r][s] = b.AddNode(geom.Point{
				X: center.X + radius*math.Cos(theta),
				Y: center.Y + radius*math.Sin(theta),
			})
		}
	}
	for s := 0; s < spokes; s++ {
		// Radial segments: hub -> ring 1 -> ... -> ring R.
		b.AddEdge(hub, nodeAt[0][s])
		for r := 0; r+1 < rings; r++ {
			b.AddEdge(nodeAt[r][s], nodeAt[r+1][s])
		}
		// Ring segments (arc length as weight, not chord, to model the road).
		for r := 0; r < rings; r++ {
			next := (s + 1) % spokes
			arc := 2 * math.Pi * float64(r+1) * ringSpacing / float64(spokes)
			b.AddEdgeLen(nodeAt[r][s], nodeAt[r][next], arc)
		}
	}
	g, err := b.Build()
	if err != nil {
		panic("network: RingRadialNetwork construction failed: " + err.Error())
	}
	return g
}

// RandomPositions returns n positions uniformly distributed over the
// network by length — the CSR null model on a network, used for network
// K-function envelopes (Definition 3 restricted to the network). The
// placement is reproducible from seed.
func RandomPositions(g *Graph, n int, seed int64) []Position {
	return RandomPositionsRand(parallel.NewRand(seed), g, n)
}

// RandomPositionsRand is RandomPositions drawing from an existing seeded
// generator — the form used inside parallel.MonteCarlo envelope loops,
// where each simulation owns a per-task RNG.
func RandomPositionsRand(r *rand.Rand, g *Graph, n int) []Position {
	// Cumulative edge lengths for proportional sampling.
	cum := make([]float64, g.NumEdges()+1)
	for ei := 0; ei < g.NumEdges(); ei++ {
		cum[ei+1] = cum[ei] + g.Edge(int32(ei)).Length
	}
	total := cum[g.NumEdges()]
	out := make([]Position, n)
	for i := range out {
		target := r.Float64() * total
		// Binary search for the edge containing the target length.
		lo, hi := 0, g.NumEdges()
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid+1] <= target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo >= g.NumEdges() {
			lo = g.NumEdges() - 1
		}
		out[i] = Position{Edge: int32(lo), Offset: target - cum[lo]}
	}
	return out
}

// ClusteredPositions returns n positions concentrated around nCenters
// random "hotspot" positions: each event picks a center, then a position
// within network distance at most spread of it (by snapping a planar
// Gaussian jitter). Used to exercise network hotspot detection. The
// placement is reproducible from seed.
func ClusteredPositions(g *Graph, n, nCenters int, spread float64, seed int64) []Position {
	return ClusteredPositionsRand(parallel.NewRand(seed), g, n, nCenters, spread)
}

// ClusteredPositionsRand is ClusteredPositions drawing from an existing
// seeded generator.
func ClusteredPositionsRand(r *rand.Rand, g *Graph, n, nCenters int, spread float64) []Position {
	centers := RandomPositionsRand(r, g, nCenters)
	out := make([]Position, n)
	for i := range out {
		c := centers[r.Intn(len(centers))]
		p := g.PointAt(c.Edge, c.Offset)
		jittered := geom.Point{
			X: p.X + r.NormFloat64()*spread,
			Y: p.Y + r.NormFloat64()*spread,
		}
		pos, _ := g.Snap(jittered)
		out[i] = pos
	}
	return out
}
