// Package network provides the road-network substrate behind the paper's
// network-constrained tools (§2.2 NKDV, §2.3 network K-function): a
// weighted undirected graph in CSR form, bounded Dijkstra searches, events
// snapped onto edges, lixels (the network analogue of pixels), and
// synthetic network generators replacing the paper's real road networks
// (see DESIGN.md's substitution table).
//
// Positions on the network are expressed as (edge, offset-from-edge-start).
// Shortest-path distance between two positions is computed through the
// edge endpoints, with a same-edge shortcut — the standard formulation from
// Okabe & Yamada [74].
package network

import (
	"fmt"
	"math"

	"geostat/internal/geom"
)

// Edge is one undirected road segment between two graph nodes.
type Edge struct {
	A, B   int32   // endpoint node ids
	Length float64 // positive edge length (network distance units)
}

// Graph is an immutable weighted undirected graph. Build with Builder.
type Graph struct {
	nodes []geom.Point
	edges []Edge

	// CSR adjacency: for node u, adjacency entries are
	// adjTo/adjEdge/adjW[adjOff[u]:adjOff[u+1]].
	adjOff  []int32
	adjTo   []int32
	adjEdge []int32
	adjW    []float64

	totalLen float64
}

// Builder accumulates nodes and edges for a Graph.
type Builder struct {
	nodes []geom.Point
	edges []Edge
}

// NewBuilder returns an empty graph builder.
func NewBuilder() *Builder { return &Builder{} }

// AddNode adds a node at p and returns its id.
func (b *Builder) AddNode(p geom.Point) int32 {
	b.nodes = append(b.nodes, p)
	return int32(len(b.nodes) - 1)
}

// AddEdge adds an undirected edge between nodes a and b with the Euclidean
// length of the segment. It returns the edge id.
func (b *Builder) AddEdge(a, bn int32) int32 {
	return b.AddEdgeLen(a, bn, b.nodes[a].Dist(b.nodes[bn]))
}

// AddEdgeLen adds an undirected edge with an explicit length (for networks
// whose traversal cost differs from geometric length). It returns the edge
// id.
func (b *Builder) AddEdgeLen(a, bn int32, length float64) int32 {
	b.edges = append(b.edges, Edge{A: a, B: bn, Length: length})
	return int32(len(b.edges) - 1)
}

// Build validates and freezes the builder into a Graph.
func (b *Builder) Build() (*Graph, error) {
	n := int32(len(b.nodes))
	for i, e := range b.edges {
		if e.A < 0 || e.A >= n || e.B < 0 || e.B >= n {
			return nil, fmt.Errorf("network: edge %d references missing node (%d-%d, %d nodes)", i, e.A, e.B, n)
		}
		if !(e.Length > 0) || math.IsInf(e.Length, 1) {
			return nil, fmt.Errorf("network: edge %d has invalid length %g", i, e.Length)
		}
	}
	g := &Graph{
		nodes: append([]geom.Point(nil), b.nodes...),
		edges: append([]Edge(nil), b.edges...),
	}
	// Build CSR adjacency (each undirected edge appears in both endpoint
	// lists).
	deg := make([]int32, n+1)
	for _, e := range g.edges {
		deg[e.A+1]++
		deg[e.B+1]++
		g.totalLen += e.Length
	}
	for u := int32(0); u < n; u++ {
		deg[u+1] += deg[u]
	}
	g.adjOff = deg
	m := len(g.edges) * 2
	g.adjTo = make([]int32, m)
	g.adjEdge = make([]int32, m)
	g.adjW = make([]float64, m)
	cursor := make([]int32, n)
	put := func(u, v, ei int32, w float64) {
		slot := g.adjOff[u] + cursor[u]
		g.adjTo[slot] = v
		g.adjEdge[slot] = ei
		g.adjW[slot] = w
		cursor[u]++
	}
	for ei, e := range g.edges {
		put(e.A, e.B, int32(ei), e.Length)
		put(e.B, e.A, int32(ei), e.Length)
	}
	return g, nil
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Node returns the location of node u.
func (g *Graph) Node(u int32) geom.Point { return g.nodes[u] }

// Edge returns edge ei.
func (g *Graph) Edge(ei int32) Edge { return g.edges[ei] }

// TotalLength returns the summed length of all edges — the "area" of the
// network for intensity normalisation (events per unit length).
func (g *Graph) TotalLength() float64 { return g.totalLen }

// Neighbors calls fn for every edge incident to u.
func (g *Graph) Neighbors(u int32, fn func(v, edgeID int32, w float64)) {
	for i := g.adjOff[u]; i < g.adjOff[u+1]; i++ {
		fn(g.adjTo[i], g.adjEdge[i], g.adjW[i])
	}
}

// PointAt returns the planar location of the position at offset along edge
// ei (offset clamped to [0, Length]).
func (g *Graph) PointAt(ei int32, offset float64) geom.Point {
	e := g.edges[ei]
	t := offset / e.Length
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	a, b := g.nodes[e.A], g.nodes[e.B]
	return geom.Point{X: a.X + t*(b.X-a.X), Y: a.Y + t*(b.Y-a.Y)}
}

// Components labels each node with its connected-component id (0-based)
// and returns the labels with the component count. Network tools assume
// reachability; a loaded network with several components usually signals
// a data problem (cmd/nkdv warns on it).
func (g *Graph) Components() (labels []int, count int) {
	labels = make([]int, g.NumNodes())
	for i := range labels {
		labels[i] = -1
	}
	var queue []int32
	for start := int32(0); start < int32(g.NumNodes()); start++ {
		if labels[start] != -1 {
			continue
		}
		labels[start] = count
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			g.Neighbors(u, func(v, _ int32, _ float64) {
				if labels[v] == -1 {
					labels[v] = count
					queue = append(queue, v)
				}
			})
		}
		count++
	}
	return labels, count
}

// Position is a location on the network: offset along edge Edge from its A
// endpoint, 0 <= Offset <= edge length.
type Position struct {
	Edge   int32
	Offset float64
}

// Snap maps an arbitrary planar point to the nearest network position by
// scanning every edge (O(E); snapping happens once per event, far from the
// hot path). It returns the position and the planar snap distance. Snapping
// an empty graph returns a zero Position and +Inf.
func (g *Graph) Snap(p geom.Point) (Position, float64) {
	best := Position{}
	bestD2 := math.Inf(1)
	for ei, e := range g.edges {
		a, b := g.nodes[e.A], g.nodes[e.B]
		t, proj := projectOnSegment(p, a, b)
		if d2 := p.Dist2(proj); d2 < bestD2 {
			bestD2 = d2
			best = Position{Edge: int32(ei), Offset: t * e.Length}
		}
	}
	return best, math.Sqrt(bestD2)
}

// projectOnSegment returns the parameter t in [0,1] and the closest point
// to p on segment ab.
func projectOnSegment(p, a, b geom.Point) (float64, geom.Point) {
	ab := b.Sub(a)
	den := ab.X*ab.X + ab.Y*ab.Y
	if den == 0 {
		return 0, a
	}
	t := ((p.X-a.X)*ab.X + (p.Y-a.Y)*ab.Y) / den
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return t, geom.Point{X: a.X + t*ab.X, Y: a.Y + t*ab.Y}
}
