package network

import (
	"math"
	"math/rand"
	"testing"

	"geostat/internal/geom"
)

func line3() *Graph {
	// 0 --5-- 1 --5-- 2 along the x axis.
	b := NewBuilder()
	n0 := b.AddNode(geom.Point{X: 0, Y: 0})
	n1 := b.AddNode(geom.Point{X: 5, Y: 0})
	n2 := b.AddNode(geom.Point{X: 10, Y: 0})
	b.AddEdge(n0, n1)
	b.AddEdge(n1, n2)
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder()
	n0 := b.AddNode(geom.Point{})
	b.AddEdgeLen(n0, 5, 1) // missing node
	if _, err := b.Build(); err == nil {
		t.Error("edge to missing node accepted")
	}
	b = NewBuilder()
	n0 = b.AddNode(geom.Point{})
	n1 := b.AddNode(geom.Point{X: 1, Y: 0})
	b.AddEdgeLen(n0, n1, 0)
	if _, err := b.Build(); err == nil {
		t.Error("zero-length edge accepted")
	}
	b = NewBuilder()
	n0 = b.AddNode(geom.Point{})
	n1 = b.AddNode(geom.Point{X: 1, Y: 0})
	b.AddEdgeLen(n0, n1, math.Inf(1))
	if _, err := b.Build(); err == nil {
		t.Error("infinite edge accepted")
	}
}

func TestGraphBasics(t *testing.T) {
	g := line3()
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	if g.TotalLength() != 10 {
		t.Errorf("TotalLength = %v", g.TotalLength())
	}
	degree := 0
	g.Neighbors(1, func(v, e int32, w float64) {
		degree++
		if w != 5 {
			t.Errorf("edge weight %v", w)
		}
	})
	if degree != 2 {
		t.Errorf("node 1 degree = %d", degree)
	}
	if p := g.PointAt(0, 2.5); p != (geom.Point{X: 2.5, Y: 0}) {
		t.Errorf("PointAt = %v", p)
	}
	if p := g.PointAt(1, -3); p != (geom.Point{X: 5, Y: 0}) {
		t.Errorf("PointAt clamps low: %v", p)
	}
	if p := g.PointAt(1, 99); p != (geom.Point{X: 10, Y: 0}) {
		t.Errorf("PointAt clamps high: %v", p)
	}
}

func TestSnap(t *testing.T) {
	g := line3()
	pos, d := g.Snap(geom.Point{X: 3, Y: 4})
	if pos.Edge != 0 || math.Abs(pos.Offset-3) > 1e-12 || math.Abs(d-4) > 1e-12 {
		t.Errorf("Snap = %+v, %v", pos, d)
	}
	// Beyond the far end: clamps to the last node.
	pos, d = g.Snap(geom.Point{X: 14, Y: 3})
	if pos.Edge != 1 || math.Abs(pos.Offset-5) > 1e-12 || math.Abs(d-5) > 1e-12 {
		t.Errorf("Snap clamp = %+v, %v", pos, d)
	}
}

func TestDijkstraFromNode(t *testing.T) {
	g := GridNetwork(4, 4, 1, geom.Point{})
	d := NewDijkstra(g)
	dist := d.FromNode(0, math.Inf(1))
	// Manhattan distances on a unit grid.
	for iy := 0; iy < 4; iy++ {
		for ix := 0; ix < 4; ix++ {
			want := float64(ix + iy)
			if got := dist[iy*4+ix]; math.Abs(got-want) > 1e-12 {
				t.Errorf("dist to (%d,%d) = %v, want %v", ix, iy, got, want)
			}
		}
	}
}

func TestDijkstraBounded(t *testing.T) {
	g := GridNetwork(10, 10, 1, geom.Point{})
	d := NewDijkstra(g)
	dist := d.FromNode(0, 3)
	for u := 0; u < g.NumNodes(); u++ {
		manhattan := float64(u%10 + u/10)
		if manhattan <= 3 {
			if math.IsInf(dist[u], 1) {
				t.Errorf("node %d within bound unreached", u)
			}
		} else if !math.IsInf(dist[u], 1) {
			t.Errorf("node %d beyond bound has dist %v", u, dist[u])
		}
	}
}

func TestDijkstraReuseIsClean(t *testing.T) {
	g := GridNetwork(6, 6, 1, geom.Point{})
	d := NewDijkstra(g)
	first := append([]float64(nil), d.FromNode(0, math.Inf(1))...)
	d.FromNode(35, 2) // perturb state
	second := d.FromNode(0, math.Inf(1))
	for u := range first {
		if first[u] != second[u] {
			t.Fatalf("reused engine differs at node %d: %v vs %v", u, first[u], second[u])
		}
	}
}

func TestFromPositionAndPositionDist(t *testing.T) {
	g := line3()
	d := NewDijkstra(g)
	src := Position{Edge: 0, Offset: 2} // at x=2
	d.FromPosition(src, math.Inf(1))
	cases := []struct {
		pos  Position
		want float64
	}{
		{Position{Edge: 0, Offset: 4}, 2}, // same edge, x=4
		{Position{Edge: 0, Offset: 0.5}, 1.5},
		{Position{Edge: 1, Offset: 1}, 4}, // x=6 via node 1
		{Position{Edge: 1, Offset: 5}, 8}, // x=10
	}
	for _, c := range cases {
		if got := d.PositionDist(c.pos, src, true); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("dist to %+v = %v, want %v", c.pos, got, c.want)
		}
	}
}

// Figure 3's phenomenon: on a ring-radial network, two points on adjacent
// spokes near the hub are planar-close but network-far... unless they pass
// through the hub. Use two points just off different spokes at mid radius:
// planar distance is small, network distance must route via hub or ring.
func TestRingRadialFigure3(t *testing.T) {
	g := RingRadialNetwork(3, 8, 10, geom.Point{})
	d := NewDijkstra(g)
	// Positions on spokes 0 and 1, between ring 1 (r=10) and ring 2 (r=20):
	// on the radial edge from ring1-node to ring2-node, 5 units out.
	var e01, e12 int32 = -1, -1
	for ei := int32(0); ei < int32(g.NumEdges()); ei++ {
		e := g.Edge(ei)
		a, b := g.Node(e.A), g.Node(e.B)
		onSpoke0 := math.Abs(a.Y) < 1e-9 && math.Abs(b.Y) < 1e-9 && a.X > 0 && b.X > 0
		if onSpoke0 && math.Abs(a.X-10) < 1e-9 && math.Abs(b.X-20) < 1e-9 {
			e01 = ei
		}
		theta := 2 * math.Pi / 8
		sx, sy := math.Cos(theta), math.Sin(theta)
		near := func(p geom.Point, r float64) bool {
			return math.Abs(p.X-r*sx) < 1e-9 && math.Abs(p.Y-r*sy) < 1e-9
		}
		if near(a, 10) && near(b, 20) || near(b, 10) && near(a, 20) {
			e12 = ei
		}
	}
	if e01 < 0 || e12 < 0 {
		t.Fatal("could not locate radial edges")
	}
	pa := Position{Edge: e01, Offset: 5}
	pb := Position{Edge: e12, Offset: 5}
	// Planar distance between the two points:
	qa := g.PointAt(pa.Edge, pa.Offset)
	qb := g.PointAt(pb.Edge, pb.Offset)
	planar := qa.Dist(qb)
	d.FromPosition(pa, math.Inf(1))
	netDist := d.PositionDist(pb, pa, true)
	if netDist <= planar*1.5 {
		t.Errorf("network dist %v should far exceed planar %v", netDist, planar)
	}
	// Shortest route: 5 back to ring 1 node, arc 2π·10/8, 5 out = 10 + 7.854.
	want := 5 + 2*math.Pi*10/8 + 5
	if math.Abs(netDist-want) > 1e-9 {
		t.Errorf("network dist = %v, want %v", netDist, want)
	}
}

func TestLixelize(t *testing.T) {
	g := line3()
	lx, off := Lixelize(g, 2)
	// Edge length 5 → 3 lixels each of length 5/3.
	if len(lx) != 6 {
		t.Fatalf("lixel count = %d, want 6", len(lx))
	}
	if off[0] != 0 || off[1] != 3 || off[2] != 6 {
		t.Fatalf("edgeOff = %v", off)
	}
	totalLen := 0.0
	for _, l := range lx {
		if l.Length() <= 0 {
			t.Fatalf("non-positive lixel %+v", l)
		}
		totalLen += l.Length()
		if l.Center() < l.Start || l.Center() > l.End {
			t.Fatalf("center outside lixel %+v", l)
		}
		if l.Position().Edge != l.Edge {
			t.Fatal("Position edge mismatch")
		}
	}
	if math.Abs(totalLen-g.TotalLength()) > 1e-9 {
		t.Errorf("lixels cover %v, want %v", totalLen, g.TotalLength())
	}
	// Degenerate target length falls back safely.
	lx, _ = Lixelize(g, -1)
	if len(lx) == 0 {
		t.Error("fallback lixelisation empty")
	}
}

func TestRandomPositionsUniformByLength(t *testing.T) {
	// Two edges, one 9x longer: expect ~90% of positions on it.
	b := NewBuilder()
	n0 := b.AddNode(geom.Point{X: 0, Y: 0})
	n1 := b.AddNode(geom.Point{X: 9, Y: 0})
	n2 := b.AddNode(geom.Point{X: 9, Y: 1})
	b.AddEdge(n0, n1) // length 9
	b.AddEdge(n1, n2) // length 1
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	pos := RandomPositionsRand(r, g, 10000)
	onLong := 0
	for _, p := range pos {
		e := g.Edge(p.Edge)
		if p.Offset < 0 || p.Offset > e.Length {
			t.Fatalf("offset %v outside edge length %v", p.Offset, e.Length)
		}
		if p.Edge == 0 {
			onLong++
		}
	}
	if onLong < 8800 || onLong > 9200 {
		t.Errorf("long-edge share = %d/10000, want ≈9000", onLong)
	}
}

func TestClusteredPositions(t *testing.T) {
	g := GridNetwork(10, 10, 10, geom.Point{})
	r := rand.New(rand.NewSource(2))
	pos := ClusteredPositionsRand(r, g, 500, 3, 5)
	if len(pos) != 500 {
		t.Fatalf("len = %d", len(pos))
	}
	for _, p := range pos {
		if p.Edge < 0 || int(p.Edge) >= g.NumEdges() {
			t.Fatalf("bad edge %d", p.Edge)
		}
	}
}

func TestGridNetworkShape(t *testing.T) {
	g := GridNetwork(3, 2, 2, geom.Point{X: 1, Y: 1})
	if g.NumNodes() != 6 {
		t.Errorf("nodes = %d", g.NumNodes())
	}
	// Horizontal: 2 per row × 2 rows = 4; vertical: 3 = total 7.
	if g.NumEdges() != 7 {
		t.Errorf("edges = %d", g.NumEdges())
	}
	if g.Node(0) != (geom.Point{X: 1, Y: 1}) {
		t.Errorf("origin node = %v", g.Node(0))
	}
}

func TestComponents(t *testing.T) {
	// Two disjoint lines plus an isolated node.
	b := NewBuilder()
	a0 := b.AddNode(geom.Point{X: 0, Y: 0})
	a1 := b.AddNode(geom.Point{X: 1, Y: 0})
	c0 := b.AddNode(geom.Point{X: 10, Y: 0})
	c1 := b.AddNode(geom.Point{X: 11, Y: 0})
	b.AddNode(geom.Point{X: 50, Y: 50}) // isolated
	b.AddEdge(a0, a1)
	b.AddEdge(c0, c1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	labels, count := g.Components()
	if count != 3 {
		t.Fatalf("components = %d, want 3", count)
	}
	if labels[a0] != labels[a1] || labels[c0] != labels[c1] {
		t.Error("connected nodes in different components")
	}
	if labels[a0] == labels[c0] || labels[4] == labels[a0] || labels[4] == labels[c0] {
		t.Error("disconnected nodes share a component")
	}
	// A connected grid has one component.
	if _, n := GridNetwork(4, 4, 1, geom.Point{}).Components(); n != 1 {
		t.Errorf("grid components = %d", n)
	}
}
