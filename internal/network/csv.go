package network

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"

	"geostat/internal/geom"
)

// Edge-list CSV interchange: one row per road segment with endpoint
// coordinates, nodes deduplicated by exact coordinates on read. Header:
//
//	x1,y1,x2,y2[,length]
//
// (length defaults to the Euclidean segment length). This is the minimal
// schema road-segment exports reduce to.

// ReadEdgeCSV builds a graph from an edge-list CSV.
func ReadEdgeCSV(r io.Reader) (*Graph, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("network: reading CSV header: %w", err)
	}
	hasLen, err := parseEdgeHeader(header)
	if err != nil {
		return nil, err
	}
	b := NewBuilder()
	nodeAt := make(map[geom.Point]int32)
	node := func(p geom.Point) int32 {
		if id, ok := nodeAt[p]; ok {
			return id
		}
		id := b.AddNode(p)
		nodeAt[p] = id
		return id
	}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("network: reading CSV line %d: %w", line, err)
		}
		vals := make([]float64, len(rec))
		for i, s := range rec {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("network: CSV line %d column %d: %w", line, i+1, err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("network: CSV line %d column %d: non-finite value", line, i+1)
			}
			vals[i] = v
		}
		a := node(geom.Point{X: vals[0], Y: vals[1]})
		c := node(geom.Point{X: vals[2], Y: vals[3]})
		if hasLen {
			b.AddEdgeLen(a, c, vals[4])
		} else {
			b.AddEdge(a, c)
		}
	}
	return b.Build()
}

// WriteEdgeCSV writes g as an edge-list CSV (always with the length
// column, preserving non-geometric weights).
func WriteEdgeCSV(w io.Writer, g *Graph) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"x1", "y1", "x2", "y2", "length"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for ei := 0; ei < g.NumEdges(); ei++ {
		e := g.Edge(int32(ei))
		a, b := g.Node(e.A), g.Node(e.B)
		if err := cw.Write([]string{f(a.X), f(a.Y), f(b.X), f(b.Y), f(e.Length)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadEdgeCSVFile reads a graph from the named edge-list file.
func ReadEdgeCSVFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeCSV(f)
}

// WriteEdgeCSVFile writes g to the named edge-list file.
func WriteEdgeCSVFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeCSV(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseEdgeHeader(h []string) (hasLen bool, err error) {
	base := []string{"x1", "y1", "x2", "y2"}
	match := func(want []string) bool {
		if len(h) != len(want) {
			return false
		}
		for i := range want {
			if h[i] != want[i] {
				return false
			}
		}
		return true
	}
	if match(base) {
		return false, nil
	}
	if match(append(base, "length")) {
		return true, nil
	}
	return false, fmt.Errorf("network: unrecognised edge CSV header %v (want x1,y1,x2,y2[,length])", h)
}
