package nkdv

import (
	"math"
	"math/rand"
	"testing"

	"geostat/internal/geom"
	"geostat/internal/kernel"
	"geostat/internal/network"
)

// star returns a hub at the origin with `branches` unit-spaced arms of
// length 10 and the hub's branch edges ordered 0..branches-1.
func star(branches int) *network.Graph {
	b := network.NewBuilder()
	hub := b.AddNode(geom.Point{})
	for i := 0; i < branches; i++ {
		theta := 2 * math.Pi * float64(i) / float64(branches)
		tip := b.AddNode(geom.Point{X: 10 * math.Cos(theta), Y: 10 * math.Sin(theta)})
		b.AddEdge(hub, tip)
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// Hand-checkable ESD: event on branch 0 at distance 4 from a degree-3 hub.
// On the event's own branch the density is the plain kernel; past the hub
// each of the two other branches receives half the mass.
func TestESDStarSplit(t *testing.T) {
	g := star(3)
	events := []network.Position{{Edge: 0, Offset: 4}} // 4 from hub (edge runs hub->tip)
	k := kernel.MustNew(kernel.Epanechnikov, 8)
	o := Options{Kernel: k, LixelLength: 0.5}
	esd, err := ForwardESD(g, events, o)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Forward(g, events, o)
	if err != nil {
		t.Fatal(err)
	}
	for li, l := range esd.Lixels {
		var want float64
		d := 0.0
		switch l.Edge {
		case 0: // own branch: direct kernel, no split
			d = math.Abs(l.Center() - 4)
			want = k.Eval(d)
		default: // other branches: through the hub (dist 4), split by 2
			d = 4 + l.Center()
			want = k.Eval(d) / 2
		}
		if math.Abs(esd.Values[li]-want) > 1e-12 {
			t.Fatalf("edge %d center %v: ESD %v, want %v", l.Edge, l.Center(), esd.Values[li], want)
		}
		// The plain kernel does not split: on other branches it is double ESD.
		if l.Edge != 0 && want > 0 {
			if math.Abs(plain.Values[li]-2*esd.Values[li]) > 1e-12 {
				t.Fatalf("plain %v should be 2x ESD %v", plain.Values[li], esd.Values[li])
			}
		}
	}
}

// Mass conservation: on a line network (no intersections, no dead ends
// within reach) ESD equals the plain kernel exactly, and integrating the
// density over the lixels recovers n·(full kernel mass).
func TestESDLineMassConservation(t *testing.T) {
	b := network.NewBuilder()
	prev := b.AddNode(geom.Point{})
	for i := 1; i <= 40; i++ {
		cur := b.AddNode(geom.Point{X: float64(i * 5)})
		b.AddEdge(prev, cur)
		prev = cur
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var events []network.Position
	for i := 0; i < 30; i++ {
		// Keep events away from the line's ends so no mass is clipped.
		events = append(events, network.Position{
			Edge:   int32(10 + rng.Intn(20)),
			Offset: rng.Float64() * 5,
		})
	}
	const bw = 6.0
	k := kernel.MustNew(kernel.Epanechnikov, bw)
	o := Options{Kernel: k, LixelLength: 0.05}
	esd, err := ForwardESD(g, events, o)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Forward(g, events, o)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := esd.MaxAbsDiff(plain); d > 1e-9 {
		t.Fatalf("on a line, ESD must equal the plain kernel (diff %v)", d)
	}
	total := 0.0
	for li, l := range esd.Lixels {
		total += esd.Values[li] * l.Length()
	}
	// Each event's 1-D mass: ∫_{-b}^{b} (1 − t²/b²) dt = 4b/3.
	want := float64(len(events)) * 4 * bw / 3
	if math.Abs(total-want)/want > 0.01 {
		t.Errorf("integrated mass %v, want %v", total, want)
	}
}

// Mass conservation through intersections: on a degree-4 grid, ESD's
// integrated mass stays n·4b/3 while the plain kernel inflates it.
func TestESDGridMassConservation(t *testing.T) {
	g := network.GridNetwork(8, 8, 10, geom.Point{})
	rng := rand.New(rand.NewSource(2))
	// Interior events only (no clipping at the grid boundary).
	var events []network.Position
	for len(events) < 25 {
		pos := network.RandomPositionsRand(rng, g, 1)[0]
		p := g.PointAt(pos.Edge, pos.Offset)
		if p.X > 15 && p.X < 55 && p.Y > 15 && p.Y < 55 {
			events = append(events, pos)
		}
	}
	const bw = 8.0
	k := kernel.MustNew(kernel.Epanechnikov, bw)
	o := Options{Kernel: k, LixelLength: 0.1}
	esd, err := ForwardESD(g, events, o)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Forward(g, events, o)
	if err != nil {
		t.Fatal(err)
	}
	integrate := func(s *Surface) float64 {
		total := 0.0
		for li, l := range s.Lixels {
			total += s.Values[li] * l.Length()
		}
		return total
	}
	want := float64(len(events)) * 4 * bw / 3
	got := integrate(esd)
	if math.Abs(got-want)/want > 0.02 {
		t.Errorf("ESD integrated mass %v, want %v", got, want)
	}
	if integrate(plain) < want*1.2 {
		t.Errorf("plain kernel should inflate mass through degree-4 intersections: %v vs %v",
			integrate(plain), want)
	}
}

func TestESDDeadEndStopsMass(t *testing.T) {
	// Path A--B--C where C is a dead end behind B... make B degree 2 via a
	// T: A--B, B--C, B--D. Event near A side; C and D get half mass each.
	b := network.NewBuilder()
	na := b.AddNode(geom.Point{X: 0, Y: 0})
	nb := b.AddNode(geom.Point{X: 10, Y: 0})
	nc := b.AddNode(geom.Point{X: 20, Y: 0})
	nd := b.AddNode(geom.Point{X: 10, Y: 10})
	b.AddEdge(na, nb) // edge 0
	b.AddEdge(nb, nc) // edge 1
	b.AddEdge(nb, nd) // edge 2
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	events := []network.Position{{Edge: 0, Offset: 8}} // 2 before B
	k := kernel.MustNew(kernel.Uniform, 30)            // flat: reaches past the tips
	o := Options{Kernel: k, LixelLength: 1}
	esd, err := ForwardESD(g, events, o)
	if err != nil {
		t.Fatal(err)
	}
	// Every lixel on edges 1 and 2 gets K/2 (split at B, degree 3); the
	// dead ends C and D absorb the rest (no onward edges exist anyway).
	for li, l := range esd.Lixels {
		if l.Edge == 0 {
			continue
		}
		want := k.Eval(0) / 2 // uniform kernel: constant value 1/b
		if math.Abs(esd.Values[li]-want) > 1e-12 {
			t.Fatalf("edge %d: %v, want %v", l.Edge, esd.Values[li], want)
		}
	}
}

func TestESDValidation(t *testing.T) {
	g := star(3)
	if _, err := ForwardESD(g, nil, Options{}); err == nil {
		t.Error("zero options accepted")
	}
	o := Options{Kernel: kernel.MustNew(kernel.Gaussian, 5), LixelLength: 1}
	if _, err := ForwardESD(g, nil, o); err == nil {
		t.Error("infinite-support kernel accepted")
	}
}

func TestESDParallelMatchesSerial(t *testing.T) {
	g := network.GridNetwork(5, 5, 10, geom.Point{})
	rng := rand.New(rand.NewSource(3))
	events := network.RandomPositionsRand(rng, g, 60)
	o := Options{Kernel: kernel.MustNew(kernel.Quartic, 12), LixelLength: 2}
	serial, err := ForwardESD(g, events, o)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 4
	par, err := ForwardESD(g, events, o)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := serial.MaxAbsDiff(par); d > 1e-9 {
		t.Errorf("parallel ESD differs by %v", d)
	}
}
