// Package nkdv implements network kernel density visualization (§2.2 of
// the paper, Xie & Yan [96]): KDV with the Euclidean distance replaced by
// the shortest-path distance over a road network, evaluated on lixels
// (linear pixels) instead of raster pixels.
//
// Two algorithms are provided:
//
//   - Naive: for every lixel center, a bounded Dijkstra collects distances
//     to every event — O(L · (E log V + n)), the direct analogue of the
//     O(XYn) planar baseline.
//   - Forward: one bounded Dijkstra per EVENT, pushing kernel mass out to
//     every lixel within the bandwidth — O(n · (E_b log V_b + L_b)) where
//     the _b quantities are restricted to the bandwidth ball. This is the
//     event-expansion structure of the fast NKDV algorithms the paper
//     reviews ([30, 81, 96]); with n ≪ L (dense lixelisation) it is the
//     practical winner.
//
// Both produce identical values: Σ_events K(d_G(lixel center, event)).
package nkdv

import (
	"context"
	"fmt"
	"math"

	"geostat/internal/kernel"
	"geostat/internal/network"
	"geostat/internal/obs"
	"geostat/internal/parallel"
)

// Options configures an NKDV computation.
type Options struct {
	// Kernel is applied to shortest-path distances.
	Kernel kernel.Kernel
	// LixelLength is the target lixel size (network distance units).
	LixelLength float64
	// Workers parallelises the outer loop; 0/1 serial, <0 GOMAXPROCS.
	Workers int
	// Ctx optionally bounds the computation: workers check it between
	// chunks and the entry point returns ctx.Err() (with a nil surface)
	// when it fires. Nil means no cancellation (context.Background()).
	Ctx context.Context
}

// context returns the effective context of the computation.
func (o *Options) context() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

func (o *Options) validate() error {
	if o.Kernel.Bandwidth() <= 0 {
		return fmt.Errorf("nkdv: kernel not initialised (zero bandwidth); use kernel.New")
	}
	if !(o.LixelLength > 0) {
		return fmt.Errorf("nkdv: LixelLength must be positive, got %g", o.LixelLength)
	}
	if !o.Kernel.FiniteSupport() {
		return fmt.Errorf("nkdv: infinite-support kernel %v not supported on networks (unbounded Dijkstra per event); use a finite-support kernel", o.Kernel.Type())
	}
	return nil
}

// Surface is an NKDV result: a density value per lixel.
type Surface struct {
	Lixels  []network.Lixel
	EdgeOff []int32 // lixels of edge e are Lixels[EdgeOff[e]:EdgeOff[e+1]]
	Values  []float64
}

// ArgMax returns the index of the densest lixel, or -1 if empty.
func (s *Surface) ArgMax() int {
	best := -1
	bestV := math.Inf(-1)
	for i, v := range s.Values {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// MaxAbsDiff returns the largest per-lixel difference between two surfaces
// over the same lixelisation.
func (s *Surface) MaxAbsDiff(o *Surface) (float64, error) {
	if len(s.Values) != len(o.Values) {
		return 0, fmt.Errorf("nkdv: surface sizes differ (%d vs %d)", len(s.Values), len(o.Values))
	}
	m := 0.0
	for i := range s.Values {
		if d := math.Abs(s.Values[i] - o.Values[i]); d > m {
			m = d
		}
	}
	return m, nil
}

// Naive computes NKDV with one bounded Dijkstra per lixel center.
func Naive(g *network.Graph, events []network.Position, opt Options) (*Surface, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	ctx := opt.context()
	_, lspan := obs.Trace(ctx, "nkdv.lixelize")
	lixels, edgeOff := network.Lixelize(g, opt.LixelLength)
	lspan.End()
	s := &Surface{Lixels: lixels, EdgeOff: edgeOff, Values: make([]float64, len(lixels))}
	b := opt.Kernel.Bandwidth()

	// Group events by edge for distance evaluation from a lixel's search.
	byEdge := groupByEdge(events)

	// Each lixel writes only its own value, so workers share nothing but
	// their Dijkstra engine; dynamic chunking rebalances the skew between
	// lixels in dense and sparse network regions.
	ectx, espan := obs.Trace(ctx, "nkdv.evaluate")
	defer espan.End()
	_, err := parallel.ForScratchCtx(ectx, len(lixels), opt.Workers,
		func() *network.Dijkstra { return network.NewDijkstra(g) },
		func(dij *network.Dijkstra, li int) {
			center := lixels[li].Position()
			dij.FromPosition(center, b)
			sum := 0.0
			// Every edge with a reached endpoint may hold in-range events; the
			// lixel's own edge always qualifies.
			seen := map[int32]bool{center.Edge: true}
			accumulate := func(ei int32) {
				for _, ev := range byEdge[ei] {
					d := dij.PositionDist(ev, center, true)
					if d <= b {
						sum += opt.Kernel.Eval(d)
					}
				}
			}
			accumulate(center.Edge)
			for _, u := range dij.Reached() {
				g.Neighbors(u, func(_, ei int32, _ float64) {
					if !seen[ei] {
						seen[ei] = true
						accumulate(ei)
					}
				})
			}
			s.Values[li] = sum
		})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// fwdScratch is the per-worker state of the event-expansion algorithms:
// one Dijkstra engine, a private copy of the lixel values (footprints
// overlap, so direct writes would race), and the dedup set of spread
// edges.
type fwdScratch struct {
	dij    *network.Dijkstra
	values []float64
	seen   map[int32]bool
}

func newFwdScratch(g *network.Graph, nLixels int) *fwdScratch {
	return &fwdScratch{
		dij:    network.NewDijkstra(g),
		values: make([]float64, nLixels),
		seen:   make(map[int32]bool),
	}
}

// Forward computes NKDV with one bounded Dijkstra per event, adding the
// event's kernel mass to every lixel within the bandwidth.
func Forward(g *network.Graph, events []network.Position, opt Options) (*Surface, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	ctx := opt.context()
	_, lspan := obs.Trace(ctx, "nkdv.lixelize")
	lixels, edgeOff := network.Lixelize(g, opt.LixelLength)
	lspan.End()
	s := &Surface{Lixels: lixels, EdgeOff: edgeOff, Values: make([]float64, len(lixels))}
	b := opt.Kernel.Bandwidth()

	ectx, espan := obs.Trace(ctx, "nkdv.evaluate")
	defer espan.End()
	partials, err := parallel.ForScratchCtx(ectx, len(events), opt.Workers,
		func() *fwdScratch { return newFwdScratch(g, len(lixels)) },
		func(sc *fwdScratch, i int) {
			ev := events[i]
			sc.dij.FromPosition(ev, b)
			clear(sc.seen)
			spread := func(ei int32) {
				if sc.seen[ei] {
					return
				}
				sc.seen[ei] = true
				for li := edgeOff[ei]; li < edgeOff[ei+1]; li++ {
					d := sc.dij.PositionDist(lixels[li].Position(), ev, true)
					if d <= b {
						sc.values[li] += opt.Kernel.Eval(d)
					}
				}
			}
			spread(ev.Edge)
			for _, u := range sc.dij.Reached() {
				g.Neighbors(u, func(_, ei int32, _ float64) { spread(ei) })
			}
		})
	if err != nil {
		return nil, err
	}
	for _, sc := range partials {
		for i, v := range sc.values {
			s.Values[i] += v
		}
	}
	return s, nil
}

func groupByEdge(events []network.Position) map[int32][]network.Position {
	m := make(map[int32][]network.Position)
	for _, ev := range events {
		m[ev.Edge] = append(m[ev.Edge], ev)
	}
	return m
}
