// Package nkdv implements network kernel density visualization (§2.2 of
// the paper, Xie & Yan [96]): KDV with the Euclidean distance replaced by
// the shortest-path distance over a road network, evaluated on lixels
// (linear pixels) instead of raster pixels.
//
// Two algorithms are provided:
//
//   - Naive: for every lixel center, a bounded Dijkstra collects distances
//     to every event — O(L · (E log V + n)), the direct analogue of the
//     O(XYn) planar baseline.
//   - Forward: one bounded Dijkstra per EVENT, pushing kernel mass out to
//     every lixel within the bandwidth — O(n · (E_b log V_b + L_b)) where
//     the _b quantities are restricted to the bandwidth ball. This is the
//     event-expansion structure of the fast NKDV algorithms the paper
//     reviews ([30, 81, 96]); with n ≪ L (dense lixelisation) it is the
//     practical winner.
//
// Both produce identical values: Σ_events K(d_G(lixel center, event)).
package nkdv

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"geostat/internal/kernel"
	"geostat/internal/network"
)

// Options configures an NKDV computation.
type Options struct {
	// Kernel is applied to shortest-path distances.
	Kernel kernel.Kernel
	// LixelLength is the target lixel size (network distance units).
	LixelLength float64
	// Workers parallelises the outer loop; 0/1 serial, <0 GOMAXPROCS.
	Workers int
}

func (o *Options) validate() error {
	if o.Kernel.Bandwidth() <= 0 {
		return fmt.Errorf("nkdv: kernel not initialised (zero bandwidth); use kernel.New")
	}
	if !(o.LixelLength > 0) {
		return fmt.Errorf("nkdv: LixelLength must be positive, got %g", o.LixelLength)
	}
	if !o.Kernel.FiniteSupport() {
		return fmt.Errorf("nkdv: infinite-support kernel %v not supported on networks (unbounded Dijkstra per event); use a finite-support kernel", o.Kernel.Type())
	}
	return nil
}

// Surface is an NKDV result: a density value per lixel.
type Surface struct {
	Lixels  []network.Lixel
	EdgeOff []int32 // lixels of edge e are Lixels[EdgeOff[e]:EdgeOff[e+1]]
	Values  []float64
}

// ArgMax returns the index of the densest lixel, or -1 if empty.
func (s *Surface) ArgMax() int {
	best := -1
	bestV := math.Inf(-1)
	for i, v := range s.Values {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// MaxAbsDiff returns the largest per-lixel difference between two surfaces
// over the same lixelisation.
func (s *Surface) MaxAbsDiff(o *Surface) (float64, error) {
	if len(s.Values) != len(o.Values) {
		return 0, fmt.Errorf("nkdv: surface sizes differ (%d vs %d)", len(s.Values), len(o.Values))
	}
	m := 0.0
	for i := range s.Values {
		if d := math.Abs(s.Values[i] - o.Values[i]); d > m {
			m = d
		}
	}
	return m, nil
}

// Naive computes NKDV with one bounded Dijkstra per lixel center.
func Naive(g *network.Graph, events []network.Position, opt Options) (*Surface, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	lixels, edgeOff := network.Lixelize(g, opt.LixelLength)
	s := &Surface{Lixels: lixels, EdgeOff: edgeOff, Values: make([]float64, len(lixels))}
	b := opt.Kernel.Bandwidth()

	// Group events by edge for distance evaluation from a lixel's search.
	byEdge := groupByEdge(events)

	parallelFor(len(lixels), opt.Workers, func(dij *network.Dijkstra, li int) {
		center := lixels[li].Position()
		dij.FromPosition(center, b)
		sum := 0.0
		// Every edge with a reached endpoint may hold in-range events; the
		// lixel's own edge always qualifies.
		seen := map[int32]bool{center.Edge: true}
		accumulate := func(ei int32) {
			for _, ev := range byEdge[ei] {
				d := dij.PositionDist(ev, center, true)
				if d <= b {
					sum += opt.Kernel.Eval(d)
				}
			}
		}
		accumulate(center.Edge)
		for _, u := range dij.Reached() {
			g.Neighbors(u, func(_, ei int32, _ float64) {
				if !seen[ei] {
					seen[ei] = true
					accumulate(ei)
				}
			})
		}
		s.Values[li] = sum
	}, g)
	return s, nil
}

// Forward computes NKDV with one bounded Dijkstra per event, adding the
// event's kernel mass to every lixel within the bandwidth.
func Forward(g *network.Graph, events []network.Position, opt Options) (*Surface, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	lixels, edgeOff := network.Lixelize(g, opt.LixelLength)
	s := &Surface{Lixels: lixels, EdgeOff: edgeOff, Values: make([]float64, len(lixels))}
	b := opt.Kernel.Bandwidth()

	nw := normWorkers(opt.Workers)
	var mu sync.Mutex
	var next atomic.Int64
	var wg sync.WaitGroup
	if nw > len(events) {
		nw = max(1, len(events))
	}
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dij := network.NewDijkstra(g)
			local := make([]float64, len(lixels))
			seen := make(map[int32]bool)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(events) {
					break
				}
				ev := events[i]
				dij.FromPosition(ev, b)
				clear(seen)
				spread := func(ei int32) {
					if seen[ei] {
						return
					}
					seen[ei] = true
					for li := edgeOff[ei]; li < edgeOff[ei+1]; li++ {
						d := dij.PositionDist(lixels[li].Position(), ev, true)
						if d <= b {
							local[li] += opt.Kernel.Eval(d)
						}
					}
				}
				spread(ev.Edge)
				for _, u := range dij.Reached() {
					g.Neighbors(u, func(_, ei int32, _ float64) { spread(ei) })
				}
			}
			mu.Lock()
			for i, v := range local {
				s.Values[i] += v
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	return s, nil
}

func groupByEdge(events []network.Position) map[int32][]network.Position {
	m := make(map[int32][]network.Position)
	for _, ev := range events {
		m[ev.Edge] = append(m[ev.Edge], ev)
	}
	return m
}

// parallelFor runs fn(i) for i in [0, n) across workers, giving each worker
// its own Dijkstra engine.
func parallelFor(n, workers int, fn func(dij *network.Dijkstra, i int), g *network.Graph) {
	nw := normWorkers(workers)
	if nw > n {
		nw = max(1, n)
	}
	if nw <= 1 {
		dij := network.NewDijkstra(g)
		for i := 0; i < n; i++ {
			fn(dij, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dij := network.NewDijkstra(g)
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(dij, i)
			}
		}()
	}
	wg.Wait()
}

func normWorkers(w int) int {
	switch {
	case w < 0:
		return runtime.GOMAXPROCS(0)
	case w == 0:
		return 1
	default:
		return w
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
