package nkdv

import (
	"math"
	"math/rand"
	"testing"

	"geostat/internal/geom"
	"geostat/internal/kernel"
	"geostat/internal/network"
)

func lineGraph() *network.Graph {
	b := network.NewBuilder()
	n0 := b.AddNode(geom.Point{X: 0, Y: 0})
	n1 := b.AddNode(geom.Point{X: 10, Y: 0})
	n2 := b.AddNode(geom.Point{X: 20, Y: 0})
	b.AddEdge(n0, n1)
	b.AddEdge(n1, n2)
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func opts(b, lixel float64) Options {
	return Options{Kernel: kernel.MustNew(kernel.Epanechnikov, b), LixelLength: lixel}
}

func TestValidation(t *testing.T) {
	g := lineGraph()
	if _, err := Naive(g, nil, Options{}); err == nil {
		t.Error("zero options accepted")
	}
	bad := opts(5, 0)
	if _, err := Naive(g, nil, bad); err == nil {
		t.Error("zero lixel length accepted")
	}
	inf := Options{Kernel: kernel.MustNew(kernel.Gaussian, 5), LixelLength: 1}
	if _, err := Naive(g, nil, inf); err == nil {
		t.Error("infinite-support kernel accepted")
	}
	if _, err := Forward(g, nil, inf); err == nil {
		t.Error("Forward accepted infinite-support kernel")
	}
}

func TestHandComputedDensity(t *testing.T) {
	g := lineGraph()
	// One event at x=10 (node 1, offset 10 on edge 0).
	events := []network.Position{{Edge: 0, Offset: 10}}
	o := opts(5, 2)
	s, err := Naive(g, events, o)
	if err != nil {
		t.Fatal(err)
	}
	// Lixels on edge 0: [0,2),[2,4),...,[8,10) with centers 1,3,5,7,9.
	// Distance from center c to the event at 10 is 10−c; Epanechnikov with
	// b=5 is 1−d²/25 for d<5.
	for li, l := range s.Lixels {
		if l.Edge != 0 {
			continue
		}
		d := 10 - l.Center()
		want := 0.0
		if d < 5 {
			want = 1 - d*d/25
		}
		if math.Abs(s.Values[li]-want) > 1e-12 {
			t.Errorf("lixel %d (center %v): %v, want %v", li, l.Center(), s.Values[li], want)
		}
	}
}

func TestForwardMatchesNaive(t *testing.T) {
	g := network.GridNetwork(6, 6, 10, geom.Point{})
	rng := rand.New(rand.NewSource(1))
	events := network.RandomPositionsRand(rng, g, 120)
	for _, kt := range []kernel.Type{kernel.Uniform, kernel.Epanechnikov, kernel.Quartic, kernel.Triangular} {
		o := Options{Kernel: kernel.MustNew(kt, 12), LixelLength: 3}
		a, err := Naive(g, events, o)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Forward(g, events, o)
		if err != nil {
			t.Fatal(err)
		}
		d, err := a.MaxAbsDiff(b)
		if err != nil {
			t.Fatal(err)
		}
		if d > 1e-9 {
			t.Errorf("%v: Forward differs from Naive by %v", kt, d)
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	g := network.GridNetwork(5, 5, 8, geom.Point{})
	rng := rand.New(rand.NewSource(2))
	events := network.RandomPositionsRand(rng, g, 80)
	o := opts(10, 2)
	serial, err := Forward(g, events, o)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 4
	par, err := Forward(g, events, o)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := serial.MaxAbsDiff(par); d > 1e-9 {
		t.Errorf("parallel Forward differs by %v", d)
	}
	o.Workers = -1
	if _, err := Naive(g, events, o); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyEvents(t *testing.T) {
	g := lineGraph()
	s, err := Forward(g, nil, opts(5, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range s.Values {
		if v != 0 {
			t.Fatal("empty events produced density")
		}
	}
	if s.ArgMax() != 0 { // all-zero surface: first index wins
		t.Errorf("ArgMax = %d", s.ArgMax())
	}
	empty := &Surface{}
	if empty.ArgMax() != -1 {
		t.Error("ArgMax on empty surface should be -1")
	}
}

// Figure 3 reproduced on NKDV: q2 (network-far) must receive a smaller
// density than q1 (network-near) even though both are planar-close to the
// events.
func TestFigure3DensityOrdering(t *testing.T) {
	// Two parallel roads 2 apart joined only at x=0; events on the bottom
	// road's far end.
	b := network.NewBuilder()
	a0 := b.AddNode(geom.Point{X: 0, Y: 0})
	a1 := b.AddNode(geom.Point{X: 50, Y: 0})
	c0 := b.AddNode(geom.Point{X: 0, Y: 2})
	c1 := b.AddNode(geom.Point{X: 50, Y: 2})
	b.AddEdge(a0, a1) // edge 0 bottom
	b.AddEdge(c0, c1) // edge 1 top
	b.AddEdge(a0, c0) // edge 2 connector
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var events []network.Position
	for i := 0; i < 10; i++ {
		events = append(events, network.Position{Edge: 0, Offset: 40 + float64(i)})
	}
	o := opts(8, 1)
	s, err := Forward(g, events, o)
	if err != nil {
		t.Fatal(err)
	}
	// q1: bottom road near the events (x≈44.5); q2: top road at the same x.
	var q1, q2 float64
	for li, l := range s.Lixels {
		if l.Center() >= 44 && l.Center() < 45 {
			switch l.Edge {
			case 0:
				q1 = s.Values[li]
			case 1:
				q2 = s.Values[li]
			}
		}
	}
	if q1 <= 0 {
		t.Fatal("q1 got no density")
	}
	if q2 != 0 {
		t.Errorf("q2 (network-far) density = %v, want 0", q2)
	}
}

// Property: total mass equals the sum over events of the kernel evaluated
// at each lixel... instead verify surface consistency across lixel
// resolutions: the density at corresponding positions must agree.
func TestLixelResolutionConsistency(t *testing.T) {
	g := lineGraph()
	events := []network.Position{{Edge: 0, Offset: 5}}
	coarse, err := Forward(g, events, opts(6, 5))
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Forward(g, events, opts(6, 1))
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.MustNew(kernel.Epanechnikov, 6)
	// Every lixel's value must equal the kernel at its center distance.
	check := func(s *Surface) {
		for li, l := range s.Lixels {
			var d float64
			if l.Edge == 0 {
				d = math.Abs(l.Center() - 5)
			} else {
				d = 5 + l.Center()
			}
			want := 0.0
			if d <= 6 {
				want = k.Eval(d)
			}
			if math.Abs(s.Values[li]-want) > 1e-12 {
				t.Fatalf("lixel %d: %v, want %v", li, s.Values[li], want)
			}
		}
	}
	check(coarse)
	check(fine)
}

// Fuzz: Forward equals Naive on random graphs with random events and
// bandwidths (including events at edge endpoints).
func TestForwardMatchesNaiveFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 15; trial++ {
		// Random connected-ish graph: a grid plus random chords.
		nx, ny := 2+r.Intn(4), 2+r.Intn(4)
		g := network.GridNetwork(nx, ny, 3+r.Float64()*10, geom.Point{})
		events := network.RandomPositionsRand(r, g, r.Intn(60))
		// Pin some events exactly at nodes (offset 0 or full length).
		for i := range events {
			if r.Intn(4) == 0 {
				e := g.Edge(events[i].Edge)
				if r.Intn(2) == 0 {
					events[i].Offset = 0
				} else {
					events[i].Offset = e.Length
				}
			}
		}
		kt := []kernel.Type{kernel.Uniform, kernel.Epanechnikov, kernel.Quartic, kernel.Triangular, kernel.Cosine}[r.Intn(5)]
		o := Options{
			Kernel:      kernel.MustNew(kt, 0.5+r.Float64()*30),
			LixelLength: 0.5 + r.Float64()*5,
		}
		a, err := Naive(g, events, o)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Forward(g, events, o)
		if err != nil {
			t.Fatal(err)
		}
		if d, _ := a.MaxAbsDiff(b); d > 1e-9 {
			t.Fatalf("trial %d (%v): diff %v", trial, kt, d)
		}
	}
}
