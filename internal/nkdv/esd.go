package nkdv

import (
	"math"

	"geostat/internal/network"
	"geostat/internal/parallel"
)

// ForwardESD computes NKDV with Okabe's equal-split discontinuous kernel
// restricted to the shortest-path tree: kernel mass passing through an
// intersection of degree d splits equally among its d−1 onward edges, so
// (unlike the plain shortest-path kernel of Forward) total mass is
// conserved across intersections — a junction of many roads no longer
// multiplies density. Mass hitting a dead end (degree 1) stops.
//
// Concretely, a lixel center x on edge f reached through endpoint E gets
//
//	K(dist(E)+off) · treeFactor(E) / (deg(E)−1)
//
// where treeFactor(E) multiplies 1/(deg(v)−1) over every intersection v on
// the shortest path strictly before E, and the entry is skipped when the
// shortest path to E runs along f itself (that mass already passed x and
// is accounted for by the entry at f's other endpoint or the same-edge
// term). Events on f itself contribute the direct term K(|off − srcOff|).
func ForwardESD(g *network.Graph, events []network.Position, opt Options) (*Surface, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	lixels, edgeOff := network.Lixelize(g, opt.LixelLength)
	s := &Surface{Lixels: lixels, EdgeOff: edgeOff, Values: make([]float64, len(lixels))}
	b := opt.Kernel.Bandwidth()

	degree := make([]int, g.NumNodes())
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		degree[u] = degreeOf(g, u)
	}

	type esdScratch struct {
		*fwdScratch
		factor []float64
	}
	partials := parallel.ForScratch(len(events), opt.Workers,
		func() *esdScratch {
			return &esdScratch{
				fwdScratch: newFwdScratch(g, len(lixels)),
				factor:     make([]float64, g.NumNodes()),
			}
		},
		func(sc *esdScratch, i int) {
			dij, local, factor := sc.dij, sc.values, sc.factor
			ev := events[i]
			dij.FromPosition(ev, b)
			reached := dij.Reached()
			// treeFactor per reached node, computed in settling order
			// (Reached appends on first touch, but parents settle before
			// children in Dijkstra order of distance — recompute by
			// increasing distance to be safe).
			ordered := orderByDist(dij, reached)
			e0 := g.Edge(ev.Edge)
			for _, u := range ordered {
				if u == e0.A || u == e0.B {
					factor[u] = 1 // seed: mass arrives along the source edge
					continue
				}
				pe := dij.ParentEdge(u)
				p := otherEnd(g, pe, u)
				split := float64(degree[p] - 1)
				if split <= 0 {
					factor[u] = 0 // mass cannot pass a dead end
					continue
				}
				factor[u] = factor[p] / split
			}
			// Direct same-edge contribution.
			for li := edgeOff[ev.Edge]; li < edgeOff[ev.Edge+1]; li++ {
				d := math.Abs(lixels[li].Center() - ev.Offset)
				if d <= b {
					local[li] += opt.Kernel.Eval(d)
				}
			}
			// Entries into every edge incident to a reached node.
			for _, u := range ordered {
				split := float64(degree[u] - 1)
				if split <= 0 {
					continue
				}
				enter := factor[u] / split
				if enter == 0 {
					continue
				}
				du := dij.Dist(u)
				pe := dij.ParentEdge(u)
				g.Neighbors(u, func(_, ei int32, _ float64) {
					if ei == pe {
						return // backtracking along the arrival edge
					}
					eu := g.Edge(ei)
					for li := edgeOff[ei]; li < edgeOff[ei+1]; li++ {
						off := lixels[li].Center()
						if eu.B == u {
							off = eu.Length - off
						}
						d := du + off
						if d <= b {
							local[li] += enter * opt.Kernel.Eval(d)
						}
					}
				})
			}
		})
	for _, sc := range partials {
		for i, v := range sc.values {
			s.Values[i] += v
		}
	}
	return s, nil
}

func degreeOf(g *network.Graph, u int32) int {
	d := 0
	g.Neighbors(u, func(int32, int32, float64) { d++ })
	return d
}

func otherEnd(g *network.Graph, ei, u int32) int32 {
	e := g.Edge(ei)
	if e.A == u {
		return e.B
	}
	return e.A
}

// orderByDist returns the reached nodes sorted by settled distance so
// parents are processed before children.
func orderByDist(dij *network.Dijkstra, reached []int32) []int32 {
	out := append([]int32(nil), reached...)
	// Insertion sort: frontiers are small (bounded search).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && dij.Dist(out[j]) < dij.Dist(out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
