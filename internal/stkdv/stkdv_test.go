package stkdv

import (
	"math"
	"math/rand"
	"testing"

	"geostat/internal/dataset"
	"geostat/internal/geom"
	"geostat/internal/kernel"
)

var box = geom.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}

// mkst builds a timestamped dataset, failing the test on constructor error.
func mkst(t *testing.T, pts []geom.Point, times []float64) *dataset.Dataset {
	t.Helper()
	d, err := dataset.New(pts, times, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func twoWave(seed int64, n int) *dataset.Dataset {
	r := rand.New(rand.NewSource(seed))
	return dataset.SpatioTemporalOutbreak(r, n, box, 0, 60, []dataset.Wave{
		{Center: geom.Point{X: 25, Y: 25}, Sigma: 5, TimeMean: 15, TimeSigma: 4, Weight: 1},
		{Center: geom.Point{X: 75, Y: 75}, Sigma: 5, TimeMean: 45, TimeSigma: 4, Weight: 1},
	}, 0.1)
}

func opts(st, tt kernel.Type, bs, bt float64, slices []float64) Options {
	return Options{
		SpaceKernel: kernel.MustNew(st, bs),
		TimeKernel:  kernel.MustNew(tt, bt),
		Grid:        geom.NewPixelGrid(box, 25, 25),
		Times:       slices,
	}
}

func TestValidation(t *testing.T) {
	d := twoWave(1, 50)
	if _, err := Naive(d, Options{}); err == nil {
		t.Error("zero options accepted")
	}
	o := opts(kernel.Quartic, kernel.Epanechnikov, 10, 5, []float64{10, 5})
	if _, err := Naive(d, o); err == nil {
		t.Error("decreasing times accepted")
	}
	o = opts(kernel.Quartic, kernel.Epanechnikov, 10, 5, nil)
	if _, err := Naive(d, o); err == nil {
		t.Error("empty times accepted")
	}
	o = opts(kernel.Quartic, kernel.Epanechnikov, 10, 5, []float64{10, 20})
	spatialOnly := dataset.FromPoints(d.Points())
	if _, err := Naive(spatialOnly, o); err == nil {
		t.Error("dataset without times accepted")
	}
	if _, err := Shared(spatialOnly, o); err == nil {
		t.Error("Shared accepted dataset without times")
	}
	bad := opts(kernel.Gaussian, kernel.Epanechnikov, 10, 5, []float64{10})
	if _, err := Shared(d, bad); err == nil {
		t.Error("Shared accepted infinite-support spatial kernel")
	}
	bad = opts(kernel.Quartic, kernel.Triangular, 10, 5, []float64{10})
	if _, err := Shared(d, bad); err == nil {
		t.Error("Shared accepted non-polynomial temporal kernel")
	}
}

func TestNaiveHandValue(t *testing.T) {
	d := mkst(t, []geom.Point{{X: 50, Y: 50}}, []float64{10})
	o := opts(kernel.Epanechnikov, kernel.Epanechnikov, 20, 8, []float64{10, 14, 30})
	cube, err := Naive(d, o)
	if err != nil {
		t.Fatal(err)
	}
	q := o.Grid.Center(12, 12) // (50, 50)
	ds2 := q.Dist2(geom.Point{X: 50, Y: 50})
	// Slice 0: dt=0 → Kt=1.
	want := (1 - ds2/400.0) * 1
	if got := cube.Slice(0).At(12, 12); math.Abs(got-want) > 1e-12 {
		t.Errorf("slice 0 = %v, want %v", got, want)
	}
	// Slice 1: dt=4 → Kt = 1-16/64 = 0.75.
	want = (1 - ds2/400.0) * 0.75
	if got := cube.Slice(1).At(12, 12); math.Abs(got-want) > 1e-12 {
		t.Errorf("slice 1 = %v, want %v", got, want)
	}
	// Slice 2: dt=20 > bt → 0.
	if got := cube.Slice(2).At(12, 12); got != 0 {
		t.Errorf("slice 2 = %v, want 0", got)
	}
}

func TestSharedMatchesNaive(t *testing.T) {
	d := twoWave(2, 250)
	slices := []float64{5, 15, 25, 35, 45, 55}
	for _, st := range []kernel.Type{kernel.Uniform, kernel.Epanechnikov, kernel.Quartic, kernel.Triangular, kernel.Cosine} {
		for _, tt := range []kernel.Type{kernel.Uniform, kernel.Epanechnikov, kernel.Quartic} {
			o := opts(st, tt, 12, 9, slices)
			naive, err := Naive(d, o)
			if err != nil {
				t.Fatal(err)
			}
			shared, err := Shared(d, o)
			if err != nil {
				t.Fatal(err)
			}
			diff, err := naive.MaxAbsDiff(shared)
			if err != nil {
				t.Fatal(err)
			}
			if diff > 1e-9 {
				t.Errorf("space=%v time=%v: Shared differs from Naive by %v", st, tt, diff)
			}
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	d := twoWave(3, 200)
	slices := []float64{10, 20, 30, 40, 50}
	o := opts(kernel.Quartic, kernel.Epanechnikov, 10, 8, slices)
	serialN, err := Naive(d, o)
	if err != nil {
		t.Fatal(err)
	}
	serialS, err := Shared(d, o)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 4
	parN, err := Naive(d, o)
	if err != nil {
		t.Fatal(err)
	}
	parS, err := Shared(d, o)
	if err != nil {
		t.Fatal(err)
	}
	if diff, _ := serialN.MaxAbsDiff(parN); diff > 1e-12 {
		t.Errorf("parallel Naive differs by %v", diff)
	}
	if diff, _ := serialS.MaxAbsDiff(parS); diff > 1e-12 {
		t.Errorf("parallel Shared differs by %v", diff)
	}
}

// Figure 4's phenomenon: the hotspot pixel moves from wave 1's center to
// wave 2's center between early and late slices.
func TestHotspotMovesAcrossWaves(t *testing.T) {
	d := twoWave(4, 2000)
	o := opts(kernel.Quartic, kernel.Epanechnikov, 8, 6, []float64{15, 45})
	cube, err := Shared(d, o)
	if err != nil {
		t.Fatal(err)
	}
	ix, iy, _ := cube.Slice(0).ArgMax()
	early := o.Grid.Center(ix, iy)
	ix, iy, _ = cube.Slice(1).ArgMax()
	late := o.Grid.Center(ix, iy)
	if early.Dist(geom.Point{X: 25, Y: 25}) > 12 {
		t.Errorf("early hotspot %v, want near (25,25)", early)
	}
	if late.Dist(geom.Point{X: 75, Y: 75}) > 12 {
		t.Errorf("late hotspot %v, want near (75,75)", late)
	}
}

func TestEmptyDataset(t *testing.T) {
	empty := mkst(t, nil, []float64{})
	o := opts(kernel.Quartic, kernel.Epanechnikov, 10, 5, []float64{1, 2})
	for _, f := range []func(*dataset.Dataset, Options) (*Cube, error){Naive, Shared} {
		cube, err := f(empty, o)
		if err != nil {
			t.Fatal(err)
		}
		for si := range cube.Values {
			for _, v := range cube.Values[si] {
				if v != 0 {
					t.Fatal("empty dataset produced density")
				}
			}
		}
	}
}

func TestCubeMaxAbsDiffErrors(t *testing.T) {
	o := opts(kernel.Quartic, kernel.Epanechnikov, 10, 5, []float64{1})
	o2 := opts(kernel.Quartic, kernel.Epanechnikov, 10, 5, []float64{1, 2})
	d := twoWave(5, 20)
	a, _ := Naive(d, o)
	b, _ := Naive(d, o2)
	if _, err := a.MaxAbsDiff(b); err == nil {
		t.Error("mismatched cube shapes accepted")
	}
}

// Property (testing/quick style sweep): Shared equals Naive across random
// slice layouts, bandwidths, and event batches with off-grid points.
func TestSharedMatchesNaiveFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		n := r.Intn(120)
		pts := make([]geom.Point, n)
		times := make([]float64, n)
		for i := 0; i < n; i++ {
			pts[i] = geom.Point{X: r.Float64()*140 - 20, Y: r.Float64()*140 - 20}
			times[i] = r.Float64()*80 - 10
		}
		d := mkst(t, pts, times)
		nSlices := 1 + r.Intn(6)
		slices := make([]float64, nSlices)
		t0 := r.Float64() * 20
		for i := range slices {
			t0 += 0.5 + r.Float64()*15
			slices[i] = t0
		}
		st := []kernel.Type{kernel.Uniform, kernel.Epanechnikov, kernel.Quartic}[r.Intn(3)]
		tt := []kernel.Type{kernel.Uniform, kernel.Epanechnikov, kernel.Quartic}[r.Intn(3)]
		o := Options{
			SpaceKernel: kernel.MustNew(st, 1+r.Float64()*25),
			TimeKernel:  kernel.MustNew(tt, 1+r.Float64()*20),
			Grid:        geom.NewPixelGrid(box, 2+r.Intn(20), 2+r.Intn(20)),
			Times:       slices,
		}
		naive, err := Naive(d, o)
		if err != nil {
			t.Fatal(err)
		}
		shared, err := Shared(d, o)
		if err != nil {
			t.Fatal(err)
		}
		if diff, _ := naive.MaxAbsDiff(shared); diff > 1e-9 {
			t.Fatalf("trial %d: diff %v (space=%v time=%v slices=%v)", trial, diff, st, tt, slices)
		}
	}
}
