// Package stkdv implements spatiotemporal kernel density visualization
// (§2.2 of the paper, [27, 41, 57]): the density surface is evaluated on an
// X×Y raster at T time slices, each event weighted by a product kernel
// K_s(spatial distance)·K_t(time gap).
//
// Two algorithms:
//
//   - Naive: O(X·Y·T·n) — the direct extension of the planar baseline.
//   - Shared: the computational-sharing structure of SWS [27]. Each event's
//     spatial footprint (the pixels inside its spatial support, with their
//     kernel values) is computed ONCE; its temporal kernel, a polynomial in
//     the slice time t over the event's active window, is spread across
//     slices with difference arrays of polynomial-coefficient grids. Total
//     work O(Σ_events footprint + T·X·Y), independent of how many slices
//     each event spans.
package stkdv

import (
	"fmt"
	"math"
	"sort"

	"geostat/internal/dataset"
	"geostat/internal/geom"
	"geostat/internal/kernel"
	"geostat/internal/parallel"
	"geostat/internal/raster"
)

// Options configures an STKDV computation.
type Options struct {
	// SpaceKernel weights spatial distance (bandwidth b_s).
	SpaceKernel kernel.Kernel
	// TimeKernel weights the time gap (bandwidth b_t), applied to |t − t_p|.
	TimeKernel kernel.Kernel
	// Grid is the spatial raster.
	Grid geom.PixelGrid
	// Times are the ascending evaluation timestamps (the T slices).
	Times []float64
	// Workers parallelises Naive across (slice, row) pairs and Shared's
	// evaluation phase across rows; 0/1 serial, <0 GOMAXPROCS.
	Workers int
}

func (o *Options) validate() error {
	if o.SpaceKernel.Bandwidth() <= 0 || o.TimeKernel.Bandwidth() <= 0 {
		return fmt.Errorf("stkdv: kernels not initialised; use kernel.New")
	}
	if o.Grid.NX <= 0 || o.Grid.NY <= 0 {
		return fmt.Errorf("stkdv: grid not initialised")
	}
	if len(o.Times) == 0 {
		return fmt.Errorf("stkdv: no time slices")
	}
	prev := math.Inf(-1)
	for i, t := range o.Times {
		if math.IsNaN(t) || t <= prev {
			return fmt.Errorf("stkdv: Times must be strictly increasing and finite (index %d)", i)
		}
		prev = t
	}
	return nil
}

// Cube is an STKDV result: one density grid per time slice.
type Cube struct {
	Spec   geom.PixelGrid
	Times  []float64
	Values [][]float64 // Values[slice][pixel], pixel = iy*NX+ix
}

// Slice returns the density surface of time slice i as a raster grid
// (sharing storage with the cube).
func (c *Cube) Slice(i int) *raster.Grid {
	return &raster.Grid{Spec: c.Spec, Values: c.Values[i]}
}

// MaxAbsDiff returns the largest per-cell difference between two cubes.
func (c *Cube) MaxAbsDiff(o *Cube) (float64, error) {
	if len(c.Values) != len(o.Values) {
		return 0, fmt.Errorf("stkdv: cube slice counts differ")
	}
	m := 0.0
	for s := range c.Values {
		if len(c.Values[s]) != len(o.Values[s]) {
			return 0, fmt.Errorf("stkdv: cube sizes differ at slice %d", s)
		}
		for i := range c.Values[s] {
			if d := math.Abs(c.Values[s][i] - o.Values[s][i]); d > m {
				m = d
			}
		}
	}
	return m, nil
}

func newCube(opt *Options) *Cube {
	c := &Cube{Spec: opt.Grid, Times: append([]float64(nil), opt.Times...)}
	c.Values = make([][]float64, len(opt.Times))
	for i := range c.Values {
		c.Values[i] = make([]float64, opt.Grid.NumPixels())
	}
	return c
}

// Naive computes the exact STKDV by the O(X·Y·T·n) quadruple loop.
func Naive(d *dataset.Dataset, opt Options) (*Cube, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if !d.HasTimes() {
		return nil, fmt.Errorf("stkdv: dataset has no event times")
	}
	cube := newCube(&opt)
	g := opt.Grid
	pts := d.Points()
	eventTimes := d.Times()
	jobs := len(opt.Times) * g.NY
	// Each (slice, row) job writes a disjoint row of the cube.
	parallel.For(jobs, opt.Workers, func(j int) {
		si, iy := j/g.NY, j%g.NY
		ts := opt.Times[si]
		qy := g.CenterY(iy)
		row := cube.Values[si][iy*g.NX : (iy+1)*g.NX]
		for ix := range row {
			q := geom.Point{X: g.CenterX(ix), Y: qy}
			sum := 0.0
			for i, p := range pts {
				kt := opt.TimeKernel.Eval(math.Abs(eventTimes[i] - ts))
				if kt == 0 {
					continue
				}
				sum += kt * opt.SpaceKernel.Eval2(p.Dist2(q))
			}
			row[ix] = sum
		}
	})
	return cube, nil
}

// Shared computes the exact STKDV with per-event spatial footprints shared
// across time slices. Requirements: the spatial kernel must have finite
// support (any type), and the temporal kernel must be polynomial in the
// slice time — uniform, Epanechnikov or quartic.
func Shared(d *dataset.Dataset, opt Options) (*Cube, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if !d.HasTimes() {
		return nil, fmt.Errorf("stkdv: dataset has no event times")
	}
	if !opt.SpaceKernel.FiniteSupport() {
		return nil, fmt.Errorf("stkdv: Shared requires a finite-support spatial kernel, got %v", opt.SpaceKernel.Type())
	}
	nCoef, err := timePolyDegree(opt.TimeKernel.Type())
	if err != nil {
		return nil, err
	}
	cube := newCube(&opt)
	g := opt.Grid
	nxy := g.NumPixels()
	T := len(opt.Times)

	// Times recentred for polynomial conditioning.
	tMid := (opt.Times[0] + opt.Times[T-1]) / 2
	times := make([]float64, T)
	for i, t := range opt.Times {
		times[i] = t - tMid
	}

	// diff[slice][coef·nxy + pixel]: difference arrays; an event active for
	// slices [jLo, jHi) adds its coefficient grids at jLo and subtracts them
	// at jHi.
	diff := make([][]float64, T+1)
	for i := range diff {
		diff[i] = make([]float64, nCoef*nxy)
	}

	bs := opt.SpaceKernel.Bandwidth()
	bt := opt.TimeKernel.Bandwidth()
	pts := d.Points()
	eventTimes := d.Times()
	coefs := make([]float64, nCoef)
	for i, p := range pts {
		tp := eventTimes[i] - tMid
		// Active slice range: |times[j] − tp| ≤ bt.
		jLo := sort.SearchFloat64s(times, tp-bt)
		jHi := sort.SearchFloat64s(times, tp+bt)
		for jHi < T && times[jHi] <= tp+bt {
			jHi++
		}
		if jLo >= jHi {
			continue
		}
		timePolyCoefs(opt.TimeKernel, tp, coefs)
		// Spatial footprint, computed once.
		colLo, colHi := g.ColRange(p.X, bs)
		rowLo, rowHi := g.RowRange(p.Y, bs)
		addTo := diff[jLo]
		subFrom := diff[jHi] // jHi ≤ T; diff has T+1 rows
		for iy := rowLo; iy < rowHi; iy++ {
			qy := g.CenterY(iy)
			dy2 := (qy - p.Y) * (qy - p.Y)
			rowBase := iy * g.NX
			for ix := colLo; ix < colHi; ix++ {
				dx := g.CenterX(ix) - p.X
				ks := opt.SpaceKernel.Eval2(dx*dx + dy2)
				if ks == 0 {
					continue
				}
				px := rowBase + ix
				for c := 0; c < nCoef; c++ {
					v := ks * coefs[c]
					addTo[c*nxy+px] += v
					subFrom[c*nxy+px] -= v
				}
			}
		}
	}

	// Evaluation: prefix-sum the difference arrays across slices and
	// evaluate the temporal polynomial at each slice time. Rows of each
	// slice are independent once `running` is advanced, so parallelise the
	// pixel loop.
	running := make([]float64, nCoef*nxy)
	for si := 0; si < T; si++ {
		dslice := diff[si]
		for k := range running {
			running[k] += dslice[k]
		}
		ts := times[si]
		out := cube.Values[si]
		parallel.ForRange(nxy, opt.Workers, func(lo, hi int) {
			for px := lo; px < hi; px++ {
				v := 0.0
				tPow := 1.0
				for c := 0; c < nCoef; c++ {
					v += running[c*nxy+px] * tPow
					tPow *= ts
				}
				if v < 0 {
					v = 0 // cancellation guard
				}
				out[px] = v
			}
		})
	}
	return cube, nil
}

// timePolyDegree returns the number of polynomial coefficients (degree+1)
// for a temporal kernel type usable by Shared.
func timePolyDegree(t kernel.Type) (int, error) {
	switch t {
	case kernel.Uniform:
		return 1, nil
	case kernel.Epanechnikov:
		return 3, nil
	case kernel.Quartic:
		return 5, nil
	}
	return 0, fmt.Errorf("stkdv: Shared requires a temporal kernel polynomial in time (uniform/epanechnikov/quartic), got %v", t)
}

// timePolyCoefs expands K_t(|t − tp|) as Σ_c coefs[c]·t^c on the support
// window (tp is already recentred like the slice times).
func timePolyCoefs(k kernel.Kernel, tp float64, coefs []float64) {
	bt := k.Bandwidth()
	switch k.Type() {
	case kernel.Uniform:
		coefs[0] = 1 / bt
	case kernel.Epanechnikov:
		// 1 − (t−tp)²/bt²
		inv := 1 / (bt * bt)
		coefs[0] = 1 - tp*tp*inv
		coefs[1] = 2 * tp * inv
		coefs[2] = -inv
	case kernel.Quartic:
		// (1 − (t−tp)²/bt²)²
		inv2 := 1 / (bt * bt)
		inv4 := inv2 * inv2
		tp2 := tp * tp
		coefs[0] = 1 - 2*tp2*inv2 + tp2*tp2*inv4
		coefs[1] = 4*tp*inv2 - 4*tp2*tp*inv4
		coefs[2] = -2*inv2 + 6*tp2*inv4
		coefs[3] = -4 * tp * inv4
		coefs[4] = inv4
	}
}
