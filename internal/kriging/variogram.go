// Package kriging implements ordinary kriging (Table 1 of the paper,
// [92, 101, 112]): geostatistical interpolation in two stages — fit a
// variogram model to the empirical semivariances of the samples, then
// solve, per pixel, the ordinary-kriging system over a local neighbourhood
// of the k nearest samples (the standard way to make kriging tractable,
// and this package's answer to §2.4's "kriging is very time-consuming").
package kriging

import (
	"fmt"
	"math"

	"geostat/internal/dataset"
	gridindex "geostat/internal/index/grid"
)

// Model enumerates the supported variogram models.
type Model int

const (
	// Spherical: γ(h) = nugget + sill·(1.5·h/r − 0.5·(h/r)³) for h < r,
	// nugget + sill beyond.
	Spherical Model = iota
	// Exponential: γ(h) = nugget + sill·(1 − exp(−3h/r)).
	Exponential
	// GaussianModel: γ(h) = nugget + sill·(1 − exp(−3h²/r²)).
	GaussianModel
)

// String returns the model name.
func (m Model) String() string {
	switch m {
	case Spherical:
		return "spherical"
	case Exponential:
		return "exponential"
	case GaussianModel:
		return "gaussian"
	}
	return fmt.Sprintf("kriging.Model(%d)", int(m))
}

// Variogram is a fitted variogram model γ(h).
type Variogram struct {
	Model  Model
	Nugget float64 // γ at h→0⁺
	Sill   float64 // partial sill: γ plateau − nugget
	Range  float64 // distance at which γ levels off
}

// Eval returns γ(h).
func (v Variogram) Eval(h float64) float64 {
	if h <= 0 {
		return 0
	}
	switch v.Model {
	case Spherical:
		if h >= v.Range {
			return v.Nugget + v.Sill
		}
		u := h / v.Range
		return v.Nugget + v.Sill*(1.5*u-0.5*u*u*u)
	case Exponential:
		return v.Nugget + v.Sill*(1-math.Exp(-3*h/v.Range))
	case GaussianModel:
		u := h / v.Range
		return v.Nugget + v.Sill*(1-math.Exp(-3*u*u))
	}
	return 0
}

// EmpiricalBin is one lag bin of the empirical semivariogram.
type EmpiricalBin struct {
	Lag   float64 // mean pair distance in the bin
	Gamma float64 // semivariance: mean of (z_i − z_j)²/2
	Pairs int     // pair count
}

// Empirical computes the empirical semivariogram up to maxLag in bins
// equal-width bins, enumerating close pairs through a grid index (not the
// O(n²) all-pairs loop).
func Empirical(d *dataset.Dataset, maxLag float64, bins int) ([]EmpiricalBin, error) {
	if !d.HasValues() {
		return nil, fmt.Errorf("kriging: dataset has no values")
	}
	if !(maxLag > 0) || bins < 1 {
		return nil, fmt.Errorf("kriging: need maxLag > 0 and bins >= 1 (got %g, %d)", maxLag, bins)
	}
	pts := d.Points()
	vals := d.Values()
	idx := gridindex.New(pts, maxLag)
	width := maxLag / float64(bins)
	sumG := make([]float64, bins)
	sumLag := make([]float64, bins)
	counts := make([]int, bins)
	for i, p := range pts {
		zi := vals[i]
		idx.ForEachInRange(p, maxLag, func(j int, d2 float64) {
			if j <= i { // each unordered pair once
				return
			}
			h := math.Sqrt(d2)
			b := int(h / width)
			if b >= bins {
				b = bins - 1
			}
			dz := zi - vals[j]
			sumG[b] += dz * dz / 2
			sumLag[b] += h
			counts[b]++
		})
	}
	out := make([]EmpiricalBin, 0, bins)
	for b := 0; b < bins; b++ {
		if counts[b] == 0 {
			continue
		}
		out = append(out, EmpiricalBin{
			Lag:   sumLag[b] / float64(counts[b]),
			Gamma: sumG[b] / float64(counts[b]),
			Pairs: counts[b],
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("kriging: no pairs within maxLag %g", maxLag)
	}
	return out, nil
}

// Fit fits a variogram model to empirical bins by pair-count-weighted
// least squares over a coarse-to-fine grid search on (nugget, sill, range).
// Grid search is robust (no derivatives, no divergence) and the parameter
// space is only 3-dimensional.
func Fit(bins []EmpiricalBin, model Model) (Variogram, error) {
	if len(bins) == 0 {
		return Variogram{}, fmt.Errorf("kriging: no empirical bins to fit")
	}
	maxGamma, maxLag := 0.0, 0.0
	for _, b := range bins {
		maxGamma = math.Max(maxGamma, b.Gamma)
		maxLag = math.Max(maxLag, b.Lag)
	}
	if maxGamma == 0 {
		// Constant field: flat variogram.
		return Variogram{Model: model, Nugget: 0, Sill: 0, Range: math.Max(maxLag, 1)}, nil
	}
	best := Variogram{Model: model}
	bestErr := math.Inf(1)
	// Three refinement passes around the best cell.
	nugLo, nugHi := 0.0, maxGamma
	sillLo, sillHi := 0.0, 2*maxGamma
	rngLo, rngHi := maxLag/20, 2*maxLag
	const steps = 12
	for pass := 0; pass < 3; pass++ {
		var bn, bs, br float64
		for in := 0; in <= steps; in++ {
			n := nugLo + (nugHi-nugLo)*float64(in)/steps
			for is := 0; is <= steps; is++ {
				s := sillLo + (sillHi-sillLo)*float64(is)/steps
				for ir := 0; ir <= steps; ir++ {
					r := rngLo + (rngHi-rngLo)*float64(ir)/steps
					if r <= 0 {
						continue
					}
					v := Variogram{Model: model, Nugget: n, Sill: s, Range: r}
					e := wssr(bins, v)
					if e < bestErr {
						bestErr = e
						best = v
						bn, bs, br = n, s, r
					}
				}
			}
		}
		// Shrink the search box around the winner.
		nugLo, nugHi = shrink(bn, nugLo, nugHi)
		sillLo, sillHi = shrink(bs, sillLo, sillHi)
		rngLo, rngHi = shrink(br, rngLo, rngHi)
	}
	return best, nil
}

func shrink(center, lo, hi float64) (float64, float64) {
	span := (hi - lo) / 4
	newLo := math.Max(lo, center-span)
	return newLo, math.Min(hi, center+span)
}

// wssr is the pair-count-weighted sum of squared residuals.
func wssr(bins []EmpiricalBin, v Variogram) float64 {
	e := 0.0
	for _, b := range bins {
		r := v.Eval(b.Lag) - b.Gamma
		e += float64(b.Pairs) * r * r
	}
	return e
}
