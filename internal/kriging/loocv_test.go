package kriging

import (
	"math"
	"testing"

	"geostat/internal/dataset"
	"geostat/internal/geom"
)

func TestLOOCVSmoothField(t *testing.T) {
	d := smoothField(10, 1000, 0.1)
	bins, err := Empirical(d, 40, 15)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Fit(bins, Spherical)
	if err != nil {
		t.Fatal(err)
	}
	cv, err := LOOCV(d, v, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(cv.Residuals) != d.N() {
		t.Fatalf("residuals = %d", len(cv.Residuals))
	}
	// Field amplitude 10, noise 0.1: CV error should be close to the noise
	// floor.
	if cv.RMSE > 0.5 {
		t.Errorf("RMSE = %v", cv.RMSE)
	}
	if cv.MAE > cv.RMSE {
		t.Errorf("MAE %v > RMSE %v", cv.MAE, cv.RMSE)
	}
}

// LOOCV discriminates between a fitted variogram and a nonsense one.
func TestLOOCVDiscriminatesModels(t *testing.T) {
	d := smoothField(11, 600, 0.2)
	bins, err := Empirical(d, 40, 15)
	if err != nil {
		t.Fatal(err)
	}
	good, err := Fit(bins, Spherical)
	if err != nil {
		t.Fatal(err)
	}
	bad := Variogram{Model: GaussianModel, Nugget: 50, Sill: 0.001, Range: 0.5}
	cvGood, err := LOOCV(d, good, 12)
	if err != nil {
		t.Fatal(err)
	}
	cvBad, err := LOOCV(d, bad, 12)
	if err != nil {
		t.Fatal(err)
	}
	if cvGood.RMSE >= cvBad.RMSE {
		t.Errorf("fitted model RMSE %v should beat nonsense %v", cvGood.RMSE, cvBad.RMSE)
	}
}

func TestLOOCVValidation(t *testing.T) {
	d := smoothField(12, 50, 0.1)
	v := Variogram{Model: Spherical, Nugget: 0, Sill: 1, Range: 20}
	if _, err := LOOCV(dataset.FromPoints(d.Points()), v, 5); err == nil {
		t.Error("valueless dataset accepted")
	}
	if _, err := LOOCV(d, Variogram{}, 5); err == nil {
		t.Error("unfitted variogram accepted")
	}
	tiny := mkd(t, []geom.Point{{X: 1, Y: 1}, {X: 2, Y: 2}}, []float64{1, 2})
	if _, err := LOOCV(tiny, v, 5); err == nil {
		t.Error("2 samples accepted")
	}
	// k=0 means all others.
	cv, err := LOOCV(d, v, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(cv.RMSE) {
		t.Error("NaN RMSE")
	}
}
