package kriging

import (
	"fmt"
	"math"
	"sync/atomic"

	"geostat/internal/dataset"
	"geostat/internal/geom"
	"geostat/internal/index/kdtree"
	"geostat/internal/linalg"
	"geostat/internal/parallel"
	"geostat/internal/raster"
)

// Options configures ordinary kriging.
type Options struct {
	// Grid is the output raster.
	Grid geom.PixelGrid
	// Variogram is the fitted model (see Empirical + Fit).
	Variogram Variogram
	// Neighbors is the local neighbourhood size k; each pixel solves a
	// (k+1)×(k+1) system over its k nearest samples. 0 means global kriging
	// (every sample in one big system — the O(n³) cost the paper warns
	// about; only sensible for small n).
	Neighbors int
	// Workers parallelises rows; 0/1 serial, <0 GOMAXPROCS.
	Workers int
}

// Interpolate performs ordinary kriging of d's values onto the grid. For
// each pixel it solves the ordinary-kriging system
//
//	[ Γ  1 ] [λ]   [γ(q)]
//	[ 1ᵀ 0 ] [μ] = [ 1  ]
//
// where Γ is the sample-to-sample semivariance matrix of the neighbourhood
// and γ(q) the sample-to-pixel semivariances; the estimate is Σ λ_i·z_i.
func Interpolate(d *dataset.Dataset, opt Options) (*raster.Grid, error) {
	if !d.HasValues() {
		return nil, fmt.Errorf("kriging: dataset has no values")
	}
	if d.N() < 2 {
		return nil, fmt.Errorf("kriging: need at least 2 samples, got %d", d.N())
	}
	if opt.Grid.NX <= 0 || opt.Grid.NY <= 0 {
		return nil, fmt.Errorf("kriging: grid not initialised")
	}
	if opt.Neighbors < 0 {
		return nil, fmt.Errorf("kriging: negative Neighbors")
	}
	if !(opt.Variogram.Range > 0) {
		return nil, fmt.Errorf("kriging: variogram not fitted (Range %g)", opt.Variogram.Range)
	}
	k := opt.Neighbors
	if k == 0 || k > d.N() {
		k = d.N()
	}
	pts := d.Points()
	vals := d.Values()
	tree := kdtree.New(pts)
	out := raster.NewGrid(opt.Grid)
	ny, nx := opt.Grid.NY, opt.Grid.NX

	// Each worker reuses one solveState (factorisation matrix + RHS) across
	// all of its rows; dynamic chunking through internal/parallel.
	var firstErr atomic.Value
	parallel.ForScratch(ny, opt.Workers,
		func() *solveState { return newSolveState(k) },
		func(st *solveState, iy int) {
			qy := opt.Grid.CenterY(iy)
			row := out.Values[iy*nx : (iy+1)*nx]
			for ix := range row {
				q := geom.Point{X: opt.Grid.CenterX(ix), Y: qy}
				v, err := st.estimate(pts, vals, tree, q, k, opt.Variogram)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				row[ix] = v
			}
		})
	if err, _ := firstErr.Load().(error); err != nil {
		return nil, err
	}
	return out, nil
}

// solveState is per-worker scratch for the kriging systems.
type solveState struct {
	mat     *linalg.Matrix
	rhs     []float64
	scratch []int
}

func newSolveState(k int) *solveState {
	return &solveState{
		mat: linalg.NewMatrix(k+1, k+1),
		rhs: make([]float64, k+1),
	}
}

func (st *solveState) estimate(pts []geom.Point, vals []float64, tree *kdtree.Tree, q geom.Point, k int, v Variogram) (float64, error) {
	idx, d2 := tree.KNearest(q, k, st.scratch)
	st.scratch = idx
	return st.estimateFrom(pts, vals, q, idx, d2, v)
}

// estimateFrom solves the ordinary-kriging system over an explicit
// neighbourhood (idx with squared distances d2, ascending).
func (st *solveState) estimateFrom(pts []geom.Point, vals []float64, q geom.Point, idx []int, d2 []float64, v Variogram) (float64, error) {
	m := len(idx)
	if m == 0 {
		return 0, fmt.Errorf("kriging: no neighbours found")
	}
	// Coincident pixel: exact sample value.
	if d2[0] < 1e-18 {
		return vals[idx[0]], nil
	}
	// Degenerate neighbourhood (all samples identical locations) falls back
	// to the mean.
	n := m + 1
	mat := st.mat
	if mat.Rows != n {
		mat = linalg.NewMatrix(n, n)
	}
	rhs := st.rhs[:0]
	for i := 0; i < m; i++ {
		pi := pts[idx[i]]
		for j := 0; j < m; j++ {
			mat.Set(i, j, v.Eval(pi.Dist(pts[idx[j]])))
		}
		mat.Set(i, m, 1)
		mat.Set(m, i, 1)
		rhs = append(rhs, v.Eval(math.Sqrt(d2[i])))
	}
	mat.Set(m, m, 0)
	rhs = append(rhs, 1)
	if err := linalg.SolveInPlace(mat, rhs); err != nil {
		// Singular systems arise from duplicate sample sites; fall back to
		// the neighbourhood mean rather than failing the whole surface.
		sum := 0.0
		for _, i := range idx {
			sum += vals[i]
		}
		return sum / float64(m), nil
	}
	est := 0.0
	for i := 0; i < m; i++ {
		est += rhs[i] * vals[idx[i]]
	}
	return est, nil
}
