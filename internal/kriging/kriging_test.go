package kriging

import (
	"math"
	"math/rand"
	"testing"

	"geostat/internal/dataset"
	"geostat/internal/geom"
)

var box = geom.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}

// mkd builds a valued dataset, failing the test on constructor error.
func mkd(t *testing.T, pts []geom.Point, values []float64) *dataset.Dataset {
	t.Helper()
	d, err := dataset.New(pts, nil, values)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func smoothField(seed int64, n int, noise float64) *dataset.Dataset {
	r := rand.New(rand.NewSource(seed))
	d := dataset.UniformCSR(r, n, box)
	return dataset.WithField(r, d, func(p geom.Point) float64 {
		return math.Sin(p.X/25) * math.Cos(p.Y/25) * 10
	}, noise)
}

func TestVariogramModels(t *testing.T) {
	for _, m := range []Model{Spherical, Exponential, GaussianModel} {
		v := Variogram{Model: m, Nugget: 0.5, Sill: 2, Range: 10}
		if got := v.Eval(0); got != 0 {
			t.Errorf("%v: γ(0) = %v, want 0", m, got)
		}
		// Just above zero: at least the nugget.
		if got := v.Eval(1e-9); got < 0.5-1e-6 {
			t.Errorf("%v: γ(0+) = %v, want >= nugget", m, got)
		}
		// Far beyond range: nugget + sill (exactly for spherical, ≈ for the
		// exponential forms with their 95% convention at h=Range).
		if got := v.Eval(100); math.Abs(got-2.5) > 0.15 {
			t.Errorf("%v: γ(∞) = %v, want ≈ 2.5", m, got)
		}
		// Monotone non-decreasing.
		prev := 0.0
		for h := 0.0; h <= 30; h += 0.25 {
			g := v.Eval(h)
			if g < prev-1e-12 {
				t.Fatalf("%v: γ not monotone at %v", m, h)
			}
			prev = g
		}
	}
	if Spherical.String() != "spherical" || Exponential.String() != "exponential" || GaussianModel.String() != "gaussian" {
		t.Error("model names wrong")
	}
}

func TestEmpiricalValidation(t *testing.T) {
	d := smoothField(1, 100, 0)
	if _, err := Empirical(dataset.FromPoints(d.Points()), 20, 10); err == nil {
		t.Error("valueless dataset accepted")
	}
	if _, err := Empirical(d, 0, 10); err == nil {
		t.Error("zero maxLag accepted")
	}
	if _, err := Empirical(d, 20, 0); err == nil {
		t.Error("zero bins accepted")
	}
	far := mkd(t, []geom.Point{{X: 0, Y: 0}, {X: 1000, Y: 1000}}, []float64{1, 2})
	if _, err := Empirical(far, 1, 4); err == nil {
		t.Error("no-pairs case should error")
	}
}

func TestEmpiricalStructure(t *testing.T) {
	d := smoothField(2, 800, 0.1)
	bins, err := Empirical(d, 40, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) < 8 {
		t.Fatalf("only %d bins populated", len(bins))
	}
	// A spatially correlated field: semivariance at short lags is well
	// below semivariance at long lags.
	if bins[0].Gamma >= bins[len(bins)-1].Gamma {
		t.Errorf("γ(short)=%v not below γ(long)=%v", bins[0].Gamma, bins[len(bins)-1].Gamma)
	}
	for _, b := range bins {
		if b.Pairs <= 0 || b.Lag <= 0 || b.Gamma < 0 {
			t.Fatalf("invalid bin %+v", b)
		}
	}
}

func TestFitRecoversKnownVariogram(t *testing.T) {
	// Synthesize empirical bins from a known model and refit.
	truth := Variogram{Model: Spherical, Nugget: 0.3, Sill: 4, Range: 22}
	var bins []EmpiricalBin
	for h := 1.0; h <= 40; h += 2 {
		bins = append(bins, EmpiricalBin{Lag: h, Gamma: truth.Eval(h), Pairs: 100})
	}
	got, err := Fit(bins, Spherical)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Nugget-truth.Nugget) > 0.3 ||
		math.Abs(got.Sill-truth.Sill) > 0.6 ||
		math.Abs(got.Range-truth.Range) > 4 {
		t.Errorf("Fit = %+v, want ≈ %+v", got, truth)
	}
	if _, err := Fit(nil, Spherical); err == nil {
		t.Error("empty bins accepted")
	}
}

func TestFitConstantField(t *testing.T) {
	bins := []EmpiricalBin{{Lag: 5, Gamma: 0, Pairs: 10}, {Lag: 10, Gamma: 0, Pairs: 10}}
	v, err := Fit(bins, Exponential)
	if err != nil {
		t.Fatal(err)
	}
	if v.Sill != 0 || v.Range <= 0 {
		t.Errorf("flat fit = %+v", v)
	}
}

func TestInterpolateValidation(t *testing.T) {
	d := smoothField(3, 50, 0)
	g := geom.NewPixelGrid(box, 5, 5)
	v := Variogram{Model: Spherical, Nugget: 0, Sill: 1, Range: 10}
	if _, err := Interpolate(dataset.FromPoints(d.Points()), Options{Grid: g, Variogram: v}); err == nil {
		t.Error("valueless dataset accepted")
	}
	if _, err := Interpolate(d, Options{Variogram: v}); err == nil {
		t.Error("zero grid accepted")
	}
	if _, err := Interpolate(d, Options{Grid: g}); err == nil {
		t.Error("unfitted variogram accepted")
	}
	if _, err := Interpolate(d, Options{Grid: g, Variogram: v, Neighbors: -1}); err == nil {
		t.Error("negative neighbours accepted")
	}
	tiny := mkd(t, []geom.Point{{X: 1, Y: 1}}, []float64{2})
	if _, err := Interpolate(tiny, Options{Grid: g, Variogram: v}); err == nil {
		t.Error("single sample accepted")
	}
}

func TestExactAtSamples(t *testing.T) {
	g := geom.NewPixelGrid(box, 20, 20)
	q := g.Center(5, 5)
	d := mkd(t, []geom.Point{q, {X: 80, Y: 80}, {X: 20, Y: 70}}, []float64{13, 2, 5})
	out, err := Interpolate(d, Options{
		Grid:      g,
		Variogram: Variogram{Model: Spherical, Nugget: 0, Sill: 1, Range: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.At(5, 5); math.Abs(got-13) > 1e-9 {
		t.Errorf("value at sample = %v, want 13", got)
	}
}

func TestFieldRecovery(t *testing.T) {
	d := smoothField(4, 1500, 0)
	bins, err := Empirical(d, 40, 15)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Fit(bins, Spherical)
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Grid: geom.NewPixelGrid(box, 20, 20), Variogram: v, Neighbors: 16}
	out, err := Interpolate(d, o)
	if err != nil {
		t.Fatal(err)
	}
	f := func(p geom.Point) float64 { return math.Sin(p.X/25) * math.Cos(p.Y/25) * 10 }
	sumErr := 0.0
	for iy := 0; iy < o.Grid.NY; iy++ {
		for ix := 0; ix < o.Grid.NX; ix++ {
			sumErr += math.Abs(out.At(ix, iy) - f(o.Grid.Center(ix, iy)))
		}
	}
	mean := sumErr / float64(o.Grid.NumPixels())
	if mean > 0.5 {
		t.Errorf("mean kriging error %v (field amplitude 10)", mean)
	}
}

func TestGlobalEqualsFullNeighborhood(t *testing.T) {
	d := smoothField(5, 40, 0.1)
	v := Variogram{Model: Exponential, Nugget: 0.1, Sill: 2, Range: 25}
	g := geom.NewPixelGrid(box, 8, 8)
	global, err := Interpolate(d, Options{Grid: g, Variogram: v, Neighbors: 0})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Interpolate(d, Options{Grid: g, Variogram: v, Neighbors: d.N()})
	if err != nil {
		t.Fatal(err)
	}
	if diff, _ := global.MaxAbsDiff(full); diff > 1e-7 {
		t.Errorf("global vs full-neighbourhood diff %v", diff)
	}
}

func TestDuplicateSamplesFallback(t *testing.T) {
	// Duplicate sites make the kriging matrix singular; the estimator must
	// fall back instead of failing.
	d := mkd(t, []geom.Point{{X: 10, Y: 10}, {X: 10, Y: 10}, {X: 90, Y: 90}}, []float64{4, 4, 8})
	out, err := Interpolate(d, Options{
		Grid:      geom.NewPixelGrid(box, 6, 6),
		Variogram: Variogram{Model: Spherical, Nugget: 0, Sill: 1, Range: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite kriging output")
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	d := smoothField(6, 300, 0.1)
	v := Variogram{Model: Spherical, Nugget: 0.1, Sill: 2, Range: 25}
	o := Options{Grid: geom.NewPixelGrid(box, 10, 10), Variogram: v, Neighbors: 10}
	serial, err := Interpolate(d, o)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 4
	par, err := Interpolate(d, o)
	if err != nil {
		t.Fatal(err)
	}
	if diff, _ := serial.MaxAbsDiff(par); diff > 1e-12 {
		t.Errorf("parallel differs by %v", diff)
	}
}
