package kriging

import (
	"fmt"
	"math"

	"geostat/internal/dataset"
	"geostat/internal/index/kdtree"
)

// CVResult summarises a leave-one-out cross-validation of an interpolator:
// each sample is predicted from its neighbours with itself withheld.
type CVResult struct {
	RMSE      float64
	MAE       float64
	Residuals []float64 // predicted − observed, per sample
}

// LOOCV cross-validates ordinary kriging with the given variogram and
// neighbourhood size: sample i is estimated from its k nearest other
// samples. The headline use is comparing variogram models or neighbourhood
// sizes without ground truth.
func LOOCV(d *dataset.Dataset, v Variogram, neighbors int) (*CVResult, error) {
	if !d.HasValues() {
		return nil, fmt.Errorf("kriging: dataset has no values")
	}
	n := d.N()
	if n < 3 {
		return nil, fmt.Errorf("kriging: need at least 3 samples, got %d", n)
	}
	if !(v.Range > 0) {
		return nil, fmt.Errorf("kriging: variogram not fitted (Range %g)", v.Range)
	}
	k := neighbors
	if k <= 0 || k > n-1 {
		k = n - 1
	}
	tree := kdtree.New(d.Points)
	st := newSolveState(k)
	res := &CVResult{Residuals: make([]float64, n)}
	idxBuf := make([]int, 0, k+1)
	d2Buf := make([]float64, 0, k+1)
	for i, p := range d.Points {
		// k+1 nearest includes the sample itself; withhold it. Duplicate
		// sites keep their twin (that is the honest LOOCV answer there).
		idx, d2 := tree.KNearest(p, k+1, nil)
		idxBuf = idxBuf[:0]
		d2Buf = d2Buf[:0]
		for j, id := range idx {
			if id == i {
				continue
			}
			idxBuf = append(idxBuf, id)
			d2Buf = append(d2Buf, d2[j])
		}
		if len(idxBuf) > k {
			idxBuf = idxBuf[:k]
			d2Buf = d2Buf[:k]
		}
		pred, err := st.estimateFrom(d, p, idxBuf, d2Buf, v)
		if err != nil {
			return nil, fmt.Errorf("kriging: LOOCV at sample %d: %w", i, err)
		}
		res.Residuals[i] = pred - d.Values[i]
	}
	finishCV(res)
	return res, nil
}

func finishCV(res *CVResult) {
	var sq, ab float64
	for _, r := range res.Residuals {
		sq += r * r
		ab += math.Abs(r)
	}
	n := float64(len(res.Residuals))
	res.RMSE = math.Sqrt(sq / n)
	res.MAE = ab / n
}
