package kriging

import (
	"fmt"
	"math"
	"sync/atomic"

	"geostat/internal/dataset"
	"geostat/internal/index/kdtree"
	"geostat/internal/parallel"
)

// CVResult summarises a leave-one-out cross-validation of an interpolator:
// each sample is predicted from its neighbours with itself withheld.
type CVResult struct {
	RMSE      float64
	MAE       float64
	Residuals []float64 // predicted − observed, per sample
}

// LOOCV cross-validates ordinary kriging with the given variogram and
// neighbourhood size: sample i is estimated from its k nearest other
// samples. The headline use is comparing variogram models or neighbourhood
// sizes without ground truth. Equivalent to LOOCVWorkers with every core.
func LOOCV(d *dataset.Dataset, v Variogram, neighbors int) (*CVResult, error) {
	return LOOCVWorkers(d, v, neighbors, -1)
}

// cvScratch is the per-worker state of a parallel LOOCV: one kriging solve
// state plus reusable neighbourhood buffers.
type cvScratch struct {
	st      *solveState
	scratch []int
	idxBuf  []int
	d2Buf   []float64
}

// LOOCVWorkers is LOOCV with an explicit parallelism degree (0/1 serial,
// <0 GOMAXPROCS). Residuals are written per sample index, so the result is
// bit-identical for every worker count.
func LOOCVWorkers(d *dataset.Dataset, v Variogram, neighbors, workers int) (*CVResult, error) {
	if !d.HasValues() {
		return nil, fmt.Errorf("kriging: dataset has no values")
	}
	n := d.N()
	if n < 3 {
		return nil, fmt.Errorf("kriging: need at least 3 samples, got %d", n)
	}
	if !(v.Range > 0) {
		return nil, fmt.Errorf("kriging: variogram not fitted (Range %g)", v.Range)
	}
	k := neighbors
	if k <= 0 || k > n-1 {
		k = n - 1
	}
	pts := d.Points()
	vals := d.Values()
	tree := kdtree.New(pts)
	res := &CVResult{Residuals: make([]float64, n)}
	var firstErr atomic.Value
	parallel.ForScratch(n, workers,
		func() *cvScratch {
			return &cvScratch{
				st:     newSolveState(k),
				idxBuf: make([]int, 0, k+1),
				d2Buf:  make([]float64, 0, k+1),
			}
		},
		func(s *cvScratch, i int) {
			p := pts[i]
			// k+1 nearest includes the sample itself; withhold it. Duplicate
			// sites keep their twin (that is the honest LOOCV answer there).
			idx, d2 := tree.KNearest(p, k+1, s.scratch)
			s.scratch = idx
			s.idxBuf = s.idxBuf[:0]
			s.d2Buf = s.d2Buf[:0]
			for j, id := range idx {
				if id == i {
					continue
				}
				s.idxBuf = append(s.idxBuf, id)
				s.d2Buf = append(s.d2Buf, d2[j])
			}
			if len(s.idxBuf) > k {
				s.idxBuf = s.idxBuf[:k]
				s.d2Buf = s.d2Buf[:k]
			}
			pred, err := s.st.estimateFrom(pts, vals, p, s.idxBuf, s.d2Buf, v)
			if err != nil {
				firstErr.CompareAndSwap(nil, fmt.Errorf("kriging: LOOCV at sample %d: %w", i, err))
				return
			}
			res.Residuals[i] = pred - vals[i]
		})
	if err, _ := firstErr.Load().(error); err != nil {
		return nil, err
	}
	finishCV(res)
	return res, nil
}

func finishCV(res *CVResult) {
	var sq, ab float64
	for _, r := range res.Residuals {
		sq += r * r
		ab += math.Abs(r)
	}
	n := float64(len(res.Residuals))
	res.RMSE = math.Sqrt(sq / n)
	res.MAE = ab / n
}
