// Package linalg provides the small dense linear algebra Kriging needs: an
// LU solver with partial pivoting for the (k+1)×(k+1) ordinary-kriging
// systems. Stdlib-only by design (the module has no dependencies).
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set sets element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{Rows: m.Rows, Cols: m.Cols, Data: append([]float64(nil), m.Data...)}
}

// SolveInPlace solves A·x = b by Gaussian elimination with partial
// pivoting, destroying A and b; on success b holds x. It fails on
// non-square or (near-)singular systems.
func SolveInPlace(a *Matrix, b []float64) error {
	n := a.Rows
	if a.Cols != n {
		return fmt.Errorf("linalg: non-square system %dx%d", a.Rows, a.Cols)
	}
	if len(b) != n {
		return fmt.Errorf("linalg: rhs length %d for %dx%d system", len(b), n, n)
	}
	const tiny = 1e-12
	for col := 0; col < n; col++ {
		// Partial pivot: largest |a[row][col]| among rows >= col.
		pivot := col
		pv := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > pv {
				pivot, pv = r, v
			}
		}
		if pv < tiny {
			return fmt.Errorf("linalg: singular system (pivot %g at column %d)", pv, col)
		}
		if pivot != col {
			swapRows(a, pivot, col)
			b[pivot], b[col] = b[col], b[pivot]
		}
		inv := 1 / a.At(col, col)
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a.Set(r, c, a.At(r, c)-f*a.At(col, c))
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a.At(r, c) * b[c]
		}
		b[r] = sum / a.At(r, r)
	}
	return nil
}

// Solve is SolveInPlace on copies, leaving a and b intact and returning x.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	x := append([]float64(nil), b...)
	if err := SolveInPlace(a.Clone(), x); err != nil {
		return nil, err
	}
	return x, nil
}

func swapRows(m *Matrix, i, j int) {
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}
