package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestSolveIdentity(t *testing.T) {
	a := NewMatrix(3, 3)
	for i := 0; i < 3; i++ {
		a.Set(i, i, 1)
	}
	x, err := Solve(a, []float64{4, -5, 6})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4, -5, 6}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x − y = 1  →  x=2, y=1.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, -1)
	x, err := Solve(a, []float64{5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Errorf("x = %v, want [2 1]", x)
	}
}

// Pivoting: a zero on the diagonal must not break the solve.
func TestSolveNeedsPivoting(t *testing.T) {
	// 0x + y = 3; x + y = 5 → x=2, y=3.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 1)
	x, err := Solve(a, []float64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("x = %v, want [2 3]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4) // rank 1
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Error("singular system accepted")
	}
}

func TestSolveShapeErrors(t *testing.T) {
	a := NewMatrix(2, 3)
	if err := SolveInPlace(a, []float64{1, 2}); err == nil {
		t.Error("non-square accepted")
	}
	b := NewMatrix(2, 2)
	b.Set(0, 0, 1)
	b.Set(1, 1, 1)
	if err := SolveInPlace(b, []float64{1}); err == nil {
		t.Error("wrong rhs length accepted")
	}
}

// Property: for random well-conditioned systems, A·x ≈ b.
func TestSolveResidual(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(12)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.NormFloat64())
			}
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonal dominance
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64() * 10
		}
		x, err := Solve(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				sum += a.At(i, j) * x[j]
			}
			if math.Abs(sum-b[i]) > 1e-8 {
				t.Fatalf("trial %d: residual %v at row %d", trial, sum-b[i], i)
			}
		}
	}
}

func TestSolveLeavesInputsIntact(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 3)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 2)
	b := []float64{5, 5}
	if _, err := Solve(a, b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 3 || a.At(1, 1) != 2 || b[0] != 5 {
		t.Error("Solve modified its inputs")
	}
}
