package weights

import (
	"math"
	"math/rand"
	"testing"

	"geostat/internal/geom"
)

func gridPoints(n int) []geom.Point {
	pts := make([]geom.Point, 0, n*n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			pts = append(pts, geom.Point{X: float64(x), Y: float64(y)})
		}
	}
	return pts
}

func TestKNNValidation(t *testing.T) {
	pts := gridPoints(3)
	if _, err := KNN(pts, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KNN(pts, len(pts)); err == nil {
		t.Error("k=n accepted")
	}
}

func TestKNNStructure(t *testing.T) {
	pts := gridPoints(5)
	m, err := KNN(pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.N != 25 {
		t.Fatalf("N = %d", m.N)
	}
	for i := 0; i < m.N; i++ {
		if m.Degree(i) != 4 {
			t.Fatalf("site %d degree %d, want 4", i, m.Degree(i))
		}
		m.ForEachNeighbor(i, func(j int, w float64) {
			if j == i {
				t.Fatal("self-neighbour present")
			}
			if w != 1 {
				t.Fatalf("binary weight = %v", w)
			}
		})
	}
	// Interior point (2,2) = index 12: neighbours are the 4-adjacent cells.
	want := map[int]bool{7: true, 11: true, 13: true, 17: true}
	m.ForEachNeighbor(12, func(j int, _ float64) {
		if !want[j] {
			t.Errorf("unexpected neighbour %d of center", j)
		}
		delete(want, j)
	})
	if len(want) != 0 {
		t.Errorf("missing neighbours: %v", want)
	}
	if m.S0() != 100 {
		t.Errorf("S0 = %v, want 100", m.S0())
	}
}

func TestDistanceBand(t *testing.T) {
	pts := gridPoints(4)
	if _, err := DistanceBand(pts, 0); err == nil {
		t.Error("radius=0 accepted")
	}
	m, err := DistanceBand(pts, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Corner point (0,0): neighbours (1,0) and (0,1).
	if m.Degree(0) != 2 {
		t.Errorf("corner degree = %d, want 2", m.Degree(0))
	}
	// Interior point (1,1) = index 5: four neighbours at distance 1.
	if m.Degree(5) != 4 {
		t.Errorf("interior degree = %d, want 4", m.Degree(5))
	}
	// Symmetry: w_ij = w_ji for distance band.
	adj := make(map[[2]int]bool)
	for i := 0; i < m.N; i++ {
		m.ForEachNeighbor(i, func(j int, _ float64) { adj[[2]int{i, j}] = true })
	}
	for key := range adj {
		if !adj[[2]int{key[1], key[0]}] {
			t.Fatalf("asymmetric band weights at %v", key)
		}
	}
}

func TestRowStandardize(t *testing.T) {
	pts := gridPoints(4)
	m, err := DistanceBand(pts, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	m.RowStandardize()
	for i := 0; i < m.N; i++ {
		if got := m.RowSum(i); math.Abs(got-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, got)
		}
	}
	// Isolated point: row stays zero.
	iso := append(gridPoints(2), geom.Point{X: 100, Y: 100})
	m2, err := DistanceBand(iso, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	m2.RowStandardize()
	if m2.RowSum(4) != 0 {
		t.Error("isolated point gained weight")
	}
	if m2.RowSumSquares(4) != 0 {
		t.Error("isolated point RowSumSquares nonzero")
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 200)
	for i := range pts {
		pts[i] = geom.Point{X: r.Float64() * 50, Y: r.Float64() * 50}
	}
	const k = 6
	m, err := KNN(pts, k)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		// The k-th neighbour distance from the matrix must match brute force.
		maxD := 0.0
		m.ForEachNeighbor(i, func(j int, _ float64) {
			if d := pts[i].Dist(pts[j]); d > maxD {
				maxD = d
			}
		})
		// Brute force k-th nearest distance.
		ds := make([]float64, 0, len(pts)-1)
		for j := range pts {
			if j != i {
				ds = append(ds, pts[i].Dist(pts[j]))
			}
		}
		kth := kthSmallest(ds, k)
		if math.Abs(maxD-kth) > 1e-9 {
			t.Fatalf("site %d: kth dist %v, want %v", i, maxD, kth)
		}
	}
}

func kthSmallest(ds []float64, k int) float64 {
	// Simple selection for the test.
	for i := 0; i < k; i++ {
		min := i
		for j := i + 1; j < len(ds); j++ {
			if ds[j] < ds[min] {
				min = j
			}
		}
		ds[i], ds[min] = ds[min], ds[i]
	}
	return ds[k-1]
}
