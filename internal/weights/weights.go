// Package weights builds the sparse spatial weight matrices that the
// autocorrelation statistics (Moran's I, Getis-Ord G — Table 1 of the
// paper) are defined over: k-nearest-neighbour and distance-band
// neighbourhoods, optionally row-standardised.
package weights

import (
	"fmt"

	"geostat/internal/geom"
	gridindex "geostat/internal/index/grid"
	"geostat/internal/index/kdtree"
)

// Matrix is a sparse spatial weight matrix in CSR layout. Self-weights are
// always zero (w_ii = 0), per the statistics' definitions.
type Matrix struct {
	N   int
	off []int32
	col []int32
	w   []float64
}

// KNN returns the binary k-nearest-neighbour weight matrix: w_ij = 1 if j
// is one of i's k nearest points (asymmetric in general).
func KNN(pts []geom.Point, k int) (*Matrix, error) {
	n := len(pts)
	if k < 1 {
		return nil, fmt.Errorf("weights: k must be >= 1, got %d", k)
	}
	if k >= n {
		return nil, fmt.Errorf("weights: k=%d must be < n=%d", k, n)
	}
	tree := kdtree.New(pts)
	m := &Matrix{
		N:   n,
		off: make([]int32, n+1),
		col: make([]int32, 0, n*k),
		w:   make([]float64, 0, n*k),
	}
	var scratch []int
	for i, p := range pts {
		// k+1 nearest includes the point itself (distance 0); drop i.
		idx, _ := tree.KNearest(p, k+1, scratch)
		scratch = idx
		added := 0
		for _, j := range idx {
			if j == i || added == k {
				continue
			}
			m.col = append(m.col, int32(j))
			m.w = append(m.w, 1)
			added++
		}
		m.off[i+1] = int32(len(m.col))
	}
	return m, nil
}

// DistanceBand returns the binary distance-band weight matrix:
// w_ij = 1 if 0 < dist(i, j) <= radius (symmetric).
func DistanceBand(pts []geom.Point, radius float64) (*Matrix, error) {
	n := len(pts)
	if !(radius > 0) {
		return nil, fmt.Errorf("weights: radius must be positive, got %g", radius)
	}
	idx := gridindex.New(pts, radius)
	m := &Matrix{N: n, off: make([]int32, n+1)}
	var buf []int
	for i, p := range pts {
		buf = idx.RangeQuery(p, radius, buf[:0])
		for _, j := range buf {
			if j == i {
				continue
			}
			m.col = append(m.col, int32(j))
			m.w = append(m.w, 1)
		}
		m.off[i+1] = int32(len(m.col))
	}
	return m, nil
}

// RowStandardize scales each row to sum to 1 (rows with no neighbours stay
// zero) and returns m for chaining.
func (m *Matrix) RowStandardize() *Matrix {
	for i := 0; i < m.N; i++ {
		lo, hi := m.off[i], m.off[i+1]
		sum := 0.0
		for _, v := range m.w[lo:hi] {
			sum += v
		}
		if sum == 0 {
			continue
		}
		for k := lo; k < hi; k++ {
			m.w[k] /= sum
		}
	}
	return m
}

// ForEachNeighbor calls fn(j, w_ij) for every nonzero weight in row i.
func (m *Matrix) ForEachNeighbor(i int, fn func(j int, w float64)) {
	for k := m.off[i]; k < m.off[i+1]; k++ {
		fn(int(m.col[k]), m.w[k])
	}
}

// Degree returns the number of neighbours of i.
func (m *Matrix) Degree(i int) int { return int(m.off[i+1] - m.off[i]) }

// S0 returns Σ_ij w_ij, the total weight.
func (m *Matrix) S0() float64 {
	s := 0.0
	for _, v := range m.w {
		s += v
	}
	return s
}

// RowSum returns Σ_j w_ij for row i.
func (m *Matrix) RowSum(i int) float64 {
	s := 0.0
	for k := m.off[i]; k < m.off[i+1]; k++ {
		s += m.w[k]
	}
	return s
}

// RowSumSquares returns Σ_j w_ij² for row i.
func (m *Matrix) RowSumSquares(i int) float64 {
	s := 0.0
	for k := m.off[i]; k < m.off[i+1]; k++ {
		s += m.w[k] * m.w[k]
	}
	return s
}
