// Package weights builds the sparse spatial weight matrices that the
// autocorrelation statistics (Moran's I, Getis-Ord G — Table 1 of the
// paper) are defined over: k-nearest-neighbour and distance-band
// neighbourhoods, optionally row-standardised.
package weights

import (
	"fmt"

	"geostat/internal/geom"
	gridindex "geostat/internal/index/grid"
	"geostat/internal/index/kdtree"
	"geostat/internal/parallel"
)

// Matrix is a sparse spatial weight matrix in CSR layout. Self-weights are
// always zero (w_ii = 0), per the statistics' definitions.
type Matrix struct {
	N   int
	off []int32
	col []int32
	w   []float64
}

// KNN returns the binary k-nearest-neighbour weight matrix: w_ij = 1 if j
// is one of i's k nearest points (asymmetric in general). Equivalent to
// KNNWorkers with every core.
func KNN(pts []geom.Point, k int) (*Matrix, error) {
	return KNNWorkers(pts, k, -1)
}

// KNNWorkers is KNN with an explicit parallelism degree (0/1 serial, <0
// GOMAXPROCS). Rows are computed independently (the kd-tree is read-only
// once built) and assembled in site order, so the matrix is bit-identical
// for every worker count.
func KNNWorkers(pts []geom.Point, k, workers int) (*Matrix, error) {
	n := len(pts)
	if k < 1 {
		return nil, fmt.Errorf("weights: k must be >= 1, got %d", k)
	}
	if k >= n {
		return nil, fmt.Errorf("weights: k=%d must be < n=%d", k, n)
	}
	tree := kdtree.New(pts)
	rows := make([][]int32, n)
	type knnScratch struct{ buf []int }
	parallel.ForScratch(n, workers,
		func() *knnScratch { return &knnScratch{} },
		func(s *knnScratch, i int) {
			// k+1 nearest includes the point itself (distance 0); drop i.
			idx, _ := tree.KNearest(pts[i], k+1, s.buf)
			s.buf = idx
			row := make([]int32, 0, k)
			for _, j := range idx {
				if j == i || len(row) == k {
					continue
				}
				row = append(row, int32(j))
			}
			rows[i] = row
		})
	return fromRows(n, rows), nil
}

// DistanceBand returns the binary distance-band weight matrix:
// w_ij = 1 if 0 < dist(i, j) <= radius (symmetric). Equivalent to
// DistanceBandWorkers with every core.
func DistanceBand(pts []geom.Point, radius float64) (*Matrix, error) {
	return DistanceBandWorkers(pts, radius, -1)
}

// DistanceBandWorkers is DistanceBand with an explicit parallelism degree
// (0/1 serial, <0 GOMAXPROCS). Rows are computed independently over a
// read-only grid index and assembled in site order, so the matrix is
// bit-identical for every worker count.
func DistanceBandWorkers(pts []geom.Point, radius float64, workers int) (*Matrix, error) {
	n := len(pts)
	if !(radius > 0) {
		return nil, fmt.Errorf("weights: radius must be positive, got %g", radius)
	}
	idx := gridindex.New(pts, radius)
	rows := make([][]int32, n)
	type bandScratch struct{ buf []int }
	parallel.ForScratch(n, workers,
		func() *bandScratch { return &bandScratch{} },
		func(s *bandScratch, i int) {
			s.buf = idx.RangeQuery(pts[i], radius, s.buf[:0])
			row := make([]int32, 0, len(s.buf))
			for _, j := range s.buf {
				if j != i {
					row = append(row, int32(j))
				}
			}
			rows[i] = row
		})
	return fromRows(n, rows), nil
}

// fromRows assembles per-site neighbour lists into the CSR layout with
// unit weights.
func fromRows(n int, rows [][]int32) *Matrix {
	total := 0
	for _, r := range rows {
		total += len(r)
	}
	m := &Matrix{
		N:   n,
		off: make([]int32, n+1),
		col: make([]int32, 0, total),
		w:   make([]float64, total),
	}
	for i, r := range rows {
		m.col = append(m.col, r...)
		m.off[i+1] = int32(len(m.col))
	}
	for i := range m.w {
		m.w[i] = 1
	}
	return m
}

// RowStandardize scales each row to sum to 1 (rows with no neighbours stay
// zero) and returns m for chaining.
func (m *Matrix) RowStandardize() *Matrix {
	for i := 0; i < m.N; i++ {
		lo, hi := m.off[i], m.off[i+1]
		sum := 0.0
		for _, v := range m.w[lo:hi] {
			sum += v
		}
		if sum == 0 {
			continue
		}
		for k := lo; k < hi; k++ {
			m.w[k] /= sum
		}
	}
	return m
}

// ForEachNeighbor calls fn(j, w_ij) for every nonzero weight in row i.
func (m *Matrix) ForEachNeighbor(i int, fn func(j int, w float64)) {
	for k := m.off[i]; k < m.off[i+1]; k++ {
		fn(int(m.col[k]), m.w[k])
	}
}

// Degree returns the number of neighbours of i.
func (m *Matrix) Degree(i int) int { return int(m.off[i+1] - m.off[i]) }

// S0 returns Σ_ij w_ij, the total weight.
func (m *Matrix) S0() float64 {
	s := 0.0
	for _, v := range m.w {
		s += v
	}
	return s
}

// RowSum returns Σ_j w_ij for row i.
func (m *Matrix) RowSum(i int) float64 {
	s := 0.0
	for k := m.off[i]; k < m.off[i+1]; k++ {
		s += m.w[k]
	}
	return s
}

// RowSumSquares returns Σ_j w_ij² for row i.
func (m *Matrix) RowSumSquares(i int) float64 {
	s := 0.0
	for k := m.off[i]; k < m.off[i+1]; k++ {
		s += m.w[k] * m.w[k]
	}
	return s
}
