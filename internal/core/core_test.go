package core

import (
	"os"
	"testing"
)

func TestInventoryCoversTable1(t *testing.T) {
	tools := Tools()
	if len(tools) < 11 {
		t.Fatalf("inventory has %d tools", len(tools))
	}
	// The six tools of the paper's Table 1 must be present by name prefix.
	required := []string{
		"KDV", "IDW", "Kriging", "K-function", "Moran's I", "Getis-Ord",
	}
	for _, want := range required {
		found := false
		for _, tool := range tools {
			if len(tool.Name) >= len(want) && tool.Name[:len(want)] == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("Table 1 tool %q missing from the inventory", want)
		}
	}
	// Every row is complete and its module directory exists.
	seen := map[string]bool{}
	for _, tool := range tools {
		if tool.Name == "" || tool.Baseline == "" || tool.Accelerated == "" || tool.Module == "" {
			t.Errorf("incomplete tool row %+v", tool)
		}
		if seen[tool.Name] {
			t.Errorf("duplicate tool %q", tool.Name)
		}
		seen[tool.Name] = true
		switch tool.Category {
		case HotspotDetection, CorrelationAnalysis, Clustering:
		default:
			t.Errorf("tool %q has unknown category %q", tool.Name, tool.Category)
		}
		if _, err := os.Stat("../../" + tool.Module); err != nil {
			t.Errorf("tool %q module %s: %v", tool.Name, tool.Module, err)
		}
	}
}
