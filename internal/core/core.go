// Package core holds the paper's primary contribution in machine-readable
// form: the Table 1 taxonomy of geospatial analytic tools, extended with
// the §2.2–2.3 variants, each entry mapping a tool to its baseline and
// accelerated algorithms and to the module implementing it. The T1
// experiment renders this inventory and self-checks every row; the facade
// and documentation follow its naming.
package core

// Category groups tools by the paper's two application types plus the
// clustering tools its introduction cites.
type Category string

// Categories of Table 1.
const (
	HotspotDetection    Category = "hotspot detection"
	CorrelationAnalysis Category = "correlation analysis"
	Clustering          Category = "clustering"
)

// Tool is one row of the (extended) Table 1.
type Tool struct {
	Name        string   // tool name with its paper anchor
	Category    Category // application type
	Baseline    string   // the naive algorithm off-the-shelf packages use
	Accelerated string   // the accelerated path(s) implemented here
	Module      string   // implementing package
}

// Tools returns the full inventory, in Table 1 order with the §2.2–2.3
// variants inline after their base tool.
func Tools() []Tool {
	return []Tool{
		{
			Name: "KDV (Def. 1)", Category: HotspotDetection,
			Baseline:    "naive O(XYn)",
			Accelerated: "grid-cutoff / sweep-line / bounds / sampling",
			Module:      "internal/kde",
		},
		{
			Name: "NKDV (§2.2)", Category: HotspotDetection,
			Baseline:    "per-lixel Dijkstra",
			Accelerated: "per-event bounded Dijkstra",
			Module:      "internal/nkdv",
		},
		{
			Name: "STKDV (§2.2)", Category: HotspotDetection,
			Baseline:    "naive O(XYTn)",
			Accelerated: "temporal-difference sharing",
			Module:      "internal/stkdv",
		},
		{
			Name: "IDW", Category: HotspotDetection,
			Baseline:    "naive O(XYn)",
			Accelerated: "kNN / cutoff radius",
			Module:      "internal/idw",
		},
		{
			Name: "Kriging", Category: HotspotDetection,
			Baseline:    "global O(n³)",
			Accelerated: "local kNN neighbourhoods",
			Module:      "internal/kriging",
		},
		{
			Name: "K-function (Def. 2)", Category: CorrelationAnalysis,
			Baseline:    "naive O(n²)",
			Accelerated: "grid/kd-tree range counts; one-pass curve",
			Module:      "internal/kfunc",
		},
		{
			Name: "network K-function (§2.3)", Category: CorrelationAnalysis,
			Baseline:    "per-pair Dijkstra",
			Accelerated: "per-event bounded Dijkstra",
			Module:      "internal/kfunc",
		},
		{
			Name: "spatiotemporal K (Eq. 8)", Category: CorrelationAnalysis,
			Baseline:    "naive O(n²)",
			Accelerated: "one-pass 2-D histogram",
			Module:      "internal/kfunc",
		},
		{
			Name: "Moran's I", Category: CorrelationAnalysis,
			Baseline:    "permutation test",
			Accelerated: "sparse weights (kNN/band)",
			Module:      "internal/moran",
		},
		{
			Name: "Getis-Ord General G / Gi*", Category: CorrelationAnalysis,
			Baseline:    "permutation test",
			Accelerated: "sparse weights (kNN/band)",
			Module:      "internal/getisord",
		},
		{
			Name: "DBSCAN / k-means", Category: Clustering,
			Baseline:    "naive O(n²)",
			Accelerated: "grid index / k-means++",
			Module:      "internal/cluster",
		},
	}
}
