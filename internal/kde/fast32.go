package kde

import (
	"geostat/internal/dataset"
	"geostat/internal/geom"
	gridindex "geostat/internal/index/grid"
	"geostat/internal/kernel"
)

// This file implements the opt-in float32 fast path (Options.Float32):
// coordinates are converted to float32 columns once, the kernel is read
// from a precomputed lookup table with linear interpolation, and per-point
// contributions (float32) are accumulated into a float64 sum. The path is
// approximate by construction — float32 coordinate rounding, table
// interpolation, and truncation of infinite-support kernels at
// SupportRadius (where the kernel has decayed to 1e-12 of its peak) — and
// is therefore kept strictly separate from the exact float64 evaluators:
// nothing selects it unless the caller sets Options.Float32.

// lutSize is the kernel table resolution. 2048 knots over the support keep
// the linear-interpolation error far below the float32 rounding noise of
// the coordinate columns while the table (8 KiB) stays L1-resident.
const lutSize = 2048

// lut32 tabulates a kernel over squared distance in [0, sup²].
type lut32 struct {
	table [lutSize]float32
	sup2  float32 // squared truncation radius; 0 beyond
	scale float32 // (lutSize-1)/sup²
}

func newLUT32(k kernel.Kernel) *lut32 {
	sup := k.SupportRadius()
	sup2 := sup * sup
	l := &lut32{sup2: float32(sup2), scale: float32(float64(lutSize-1) / sup2)}
	for i := range l.table {
		d2 := float64(i) / float64(lutSize-1) * sup2
		l.table[i] = float32(k.Eval2(d2))
	}
	return l
}

// eval returns the interpolated kernel value at squared distance d2.
func (l *lut32) eval(d2 float32) float32 {
	if d2 >= l.sup2 {
		return 0
	}
	u := d2 * l.scale
	i := int(u)
	if i >= lutSize-1 {
		return l.table[lutSize-1]
	}
	f := u - float32(i)
	return l.table[i] + f*(l.table[i+1]-l.table[i])
}

// cols32 converts float64 columns to float32.
func cols32(src []float64) []float32 {
	if src == nil {
		return nil
	}
	dst := make([]float32, len(src))
	for i, v := range src {
		dst[i] = float32(v)
	}
	return dst
}

// fast32Computer is the chunk-blocked float32 naive evaluator. Chunk
// rejection uses the float64 chunk bboxes against the truncation radius,
// so it can only skip points the LUT maps to 0 anyway.
type fast32Computer struct {
	opt    *Options
	lut    *lut32
	xs, ys []float32
	ws     []float32 // nil when unweighted
	chunks []dataset.Chunk
	sup2   float64 // squared truncation radius for bbox pruning
}

func newFast32Computer(cols dataset.Columns, opt *Options) *fast32Computer {
	sup := opt.Kernel.SupportRadius()
	return &fast32Computer{
		opt:    opt,
		lut:    newLUT32(opt.Kernel),
		xs:     cols32(cols.X),
		ys:     cols32(cols.Y),
		ws:     cols32(cols.W),
		chunks: cols.Chunks,
		sup2:   sup * sup,
	}
}

func (c *fast32Computer) computeRow(iy int, row []float64) {
	g := c.opt.Grid
	qy := g.CenterY(iy)
	qy32 := float32(qy)
	for ix := range row {
		qx := g.CenterX(ix)
		qx32 := float32(qx)
		q := geom.Point{X: qx, Y: qy}
		sum := 0.0
		for _, ch := range c.chunks {
			if ch.BBox.MinDist2(q) > c.sup2 {
				continue
			}
			sum = fast32Seg(c.lut, sum, qx32, qy32, c.xs, c.ys, c.ws, ch.Lo, ch.Hi)
		}
		row[ix] = sum
	}
}

// fast32Seg folds the [lo, hi) column segment into sum via the LUT.
func fast32Seg(lut *lut32, sum float64, qx, qy float32, xs, ys, ws []float32, lo, hi int) float64 {
	if ws != nil {
		for i := lo; i < hi; i++ {
			dx := xs[i] - qx
			dy := ys[i] - qy
			if v := lut.eval(dx*dx + dy*dy); v != 0 {
				sum += float64(ws[i] * v)
			}
		}
		return sum
	}
	for i := lo; i < hi; i++ {
		dx := xs[i] - qx
		dy := ys[i] - qy
		if v := lut.eval(dx*dx + dy*dy); v != 0 {
			sum += float64(v)
		}
	}
	return sum
}

// cutoffFast32Computer is the float32 twin of cutoffComputer: the grid
// index's cell-ordered columns converted to float32, kernel values from
// the LUT.
type cutoffFast32Computer struct {
	idx    *gridindex.Index
	opt    *Options
	lut    *lut32
	xs, ys []float32
	ws     []float32 // nil when unweighted
	b      float64
}

func newCutoffFast32Computer(idx *gridindex.Index, opt *Options, ws []float64) *cutoffFast32Computer {
	xs, ys, _ := idx.Columns()
	return &cutoffFast32Computer{
		idx: idx,
		opt: opt,
		lut: newLUT32(opt.Kernel),
		xs:  cols32(xs),
		ys:  cols32(ys),
		ws:  cols32(ws),
		b:   opt.Kernel.Bandwidth(),
	}
}

func (c *cutoffFast32Computer) computeRow(iy int, row []float64) {
	g := c.opt.Grid
	qy := g.CenterY(iy)
	qy32 := float32(qy)
	for ix := range row {
		qx := g.CenterX(ix)
		qx32 := float32(qx)
		cx0, cx1, cy0, cy1 := c.idx.CellSpan(geom.Point{X: qx, Y: qy}, c.b)
		sum := 0.0
		for cy := cy0; cy <= cy1; cy++ {
			for cx := cx0; cx <= cx1; cx++ {
				lo, hi := c.idx.Cell(cx, cy)
				if lo != hi {
					sum = fast32Seg(c.lut, sum, qx32, qy32, c.xs, c.ys, c.ws, lo, hi)
				}
			}
		}
		row[ix] = sum
	}
}
