// Package kde implements kernel density visualization (KDV, Definition 1 of
// the paper): colouring each pixel q of an X×Y raster with the kernel
// density value F_P(q) = Σ_p w·K(q, p).
//
// Every acceleration family the paper's §2.2 reviews is implemented:
//
//   - Naive: the O(XYn) baseline every off-the-shelf GIS package uses.
//   - GridCutoff: exact for finite-support kernels; a bucket index limits
//     each pixel to the points inside the kernel support.
//   - SweepLine: the computational-sharing family (SLAM [32]); exact for
//     kernels polynomial in squared distance (uniform, Epanechnikov,
//     quartic, triweight) in O(Y·(X+n)) time via per-row polynomial
//     coefficient aggregation.
//   - BoundApprox: the function-approximation family (QUAD [25], KARL [34]);
//     works for every kernel including Gaussian, refining ball-tree node
//     brackets per pixel until UB/LB ≤ 1+ε (Equation 6's guarantee).
//   - Sampled: the data-sampling family ([77–79, 110, 111]); a uniform
//     random subset sized by a Hoeffding bound gives an additive error
//     guarantee with probability 1−δ.
//
// All entry points share Options and return a raster.Grid; Workers > 1
// parallelises over raster rows (the paper's parallel/hardware family,
// realised as goroutine sharding).
package kde

import (
	"context"
	"fmt"

	"geostat/internal/geom"
	"geostat/internal/kernel"
	"geostat/internal/obs"
	"geostat/internal/parallel"
	"geostat/internal/raster"
)

// Options configures a KDV computation.
type Options struct {
	// Kernel is the kernel function K and bandwidth b.
	Kernel kernel.Kernel
	// Grid is the raster over which F is evaluated.
	Grid geom.PixelGrid
	// Normalize scales the surface by NormConst/n so it integrates to ~1
	// (a probability density). False matches the paper's raw Σ K convention.
	Normalize bool
	// Workers is the parallelism degree; 0 or 1 is serial, negative means
	// GOMAXPROCS.
	Workers int
	// Weights optionally weights each event (severity, case counts):
	// F(q) = Σ_i Weights[i]·K(q, p_i). Supported by the exact methods
	// (Naive, GridCutoff, SweepLine); the approximate methods reject it
	// (their guarantees are stated for unweighted sums). Nil means all 1.
	Weights []float64
	// Float32 opts into the approximate fast path: float32 coordinate
	// columns, a precomputed kernel lookup table, and truncation of
	// infinite-support kernels at Kernel.SupportRadius. Results differ from
	// the exact float64 path by float32 rounding noise (see the error-bound
	// tests). Supported by Naive, GridCutoff and Exact; SweepLine,
	// BoundApprox and Sampled reject it. Never selected implicitly.
	Float32 bool
	// Ctx optionally bounds the computation: workers check it between row
	// chunks and the entry point returns ctx.Err() (with a nil grid) when
	// it fires. Nil means no cancellation (context.Background()).
	Ctx context.Context
	// Window optionally restricts evaluation to a pixel sub-rectangle of
	// Grid (the shard coordinator's tile unit). Pixel centers still come
	// from the full Grid — Center(Window.X0+ix, Window.Y0+iy) — so a
	// windowed raster is bit-identical to the corresponding window of the
	// full-extent result. The zero value means the whole grid. Supported
	// by Naive/NaiveCols only (the float64 columnar path); every other
	// method rejects it rather than silently evaluating the full grid.
	Window geom.GridWindow
}

// context returns the effective context of the computation.
func (o *Options) context() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// scale returns the multiplier applied to raw kernel sums. With weights,
// the normalising mass is the total weight rather than the point count, so
// the surface still integrates to ~1.
func (o *Options) scale(n int) float64 {
	if !o.Normalize || n == 0 {
		return 1
	}
	mass := float64(n)
	if o.Weights != nil {
		mass = 0
		for _, w := range o.Weights {
			mass += w
		}
		if mass == 0 {
			return 1
		}
	}
	return o.Kernel.NormConst() / mass
}

// validate rejects option combinations that would otherwise fail deep in a
// worker goroutine.
func (o *Options) validate() error {
	if o.Kernel.Bandwidth() <= 0 {
		return fmt.Errorf("kde: kernel not initialised (zero bandwidth); use kernel.New")
	}
	if o.Grid.NX <= 0 || o.Grid.NY <= 0 {
		return fmt.Errorf("kde: grid not initialised (%dx%d)", o.Grid.NX, o.Grid.NY)
	}
	return nil
}

// rejectWindow fails when a Window is set on a method that cannot evaluate
// one. Only the naive columnar path computes windows; the other methods
// must refuse rather than return a full grid the caller would misplace.
func (o *Options) rejectWindow(method string) error {
	if !o.Window.IsZero() {
		return fmt.Errorf("kde: %s does not support windowed evaluation (Options.Window); use Naive", method)
	}
	return nil
}

// validateWeights checks Weights against the point count (n known only at
// the call site).
func (o *Options) validateWeights(n int) error {
	if o.Weights != nil && len(o.Weights) != n {
		return fmt.Errorf("kde: %d points but %d weights", n, len(o.Weights))
	}
	return nil
}

// weightAt returns the weight of point i (1 when unweighted).
func (o *Options) weightAt(i int) float64 {
	if o.Weights == nil {
		return 1
	}
	return o.Weights[i]
}

// rowComputer computes one raster row of kernel sums (unscaled). Row
// computations must be independent so the driver can shard them across
// goroutines.
type rowComputer interface {
	computeRow(iy int, row []float64)
}

// run evaluates every row of opt.Grid through rc, applying the
// normalisation scale, serially or with opt.Workers goroutines
// (dynamically scheduled through internal/parallel). When opt.Ctx fires
// mid-run the partial grid is discarded and ctx.Err() returned.
//
// With a non-zero opt.Window only the window's rows are evaluated and the
// output grid is window-sized (Spec = SubGrid of the window): computeRow
// receives the PARENT row index, so centers match the full-extent raster
// bit-for-bit. Entry points whose computers ignore the window offset must
// reject windows via rejectWindow before reaching here.
func run(rc rowComputer, opt *Options, n int) (*raster.Grid, error) {
	win := opt.Window
	spec := opt.Grid
	if win.IsZero() {
		win = opt.Grid.FullWindow()
	} else if err := opt.Grid.CheckWindow(win); err != nil {
		return nil, err
	} else {
		spec = opt.Grid.SubGrid(win)
	}
	out := raster.NewGrid(spec)
	scale := opt.scale(n)
	nx := win.NX
	ctx, span := obs.Trace(opt.context(), "kde.evaluate")
	defer span.End()
	span.SetAttrInt("points", int64(n))
	if err := parallel.ForCtx(ctx, win.NY, opt.Workers, func(iy int) {
		rc.computeRow(win.Y0+iy, out.Values[iy*nx:(iy+1)*nx])
	}); err != nil {
		return nil, err
	}
	//lint:allow floateq scale()==1 is an exact sentinel for "no normalisation"
	if scale != 1 {
		for i := range out.Values {
			out.Values[i] *= scale
		}
	}
	return out, nil
}
