package kde

import (
	"fmt"
	"math"

	"geostat/internal/dataset"
	"geostat/internal/geom"
	"geostat/internal/kernel"
	"geostat/internal/raster"
)

// This file holds the columnar exact evaluation core. The inner loops
// iterate coordinate column segments (dataset chunks, or the grid index's
// cell-ordered columns) with the kernel specialised per type, instead of
// calling Kernel.Eval2 through a switch per point. Each specialisation
// reproduces Eval2's arithmetic expression for its type exactly — same
// IEEE operations in the same order — and terms the kernel maps to zero
// are skipped rather than added; adding +0.0 never changes an IEEE sum, so
// results stay bit-identical to the pre-columnar array-of-structs loops.

// chunkEval folds one coordinate column segment into a running kernel sum:
// it returns sum plus the kernel contributions of points (xs[i], ys[i])
// with weights ws[i] (ws nil means unweighted) at query (qx, qy).
// Accumulation order is the slice order, so callers control the exact
// floating-point summation order by how they segment the columns.
type chunkEval func(sum, qx, qy float64, xs, ys, ws []float64) float64

// chunkEvalFor returns the kernel-specialised evaluator for k. The local
// constants replicate kernel.New's derived values (1/b, b², 1/b²) with the
// same IEEE expressions, so each specialisation is bit-compatible with
// Kernel.Eval2.
func chunkEvalFor(k kernel.Kernel) chunkEval {
	b := k.Bandwidth()
	b2 := b * b
	invB := 1 / b
	invB2 := 1 / (b * b)
	switch k.Type() {
	case kernel.Uniform:
		return func(sum, qx, qy float64, xs, ys, ws []float64) float64 {
			if ws != nil {
				for i, x := range xs {
					dx := x - qx
					dy := ys[i] - qy
					if dx*dx+dy*dy <= b2 {
						sum += ws[i] * invB
					}
				}
				return sum
			}
			for i, x := range xs {
				dx := x - qx
				dy := ys[i] - qy
				if dx*dx+dy*dy <= b2 {
					sum += invB
				}
			}
			return sum
		}
	case kernel.Triangular:
		return func(sum, qx, qy float64, xs, ys, ws []float64) float64 {
			if ws != nil {
				for i, x := range xs {
					dx := x - qx
					dy := ys[i] - qy
					if d2 := dx*dx + dy*dy; d2 < b2 {
						sum += ws[i] * (1 - math.Sqrt(d2)*invB)
					}
				}
				return sum
			}
			for i, x := range xs {
				dx := x - qx
				dy := ys[i] - qy
				if d2 := dx*dx + dy*dy; d2 < b2 {
					sum += 1 - math.Sqrt(d2)*invB
				}
			}
			return sum
		}
	case kernel.Epanechnikov:
		return func(sum, qx, qy float64, xs, ys, ws []float64) float64 {
			if ws != nil {
				for i, x := range xs {
					dx := x - qx
					dy := ys[i] - qy
					if d2 := dx*dx + dy*dy; d2 < b2 {
						sum += ws[i] * (1 - d2*invB2)
					}
				}
				return sum
			}
			for i, x := range xs {
				dx := x - qx
				dy := ys[i] - qy
				if d2 := dx*dx + dy*dy; d2 < b2 {
					sum += 1 - d2*invB2
				}
			}
			return sum
		}
	case kernel.Quartic:
		return func(sum, qx, qy float64, xs, ys, ws []float64) float64 {
			if ws != nil {
				for i, x := range xs {
					dx := x - qx
					dy := ys[i] - qy
					if d2 := dx*dx + dy*dy; d2 < b2 {
						u := 1 - d2*invB2
						sum += ws[i] * (u * u)
					}
				}
				return sum
			}
			for i, x := range xs {
				dx := x - qx
				dy := ys[i] - qy
				if d2 := dx*dx + dy*dy; d2 < b2 {
					u := 1 - d2*invB2
					sum += u * u
				}
			}
			return sum
		}
	case kernel.Triweight:
		return func(sum, qx, qy float64, xs, ys, ws []float64) float64 {
			if ws != nil {
				for i, x := range xs {
					dx := x - qx
					dy := ys[i] - qy
					if d2 := dx*dx + dy*dy; d2 < b2 {
						u := 1 - d2*invB2
						sum += ws[i] * (u * u * u)
					}
				}
				return sum
			}
			for i, x := range xs {
				dx := x - qx
				dy := ys[i] - qy
				if d2 := dx*dx + dy*dy; d2 < b2 {
					u := 1 - d2*invB2
					sum += u * u * u
				}
			}
			return sum
		}
	case kernel.Gaussian:
		return func(sum, qx, qy float64, xs, ys, ws []float64) float64 {
			if ws != nil {
				for i, x := range xs {
					dx := x - qx
					dy := ys[i] - qy
					d2 := dx*dx + dy*dy
					sum += ws[i] * math.Exp(-d2*invB2)
				}
				return sum
			}
			for i, x := range xs {
				dx := x - qx
				dy := ys[i] - qy
				d2 := dx*dx + dy*dy
				sum += math.Exp(-d2 * invB2)
			}
			return sum
		}
	case kernel.Cosine:
		return func(sum, qx, qy float64, xs, ys, ws []float64) float64 {
			if ws != nil {
				for i, x := range xs {
					dx := x - qx
					dy := ys[i] - qy
					if d2 := dx*dx + dy*dy; d2 < b2 {
						sum += ws[i] * math.Cos(math.Pi/2*math.Sqrt(d2)*invB)
					}
				}
				return sum
			}
			for i, x := range xs {
				dx := x - qx
				dy := ys[i] - qy
				if d2 := dx*dx + dy*dy; d2 < b2 {
					sum += math.Cos(math.Pi / 2 * math.Sqrt(d2) * invB)
				}
			}
			return sum
		}
	case kernel.Exponential:
		return func(sum, qx, qy float64, xs, ys, ws []float64) float64 {
			if ws != nil {
				for i, x := range xs {
					dx := x - qx
					dy := ys[i] - qy
					d2 := dx*dx + dy*dy
					sum += ws[i] * math.Exp(-math.Sqrt(d2)*invB)
				}
				return sum
			}
			for i, x := range xs {
				dx := x - qx
				dy := ys[i] - qy
				d2 := dx*dx + dy*dy
				sum += math.Exp(-math.Sqrt(d2) * invB)
			}
			return sum
		}
	}
	// Unreachable for kernels built with kernel.New; fall back to Eval2.
	return func(sum, qx, qy float64, xs, ys, ws []float64) float64 {
		q := geom.Point{X: qx, Y: qy}
		for i := range xs {
			v := k.Eval2(geom.Point{X: xs[i], Y: ys[i]}.Dist2(q))
			if ws != nil {
				v *= ws[i]
			}
			sum += v
		}
		return sum
	}
}

// evalSeg applies eval to the [lo, hi) segment of the columns.
func evalSeg(eval chunkEval, sum, qx, qy float64, xs, ys, ws []float64, lo, hi int) float64 {
	if ws != nil {
		return eval(sum, qx, qy, xs[lo:hi], ys[lo:hi], ws[lo:hi])
	}
	return eval(sum, qx, qy, xs[lo:hi], ys[lo:hi], nil)
}

// Naive computes the exact KDV by evaluating every (pixel, point) pair —
// the O(XYn) baseline of §1 — over the chunked columnar layout: the inner
// loop streams coordinate columns chunk-by-chunk with the kernel
// specialised per type, and for finite-support kernels whole chunks whose
// bounding box lies outside the kernel support are rejected without
// touching points. Both changes are bit-exact: pruned chunks contribute
// only terms the kernel maps to exactly 0.
func Naive(pts []geom.Point, opt Options) (*raster.Grid, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if err := opt.validateWeights(len(pts)); err != nil {
		return nil, err
	}
	return naiveCols(dataset.MakeColumns(pts, opt.Weights), opt)
}

// NaiveCols is Naive over an already-built columnar view (e.g. a stored
// Dataset), avoiding the array-of-structs materialisation. The weight
// column is cols.W; opt.Weights must be nil.
func NaiveCols(cols dataset.Columns, opt Options) (*raster.Grid, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if opt.Weights != nil {
		return nil, fmt.Errorf("kde: NaiveCols takes weights from cols.W; Options.Weights must be nil")
	}
	return naiveCols(cols, opt)
}

// naiveCols dispatches the validated columnar naive evaluation. The weight
// column is installed as opt.Weights so normalisation mass and weight
// validation see it.
func naiveCols(cols dataset.Columns, opt Options) (*raster.Grid, error) {
	opt.Weights = cols.W
	if err := opt.validateWeights(cols.N()); err != nil {
		return nil, err
	}
	if opt.Float32 {
		if err := opt.rejectWindow("Float32"); err != nil {
			return nil, err
		}
		return run(newFast32Computer(cols, &opt), &opt, cols.N())
	}
	c := &columnarComputer{cols: cols, opt: &opt, eval: chunkEvalFor(opt.Kernel), x0: opt.Window.X0}
	if opt.Kernel.FiniteSupport() {
		c.prune = true
		c.b = opt.Kernel.Bandwidth()
		c.b2 = c.b * c.b
	}
	return run(c, &opt, cols.N())
}

// columnarComputer is the exact chunk-blocked naive evaluator.
type columnarComputer struct {
	cols  dataset.Columns
	opt   *Options
	eval  chunkEval
	prune bool    // finite support: chunk-bbox rejection is exact
	b, b2 float64 // kernel support radius and its square (prune only)
	x0    int     // window column offset: row[ix] is parent pixel x0+ix
}

// computeRow fills one raster row. The per-row active-chunk slice is the
// only allocation; everything called from the pixel loop must be
// allocation-free.
//
//lint:hotpath per-pixel inner loop; callees must not allocate
func (c *columnarComputer) computeRow(iy int, row []float64) {
	g := c.opt.Grid
	qy := g.CenterY(iy)
	xs, ys, ws := c.cols.X, c.cols.Y, c.cols.W
	chunks := c.cols.Chunks
	if !c.prune {
		for ix := range row {
			qx := g.CenterX(c.x0 + ix)
			sum := 0.0
			for _, ch := range chunks {
				sum = evalSeg(c.eval, sum, qx, qy, xs, ys, ws, ch.Lo, ch.Hi)
			}
			row[ix] = sum
		}
		return
	}
	// Row-level prefilter: a chunk farther than b from the row's y line
	// cannot contribute to any pixel of the row.
	active := make([]int, 0, len(chunks))
	for ci, ch := range chunks {
		if yDist(qy, ch.BBox) <= c.b {
			active = append(active, ci)
		}
	}
	for ix := range row {
		qx := g.CenterX(c.x0 + ix)
		q := geom.Point{X: qx, Y: qy}
		sum := 0.0
		for _, ci := range active {
			ch := chunks[ci]
			if ch.BBox.MinDist2(q) > c.b2 {
				continue
			}
			sum = evalSeg(c.eval, sum, qx, qy, xs, ys, ws, ch.Lo, ch.Hi)
		}
		row[ix] = sum
	}
}

// yDist returns the vertical distance from the horizontal line y = qy to
// box (0 if the line crosses it).
func yDist(qy float64, b geom.BBox) float64 {
	switch {
	case qy < b.MinY:
		return b.MinY - qy
	case qy > b.MaxY:
		return qy - b.MaxY
	}
	return 0
}
