package kde

import (
	"math/rand"
	"testing"

	"geostat/internal/geom"
	"geostat/internal/kernel"
)

func TestStreamValidation(t *testing.T) {
	grid := geom.NewPixelGrid(box, 10, 10)
	if _, err := NewStream(kernel.Kernel{}, grid); err == nil {
		t.Error("zero kernel accepted")
	}
	if _, err := NewStream(kernel.MustNew(kernel.Gaussian, 5), grid); err == nil {
		t.Error("Gaussian accepted")
	}
	if _, err := NewStream(kernel.MustNew(kernel.Quartic, 5), geom.PixelGrid{}); err == nil {
		t.Error("zero grid accepted")
	}
}

func TestStreamAddAllMatchesBatch(t *testing.T) {
	pts := clusteredPoints(60, 400)
	grid := geom.NewPixelGrid(box, 25, 20)
	k := kernel.MustNew(kernel.Quartic, 8)
	s, err := NewStream(k, grid)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		s.Add(p)
	}
	if s.Count() != len(pts) {
		t.Fatalf("Count = %d", s.Count())
	}
	batch, err := Exact(pts, Options{Kernel: k, Grid: grid})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := s.Snapshot().MaxAbsDiff(batch)
	_, peak := batch.MinMax()
	if d > 1e-9*(1+peak) {
		t.Errorf("stream differs from batch by %v", d)
	}
}

func TestStreamAddRemoveMatchesRemaining(t *testing.T) {
	pts := clusteredPoints(61, 300)
	grid := geom.NewPixelGrid(box, 20, 16)
	k := kernel.MustNew(kernel.Epanechnikov, 10)
	s, err := NewStream(k, grid)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		s.Add(p)
	}
	// Remove the first half.
	for _, p := range pts[:150] {
		s.Remove(p)
	}
	if s.Count() != 150 {
		t.Fatalf("Count = %d", s.Count())
	}
	batch, err := Exact(pts[150:], Options{Kernel: k, Grid: grid})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := s.Snapshot().MaxAbsDiff(batch)
	_, peak := batch.MinMax()
	if d > 1e-7*(1+peak) { // removal cancellation leaves small residue
		t.Errorf("after removal differs by %v", d)
	}
	// Surface() is a live view: adding mutates it.
	live := s.Surface()
	before := live.Sum()
	s.Add(geom.Point{X: 50, Y: 40})
	if live.Sum() <= before {
		t.Error("Surface is not a live view")
	}
	// Snapshot is detached.
	snap := s.Snapshot()
	sumBefore := snap.Sum()
	s.Add(geom.Point{X: 50, Y: 40})
	if snap.Sum() != sumBefore {
		t.Error("Snapshot aliases the stream")
	}
}

func TestWindowStreamMatchesDirect(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	n := 500
	pts := make([]geom.Point, n)
	times := make([]float64, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Float64() * 100, Y: r.Float64() * 80}
		times[i] = r.Float64() * 100
	}
	grid := geom.NewPixelGrid(box, 16, 12)
	k := kernel.MustNew(kernel.Quartic, 9)
	const width = 25.0
	w, err := NewWindowStream(k, grid, pts, times, width)
	if err != nil {
		t.Fatal(err)
	}
	for _, now := range []float64{10, 30, 55, 90, 200} {
		w.Advance(now)
		// Direct recomputation of the window contents.
		var inWin []geom.Point
		for i := range pts {
			if times[i] <= now && times[i] > now-width {
				inWin = append(inWin, pts[i])
			}
		}
		if w.Live() != len(inWin) {
			t.Fatalf("now=%v: Live=%d, want %d", now, w.Live(), len(inWin))
		}
		direct, err := Exact(inWin, Options{Kernel: k, Grid: grid})
		if err != nil {
			t.Fatal(err)
		}
		d, _ := w.Snapshot().MaxAbsDiff(direct)
		_, peak := direct.MinMax()
		if d > 1e-7*(1+peak) {
			t.Errorf("now=%v: window surface differs by %v", now, d)
		}
	}
}

func TestWindowStreamValidation(t *testing.T) {
	grid := geom.NewPixelGrid(box, 8, 8)
	k := kernel.MustNew(kernel.Quartic, 5)
	if _, err := NewWindowStream(k, grid, []geom.Point{{X: 1, Y: 1}}, nil, 5); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewWindowStream(k, grid, nil, nil, 0); err == nil {
		t.Error("zero width accepted")
	}
	// Unsorted input is sorted internally.
	pts := []geom.Point{{X: 1, Y: 1}, {X: 2, Y: 2}, {X: 3, Y: 3}}
	times := []float64{30, 10, 20}
	w, err := NewWindowStream(k, grid, pts, times, 100)
	if err != nil {
		t.Fatal(err)
	}
	w.Advance(15)
	if w.Live() != 1 {
		t.Errorf("Live after t=15 = %d, want 1 (the t=10 event)", w.Live())
	}
	// Input slices untouched.
	if times[0] != 30 {
		t.Error("input times reordered")
	}
}
