package kde

import (
	"fmt"
	"sort"

	"geostat/internal/geom"
	gridindex "geostat/internal/index/grid"
	"geostat/internal/kernel"
	"geostat/internal/raster"
)

// MultiBandwidth computes exact KDV surfaces for SEVERAL bandwidths of the
// same polynomial kernel in one pass — the bandwidth-exploration sharing of
// SAFE [26] in the paper's §2.2. Domain experts tune b by eye, so a single
// analysis session computes many KDVs over the same data; computing them
// independently repeats all distance work m times.
//
// The sharing identity: for kernels polynomial in d²/b², the density is a
// linear combination of the truncated distance power sums
//
//	S_k(q, b) = Σ_{p: dist(q,p) ≤ b} dist(q,p)^{2k}
//
// e.g. quartic: F_b(q) = S_0 − 2·S_1/b² + S_2/b⁴. One scan of the
// neighbours within b_max bins each point's d^{2k} moments by the first
// bandwidth covering it; prefix sums over the (ascending) bandwidths then
// give every S_k(q, b_i), so each extra bandwidth costs O(1) per pixel
// instead of O(points in support).
//
// Supported kernels: uniform, Epanechnikov, quartic, triweight (the same
// family as SweepLine). Bandwidths must be strictly increasing.
func MultiBandwidth(pts []geom.Point, grid geom.PixelGrid, typ kernel.Type, bandwidths []float64, workers int) ([]*raster.Grid, error) {
	deg, err := sweepDegree(typ)
	if err != nil {
		return nil, fmt.Errorf("kde: MultiBandwidth: %w", err)
	}
	if len(bandwidths) == 0 {
		return nil, fmt.Errorf("kde: MultiBandwidth needs at least one bandwidth")
	}
	prev := 0.0
	for i, b := range bandwidths {
		if !(b > prev) {
			return nil, fmt.Errorf("kde: bandwidths must be positive and strictly increasing (index %d)", i)
		}
		prev = b
	}
	if grid.NX <= 0 || grid.NY <= 0 {
		return nil, fmt.Errorf("kde: grid not initialised")
	}
	nb := len(bandwidths)
	bMax := bandwidths[nb-1]
	idx := gridindex.New(pts, bMax)

	out := make([]*raster.Grid, nb)
	for i := range out {
		out[i] = raster.NewGrid(grid)
	}
	// b² powers for the evaluation step.
	invB2 := make([]float64, nb)
	for i, b := range bandwidths {
		invB2[i] = 1 / (b * b)
	}

	mc := &multibandComputer{
		idx: idx, grid: grid, typ: typ, deg: deg,
		bandwidths: bandwidths, invB2: invB2, bMax: bMax, out: out,
	}
	opt := Options{Kernel: kernel.MustNew(typ, bMax), Grid: grid, Workers: workers}
	// Reuse the row driver; it writes into a throwaway grid while the
	// computer writes all nb real outputs itself.
	if _, err := run(mc, &opt, len(pts)); err != nil {
		return nil, err
	}
	return out, nil
}

type multibandComputer struct {
	idx        *gridindex.Index
	grid       geom.PixelGrid
	typ        kernel.Type
	deg        int
	bandwidths []float64
	invB2      []float64
	bMax       float64
	out        []*raster.Grid
}

func (c *multibandComputer) computeRow(iy int, _ []float64) {
	nb := len(c.bandwidths)
	nMoments := c.deg + 1
	// moments[bin*nMoments + k] accumulates d^{2k} for the bin whose
	// bandwidth is the first one >= d.
	moments := make([]float64, nb*nMoments)
	qy := c.grid.CenterY(iy)
	rowBase := iy * c.grid.NX
	for ix := 0; ix < c.grid.NX; ix++ {
		q := geom.Point{X: c.grid.CenterX(ix), Y: qy}
		clear(moments)
		c.idx.ForEachInRange(q, c.bMax, func(_ int, d2 float64) {
			// First bandwidth with b² >= d² (b >= d, inclusive per Table 2).
			bin := sort.Search(nb, func(i int) bool {
				return c.bandwidths[i]*c.bandwidths[i] >= d2
			})
			if bin == nb {
				return // guards FP edge: d microscopically above bMax
			}
			base := bin * nMoments
			pow := 1.0
			for k := 0; k < nMoments; k++ {
				moments[base+k] += pow
				pow *= d2
			}
		})
		// Prefix-sum the moments across bandwidths and evaluate.
		var s [4]float64
		for bi := 0; bi < nb; bi++ {
			base := bi * nMoments
			for k := 0; k < nMoments; k++ {
				s[k] += moments[base+k]
			}
			c.out[bi].Values[rowBase+ix] = c.evalFromMoments(s, bi)
		}
	}
}

// evalFromMoments computes F_b from the truncated power sums S_0..S_deg.
func (c *multibandComputer) evalFromMoments(s [4]float64, bi int) float64 {
	u := c.invB2[bi]
	switch c.typ {
	case kernel.Uniform:
		return s[0] / c.bandwidths[bi]
	case kernel.Epanechnikov:
		return s[0] - s[1]*u
	case kernel.Quartic:
		return s[0] - 2*s[1]*u + s[2]*u*u
	case kernel.Triweight:
		u2 := u * u
		return s[0] - 3*s[1]*u + 3*s[2]*u2 - s[3]*u2*u
	}
	return 0
}
