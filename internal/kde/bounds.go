package kde

import (
	"fmt"
	"sync"

	"geostat/internal/geom"
	"geostat/internal/index/balltree"
	"geostat/internal/obs"
	"geostat/internal/raster"
)

// BoundApprox computes an ε-approximate KDV using the function-
// approximation family of §2.2 (QUAD [25], KARL [34], Gray & Moore [51]):
// for each pixel a best-first traversal of a ball-tree maintains
//
//	LB(q) = Σ_nodes count·K(dMax),  UB(q) = Σ_nodes count·K(dMin)
//
// (kernels are non-increasing in distance, so a node's distance bracket
// [dMin, dMax] brackets every contained point's kernel value) and keeps
// splitting the node with the largest bracket gap until UB ≤ (1+ε)·LB.
// Returning R = (LB+UB)/2 then satisfies Equation 6's guarantee:
// (1−ε)·F(q) ≤ R(q) ≤ (1+ε)·F(q).
//
// Unlike the exact accelerators this works for every kernel, including the
// infinite-support Gaussian and exponential kernels.
func BoundApprox(pts []geom.Point, opt Options, eps float64) (*raster.Grid, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if !(eps > 0) {
		return nil, fmt.Errorf("kde: BoundApprox needs eps > 0, got %g", eps)
	}
	if opt.Weights != nil {
		return nil, fmt.Errorf("kde: BoundApprox does not support event weights; use an exact method")
	}
	if opt.Float32 {
		return nil, fmt.Errorf("kde: BoundApprox does not support the float32 path; use Naive or GridCutoff")
	}
	if err := opt.rejectWindow("BoundApprox"); err != nil {
		return nil, err
	}
	_, span := obs.Trace(opt.context(), "kde.index_build")
	tree := balltree.New(pts)
	span.End()
	bc := &boundComputer{
		opt:  &opt,
		eps:  eps,
		tree: tree,
	}
	return run(bc, &opt, len(pts))
}

type boundComputer struct {
	opt  *Options
	eps  float64
	tree *balltree.Tree

	scratch sync.Pool // *gapHeap
}

// gapEntry is one unresolved tree node in the per-pixel refinement queue.
type gapEntry struct {
	id     balltree.NodeID
	lb, ub float64 // this node's contribution bracket: count·K(dMax), count·K(dMin)
	gap    float64 // ub − lb
}

// gapHeap is a max-heap on gap.
type gapHeap []gapEntry

func (h *gapHeap) push(e gapEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent].gap >= (*h)[i].gap {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *gapHeap) pop() gapEntry {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && old[l].gap > old[big].gap {
			big = l
		}
		if r < n && old[r].gap > old[big].gap {
			big = r
		}
		if big == i {
			break
		}
		old[i], old[big] = old[big], old[i]
		i = big
	}
	return top
}

func (c *boundComputer) computeRow(iy int, row []float64) {
	g := c.opt.Grid
	qy := g.CenterY(iy)
	hp, _ := c.scratch.Get().(*gapHeap)
	if hp == nil {
		hp = &gapHeap{}
	}
	defer c.scratch.Put(hp)
	for ix := range row {
		row[ix] = c.estimate(geom.Point{X: g.CenterX(ix), Y: qy}, hp)
	}
}

// estimate runs the best-first refinement for one pixel.
func (c *boundComputer) estimate(q geom.Point, hp *gapHeap) float64 {
	root, ok := c.tree.Root()
	if !ok {
		return 0
	}
	k := c.opt.Kernel
	*hp = (*hp)[:0]
	entry := c.score(root, q)
	lb, ub := entry.lb, entry.ub
	if entry.gap > 0 {
		hp.push(entry)
	}
	for len(*hp) > 0 && ub > (1+c.eps)*lb {
		e := hp.pop()
		lb -= e.lb
		ub -= e.ub
		if c.tree.IsLeaf(e.id) {
			exact := 0.0
			c.tree.NodePoints(e.id, func(p geom.Point) {
				exact += k.Eval2(p.Dist2(q))
			})
			lb += exact
			ub += exact
			continue
		}
		l, r := c.tree.Children(e.id)
		for _, child := range [2]balltree.NodeID{l, r} {
			ce := c.score(child, q)
			lb += ce.lb
			ub += ce.ub
			if ce.gap > 0 {
				hp.push(ce)
			}
		}
	}
	return (lb + ub) / 2
}

func (c *boundComputer) score(id balltree.NodeID, q geom.Point) gapEntry {
	k := c.opt.Kernel
	dMin, dMax := c.tree.NodeBracket(id, q)
	cnt := float64(c.tree.NodeCount(id))
	lb := cnt * k.Eval(dMax)
	ub := cnt * k.Eval(dMin)
	return gapEntry{id: id, lb: lb, ub: ub, gap: ub - lb}
}
