package kde

import (
	"fmt"
	"math"

	"geostat/internal/geom"
	"geostat/internal/index/kdtree"
	"geostat/internal/kernel"
	"geostat/internal/parallel"
	"geostat/internal/raster"
)

// Adaptive computes a sample-point adaptive KDV ([107] in the paper's
// hardware family is a GPU *adaptive* KDE): each point carries its own
// bandwidth, so sparse regions are smoothed wide and dense hotspots keep
// sharp detail:
//
//	F(q) = Σ_i K_{b_i}(q, p_i)
//
// The evaluation scatters each point's finite kernel footprint onto the
// raster, costing O(Σ_i footprint_i) — independent of the raster area
// covered by no kernel. Infinite-support kernels are rejected (a per-point
// Gaussian would touch every pixel).
func Adaptive(pts []geom.Point, bandwidths []float64, typ kernel.Type, grid geom.PixelGrid, workers int) (*raster.Grid, error) {
	if len(bandwidths) != len(pts) {
		return nil, fmt.Errorf("kde: %d points but %d bandwidths", len(pts), len(bandwidths))
	}
	if grid.NX <= 0 || grid.NY <= 0 {
		return nil, fmt.Errorf("kde: grid not initialised")
	}
	kernels := make([]kernel.Kernel, len(pts))
	for i, b := range bandwidths {
		k, err := kernel.New(typ, b)
		if err != nil {
			return nil, fmt.Errorf("kde: bandwidth %d: %w", i, err)
		}
		if !k.FiniteSupport() {
			return nil, fmt.Errorf("kde: Adaptive requires a finite-support kernel, got %v", typ)
		}
		kernels[i] = k
	}
	out := raster.NewGrid(grid)
	if parallel.Workers(workers) <= 1 {
		for i := range pts {
			scatterOne(pts, kernels, grid, out.Values, i)
		}
		return out, nil
	}
	// Each worker scatters into a private grid (footprints overlap, so
	// direct writes would race); partials are merged after. Dynamic
	// chunking rebalances the skew between wide sparse-region kernels and
	// narrow hotspot ones.
	partials := parallel.ForScratch(len(pts), workers,
		func() []float64 { return make([]float64, len(out.Values)) },
		func(buf []float64, i int) { scatterOne(pts, kernels, grid, buf, i) })
	for _, p := range partials {
		for i, v := range p {
			out.Values[i] += v
		}
	}
	return out, nil
}

// scatterOne adds point i's kernel footprint onto a value grid.
func scatterOne(pts []geom.Point, kernels []kernel.Kernel, grid geom.PixelGrid, values []float64, i int) {
	p := pts[i]
	k := kernels[i]
	b := k.Bandwidth()
	colLo, colHi := grid.ColRange(p.X, b)
	rowLo, rowHi := grid.RowRange(p.Y, b)
	for iy := rowLo; iy < rowHi; iy++ {
		dy := grid.CenterY(iy) - p.Y
		dy2 := dy * dy
		base := iy * grid.NX
		for ix := colLo; ix < colHi; ix++ {
			dx := grid.CenterX(ix) - p.X
			if v := k.Eval2(dx*dx + dy2); v != 0 {
				values[base+ix] += v
			}
		}
	}
}

// AdaptiveBandwidths derives a per-point bandwidth from local density: the
// distance to the k-th nearest neighbour, scaled, and floored so isolated
// duplicates never get a zero bandwidth. This is the standard
// nearest-neighbour pilot for adaptive KDE.
func AdaptiveBandwidths(pts []geom.Point, k int, scale, minBandwidth float64) ([]float64, error) {
	if k < 1 {
		return nil, fmt.Errorf("kde: k must be >= 1, got %d", k)
	}
	if !(scale > 0) || !(minBandwidth > 0) {
		return nil, fmt.Errorf("kde: scale and minBandwidth must be positive")
	}
	tree := kdtree.New(pts)
	out := make([]float64, len(pts))
	var scratch []int
	for i, p := range pts {
		idx, d2 := tree.KNearest(p, k+1, scratch) // includes self at d=0
		scratch = idx
		b := minBandwidth
		if len(d2) > 0 {
			if d := math.Sqrt(d2[len(d2)-1]) * scale; d > b {
				b = d
			}
		}
		out[i] = b
	}
	return out, nil
}
