package kde

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"geostat/internal/geom"
	"geostat/internal/kernel"
	"geostat/internal/raster"
)

// SweepLine computes an exact KDV for kernels polynomial in squared
// distance — uniform, Epanechnikov, quartic, triweight — in O(Y·(X+n_b))
// time, where n_b is the number of points within bandwidth of a row. This
// is the computational-sharing family of §2.2 (SLAM [32]): instead of
// evaluating K per (pixel, point) pair, each row maintains running
// polynomial-coefficient aggregates over the active point set, updated by
// O(1)-amortised enter/exit events per point, so every pixel in the row is
// evaluated in O(1) from the aggregates.
//
// How it works. Fix a row with pixel ordinate qy. A point p contributes
// K = Σ_m c_m(A_p)·(dx²/b²)^m with A_p = 1 − dy²/b², dy = p.y − qy, for
// pixels whose dx = qx − p.x satisfies dx² ≤ b²·A_p. Expanding (dx²)^m by
// the binomial theorem makes the row sum a polynomial in qx whose
// coefficients are power sums Σ c_m(A_p)·p.x^k over the active points.
// Those sums change only when a point's support interval starts or ends,
// so one left-to-right sweep with per-column event lists evaluates the
// whole row.
//
// Numerical conditioning: the power sums are kept relative to a local
// origin that slides with the sweep. Every active point is within one
// bandwidth of the current pixel, so |p.x − origin| = O(b) and the degree-6
// terms never suffer large-magnitude cancellation; on an origin shift the
// aggregates are re-expanded with binomial coefficients (an O(deg²)
// operation amortised over ≥ b/cellW pixels).
//
// Triangular, cosine, Gaussian and exponential kernels are not polynomial
// in dx² and are rejected — exactly the limitation §2.4 of the paper names
// as an open problem for the sharing family.
func SweepLine(pts []geom.Point, opt Options) (*raster.Grid, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	deg, err := sweepDegree(opt.Kernel.Type())
	if err != nil {
		return nil, err
	}
	if opt.Float32 {
		return nil, fmt.Errorf("kde: SweepLine does not support the float32 path; use Naive or GridCutoff")
	}
	if err := opt.rejectWindow("SweepLine"); err != nil {
		return nil, err
	}
	if err := opt.validateWeights(len(pts)); err != nil {
		return nil, err
	}
	sc := newSweepComputer(pts, &opt, deg)
	return run(sc, &opt, len(pts))
}

// SweepSupported reports whether SweepLine supports the kernel type.
func SweepSupported(t kernel.Type) bool {
	_, err := sweepDegree(t)
	return err == nil
}

func sweepDegree(t kernel.Type) (int, error) {
	switch t {
	case kernel.Uniform:
		return 0, nil
	case kernel.Epanechnikov:
		return 1, nil
	case kernel.Quartic:
		return 2, nil
	case kernel.Triweight:
		return 3, nil
	}
	return 0, fmt.Errorf("kde: SweepLine requires a kernel polynomial in squared distance (uniform/epanechnikov/quartic/triweight), got %v", t)
}

type sweepComputer struct {
	opt *Options
	deg int // polynomial degree in dx²/b²

	// Points sorted by y for per-row band extraction; ws nil if unweighted.
	xs, ys, ws []float64

	// binomCoef[m][k] = C(2m, k)·(−1)^k, the expansion of (qx − px)^{2m}.
	binomCoef [][]float64
	// pascal[k][i] = C(k, i) for the origin-shift re-expansion.
	pascal [][]float64

	stride int // aggregate slots: Σ_m (2m+1) = (deg+1)²

	bufs sync.Pool // *sweepBuf, one per in-flight row
}

// sweepBuf is the per-row scratch. Event lists are intrusive per-column
// chains: head slices store index+1 (0 = empty) so a plain clear() resets
// them.
type sweepBuf struct {
	enterHead []int32 // per column: first band point entering there
	exitHead  []int32 // per column: first band point exiting there
	nextEnter []int32 // chain links, per band point
	nextExit  []int32
	bandA     []float64 // A_p per band point
	bandX     []float64 // absolute p.x per band point
	bandW     []float64 // event weight per band point (1 when unweighted)

	agg []float64 // running power sums S[m][k], local origin
	tmp []float64 // origin-shift scratch (max 2·deg+1 wide)
	pow []float64 // qx' powers 0..2·deg
}

func newSweepComputer(pts []geom.Point, opt *Options, deg int) *sweepComputer {
	c := &sweepComputer{
		opt:    opt,
		deg:    deg,
		stride: (deg + 1) * (deg + 1),
	}
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return pts[order[a]].Y < pts[order[b]].Y })
	c.xs = make([]float64, len(pts))
	c.ys = make([]float64, len(pts))
	if opt.Weights != nil {
		c.ws = make([]float64, len(pts))
	}
	for i, oi := range order {
		c.xs[i] = pts[oi].X
		c.ys[i] = pts[oi].Y
		if c.ws != nil {
			c.ws[i] = opt.Weights[oi]
		}
	}
	c.binomCoef = make([][]float64, deg+1)
	for m := 0; m <= deg; m++ {
		c.binomCoef[m] = make([]float64, 2*m+1)
		for k := 0; k <= 2*m; k++ {
			sign := 1.0
			if k%2 == 1 {
				sign = -1
			}
			c.binomCoef[m][k] = sign * binom(2*m, k)
		}
	}
	c.pascal = make([][]float64, 2*deg+1)
	for k := 0; k <= 2*deg; k++ {
		c.pascal[k] = make([]float64, k+1)
		for i := 0; i <= k; i++ {
			c.pascal[k][i] = binom(k, i)
		}
	}
	nx := opt.Grid.NX
	c.bufs.New = func() any {
		return &sweepBuf{
			enterHead: make([]int32, nx+1),
			exitHead:  make([]int32, nx+1),
			agg:       make([]float64, c.stride),
			tmp:       make([]float64, 2*deg+1),
			pow:       make([]float64, 2*deg+1),
		}
	}
	return c
}

func binom(n, k int) float64 {
	r := 1.0
	for i := 0; i < k; i++ {
		r = r * float64(n-i) / float64(i+1)
	}
	return r
}

// coeffs fills cm[m] = c_m(A) for the kernel, the coefficients of K as a
// polynomial in u = dx²/b² given A = 1 − dy²/b²:
//
//	uniform:      K = 1/b                     (support dx² ≤ b²A)
//	epanechnikov: K = A − u
//	quartic:      K = (A − u)² = A² − 2Au + u²
//	triweight:    K = (A − u)³ = A³ − 3A²u + 3Au² − u³
func (c *sweepComputer) coeffs(a float64, cm []float64) {
	switch c.deg {
	case 0:
		cm[0] = 1 / c.opt.Kernel.Bandwidth()
	case 1:
		cm[0], cm[1] = a, -1
	case 2:
		cm[0], cm[1], cm[2] = a*a, -2*a, 1
	case 3:
		cm[0], cm[1], cm[2], cm[3] = a*a*a, -3*a*a, 3*a, -1
	}
}

// applyPoint adds (sign=+1) or removes (sign=−1) band point i's
// contribution to the power sums, expressed relative to origin.
func (c *sweepComputer) applyPoint(buf *sweepBuf, i int32, origin, sign float64) {
	var cm [4]float64
	c.coeffs(buf.bandA[i], cm[:])
	px := buf.bandX[i] - origin
	sign *= buf.bandW[i]
	slot := 0
	for m := 0; m <= c.deg; m++ {
		v := sign * cm[m]
		xk := 1.0
		for k := 0; k <= 2*m; k++ {
			buf.agg[slot] += v * xk
			xk *= px
			slot++
		}
	}
}

// shiftOrigin re-expands the power sums from origin o to o+d:
// Σ c·(px−o−d)^k = Σ_i C(k,i)·(−d)^{k−i}·Σ c·(px−o)^i.
func (c *sweepComputer) shiftOrigin(buf *sweepBuf, d float64) {
	slot := 0
	for m := 0; m <= c.deg; m++ {
		width := 2*m + 1
		s := buf.agg[slot : slot+width]
		for k := width - 1; k >= 1; k-- {
			acc := 0.0
			dPow := 1.0
			// i from k down to 0: (−d)^{k−i} grows as i decreases.
			for i := k; i >= 0; i-- {
				acc += c.pascal[k][i] * dPow * s[i]
				dPow *= -d
			}
			buf.tmp[k] = acc
		}
		for k := 1; k < width; k++ {
			s[k] = buf.tmp[k]
		}
		slot += width
	}
}

func (c *sweepComputer) computeRow(iy int, row []float64) {
	g := c.opt.Grid
	b := c.opt.Kernel.Bandwidth()
	b2 := b * b
	qy := g.CenterY(iy)
	nx := g.NX

	buf := c.bufs.Get().(*sweepBuf)
	defer c.bufs.Put(buf)
	clear(buf.enterHead)
	clear(buf.exitHead)
	clear(buf.agg)

	// Points within vertical reach of this row (ys is sorted); support is
	// inclusive at |dy| = b.
	lo := sort.SearchFloat64s(c.ys, qy-b)
	hi := sort.SearchFloat64s(c.ys, qy+b)
	for hi < len(c.ys) && c.ys[hi] <= qy+b {
		hi++
	}

	// Build per-column enter/exit event chains for the band.
	buf.bandA = buf.bandA[:0]
	buf.bandX = buf.bandX[:0]
	buf.bandW = buf.bandW[:0]
	buf.nextEnter = buf.nextEnter[:0]
	buf.nextExit = buf.nextExit[:0]
	anyActive := false
	for i := lo; i < hi; i++ {
		dy := c.ys[i] - qy
		a := 1 - dy*dy/b2
		if a < 0 {
			continue
		}
		px := c.xs[i]
		colLo, colHi := g.ColRange(px, b*math.Sqrt(a))
		if colLo >= colHi {
			continue
		}
		anyActive = true
		bi := int32(len(buf.bandA))
		buf.bandA = append(buf.bandA, a)
		buf.bandX = append(buf.bandX, px)
		if c.ws != nil {
			buf.bandW = append(buf.bandW, c.ws[i])
		} else {
			buf.bandW = append(buf.bandW, 1)
		}
		buf.nextEnter = append(buf.nextEnter, buf.enterHead[colLo])
		buf.enterHead[colLo] = bi + 1
		buf.nextExit = append(buf.nextExit, buf.exitHead[colHi])
		buf.exitHead[colHi] = bi + 1
	}
	if !anyActive {
		clear(row)
		return
	}

	invB2 := 1 / b2
	origin := 0.0
	active := 0
	for ix := 0; ix < nx; ix++ {
		qx := g.CenterX(ix)
		switch {
		case active == 0:
			origin = qx // free re-anchor: no aggregates to move
		case math.Abs(qx-origin) > b:
			c.shiftOrigin(buf, qx-origin)
			origin = qx
		}
		for e := buf.exitHead[ix]; e != 0; e = buf.nextExit[e-1] {
			c.applyPoint(buf, e-1, origin, -1)
			active--
		}
		for e := buf.enterHead[ix]; e != 0; e = buf.nextEnter[e-1] {
			c.applyPoint(buf, e-1, origin, +1)
			active++
		}
		if active == 0 {
			// Exact zero outside every support; also kills any residue.
			clear(buf.agg)
			row[ix] = 0
			continue
		}
		qxl := qx - origin
		buf.pow[0] = 1
		for p := 1; p <= 2*c.deg; p++ {
			buf.pow[p] = buf.pow[p-1] * qxl
		}
		sum := 0.0
		slot := 0
		scaleM := 1.0 // (1/b²)^m
		for m := 0; m <= c.deg; m++ {
			inner := 0.0
			for k := 0; k <= 2*m; k++ {
				inner += c.binomCoef[m][k] * buf.pow[2*m-k] * buf.agg[slot]
				slot++
			}
			sum += scaleM * inner
			scaleM *= invB2
		}
		if sum < 0 {
			sum = 0 // cancellation residue guard
		}
		row[ix] = sum
	}
}
