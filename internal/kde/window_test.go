package kde

import (
	"math"
	"testing"

	"geostat/internal/dataset"
	"geostat/internal/geom"
	"geostat/internal/kernel"
)

// TestWindowedMatchesFullGridExactly is the bit-identity contract the shard
// coordinator relies on: a windowed Naive evaluation equals the matching
// rectangle of the full-extent raster Float64bits-for-Float64bits.
func TestWindowedMatchesFullGridExactly(t *testing.T) {
	pts := clusteredPoints(7, 400)
	for _, typ := range []kernel.Type{kernel.Uniform, kernel.Epanechnikov, kernel.Quartic, kernel.Gaussian} {
		opt := testOpts(typ, 12)
		full, err := Naive(pts, opt)
		if err != nil {
			t.Fatalf("%v full: %v", typ, err)
		}
		windows := []geom.GridWindow{
			{X0: 0, Y0: 0, NX: opt.Grid.NX, NY: opt.Grid.NY},
			{X0: 0, Y0: 0, NX: 13, NY: 9},
			{X0: 17, Y0: 11, NX: 23, NY: 21},
			{X0: 39, Y0: 31, NX: 1, NY: 1},
			{X0: 5, Y0: 0, NX: 7, NY: 32},
		}
		for _, w := range windows {
			wopt := opt
			wopt.Window = w
			got, err := Naive(pts, wopt)
			if err != nil {
				t.Fatalf("%v window %+v: %v", typ, w, err)
			}
			if got.Spec.NX != w.NX || got.Spec.NY != w.NY {
				t.Fatalf("%v window %+v: got %dx%d raster", typ, w, got.Spec.NX, got.Spec.NY)
			}
			for iy := 0; iy < w.NY; iy++ {
				for ix := 0; ix < w.NX; ix++ {
					want := full.Values[full.Spec.Index(w.X0+ix, w.Y0+iy)]
					have := got.Values[iy*w.NX+ix]
					if math.Float64bits(want) != math.Float64bits(have) {
						t.Fatalf("%v window %+v pixel (%d,%d): %x != %x",
							typ, w, ix, iy, math.Float64bits(have), math.Float64bits(want))
					}
				}
			}
		}
	}
}

// TestWindowedHaloSubsetExact models one shard tile: evaluating a window
// against only the points within kernel support of the tile box must equal
// the full-dataset window bit-for-bit (finite-support kernels; skipped
// terms are exactly zero).
func TestWindowedHaloSubsetExact(t *testing.T) {
	pts := clusteredPoints(11, 500)
	d, err := dataset.New(pts, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt := testOpts(kernel.Quartic, 9)
	w := geom.GridWindow{X0: 8, Y0: 6, NX: 14, NY: 12}
	wopt := opt
	wopt.Window = w

	full, err := NaiveCols(d.Columns(), wopt)
	if err != nil {
		t.Fatal(err)
	}
	halo := opt.Grid.WindowBox(w).Pad(opt.Kernel.SupportRadius())
	sub := d.FilterBox(halo)
	if sub.N() == d.N() || sub.N() == 0 {
		t.Fatalf("halo filter not selective: %d of %d points", sub.N(), d.N())
	}
	got, err := NaiveCols(sub.Columns(), wopt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range full.Values {
		if math.Float64bits(full.Values[i]) != math.Float64bits(got.Values[i]) {
			t.Fatalf("pixel %d: halo subset %x != full %x",
				i, math.Float64bits(got.Values[i]), math.Float64bits(full.Values[i]))
		}
	}
}

// TestWindowValidation covers bad windows and the methods that must refuse
// windowed evaluation instead of silently returning a misplaced raster.
func TestWindowValidation(t *testing.T) {
	pts := clusteredPoints(3, 50)
	opt := testOpts(kernel.Quartic, 10)

	bad := []geom.GridWindow{
		{X0: 0, Y0: 0, NX: 0, NY: 5},
		{X0: -1, Y0: 0, NX: 4, NY: 4},
		{X0: 38, Y0: 0, NX: 4, NY: 4},
		{X0: 0, Y0: 30, NX: 4, NY: 4},
	}
	for _, w := range bad {
		wopt := opt
		wopt.Window = w
		if _, err := Naive(pts, wopt); err == nil {
			t.Errorf("window %+v accepted", w)
		}
	}

	wopt := opt
	wopt.Window = geom.GridWindow{X0: 1, Y0: 1, NX: 4, NY: 4}
	type method struct {
		name string
		call func(Options) error
	}
	methods := []method{
		{"GridCutoff", func(o Options) error { _, err := GridCutoff(pts, o); return err }},
		{"SweepLine", func(o Options) error { _, err := SweepLine(pts, o); return err }},
		{"BoundApprox", func(o Options) error { _, err := BoundApprox(pts, o, 0.1); return err }},
		{"Sampled", func(o Options) error { _, err := Sampled(pts, o, 1, 0.1, 0.1); return err }},
		{"Exact", func(o Options) error { _, err := Exact(pts, o); return err }},
	}
	for _, m := range methods {
		if err := m.call(wopt); err == nil {
			t.Errorf("%s accepted a window", m.name)
		}
	}
	f32 := wopt
	f32.Float32 = true
	if _, err := Naive(pts, f32); err == nil {
		t.Error("float32 naive accepted a window")
	}
}
