package kde

import (
	"fmt"
	"math"

	"geostat/internal/geom"
	gridindex "geostat/internal/index/grid"
	"geostat/internal/kernel"
	"geostat/internal/parallel"
)

// Bandwidth selection — the step every hands-on KDV session starts with
// (the paper's §2.1 suggests taking b from the K-function's clustered
// scale; these are the statistical alternatives every GIS package offers).

// SilvermanBandwidth returns the 2-D rule-of-thumb bandwidth
//
//	b = σ̂ · n^{−1/6},  σ̂ = sqrt((σ_x² + σ_y²)/2)
//
// (Silverman's normal-reference rule with d=2). It is a pilot value:
// optimal under Gaussian data, a sane starting point elsewhere.
func SilvermanBandwidth(pts []geom.Point) (float64, error) {
	n := len(pts)
	if n < 2 {
		return 0, fmt.Errorf("kde: Silverman rule needs at least 2 points, got %d", n)
	}
	var mx, my float64
	for _, p := range pts {
		mx += p.X
		my += p.Y
	}
	mx /= float64(n)
	my /= float64(n)
	var vx, vy float64
	for _, p := range pts {
		vx += (p.X - mx) * (p.X - mx)
		vy += (p.Y - my) * (p.Y - my)
	}
	vx /= float64(n - 1)
	vy /= float64(n - 1)
	sigma := math.Sqrt((vx + vy) / 2)
	if sigma == 0 {
		return 0, fmt.Errorf("kde: zero-variance point set")
	}
	return sigma * math.Pow(float64(n), -1.0/6), nil
}

// SelectBandwidthCV picks the candidate bandwidth maximising the held-out
// log-likelihood over `folds` random folds: for each fold, the density
// (normalised, fitted on the other folds) is evaluated at the held-out
// points; the winner generalises best. Requires a finite-support kernel
// (evaluation uses support scans). Candidates must be positive.
//
// The fold assignment is shuffled by a generator seeded with seed, so the
// selected bandwidth is reproducible from (points, candidates, folds, seed).
func SelectBandwidthCV(pts []geom.Point, typ kernel.Type, candidates []float64, folds int, seed int64) (float64, error) {
	if len(candidates) == 0 {
		return 0, fmt.Errorf("kde: no candidate bandwidths")
	}
	if folds < 2 {
		return 0, fmt.Errorf("kde: need at least 2 folds, got %d", folds)
	}
	if len(pts) < 2*folds {
		return 0, fmt.Errorf("kde: too few points (%d) for %d folds", len(pts), folds)
	}
	// Validate candidates and kernel up front.
	for i, b := range candidates {
		k, err := kernel.New(typ, b)
		if err != nil {
			return 0, fmt.Errorf("kde: candidate %d: %w", i, err)
		}
		if !k.FiniteSupport() {
			return 0, fmt.Errorf("kde: SelectBandwidthCV requires a finite-support kernel, got %v", typ)
		}
	}
	// Random fold assignment.
	rng := parallel.NewRand(seed)
	fold := make([]int, len(pts))
	for i := range fold {
		fold[i] = i % folds
	}
	rng.Shuffle(len(fold), func(i, j int) { fold[i], fold[j] = fold[j], fold[i] })

	// Log-density floor: a held-out point outside every kernel support
	// would give −Inf; floor it so one outlier doesn't veto a bandwidth,
	// while still penalising uncovered points heavily.
	const logFloor = -50.0

	best := candidates[0]
	bestScore := math.Inf(-1)
	train := make([]geom.Point, 0, len(pts))
	for _, b := range candidates {
		k := kernel.MustNew(typ, b)
		w := k.NormConst()
		score := 0.0
		for f := 0; f < folds; f++ {
			train = train[:0]
			for i, p := range pts {
				if fold[i] != f {
					train = append(train, p)
				}
			}
			idx := gridindex.New(train, b)
			norm := w / float64(len(train))
			for i, p := range pts {
				if fold[i] != f {
					continue
				}
				sum := 0.0
				idx.ForEachInRange(p, b, func(_ int, d2 float64) {
					sum += k.Eval2(d2)
				})
				if density := sum * norm; density > 0 {
					score += math.Max(math.Log(density), logFloor)
				} else {
					score += logFloor
				}
			}
		}
		if score > bestScore {
			bestScore = score
			best = b
		}
	}
	return best, nil
}
