package kde

import (
	"fmt"
	"math"

	"geostat/internal/geom"
	"geostat/internal/parallel"
	"geostat/internal/raster"
)

// SampleBound returns the subset size m such that estimating the mean
// kernel value F(q)/n from m uniform samples (with replacement) has
// additive error at most eps·Kmax simultaneously over all numPixels pixels
// with probability at least 1−delta, by Hoeffding's inequality plus a
// union bound:
//
//	m ≥ ln(2·XY/δ) / (2·ε²)
//
// (kernel values lie in [0, Kmax]; eps is expressed as a fraction of Kmax,
// making the bound kernel- and bandwidth-independent). This is the
// "non-trivial upper bound for the subset size" of §2.2's data-sampling
// family: m does not depend on n, so the speedup grows linearly with n.
func SampleBound(numPixels int, eps, delta float64) (int, error) {
	if !(eps > 0) || eps >= 1 {
		return 0, fmt.Errorf("kde: sampling needs 0 < eps < 1, got %g", eps)
	}
	if !(delta > 0) || delta >= 1 {
		return 0, fmt.Errorf("kde: sampling needs 0 < delta < 1, got %g", delta)
	}
	if numPixels < 1 {
		numPixels = 1
	}
	m := math.Log(2*float64(numPixels)/delta) / (2 * eps * eps)
	return int(math.Ceil(m)), nil
}

// Sampled computes an approximate KDV from a uniform random subset sized by
// SampleBound, evaluated exactly (GridCutoff when the kernel allows,
// otherwise Naive) and rescaled by n/m. The result F̂ satisfies, with
// probability ≥ 1−δ, |F̂(q) − F(q)| ≤ ε·Kmax·n simultaneously for every
// pixel q (equivalently: the per-point mean is within ε·Kmax).
//
// If the bound size reaches n the full dataset is used and the result is
// exact.
//
// The subset is drawn from a generator seeded with seed, so a given
// (points, options, seed) triple always yields the same surface.
func Sampled(pts []geom.Point, opt Options, seed int64, eps, delta float64) (*raster.Grid, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if opt.Weights != nil {
		return nil, fmt.Errorf("kde: Sampled does not support event weights; use an exact method")
	}
	if opt.Float32 {
		return nil, fmt.Errorf("kde: Sampled does not support the float32 path; use Naive or GridCutoff")
	}
	if err := opt.rejectWindow("Sampled"); err != nil {
		return nil, err
	}
	m, err := SampleBound(opt.Grid.NumPixels(), eps, delta)
	if err != nil {
		return nil, err
	}
	n := len(pts)
	if m >= n {
		return exactAuto(pts, opt)
	}
	// Sample with replacement (matches the Hoeffding analysis directly).
	rng := parallel.NewRand(seed)
	sample := make([]geom.Point, m)
	for i := range sample {
		sample[i] = pts[rng.Intn(n)]
	}
	// Compute on the subset with normalisation disabled, then rescale by
	// n/m (and the caller's normalisation constant if requested).
	subOpt := opt
	subOpt.Normalize = false
	out, err := exactAuto(sample, subOpt)
	if err != nil {
		return nil, err
	}
	scale := float64(n) / float64(m) * opt.scale(n)
	for i := range out.Values {
		out.Values[i] *= scale
	}
	return out, nil
}

// exactAuto picks the fastest exact method available for the kernel. With
// Options.Float32 set (an explicit opt-out of exactness) it routes to the
// float32-capable methods instead.
func exactAuto(pts []geom.Point, opt Options) (*raster.Grid, error) {
	if opt.Float32 {
		if opt.Kernel.FiniteSupport() {
			return GridCutoff(pts, opt)
		}
		return Naive(pts, opt)
	}
	if SweepSupported(opt.Kernel.Type()) {
		return SweepLine(pts, opt)
	}
	if opt.Kernel.FiniteSupport() {
		return GridCutoff(pts, opt)
	}
	return Naive(pts, opt)
}

// Exact computes the exact KDV with the best available exact algorithm for
// the kernel: SweepLine for polynomial kernels, GridCutoff for other
// finite-support kernels, Naive otherwise. This is the method the public
// facade exposes as the default.
func Exact(pts []geom.Point, opt Options) (*raster.Grid, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if err := opt.rejectWindow("Exact"); err != nil {
		return nil, err
	}
	return exactAuto(pts, opt)
}
