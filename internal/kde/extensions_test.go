package kde

import (
	"math"
	"math/rand"
	"testing"

	"geostat/internal/dataset"
	"geostat/internal/geom"
	"geostat/internal/kernel"
)

// ---- MultiBandwidth (SAFE-style bandwidth sharing) ----

func TestMultiBandwidthMatchesPerBandwidthExact(t *testing.T) {
	pts := clusteredPoints(20, 400)
	grid := geom.NewPixelGrid(box, 24, 20)
	bandwidths := []float64{2, 5, 9, 16, 30}
	for _, kt := range []kernel.Type{kernel.Uniform, kernel.Epanechnikov, kernel.Quartic, kernel.Triweight} {
		surfaces, err := MultiBandwidth(pts, grid, kt, bandwidths, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(surfaces) != len(bandwidths) {
			t.Fatalf("%v: %d surfaces", kt, len(surfaces))
		}
		for bi, b := range bandwidths {
			want, err := Exact(pts, Options{Kernel: kernel.MustNew(kt, b), Grid: grid})
			if err != nil {
				t.Fatal(err)
			}
			d, _ := surfaces[bi].MaxAbsDiff(want)
			_, peak := want.MinMax()
			if d > 1e-9*(1+peak) {
				t.Errorf("%v b=%v: multi-bandwidth differs by %v", kt, b, d)
			}
		}
	}
}

func TestMultiBandwidthValidation(t *testing.T) {
	pts := clusteredPoints(21, 20)
	grid := geom.NewPixelGrid(box, 8, 8)
	if _, err := MultiBandwidth(pts, grid, kernel.Gaussian, []float64{1}, 0); err == nil {
		t.Error("Gaussian accepted")
	}
	if _, err := MultiBandwidth(pts, grid, kernel.Quartic, nil, 0); err == nil {
		t.Error("empty bandwidths accepted")
	}
	if _, err := MultiBandwidth(pts, grid, kernel.Quartic, []float64{5, 5}, 0); err == nil {
		t.Error("non-increasing bandwidths accepted")
	}
	if _, err := MultiBandwidth(pts, grid, kernel.Quartic, []float64{-1, 2}, 0); err == nil {
		t.Error("negative bandwidth accepted")
	}
	if _, err := MultiBandwidth(pts, geom.PixelGrid{}, kernel.Quartic, []float64{1}, 0); err == nil {
		t.Error("zero grid accepted")
	}
}

func TestMultiBandwidthParallelMatchesSerial(t *testing.T) {
	pts := clusteredPoints(22, 300)
	grid := geom.NewPixelGrid(box, 20, 16)
	bw := []float64{3, 8, 15}
	serial, err := MultiBandwidth(pts, grid, kernel.Quartic, bw, 0)
	if err != nil {
		t.Fatal(err)
	}
	par, err := MultiBandwidth(pts, grid, kernel.Quartic, bw, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bw {
		if d, _ := serial[i].MaxAbsDiff(par[i]); d > 1e-12 {
			t.Errorf("b=%v: parallel differs by %v", bw[i], d)
		}
	}
}

// ---- Adaptive KDV ----

func TestAdaptiveUniformBandwidthMatchesFixed(t *testing.T) {
	// With every per-point bandwidth equal, adaptive == fixed KDV.
	pts := clusteredPoints(23, 300)
	grid := geom.NewPixelGrid(box, 24, 20)
	const b = 9.0
	bw := make([]float64, len(pts))
	for i := range bw {
		bw[i] = b
	}
	adaptive, err := Adaptive(pts, bw, kernel.Quartic, grid, 0)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := Exact(pts, Options{Kernel: kernel.MustNew(kernel.Quartic, b), Grid: grid})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := adaptive.MaxAbsDiff(fixed)
	_, peak := fixed.MinMax()
	if d > 1e-9*(1+peak) {
		t.Errorf("adaptive(const b) differs from fixed by %v", d)
	}
}

func TestAdaptiveValidation(t *testing.T) {
	pts := clusteredPoints(24, 10)
	grid := geom.NewPixelGrid(box, 8, 8)
	if _, err := Adaptive(pts, []float64{1}, kernel.Quartic, grid, 0); err == nil {
		t.Error("length mismatch accepted")
	}
	bw := make([]float64, len(pts))
	for i := range bw {
		bw[i] = 1
	}
	if _, err := Adaptive(pts, bw, kernel.Gaussian, grid, 0); err == nil {
		t.Error("Gaussian accepted")
	}
	bw[3] = -1
	if _, err := Adaptive(pts, bw, kernel.Quartic, grid, 0); err == nil {
		t.Error("negative bandwidth accepted")
	}
	if _, err := Adaptive(pts, bw[:0], kernel.Quartic, geom.PixelGrid{}, 0); err == nil {
		t.Error("zero grid accepted")
	}
}

func TestAdaptiveParallelMatchesSerial(t *testing.T) {
	pts := clusteredPoints(25, 500)
	grid := geom.NewPixelGrid(box, 30, 24)
	bw, err := AdaptiveBandwidths(pts, 8, 1.0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Adaptive(pts, bw, kernel.Quartic, grid, 0)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Adaptive(pts, bw, kernel.Quartic, grid, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := serial.MaxAbsDiff(par); d > 1e-9 {
		t.Errorf("parallel adaptive differs by %v", d)
	}
}

func TestAdaptiveBandwidthsStructure(t *testing.T) {
	// Dense cluster points get smaller bandwidths than isolated ones.
	r := rand.New(rand.NewSource(26))
	dense := dataset.GaussianClusters(r, 200, box, []dataset.Cluster{
		{Center: geom.Point{X: 30, Y: 40}, Sigma: 2, Weight: 1},
	}, 0).Points()
	isolated := geom.Point{X: 95, Y: 75}
	pts := append(dense, isolated)
	bw, err := AdaptiveBandwidths(pts, 5, 1.0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	meanDense := 0.0
	for _, b := range bw[:len(dense)] {
		meanDense += b
	}
	meanDense /= float64(len(dense))
	if bw[len(bw)-1] < 5*meanDense {
		t.Errorf("isolated bandwidth %v not ≫ dense mean %v", bw[len(bw)-1], meanDense)
	}
	// Floor respected.
	all := make([]geom.Point, 10)
	for i := range all {
		all[i] = geom.Point{X: 1, Y: 1} // duplicates: kNN distance 0
	}
	bw, err = AdaptiveBandwidths(all, 3, 1.0, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bw {
		if b != 0.75 {
			t.Fatalf("floor not applied: %v", b)
		}
	}
	if _, err := AdaptiveBandwidths(pts, 0, 1, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := AdaptiveBandwidths(pts, 3, 0, 1); err == nil {
		t.Error("zero scale accepted")
	}
}

// ---- Bandwidth selection ----

func TestSilvermanBandwidth(t *testing.T) {
	// Known variance: points on a circle of radius r have σ_x = σ_y = r/√2.
	var pts []geom.Point
	const n, r = 1000, 10.0
	for i := 0; i < n; i++ {
		theta := 2 * math.Pi * float64(i) / n
		pts = append(pts, geom.Point{X: r * math.Cos(theta), Y: r * math.Sin(theta)})
	}
	b, err := SilvermanBandwidth(pts)
	if err != nil {
		t.Fatal(err)
	}
	want := r / math.Sqrt2 * math.Pow(n, -1.0/6)
	if math.Abs(b-want)/want > 0.01 {
		t.Errorf("Silverman = %v, want %v", b, want)
	}
	if _, err := SilvermanBandwidth(pts[:1]); err == nil {
		t.Error("single point accepted")
	}
	same := []geom.Point{{X: 1, Y: 1}, {X: 1, Y: 1}}
	if _, err := SilvermanBandwidth(same); err == nil {
		t.Error("zero variance accepted")
	}
}

func TestSelectBandwidthCVPrefersTrueScale(t *testing.T) {
	// Data from Gaussian blobs with σ=3: CV should prefer a bandwidth near
	// the blob scale over extreme candidates.
	r := rand.New(rand.NewSource(27))
	pts := dataset.GaussianClusters(r, 600, box, []dataset.Cluster{
		{Center: geom.Point{X: 30, Y: 30}, Sigma: 3, Weight: 1},
		{Center: geom.Point{X: 70, Y: 60}, Sigma: 3, Weight: 1},
	}, 0.05).Points()
	best, err := SelectBandwidthCV(pts, kernel.Quartic, []float64{0.3, 4, 60}, 5, 27)
	if err != nil {
		t.Fatal(err)
	}
	if best != 4 {
		t.Errorf("CV chose %v, want 4 (blob scale)", best)
	}
}

func TestSelectBandwidthCVValidation(t *testing.T) {
	pts := clusteredPoints(28, 100)
	if _, err := SelectBandwidthCV(pts, kernel.Quartic, nil, 5, 1); err == nil {
		t.Error("no candidates accepted")
	}
	if _, err := SelectBandwidthCV(pts, kernel.Quartic, []float64{1}, 1, 1); err == nil {
		t.Error("folds=1 accepted")
	}
	if _, err := SelectBandwidthCV(pts[:4], kernel.Quartic, []float64{1}, 5, 1); err == nil {
		t.Error("too few points accepted")
	}
	if _, err := SelectBandwidthCV(pts, kernel.Gaussian, []float64{1}, 5, 1); err == nil {
		t.Error("Gaussian accepted")
	}
	if _, err := SelectBandwidthCV(pts, kernel.Quartic, []float64{-1}, 5, 1); err == nil {
		t.Error("negative candidate accepted")
	}
}

// ---- Weighted KDV ----

func TestWeightedKDVAllMethodsAgree(t *testing.T) {
	pts := clusteredPoints(70, 300)
	r := rand.New(rand.NewSource(70))
	weights := make([]float64, len(pts))
	for i := range weights {
		weights[i] = 0.5 + r.Float64()*3
	}
	opt := Options{
		Kernel:  kernel.MustNew(kernel.Quartic, 9),
		Grid:    geom.NewPixelGrid(box, 22, 18),
		Weights: weights,
	}
	naive, err := Naive(pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	cut, err := GridCutoff(pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := SweepLine(pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	_, peak := naive.MinMax()
	if d, _ := cut.MaxAbsDiff(naive); d > 1e-9*(1+peak) {
		t.Errorf("weighted cutoff differs by %v", d)
	}
	if d, _ := sweep.MaxAbsDiff(naive); d > 1e-9*(1+peak) {
		t.Errorf("weighted sweep differs by %v", d)
	}
	// Integer-weight equivalence: weight 3 == the point appearing 3 times.
	p3 := []geom.Point{{X: 40, Y: 40}, {X: 60, Y: 55}}
	w3 := []float64{3, 1}
	opt3 := opt
	opt3.Weights = w3
	weighted, err := SweepLine(p3, opt3)
	if err != nil {
		t.Fatal(err)
	}
	expanded := []geom.Point{p3[0], p3[0], p3[0], p3[1]}
	opt3.Weights = nil
	dup, err := SweepLine(expanded, opt3)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := weighted.MaxAbsDiff(dup); d > 1e-9 {
		t.Errorf("integer weights != duplication by %v", d)
	}
}

func TestWeightedKDVValidation(t *testing.T) {
	pts := clusteredPoints(71, 20)
	opt := Options{
		Kernel:  kernel.MustNew(kernel.Quartic, 9),
		Grid:    geom.NewPixelGrid(box, 8, 8),
		Weights: []float64{1, 2}, // wrong length
	}
	if _, err := Naive(pts, opt); err == nil {
		t.Error("wrong-length weights accepted by Naive")
	}
	if _, err := GridCutoff(pts, opt); err == nil {
		t.Error("wrong-length weights accepted by GridCutoff")
	}
	if _, err := SweepLine(pts, opt); err == nil {
		t.Error("wrong-length weights accepted by SweepLine")
	}
	ok := make([]float64, len(pts))
	for i := range ok {
		ok[i] = 1
	}
	opt.Weights = ok
	if _, err := BoundApprox(pts, opt, 0.1); err == nil {
		t.Error("weights accepted by BoundApprox")
	}
	if _, err := Sampled(pts, opt, 1, 0.1, 0.1); err == nil {
		t.Error("weights accepted by Sampled")
	}
}

func TestWeightedNormalizeIntegratesToOne(t *testing.T) {
	pts := []geom.Point{{X: 50, Y: 40}, {X: 52, Y: 42}}
	opt := Options{
		Kernel:    kernel.MustNew(kernel.Quartic, 10),
		Grid:      geom.NewPixelGrid(box, 200, 160),
		Normalize: true,
		Weights:   []float64{3, 1},
	}
	out, err := GridCutoff(pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	integral := out.Sum() * opt.Grid.CellW() * opt.Grid.CellH()
	if math.Abs(integral-1) > 0.02 {
		t.Errorf("weighted normalised integral = %v, want ≈1", integral)
	}
}
