package kde

import (
	"math"
	"sort"
	"testing"

	"geostat/internal/dataset"
	"geostat/internal/geom"
	"geostat/internal/kernel"
	"geostat/internal/raster"
)

// This file pins down the contracts of the chunked-SoA refactor:
//
//   - the columnar inner loops are bit-identical to the straightforward
//     array-of-structs reference loop they replaced, serial and parallel;
//   - chunk-bbox pruning never changes a single bit (it only skips terms
//     the kernel maps to exactly 0);
//   - the opt-in float32 path stays within its documented error bound and
//     is rejected by the methods whose guarantees it would break;
//   - nothing selects the float32 path implicitly.

// aosReference computes the KDV the pre-columnar way: one
// array-of-structs pass over the points per pixel, accumulating
// w_i * K.Eval2(d²) in point order. This is the bit-level ground truth the
// columnar loops must reproduce.
func aosReference(pts []geom.Point, opt Options) *raster.Grid {
	g := raster.NewGrid(opt.Grid)
	for iy := 0; iy < opt.Grid.NY; iy++ {
		for ix := 0; ix < opt.Grid.NX; ix++ {
			q := opt.Grid.Center(ix, iy)
			sum := 0.0
			for i, p := range pts {
				v := opt.Kernel.Eval2(p.Dist2(q))
				if opt.Weights != nil {
					v = opt.Weights[i] * v
				}
				sum += v
			}
			g.Set(ix, iy, sum)
		}
	}
	return g
}

// assertBitIdentical fails unless both grids are equal via Float64bits.
func assertBitIdentical(t *testing.T, got, want *raster.Grid, label string) {
	t.Helper()
	for iy := 0; iy < want.Spec.NY; iy++ {
		for ix := 0; ix < want.Spec.NX; ix++ {
			g, w := got.At(ix, iy), want.At(ix, iy)
			if math.Float64bits(g) != math.Float64bits(w) {
				t.Fatalf("%s: pixel (%d,%d) = %v (bits %x), want %v (bits %x)",
					label, ix, iy, g, math.Float64bits(g), w, math.Float64bits(w))
			}
		}
	}
}

// multiChunkPoints returns enough clustered points to span several storage
// chunks (ChunkSize = 4096), sorted by x so chunk bounding boxes are thin
// vertical slabs and bbox pruning actually rejects chunks.
func multiChunkPoints(seed int64, n int) []geom.Point {
	pts := clusteredPoints(seed, n)
	sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
	return pts
}

func TestColumnarBitIdentityVsAoSReference(t *testing.T) {
	pts := multiChunkPoints(11, 9500) // 3 chunks
	weights := make([]float64, len(pts))
	for i := range weights {
		weights[i] = 0.5 + float64(i%7)
	}
	for _, kt := range []kernel.Type{kernel.Quartic, kernel.Gaussian} {
		opt := testOpts(kt, 9)
		opt.Grid = geom.NewPixelGrid(box, 24, 20)
		for _, ws := range [][]float64{nil, weights} {
			opt.Weights = ws
			want := aosReference(pts, opt)
			for _, workers := range []int{1, 4} {
				opt.Workers = workers
				got, err := Naive(pts, opt)
				if err != nil {
					t.Fatal(err)
				}
				label := kt.String() + "/weighted"
				if ws == nil {
					label = kt.String() + "/unweighted"
				}
				assertBitIdentical(t, got, want, label)
			}
		}
	}
}

func TestChunkPruningBitIdentical(t *testing.T) {
	// The pruned evaluator (Naive's default for finite-support kernels)
	// must match an unpruned columnarComputer bit for bit at every
	// bandwidth: pruning may only skip terms that are exactly 0.
	pts := multiChunkPoints(12, 9000)
	cols := dataset.MakeColumns(pts, nil)
	for _, b := range []float64{2, 6, 25} {
		opt := testOpts(kernel.Quartic, b)
		opt.Grid = geom.NewPixelGrid(box, 24, 20)
		pruned, err := Naive(pts, opt)
		if err != nil {
			t.Fatal(err)
		}
		unpruned, err := run(
			&columnarComputer{cols: cols, opt: &opt, eval: chunkEvalFor(opt.Kernel)},
			&opt, cols.N())
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, pruned, unpruned, "pruned vs unpruned")
	}
}

func TestFloat32WithinErrorBound(t *testing.T) {
	pts := multiChunkPoints(13, 6000)
	for _, kt := range []kernel.Type{kernel.Quartic, kernel.Gaussian} {
		opt := testOpts(kt, 12)
		exact, err := Naive(pts, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Float32 = true
		fast, err := Naive(pts, opt)
		if err != nil {
			t.Fatal(err)
		}
		peak := 0.0
		for iy := 0; iy < opt.Grid.NY; iy++ {
			for ix := 0; ix < opt.Grid.NX; ix++ {
				if v := exact.At(ix, iy); v > peak {
					peak = v
				}
			}
		}
		if peak == 0 {
			t.Fatal("degenerate surface")
		}
		for iy := 0; iy < opt.Grid.NY; iy++ {
			for ix := 0; ix < opt.Grid.NX; ix++ {
				diff := math.Abs(fast.At(ix, iy) - exact.At(ix, iy))
				if diff/peak > 1e-3 {
					t.Fatalf("%v: pixel (%d,%d) float32 error %v of peak %v exceeds 1e-3",
						kt, ix, iy, diff, peak)
				}
			}
		}
	}
}

func TestFloat32RejectedByExactOnlyMethods(t *testing.T) {
	pts := clusteredPoints(14, 200)
	opt := testOpts(kernel.Quartic, 10)
	opt.Float32 = true
	if _, err := SweepLine(pts, opt); err == nil {
		t.Error("SweepLine accepted Float32")
	}
	if _, err := BoundApprox(pts, opt, 0.05); err == nil {
		t.Error("BoundApprox accepted Float32")
	}
	if _, err := Sampled(pts, opt, 1, 0.1, 0.01); err == nil {
		t.Error("Sampled accepted Float32")
	}
}

func TestFloat32NeverImplicit(t *testing.T) {
	// Exact's auto dispatch with Float32 unset must land on an exact
	// float64 evaluator — the fast path can only be reached by setting the
	// flag. The dispatched method (SweepLine here) may reorder the
	// summation, so the check is the float64 rounding envelope (~1e-9 of
	// the peak); the float32 path errs around 1e-6 of the peak and would
	// trip it by three orders of magnitude.
	pts := multiChunkPoints(15, 5000)
	opt := testOpts(kernel.Quartic, 8)
	want := aosReference(pts, opt)
	got, err := Exact(pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	d, err := got.MaxAbsDiff(want)
	if err != nil {
		t.Fatal(err)
	}
	_, peak := want.MinMax()
	if d > 1e-9*(1+peak) {
		t.Errorf("Exact default path abs diff %v (peak %v): not an exact float64 evaluator", d, peak)
	}
}
