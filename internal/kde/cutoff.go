package kde

import (
	"fmt"

	"geostat/internal/geom"
	gridindex "geostat/internal/index/grid"
	"geostat/internal/obs"
	"geostat/internal/raster"
)

// GridCutoff computes an exact KDV for finite-support kernels by bucketing
// the points into a uniform grid with cell size equal to the bandwidth and
// scanning, for each pixel, only the buckets intersecting the kernel
// support. On data without extreme skew this is O(XY·(1+k)) where k is the
// mean point count inside a support disc — the standard practical exact
// accelerator.
//
// Infinite-support kernels (Gaussian, exponential) are rejected: truncating
// them silently would violate exactness. Use BoundApprox for those (the gap
// §2.4 of the paper highlights).
func GridCutoff(pts []geom.Point, opt Options) (*raster.Grid, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if !opt.Kernel.FiniteSupport() {
		return nil, fmt.Errorf("kde: GridCutoff requires a finite-support kernel, got %v", opt.Kernel.Type())
	}
	if err := opt.validateWeights(len(pts)); err != nil {
		return nil, err
	}
	_, span := obs.Trace(opt.context(), "kde.index_build")
	idx := gridindex.New(pts, opt.Kernel.Bandwidth())
	span.End()
	return run(&cutoffComputer{idx: idx, opt: &opt}, &opt, len(pts))
}

type cutoffComputer struct {
	idx *gridindex.Index
	opt *Options
}

func (c *cutoffComputer) computeRow(iy int, row []float64) {
	g := c.opt.Grid
	k := c.opt.Kernel
	b := k.Bandwidth()
	qy := g.CenterY(iy)
	for ix := range row {
		q := geom.Point{X: g.CenterX(ix), Y: qy}
		sum := 0.0
		c.idx.ForEachInRange(q, b, func(i int, d2 float64) {
			sum += c.opt.weightAt(i) * k.Eval2(d2)
		})
		row[ix] = sum
	}
}
