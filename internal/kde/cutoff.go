package kde

import (
	"fmt"

	"geostat/internal/geom"
	gridindex "geostat/internal/index/grid"
	"geostat/internal/obs"
	"geostat/internal/raster"
)

// GridCutoff computes an exact KDV for finite-support kernels by bucketing
// the points into a uniform grid with cell size equal to the bandwidth and
// scanning, for each pixel, only the buckets intersecting the kernel
// support. On data without extreme skew this is O(XY·(1+k)) where k is the
// mean point count inside a support disc — the standard practical exact
// accelerator. The scan iterates the index's cell-ordered coordinate
// columns directly with the kernel specialised per type (no per-point
// callback), visiting candidates in the same order the index's
// ForEachInRange would, so results are bit-identical to the callback form.
//
// Infinite-support kernels (Gaussian, exponential) are rejected: truncating
// them silently would violate exactness. Use BoundApprox for those (the gap
// §2.4 of the paper highlights).
func GridCutoff(pts []geom.Point, opt Options) (*raster.Grid, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if !opt.Kernel.FiniteSupport() {
		return nil, fmt.Errorf("kde: GridCutoff requires a finite-support kernel, got %v", opt.Kernel.Type())
	}
	if err := opt.rejectWindow("GridCutoff"); err != nil {
		return nil, err
	}
	if err := opt.validateWeights(len(pts)); err != nil {
		return nil, err
	}
	_, span := obs.Trace(opt.context(), "kde.index_build")
	idx := gridindex.New(pts, opt.Kernel.Bandwidth())
	span.End()
	// Re-order the weight column to the index's cell-sorted slot order so
	// the scan reads weights contiguously alongside the coordinates.
	var ws []float64
	if opt.Weights != nil {
		_, _, ids := idx.Columns()
		ws = make([]float64, len(ids))
		for j, pi := range ids {
			ws[j] = opt.Weights[pi]
		}
	}
	if opt.Float32 {
		return run(newCutoffFast32Computer(idx, &opt, ws), &opt, len(pts))
	}
	xs, ys, _ := idx.Columns()
	c := &cutoffComputer{
		idx:  idx,
		opt:  &opt,
		xs:   xs,
		ys:   ys,
		ws:   ws,
		eval: chunkEvalFor(opt.Kernel),
		b:    opt.Kernel.Bandwidth(),
	}
	return run(c, &opt, len(pts))
}

type cutoffComputer struct {
	idx    *gridindex.Index
	opt    *Options
	xs, ys []float64 // cell-ordered coordinate columns (idx.Columns)
	ws     []float64 // weights in the same slot order; nil when unweighted
	eval   chunkEval
	b      float64
}

func (c *cutoffComputer) computeRow(iy int, row []float64) {
	g := c.opt.Grid
	qy := g.CenterY(iy)
	for ix := range row {
		qx := g.CenterX(ix)
		cx0, cx1, cy0, cy1 := c.idx.CellSpan(geom.Point{X: qx, Y: qy}, c.b)
		sum := 0.0
		for cy := cy0; cy <= cy1; cy++ {
			for cx := cx0; cx <= cx1; cx++ {
				lo, hi := c.idx.Cell(cx, cy)
				if lo != hi {
					sum = evalSeg(c.eval, sum, qx, qy, c.xs, c.ys, c.ws, lo, hi)
				}
			}
		}
		row[ix] = sum
	}
}
