package kde

import (
	"math"
	"math/rand"
	"testing"

	"geostat/internal/dataset"
	"geostat/internal/geom"
	"geostat/internal/kernel"
	"geostat/internal/raster"
)

var box = geom.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 80}

func testOpts(t kernel.Type, b float64) Options {
	return Options{
		Kernel: kernel.MustNew(t, b),
		Grid:   geom.NewPixelGrid(box, 40, 32),
	}
}

func clusteredPoints(seed int64, n int) []geom.Point {
	r := rand.New(rand.NewSource(seed))
	d := dataset.GaussianClusters(r, n, box, []dataset.Cluster{
		{Center: geom.Point{X: 30, Y: 40}, Sigma: 8, Weight: 2},
		{Center: geom.Point{X: 75, Y: 20}, Sigma: 5, Weight: 1},
	}, 0.2)
	return d.Points()
}

func TestOptionsValidation(t *testing.T) {
	pts := clusteredPoints(1, 10)
	if _, err := Naive(pts, Options{}); err == nil {
		t.Error("zero options accepted")
	}
	opt := testOpts(kernel.Quartic, 10)
	opt.Grid = geom.PixelGrid{}
	if _, err := Naive(pts, opt); err == nil {
		t.Error("zero grid accepted")
	}
}

func TestNaiveAgainstDirectFormula(t *testing.T) {
	// Two points, small grid: hand-verifiable.
	pts := []geom.Point{{X: 10, Y: 10}, {X: 50, Y: 50}}
	opt := Options{
		Kernel: kernel.MustNew(kernel.Gaussian, 20),
		Grid:   geom.NewPixelGrid(box, 10, 8),
	}
	out, err := Naive(pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	q := opt.Grid.Center(3, 2)
	want := opt.Kernel.Eval2(q.Dist2(pts[0])) + opt.Kernel.Eval2(q.Dist2(pts[1]))
	if got := out.At(3, 2); math.Abs(got-want) > 1e-12 {
		t.Errorf("F = %v, want %v", got, want)
	}
}

func TestNaiveEmptyDataset(t *testing.T) {
	opt := testOpts(kernel.Quartic, 10)
	out, err := Naive(nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if out.Sum() != 0 {
		t.Errorf("empty dataset sum = %v", out.Sum())
	}
}

func TestGridCutoffMatchesNaive(t *testing.T) {
	pts := clusteredPoints(2, 400)
	for _, kt := range []kernel.Type{kernel.Uniform, kernel.Triangular, kernel.Epanechnikov, kernel.Quartic, kernel.Triweight, kernel.Cosine} {
		for _, b := range []float64{3, 12, 60, 300} {
			opt := testOpts(kt, b)
			naive, err := Naive(pts, opt)
			if err != nil {
				t.Fatal(err)
			}
			fast, err := GridCutoff(pts, opt)
			if err != nil {
				t.Fatal(err)
			}
			d, err := fast.MaxAbsDiff(naive)
			if err != nil {
				t.Fatal(err)
			}
			if d > 1e-9 {
				t.Errorf("%v b=%v: GridCutoff differs from Naive by %v", kt, b, d)
			}
		}
	}
}

func TestGridCutoffRejectsInfiniteSupport(t *testing.T) {
	pts := clusteredPoints(3, 10)
	for _, kt := range []kernel.Type{kernel.Gaussian, kernel.Exponential} {
		if _, err := GridCutoff(pts, testOpts(kt, 10)); err == nil {
			t.Errorf("%v accepted by GridCutoff", kt)
		}
	}
}

func TestSweepLineMatchesNaive(t *testing.T) {
	pts := clusteredPoints(4, 300)
	for _, kt := range []kernel.Type{kernel.Uniform, kernel.Epanechnikov, kernel.Quartic, kernel.Triweight} {
		for _, b := range []float64{2.5, 11, 47} {
			opt := testOpts(kt, b)
			naive, err := Naive(pts, opt)
			if err != nil {
				t.Fatal(err)
			}
			sweep, err := SweepLine(pts, opt)
			if err != nil {
				t.Fatal(err)
			}
			// The sweep's power-sum accumulation carries rounding at the
			// scale of the surface peak, not of each pixel, so compare
			// absolute error against the peak value.
			d, err := sweep.MaxAbsDiff(naive)
			if err != nil {
				t.Fatal(err)
			}
			_, peak := naive.MinMax()
			if d > 1e-9*(1+peak) {
				t.Errorf("%v b=%v: SweepLine abs diff %v (peak %v)", kt, b, d, peak)
			}
		}
	}
}

func TestSweepLineRejectsNonPolynomialKernels(t *testing.T) {
	pts := clusteredPoints(5, 10)
	for _, kt := range []kernel.Type{kernel.Triangular, kernel.Cosine, kernel.Gaussian, kernel.Exponential} {
		if _, err := SweepLine(pts, testOpts(kt, 10)); err == nil {
			t.Errorf("%v accepted by SweepLine", kt)
		}
		if SweepSupported(kt) {
			t.Errorf("SweepSupported(%v) = true", kt)
		}
	}
	for _, kt := range []kernel.Type{kernel.Uniform, kernel.Epanechnikov, kernel.Quartic, kernel.Triweight} {
		if !SweepSupported(kt) {
			t.Errorf("SweepSupported(%v) = false", kt)
		}
	}
}

func TestSweepLineEdgeCases(t *testing.T) {
	opt := testOpts(kernel.Quartic, 10)
	// Empty dataset.
	out, err := SweepLine(nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if out.Sum() != 0 {
		t.Errorf("empty sweep sum = %v", out.Sum())
	}
	// Single point off-grid (support partially outside the raster).
	out, err = SweepLine([]geom.Point{{X: -5, Y: 40}}, opt)
	if err != nil {
		t.Fatal(err)
	}
	naive, _ := Naive([]geom.Point{{X: -5, Y: 40}}, opt)
	if d, _ := out.MaxAbsDiff(naive); d > 1e-9 {
		t.Errorf("off-grid point diff %v", d)
	}
	// Duplicate points.
	dup := []geom.Point{{X: 50, Y: 40}, {X: 50, Y: 40}, {X: 50, Y: 40}}
	out, _ = SweepLine(dup, opt)
	naive, _ = Naive(dup, opt)
	if d, _ := out.MaxAbsDiff(naive); d > 1e-9 {
		t.Errorf("duplicate points diff %v", d)
	}
}

// Equation 6's guarantee: (1−ε)F ≤ R ≤ (1+ε)F for every pixel.
func TestBoundApproxGuarantee(t *testing.T) {
	pts := clusteredPoints(6, 500)
	for _, kt := range []kernel.Type{kernel.Gaussian, kernel.Exponential, kernel.Quartic, kernel.Triangular} {
		naive, err := Naive(pts, testOpts(kt, 15))
		if err != nil {
			t.Fatal(err)
		}
		for _, eps := range []float64{0.5, 0.1, 0.01} {
			approx, err := BoundApprox(pts, testOpts(kt, 15), eps)
			if err != nil {
				t.Fatal(err)
			}
			for i, got := range approx.Values {
				f := naive.Values[i]
				if got < (1-eps)*f-1e-9 || got > (1+eps)*f+1e-9 {
					t.Fatalf("%v eps=%v pixel %d: R=%v outside (1±ε)F, F=%v", kt, eps, i, got, f)
				}
			}
		}
	}
}

func TestBoundApproxValidation(t *testing.T) {
	pts := clusteredPoints(7, 10)
	if _, err := BoundApprox(pts, testOpts(kernel.Gaussian, 10), 0); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := BoundApprox(pts, testOpts(kernel.Gaussian, 10), -1); err == nil {
		t.Error("negative eps accepted")
	}
	out, err := BoundApprox(nil, testOpts(kernel.Gaussian, 10), 0.1)
	if err != nil || out.Sum() != 0 {
		t.Errorf("empty dataset: %v, sum %v", err, out.Sum())
	}
}

func TestSampleBound(t *testing.T) {
	m, err := SampleBound(1000, 0.05, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	want := int(math.Ceil(math.Log(2*1000/0.01) / (2 * 0.05 * 0.05)))
	if m != want {
		t.Errorf("SampleBound = %d, want %d", m, want)
	}
	if _, err := SampleBound(10, 0, 0.1); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := SampleBound(10, 1.5, 0.1); err == nil {
		t.Error("eps>1 accepted")
	}
	if _, err := SampleBound(10, 0.1, 0); err == nil {
		t.Error("delta=0 accepted")
	}
	if _, err := SampleBound(10, 0.1, 2); err == nil {
		t.Error("delta>1 accepted")
	}
}

// The sampling family's probabilistic guarantee: per-point mean error
// within ε·Kmax. With Kmax = K(0) = 1 for quartic, check
// |F̂ − F| ≤ ε·n (slightly inflated for the union-bound slack we already
// spent on the grid).
func TestSampledWithinBound(t *testing.T) {
	pts := clusteredPoints(8, 20000)
	opt := testOpts(kernel.Quartic, 20)
	const eps, delta = 0.05, 0.01
	exact, err := Exact(pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := Sampled(pts, opt, 9, eps, delta)
	if err != nil {
		t.Fatal(err)
	}
	n := float64(len(pts))
	worst := 0.0
	for i := range exact.Values {
		diff := math.Abs(approx.Values[i]-exact.Values[i]) / n
		if diff > worst {
			worst = diff
		}
	}
	if worst > eps {
		t.Errorf("sampling error %v exceeds eps %v", worst, eps)
	}
}

func TestSampledSmallDatasetIsExact(t *testing.T) {
	pts := clusteredPoints(10, 50) // far below the sample bound
	opt := testOpts(kernel.Quartic, 15)
	exact, _ := Exact(pts, opt)
	approx, err := Sampled(pts, opt, 1, 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := approx.MaxAbsDiff(exact); d > 1e-9 {
		t.Errorf("small dataset should be exact, diff %v", d)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	pts := clusteredPoints(11, 300)
	for _, method := range []struct {
		name string
		f    func(o Options) (*raster.Grid, error)
	}{
		{"naive", func(o Options) (*raster.Grid, error) { return Naive(pts, o) }},
		{"cutoff", func(o Options) (*raster.Grid, error) { return GridCutoff(pts, o) }},
		{"sweep", func(o Options) (*raster.Grid, error) { return SweepLine(pts, o) }},
		{"bounds", func(o Options) (*raster.Grid, error) { return BoundApprox(pts, o, 0.01) }},
	} {
		serial := testOpts(kernel.Quartic, 12)
		parallel := serial
		parallel.Workers = 4
		a, err := method.f(serial)
		if err != nil {
			t.Fatal(err)
		}
		b, err := method.f(parallel)
		if err != nil {
			t.Fatal(err)
		}
		if d, _ := a.MaxAbsDiff(b); d > 1e-9 {
			t.Errorf("%s: parallel differs from serial by %v", method.name, d)
		}
	}
	// Workers < 0 = GOMAXPROCS.
	opt := testOpts(kernel.Quartic, 12)
	opt.Workers = -1
	if _, err := Naive(pts, opt); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeIntegratesToOne(t *testing.T) {
	// A point far from the border: the normalised surface should integrate
	// to ≈ 1 over the raster.
	pts := []geom.Point{{X: 50, Y: 40}}
	opt := Options{
		Kernel:    kernel.MustNew(kernel.Quartic, 10),
		Grid:      geom.NewPixelGrid(box, 200, 160),
		Normalize: true,
	}
	out, err := Exact(pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	cellArea := opt.Grid.CellW() * opt.Grid.CellH()
	integral := out.Sum() * cellArea
	if math.Abs(integral-1) > 0.01 {
		t.Errorf("normalised integral = %v, want ≈1", integral)
	}
}

func TestExactAutoDispatch(t *testing.T) {
	pts := clusteredPoints(12, 200)
	// Exact must agree with Naive for every kernel type.
	for _, kt := range kernel.All() {
		opt := testOpts(kt, 14)
		naive, err := Naive(pts, opt)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := Exact(pts, opt)
		if err != nil {
			t.Fatal(err)
		}
		d, _ := ex.MaxAbsDiff(naive)
		_, peak := naive.MinMax()
		if d > 1e-9*(1+peak) {
			t.Errorf("%v: Exact abs diff %v", kt, d)
		}
	}
}

// Hotspot recovery: the argmax pixel of the KDV surface must fall inside
// the dominant planted cluster (the Figure 1 use case).
func TestHotspotRecovery(t *testing.T) {
	pts := clusteredPoints(13, 2000)
	opt := testOpts(kernel.Quartic, 8)
	out, err := Exact(pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	ix, iy, _ := out.ArgMax()
	hotspot := opt.Grid.Center(ix, iy)
	// The σ=5 cluster at (75,20) has the higher peak intensity
	// (weight/σ²: 1/25 > 2/64), so the argmax must land there.
	if hotspot.Dist(geom.Point{X: 75, Y: 20}) > 10 {
		t.Errorf("hotspot at %v, want near (75,20)", hotspot)
	}
}
