package kde

import (
	"fmt"
	"sort"

	"geostat/internal/geom"
	"geostat/internal/kernel"
	"geostat/internal/raster"
)

// Stream maintains a KDV surface under event insertions and removals — the
// interactive/streaming-KDE use case the paper's §2.2 cites ([67]: live
// visualization of arriving data). Each update scatters (or retracts) one
// kernel footprint: O(footprint) per event, no recomputation of the rest
// of the surface. Finite-support kernels only.
type Stream struct {
	k      kernel.Kernel
	grid   geom.PixelGrid
	values []float64
	count  int
}

// NewStream returns an empty streaming surface.
func NewStream(k kernel.Kernel, grid geom.PixelGrid) (*Stream, error) {
	if k.Bandwidth() <= 0 {
		return nil, fmt.Errorf("kde: kernel not initialised; use kernel.New")
	}
	if !k.FiniteSupport() {
		return nil, fmt.Errorf("kde: streaming requires a finite-support kernel, got %v", k.Type())
	}
	if grid.NX <= 0 || grid.NY <= 0 {
		return nil, fmt.Errorf("kde: grid not initialised")
	}
	return &Stream{k: k, grid: grid, values: make([]float64, grid.NumPixels())}, nil
}

// Count returns the number of live events.
func (s *Stream) Count() int { return s.count }

// Add inserts an event.
func (s *Stream) Add(p geom.Point) {
	s.apply(p, +1)
	s.count++
}

// Remove retracts a previously added event. Removing an event that was
// never added silently corrupts the surface (the stream keeps no event
// log); the sliding-window driver below guarantees matched add/remove.
func (s *Stream) Remove(p geom.Point) {
	s.apply(p, -1)
	s.count--
}

func (s *Stream) apply(p geom.Point, sign float64) {
	b := s.k.Bandwidth()
	colLo, colHi := s.grid.ColRange(p.X, b)
	rowLo, rowHi := s.grid.RowRange(p.Y, b)
	for iy := rowLo; iy < rowHi; iy++ {
		dy := s.grid.CenterY(iy) - p.Y
		dy2 := dy * dy
		base := iy * s.grid.NX
		for ix := colLo; ix < colHi; ix++ {
			dx := s.grid.CenterX(ix) - p.X
			if v := s.k.Eval2(dx*dx + dy2); v != 0 {
				s.values[base+ix] += sign * v
			}
		}
	}
}

// Snapshot returns a copy of the current surface.
func (s *Stream) Snapshot() *raster.Grid {
	return &raster.Grid{Spec: s.grid, Values: append([]float64(nil), s.values...)}
}

// Surface returns the live surface (shared storage; mutated by updates).
func (s *Stream) Surface() *raster.Grid {
	return &raster.Grid{Spec: s.grid, Values: s.values}
}

// WindowStream drives a Stream over a time-ordered event log with a
// sliding window: after Advance(now), the surface holds exactly the events
// with now−width < t ≤ now. This is the live hotspot-map loop: each frame
// advances the clock and renders the snapshot.
type WindowStream struct {
	stream *Stream
	pts    []geom.Point
	times  []float64
	width  float64
	addI   int // next event to add (t <= now)
	remI   int // next event to remove (t <= now-width)
}

// NewWindowStream sorts the events by time and returns a driver with the
// given window width. The input slices are not modified.
func NewWindowStream(k kernel.Kernel, grid geom.PixelGrid, pts []geom.Point, times []float64, width float64) (*WindowStream, error) {
	if len(pts) != len(times) {
		return nil, fmt.Errorf("kde: %d points but %d times", len(pts), len(times))
	}
	if !(width > 0) {
		return nil, fmt.Errorf("kde: window width must be positive, got %g", width)
	}
	s, err := NewStream(k, grid)
	if err != nil {
		return nil, err
	}
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return times[order[a]] < times[order[b]] })
	w := &WindowStream{
		stream: s,
		pts:    make([]geom.Point, len(pts)),
		times:  make([]float64, len(pts)),
		width:  width,
	}
	for i, oi := range order {
		w.pts[i] = pts[oi]
		w.times[i] = times[oi]
	}
	return w, nil
}

// Advance moves the clock forward to now (monotone: rewinding is not
// supported) and updates the surface to the events in (now−width, now].
func (w *WindowStream) Advance(now float64) {
	for w.addI < len(w.pts) && w.times[w.addI] <= now {
		w.stream.Add(w.pts[w.addI])
		w.addI++
	}
	cutoff := now - w.width
	for w.remI < w.addI && w.times[w.remI] <= cutoff {
		w.stream.Remove(w.pts[w.remI])
		w.remI++
	}
}

// Snapshot returns a copy of the current window's surface.
func (w *WindowStream) Snapshot() *raster.Grid { return w.stream.Snapshot() }

// Live returns the number of events currently in the window.
func (w *WindowStream) Live() int { return w.stream.Count() }
