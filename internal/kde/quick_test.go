package kde

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"geostat/internal/geom"
	"geostat/internal/kernel"
)

// Property (testing/quick): for random clouds, bandwidths, and grids, the
// sweep line matches the naive sum to within peak-relative rounding for
// every polynomial kernel. This is the correctness core of the SLAM-style
// algorithm, fuzzed.
func TestQuickSweepMatchesNaive(t *testing.T) {
	f := func(pts []geom.Point, ktIdx uint8, b float64, nx, ny uint8) bool {
		kt := []kernel.Type{kernel.Uniform, kernel.Epanechnikov, kernel.Quartic, kernel.Triweight}[int(ktIdx)%4]
		opt := Options{
			Kernel: kernel.MustNew(kt, 0.5+b*30),
			Grid:   geom.NewPixelGrid(geom.BBox{MinX: 0, MinY: 0, MaxX: 60, MaxY: 40}, int(nx)%30+2, int(ny)%30+2),
		}
		naive, err := Naive(pts, opt)
		if err != nil {
			return false
		}
		sweep, err := SweepLine(pts, opt)
		if err != nil {
			return false
		}
		d, _ := sweep.MaxAbsDiff(naive)
		_, peak := naive.MinMax()
		return d <= 1e-9*(1+peak)
	}
	cfg := &quick.Config{
		MaxCount: 150,
		Values: func(args []reflect.Value, r *rand.Rand) {
			n := r.Intn(120)
			pts := make([]geom.Point, n)
			for i := range pts {
				// Include off-raster points: supports clipped by the grid.
				pts[i] = geom.Point{X: r.Float64()*80 - 10, Y: r.Float64()*60 - 10}
			}
			args[0] = reflect.ValueOf(pts)
			args[1] = reflect.ValueOf(uint8(r.Intn(256)))
			args[2] = reflect.ValueOf(r.Float64())
			args[3] = reflect.ValueOf(uint8(r.Intn(256)))
			args[4] = reflect.ValueOf(uint8(r.Intn(256)))
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: every KDV surface is non-negative and zero-sum iff there are
// no points; GridCutoff always equals Naive for finite-support kernels.
func TestQuickCutoffMatchesNaive(t *testing.T) {
	f := func(pts []geom.Point, ktIdx uint8, b float64) bool {
		finite := []kernel.Type{
			kernel.Uniform, kernel.Triangular, kernel.Epanechnikov,
			kernel.Quartic, kernel.Triweight, kernel.Cosine,
		}
		kt := finite[int(ktIdx)%len(finite)]
		opt := Options{
			Kernel: kernel.MustNew(kt, 0.5+b*25),
			Grid:   geom.NewPixelGrid(geom.BBox{MinX: 0, MinY: 0, MaxX: 50, MaxY: 50}, 17, 13),
		}
		naive, err := Naive(pts, opt)
		if err != nil {
			return false
		}
		for _, v := range naive.Values {
			if v < 0 {
				return false
			}
		}
		cut, err := GridCutoff(pts, opt)
		if err != nil {
			return false
		}
		d, _ := cut.MaxAbsDiff(naive)
		return d <= 1e-9
	}
	cfg := &quick.Config{
		MaxCount: 150,
		Values: func(args []reflect.Value, r *rand.Rand) {
			n := r.Intn(100)
			pts := make([]geom.Point, n)
			for i := range pts {
				pts[i] = geom.Point{X: r.Float64() * 50, Y: r.Float64() * 50}
			}
			args[0] = reflect.ValueOf(pts)
			args[1] = reflect.ValueOf(uint8(r.Intn(256)))
			args[2] = reflect.ValueOf(r.Float64())
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
