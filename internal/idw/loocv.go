package idw

import (
	"fmt"
	"math"

	"geostat/internal/dataset"
	"geostat/internal/index/kdtree"
)

// CVResult summarises a leave-one-out cross-validation: each sample is
// predicted from its k nearest other samples.
type CVResult struct {
	RMSE      float64
	MAE       float64
	Residuals []float64 // predicted − observed, per sample
}

// LOOCV cross-validates kNN-IDW with the given power and neighbourhood,
// the standard way to tune (power, k) without ground truth.
func LOOCV(d *dataset.Dataset, power float64, k int) (*CVResult, error) {
	if !d.HasValues() {
		return nil, fmt.Errorf("idw: dataset has no values")
	}
	if !(power > 0) {
		return nil, fmt.Errorf("idw: power must be positive, got %g", power)
	}
	n := d.N()
	if n < 2 {
		return nil, fmt.Errorf("idw: need at least 2 samples, got %d", n)
	}
	if k <= 0 || k > n-1 {
		k = n - 1
	}
	pts := d.Points()
	vals := d.Values()
	tree := kdtree.New(pts)
	res := &CVResult{Residuals: make([]float64, n)}
	for i, p := range pts {
		idx, d2 := tree.KNearest(p, k+1, nil)
		num, den := 0.0, 0.0
		exact := math.NaN()
		taken := 0
		for j, id := range idx {
			if id == i {
				continue
			}
			if taken == k {
				break
			}
			taken++
			if d2[j] < epsCoincident {
				exact = vals[id] // duplicate site: its twin's value
				break
			}
			w := weight(d2[j], power)
			num += w * vals[id]
			den += w
		}
		var pred float64
		switch {
		case !math.IsNaN(exact):
			pred = exact
		case den > 0:
			pred = num / den
		default:
			return nil, fmt.Errorf("idw: LOOCV at sample %d: no usable neighbours", i)
		}
		res.Residuals[i] = pred - vals[i]
	}
	var sq, ab float64
	for _, r := range res.Residuals {
		sq += r * r
		ab += math.Abs(r)
	}
	res.RMSE = math.Sqrt(sq / float64(n))
	res.MAE = ab / float64(n)
	return res, nil
}
