// Package idw implements inverse distance weighting interpolation (Table 1
// of the paper, Bartier & Keller [20]): each pixel q is interpolated as
//
//	Z(q) = Σ_i w_i·z_i / Σ_i w_i,   w_i = 1/dist(q, p_i)^power
//
// A pixel coincident with a sample takes that sample's value exactly.
//
// Variants (the §2.4 acceleration opportunity, realised):
//
//   - Naive: all n samples per pixel — the O(XYn) cost [20] quotes.
//   - KNN: only the k nearest samples (kd-tree), the common GIS default.
//   - Radius: only samples within a cutoff radius (grid index); pixels with
//     no sample in range fall back to the nearest sample.
package idw

import (
	"context"
	"fmt"
	"math"

	"geostat/internal/dataset"
	"geostat/internal/geom"
	gridindex "geostat/internal/index/grid"
	"geostat/internal/index/kdtree"
	"geostat/internal/parallel"
	"geostat/internal/raster"
)

// Options configures IDW interpolation.
type Options struct {
	// Grid is the output raster.
	Grid geom.PixelGrid
	// Power is the distance exponent (2 is the near-universal default; set
	// explicitly, 0 is rejected).
	Power float64
	// Workers parallelises rows; 0/1 serial, <0 GOMAXPROCS.
	Workers int
	// Ctx optionally bounds the computation: workers check it between row
	// chunks and the entry point returns ctx.Err() (with a nil grid) when
	// it fires. Nil means no cancellation.
	Ctx context.Context
}

// context returns the effective context of the computation.
func (o *Options) context() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

func (o *Options) validate(d *dataset.Dataset) error {
	if o.Grid.NX <= 0 || o.Grid.NY <= 0 {
		return fmt.Errorf("idw: grid not initialised")
	}
	if !(o.Power > 0) {
		return fmt.Errorf("idw: Power must be positive, got %g", o.Power)
	}
	if !d.HasValues() {
		return fmt.Errorf("idw: dataset has no values to interpolate")
	}
	if d.N() == 0 {
		return fmt.Errorf("idw: empty dataset")
	}
	return nil
}

// epsCoincident is the squared distance below which a pixel is treated as
// coincident with a sample and takes its value exactly (avoids 1/0).
const epsCoincident = 1e-18

// Naive interpolates every pixel from every sample: O(XYn). The inner loop
// streams the dataset's coordinate columns with the power specialised
// outside the loop, in sample order — results are bit-identical to the
// array-of-structs loop it replaces.
func Naive(d *dataset.Dataset, opt Options) (*raster.Grid, error) {
	if err := opt.validate(d); err != nil {
		return nil, err
	}
	cols := d.Columns()
	vals := d.Values()
	return runRows(&opt, func(iy int, row []float64) {
		qy := opt.Grid.CenterY(iy)
		for ix := range row {
			row[ix] = naivePixel(cols.X, cols.Y, vals, opt.Grid.CenterX(ix), qy, opt.Power)
		}
	})
}

// naivePixel interpolates one pixel from every sample. A sample coincident
// with the pixel short-circuits with its value (first coincident sample
// wins, matching scan order).
//
//lint:hotpath per-pixel inner loop; callees must not allocate
func naivePixel(xs, ys, vals []float64, qx, qy, power float64) float64 {
	num, den := 0.0, 0.0
	switch power {
	case 2:
		for i, x := range xs {
			dx := x - qx
			dy := ys[i] - qy
			d2 := dx*dx + dy*dy
			if d2 < epsCoincident {
				return vals[i]
			}
			w := 1 / d2
			num += w * vals[i]
			den += w
		}
	case 4:
		for i, x := range xs {
			dx := x - qx
			dy := ys[i] - qy
			d2 := dx*dx + dy*dy
			if d2 < epsCoincident {
				return vals[i]
			}
			w := 1 / (d2 * d2)
			num += w * vals[i]
			den += w
		}
	default:
		for i, x := range xs {
			dx := x - qx
			dy := ys[i] - qy
			d2 := dx*dx + dy*dy
			if d2 < epsCoincident {
				return vals[i]
			}
			w := math.Pow(d2, -power/2)
			num += w * vals[i]
			den += w
		}
	}
	return num / den
}

// KNN interpolates each pixel from its k nearest samples.
func KNN(d *dataset.Dataset, opt Options, k int) (*raster.Grid, error) {
	if err := opt.validate(d); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("idw: k must be >= 1, got %d", k)
	}
	tree := kdtree.New(d.Points())
	vals := d.Values()
	return runRows(&opt, func(iy int, row []float64) {
		qy := opt.Grid.CenterY(iy)
		var scratch []int
		for ix := range row {
			q := geom.Point{X: opt.Grid.CenterX(ix), Y: qy}
			idx, d2 := tree.KNearest(q, k, scratch)
			scratch = idx
			num, den := 0.0, 0.0
			exact := math.NaN()
			for j, i := range idx {
				if d2[j] < epsCoincident {
					exact = vals[i]
					break
				}
				w := weight(d2[j], opt.Power)
				num += w * vals[i]
				den += w
			}
			if !math.IsNaN(exact) {
				row[ix] = exact
			} else {
				row[ix] = num / den
			}
		}
	})
}

// Radius interpolates each pixel from the samples within radius; a pixel
// with no in-range sample falls back to its nearest sample's value.
func Radius(d *dataset.Dataset, opt Options, radius float64) (*raster.Grid, error) {
	if err := opt.validate(d); err != nil {
		return nil, err
	}
	if !(radius > 0) {
		return nil, fmt.Errorf("idw: radius must be positive, got %g", radius)
	}
	pts := d.Points()
	idx := gridindex.New(pts, radius)
	tree := kdtree.New(pts) // fallback nearest
	xs, ys, ids := idx.Columns()
	vals := d.Values()
	r2 := radius * radius
	return runRows(&opt, func(iy int, row []float64) {
		qy := opt.Grid.CenterY(iy)
		for ix := range row {
			qx := opt.Grid.CenterX(ix)
			q := geom.Point{X: qx, Y: qy}
			cx0, cx1, cy0, cy1 := idx.CellSpan(q, radius)
			num, den := 0.0, 0.0
			exact := math.NaN()
			for cy := cy0; cy <= cy1; cy++ {
				for cx := cx0; cx <= cx1; cx++ {
					lo, hi := idx.Cell(cx, cy)
					for j := lo; j < hi; j++ {
						dx := xs[j] - qx
						dy := ys[j] - qy
						d2 := dx*dx + dy*dy
						if d2 > r2 {
							continue
						}
						if d2 < epsCoincident {
							exact = vals[ids[j]]
							continue
						}
						w := weight(d2, opt.Power)
						num += w * vals[ids[j]]
						den += w
					}
				}
			}
			switch {
			case !math.IsNaN(exact):
				row[ix] = exact
			case den > 0:
				row[ix] = num / den
			default:
				i, _ := tree.Nearest(q)
				row[ix] = vals[i]
			}
		}
	})
}

// weight computes 1/dist^power from a squared distance, avoiding the sqrt
// for the common even powers.
func weight(d2, power float64) float64 {
	switch power {
	case 2:
		return 1 / d2
	case 4:
		return 1 / (d2 * d2)
	default:
		return math.Pow(d2, -power/2)
	}
}

func runRows(opt *Options, rowFn func(iy int, row []float64)) (*raster.Grid, error) {
	out := raster.NewGrid(opt.Grid)
	nx, ny := opt.Grid.NX, opt.Grid.NY
	if err := parallel.ForCtx(opt.context(), ny, opt.Workers, func(iy int) {
		rowFn(iy, out.Values[iy*nx:(iy+1)*nx])
	}); err != nil {
		return nil, err
	}
	return out, nil
}
