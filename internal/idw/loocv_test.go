package idw

import (
	"math"
	"math/rand"
	"testing"

	"geostat/internal/dataset"
	"geostat/internal/geom"
)

func TestLOOCVSmoothFieldLowError(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	d := dataset.UniformCSR(r, 1500, box)
	f := func(p geom.Point) float64 { return p.X/10 + math.Sin(p.Y/12) }
	dataset.WithField(r, d, f, 0)
	cv, err := LOOCV(d, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(cv.Residuals) != d.N() {
		t.Fatalf("residuals = %d", len(cv.Residuals))
	}
	if cv.RMSE > 0.25 {
		t.Errorf("RMSE %v too high for a dense smooth field", cv.RMSE)
	}
	if cv.MAE > cv.RMSE {
		t.Errorf("MAE %v > RMSE %v", cv.MAE, cv.RMSE)
	}
}

// LOOCV must prefer a sensible k: on noisy data, k=1 overfits relative to
// a moderate k.
func TestLOOCVTunesK(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	d := dataset.UniformCSR(r, 800, box)
	dataset.WithField(r, d, func(p geom.Point) float64 { return p.X / 10 }, 1.0)
	cv1, err := LOOCV(d, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	cv12, err := LOOCV(d, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	if cv12.RMSE >= cv1.RMSE {
		t.Errorf("k=12 RMSE %v should beat k=1 RMSE %v on noisy data", cv12.RMSE, cv1.RMSE)
	}
}

func TestLOOCVValidation(t *testing.T) {
	d := field(3, 50)
	if _, err := LOOCV(dataset.FromPoints(d.Points()), 2, 5); err == nil {
		t.Error("valueless dataset accepted")
	}
	if _, err := LOOCV(d, 0, 5); err == nil {
		t.Error("zero power accepted")
	}
	one, err := dataset.New([]geom.Point{{X: 1, Y: 1}}, nil, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LOOCV(one, 2, 5); err == nil {
		t.Error("single sample accepted")
	}
	// k clamped to n-1.
	if _, err := LOOCV(d, 2, 1000); err != nil {
		t.Errorf("oversized k: %v", err)
	}
}

func TestLOOCVDuplicateSites(t *testing.T) {
	d, derr := dataset.New([]geom.Point{{X: 1, Y: 1}, {X: 1, Y: 1}, {X: 5, Y: 5}}, nil, []float64{7, 7, 2})
	if derr != nil {
		t.Fatal(derr)
	}
	cv, err := LOOCV(d, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The duplicate pair predicts each other exactly.
	if cv.Residuals[0] != 0 || cv.Residuals[1] != 0 {
		t.Errorf("duplicate residuals = %v", cv.Residuals[:2])
	}
}
