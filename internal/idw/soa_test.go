package idw

import (
	"math"
	"math/rand"
	"testing"

	"geostat/internal/dataset"
	"geostat/internal/geom"
)

// aosReference interpolates one pixel the pre-columnar way: a single
// array-of-structs pass in sample order, replicating naivePixel's
// arithmetic (including the coincident short-circuit) term for term.
func aosReference(pts []geom.Point, vals []float64, qx, qy, power float64) float64 {
	num, den := 0.0, 0.0
	for i, p := range pts {
		dx := p.X - qx
		dy := p.Y - qy
		d2 := dx*dx + dy*dy
		if d2 < epsCoincident {
			return vals[i]
		}
		w := weight(d2, power)
		num += w * vals[i]
		den += w
	}
	return num / den
}

func TestNaiveColumnarBitIdentity(t *testing.T) {
	// The columnar Naive loop must reproduce the array-of-structs loop bit
	// for bit, across the specialised powers (2, 4) and the math.Pow
	// fallback, serial and parallel.
	r := rand.New(rand.NewSource(21))
	n := 9000 // several storage chunks
	pts := make([]geom.Point, n)
	vals := make([]float64, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Float64() * 100, Y: r.Float64() * 80}
		vals[i] = r.NormFloat64()*5 + 20
	}
	d, err := dataset.New(pts, nil, vals)
	if err != nil {
		t.Fatal(err)
	}
	box := geom.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 80}
	for _, power := range []float64{2, 4, 3.5} {
		for _, workers := range []int{1, 4} {
			opt := Options{Grid: geom.NewPixelGrid(box, 16, 12), Power: power, Workers: workers}
			got, err := Naive(d, opt)
			if err != nil {
				t.Fatal(err)
			}
			for iy := 0; iy < opt.Grid.NY; iy++ {
				for ix := 0; ix < opt.Grid.NX; ix++ {
					q := opt.Grid.Center(ix, iy)
					want := aosReference(pts, vals, q.X, q.Y, power)
					if math.Float64bits(got.At(ix, iy)) != math.Float64bits(want) {
						t.Fatalf("power=%v workers=%d: pixel (%d,%d) = %v, want %v",
							power, workers, ix, iy, got.At(ix, iy), want)
					}
				}
			}
		}
	}
}

func TestRadiusMatchesMaskedReference(t *testing.T) {
	// Radius streams the grid index's cell-ordered columns; the reference
	// masks the plain sample list to the disc. Cell order differs from
	// sample order, so equality is numeric (1e-12 relative), not bitwise.
	r := rand.New(rand.NewSource(22))
	n := 5000
	pts := make([]geom.Point, n)
	vals := make([]float64, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Float64() * 100, Y: r.Float64() * 80}
		vals[i] = r.NormFloat64()*5 + 20
	}
	d, err := dataset.New(pts, nil, vals)
	if err != nil {
		t.Fatal(err)
	}
	box := geom.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 80}
	radius := 6.0
	opt := Options{Grid: geom.NewPixelGrid(box, 16, 12), Power: 2}
	got, err := Radius(d, opt, radius)
	if err != nil {
		t.Fatal(err)
	}
	r2 := radius * radius
	for iy := 0; iy < opt.Grid.NY; iy++ {
		for ix := 0; ix < opt.Grid.NX; ix++ {
			q := opt.Grid.Center(ix, iy)
			num, den := 0.0, 0.0
			for i, p := range pts {
				d2 := p.Dist2(q)
				if d2 > r2 || d2 < epsCoincident {
					continue
				}
				w := weight(d2, opt.Power)
				num += w * vals[i]
				den += w
			}
			if den == 0 {
				continue // nearest-sample fallback; covered elsewhere
			}
			want := num / den
			if diff := math.Abs(got.At(ix, iy) - want); diff > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("pixel (%d,%d) = %v, want %v (diff %v)", ix, iy, got.At(ix, iy), want, diff)
			}
		}
	}
}
