package idw

import (
	"math"
	"math/rand"
	"testing"

	"geostat/internal/dataset"
	"geostat/internal/geom"
)

var box = geom.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}

func field(seed int64, n int) *dataset.Dataset {
	r := rand.New(rand.NewSource(seed))
	d := dataset.UniformCSR(r, n, box)
	return dataset.WithField(r, d, func(p geom.Point) float64 {
		return math.Sin(p.X/20) + p.Y/50
	}, 0.01)
}

// mk builds a valued dataset, failing the test on constructor error.
func mk(t *testing.T, pts []geom.Point, values []float64) *dataset.Dataset {
	t.Helper()
	d, err := dataset.New(pts, nil, values)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func opts() Options {
	return Options{Grid: geom.NewPixelGrid(box, 20, 20), Power: 2}
}

func TestValidation(t *testing.T) {
	d := field(1, 50)
	if _, err := Naive(d, Options{Grid: geom.NewPixelGrid(box, 4, 4)}); err == nil {
		t.Error("zero power accepted")
	}
	if _, err := Naive(d, Options{Power: 2}); err == nil {
		t.Error("zero grid accepted")
	}
	noVals := dataset.FromPoints(d.Points())
	if _, err := Naive(noVals, opts()); err == nil {
		t.Error("valueless dataset accepted")
	}
	if _, err := Naive(mk(t, nil, []float64{}), opts()); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := KNN(d, opts(), 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Radius(d, opts(), 0); err == nil {
		t.Error("radius=0 accepted")
	}
}

func TestSingleSampleConstantSurface(t *testing.T) {
	d := mk(t, []geom.Point{{X: 50, Y: 50}}, []float64{7.5})
	out, err := Naive(d, opts())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out.Values {
		if math.Abs(v-7.5) > 1e-12 {
			t.Fatalf("value %v, want 7.5 everywhere", v)
		}
	}
}

func TestWeightedAverageProperties(t *testing.T) {
	d := field(2, 200)
	out, err := Naive(d, opts())
	if err != nil {
		t.Fatal(err)
	}
	// IDW is a convex combination: every pixel within [min z, max z].
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, z := range d.Values() {
		lo = math.Min(lo, z)
		hi = math.Max(hi, z)
	}
	for i, v := range out.Values {
		if v < lo-1e-9 || v > hi+1e-9 {
			t.Fatalf("pixel %d = %v outside sample range [%v, %v]", i, v, lo, hi)
		}
	}
}

func TestExactAtSampleLocations(t *testing.T) {
	// Place a sample exactly at a pixel center.
	g := geom.NewPixelGrid(box, 20, 20)
	q := g.Center(7, 3)
	d := mk(t, []geom.Point{q, {X: 10, Y: 90}}, []float64{42, -1})
	o := opts()
	for name, f := range map[string]func() (interface{ At(int, int) float64 }, error){
		"naive":  func() (interface{ At(int, int) float64 }, error) { return Naive(d, o) },
		"knn":    func() (interface{ At(int, int) float64 }, error) { return KNN(d, o, 2) },
		"radius": func() (interface{ At(int, int) float64 }, error) { return Radius(d, o, 30) },
	} {
		out, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := out.At(7, 3); got != 42 {
			t.Errorf("%s: value at sample pixel = %v, want 42", name, got)
		}
	}
}

func TestKNNWithLargeKMatchesNaive(t *testing.T) {
	d := field(3, 150)
	o := opts()
	naive, err := Naive(d, o)
	if err != nil {
		t.Fatal(err)
	}
	knn, err := KNN(d, o, d.N()) // k = n: identical to naive
	if err != nil {
		t.Fatal(err)
	}
	diff, err := knn.MaxAbsDiff(naive)
	if err != nil {
		t.Fatal(err)
	}
	if diff > 1e-9 {
		t.Errorf("KNN(k=n) differs from Naive by %v", diff)
	}
}

func TestRadiusCoversAllMatchesNaive(t *testing.T) {
	d := field(4, 150)
	o := opts()
	naive, _ := Naive(d, o)
	rad, err := Radius(d, o, 1000) // radius covers everything
	if err != nil {
		t.Fatal(err)
	}
	diff, _ := rad.MaxAbsDiff(naive)
	if diff > 1e-9 {
		t.Errorf("Radius(∞) differs from Naive by %v", diff)
	}
}

func TestRadiusFallbackNearest(t *testing.T) {
	// Two distant samples, tiny radius: most pixels have no in-range sample
	// and must take their nearest sample's value.
	d := mk(t, []geom.Point{{X: 0, Y: 0}, {X: 100, Y: 100}}, []float64{1, 9})
	out, err := Radius(d, opts(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.At(0, 0); got != 1 {
		t.Errorf("bottom-left = %v, want 1", got)
	}
	if got := out.At(19, 19); got != 9 {
		t.Errorf("top-right = %v, want 9", got)
	}
	for _, v := range out.Values {
		if v != 1 && v != 9 {
			t.Fatalf("fallback produced interpolated value %v", v)
		}
	}
}

func TestFieldRecovery(t *testing.T) {
	// Dense noiseless samples of a smooth field: interpolation error small.
	r := rand.New(rand.NewSource(5))
	d := dataset.UniformCSR(r, 3000, box)
	f := func(p geom.Point) float64 { return p.X/10 + math.Cos(p.Y/15) }
	dataset.WithField(r, d, f, 0)
	o := opts()
	out, err := KNN(d, o, 12)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for iy := 0; iy < o.Grid.NY; iy++ {
		for ix := 0; ix < o.Grid.NX; ix++ {
			want := f(o.Grid.Center(ix, iy))
			if e := math.Abs(out.At(ix, iy) - want); e > worst {
				worst = e
			}
		}
	}
	if worst > 0.5 {
		t.Errorf("worst interpolation error %v", worst)
	}
}

func TestOddPower(t *testing.T) {
	d := field(6, 100)
	o := opts()
	o.Power = 3
	if _, err := Naive(d, o); err != nil {
		t.Fatal(err)
	}
	if w := weight(4, 3); math.Abs(w-1.0/8) > 1e-12 {
		t.Errorf("weight(4,3) = %v, want 1/8", w)
	}
	if w := weight(4, 4); w != 1.0/16 {
		t.Errorf("weight(4,4) = %v, want 1/16", w)
	}
	if w := weight(4, 2); w != 0.25 {
		t.Errorf("weight(4,2) = %v, want 0.25", w)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	d := field(7, 300)
	o := opts()
	serial, _ := Naive(d, o)
	o.Workers = 4
	par, err := Naive(d, o)
	if err != nil {
		t.Fatal(err)
	}
	if diff, _ := serial.MaxAbsDiff(par); diff > 0 {
		t.Errorf("parallel differs by %v", diff)
	}
	o.Workers = -1
	if _, err := KNN(d, o, 5); err != nil {
		t.Fatal(err)
	}
}
