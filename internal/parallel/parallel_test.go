package parallel

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != 1 {
		t.Errorf("Workers(0) = %d, want 1", got)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d, want 5", got)
	}
	if got := Workers(-1); got < 1 {
		t.Errorf("Workers(-1) = %d, want >= 1", got)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1000} {
		for _, w := range []int{0, 1, 3, 8, 200} {
			hits := make([]int32, n)
			For(n, w, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d w=%d: index %d ran %d times", n, w, i, h)
				}
			}
		}
	}
}

func TestForRangeCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1000} {
		for _, w := range []int{1, 4, 16} {
			hits := make([]int32, n)
			ForRange(n, w, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("bad range [%d, %d) for n=%d", lo, hi, n)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d w=%d: index %d ran %d times", n, w, i, h)
				}
			}
		}
	}
}

func TestForScratchReusesPerWorkerScratch(t *testing.T) {
	const n = 500
	var created atomic.Int32
	results := make([]int, n)
	scratches := ForScratch(n, 4, func() *int {
		created.Add(1)
		v := 0
		return &v
	}, func(s *int, i int) {
		*s++ // per-worker tally
		results[i] = i * i
	})
	if int(created.Load()) != len(scratches) {
		t.Errorf("created %d scratches but %d returned", created.Load(), len(scratches))
	}
	if len(scratches) == 0 || len(scratches) > 4 {
		t.Errorf("want 1..4 scratches, got %d", len(scratches))
	}
	total := 0
	for _, s := range scratches {
		total += *s
	}
	if total != n {
		t.Errorf("scratch tallies sum to %d, want %d", total, n)
	}
	for i, v := range results {
		if v != i*i {
			t.Fatalf("results[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestForScratchSerialSingleScratch(t *testing.T) {
	scr := ForScratch(10, 1, func() int { return 7 }, func(int, int) {})
	if len(scr) != 1 || scr[0] != 7 {
		t.Errorf("serial ForScratch scratches = %v, want [7]", scr)
	}
	if got := ForScratch(0, 4, func() int { return 7 }, func(int, int) {}); len(got) != 0 {
		t.Errorf("n=0 created %d scratches, want 0", len(got))
	}
}

func TestTaskSeedDistinctAndStable(t *testing.T) {
	seen := make(map[int64]int)
	for i := 0; i < 10000; i++ {
		s := TaskSeed(42, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("TaskSeed collision: tasks %d and %d both map to %d", prev, i, s)
		}
		seen[s] = i
	}
	if TaskSeed(42, 7) != TaskSeed(42, 7) {
		t.Error("TaskSeed is not a pure function")
	}
	if TaskSeed(42, 7) == TaskSeed(43, 7) {
		t.Error("TaskSeed ignores the base seed")
	}
}

// The core determinism contract: Monte-Carlo results indexed by task are
// bit-identical regardless of worker count.
func TestMonteCarloWorkerCountInvariant(t *testing.T) {
	const n = 200
	run := func(workers int) []float64 {
		out := make([]float64, n)
		MonteCarlo(n, workers, 99, func(rng *rand.Rand, i int) {
			out[i] = rng.Float64() + float64(rng.Intn(10))
		})
		return out
	}
	want := run(1)
	for _, w := range []int{2, 3, 8, 64} {
		got := run(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: task %d drew %v, serial drew %v", w, i, got[i], want[i])
			}
		}
	}
}

func TestMonteCarloScratchWorkerCountInvariant(t *testing.T) {
	const n, vals = 100, 50
	base := make([]float64, vals)
	for i := range base {
		base[i] = float64(i)
	}
	run := func(workers int) []float64 {
		out := make([]float64, n)
		MonteCarloScratch(n, workers, 7,
			func() []float64 { return make([]float64, vals) },
			func(rng *rand.Rand, buf []float64, i int) {
				copy(buf, base)
				rng.Shuffle(vals, func(a, b int) { buf[a], buf[b] = buf[b], buf[a] })
				s := 0.0
				for j, v := range buf {
					s += v * float64(j%3)
				}
				out[i] = s
			})
		return out
	}
	want := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: task %d = %v, serial = %v", w, i, got[i], want[i])
			}
		}
	}
}

func BenchmarkForOverhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		For(1000, -1, func(int) {})
	}
}
