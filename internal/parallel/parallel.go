// Package parallel is the repository's single goroutine execution engine
// (the parallel/hardware family of §2.2–§2.3 of the paper, realised for
// multicore CPUs).
//
// Every analytics package schedules its data-parallel loops through this
// package instead of hand-rolling WaitGroup shims. The engine provides:
//
//   - For / ForRange: chunked DYNAMIC scheduling. Workers pull the next
//     chunk from an atomic counter, so skewed iteration costs (e.g. bounded
//     Dijkstras with wildly different ball sizes in NKDV) rebalance instead
//     of leaving statically-sharded workers idle.
//   - ForScratch: a generic variant that hands each worker a lazily-built
//     reusable scratch value (Dijkstra engines, permutation buffers, local
//     histograms), killing per-iteration allocation. The created scratches
//     are returned so callers can merge partial results.
//   - TaskSeed / MonteCarlo / MonteCarloScratch: deterministic Monte-Carlo
//     fan-out. Task i draws from a rand.Rand seeded by a splitmix64 mix of
//     (seed, i), so permutation tests and envelope simulations are
//     bit-identical for EVERY worker count — parallelism never changes a
//     p-value.
//   - ForCtx / ForRangeCtx / ForScratchCtx / MonteCarloCtx /
//     MonteCarloScratchCtx: the same loops with cooperative cancellation.
//     Workers check the context between chunks and the call returns
//     ctx.Err() as soon as every in-flight chunk finishes, which is what
//     lets a serving layer abandon a heavy raster when the client hangs
//     up (see ctx.go for the exact contract).
package parallel

import (
	"context"
	"runtime"
)

// Workers normalises a worker-count option: w < 0 means GOMAXPROCS, 0 means
// serial (1), any other value is used as-is.
func Workers(w int) int {
	switch {
	case w < 0:
		return runtime.GOMAXPROCS(0)
	case w == 0:
		return 1
	default:
		return w
	}
}

// chunkSize picks the dynamic-scheduling grain: small enough that skewed
// iterations rebalance (targeting ≥ ~32 chunks per worker), large enough to
// amortise the atomic fetch over cheap iterations.
func chunkSize(n, workers int) int {
	c := n / (workers * 32)
	if c < 1 {
		return 1
	}
	if c > 256 {
		return 256
	}
	return c
}

// For runs fn(i) for every i in [0, n) across the given number of workers
// (see Workers for the convention) with chunked dynamic scheduling. It
// returns once every iteration has completed. Iterations must be
// independent; fn is called concurrently from multiple goroutines.
func For(n, workers int, fn func(i int)) {
	// Background is never cancelled, so the error is structurally nil.
	_ = ForCtx(context.Background(), n, workers, fn)
}

// ForRange is For with the chunk boundaries exposed: fn(lo, hi) processes
// the half-open range [lo, hi). Use it for tight per-element loops (pixel
// fills, histogram scans) where a closure call per element would dominate.
func ForRange(n, workers int, fn func(lo, hi int)) {
	_ = ForRangeCtx(context.Background(), n, workers, fn)
}

// ForScratch runs fn(scratch, i) for every i in [0, n) with dynamic
// scheduling, handing each worker a lazily-built scratch value S created by
// newScratch on the worker's first iteration. It returns the scratches that
// were actually created (at most min(workers, n), fewer if some workers
// never won a chunk) so callers can merge per-worker partial results. The
// order of the returned scratches is unspecified — merges must be
// order-insensitive (integer sums, min/max) when bit-reproducibility across
// worker counts is required.
func ForScratch[S any](n, workers int, newScratch func() S, fn func(s S, i int)) []S {
	scratches, _ := ForScratchCtx(context.Background(), n, workers, newScratch, fn)
	return scratches
}
