package parallel

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"

	"geostat/internal/obs"
)

// This file holds the context-aware core of the engine. Every legacy entry
// point (For, ForRange, ForScratch, MonteCarlo, MonteCarloScratch) is a
// thin wrapper over its *Ctx counterpart with context.Background().
//
// Cancellation contract:
//
//   - Workers check ctx between chunks, never mid-chunk: an fn that has
//     started always runs to completion, so callers never observe a
//     half-written iteration. The check granularity is chunkSize (≤ 256
//     iterations), bounding the latency between cancellation and return.
//   - On cancellation the *Ctx functions drain immediately — remaining
//     chunks are abandoned, every in-flight chunk finishes, all worker
//     goroutines exit, and ctx.Err() (context.Canceled or
//     context.DeadlineExceeded) is returned. They never deadlock and never
//     leak a goroutine.
//   - A non-nil error means the result is PARTIAL: callers must discard
//     any output buffers fn wrote into (and any scratches returned).
//   - A nil ctx is treated as context.Background(), so library code can
//     thread an optional ctx without nil checks.

// bg normalises a possibly-nil context.
func bg(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// trace opens one obs span per engine invocation (never per chunk — the
// cancellation checks stay allocation-free) annotated with the loop shape.
// When no trace is active in ctx this is a single context-value lookup and
// the returned span is a nil no-op, keeping the uninstrumented hot path
// within noise of the pre-obs engine.
func trace(ctx context.Context, name string, n, workers, chunk int) (context.Context, *obs.Span) {
	ctx, span := obs.Trace(ctx, name)
	if span != nil {
		span.SetAttrInt("n", int64(n))
		span.SetAttrInt("workers", int64(workers))
		span.SetAttrInt("chunk", int64(chunk))
	}
	return ctx, span
}

// ForCtx is For with cooperative cancellation: fn(i) runs for every i in
// [0, n) unless ctx is cancelled first, in which case remaining chunks are
// abandoned and ctx.Err() is returned. See the file-level contract.
func ForCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	ctx = bg(ctx)
	nw := Workers(workers)
	if nw > n {
		nw = n
	}
	var span *obs.Span
	if nw <= 1 {
		chunk := chunkSize(n, 1)
		ctx, span = trace(ctx, "parallel.for", n, 1, chunk)
		defer span.End()
		for lo := 0; lo < n; lo += chunk {
			if err := ctx.Err(); err != nil {
				return err
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}
		return nil
	}
	chunk := chunkSize(n, nw)
	ctx, span = trace(ctx, "parallel.for", n, nw, chunk)
	defer span.End()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// ForRangeCtx is ForRange with cooperative cancellation (see ForCtx).
func ForRangeCtx(ctx context.Context, n, workers int, fn func(lo, hi int)) error {
	ctx = bg(ctx)
	nw := Workers(workers)
	if nw > n {
		nw = n
	}
	var span *obs.Span
	if nw <= 1 {
		chunk := chunkSize(n, 1)
		ctx, span = trace(ctx, "parallel.for_range", n, 1, chunk)
		defer span.End()
		for lo := 0; lo < n; lo += chunk {
			if err := ctx.Err(); err != nil {
				return err
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
		return nil
	}
	chunk := chunkSize(n, nw)
	ctx, span = trace(ctx, "parallel.for_range", n, nw, chunk)
	defer span.End()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// ForScratchCtx is ForScratch with cooperative cancellation. On a non-nil
// error the returned scratches hold partial state and must be discarded.
func ForScratchCtx[S any](ctx context.Context, n, workers int, newScratch func() S, fn func(s S, i int)) ([]S, error) {
	ctx = bg(ctx)
	nw := Workers(workers)
	if nw > n {
		nw = n
	}
	var span *obs.Span
	if nw <= 1 {
		if n == 0 {
			return nil, ctx.Err()
		}
		var s S
		created := false
		chunk := chunkSize(n, 1)
		ctx, span = trace(ctx, "parallel.for_scratch", n, 1, chunk)
		defer span.End()
		for lo := 0; lo < n; lo += chunk {
			if err := ctx.Err(); err != nil {
				if !created {
					return nil, err
				}
				return []S{s}, err
			}
			if !created {
				s = newScratch()
				created = true
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				fn(s, i)
			}
		}
		return []S{s}, nil
	}
	chunk := chunkSize(n, nw)
	ctx, span = trace(ctx, "parallel.for_scratch", n, nw, chunk)
	defer span.End()
	var next atomic.Int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	scratches := make([]S, 0, nw)
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var s S
			created := false
			for ctx.Err() == nil {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					break
				}
				if !created {
					s = newScratch()
					created = true
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(s, i)
				}
			}
			if created {
				mu.Lock()
				scratches = append(scratches, s)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return scratches, ctx.Err()
}

// MonteCarloCtx is MonteCarlo with cooperative cancellation: tasks that ran
// are bit-identical to an uncancelled run, but on a non-nil error an
// unspecified subset of tasks never ran, so per-task outputs must be
// discarded.
func MonteCarloCtx(ctx context.Context, n, workers int, seed int64, fn func(rng *rand.Rand, i int)) error {
	ctx, span := obs.Trace(bg(ctx), "parallel.monte_carlo")
	defer span.End()
	_, err := ForScratchCtx(ctx, n, workers,
		func() *rand.Rand { return rand.New(rand.NewSource(1)) },
		func(rng *rand.Rand, i int) {
			rng.Seed(TaskSeed(seed, i))
			fn(rng, i)
		})
	return err
}

// MonteCarloScratchCtx is MonteCarloScratch with cooperative cancellation
// (see MonteCarloCtx for the partial-result contract).
func MonteCarloScratchCtx[S any](ctx context.Context, n, workers int, seed int64, newScratch func() S, fn func(rng *rand.Rand, s S, i int)) ([]S, error) {
	ctx, span := obs.Trace(bg(ctx), "parallel.monte_carlo")
	defer span.End()
	ms, err := ForScratchCtx(ctx, n, workers,
		func() *mcScratch[S] {
			return &mcScratch[S]{rng: rand.New(rand.NewSource(1)), s: newScratch()}
		},
		func(m *mcScratch[S], i int) {
			m.rng.Seed(TaskSeed(seed, i))
			fn(m.rng, m.s, i)
		})
	out := make([]S, len(ms))
	for i, m := range ms {
		out[i] = m.s
	}
	return out, err
}
