package parallel

import (
	"context"
	"math/rand"
)

// NewRand returns a rand.Rand over a source seeded with seed. This is the
// repository's single RNG constructor: every generator in production code
// is built here (or per-task via MonteCarlo/TaskRand), so a recorded seed
// always reproduces a run bit-for-bit. The geolint seededrand analyzer
// enforces this — rand.New and the math/rand globals are flagged outside
// this package.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// TaskSeed derives the RNG seed of Monte-Carlo task i from a base seed via
// a splitmix64 mix. Adjacent task indices map to statistically independent
// streams, and the mapping depends only on (seed, i) — never on which
// worker runs the task — which is what makes parallel permutation tests
// bit-identical across worker counts.
func TaskSeed(seed int64, i int) int64 {
	z := uint64(seed) + (uint64(i)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// TaskRand returns a fresh rand.Rand for Monte-Carlo task i of the given
// base seed. Prefer MonteCarlo/MonteCarloScratch in loops — they reuse one
// generator per worker instead of allocating one per task.
func TaskRand(seed int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(TaskSeed(seed, i)))
}

// MonteCarlo runs fn(rng, i) for every task i in [0, n), where rng is
// deterministically seeded from (seed, i). Results indexed by i (sample
// slots, envelope min/max merges, integer histograms) are bit-identical
// for every worker count. Each worker reuses a single generator, re-seeded
// per task, so the fan-out does not allocate per iteration.
func MonteCarlo(n, workers int, seed int64, fn func(rng *rand.Rand, i int)) {
	_ = MonteCarloCtx(context.Background(), n, workers, seed, fn)
}

// mcScratch pairs the per-worker generator with a caller scratch value.
type mcScratch[S any] struct {
	rng *rand.Rand
	s   S
}

// MonteCarloScratch is MonteCarlo with an additional per-worker scratch
// value (permutation buffers, Dijkstra engines, local histograms) built
// lazily by newScratch. The scratches created are returned for merging.
func MonteCarloScratch[S any](n, workers int, seed int64, newScratch func() S, fn func(rng *rand.Rand, s S, i int)) []S {
	out, _ := MonteCarloScratchCtx(context.Background(), n, workers, seed, newScratch, fn)
	return out
}
