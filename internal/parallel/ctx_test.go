package parallel

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// cancelable returns a fresh cancellable context plus an iteration counter
// the loop bodies bump to decide when to pull the plug.
func cancelable() (context.Context, *atomic.Int64, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	var seen atomic.Int64
	return ctx, &seen, cancel
}

func TestForCtxCancelledMidRunReturnsCanceled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, seen, cancel := cancelable()
		defer cancel()
		const n = 1 << 20
		err := ForCtx(ctx, n, workers, func(i int) {
			if seen.Add(1) == 100 {
				cancel()
			}
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if got := seen.Load(); got >= n {
			t.Errorf("workers=%d: all %d iterations ran despite cancellation", workers, n)
		}
	}
}

func TestForRangeCtxCancelledMidRunReturnsCanceled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, seen, cancel := cancelable()
		defer cancel()
		const n = 1 << 20
		err := ForRangeCtx(ctx, n, workers, func(lo, hi int) {
			if seen.Add(int64(hi-lo)) >= 100 {
				cancel()
			}
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if got := seen.Load(); got >= n {
			t.Errorf("workers=%d: all %d iterations ran despite cancellation", workers, n)
		}
	}
}

func TestForScratchCtxCancelledMidRunReturnsCanceled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, seen, cancel := cancelable()
		defer cancel()
		const n = 1 << 20
		_, err := ForScratchCtx(ctx, n, workers,
			func() int { return 0 },
			func(s, i int) {
				if seen.Add(1) == 100 {
					cancel()
				}
			})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if got := seen.Load(); got >= n {
			t.Errorf("workers=%d: all %d iterations ran despite cancellation", workers, n)
		}
	}
}

func TestMonteCarloCtxCancelledMidRunReturnsCanceled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, seen, cancel := cancelable()
		defer cancel()
		const n = 1 << 20
		err := MonteCarloCtx(ctx, n, workers, 7, func(rng *rand.Rand, i int) {
			_ = rng.Int63()
			if seen.Add(1) == 100 {
				cancel()
			}
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if got := seen.Load(); got >= n {
			t.Errorf("workers=%d: all %d tasks ran despite cancellation", workers, n)
		}
	}
}

func TestMonteCarloScratchCtxCancelledMidRunReturnsCanceled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, seen, cancel := cancelable()
		defer cancel()
		const n = 1 << 20
		_, err := MonteCarloScratchCtx(ctx, n, workers, 7,
			func() []float64 { return make([]float64, 4) },
			func(rng *rand.Rand, s []float64, i int) {
				s[0] = rng.Float64()
				if seen.Add(1) == 100 {
					cancel()
				}
			})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if got := seen.Load(); got >= n {
			t.Errorf("workers=%d: all %d tasks ran despite cancellation", workers, n)
		}
	}
}

func TestCtxVariantsCompleteWithLiveContext(t *testing.T) {
	ctx := context.Background()
	const n = 10_000
	var count atomic.Int64
	if err := ForCtx(ctx, n, 4, func(i int) { count.Add(1) }); err != nil {
		t.Fatalf("ForCtx: %v", err)
	}
	if count.Load() != n {
		t.Fatalf("ForCtx ran %d of %d iterations", count.Load(), n)
	}
	count.Store(0)
	if err := ForRangeCtx(ctx, n, 4, func(lo, hi int) { count.Add(int64(hi - lo)) }); err != nil {
		t.Fatalf("ForRangeCtx: %v", err)
	}
	if count.Load() != n {
		t.Fatalf("ForRangeCtx covered %d of %d iterations", count.Load(), n)
	}
}

// TestForCtxPreCancelledRunsNothing pins the fast path: a context that is
// already dead must not start any work.
func TestForCtxPreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var count atomic.Int64
	err := ForCtx(ctx, 1000, 4, func(i int) { count.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Parallel workers may each start one chunk before observing the dead
	// context on some schedules; the serial path must run nothing.
	count.Store(0)
	if err := ForCtx(ctx, 1000, 1, func(i int) { count.Add(1) }); !errors.Is(err, context.Canceled) {
		t.Fatalf("serial err = %v, want context.Canceled", err)
	}
	if count.Load() != 0 {
		t.Errorf("serial pre-cancelled ForCtx ran %d iterations", count.Load())
	}
}

// TestForCtxDeadlineReturnsDeadlineExceeded verifies the deadline flavour
// of cancellation surfaces as context.DeadlineExceeded, which the serving
// layer maps to 503.
func TestForCtxDeadlineReturnsDeadlineExceeded(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	err := ForCtx(ctx, 1<<20, 4, func(i int) {
		time.Sleep(50 * time.Microsecond)
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestMonteCarloCtxPrefixMatchesUncancelled verifies the determinism
// contract under cancellation: every task that DID run drew exactly the
// same values it would have drawn in an uncancelled run.
func TestMonteCarloCtxPrefixMatchesUncancelled(t *testing.T) {
	const n = 512
	full := make([]int64, n)
	MonteCarlo(n, 1, 42, func(rng *rand.Rand, i int) { full[i] = rng.Int63() })

	got := make([]int64, n)
	ran := make([]atomic.Bool, n)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var seen atomic.Int64
	err := MonteCarloCtx(ctx, n, 4, 42, func(rng *rand.Rand, i int) {
		got[i] = rng.Int63()
		ran[i].Store(true)
		if seen.Add(1) == 64 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i := range ran {
		if ran[i].Load() && got[i] != full[i] {
			t.Fatalf("task %d drew %d under cancellation, %d in full run", i, got[i], full[i])
		}
	}
}
