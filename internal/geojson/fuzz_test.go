package geojson

import (
	"bytes"
	"testing"
)

// FuzzParse checks that any input Parse accepts re-encodes stably:
// Write(Parse(x)) must itself parse, and encoding is a fixpoint after
// one pass. Inputs Parse rejects are ignored — the property under test
// is "no accepted document misbehaves", plus the implicit "Parse never
// panics on arbitrary bytes".
func FuzzParse(f *testing.F) {
	f.Add([]byte(`{"type":"FeatureCollection","features":[]}`))
	f.Add([]byte(`{"type":"FeatureCollection","features":[` +
		`{"type":"Feature","geometry":{"type":"Point","coordinates":[1,2]},"properties":{"v":3}}]}`))
	f.Add([]byte(`{"type":"FeatureCollection","features":[` +
		`{"type":"Feature","geometry":{"type":"LineString","coordinates":[[0,0],[1,1]]}}]}`))
	f.Add([]byte(`{"type":"FeatureCollection","features":[` +
		`{"type":"Feature","geometry":{"type":"Polygon","coordinates":[[[0,0],[1,0],[1,1],[0,0]]]}}]}`))
	f.Add([]byte(`{"type":"Garbage"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		fc, err := Parse(data)
		if err != nil {
			return
		}
		var buf1 bytes.Buffer
		if err := fc.Write(&buf1); err != nil {
			t.Fatalf("writing a parsed collection: %v", err)
		}
		fc2, err := Parse(buf1.Bytes())
		if err != nil {
			t.Fatalf("re-parsing written output: %v\noutput: %s", err, buf1.Bytes())
		}
		var buf2 bytes.Buffer
		if err := fc2.Write(&buf2); err != nil {
			t.Fatalf("second write: %v", err)
		}
		if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
			t.Fatalf("encode is not a fixpoint:\nfirst:  %s\nsecond: %s", buf1.Bytes(), buf2.Bytes())
		}
	})
}
