package geojson

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"geostat/internal/geom"
)

// Parse decodes and validates a GeoJSON FeatureCollection. It is the
// inverse of Write: geometry coordinates are normalised back into the
// concrete shapes the builders produce, so a parsed collection re-encodes
// to an equivalent document. Unknown geometry types, malformed coordinate
// arrays, and non-finite coordinates are rejected rather than passed
// through.
func Parse(data []byte) (*FeatureCollection, error) {
	var fc FeatureCollection
	if err := json.Unmarshal(data, &fc); err != nil {
		return nil, fmt.Errorf("geojson: %w", err)
	}
	if fc.Type != "FeatureCollection" {
		return nil, fmt.Errorf("geojson: top-level type %q, want FeatureCollection", fc.Type)
	}
	if fc.Features == nil {
		fc.Features = []Feature{}
	}
	for i := range fc.Features {
		f := &fc.Features[i]
		if f.Type != "Feature" {
			return nil, fmt.Errorf("geojson: feature %d: type %q, want Feature", i, f.Type)
		}
		norm, err := normalizeGeometry(f.Geometry)
		if err != nil {
			return nil, fmt.Errorf("geojson: feature %d: %w", i, err)
		}
		f.Geometry = norm
	}
	return &fc, nil
}

// Read decodes a FeatureCollection from r.
func Read(r io.Reader) (*FeatureCollection, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// ReadFile decodes a FeatureCollection from the named file.
func ReadFile(path string) (*FeatureCollection, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// normalizeGeometry re-types the raw coordinates (json decodes them as
// nested []any) into the concrete arrays the builders use.
func normalizeGeometry(g geometry) (geometry, error) {
	switch g.Type {
	case "Point":
		c, err := asCoord(g.Coordinates)
		if err != nil {
			return g, err
		}
		g.Coordinates = c
	case "LineString":
		cs, err := asLine(g.Coordinates)
		if err != nil {
			return g, err
		}
		if len(cs) < 2 {
			return g, fmt.Errorf("LineString with %d positions, want >= 2", len(cs))
		}
		g.Coordinates = cs
	case "MultiLineString":
		lines, err := asLines(g.Coordinates)
		if err != nil {
			return g, err
		}
		g.Coordinates = lines
	case "Polygon":
		rings, err := asLines(g.Coordinates)
		if err != nil {
			return g, err
		}
		for _, ring := range rings {
			if len(ring) < 4 {
				return g, fmt.Errorf("polygon ring with %d positions, want >= 4", len(ring))
			}
			if ring[0] != ring[len(ring)-1] {
				return g, fmt.Errorf("polygon ring is not closed")
			}
		}
		g.Coordinates = rings
	default:
		return g, fmt.Errorf("unsupported geometry type %q", g.Type)
	}
	return g, nil
}

func asCoord(v any) ([2]float64, error) {
	raw, ok := v.([]any)
	if !ok || len(raw) != 2 {
		return [2]float64{}, fmt.Errorf("position must be a [x, y] array, got %T", v)
	}
	var c [2]float64
	for i, e := range raw {
		f, ok := e.(float64)
		if !ok || math.IsNaN(f) || math.IsInf(f, 0) {
			return c, fmt.Errorf("coordinate %d is not a finite number", i)
		}
		c[i] = f
	}
	return c, nil
}

func asLine(v any) ([][2]float64, error) {
	raw, ok := v.([]any)
	if !ok {
		return nil, fmt.Errorf("coordinates must be an array of positions, got %T", v)
	}
	out := make([][2]float64, len(raw))
	for i, e := range raw {
		c, err := asCoord(e)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

func asLines(v any) ([][][2]float64, error) {
	raw, ok := v.([]any)
	if !ok {
		return nil, fmt.Errorf("coordinates must be an array of lines, got %T", v)
	}
	out := make([][][2]float64, len(raw))
	for i, e := range raw {
		cs, err := asLine(e)
		if err != nil {
			return nil, err
		}
		out[i] = cs
	}
	return out, nil
}

// PointData extracts the Point features of a parsed collection: their
// coordinates plus, when present, the numeric "t" and "value" properties
// (the GeoJSON counterparts of the CSV t/value columns). Either every
// Point feature carries the property or none does — a mix is rejected,
// since a half-populated time or value column has no meaning to the
// analytics tools. Non-Point features (contour lines, bounding boxes) are
// skipped: round-tripping an exported collection recovers the events.
func (fc *FeatureCollection) PointData() (pts []geom.Point, times, values []float64, err error) {
	for i, f := range fc.Features {
		c, ok := f.Geometry.Coordinates.([2]float64)
		if f.Geometry.Type != "Point" || !ok {
			continue
		}
		pts = append(pts, geom.Point{X: c[0], Y: c[1]})
		t, hasT, err := numProp(f.Properties, "t")
		if err != nil {
			return nil, nil, nil, fmt.Errorf("geojson: feature %d: %w", i, err)
		}
		v, hasV, err := numProp(f.Properties, "value")
		if err != nil {
			return nil, nil, nil, fmt.Errorf("geojson: feature %d: %w", i, err)
		}
		if hasT {
			times = append(times, t)
		}
		if hasV {
			values = append(values, v)
		}
		if n := len(pts); (times != nil && len(times) != n) || (values != nil && len(values) != n) {
			return nil, nil, nil, fmt.Errorf("geojson: feature %d: every Point must carry the same optional properties (t/value)", i)
		}
	}
	return pts, times, values, nil
}

// numProp reads a numeric property (json numbers decode as float64).
func numProp(props map[string]any, key string) (float64, bool, error) {
	v, ok := props[key]
	if !ok {
		return 0, false, nil
	}
	f, ok := v.(float64)
	if !ok {
		return 0, false, fmt.Errorf("property %q is %T, want number", key, v)
	}
	return f, true, nil
}
