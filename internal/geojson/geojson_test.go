package geojson

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"

	"geostat/internal/geom"
	"geostat/internal/raster"
)

func decode(t *testing.T, fc *FeatureCollection) map[string]any {
	t.Helper()
	var buf bytes.Buffer
	if err := fc.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON produced: %v", err)
	}
	return out
}

func features(t *testing.T, out map[string]any) []any {
	t.Helper()
	if out["type"] != "FeatureCollection" {
		t.Fatalf("type = %v", out["type"])
	}
	return out["features"].([]any)
}

func TestPointsAndProperties(t *testing.T) {
	fc := NewCollection()
	fc.AddPoint(geom.Point{X: 1.5, Y: -2}, map[string]any{"kind": "event"})
	fc.AddPoints([]geom.Point{{X: 0, Y: 0}, {X: 3, Y: 4}}, nil)
	fs := features(t, decode(t, fc))
	if len(fs) != 3 {
		t.Fatalf("features = %d", len(fs))
	}
	f0 := fs[0].(map[string]any)
	g0 := f0["geometry"].(map[string]any)
	if g0["type"] != "Point" {
		t.Errorf("geometry type = %v", g0["type"])
	}
	cs := g0["coordinates"].([]any)
	if cs[0].(float64) != 1.5 || cs[1].(float64) != -2 {
		t.Errorf("coordinates = %v", cs)
	}
	if f0["properties"].(map[string]any)["kind"] != "event" {
		t.Error("properties lost")
	}
}

func TestLineAndSegments(t *testing.T) {
	fc := NewCollection()
	fc.AddLine([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 0}}, nil)
	fc.AddSegments([]raster.Segment{
		{A: geom.Point{X: 0, Y: 0}, B: geom.Point{X: 1, Y: 0}},
		{A: geom.Point{X: 1, Y: 0}, B: geom.Point{X: 1, Y: 1}},
	}, map[string]any{"level": 0.5})
	fs := features(t, decode(t, fc))
	line := fs[0].(map[string]any)["geometry"].(map[string]any)
	if line["type"] != "LineString" {
		t.Errorf("line type = %v", line["type"])
	}
	if len(line["coordinates"].([]any)) != 3 {
		t.Error("line coordinate count")
	}
	multi := fs[1].(map[string]any)["geometry"].(map[string]any)
	if multi["type"] != "MultiLineString" {
		t.Errorf("segments type = %v", multi["type"])
	}
	if len(multi["coordinates"].([]any)) != 2 {
		t.Error("segment count")
	}
}

func TestBBoxPolygonClosed(t *testing.T) {
	fc := NewCollection()
	fc.AddBBox(geom.BBox{MinX: 0, MinY: 0, MaxX: 2, MaxY: 3}, nil)
	fs := features(t, decode(t, fc))
	poly := fs[0].(map[string]any)["geometry"].(map[string]any)
	if poly["type"] != "Polygon" {
		t.Fatalf("type = %v", poly["type"])
	}
	ring := poly["coordinates"].([]any)[0].([]any)
	if len(ring) != 5 {
		t.Fatalf("ring length = %d, want 5 (closed)", len(ring))
	}
	first, last := ring[0].([]any), ring[4].([]any)
	if first[0] != last[0] || first[1] != last[1] {
		t.Error("ring not closed")
	}
}

func TestGridCells(t *testing.T) {
	spec := geom.NewPixelGrid(geom.BBox{MinX: 0, MinY: 0, MaxX: 4, MaxY: 4}, 2, 2)
	g := raster.NewGrid(spec)
	g.Set(0, 0, 5)
	g.Set(1, 1, 2)
	fc := NewCollection()
	fc.AddGridCells(g, 3, "density")
	fs := features(t, decode(t, fc))
	if len(fs) != 1 {
		t.Fatalf("cells above threshold = %d, want 1", len(fs))
	}
	props := fs[0].(map[string]any)["properties"].(map[string]any)
	if props["density"].(float64) != 5 {
		t.Errorf("density property = %v", props["density"])
	}
}

func TestWriteFile(t *testing.T) {
	fc := NewCollection()
	fc.AddPoint(geom.Point{X: 1, Y: 2}, nil)
	path := filepath.Join(t.TempDir(), "out.geojson")
	if err := fc.WriteFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyCollectionIsValid(t *testing.T) {
	out := decode(t, NewCollection())
	if len(features(t, out)) != 0 {
		t.Error("empty collection has features")
	}
}
