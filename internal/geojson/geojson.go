// Package geojson exports the library's artifacts as GeoJSON
// FeatureCollections — the interchange format that puts results straight
// into QGIS/ArcGIS and web maps, the integration direction the paper's
// §2.4 "future opportunities for software development" calls for.
// Stdlib-only (encoding/json).
package geojson

import (
	"encoding/json"
	"io"
	"os"

	"geostat/internal/geom"
	"geostat/internal/raster"
)

// Feature is one GeoJSON feature.
type Feature struct {
	Type       string         `json:"type"`
	Geometry   geometry       `json:"geometry"`
	Properties map[string]any `json:"properties,omitempty"`
}

type geometry struct {
	Type        string `json:"type"`
	Coordinates any    `json:"coordinates"`
}

// FeatureCollection is a GeoJSON feature collection.
type FeatureCollection struct {
	Type     string    `json:"type"`
	Features []Feature `json:"features"`
}

// NewCollection returns an empty feature collection.
func NewCollection() *FeatureCollection {
	return &FeatureCollection{Type: "FeatureCollection", Features: []Feature{}}
}

// AddPoint appends a Point feature.
func (fc *FeatureCollection) AddPoint(p geom.Point, props map[string]any) {
	fc.Features = append(fc.Features, Feature{
		Type:       "Feature",
		Geometry:   geometry{Type: "Point", Coordinates: coord(p)},
		Properties: props,
	})
}

// AddPoints appends one Point feature per point.
func (fc *FeatureCollection) AddPoints(pts []geom.Point, props map[string]any) {
	for _, p := range pts {
		fc.AddPoint(p, props)
	}
}

// AddLine appends a LineString feature.
func (fc *FeatureCollection) AddLine(pts []geom.Point, props map[string]any) {
	cs := make([][2]float64, len(pts))
	for i, p := range pts {
		cs[i] = coord(p)
	}
	fc.Features = append(fc.Features, Feature{
		Type:       "Feature",
		Geometry:   geometry{Type: "LineString", Coordinates: cs},
		Properties: props,
	})
}

// AddSegments appends the contour segments as a MultiLineString feature —
// the hotspot outlines of raster.Grid.Contour.
func (fc *FeatureCollection) AddSegments(segs []raster.Segment, props map[string]any) {
	lines := make([][][2]float64, len(segs))
	for i, s := range segs {
		lines[i] = [][2]float64{coord(s.A), coord(s.B)}
	}
	fc.Features = append(fc.Features, Feature{
		Type:       "Feature",
		Geometry:   geometry{Type: "MultiLineString", Coordinates: lines},
		Properties: props,
	})
}

// AddBBox appends the box as a Polygon feature (study-area footprints).
func (fc *FeatureCollection) AddBBox(b geom.BBox, props map[string]any) {
	ring := [][2]float64{
		{b.MinX, b.MinY}, {b.MaxX, b.MinY}, {b.MaxX, b.MaxY}, {b.MinX, b.MaxY}, {b.MinX, b.MinY},
	}
	fc.Features = append(fc.Features, Feature{
		Type:       "Feature",
		Geometry:   geometry{Type: "Polygon", Coordinates: [][][2]float64{ring}},
		Properties: props,
	})
}

// AddGridCells appends one Polygon feature per grid pixel with value >=
// threshold, carrying the value as a property — a vector choropleth of the
// surface's significant cells.
func (fc *FeatureCollection) AddGridCells(g *raster.Grid, threshold float64, valueKey string) {
	cw, ch := g.Spec.CellW(), g.Spec.CellH()
	for iy := 0; iy < g.Spec.NY; iy++ {
		for ix := 0; ix < g.Spec.NX; ix++ {
			v := g.At(ix, iy)
			if v < threshold {
				continue
			}
			x0 := g.Spec.Box.MinX + float64(ix)*cw
			y0 := g.Spec.Box.MinY + float64(iy)*ch
			fc.AddBBox(geom.BBox{MinX: x0, MinY: y0, MaxX: x0 + cw, MaxY: y0 + ch},
				map[string]any{valueKey: v})
		}
	}
}

// Write encodes the collection to w.
func (fc *FeatureCollection) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(fc)
}

// WriteFile encodes the collection to the named file.
func (fc *FeatureCollection) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fc.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func coord(p geom.Point) [2]float64 { return [2]float64{p.X, p.Y} }
