// Package load is a deterministic load generator for geostatd. A
// Scenario declares a population of synthetic clients (map-zoom
// sessions with zipf hot-key skew, cold dataset uploads, mixed-tool
// steady state, cancellation storms, lockstep hammers), the generator
// expands it into per-client request plans seeded from the scenario
// seed — same scenario + same seed ⇒ byte-identical plans — drives a
// live server with them, and emits a structured artifact with per-tool
// latency quantiles, error rates, and server-side cache/coalescing
// counters scraped from /metrics. cmd/geogate asserts SLO thresholds
// against that artifact and compares it with a committed baseline.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
)

// Scenario is the declarative description of one load run. Files may be
// JSON (first non-space byte '{') or the YAML subset in yamlish.go.
type Scenario struct {
	// Name labels the artifact; defaults to "unnamed".
	Name string `json:"name"`
	// Seed feeds every random decision in the plan. Required (an
	// explicit seed is what makes a run reproducible; there is no
	// time-based default on purpose).
	Seed int64 `json:"seed"`
	// Clients is the number of concurrent synthetic clients.
	Clients int `json:"clients"`
	// Requests is the number of requests each client issues.
	Requests int `json:"requests"`
	// Setup runs once, sequentially, before the clients start.
	Setup []Setup `json:"setup,omitempty"`
	// Profiles partition the clients by weight; client behaviour is
	// fully determined by its profile and its per-client RNG stream.
	Profiles []Profile `json:"profiles"`
}

// Setup is one pre-run provisioning step.
type Setup struct {
	// Generate posts /v1/generate with this query string, e.g.
	// "name=hot&kind=clusters&n=50000&seed=7&field=true".
	Generate string `json:"generate"`
}

// Profile describes one client behaviour. Weight-proportional shares of
// the client population are assigned to profiles in declaration order.
type Profile struct {
	// Kind is one of zoom, mixed, upload, cancel, hammer.
	Kind string `json:"kind"`
	// Weight is the relative share of clients running this profile.
	// Defaults to 1.
	Weight float64 `json:"weight,omitempty"`
	// Dataset names the dataset the profile queries (zoom, mixed,
	// cancel, hammer). Usually created by a Setup step.
	Dataset string `json:"dataset,omitempty"`

	// Tiles is the size of the tile universe a zoom/cancel session
	// picks from (default 64): tile 0 is the hottest.
	Tiles int `json:"tiles,omitempty"`
	// ZipfS ≥ 1.01 skews tile popularity (default 1.2; larger = more
	// traffic on the hot tiles).
	ZipfS float64 `json:"zipf_s,omitempty"`
	// Width/Height are the raster dimensions requested (default 64×64).
	Width  int `json:"width,omitempty"`
	Height int `json:"height,omitempty"`

	// Points is the size of each cold dataset an upload client posts
	// (default 500).
	Points int `json:"points,omitempty"`

	// CancelAfterMS makes a cancel client abandon each request after
	// this many milliseconds (default 25).
	CancelAfterMS int `json:"cancel_after_ms,omitempty"`
}

// profileKinds is the closed set Validate accepts.
var profileKinds = map[string]bool{
	"zoom":   true,
	"mixed":  true,
	"upload": true,
	"cancel": true,
	"hammer": true,
}

// ParseScenario decodes a scenario file (JSON or the YAML subset),
// applies defaults, and validates it.
func ParseScenario(src []byte) (*Scenario, error) {
	trimmed := bytes.TrimLeft(src, " \t\r\n")
	var jsonSrc []byte
	if len(trimmed) > 0 && trimmed[0] == '{' {
		jsonSrc = trimmed
	} else {
		doc, err := yamlishParse(src)
		if err != nil {
			return nil, fmt.Errorf("parse scenario: %w", err)
		}
		jsonSrc, err = json.Marshal(doc)
		if err != nil {
			return nil, fmt.Errorf("parse scenario: %w", err)
		}
	}
	dec := json.NewDecoder(bytes.NewReader(jsonSrc))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("parse scenario: %w", err)
	}
	sc.applyDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

func (sc *Scenario) applyDefaults() {
	if sc.Name == "" {
		sc.Name = "unnamed"
	}
	if sc.Clients == 0 {
		sc.Clients = 4
	}
	if sc.Requests == 0 {
		sc.Requests = 10
	}
	for i := range sc.Profiles {
		p := &sc.Profiles[i]
		if p.Weight == 0 {
			p.Weight = 1
		}
		if p.Tiles == 0 {
			p.Tiles = 64
		}
		if p.ZipfS == 0 {
			p.ZipfS = 1.2
		}
		if p.Width == 0 {
			p.Width = 64
		}
		if p.Height == 0 {
			p.Height = 64
		}
		if p.Points == 0 {
			p.Points = 500
		}
		if p.CancelAfterMS == 0 {
			p.CancelAfterMS = 25
		}
	}
}

// Validate rejects scenarios that cannot be planned deterministically
// or would not exercise anything.
func (sc *Scenario) Validate() error {
	var errs []string
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Sprintf(format, args...))
	}
	if sc.Seed == 0 {
		bad("seed must be set and non-zero (the seed is the reproducibility contract)")
	}
	if sc.Clients < 1 || sc.Clients > 4096 {
		bad("clients must be in [1, 4096], got %d", sc.Clients)
	}
	if sc.Requests < 1 || sc.Requests > 100000 {
		bad("requests must be in [1, 100000], got %d", sc.Requests)
	}
	if len(sc.Profiles) == 0 {
		bad("at least one profile is required")
	}
	for i, p := range sc.Profiles {
		if !profileKinds[p.Kind] {
			bad("profile %d: unknown kind %q (zoom|mixed|upload|cancel|hammer)", i, p.Kind)
			continue
		}
		if p.Weight < 0 {
			bad("profile %d: weight must be >= 0, got %v", i, p.Weight)
		}
		if p.Kind != "upload" && p.Dataset == "" {
			bad("profile %d (%s): dataset is required", i, p.Kind)
		}
		if p.ZipfS <= 1 {
			bad("profile %d: zipf_s must be > 1, got %v", i, p.ZipfS)
		}
		if p.Tiles < 1 || p.Tiles > 1<<16 {
			bad("profile %d: tiles must be in [1, 65536], got %d", i, p.Tiles)
		}
		if p.Width < 1 || p.Width > 1024 || p.Height < 1 || p.Height > 1024 {
			bad("profile %d: width/height must be in [1, 1024]", i)
		}
		if p.Points < 1 || p.Points > 100000 {
			bad("profile %d: points must be in [1, 100000], got %d", i, p.Points)
		}
		if p.CancelAfterMS < 1 {
			bad("profile %d: cancel_after_ms must be >= 1, got %d", i, p.CancelAfterMS)
		}
	}
	for i, st := range sc.Setup {
		if strings.TrimSpace(st.Generate) == "" {
			bad("setup %d: generate query string is empty", i)
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("invalid scenario: %s", strings.Join(errs, "; "))
	}
	return nil
}
