package load

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"geostat/internal/parallel"
)

// Options configure a load run against a live server.
type Options struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client is the HTTP client to use; defaults to a fresh client
	// with no global timeout (per-request contexts govern lifetimes).
	Client *http.Client
	// Logf receives progress lines; nil silences them.
	Logf func(format string, args ...any)
}

// Run expands the scenario into per-client plans, provisions the setup
// datasets, drives every client concurrently (one goroutine each, via
// the parallel engine), and aggregates the results with a /metrics
// delta into an Artifact. The request MIX is deterministic in the
// scenario seed; the measured latencies are, of course, not.
func Run(ctx context.Context, sc *Scenario, opt Options) (*Artifact, error) {
	plans, err := Plan(sc)
	if err != nil {
		return nil, err
	}
	if opt.BaseURL == "" {
		return nil, errors.New("load: Options.BaseURL is required")
	}
	client := opt.Client
	if client == nil {
		client = &http.Client{}
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	for i, st := range sc.Setup {
		if serr := runSetup(ctx, client, opt.BaseURL, st); serr != nil {
			return nil, fmt.Errorf("setup %d: %w", i, serr)
		}
		logf("setup %d: generate?%s ok", i, st.Generate)
	}

	before, err := scrapeMetrics(ctx, client, opt.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("pre-run metrics scrape: %w", err)
	}

	total := 0
	for _, p := range plans {
		total += len(p)
	}
	logf("driving %d clients, %d requests total", len(plans), total)
	start := time.Now()
	results := make([][]sample, len(plans))
	// One worker per client so sessions really are concurrent: with
	// n == workers the engine's chunk size is 1 and each client's plan
	// runs on its own goroutine.
	runErr := parallel.ForCtx(ctx, len(plans), len(plans), func(c int) {
		results[c] = runClient(ctx, client, opt.BaseURL, plans[c])
	})
	durationMS := float64(time.Since(start)) / float64(time.Millisecond)
	if runErr != nil {
		return nil, fmt.Errorf("load run aborted: %w", runErr)
	}

	after, err := scrapeMetrics(ctx, client, opt.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("post-run metrics scrape: %w", err)
	}

	var samples []sample
	for _, rs := range results {
		samples = append(samples, rs...)
	}
	logf("run complete: %d samples in %.0f ms", len(samples), durationMS)
	return buildArtifact(sc, samples, durationMS, before, after), nil
}

// runClient plays one client's plan sequentially, recording an outcome
// for every request. A cancelled parent context ends the session early;
// partial results are still returned (the engine reports the error).
func runClient(ctx context.Context, client *http.Client, base string, reqs []Request) []sample {
	out := make([]sample, 0, len(reqs))
	for _, r := range reqs {
		if ctx.Err() != nil {
			break
		}
		out = append(out, issue(ctx, client, base, r))
	}
	return out
}

// issue performs one planned request and classifies the outcome:
// the status code, "aborted" for a planned client-side cancellation
// that fired, or "error" for transport failures.
func issue(ctx context.Context, client *http.Client, base string, r Request) sample {
	rctx := ctx
	if r.CancelAfterMS > 0 {
		var cancel context.CancelFunc
		rctx, cancel = context.WithTimeout(ctx, time.Duration(r.CancelAfterMS)*time.Millisecond)
		defer cancel()
	}
	var body io.Reader
	if r.Body != nil {
		body = bytes.NewReader(r.Body)
	}
	start := time.Now()
	req, err := http.NewRequestWithContext(rctx, r.Method, base+r.Path, body)
	if err != nil {
		return sample{tool: r.Tool, outcome: "error", ms: msSince(start)}
	}
	resp, err := client.Do(req)
	if err != nil {
		outcome := "error"
		if r.CancelAfterMS > 0 && rctx.Err() != nil && ctx.Err() == nil {
			outcome = "aborted"
		}
		return sample{tool: r.Tool, outcome: outcome, ms: msSince(start)}
	}
	_, _ = io.Copy(io.Discard, resp.Body) // drain so the connection is reused
	_ = resp.Body.Close()
	return sample{tool: r.Tool, outcome: strconv.Itoa(resp.StatusCode), ms: msSince(start)}
}

func msSince(start time.Time) float64 {
	return float64(time.Since(start)) / float64(time.Millisecond)
}

// runSetup posts one /v1/generate provisioning step.
func runSetup(ctx context.Context, client *http.Client, base string, st Setup) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/generate?"+st.Generate, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("generate?%s: status %d: %s", st.Generate, resp.StatusCode, bytes.TrimSpace(msg))
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

// scrapeMetrics fetches and parses the server's /metrics exposition.
func scrapeMetrics(ctx context.Context, client *http.Client, base string) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics: status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return promCounters(data)
}
