package load

import (
	"math"
	"testing"
)

func TestPromCountersSumsFamiliesAcrossLabelSets(t *testing.T) {
	src := []byte(`# HELP geostatd_requests_total requests
# TYPE geostatd_requests_total counter
geostatd_requests_total{tool="kdv"} 7
geostatd_requests_total{tool="moran"} 3
serve_compute_total 5
geostatd_request_seconds_bucket{tool="kdv",le="0.1"} 4
geostatd_request_seconds_bucket{tool="kdv",le="+Inf"} 7
geostatd_request_seconds_count{tool="kdv"} 7
weird_label{msg="a } b { c"} 2.5
`)
	got, err := promCounters(src)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"geostatd_requests_total":         10,
		"serve_compute_total":             5,
		"geostatd_request_seconds_bucket": 11,
		"geostatd_request_seconds_count":  7,
		"weird_label":                     2.5,
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %v, want %v", name, got[name], v)
		}
	}
}

func TestPromCountersRejectsMalformedLines(t *testing.T) {
	for _, src := range []string{"noval", "bad{ 1", "name notanumber"} {
		if _, err := promCounters([]byte(src)); err == nil {
			t.Errorf("promCounters(%q) succeeded, want error", src)
		}
	}
}

func TestQuantileNearestRank(t *testing.T) {
	sorted := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		q, want float64
	}{
		{0.50, 50}, {0.95, 100}, {0.99, 100}, {0.10, 10}, {1.0, 100},
	}
	for _, tc := range cases {
		if got := quantile(sorted, tc.q); got != tc.want {
			t.Errorf("quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("quantile(empty) = %v, want 0", got)
	}
	if got := quantile([]float64{7}, 0.99); got != 7 {
		t.Errorf("quantile(single, 0.99) = %v, want 7", got)
	}
}

func TestBuildArtifactAggregatesOutcomesAndDeltas(t *testing.T) {
	sc := &Scenario{Name: "agg", Seed: 1, Clients: 2, Requests: 5}
	samples := []sample{
		{tool: "kdv", outcome: "200", ms: 10},
		{tool: "kdv", outcome: "200", ms: 30},
		{tool: "kdv", outcome: "503", ms: 1},
		{tool: "kdv", outcome: "499", ms: 5},
		{tool: "kdv", outcome: "aborted", ms: 25},
		{tool: "upload", outcome: "200", ms: 2},
	}
	before := map[string]float64{"geostatd_cache_hits_total": 5, "geostatd_cache_misses_total": 5, "serve_compute_total": 100}
	after := map[string]float64{"geostatd_cache_hits_total": 8, "geostatd_cache_misses_total": 6, "serve_compute_total": 103}
	a := buildArtifact(sc, samples, 123, before, after)

	kdv := a.Tools["kdv"]
	if kdv.Count != 5 {
		t.Fatalf("kdv.Count = %d, want 5", kdv.Count)
	}
	if kdv.Rate503 != 0.2 || kdv.ErrorRate != 0.2 || kdv.Rate499 != 0.2 {
		t.Fatalf("rates = 503:%v err:%v 499:%v, want 0.2 each", kdv.Rate503, kdv.ErrorRate, kdv.Rate499)
	}
	if kdv.MaxMS != 30 {
		t.Fatalf("kdv.MaxMS = %v, want 30", kdv.MaxMS)
	}
	if a.Server.CacheHits != 3 || a.Server.CacheMisses != 1 || a.Server.ComputeTotal != 3 {
		t.Fatalf("server deltas = %+v, want hits 3, misses 1, compute 3", a.Server)
	}
	if math.Abs(a.Server.CacheHitRate-0.75) > 1e-12 {
		t.Fatalf("cache hit rate = %v, want 0.75", a.Server.CacheHitRate)
	}

	// Selector surface used by the gate.
	for sel, want := range map[string]float64{
		"kdv.count":            5,
		"kdv.rate_503":         0.2,
		"kdv.aborted":          1,
		"upload.p95_ms":        2,
		"server.cache_hit_rate": 0.75,
		"duration_ms":          123,
	} {
		got, ok := a.Metric(sel)
		if !ok || got != want {
			t.Errorf("Metric(%q) = %v,%v, want %v,true", sel, got, ok, want)
		}
	}
	for _, sel := range []string{"kdv.bogus", "nosuch.count", "server.bogus", "plain"} {
		if _, ok := a.Metric(sel); ok {
			t.Errorf("Metric(%q) resolved, want miss", sel)
		}
	}
}
