package load_test

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"geostat/internal/load"
	"geostat/internal/load/gate"
	"geostat/internal/serve"
)

// startServer boots a real HTTP listener around a serve.Server so the
// load harness exercises the same stack geostatd serves.
func startServer(t *testing.T, cfg serve.Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(serve.NewServer(cfg))
	t.Cleanup(ts.Close)
	return ts
}

func runScenario(t *testing.T, src string, path string, cfg serve.Config) *load.Artifact {
	t.Helper()
	var (
		sc  *load.Scenario
		err error
	)
	if path != "" {
		var data []byte
		data, err = os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		sc, err = load.ParseScenario(data)
	} else {
		sc, err = load.ParseScenario([]byte(src))
	}
	if err != nil {
		t.Fatal(err)
	}
	ts := startServer(t, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	art, err := load.Run(ctx, sc, load.Options{BaseURL: ts.URL, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return art
}

// TestRunHammerScenarioCoalescesLive is the live coalescing proof from
// the acceptance checklist: a scenario with 100% hot-key overlap (every
// client issues the identical request per round) must show shared > 0
// and a computation count strictly below the request count in the
// artifact — the single-flight layer, observed end to end through a
// real listener, a real client pool, and the /metrics delta.
func TestRunHammerScenarioCoalescesLive(t *testing.T) {
	art := runScenario(t, `
name: hammer-live
seed: 99
clients: 6
requests: 2
setup:
  - generate: "name=hot&kind=clusters&n=8000&seed=7"
profiles:
  - kind: hammer
    dataset: hot
    width: 64
    height: 64
`, "", serve.Config{CacheBytes: 64 << 20, MaxInFlight: 4})

	kdv := art.Tools["kdv"]
	if kdv == nil {
		t.Fatal("artifact has no kdv stats")
	}
	const want = 6 * 2
	if kdv.Count != want {
		t.Fatalf("kdv.count = %d, want %d", kdv.Count, want)
	}
	if kdv.Status["200"] != want {
		t.Fatalf("statuses = %v, want all %d to be 200", kdv.Status, want)
	}
	if art.Server.SingleflightShared == 0 {
		t.Fatalf("singleflight_shared = 0: lockstep hammer clients never coalesced (compute_total=%v)",
			art.Server.ComputeTotal)
	}
	if art.Server.ComputeTotal >= want {
		t.Fatalf("compute_total = %v, want < %d request count (coalescing + cache)",
			art.Server.ComputeTotal, want)
	}
	// Per-round accounting: every request either computed, attached to a
	// flight, or hit the result cache.
	total := art.Server.ComputeTotal + art.Server.SingleflightShared + art.Server.CacheHits
	if total < want {
		t.Fatalf("accounting hole: compute %v + shared %v + cache hits %v < %d requests",
			art.Server.ComputeTotal, art.Server.SingleflightShared, art.Server.CacheHits, want)
	}
}

// TestRunSmokeScenarioEndToEnd drives the committed smoke scenario —
// the one CI's load-gate job runs — against a live server and asserts
// the whole contract: the artifact passes the committed SLO file and a
// self-baseline comparison, a synthetically degraded artifact fails
// both, and the cancellation-storm clients actually recorded aborted
// requests.
func TestRunSmokeScenarioEndToEnd(t *testing.T) {
	art := runScenario(t, "", filepath.Join("..", "..", "scenarios", "smoke.yaml"),
		serve.Config{CacheBytes: 64 << 20, MaxInFlight: 8})

	// Every profile kind shows up in the artifact.
	for _, tool := range []string{"kdv", "upload"} {
		if art.Tools[tool] == nil || art.Tools[tool].Count == 0 {
			t.Fatalf("artifact has no %s samples: %+v", tool, art.Tools)
		}
	}
	if art.Tools["upload"].Status["200"] != art.Tools["upload"].Count {
		t.Fatalf("uploads not all 200: %v", art.Tools["upload"].Status)
	}
	// The cancel profile hangs up after 30ms on multi-second naive KDVs;
	// at least one of its six requests must have aborted client-side.
	if art.Tools["kdv"].Status["aborted"] == 0 {
		t.Fatalf("no aborted kdv requests recorded: %v (cancellation storm had no effect)",
			art.Tools["kdv"].Status)
	}

	// The healthy run passes the committed SLO gate…
	slo, err := gate.ReadSLOFile(filepath.Join("..", "..", "scenarios", "smoke_slo.json"))
	if err != nil {
		t.Fatal(err)
	}
	if results, failures := gate.Evaluate(art, slo); failures != 0 {
		t.Fatalf("healthy smoke run failed the committed SLO gate: %+v", results)
	}
	// …and a self-comparison shows no regressions.
	if rows, regressed := gate.Compare(art, art, 0.5, 50); regressed != 0 {
		t.Fatalf("self-comparison regressed: %+v", rows)
	}

	// A degraded copy of the same artifact must fail both gate halves.
	degraded := *art
	degraded.Tools = make(map[string]*load.ToolStats, len(art.Tools))
	for k, v := range art.Tools {
		cp := *v
		degraded.Tools[k] = &cp
	}
	degraded.Tools["kdv"].P95MS = 5e6
	degraded.Tools["kdv"].P50MS = 4e6
	degraded.Tools["kdv"].ErrorRate = 0.5
	if _, failures := gate.Evaluate(&degraded, slo); failures == 0 {
		t.Fatal("degraded artifact passed the SLO gate")
	}
	if _, regressed := gate.Compare(art, &degraded, 0.5, 50); regressed == 0 {
		t.Fatal("degraded artifact showed no regression against the healthy baseline")
	}

	// Artifact round-trip: what geogate reads equals what geoload wrote.
	path := filepath.Join(t.TempDir(), "LOAD_smoke.json")
	if err := art.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := load.ReadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Requests != art.Requests || back.Scenario != art.Scenario {
		t.Fatalf("artifact round-trip mismatch: wrote %d/%s, read %d/%s",
			art.Requests, art.Scenario, back.Requests, back.Scenario)
	}
	if _, failures := gate.Evaluate(back, slo); failures != 0 {
		t.Fatal("round-tripped artifact fails the SLO gate the in-memory one passed")
	}
}
