package load

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// Artifact is the structured result of one load run — the LOAD_*.json
// file geogate consumes. Latencies are client-side wall times; the
// Server block holds counter deltas scraped from /metrics before and
// after the run, so a run against a warm server still reports only its
// own traffic.
type Artifact struct {
	Scenario   string                `json:"scenario"`
	Seed       int64                 `json:"seed"`
	Clients    int                   `json:"clients"`
	Requests   int                   `json:"requests"`
	DurationMS float64               `json:"duration_ms"`
	Tools      map[string]*ToolStats `json:"tools"`
	Server     ServerStats           `json:"server"`
}

// ToolStats aggregates one tool's requests. Quantiles are exact
// (nearest-rank over the sorted client-side samples), not interpolated
// from histogram buckets — the load generator holds every sample, so
// there is no reason to approximate.
type ToolStats struct {
	Count int `json:"count"`
	// Status counts responses by outcome: an HTTP status code in
	// decimal ("200", "499", "503", ...), "aborted" for requests the
	// client abandoned (cancellation storms), or "error" for transport
	// failures.
	Status map[string]int `json:"status"`
	P50MS  float64        `json:"p50_ms"`
	P95MS  float64        `json:"p95_ms"`
	P99MS  float64        `json:"p99_ms"`
	MaxMS  float64        `json:"max_ms"`
	// ErrorRate is the 5xx fraction; Rate499/Rate503 break out the two
	// statuses the SLO gates care about. Aborted requests count toward
	// none of them (hanging up is the client's choice, not a failure).
	ErrorRate float64 `json:"error_rate"`
	Rate499   float64 `json:"rate_499"`
	Rate503   float64 `json:"rate_503"`
}

// ServerStats are counter deltas from /metrics over the run.
type ServerStats struct {
	CacheHits          float64 `json:"cache_hits"`
	CacheMisses        float64 `json:"cache_misses"`
	CacheHitRate       float64 `json:"cache_hit_rate"`
	ComputeTotal       float64 `json:"compute_total"`
	SingleflightShared float64 `json:"singleflight_shared"`
	AdmissionRejected  float64 `json:"admission_rejected"`
}

// sample is one completed request observation.
type sample struct {
	tool    string
	outcome string // status code string, "aborted", or "error"
	ms      float64
}

// buildArtifact aggregates samples and metric deltas. before/after are
// /metrics snapshots bracketing the run.
func buildArtifact(sc *Scenario, samples []sample, durationMS float64, before, after map[string]float64) *Artifact {
	a := &Artifact{
		Scenario:   sc.Name,
		Seed:       sc.Seed,
		Clients:    sc.Clients,
		Requests:   len(samples),
		DurationMS: durationMS,
		Tools:      make(map[string]*ToolStats),
	}
	byTool := make(map[string][]float64)
	for _, s := range samples {
		ts := a.Tools[s.tool]
		if ts == nil {
			ts = &ToolStats{Status: make(map[string]int)}
			a.Tools[s.tool] = ts
		}
		ts.Count++
		ts.Status[s.outcome]++
		byTool[s.tool] = append(byTool[s.tool], s.ms)
	}
	for tool, ts := range a.Tools {
		lat := byTool[tool]
		sort.Float64s(lat)
		ts.P50MS = quantile(lat, 0.50)
		ts.P95MS = quantile(lat, 0.95)
		ts.P99MS = quantile(lat, 0.99)
		ts.MaxMS = lat[len(lat)-1]
		var err5xx, n499, n503 int
		for outcome, n := range ts.Status {
			switch {
			case outcome == "499":
				n499 += n
			case outcome == "503":
				err5xx += n
				n503 += n
			case len(outcome) == 3 && outcome[0] == '5':
				err5xx += n
			}
		}
		ts.ErrorRate = float64(err5xx) / float64(ts.Count)
		ts.Rate499 = float64(n499) / float64(ts.Count)
		ts.Rate503 = float64(n503) / float64(ts.Count)
	}
	delta := func(name string) float64 { return after[name] - before[name] }
	a.Server = ServerStats{
		CacheHits:          delta("geostatd_cache_hits_total"),
		CacheMisses:        delta("geostatd_cache_misses_total"),
		ComputeTotal:       delta("serve_compute_total"),
		SingleflightShared: delta("serve_singleflight_shared_total"),
		AdmissionRejected:  delta("serve_admission_rejected_total"),
	}
	if lookups := a.Server.CacheHits + a.Server.CacheMisses; lookups > 0 {
		a.Server.CacheHitRate = a.Server.CacheHits / lookups
	}
	return a
}

// quantile is the nearest-rank quantile of an ascending-sorted slice.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// WriteFile writes the artifact as indented JSON.
func (a *Artifact) WriteFile(path string) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadArtifact loads a LOAD_*.json file.
func ReadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &a, nil
}

// Metric resolves a dotted selector into the artifact's numeric space:
//
//	<tool>.<field>   e.g. kdv.p95_ms, upload.error_rate, kdv.count
//	server.<field>   e.g. server.cache_hit_rate, server.compute_total
//	duration_ms
//
// The boolean reports whether the selector named an existing series —
// a gate treats a missing metric as its own failure class rather than
// silently comparing against zero.
func (a *Artifact) Metric(selector string) (float64, bool) {
	switch selector {
	case "duration_ms":
		return a.DurationMS, true
	}
	dot := -1
	for i, r := range selector {
		if r == '.' {
			dot = i
			break
		}
	}
	if dot < 0 {
		return 0, false
	}
	head, field := selector[:dot], selector[dot+1:]
	if head == "server" {
		switch field {
		case "cache_hits":
			return a.Server.CacheHits, true
		case "cache_misses":
			return a.Server.CacheMisses, true
		case "cache_hit_rate":
			return a.Server.CacheHitRate, true
		case "compute_total":
			return a.Server.ComputeTotal, true
		case "singleflight_shared":
			return a.Server.SingleflightShared, true
		case "admission_rejected":
			return a.Server.AdmissionRejected, true
		}
		return 0, false
	}
	ts, ok := a.Tools[head]
	if !ok {
		return 0, false
	}
	switch field {
	case "count":
		return float64(ts.Count), true
	case "p50_ms":
		return ts.P50MS, true
	case "p95_ms":
		return ts.P95MS, true
	case "p99_ms":
		return ts.P99MS, true
	case "max_ms":
		return ts.MaxMS, true
	case "error_rate":
		return ts.ErrorRate, true
	case "rate_499":
		return ts.Rate499, true
	case "rate_503":
		return ts.Rate503, true
	}
	if n, ok := ts.Status[field]; ok {
		return float64(n), true
	}
	return 0, false
}
