package load

import (
	"reflect"
	"strings"
	"testing"
)

func TestYamlishParsesScalarsMapsAndSequences(t *testing.T) {
	src := []byte(`
# a full-line comment
name: demo
seed: 42
ratio: 1.5          # trailing comment
quoted: "a: b # c"
flag: true
setup:
  - generate: "name=hot&n=100"
profiles:
  - kind: zoom
    weight: 2
    dataset: hot
  - kind: upload
`)
	got, err := yamlishParse(src)
	if err != nil {
		t.Fatalf("yamlishParse: %v", err)
	}
	want := map[string]any{
		"name":   "demo",
		"seed":   int64(42),
		"ratio":  1.5,
		"quoted": "a: b # c",
		"flag":   true,
		"setup": []any{
			map[string]any{"generate": "name=hot&n=100"},
		},
		"profiles": []any{
			map[string]any{"kind": "zoom", "weight": int64(2), "dataset": "hot"},
			map[string]any{"kind": "upload"},
		},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parsed document mismatch:\n got %#v\nwant %#v", got, want)
	}
}

func TestYamlishRejectsOutOfSubsetInput(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"tab", "a:\tb", "tabs are not allowed"},
		{"flow map", "a: {b: 1}", "flow collections"},
		{"duplicate key", "a: 1\na: 2", "duplicate key"},
		{"dangling key", "a:", "has no value"},
		{"bad indent", "a: 1\n   b: 2", "unexpected indentation"},
		{"unterminated string", `a: "oops`, "unterminated string"},
		{"empty", "\n# just a comment\n", "empty document"},
		{"seq in map", "a: 1\n- b", "sequence item inside mapping"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := yamlishParse([]byte(tc.src))
			if err == nil {
				t.Fatalf("yamlishParse(%q) succeeded, want error containing %q", tc.src, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseScenarioAppliesDefaultsAndValidates(t *testing.T) {
	sc, err := ParseScenario([]byte(`
name: mini
seed: 7
profiles:
  - kind: zoom
    dataset: hot
`))
	if err != nil {
		t.Fatalf("ParseScenario: %v", err)
	}
	if sc.Clients != 4 || sc.Requests != 10 {
		t.Fatalf("defaults not applied: clients=%d requests=%d", sc.Clients, sc.Requests)
	}
	p := sc.Profiles[0]
	if p.Weight != 1 || p.Tiles != 64 || p.ZipfS != 1.2 || p.Width != 64 || p.Height != 64 {
		t.Fatalf("profile defaults not applied: %+v", p)
	}
}

func TestParseScenarioAcceptsJSONPassthrough(t *testing.T) {
	sc, err := ParseScenario([]byte(`{
  "name": "js",
  "seed": 3,
  "clients": 2,
  "requests": 1,
  "profiles": [{"kind": "upload"}]
}`))
	if err != nil {
		t.Fatalf("ParseScenario(json): %v", err)
	}
	if sc.Name != "js" || sc.Profiles[0].Kind != "upload" {
		t.Fatalf("unexpected scenario: %+v", sc)
	}
}

func TestParseScenarioRejectsBadInput(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"unknown field", "seed: 1\nbogus: 2\nprofiles:\n  - kind: upload", "bogus"},
		{"missing seed", "name: x\nprofiles:\n  - kind: upload", "seed must be set"},
		{"no profiles", "seed: 1\nclients: 2", "at least one profile"},
		{"unknown kind", "seed: 1\nprofiles:\n  - kind: ddos", "unknown kind"},
		{"missing dataset", "seed: 1\nprofiles:\n  - kind: zoom", "dataset is required"},
		{"flat zipf", "seed: 1\nprofiles:\n  - kind: zoom\n    dataset: d\n    zipf_s: 0.5", "zipf_s must be > 1"},
		{"empty setup", "seed: 1\nsetup:\n  - generate: \"\"\nprofiles:\n  - kind: upload", "generate query string is empty"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseScenario([]byte(tc.src))
			if err == nil {
				t.Fatal("ParseScenario succeeded, want error")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestCommittedScenariosParse keeps the checked-in scenario files valid:
// a scenario that stops parsing should fail here, not in CI's load job.
func TestCommittedScenariosParse(t *testing.T) {
	for _, path := range []string{"../../scenarios/smoke.yaml", "../../scenarios/hammer.yaml"} {
		sc, err := parseScenarioFile(t, path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if _, err := Plan(sc); err != nil {
			t.Fatalf("%s: Plan: %v", path, err)
		}
	}
}
