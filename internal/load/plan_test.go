package load

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// update rewrites the golden plan log instead of comparing against it:
//
//	go test ./internal/load -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

func parseScenarioFile(t *testing.T, path string) (*Scenario, error) {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return ParseScenario(src)
}

func compareGolden(t *testing.T, path, got string) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestGoldenSmokePlan pins the full request plan of the committed smoke
// scenario: any change to the planner, the zipf draws, the RNG
// derivation, or the scenario file itself shows up as a golden diff.
// This is the determinism contract — the plan is a pure function of the
// scenario, so the golden never flakes.
func TestGoldenSmokePlan(t *testing.T) {
	sc, err := parseScenarioFile(t, "../../scenarios/smoke.yaml")
	if err != nil {
		t.Fatal(err)
	}
	plans, err := Plan(sc)
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "golden", "smoke.plan"), FormatPlan(plans))
}

// TestPlanIsDeterministic expands the same scenario twice and requires
// byte-identical plans, including upload bodies.
func TestPlanIsDeterministic(t *testing.T) {
	sc, err := parseScenarioFile(t, "../../scenarios/smoke.yaml")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Plan(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Plan(sc)
	if err != nil {
		t.Fatal(err)
	}
	if FormatPlan(a) != FormatPlan(b) {
		t.Fatal("two expansions of the same scenario differ")
	}
	for c := range a {
		for i := range a[c] {
			if string(a[c][i].Body) != string(b[c][i].Body) {
				t.Fatalf("client %d request %d: upload bodies differ", c, i)
			}
		}
	}
}

// TestPlanHammerLockstep pins the coalescing mechanism: every hammer
// client must issue the IDENTICAL path at the same sequence number, and
// consecutive sequence numbers must differ (fresh cache key per round).
func TestPlanHammerLockstep(t *testing.T) {
	sc, err := ParseScenario([]byte(`
name: h
seed: 9
clients: 4
requests: 3
profiles:
  - kind: hammer
    dataset: d
`))
	if err != nil {
		t.Fatal(err)
	}
	plans, err := Plan(sc)
	if err != nil {
		t.Fatal(err)
	}
	for seq := 0; seq < sc.Requests; seq++ {
		for c := 1; c < sc.Clients; c++ {
			if plans[c][seq].Path != plans[0][seq].Path {
				t.Fatalf("seq %d: client %d path %q != client 0 path %q",
					seq, c, plans[c][seq].Path, plans[0][seq].Path)
			}
		}
		if seq > 0 && plans[0][seq].Path == plans[0][seq-1].Path {
			t.Fatalf("seq %d reuses the previous round's path %q", seq, plans[0][seq].Path)
		}
	}
}

// TestPlanProfileAssignment checks the weight-proportional slicing:
// with weights 3:1 over 8 clients, 6 run the first profile.
func TestPlanProfileAssignment(t *testing.T) {
	sc, err := ParseScenario([]byte(`
name: w
seed: 5
clients: 8
requests: 1
profiles:
  - kind: zoom
    weight: 3
    dataset: d
  - kind: upload
    weight: 1
`))
	if err != nil {
		t.Fatal(err)
	}
	plans, err := Plan(sc)
	if err != nil {
		t.Fatal(err)
	}
	zoom := 0
	for _, reqs := range plans {
		if reqs[0].Tool == "kdv" {
			zoom++
		}
	}
	if zoom != 6 {
		t.Fatalf("zoom clients = %d, want 6 of 8 (weight 3:1)", zoom)
	}
}

// TestPlanUploadNamesAreUnique guards the cold-upload path: every
// upload in a plan must target a distinct dataset name, or "cold"
// uploads would silently become re-uploads.
func TestPlanUploadNamesAreUnique(t *testing.T) {
	sc, err := ParseScenario([]byte(`
name: u
seed: 11
clients: 3
requests: 4
profiles:
  - kind: upload
    points: 10
`))
	if err != nil {
		t.Fatal(err)
	}
	plans, err := Plan(sc)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, reqs := range plans {
		for _, r := range reqs {
			if r.Method != "POST" || !strings.HasPrefix(r.Path, "/v1/datasets/cold-") {
				t.Fatalf("unexpected upload request %s %s", r.Method, r.Path)
			}
			if seen[r.Path] {
				t.Fatalf("duplicate upload target %s", r.Path)
			}
			seen[r.Path] = true
		}
	}
}
