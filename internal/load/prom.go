package load

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"
)

// promCounters parses a Prometheus text-format (0.0.4) exposition and
// returns each family's value summed across its label sets — exactly
// what the artifact needs from geostatd's /metrics: family-level
// counters before and after the run. Histogram series (_bucket/_sum/
// _count suffixes) are kept as their own families so a caller can read
// e.g. geostatd_request_seconds_count directly.
func promCounters(src []byte) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(bytes.NewReader(src))
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, value, err := promSeries(line)
		if err != nil {
			return nil, err
		}
		out[name] += value
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// promSeries splits one sample line: `name{labels} value` or
// `name value`. Label VALUES may contain spaces and braces, so the
// label block is delimited by the LAST '}' before the value field.
func promSeries(line string) (name string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", 0, fmt.Errorf("malformed metric line %q", line)
		}
		name = line[:i]
		rest = line[j+1:]
	} else {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return "", 0, fmt.Errorf("malformed metric line %q", line)
		}
		name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", 0, fmt.Errorf("metric line %q has no value", line)
	}
	// Field 0 is the value; an optional field 1 would be a timestamp.
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", 0, fmt.Errorf("metric line %q: %v", line, err)
	}
	return name, v, nil
}
