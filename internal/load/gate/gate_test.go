package gate

import (
	"math"
	"strings"
	"testing"

	"geostat/internal/load"
)

func f(v float64) *float64 { return &v }

// artifactFixture is a healthy artifact the tests perturb.
func artifactFixture() *load.Artifact {
	return &load.Artifact{
		Scenario: "fixture",
		Seed:     1,
		Clients:  4,
		Requests: 40,
		Tools: map[string]*load.ToolStats{
			"kdv": {
				Count:  30,
				Status: map[string]int{"200": 30},
				P50MS:  20, P95MS: 80, P99MS: 120, MaxMS: 150,
			},
			"upload": {
				Count:  10,
				Status: map[string]int{"200": 10},
				P50MS: 5, P95MS: 9, P99MS: 12, MaxMS: 12,
			},
		},
		Server: load.ServerStats{
			CacheHits: 10, CacheMisses: 20, CacheHitRate: 10.0 / 30,
			ComputeTotal: 15, SingleflightShared: 5,
		},
	}
}

func TestEvaluateTable(t *testing.T) {
	cases := []struct {
		name       string
		check      Check
		mutate     func(a *load.Artifact)
		wantStatus string
	}{
		{"max holds", Check{Metric: "kdv.p95_ms", Max: f(100)}, nil, "ok"},
		{"max exceeded", Check{Metric: "kdv.p95_ms", Max: f(50)}, nil, "FAIL"},
		{"min holds", Check{Metric: "server.singleflight_shared", Min: f(1)}, nil, "ok"},
		{"min violated", Check{Metric: "server.singleflight_shared", Min: f(6)}, nil, "FAIL"},
		{"zero max usable", Check{Metric: "kdv.error_rate", Max: f(0)}, nil, "ok"},
		{"zero max violated", Check{Metric: "kdv.error_rate", Max: f(0)},
			func(a *load.Artifact) { a.Tools["kdv"].ErrorRate = 0.1 }, "FAIL"},
		{"boundary is inclusive", Check{Metric: "kdv.p95_ms", Max: f(80)}, nil, "ok"},
		{"missing tool", Check{Metric: "nosuch.p95_ms", Max: f(1)}, nil, "MISSING"},
		{"missing field", Check{Metric: "kdv.p77_ms", Max: f(1)}, nil, "MISSING"},
		{"status count selector", Check{Metric: "kdv.200", Min: f(30)}, nil, "ok"},
		{"nan value fails max", Check{Metric: "kdv.p95_ms", Max: f(100)},
			func(a *load.Artifact) { a.Tools["kdv"].P95MS = math.NaN() }, "FAIL"},
		{"nan value fails min", Check{Metric: "kdv.p95_ms", Min: f(0)},
			func(a *load.Artifact) { a.Tools["kdv"].P95MS = math.NaN() }, "FAIL"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := artifactFixture()
			if tc.mutate != nil {
				tc.mutate(a)
			}
			results, failures := Evaluate(a, &SLO{Checks: []Check{tc.check}})
			if len(results) != 1 {
				t.Fatalf("got %d results, want 1", len(results))
			}
			if results[0].Status != tc.wantStatus {
				t.Fatalf("status = %s (%s), want %s", results[0].Status, results[0].Detail, tc.wantStatus)
			}
			wantFail := 0
			if tc.wantStatus != "ok" {
				wantFail = 1
			}
			if failures != wantFail {
				t.Fatalf("failures = %d, want %d", failures, wantFail)
			}
		})
	}
}

func TestParseSLORejectsDegenerateFiles(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"empty checks", `{"checks": []}`, "no checks"},
		{"no metric", `{"checks": [{"max": 1}]}`, "no metric"},
		{"no bounds", `{"checks": [{"metric": "kdv.p95_ms"}]}`, "neither min nor max"},
		{"unknown field", `{"checks": [{"metric": "a.b", "max": 1, "treshold": 2}]}`, "treshold"},
		{"not json", `checks:`, "parse SLO"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSLO([]byte(tc.src))
			if err == nil {
				t.Fatal("ParseSLO succeeded, want error")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestCompareThresholdAndNoiseFloor(t *testing.T) {
	base := artifactFixture()
	cases := []struct {
		name        string
		mutate      func(a *load.Artifact)
		threshold   float64
		minMS       float64
		wantStatus  map[string]string // metric -> status, unchecked metrics must be "ok"
		regressions int
	}{
		{
			name:        "identical artifacts never regress",
			mutate:      func(a *load.Artifact) {},
			threshold:   0.5, minMS: 50,
			regressions: 0,
		},
		{
			name:        "growth beyond threshold regresses",
			mutate:      func(a *load.Artifact) { a.Tools["kdv"].P95MS = 200 }, // 80 -> 200 = +150%
			threshold:   0.5, minMS: 50,
			wantStatus:  map[string]string{"kdv.p95_ms": "REGRESSED"},
			regressions: 1,
		},
		{
			name:        "growth under the noise floor is ignored",
			mutate:      func(a *load.Artifact) { a.Tools["upload"].P95MS = 30 }, // 9 -> 30 = +233%, both < 50ms
			threshold:   0.5, minMS: 50,
			wantStatus:  map[string]string{"upload.p95_ms": "ok"},
			regressions: 0,
		},
		{
			name:        "crossing the floor upward counts",
			mutate:      func(a *load.Artifact) { a.Tools["upload"].P95MS = 60 }, // 9 -> 60, new side >= 50ms
			threshold:   0.5, minMS: 50,
			wantStatus:  map[string]string{"upload.p95_ms": "REGRESSED"},
			regressions: 1,
		},
		{
			name:        "shrink beyond threshold reads faster",
			mutate:      func(a *load.Artifact) { a.Tools["kdv"].P99MS = 30 }, // 120 -> 30
			threshold:   0.5, minMS: 50,
			wantStatus:  map[string]string{"kdv.p99_ms": "faster"},
			regressions: 0,
		},
		{
			name: "new tool never fails",
			mutate: func(a *load.Artifact) {
				a.Tools["moran"] = &load.ToolStats{Count: 1, P95MS: 9999}
			},
			threshold:   0.5, minMS: 50,
			wantStatus:  map[string]string{"moran.p95_ms": "new"},
			regressions: 0,
		},
		{
			name:        "removed tool never fails",
			mutate:      func(a *load.Artifact) { delete(a.Tools, "upload") },
			threshold:   0.5, minMS: 50,
			wantStatus:  map[string]string{"upload.p95_ms": "removed"},
			regressions: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cur := artifactFixture()
			tc.mutate(cur)
			rows, regressed := Compare(base, cur, tc.threshold, tc.minMS)
			if regressed != tc.regressions {
				t.Fatalf("regressions = %d, want %d (rows: %+v)", regressed, tc.regressions, rows)
			}
			byMetric := make(map[string]string)
			for _, r := range rows {
				byMetric[r.Metric] = r.Status
			}
			for metric, want := range tc.wantStatus {
				if byMetric[metric] != want {
					t.Fatalf("%s status = %s, want %s", metric, byMetric[metric], want)
				}
			}
		})
	}
}

// TestDegradedArtifactFailsSLOGate is the acceptance-level assertion: a
// synthetically degraded run (inflated latencies, nonzero error rate)
// must fail both halves of the gate that the healthy fixture passes.
func TestDegradedArtifactFailsSLOGate(t *testing.T) {
	slo := &SLO{Checks: []Check{
		{Metric: "kdv.p95_ms", Max: f(1000)},
		{Metric: "kdv.error_rate", Max: f(0)},
		{Metric: "server.singleflight_shared", Min: f(1)},
	}}
	healthy := artifactFixture()
	if _, failures := Evaluate(healthy, slo); failures != 0 {
		t.Fatalf("healthy artifact failed the SLO gate: %d failures", failures)
	}
	if _, regressed := Compare(healthy, healthy, 0.5, 50); regressed != 0 {
		t.Fatalf("healthy artifact regressed against itself")
	}

	degraded := artifactFixture()
	degraded.Tools["kdv"].P95MS = 5000
	degraded.Tools["kdv"].ErrorRate = 0.25
	degraded.Server.SingleflightShared = 0
	if _, failures := Evaluate(degraded, slo); failures != 3 {
		got, _ := Evaluate(degraded, slo)
		t.Fatalf("degraded artifact: %d SLO failures, want 3 (%+v)", failures, got)
	}
	if _, regressed := Compare(healthy, degraded, 0.5, 50); regressed == 0 {
		t.Fatal("degraded artifact did not regress against the healthy baseline")
	}
}
