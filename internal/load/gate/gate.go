// Package gate evaluates SLO assertions and baseline comparisons over
// load artifacts (internal/load.Artifact). It is the policy half of the
// load harness: geoload measures, geogate judges. The judgement is two
// independent passes —
//
//   - Evaluate: absolute SLO checks (min/max bounds on artifact
//     metrics) from a committed SLO file, for invariants like "p95
//     under a second", "no 5xx", "coalescing actually happened";
//   - Compare: relative drift against a committed baseline artifact,
//     with the same threshold + noise-floor semantics as
//     `geobench -compare` — a latency quantile regressed when it grew
//     by more than the fractional threshold AND at least one side is
//     above the minMS floor (below it, wall clock is scheduler noise).
//
// Exit-code contract (pinned by tests, same as geobench):
// 0 = all checks pass, 1 = at least one failure, 2 = unusable input.
package gate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"geostat/internal/load"
)

// Check is one absolute SLO assertion on an artifact metric selector
// (see load.Artifact.Metric for the selector grammar). Min and Max are
// pointers so "0" is a usable bound: nil means unbounded on that side.
type Check struct {
	Metric string   `json:"metric"`
	Min    *float64 `json:"min,omitempty"`
	Max    *float64 `json:"max,omitempty"`
}

// SLO is a committed set of checks (scenarios/*_slo.json).
type SLO struct {
	Checks []Check `json:"checks"`
}

// ParseSLO decodes an SLO file strictly and rejects degenerate checks
// (no metric, no bounds, NaN bounds) at load time so a typo fails the
// gate loudly instead of passing vacuously.
func ParseSLO(src []byte) (*SLO, error) {
	dec := json.NewDecoder(bytes.NewReader(src))
	dec.DisallowUnknownFields()
	var s SLO
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("parse SLO: %w", err)
	}
	if len(s.Checks) == 0 {
		return nil, fmt.Errorf("parse SLO: no checks")
	}
	for i, c := range s.Checks {
		if c.Metric == "" {
			return nil, fmt.Errorf("parse SLO: check %d has no metric", i)
		}
		if c.Min == nil && c.Max == nil {
			return nil, fmt.Errorf("parse SLO: check %d (%s) has neither min nor max", i, c.Metric)
		}
		if (c.Min != nil && math.IsNaN(*c.Min)) || (c.Max != nil && math.IsNaN(*c.Max)) {
			return nil, fmt.Errorf("parse SLO: check %d (%s) has a NaN bound", i, c.Metric)
		}
	}
	return &s, nil
}

// Result is the verdict on one SLO check.
type Result struct {
	Metric string
	Value  float64
	Status string // "ok", "FAIL", "MISSING"
	Detail string
}

// Evaluate runs every SLO check against the artifact and returns the
// verdicts plus the failure count. A selector that resolves to nothing
// is MISSING and counts as a failure — an SLO that silently stops
// measuring is worse than one that fails. A NaN value fails every
// bounded check explicitly (NaN compares false against any bound, so
// without this rule a poisoned metric would pass).
func Evaluate(a *load.Artifact, slo *SLO) ([]Result, int) {
	results := make([]Result, 0, len(slo.Checks))
	failures := 0
	for _, c := range slo.Checks {
		v, ok := a.Metric(c.Metric)
		r := Result{Metric: c.Metric, Value: v}
		switch {
		case !ok:
			r.Status = "MISSING"
			r.Detail = "selector matches nothing in the artifact"
			failures++
		case math.IsNaN(v):
			r.Status = "FAIL"
			r.Detail = "value is NaN"
			failures++
		case c.Min != nil && v < *c.Min:
			r.Status = "FAIL"
			r.Detail = fmt.Sprintf("%g < min %g", v, *c.Min)
			failures++
		case c.Max != nil && v > *c.Max:
			r.Status = "FAIL"
			r.Detail = fmt.Sprintf("%g > max %g", v, *c.Max)
			failures++
		default:
			r.Status = "ok"
			r.Detail = boundsString(c)
		}
		results = append(results, r)
	}
	return results, failures
}

func boundsString(c Check) string {
	switch {
	case c.Min != nil && c.Max != nil:
		return fmt.Sprintf("in [%g, %g]", *c.Min, *c.Max)
	case c.Min != nil:
		return fmt.Sprintf(">= %g", *c.Min)
	default:
		return fmt.Sprintf("<= %g", *c.Max)
	}
}

// CompareRow is one latency metric's entry in the baseline delta table.
type CompareRow struct {
	Metric string
	OldMS  float64
	NewMS  float64
	Delta  float64 // (new-old)/old when old > 0
	Status string  // "ok", "faster", "REGRESSED", "new", "removed"
}

// latencyFields are the per-tool quantiles a baseline comparison
// covers. Rates and counts are deliberately excluded: absolute bounds
// on those belong in the SLO file, where a drifting baseline cannot
// quietly ratchet them up.
var latencyFields = []string{"p50_ms", "p95_ms", "p99_ms"}

// Compare diffs the new artifact's per-tool latency quantiles against
// the baseline's, mirroring geobench -compare: a metric REGRESSED when
// it grew by more than threshold (fractional) and either side is at or
// above the minMS noise floor; metrics present on only one side are
// listed ("new"/"removed") but never fail. Returns rows sorted by
// metric name plus the regression count.
func Compare(baseline, current *load.Artifact, threshold, minMS float64) ([]CompareRow, int) {
	tools := make(map[string]bool)
	for t := range baseline.Tools {
		tools[t] = true
	}
	for t := range current.Tools {
		tools[t] = true
	}
	names := make([]string, 0, len(tools))
	for t := range tools {
		names = append(names, t) //lint:allow maporder sorted below
	}
	sort.Strings(names)

	var rows []CompareRow
	regressions := 0
	for _, tool := range names {
		_, inOld := baseline.Tools[tool]
		_, inNew := current.Tools[tool]
		for _, field := range latencyFields {
			metric := tool + "." + field
			switch {
			case !inOld:
				v, _ := current.Metric(metric)
				rows = append(rows, CompareRow{Metric: metric, NewMS: v, Status: "new"})
			case !inNew:
				v, _ := baseline.Metric(metric)
				rows = append(rows, CompareRow{Metric: metric, OldMS: v, Status: "removed"})
			default:
				ov, _ := baseline.Metric(metric)
				nv, _ := current.Metric(metric)
				row := CompareRow{Metric: metric, OldMS: ov, NewMS: nv}
				if ov > 0 {
					row.Delta = (nv - ov) / ov
				}
				switch {
				case row.Delta > threshold && (ov >= minMS || nv >= minMS):
					row.Status = "REGRESSED"
					regressions++
				case row.Delta < -threshold:
					row.Status = "faster"
				default:
					row.Status = "ok"
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, regressions
}

// WriteResults renders the SLO verdict table.
func WriteResults(w io.Writer, results []Result) {
	fmt.Fprintf(w, "%-32s %14s  %-8s %s\n", "metric", "value", "status", "detail")
	for _, r := range results {
		val := fmt.Sprintf("%.4g", r.Value)
		if r.Status == "MISSING" {
			val = "-"
		}
		fmt.Fprintf(w, "%-32s %14s  %-8s %s\n", r.Metric, val, r.Status, r.Detail)
	}
}

// WriteCompareTable renders the baseline delta table.
func WriteCompareTable(w io.Writer, rows []CompareRow) {
	fmt.Fprintf(w, "%-32s %12s %12s %8s  %s\n", "metric", "old ms", "new ms", "delta", "status")
	for _, r := range rows {
		old, cur, delta := "-", "-", "-"
		if r.Status != "new" {
			old = fmt.Sprintf("%.1f", r.OldMS)
		}
		if r.Status != "removed" {
			cur = fmt.Sprintf("%.1f", r.NewMS)
		}
		if r.Status != "new" && r.Status != "removed" && r.OldMS > 0 {
			delta = fmt.Sprintf("%+.1f%%", r.Delta*100)
		}
		fmt.Fprintf(w, "%-32s %12s %12s %8s  %s\n", r.Metric, old, cur, delta, r.Status)
	}
}

// ReadSLOFile loads and validates an SLO file.
func ReadSLOFile(path string) (*SLO, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := ParseSLO(src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
