package gate

import (
	"strings"
	"testing"

	"geostat/internal/obs"
)

// TestSLOThresholdsCoveredByLatencyBuckets keeps the committed SLO
// latency thresholds inside geostatd_request_seconds's bucket ladder
// (obs.LatencyBuckets, documented in DESIGN.md): a threshold between
// the last finite bucket and +Inf could never be located from the
// histogram — the server-side view would say only "slower than the last
// bucket" while the gate claims a precise bound. Every per-tool
// latency-quantile check with a max bound must sit at or below the last
// finite bucket.
func TestSLOThresholdsCoveredByLatencyBuckets(t *testing.T) {
	slo, err := ReadSLOFile("../../../scenarios/smoke_slo.json")
	if err != nil {
		t.Fatal(err)
	}
	lastFinite := obs.LatencyBuckets[len(obs.LatencyBuckets)-1]
	quantileSuffixes := []string{".p50_ms", ".p95_ms", ".p99_ms", ".max_ms"}
	checked := 0
	for _, c := range slo.Checks {
		isQuantile := false
		for _, suf := range quantileSuffixes {
			if strings.HasSuffix(c.Metric, suf) {
				isQuantile = true
				break
			}
		}
		if !isQuantile || c.Max == nil {
			continue
		}
		checked++
		thresholdSeconds := *c.Max / 1000
		if thresholdSeconds > lastFinite {
			t.Errorf("%s max %gms = %gs lies beyond the last finite request_seconds bucket (%gs): "+
				"the histogram cannot resolve this SLO — lower the threshold or extend obs.LatencyBuckets",
				c.Metric, *c.Max, thresholdSeconds, lastFinite)
		}
	}
	if checked == 0 {
		t.Fatal("the committed SLO has no latency-quantile max checks; this test has nothing to guard")
	}
}
