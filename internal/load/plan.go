package load

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"geostat/internal/parallel"
)

// Request is one planned HTTP call. Plans are pure data: expanding a
// scenario touches no clock and no network, so the same (scenario,
// seed) pair always yields byte-identical plans — which is what the
// golden request-log test pins.
type Request struct {
	// Client and Seq locate the request in its client's session.
	Client int
	Seq    int
	// Method and Path (path + raw query) address the server; Body is
	// non-nil only for uploads.
	Method string
	Path   string
	Body   []byte
	// Tool buckets the request in the artifact's per-tool stats
	// (kdv, kfunction, moran, idw, upload).
	Tool string
	// CancelAfterMS > 0 makes the driver abandon the request
	// client-side after this many milliseconds (a cancellation storm).
	CancelAfterMS int
}

// Plan expands a validated scenario into one request sequence per
// client. Client c's stream is seeded from splitmix64(seed, c), so
// plans are independent of execution order and worker count.
func Plan(sc *Scenario) ([][]Request, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	plans := make([][]Request, sc.Clients)
	for c := range plans {
		p := sc.profileFor(c)
		rng := parallel.TaskRand(sc.Seed, c)
		reqs := make([]Request, 0, sc.Requests)
		for seq := 0; seq < sc.Requests; seq++ {
			reqs = append(reqs, planRequest(p, rng, c, seq))
		}
		plans[c] = reqs
	}
	return plans, nil
}

// profileFor assigns client c to a profile by weight-proportional
// slicing of the client index space: profiles get contiguous runs of
// clients in declaration order.
func (sc *Scenario) profileFor(c int) *Profile {
	var total float64
	for _, p := range sc.Profiles {
		total += p.Weight
	}
	pos := (float64(c) + 0.5) / float64(sc.Clients) * total
	var cum float64
	for i := range sc.Profiles {
		cum += sc.Profiles[i].Weight
		if pos < cum {
			return &sc.Profiles[i]
		}
	}
	return &sc.Profiles[len(sc.Profiles)-1]
}

func planRequest(p *Profile, rng *rand.Rand, client, seq int) Request {
	r := Request{Client: client, Seq: seq, Method: "GET"}
	switch p.Kind {
	case "zoom":
		r.Tool = "kdv"
		r.Path = tilePath(p, zipfTile(p, rng), "grid-cutoff")
	case "cancel":
		// naive is the heavyweight method: the point of a cancellation
		// storm is hanging up on computations that are still running.
		r.Tool = "kdv"
		r.Path = tilePath(p, zipfTile(p, rng), "naive")
		r.CancelAfterMS = p.CancelAfterMS
	case "hammer":
		// Every hammer client issues the SAME request at the same seq:
		// the epoch parameter makes each round a fresh cache key, so
		// lockstep clients must coalesce (not just hit the cache).
		r.Tool = "kdv"
		r.Path = fmt.Sprintf("/v1/kdv?dataset=%s&method=naive&kernel=gaussian&bandwidth=5&width=%d&height=%d&epoch=%d",
			p.Dataset, p.Width, p.Height, seq)
	case "mixed":
		switch rng.Intn(4) {
		case 0:
			r.Tool = "kdv"
			r.Path = tilePath(p, zipfTile(p, rng), "grid-cutoff")
		case 1:
			r.Tool = "kfunction"
			r.Path = fmt.Sprintf("/v1/kfunction?dataset=%s&smax=10&steps=5&sims=9&seed=%d",
				p.Dataset, rng.Int63n(1<<20)+1)
		case 2:
			r.Tool = "moran"
			r.Path = fmt.Sprintf("/v1/moran?dataset=%s&weights=knn&k=8&perms=49&seed=%d",
				p.Dataset, rng.Int63n(1<<20)+1)
		default:
			r.Tool = "idw"
			r.Path = fmt.Sprintf("/v1/idw?dataset=%s&method=knn&k=8&width=%d&height=%d",
				p.Dataset, p.Width, p.Height)
		}
	case "upload":
		r.Tool = "upload"
		r.Method = "POST"
		r.Path = fmt.Sprintf("/v1/datasets/cold-c%d-%d", client, seq)
		r.Body = uploadCSV(rng, p.Points)
	}
	return r
}

// zipfTile draws a tile index with zipf-skewed popularity: index 0 is
// the hottest tile. math/rand's Zipf has a stable algorithm, so golden
// plans survive Go version bumps.
func zipfTile(p *Profile, rng *rand.Rand) int {
	if p.Tiles == 1 {
		return 0
	}
	z := rand.NewZipf(rng, p.ZipfS, 1, uint64(p.Tiles-1))
	return int(z.Uint64())
}

// tilePath renders the KDV request for one tile of the [0,100]² study
// box the /v1/generate datasets live in, laid out row-major on a
// near-square grid.
func tilePath(p *Profile, tile int, method string) string {
	side := 1
	for side*side < p.Tiles {
		side++
	}
	cell := 100.0 / float64(side)
	tx, ty := tile%side, tile/side
	minx, miny := float64(tx)*cell, float64(ty)*cell
	return fmt.Sprintf("/v1/kdv?dataset=%s&method=%s&kernel=quartic&bandwidth=4&width=%d&height=%d&bbox=%s,%s,%s,%s",
		p.Dataset, method, p.Width, p.Height,
		fnum(minx), fnum(miny), fnum(minx+cell), fnum(miny+cell))
}

// fnum formats a coordinate with the shortest exact representation.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// uploadCSV builds a deterministic cold dataset body: n uniform points
// over the study box, fixed-precision so the bytes are reproducible.
func uploadCSV(rng *rand.Rand, n int) []byte {
	var b strings.Builder
	b.Grow(n*16 + 4)
	b.WriteString("x,y\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%.4f,%.4f\n", rng.Float64()*100, rng.Float64()*100)
	}
	return []byte(b.String())
}

// FormatPlan renders plans as the stable one-request-per-line log the
// golden regression test diffs. Bodies are summarised by length — the
// bytes themselves are pinned transitively through the RNG stream.
func FormatPlan(plans [][]Request) string {
	var b strings.Builder
	for _, reqs := range plans {
		for _, r := range reqs {
			fmt.Fprintf(&b, "c%02d s%02d %s %s", r.Client, r.Seq, r.Method, r.Path)
			if r.Body != nil {
				fmt.Fprintf(&b, " body=%dB", len(r.Body))
			}
			if r.CancelAfterMS > 0 {
				fmt.Fprintf(&b, " cancel=%dms", r.CancelAfterMS)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
