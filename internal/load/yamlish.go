package load

import (
	"fmt"
	"strconv"
	"strings"
)

// A dependency-free parser for the YAML subset the scenario files use.
//
// The repo's no-third-party-deps rule means we cannot pull in a YAML
// library, and JSON is an unfriendly authoring format for configs that
// humans tweak (comments, trailing commas). This parser accepts the
// indentation-structured subset that covers declarative scenarios:
//
//   - mappings:      key: value          (nested blocks indent deeper)
//   - sequences:     - item              ("- key: value" starts a map item)
//   - scalars:       ints, floats, true/false, bare or "quoted" strings
//   - comments:      full-line or trailing "  # ..."
//
// No anchors, no multi-line strings, no flow collections ({} / []), no
// tabs. Anything outside the subset is a parse error with a line number
// — a scenario that fails to parse should say why, not half-load.
//
// parseYAMLish returns the same shapes encoding/json produces
// (map[string]any, []any, string, float64/int64, bool), so a scenario
// can round-trip through json.Marshal into its typed struct.

type yamlLine struct {
	num    int // 1-based source line
	indent int
	text   string // content with indentation stripped
}

func yamlishParse(src []byte) (any, error) {
	var lines []yamlLine
	for i, raw := range strings.Split(string(src), "\n") {
		if strings.Contains(raw, "\t") {
			return nil, fmt.Errorf("line %d: tabs are not allowed (use spaces)", i+1)
		}
		text := strings.TrimLeft(raw, " ")
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		lines = append(lines, yamlLine{
			num:    i + 1,
			indent: len(raw) - len(text),
			text:   strings.TrimRight(text, " "),
		})
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("empty document")
	}
	p := &yamlParser{lines: lines}
	v, err := p.block(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("line %d: unexpected indentation", l.num)
	}
	return v, nil
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

// block parses the run of lines at exactly the given indent as either a
// sequence (lines starting with "-") or a mapping.
func (p *yamlParser) block(indent int) (any, error) {
	l := p.lines[p.pos]
	if l.text == "-" || strings.HasPrefix(l.text, "- ") {
		return p.sequence(indent)
	}
	return p.mapping(indent)
}

func (p *yamlParser) sequence(indent int) (any, error) {
	var out []any
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent {
			break
		}
		if l.text != "-" && !strings.HasPrefix(l.text, "- ") {
			return nil, fmt.Errorf("line %d: expected sequence item %q", l.num, l.text)
		}
		rest := strings.TrimSpace(strings.TrimPrefix(l.text, "-"))
		if rest == "" {
			// "-" alone: the item is the nested block below.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, fmt.Errorf("line %d: empty sequence item", l.num)
			}
			item, err := p.block(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			out = append(out, item)
			continue
		}
		// "- content": re-enter the parser with the content shifted to a
		// virtual indent two columns in, so "- key: v" plus following
		// "  key2: v2" lines parse as one mapping.
		p.lines[p.pos] = yamlLine{num: l.num, indent: indent + 2, text: rest}
		item, err := p.block(indent + 2)
		if err != nil {
			return nil, err
		}
		out = append(out, item)
	}
	return out, nil
}

func (p *yamlParser) mapping(indent int) (any, error) {
	out := make(map[string]any)
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent {
			break
		}
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			return nil, fmt.Errorf("line %d: sequence item inside mapping", l.num)
		}
		key, rest, ok := splitKey(l.text)
		if !ok {
			return nil, fmt.Errorf("line %d: expected \"key: value\", got %q", l.num, l.text)
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate key %q", l.num, key)
		}
		if rest == "" {
			// "key:" — nested block, or an error if nothing is indented
			// below (the subset has no null values to mean "empty").
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, fmt.Errorf("line %d: key %q has no value", l.num, key)
			}
			child, err := p.block(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			out[key] = child
			continue
		}
		v, err := yamlScalar(rest)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", l.num, err)
		}
		out[key] = v
		p.pos++
	}
	return out, nil
}

// splitKey splits "key: value" / "key:"; the key must be a bare word
// (scenario field names never need quoting).
func splitKey(text string) (key, rest string, ok bool) {
	i := strings.Index(text, ":")
	if i <= 0 {
		return "", "", false
	}
	key = strings.TrimSpace(text[:i])
	if key == "" || strings.ContainsAny(key, "\"' {}[]") {
		return "", "", false
	}
	rest = strings.TrimSpace(text[i+1:])
	return key, rest, true
}

// yamlScalar parses one scalar value, stripping a trailing comment.
func yamlScalar(s string) (any, error) {
	if strings.HasPrefix(s, `"`) {
		end := strings.Index(s[1:], `"`)
		if end < 0 {
			return nil, fmt.Errorf("unterminated string %q", s)
		}
		str := s[1 : 1+end]
		tail := strings.TrimSpace(s[2+end:])
		if tail != "" && !strings.HasPrefix(tail, "#") {
			return nil, fmt.Errorf("trailing content after string: %q", tail)
		}
		return str, nil
	}
	// Trailing comment on an unquoted scalar: "value  # note".
	if i := strings.Index(s, " #"); i >= 0 {
		s = strings.TrimSpace(s[:i])
	}
	if s == "" {
		return nil, fmt.Errorf("empty value")
	}
	switch s {
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	if strings.ContainsAny(s, "{}[]") {
		return nil, fmt.Errorf("flow collections are outside the YAML subset: %q", s)
	}
	return s, nil
}
