// Package geom provides the planar geometric primitives shared by every
// analytic tool in this repository: points, bounding boxes, distance
// helpers, and the pixel grids over which density surfaces are evaluated
// (the X×Y raster of Definition 1 in the paper).
//
// All coordinates are planar (projected) coordinates. The paper's tools are
// defined on Euclidean distance; datasets in geographic coordinates are
// assumed to have been projected before entering the library.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s about the origin.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Sqrt(p.Dist2(q)) }

// Dist2 returns the squared Euclidean distance between p and q. Squared
// distances avoid a sqrt in the hot loops of every tool; kernels in
// internal/kernel are evaluated directly on squared distance.
func (p Point) Dist2(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// BBox is an axis-aligned bounding box. A BBox with Min > Max on either
// axis is empty; EmptyBBox returns the canonical empty box that behaves as
// the identity under Union.
type BBox struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyBBox returns a box that contains nothing and unions as identity.
func EmptyBBox() BBox {
	return BBox{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// NewBBox returns the bounding box of the given points.
func NewBBox(pts []Point) BBox {
	b := EmptyBBox()
	for _, p := range pts {
		b = b.ExtendPoint(p)
	}
	return b
}

// IsEmpty reports whether b contains no points.
func (b BBox) IsEmpty() bool { return b.MinX > b.MaxX || b.MinY > b.MaxY }

// Width returns the horizontal extent of b (0 for empty boxes).
func (b BBox) Width() float64 {
	if b.IsEmpty() {
		return 0
	}
	return b.MaxX - b.MinX
}

// Height returns the vertical extent of b (0 for empty boxes).
func (b BBox) Height() float64 {
	if b.IsEmpty() {
		return 0
	}
	return b.MaxY - b.MinY
}

// Area returns the area of b.
func (b BBox) Area() float64 { return b.Width() * b.Height() }

// Center returns the center of b.
func (b BBox) Center() Point { return Point{(b.MinX + b.MaxX) / 2, (b.MinY + b.MaxY) / 2} }

// Contains reports whether p lies inside b (boundary inclusive).
func (b BBox) Contains(p Point) bool {
	return p.X >= b.MinX && p.X <= b.MaxX && p.Y >= b.MinY && p.Y <= b.MaxY
}

// ContainsBox reports whether o lies entirely inside b.
func (b BBox) ContainsBox(o BBox) bool {
	if o.IsEmpty() {
		return true
	}
	return o.MinX >= b.MinX && o.MaxX <= b.MaxX && o.MinY >= b.MinY && o.MaxY <= b.MaxY
}

// Intersects reports whether b and o share any point.
func (b BBox) Intersects(o BBox) bool {
	if b.IsEmpty() || o.IsEmpty() {
		return false
	}
	return b.MinX <= o.MaxX && o.MinX <= b.MaxX && b.MinY <= o.MaxY && o.MinY <= b.MaxY
}

// ExtendPoint returns b grown to include p.
func (b BBox) ExtendPoint(p Point) BBox {
	return BBox{
		MinX: math.Min(b.MinX, p.X), MinY: math.Min(b.MinY, p.Y),
		MaxX: math.Max(b.MaxX, p.X), MaxY: math.Max(b.MaxY, p.Y),
	}
}

// Union returns the smallest box containing both b and o.
func (b BBox) Union(o BBox) BBox {
	if b.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return b
	}
	return BBox{
		MinX: math.Min(b.MinX, o.MinX), MinY: math.Min(b.MinY, o.MinY),
		MaxX: math.Max(b.MaxX, o.MaxX), MaxY: math.Max(b.MaxY, o.MaxY),
	}
}

// Pad returns b grown by m on every side.
func (b BBox) Pad(m float64) BBox {
	if b.IsEmpty() {
		return b
	}
	return BBox{MinX: b.MinX - m, MinY: b.MinY - m, MaxX: b.MaxX + m, MaxY: b.MaxY + m}
}

// MinDist2 returns the squared distance from p to the nearest point of b,
// 0 if p is inside b. This is the pruning bound used by the spatial
// indexes' range counting and by bound-based KDE traversal.
func (b BBox) MinDist2(p Point) float64 {
	dx := axisDist(p.X, b.MinX, b.MaxX)
	dy := axisDist(p.Y, b.MinY, b.MaxY)
	return dx*dx + dy*dy
}

// MaxDist2 returns the squared distance from p to the farthest point of b.
// Together with MinDist2 it brackets every point-in-box distance, which is
// exactly what the function-approximation KDE methods (QUAD/KARL family in
// the paper) need to derive lower/upper kernel bounds per index node.
func (b BBox) MaxDist2(p Point) float64 {
	dx := math.Max(math.Abs(p.X-b.MinX), math.Abs(p.X-b.MaxX))
	dy := math.Max(math.Abs(p.Y-b.MinY), math.Abs(p.Y-b.MaxY))
	return dx*dx + dy*dy
}

func axisDist(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}
