package geom

import (
	"math/rand"
	"testing"
)

func testGrid() PixelGrid {
	return NewPixelGrid(BBox{0, 0, 100, 50}, 20, 10)
}

func TestPixelGridBasics(t *testing.T) {
	g := testGrid()
	if g.CellW() != 5 || g.CellH() != 5 {
		t.Fatalf("cell = %v×%v, want 5×5", g.CellW(), g.CellH())
	}
	if g.NumPixels() != 200 {
		t.Fatalf("NumPixels = %d", g.NumPixels())
	}
	if c := g.Center(0, 0); c != (Point{2.5, 2.5}) {
		t.Errorf("Center(0,0) = %v", c)
	}
	if c := g.Center(19, 9); c != (Point{97.5, 47.5}) {
		t.Errorf("Center(19,9) = %v", c)
	}
	if g.CenterX(3) != g.Center(3, 0).X || g.CenterY(7) != g.Center(0, 7).Y {
		t.Error("CenterX/CenterY disagree with Center")
	}
	if g.Index(3, 2) != 2*20+3 {
		t.Errorf("Index = %d", g.Index(3, 2))
	}
}

func TestNewPixelGridPanics(t *testing.T) {
	for _, c := range []struct {
		name string
		fn   func()
	}{
		{"zero nx", func() { NewPixelGrid(BBox{0, 0, 1, 1}, 0, 5) }},
		{"negative ny", func() { NewPixelGrid(BBox{0, 0, 1, 1}, 5, -1) }},
		{"empty box", func() { NewPixelGrid(EmptyBBox(), 5, 5) }},
		{"degenerate box", func() { NewPixelGrid(BBox{0, 0, 0, 1}, 5, 5) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			c.fn()
		}()
	}
}

func TestLocate(t *testing.T) {
	g := testGrid()
	ix, iy, in := g.Locate(Point{2.5, 2.5})
	if ix != 0 || iy != 0 || !in {
		t.Errorf("Locate center of (0,0) = %d,%d,%v", ix, iy, in)
	}
	ix, iy, in = g.Locate(Point{99.9, 49.9})
	if ix != 19 || iy != 9 || !in {
		t.Errorf("Locate near max = %d,%d,%v", ix, iy, in)
	}
	ix, iy, in = g.Locate(Point{-5, 200})
	if in {
		t.Error("outside point reported inside")
	}
	if ix != 0 || iy != 9 {
		t.Errorf("clamping = %d,%d, want 0,9", ix, iy)
	}
}

// Property: Locate(Center(ix,iy)) round-trips for every pixel.
func TestLocateCenterRoundTrip(t *testing.T) {
	g := testGrid()
	for iy := 0; iy < g.NY; iy++ {
		for ix := 0; ix < g.NX; ix++ {
			jx, jy, in := g.Locate(g.Center(ix, iy))
			if jx != ix || jy != iy || !in {
				t.Fatalf("round-trip (%d,%d) -> (%d,%d,%v)", ix, iy, jx, jy, in)
			}
		}
	}
}

// Property: ColRange/RowRange return exactly the centers within distance r,
// verified against a brute-force scan over random query positions.
func TestAxisRangeMatchesBruteForce(t *testing.T) {
	g := testGrid()
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5000; trial++ {
		x := r.Float64()*140 - 20
		rad := r.Float64() * 30
		lo, hi := g.ColRange(x, rad)
		for ix := 0; ix < g.NX; ix++ {
			within := abs(g.CenterX(ix)-x) <= rad
			inRange := ix >= lo && ix < hi
			if within != inRange {
				t.Fatalf("ColRange(%v,%v)=[%d,%d): col %d center %v mismatch",
					x, rad, lo, hi, ix, g.CenterX(ix))
			}
		}
		y := r.Float64()*90 - 20
		lo, hi = g.RowRange(y, rad)
		for iy := 0; iy < g.NY; iy++ {
			within := abs(g.CenterY(iy)-y) <= rad
			inRange := iy >= lo && iy < hi
			if within != inRange {
				t.Fatalf("RowRange(%v,%v)=[%d,%d): row %d center %v mismatch",
					y, rad, lo, hi, iy, g.CenterY(iy))
			}
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
