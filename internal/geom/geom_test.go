package geom

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{4, 6}
	if got := p.Add(q); got != (Point{5, 8}) {
		t.Errorf("Add = %v", got)
	}
	if got := q.Sub(p); got != (Point{3, 4}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dist(q); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := p.Dist2(q); got != 25 {
		t.Errorf("Dist2 = %v, want 25", got)
	}
	if got := (Point{3, 4}).Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
}

func TestDist2MatchesDist(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		p, q := Point{ax, ay}, Point{bx, by}
		d := p.Dist(q)
		return math.Abs(d*d-p.Dist2(q)) <= 1e-9*math.Max(1, d*d)
	}
	cfg := &quick.Config{Values: randomCoords(4)}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// randomCoords generates n bounded float64 args (quick's default generator
// produces huge magnitudes that overflow squared distances).
func randomCoords(n int) func(args []reflect.Value, r *rand.Rand) {
	return func(args []reflect.Value, r *rand.Rand) {
		for i := 0; i < n; i++ {
			args[i] = reflect.ValueOf(r.Float64()*2000 - 1000)
		}
	}
}

func TestEmptyBBox(t *testing.T) {
	e := EmptyBBox()
	if !e.IsEmpty() {
		t.Fatal("EmptyBBox not empty")
	}
	if e.Width() != 0 || e.Height() != 0 || e.Area() != 0 {
		t.Errorf("empty box has nonzero extent: w=%v h=%v", e.Width(), e.Height())
	}
	b := BBox{0, 0, 1, 1}
	if got := e.Union(b); got != b {
		t.Errorf("empty ∪ b = %v, want %v", got, b)
	}
	if got := b.Union(e); got != b {
		t.Errorf("b ∪ empty = %v, want %v", got, b)
	}
	if e.Intersects(b) || b.Intersects(e) {
		t.Error("empty box intersects")
	}
	if !b.ContainsBox(e) {
		t.Error("any box should contain the empty box")
	}
}

func TestNewBBox(t *testing.T) {
	pts := []Point{{1, 5}, {-2, 3}, {4, -1}}
	b := NewBBox(pts)
	want := BBox{-2, -1, 4, 5}
	if b != want {
		t.Errorf("NewBBox = %v, want %v", b, want)
	}
	for _, p := range pts {
		if !b.Contains(p) {
			t.Errorf("bbox does not contain %v", p)
		}
	}
	if NewBBox(nil).IsEmpty() != true {
		t.Error("NewBBox(nil) should be empty")
	}
}

func TestBBoxContainsAndIntersects(t *testing.T) {
	b := BBox{0, 0, 10, 10}
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{5, 5}, true},
		{Point{0, 0}, true},
		{Point{10, 10}, true},
		{Point{-0.1, 5}, false},
		{Point{5, 10.1}, false},
	}
	for _, c := range cases {
		if got := b.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !b.Intersects(BBox{9, 9, 20, 20}) {
		t.Error("overlapping boxes should intersect")
	}
	if b.Intersects(BBox{11, 0, 20, 10}) {
		t.Error("disjoint boxes should not intersect")
	}
	if !b.Intersects(BBox{10, 0, 20, 10}) {
		t.Error("edge-touching boxes intersect (closed boxes)")
	}
}

func TestBBoxPad(t *testing.T) {
	b := BBox{0, 0, 2, 2}.Pad(1)
	if b != (BBox{-1, -1, 3, 3}) {
		t.Errorf("Pad = %v", b)
	}
	if !EmptyBBox().Pad(5).IsEmpty() {
		t.Error("padding an empty box should stay empty")
	}
}

func TestMinMaxDist2(t *testing.T) {
	b := BBox{0, 0, 10, 10}
	if got := b.MinDist2(Point{5, 5}); got != 0 {
		t.Errorf("MinDist2 inside = %v, want 0", got)
	}
	if got := b.MinDist2(Point{13, 14}); got != 25 {
		t.Errorf("MinDist2 corner = %v, want 25", got)
	}
	if got := b.MinDist2(Point{-3, 5}); got != 9 {
		t.Errorf("MinDist2 edge = %v, want 9", got)
	}
	if got := b.MaxDist2(Point{0, 0}); got != 200 {
		t.Errorf("MaxDist2 corner = %v, want 200", got)
	}
}

// Property: for random boxes and points, MinDist2 <= dist² to any contained
// point <= MaxDist2.
func TestDistBoundsBracketContainedPoints(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		b := BBox{
			MinX: r.Float64() * 100, MinY: r.Float64() * 100,
		}
		b.MaxX = b.MinX + r.Float64()*50
		b.MaxY = b.MinY + r.Float64()*50
		q := Point{r.Float64()*300 - 100, r.Float64()*300 - 100}
		in := Point{
			X: b.MinX + r.Float64()*(b.MaxX-b.MinX),
			Y: b.MinY + r.Float64()*(b.MaxY-b.MinY),
		}
		d2 := q.Dist2(in)
		if lo := b.MinDist2(q); d2 < lo-1e-9 {
			t.Fatalf("MinDist2 %v > dist² %v (box %v q %v in %v)", lo, d2, b, q, in)
		}
		if hi := b.MaxDist2(q); d2 > hi+1e-9 {
			t.Fatalf("MaxDist2 %v < dist² %v (box %v q %v in %v)", hi, d2, b, q, in)
		}
	}
}
