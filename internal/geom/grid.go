package geom

import (
	"fmt"
	"math"
)

// PixelGrid describes the X×Y raster of Definition 1: a bounding region
// divided into NX×NY pixels. Density surfaces (KDV, IDW, Kriging, ...) are
// evaluated at pixel centers. The grid is a pure description; the values
// live in raster.Grid.
//
// Pixel (ix, iy) covers
//
//	[MinX + ix*CellW, MinX + (ix+1)*CellW) × [MinY + iy*CellH, MinY + (iy+1)*CellH)
//
// with ix in [0, NX) increasing eastwards and iy in [0, NY) increasing
// northwards.
type PixelGrid struct {
	Box    BBox
	NX, NY int
}

// NewPixelGrid returns a pixel grid with nx×ny pixels over box. It panics
// if nx or ny is not positive or box is empty: a grid is always constructed
// from validated tool options, so this is a programming error, not runtime
// input.
func NewPixelGrid(box BBox, nx, ny int) PixelGrid {
	if nx <= 0 || ny <= 0 {
		panic(fmt.Sprintf("geom: invalid pixel grid %dx%d", nx, ny))
	}
	if box.IsEmpty() || box.Width() <= 0 || box.Height() <= 0 {
		panic("geom: pixel grid over empty or degenerate bbox")
	}
	return PixelGrid{Box: box, NX: nx, NY: ny}
}

// CellW returns the pixel width.
func (g PixelGrid) CellW() float64 { return g.Box.Width() / float64(g.NX) }

// CellH returns the pixel height.
func (g PixelGrid) CellH() float64 { return g.Box.Height() / float64(g.NY) }

// NumPixels returns NX*NY.
func (g PixelGrid) NumPixels() int { return g.NX * g.NY }

// Center returns the center of pixel (ix, iy).
func (g PixelGrid) Center(ix, iy int) Point {
	return Point{
		X: g.Box.MinX + (float64(ix)+0.5)*g.CellW(),
		Y: g.Box.MinY + (float64(iy)+0.5)*g.CellH(),
	}
}

// CenterX returns the x coordinate of column ix's pixel centers.
func (g PixelGrid) CenterX(ix int) float64 {
	return g.Box.MinX + (float64(ix)+0.5)*g.CellW()
}

// CenterY returns the y coordinate of row iy's pixel centers.
func (g PixelGrid) CenterY(iy int) float64 {
	return g.Box.MinY + (float64(iy)+0.5)*g.CellH()
}

// Index returns the flat index of pixel (ix, iy), row-major with iy as the
// slow axis. raster.Grid stores values in this order.
func (g PixelGrid) Index(ix, iy int) int { return iy*g.NX + ix }

// Locate returns the pixel containing p, clamped to the grid bounds. The
// second result reports whether p was inside the grid's box before
// clamping.
func (g PixelGrid) Locate(p Point) (ix, iy int, inside bool) {
	inside = g.Box.Contains(p)
	ix = clamp(int((p.X-g.Box.MinX)/g.CellW()), 0, g.NX-1)
	iy = clamp(int((p.Y-g.Box.MinY)/g.CellH()), 0, g.NY-1)
	return ix, iy, inside
}

// ColRange returns the half-open range [lo, hi) of pixel columns whose
// centers lie within horizontal distance r of x. Used by the cutoff and
// sweep-line KDV algorithms to restrict work to a kernel's support.
func (g PixelGrid) ColRange(x, r float64) (lo, hi int) {
	return g.axisRange(x, r, g.Box.MinX, g.CellW(), g.NX)
}

// RowRange returns the half-open range [lo, hi) of pixel rows whose centers
// lie within vertical distance r of y.
func (g PixelGrid) RowRange(y, r float64) (lo, hi int) {
	return g.axisRange(y, r, g.Box.MinY, g.CellH(), g.NY)
}

func (g PixelGrid) axisRange(v, r, min, cell float64, n int) (lo, hi int) {
	// Center of index i is min + (i+0.5)*cell; we need centers in [v-r, v+r]:
	//   i >= (v-r-min)/cell - 0.5   and   i <= (v+r-min)/cell - 0.5.
	lo = int(math.Ceil((v-r-min)/cell - 0.5))
	hi = int(math.Floor((v+r-min)/cell-0.5)) + 1
	lo = clamp(lo, 0, n)
	hi = clamp(hi, 0, n)
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// GridWindow selects the pixel sub-rectangle [X0, X0+NX) × [Y0, Y0+NY) of
// a parent PixelGrid — the unit of work the shard coordinator hands to one
// worker. Windowed evaluation computes pixel centers from the PARENT grid
// (Center(X0+ix, Y0+iy)), never from a re-derived sub-box: re-deriving
// cell sizes from a sub-box rounds differently and breaks the bit-identity
// between a sharded and a single-node raster. The zero value means "the
// whole grid".
type GridWindow struct {
	X0, Y0 int // origin pixel (inclusive) in the parent grid
	NX, NY int // window size in pixels
}

// IsZero reports whether w is the zero window (meaning the whole grid).
func (w GridWindow) IsZero() bool { return w == GridWindow{} }

// FullWindow returns the window covering all of g.
func (g PixelGrid) FullWindow() GridWindow {
	return GridWindow{X0: 0, Y0: 0, NX: g.NX, NY: g.NY}
}

// CheckWindow validates that w lies inside g: positive size, non-negative
// origin, and X0+NX ≤ g.NX, Y0+NY ≤ g.NY.
func (g PixelGrid) CheckWindow(w GridWindow) error {
	if w.NX <= 0 || w.NY <= 0 {
		return fmt.Errorf("geom: window %dx%d must be positive", w.NX, w.NY)
	}
	if w.X0 < 0 || w.Y0 < 0 || w.X0+w.NX > g.NX || w.Y0+w.NY > g.NY {
		return fmt.Errorf("geom: window [%d,%d)+%dx%d outside %dx%d grid",
			w.X0, w.Y0, w.NX, w.NY, g.NX, g.NY)
	}
	return nil
}

// WindowBox returns the pixel-boundary bounding box of window w — the
// region the window's pixels cover. The corners are derived from the
// parent's cell size, so adjacent windows tile the parent box (up to
// floating-point rounding of the shared edges; callers that need exact
// center coordinates must go through Center on the parent grid).
func (g PixelGrid) WindowBox(w GridWindow) BBox {
	return BBox{
		MinX: g.Box.MinX + float64(w.X0)*g.CellW(),
		MinY: g.Box.MinY + float64(w.Y0)*g.CellH(),
		MaxX: g.Box.MinX + float64(w.X0+w.NX)*g.CellW(),
		MaxY: g.Box.MinY + float64(w.Y0+w.NY)*g.CellH(),
	}
}

// SubGrid returns a PixelGrid describing window w of g, for labelling and
// rendering a windowed raster. Its Box is WindowBox(w); note its Center
// coordinates differ from the parent's by floating-point rounding — exact
// evaluation must use the parent grid with the window offsets.
func (g PixelGrid) SubGrid(w GridWindow) PixelGrid {
	return PixelGrid{Box: g.WindowBox(w), NX: w.NX, NY: w.NY}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
