// Package experiments implements the per-experiment harness of DESIGN.md:
// one runner per paper artifact (tables T1–T2, figures F1–F6) and per
// complexity claim (C1–C8). cmd/geobench dispatches into this package; the
// outputs recorded in EXPERIMENTS.md are produced here.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"geostat/internal/parallel"
)

// Config controls experiment scale and outputs.
type Config struct {
	// Out receives the experiment's table(s).
	Out io.Writer
	// Dir receives generated artifacts (PNGs, CSVs); empty disables them.
	Dir string
	// Seed drives every generator and simulation.
	Seed int64
	// Quick shrinks dataset sizes ~10× for smoke runs.
	Quick bool
	// Workers bounds the parallelism of every parallel-capable call;
	// 0 means every core (the default), otherwise passed through as-is.
	Workers int
}

func (c *Config) rng() *rand.Rand { return parallel.NewRand(c.Seed) }

// workers maps the zero-value Config to "every core".
func (c *Config) workers() int {
	if c.Workers == 0 {
		return -1
	}
	return c.Workers
}

// scale shrinks n in quick mode.
func (c *Config) scale(n int) int {
	if c.Quick {
		n /= 10
		if n < 10 {
			n = 10
		}
	}
	return n
}

func (c *Config) artifact(name string) (string, bool) {
	if c.Dir == "" {
		return "", false
	}
	if err := os.MkdirAll(c.Dir, 0o755); err != nil {
		return "", false
	}
	return filepath.Join(c.Dir, name), true
}

// Runner executes one experiment.
type Runner struct {
	ID    string
	Title string
	Run   func(cfg *Config) error
}

// All returns every experiment in DESIGN.md order.
func All() []Runner {
	return []Runner{
		{"T1", "Table 1 — tool coverage matrix", RunT1},
		{"T2", "Table 2 — kernel functions", RunT2},
		{"F1", "Figure 1 — KDV hotspot heatmap", RunF1},
		{"F2", "Figure 2 — K-function plot with envelopes", RunF2},
		{"F3", "Figure 3 — Euclidean vs network distance", RunF3},
		{"F4", "Figure 4 — STKDV moving hotspots", RunF4},
		{"F5", "Figure 5 — end-to-end hotspot map pipeline", RunF5},
		{"F6", "Figure 6 — spatiotemporal K-function surface", RunF6},
		{"C1", "K-function scaling: naive O(n²) vs accelerated", RunC1},
		{"C2", "KDV scaling: naive O(XYn) vs cutoff vs sweep line", RunC2},
		{"C3", "Bound-based approximate KDV: ε sweep", RunC3},
		{"C4", "Sampling-based approximate KDV: ε sweep", RunC4},
		{"C5", "Parallel speedup: KDV and K-function", RunC5},
		{"C6", "Network K-function: naive vs shared Dijkstra", RunC6},
		{"C7", "IDW scaling: naive vs kNN vs radius", RunC7},
		{"C8", "Kriging / Moran / Getis-Ord / DBSCAN costs", RunC8},
		{"A1", "Ablation: SAFE multi-bandwidth sharing", RunA1},
		{"A2", "Ablation: adaptive vs fixed bandwidth", RunA2},
		{"A3", "Ablation: equal-split vs plain network kernel", RunA3},
		{"A4", "Inhomogeneous null: intensity vs interaction", RunA4},
	}
}

// Lookup returns the runner with the given id (case-insensitive).
func Lookup(id string) (Runner, bool) {
	for _, r := range All() {
		if strings.EqualFold(r.ID, id) {
			return r, true
		}
	}
	return Runner{}, false
}

// ---- small table/timing helpers shared by all runners ----

// table accumulates rows and renders aligned columns.
type table struct {
	header []string
	rows   [][]string
}

func newTable(cols ...string) *table { return &table{header: cols} }

func (t *table) add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		case time.Duration:
			row[i] = v.Round(10 * time.Microsecond).String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 1 || v <= -1:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.5f", v)
	}
}

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// timeIt runs fn and returns its duration.
func timeIt(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// medianOf3 runs fn three times and returns the median duration — cheap
// insulation from scheduler noise in the printed tables.
func medianOf3(fn func()) time.Duration {
	ds := []time.Duration{timeIt(fn), timeIt(fn), timeIt(fn)}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[1]
}

func speedup(base, fast time.Duration) string {
	if fast <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(base)/float64(fast))
}
