package experiments

import (
	"fmt"
	"math"

	"geostat"
)

// RunA4 demonstrates the inhomogeneous null model built from
// SampleFromIntensity: a dataset with clustered first-order intensity but
// NO interaction reads "clustered" against Definition 3's CSR null (a
// false positive for interaction), and "random" against the
// fitted-intensity null; a true cluster process stays "clustered" against
// both. This is the practical answer to "are the hotspots merely uneven
// population, or is there real contagion?"
func RunA4(cfg *Config) error {
	rng := cfg.rng()
	thresholds := []float64{2, 4, 6}
	opt := geostat.KPlotOptions{Thresholds: thresholds, Simulations: 39, Window: studyBox, Workers: cfg.workers()}
	spec := geostat.NewPixelGrid(studyBox, 64, 64)

	// Dataset 1: inhomogeneous Poisson (intensity bump, no interaction).
	intensity := make([]float64, spec.NumPixels())
	center := geostat.Point{X: 40, Y: 60}
	for iy := 0; iy < spec.NY; iy++ {
		for ix := 0; ix < spec.NX; ix++ {
			d2 := spec.Center(ix, iy).Dist2(center)
			intensity[spec.Index(ix, iy)] = 1 + 20*math.Exp(-d2/(2*15*15))
		}
	}
	noInteraction, err := geostat.SampleFromIntensity(rng, spec, intensity, cfg.scale(2000))
	if err != nil {
		return err
	}
	// Dataset 2: Matérn (true interaction).
	interacting := clusteredN(cfg, cfg.scale(2000))

	tb := newTable("dataset", "vs CSR null (Def. 3)", "vs fitted-intensity null")
	verdicts := func(pts []geostat.Point) (csr, inhom string, err error) {
		p1, err := geostat.KFunctionPlot(pts, opt, rng)
		if err != nil {
			return "", "", err
		}
		fit, err := geostat.KDV(pts, geostat.KDVOptions{
			Kernel: geostat.MustKernel(geostat.Quartic, 12), Grid: spec, Workers: cfg.workers(),
		})
		if err != nil {
			return "", "", err
		}
		p2, err := geostat.KFunctionPlotWithNull(pts, opt, func() []geostat.Point {
			sim, serr := geostat.SampleFromIntensity(rng, spec, fit.Values, len(pts))
			if serr != nil {
				panic(serr)
			}
			return sim.Points()
		})
		if err != nil {
			return "", "", err
		}
		return regimeSummary(p1), regimeSummary(p2), nil
	}
	c1, i1, err := verdicts(noInteraction.Points())
	if err != nil {
		return err
	}
	tb.add("intensity bump, no interaction", c1, i1)
	c2, i2, err := verdicts(interacting)
	if err != nil {
		return err
	}
	tb.add("Matérn (true interaction)", c2, i2)
	tb.write(cfg.Out)
	fmt.Fprintln(cfg.Out, "the fitted-intensity null absorbs first-order structure; only true interaction survives it.")
	if i2 == "random" {
		return fmt.Errorf("A4: true interaction absorbed by the intensity null")
	}
	return nil
}

// regimeSummary renders the per-threshold verdicts compactly.
func regimeSummary(p *geostat.KPlot) string {
	clustered := 0
	for i := range p.S {
		if p.RegimeAt(i) == geostat.RegimeClustered {
			clustered++
		}
	}
	switch {
	case clustered == len(p.S):
		return "clustered"
	case clustered == 0:
		return "random"
	default:
		return fmt.Sprintf("clustered at %d/%d scales", clustered, len(p.S))
	}
}
