package experiments

import (
	"fmt"
	"runtime"
	"time"

	"geostat"
)

// RunC1 verifies the paper's headline K-function complexity claim: the
// naive method is O(n²) per threshold while the range-query and one-pass
// histogram methods scale near-linearly at fixed density.
func RunC1(cfg *Config) error {
	rng := cfg.rng()
	thresholds := []float64{1, 2, 4, 8}
	tb := newTable("n", "naive (1 thr)", "grid (1 thr)", "kd-tree (1 thr)", "curve (4 thr)", "naive/grid")
	sizes := []int{2000, 4000, 8000, 16000}
	if cfg.Quick {
		sizes = []int{500, 1000, 2000}
	}
	for _, n := range sizes {
		pts := geostat.UniformCSR(rng, n, studyBox).Points()
		const s = 4.0
		var naive, grid, kdt, curve int
		tNaive := medianOf3(func() { naive = geostat.KFunctionNaive(pts, s) })
		tGrid := medianOf3(func() { grid = geostat.KFunction(pts, s) })
		tKD := medianOf3(func() { kdt = geostat.KFunctionKDTree(pts, s) })
		var cv []int
		tCurve := medianOf3(func() { cv, _ = geostat.KFunctionCurve(pts, thresholds, 0) })
		curve = cv[len(cv)-1]
		if naive != grid || grid != kdt {
			return fmt.Errorf("C1: methods disagree: %d %d %d", naive, grid, kdt)
		}
		if curve != geostat.KFunction(pts, thresholds[len(thresholds)-1]) {
			return fmt.Errorf("C1: curve disagrees at s_max")
		}
		tb.add(n, tNaive, tGrid, tKD, tCurve, speedup(tNaive, tGrid))
	}
	tb.write(cfg.Out)
	fmt.Fprintln(cfg.Out, "naive time ~4x per n doubling (O(n²)); indexed methods ~2x (near-linear at fixed density).")
	return nil
}

// RunC2 verifies the KDV claim: naive is O(XYn); grid-cutoff and the
// sweep line decouple the n term from the full raster.
func RunC2(cfg *Config) error {
	rng := cfg.rng()
	k := geostat.MustKernel(geostat.Quartic, 4)
	fmt.Fprintln(cfg.Out, "sweep over n (grid fixed 128x128, b=4):")
	tb := newTable("n", "naive", "grid-cutoff", "sweep-line", "naive/sweep")
	sizes := []int{5000, 10000, 20000, 40000}
	if cfg.Quick {
		sizes = []int{1000, 2000, 4000}
	}
	grid := geostat.NewPixelGrid(studyBox, 128, 128)
	for _, n := range sizes {
		pts := geostat.UniformCSR(rng, n, studyBox).Points()
		var tNaive, tCut, tSweep = timeKDV(pts, k, grid, geostat.KDVNaive),
			timeKDV(pts, k, grid, geostat.KDVGridCutoff),
			timeKDV(pts, k, grid, geostat.KDVSweepLine)
		tb.add(n, tNaive, tCut, tSweep, speedup(tNaive, tSweep))
	}
	tb.write(cfg.Out)

	fmt.Fprintln(cfg.Out, "\nsweep over raster size (n fixed 10000, b=4):")
	tb = newTable("pixels", "naive", "grid-cutoff", "sweep-line")
	pts := geostat.UniformCSR(rng, cfg.scale(10000), studyBox).Points()
	dims := []int{64, 128, 256}
	if cfg.Quick {
		dims = []int{32, 64}
	}
	for _, dim := range dims {
		g := geostat.NewPixelGrid(studyBox, dim, dim)
		tb.add(fmt.Sprintf("%dx%d", dim, dim),
			timeKDV(pts, k, g, geostat.KDVNaive),
			timeKDV(pts, k, g, geostat.KDVGridCutoff),
			timeKDV(pts, k, g, geostat.KDVSweepLine))
	}
	tb.write(cfg.Out)
	return nil
}

func timeKDV(pts []geostat.Point, k geostat.Kernel, g geostat.PixelGrid, m geostat.KDVMethod) (d time.Duration) {
	return medianOf3(func() {
		if _, err := geostat.KDV(pts, geostat.KDVOptions{Kernel: k, Grid: g, Method: m}); err != nil {
			panic(err)
		}
	})
}

// RunC3 verifies Equation 6's (1±ε) guarantee empirically and measures the
// accuracy/speed trade-off for the Gaussian kernel (where no exact
// accelerator exists — §2.4's open problem).
func RunC3(cfg *Config) error {
	rng := cfg.rng()
	pts := geostat.GaussianClusters(rng, cfg.scale(20000), studyBox, []geostat.GaussianCluster{
		{Center: geostat.Point{X: 40, Y: 40}, Sigma: 10, Weight: 1},
	}, 0.3).Points()
	k := geostat.MustKernel(geostat.Gaussian, 8)
	grid := geostat.NewPixelGrid(studyBox, 64, 64)
	exact, err := geostat.KDV(pts, geostat.KDVOptions{Kernel: k, Grid: grid, Method: geostat.KDVNaive})
	if err != nil {
		return err
	}
	tNaive := medianOf3(func() {
		_, _ = geostat.KDV(pts, geostat.KDVOptions{Kernel: k, Grid: grid, Method: geostat.KDVNaive})
	})
	tb := newTable("eps", "time", "naive time", "speedup", "measured max rel err", "guarantee held")
	for _, eps := range []float64{0.5, 0.1, 0.01} {
		var approx *geostat.Heatmap
		t := medianOf3(func() {
			var err error
			approx, err = geostat.KDV(pts, geostat.KDVOptions{Kernel: k, Grid: grid, Method: geostat.KDVBoundApprox, Epsilon: eps})
			if err != nil {
				panic(err)
			}
		})
		worst := 0.0
		held := true
		for i, got := range approx.Values {
			f := exact.Values[i]
			if f == 0 {
				continue
			}
			rel := abs(got-f) / f
			if rel > worst {
				worst = rel
			}
			if rel > eps+1e-9 {
				held = false
			}
		}
		tb.add(eps, t, tNaive, speedup(tNaive, t), worst, held)
		if !held {
			return fmt.Errorf("C3: eps=%v guarantee violated (worst %v)", eps, worst)
		}
	}
	tb.write(cfg.Out)
	return nil
}

// RunC4 verifies the sampling family's probabilistic error bound and
// measures its n-independent cost.
func RunC4(cfg *Config) error {
	rng := cfg.rng()
	k := geostat.MustKernel(geostat.Quartic, 8)
	grid := geostat.NewPixelGrid(studyBox, 64, 64)
	tb := newTable("n", "eps", "sample size", "exact time", "sampled time", "measured max err (per point)", "bound eps")
	sizes := []int{50000, 200000}
	if cfg.Quick {
		sizes = []int{5000, 20000}
	}
	for _, n := range sizes {
		pts := geostat.UniformCSR(rng, n, studyBox).Points()
		exact, err := geostat.KDV(pts, geostat.KDVOptions{Kernel: k, Grid: grid})
		if err != nil {
			return err
		}
		tExact := medianOf3(func() { _, _ = geostat.KDV(pts, geostat.KDVOptions{Kernel: k, Grid: grid}) })
		for _, eps := range []float64{0.05, 0.02} {
			var approx *geostat.Heatmap
			t := medianOf3(func() {
				var err error
				approx, err = geostat.KDV(pts, geostat.KDVOptions{
					Kernel: k, Grid: grid, Method: geostat.KDVSampled,
					Epsilon: eps, Delta: 0.01, Seed: cfg.Seed + int64(n),
				})
				if err != nil {
					panic(err)
				}
			})
			worst := 0.0
			for i := range approx.Values {
				if e := abs(approx.Values[i]-exact.Values[i]) / float64(n); e > worst {
					worst = e
				}
			}
			m, _ := geostat.KDVSampleBound(grid.NumPixels(), eps, 0.01)
			tb.add(n, eps, m, tExact, t, worst, eps)
			if worst > eps {
				return fmt.Errorf("C4: n=%d eps=%v measured error %v above bound", n, eps, worst)
			}
		}
	}
	tb.write(cfg.Out)
	fmt.Fprintln(cfg.Out, "sample size depends only on (pixels, eps, delta), not n — speedup grows with n.")
	return nil
}

// RunC5 measures goroutine-parallel speedup for KDV and the K-curve.
func RunC5(cfg *Config) error {
	rng := cfg.rng()
	pts := geostat.UniformCSR(rng, cfg.scale(50000), studyBox).Points()
	k := geostat.MustKernel(geostat.Quartic, 4)
	grid := geostat.NewPixelGrid(studyBox, 256, 256)
	thresholds := []float64{1, 2, 4, 8}
	maxW := runtime.GOMAXPROCS(0)
	fmt.Fprintf(cfg.Out, "GOMAXPROCS=%d (speedup is bounded by available cores)\n", maxW)
	tb := newTable("workers", "KDV grid-cutoff", "K-curve")
	var base1, base2 time.Duration
	seen := map[int]bool{}
	for _, w := range []int{1, 2, 4, maxW} {
		if w > maxW || seen[w] {
			continue
		}
		seen[w] = true
		t1 := medianOf3(func() {
			_, _ = geostat.KDV(pts, geostat.KDVOptions{Kernel: k, Grid: grid, Method: geostat.KDVGridCutoff, Workers: w})
		})
		t2 := medianOf3(func() { _, _ = geostat.KFunctionCurve(pts, thresholds, w) })
		if w == 1 {
			base1, base2 = t1, t2
			tb.add(w, t1.String(), t2.String())
			continue
		}
		tb.add(w, fmt.Sprintf("%v (%s)", t1, speedup(base1, t1)), fmt.Sprintf("%v (%s)", t2, speedup(base2, t2)))
	}
	tb.write(cfg.Out)
	return nil
}

// RunC6 compares the network K-function baselines.
func RunC6(cfg *Config) error {
	rng := cfg.rng()
	g := geostat.GridNetwork(20, 20, 10, geostat.Point{})
	thresholds := []float64{5, 10, 20, 40}
	tb := newTable("events", "naive (1 thr)", "shared curve (4 thr)", "speedup")
	sizes := []int{500, 1000, 2000}
	if cfg.Quick {
		sizes = []int{100, 200}
	}
	for _, n := range sizes {
		events := geostat.RandomNetworkEventsRand(rng, g, n)
		var naive int
		tNaive := medianOf3(func() { naive = geostat.NetworkKFunction(g, events, 40) })
		var curve []int
		tCurve := medianOf3(func() { curve, _ = geostat.NetworkKFunctionCurve(g, events, thresholds, -1) })
		if curve[len(curve)-1] != naive {
			return fmt.Errorf("C6: methods disagree: %d vs %d", curve[len(curve)-1], naive)
		}
		tb.add(n, tNaive, tCurve, speedup(tNaive, tCurve))
	}
	tb.write(cfg.Out)
	return nil
}

// RunC7 verifies the IDW claim (naive O(XYn)) against the kNN and radius
// variants.
func RunC7(cfg *Config) error {
	rng := cfg.rng()
	grid := geostat.NewPixelGrid(studyBox, 128, 128)
	tb := newTable("n", "naive", "kNN (k=12)", "radius (r=8)", "naive/kNN")
	sizes := []int{5000, 20000, 80000}
	if cfg.Quick {
		sizes = []int{1000, 4000}
	}
	for _, n := range sizes {
		d := geostat.UniformCSR(rng, n, studyBox)
		geostat.WithField(rng, d, func(p geostat.Point) float64 { return p.X + p.Y }, 1)
		opt := geostat.IDWOptions{Grid: grid, Power: 2}
		tNaive := medianOf3(func() { _, _ = geostat.IDW(d, opt) })
		tKNN := medianOf3(func() { _, _ = geostat.IDWKNN(d, opt, 12) })
		tRad := medianOf3(func() { _, _ = geostat.IDWRadius(d, opt, 8) })
		tb.add(n, tNaive, tKNN, tRad, speedup(tNaive, tKNN))
	}
	tb.write(cfg.Out)
	return nil
}

// RunC8 measures the remaining Table 1 tools: kriging neighbourhood size,
// Moran/G permutation cost, DBSCAN naive vs grid.
func RunC8(cfg *Config) error {
	rng := cfg.rng()
	n := cfg.scale(5000)
	d := geostat.UniformCSR(rng, n, studyBox)
	geostat.WithField(rng, d, func(p geostat.Point) float64 { return p.X/10 + p.Y/20 + 20 }, 0.5)

	fmt.Fprintln(cfg.Out, "ordinary kriging (64x64 raster):")
	bins, err := geostat.EmpiricalVariogram(d, 30, 12)
	if err != nil {
		return err
	}
	v, err := geostat.FitVariogram(bins, geostat.SphericalModel)
	if err != nil {
		return err
	}
	grid := geostat.NewPixelGrid(studyBox, 64, 64)
	tb := newTable("neighbours k", "time")
	for _, k := range []int{8, 16, 32} {
		t := timeIt(func() {
			if _, kerr := geostat.Krige(d, geostat.KrigingOptions{Grid: grid, Variogram: v, Neighbors: k, Workers: cfg.workers()}); kerr != nil {
				panic(kerr)
			}
		})
		tb.add(k, t)
	}
	tb.write(cfg.Out)

	fmt.Fprintln(cfg.Out, "\nMoran's I / General G (kNN weights k=8):")
	w, err := geostat.KNNWeightsWorkers(d.Points(), 8, cfg.workers())
	if err != nil {
		return err
	}
	pos := make([]float64, d.N())
	copy(pos, d.Values())
	tb = newTable("perms", "Moran's I", "General G")
	for _, perms := range []int{99, 999} {
		tMoran := timeIt(func() {
			opt := geostat.MoranOptions{Perms: perms, Seed: rng.Int63(), Workers: cfg.workers()}
			if _, err := geostat.MoranIOpt(d.Values(), w, opt); err != nil {
				panic(err)
			}
		})
		tG := timeIt(func() {
			opt := geostat.GetisOrdOptions{Perms: perms, Seed: rng.Int63(), Workers: cfg.workers()}
			if _, err := geostat.GeneralGOpt(pos, w, opt); err != nil {
				panic(err)
			}
		})
		tb.add(perms, tMoran, tG)
	}
	tb.write(cfg.Out)

	fmt.Fprintln(cfg.Out, "\nDBSCAN (eps=2, minPts=5):")
	tb = newTable("n", "naive", "grid", "speedup")
	sizes := []int{2000, 8000}
	if cfg.Quick {
		sizes = []int{500, 2000}
	}
	for _, dn := range sizes {
		pts := geostat.UniformCSR(rng, dn, studyBox).Points()
		tNaive := medianOf3(func() { _, _ = geostat.DBSCANNaive(pts, 2, 5) })
		tGrid := medianOf3(func() { _, _ = geostat.DBSCAN(pts, 2, 5) })
		tb.add(dn, tNaive, tGrid, speedup(tNaive, tGrid))
	}
	tb.write(cfg.Out)
	return nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
