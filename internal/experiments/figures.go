package experiments

import (
	"fmt"
	"math"

	"geostat"
	"geostat/internal/core"
)

var studyBox = geostat.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}

// hkLikeOutbreak is the two-cluster synthetic stand-in for the Hong Kong
// COVID-19 dataset of Figures 1/5.
func hkLikeOutbreak(cfg *Config, n int) *geostat.Dataset {
	// Peak intensity scales with weight/σ², so the (30, 60) cluster is the
	// dominant hotspot (2/36 vs 0.4/16).
	return geostat.GaussianClusters(cfg.rng(), cfg.scale(n), studyBox, []geostat.GaussianCluster{
		{Center: geostat.Point{X: 30, Y: 60}, Sigma: 6, Weight: 2},
		{Center: geostat.Point{X: 70, Y: 25}, Sigma: 4, Weight: 0.4},
	}, 0.15)
}

// RunT1 prints the tool coverage matrix of Table 1 and self-checks each
// tool by running it on a tiny dataset.
func RunT1(cfg *Config) error {
	rng := cfg.rng()
	d := geostat.GaussianClusters(rng, 200, studyBox, []geostat.GaussianCluster{
		{Center: geostat.Point{X: 50, Y: 50}, Sigma: 8, Weight: 1},
	}, 0.2)
	geostat.WithField(rng, d, func(p geostat.Point) float64 { return p.X + p.Y + 200 }, 1)
	grid := geostat.NewPixelGrid(studyBox, 16, 16)
	g := geostat.GridNetwork(4, 4, 10, geostat.Point{})
	events := geostat.RandomNetworkEventsRand(rng, g, 50)

	// Self-checks keyed by the inventory's tool names (internal/core is the
	// single source of truth for the taxonomy itself).
	checks := map[string]func() error{
		"KDV (Def. 1)": func() error {
			_, err := geostat.KDV(d.Points(), geostat.KDVOptions{Kernel: geostat.MustKernel(geostat.Quartic, 10), Grid: grid})
			return err
		},
		"NKDV (§2.2)": func() error {
			_, err := geostat.NKDV(g, events, geostat.NKDVOptions{Kernel: geostat.MustKernel(geostat.Epanechnikov, 8), LixelLength: 3})
			return err
		},
		"STKDV (§2.2)": func() error {
			st := geostat.SpatioTemporalOutbreak(rng, 100, studyBox, 0, 10, nil, 1)
			_, err := geostat.STKDV(st, geostat.STKDVOptions{
				SpaceKernel: geostat.MustKernel(geostat.Quartic, 10),
				TimeKernel:  geostat.MustKernel(geostat.Epanechnikov, 3),
				Grid:        grid, Times: []float64{2, 5, 8},
			})
			return err
		},
		"IDW": func() error {
			_, err := geostat.IDWKNN(d, geostat.IDWOptions{Grid: grid, Power: 2}, 8)
			return err
		},
		"Kriging": func() error {
			bins, err := geostat.EmpiricalVariogram(d, 30, 10)
			if err != nil {
				return err
			}
			v, err := geostat.FitVariogram(bins, geostat.SphericalModel)
			if err != nil {
				return err
			}
			_, err = geostat.Krige(d, geostat.KrigingOptions{Grid: grid, Variogram: v, Neighbors: 10})
			return err
		},
		"K-function (Def. 2)": func() error {
			_, err := geostat.KFunctionCurve(d.Points(), []float64{5, 10}, 0)
			return err
		},
		"network K-function (§2.3)": func() error {
			_, err := geostat.NetworkKFunctionCurve(g, events, []float64{5, 10}, 0)
			return err
		},
		"spatiotemporal K (Eq. 8)": func() error {
			st := geostat.SpatioTemporalOutbreak(rng, 100, studyBox, 0, 10, nil, 1)
			_, err := geostat.STKFunctionSurface(st.Points(), st.Times(), []float64{5}, []float64{2}, 0)
			return err
		},
		"Moran's I": func() error {
			w, err := geostat.KNNWeights(d.Points(), 6)
			if err != nil {
				return err
			}
			_, err = geostat.MoranI(d.Values(), w, 19, rng)
			return err
		},
		"Getis-Ord General G / Gi*": func() error {
			w, err := geostat.DistanceBandWeights(d.Points(), 10)
			if err != nil {
				return err
			}
			if _, gerr := geostat.GeneralG(d.Values(), w, 19, cfg.Seed); gerr != nil {
				return gerr
			}
			_, err = geostat.LocalGStar(d.Values(), w)
			return err
		},
		"DBSCAN / k-means": func() error {
			if _, err := geostat.DBSCAN(d.Points(), 4, 5); err != nil {
				return err
			}
			_, err := geostat.KMeans(d.Points(), 2, 0, rng)
			return err
		},
	}

	tb := newTable("application type", "tool", "baseline", "accelerated", "self-check")
	failed := 0
	for _, tool := range core.Tools() {
		status := "ok"
		fn, ok := checks[tool.Name]
		switch {
		case !ok:
			status = "NO SELF-CHECK"
			failed++
		default:
			if err := fn(); err != nil {
				status = "FAIL: " + err.Error()
				failed++
			}
		}
		tb.add(string(tool.Category), tool.Name, tool.Baseline, tool.Accelerated, status)
	}
	tb.write(cfg.Out)
	if failed > 0 {
		return fmt.Errorf("T1: %d tool(s) failed their self-check", failed)
	}
	return nil
}

// RunT2 prints Table 2: each kernel's spot values and which accelerated
// KDV paths support it.
//
//lint:allow workersopt pure table printing; nothing to parallelise
func RunT2(cfg *Config) error {
	const b = 2.0
	tb := newTable("kernel", "K(0)", "K(b/2)", "K(b)", "finite support", "sweep-line", "grid-cutoff", "bound-approx")
	for _, kt := range geostat.AllKernels() {
		k := geostat.MustKernel(kt, b)
		yes := func(v bool) string {
			if v {
				return "yes"
			}
			return "no"
		}
		tb.add(kt.String(), k.Eval(0), k.Eval(b/2), k.Eval(b),
			yes(k.FiniteSupport()), yes(geostat.SweepLineSupports(kt)), yes(k.FiniteSupport()), "yes")
	}
	tb.write(cfg.Out)
	return nil
}

// RunF1 renders the Figure 1 heatmap and reports the recovered hotspot.
func RunF1(cfg *Config) error {
	d := hkLikeOutbreak(cfg, 20000)
	grid := geostat.NewPixelGrid(studyBox, 256, 256)
	hm, err := geostat.KDV(d.Points(), geostat.KDVOptions{
		Kernel:  geostat.MustKernel(geostat.Quartic, 6),
		Grid:    grid,
		Workers: cfg.workers(),
	})
	if err != nil {
		return err
	}
	ix, iy, peak := hm.ArgMax()
	hot := grid.Center(ix, iy)
	fmt.Fprintf(cfg.Out, "n=%d pixels=%dx%d kernel=quartic b=6\n", d.N(), grid.NX, grid.NY)
	fmt.Fprintf(cfg.Out, "hotspot pixel: (%.1f, %.1f) density %.1f — planted dominant cluster at (30, 60)\n", hot.X, hot.Y, peak)
	if hot.Dist(geostat.Point{X: 30, Y: 60}) > 10 {
		return fmt.Errorf("F1: hotspot %.1f,%.1f not at the planted cluster", hot.X, hot.Y)
	}
	if path, ok := cfg.artifact("f1_heatmap.png"); ok {
		if err := hm.WritePNGFile(path, geostat.HeatRamp); err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "wrote %s\n", path)
	}
	return nil
}

// RunF2 regenerates the Figure 2 K-function plot for the three regimes.
func RunF2(cfg *Config) error {
	rng := cfg.rng()
	n := cfg.scale(2000)
	thresholds := []float64{1, 2, 3, 4, 5, 6, 8, 10, 12}
	datasets := []struct {
		name string
		pts  []geostat.Point
	}{
		{"clustered (Matérn)", clusteredN(cfg, n)},
		{"random (CSR)", geostat.UniformCSR(rng, n, studyBox).Points()},
		{"dispersed (inhibition)", geostat.Dispersed(rng, n, studyBox, 1.8).Points()},
	}
	for _, ds := range datasets {
		plot, err := geostat.KFunctionPlot(ds.pts, geostat.KPlotOptions{
			Thresholds:  thresholds,
			Simulations: 39,
			Window:      studyBox,
			Workers:     cfg.workers(),
		}, rng)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "\n%s (n=%d, L=%d simulations)\n", ds.name, len(ds.pts), plot.Sim)
		tb := newTable("s", "K(s)", "L(s)=min", "U(s)=max", "regime")
		for i, s := range plot.S {
			tb.add(s, plot.K[i], plot.Lo[i], plot.Hi[i], plot.RegimeAt(i).String())
		}
		tb.write(cfg.Out)
	}
	return nil
}

func clusteredN(cfg *Config, n int) []geostat.Point {
	pts := geostat.MaternCluster(cfg.rng(), studyBox, 0.004, 25, 3).Points()
	for len(pts) < n {
		extra := geostat.MaternCluster(cfg.rng(), studyBox, 0.004, 25, 3)
		pts = append(pts, extra.Points()...)
	}
	return pts[:n]
}

// RunF3 reproduces Figure 3: two probes that are planar-close but
// network-far, with the NKDV density ratio and a lixel-length ablation.
func RunF3(cfg *Config) error {
	// Two parallel roads joined at one end; events at the far end of the
	// bottom road.
	b := geostat.NewNetworkBuilder()
	a0 := b.AddNode(geostat.Point{X: 0, Y: 0})
	a1 := b.AddNode(geostat.Point{X: 60, Y: 0})
	c0 := b.AddNode(geostat.Point{X: 0, Y: 2})
	c1 := b.AddNode(geostat.Point{X: 60, Y: 2})
	b.AddEdge(a0, a1)
	b.AddEdge(c0, c1)
	b.AddEdge(a0, c0)
	g, err := b.Build()
	if err != nil {
		return err
	}
	var events []geostat.NetworkPosition
	for i := 0; i < 20; i++ {
		events = append(events, geostat.NetworkPosition{Edge: 0, Offset: 45 + 0.5*float64(i)})
	}
	q1 := geostat.Point{X: 50, Y: 0} // on the events' road
	q2 := geostat.Point{X: 50, Y: 2} // planar-close, network-far

	// Planar KDV density at both probes.
	planarPts := make([]geostat.Point, len(events))
	for i, ev := range events {
		planarPts[i] = geostat.Point{X: 45 + 0.5*float64(i), Y: 0}
		_ = ev
	}
	k := geostat.MustKernel(geostat.Epanechnikov, 10)
	planar := func(q geostat.Point) float64 {
		s := 0.0
		for _, p := range planarPts {
			s += k.Eval2(q.Dist2(p))
		}
		return s
	}
	fmt.Fprintf(cfg.Out, "planar KDV:  F(q1)=%.3f  F(q2)=%.3f  (ratio %.2f — Euclidean distance overestimates q2)\n",
		planar(q1), planar(q2), planar(q2)/planar(q1))

	tb := newTable("lixel length", "lixels", "F(q1) network", "F(q2) network")
	for _, ll := range []float64{4, 2, 1, 0.5} {
		surf, err := geostat.NKDV(g, events, geostat.NKDVOptions{Kernel: k, LixelLength: ll, Workers: cfg.workers()})
		if err != nil {
			return err
		}
		f1, f2 := densityAt(g, surf, q1), densityAt(g, surf, q2)
		tb.add(ll, len(surf.Lixels), f1, f2)
		if f2 >= f1/2 {
			return fmt.Errorf("F3: network density at q2 (%v) not far below q1 (%v)", f2, f1)
		}
	}
	tb.write(cfg.Out)
	fmt.Fprintln(cfg.Out, "network KDV assigns q2 ~zero density at every lixel resolution (Figure 3's point).")
	return nil
}

// densityAt returns the NKDV value of the lixel whose center is nearest to
// the planar point q.
func densityAt(g *geostat.RoadNetwork, s *geostat.NKDVSurface, q geostat.Point) float64 {
	pos, _ := geostat.SnapToNetwork(g, q)
	best, bestD := 0.0, math.Inf(1)
	for i, l := range s.Lixels {
		if l.Edge != pos.Edge {
			continue
		}
		if d := math.Abs(l.Center() - pos.Offset); d < bestD {
			bestD = d
			best = s.Values[i]
		}
	}
	return best
}

// RunF4 renders the Figure 4 pair of STKDV slices and reports hotspot
// drift.
func RunF4(cfg *Config) error {
	rng := cfg.rng()
	d := geostat.SpatioTemporalOutbreak(rng, cfg.scale(20000), studyBox, 0, 60, []geostat.OutbreakWave{
		{Center: geostat.Point{X: 25, Y: 30}, Sigma: 6, TimeMean: 15, TimeSigma: 5, Weight: 1},
		{Center: geostat.Point{X: 70, Y: 70}, Sigma: 6, TimeMean: 45, TimeSigma: 5, Weight: 1.2},
	}, 0.1)
	opt := geostat.STKDVOptions{
		SpaceKernel: geostat.MustKernel(geostat.Quartic, 8),
		TimeKernel:  geostat.MustKernel(geostat.Epanechnikov, 8),
		Grid:        geostat.NewPixelGrid(studyBox, 128, 128),
		Times:       []float64{15, 45},
		Workers:     cfg.workers(),
	}
	cube, err := geostat.STKDV(d, opt)
	if err != nil {
		return err
	}
	tb := newTable("slice time", "hotspot x", "hotspot y", "peak density", "planted wave")
	for i, ts := range opt.Times {
		ix, iy, peak := cube.Slice(i).ArgMax()
		c := opt.Grid.Center(ix, iy)
		wave := "(25, 30) @ t=15"
		if i == 1 {
			wave = "(70, 70) @ t=45"
		}
		tb.add(ts, c.X, c.Y, peak, wave)
		if path, ok := cfg.artifact(fmt.Sprintf("f4_slice_t%.0f.png", ts)); ok {
			if err := cube.Slice(i).WritePNGFile(path, geostat.HeatRamp); err != nil {
				return err
			}
		}
	}
	tb.write(cfg.Out)
	return nil
}

// RunF5 runs the end-to-end Figure 5 pipeline: dataset → CSV → read back →
// KDV → PNG (what cmd/kdv does as a binary).
func RunF5(cfg *Config) error {
	d := hkLikeOutbreak(cfg, 10000)
	csvPath, ok := cfg.artifact("f5_events.csv")
	if !ok {
		fmt.Fprintln(cfg.Out, "skipped (no artifact dir): set -dir to exercise the full CSV→PNG pipeline")
		return nil
	}
	if err := geostat.WriteCSVFile(csvPath, d); err != nil {
		return err
	}
	back, err := geostat.ReadCSVFile(csvPath)
	if err != nil {
		return err
	}
	hm, err := geostat.KDV(back.Points(), geostat.KDVOptions{
		Kernel:  geostat.MustKernel(geostat.Quartic, 6),
		Grid:    geostat.NewPixelGrid(geostat.NewBBox(back.Points()), 256, 256),
		Workers: cfg.workers(),
	})
	if err != nil {
		return err
	}
	pngPath, _ := cfg.artifact("f5_hotspot_map.png")
	if err := hm.WritePNGFile(pngPath, geostat.HeatRamp); err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "pipeline: %d events -> %s -> %s\n", back.N(), csvPath, pngPath)
	return nil
}

// RunF6 prints the Figure 6 spatiotemporal K-function surface with
// envelope classification.
func RunF6(cfg *Config) error {
	rng := cfg.rng()
	d := geostat.SpatioTemporalOutbreak(rng, cfg.scale(1500), studyBox, 0, 60, []geostat.OutbreakWave{
		{Center: geostat.Point{X: 25, Y: 30}, Sigma: 5, TimeMean: 15, TimeSigma: 4, Weight: 1},
		{Center: geostat.Point{X: 70, Y: 70}, Sigma: 5, TimeMean: 45, TimeSigma: 4, Weight: 1},
	}, 0.15)
	sTh := []float64{2, 4, 8, 16}
	tTh := []float64{2, 5, 10, 20}
	plot, err := geostat.STKFunctionPlot(d, sTh, tTh, 19, -1, rng)
	if err != nil {
		return err
	}
	tb := newTable("s \\ t", "t=2", "t=5", "t=10", "t=20")
	for a, s := range sTh {
		cells := make([]any, 0, 5)
		cells = append(cells, fmt.Sprintf("s=%g", s))
		for b := range tTh {
			k, lo, hi := plot.At(a, b)
			cells = append(cells, fmt.Sprintf("%.0f [%.0f,%.0f] %s", k, lo, hi, plot.RegimeAt(a, b).String()))
		}
		tb.add(cells...)
	}
	tb.write(cfg.Out)
	if plot.RegimeAt(0, 0) != geostat.RegimeClustered {
		return fmt.Errorf("F6: outbreak not clustered at the smallest (s,t)")
	}
	fmt.Fprintln(cfg.Out, "two-wave outbreak reads 'clustered' at small (s,t): space-time interaction detected.")
	return nil
}
