package experiments

import (
	"fmt"
	"math"

	"geostat"
)

// Ablations for the design choices DESIGN.md calls out, beyond the paper's
// own artifacts: A1 bandwidth-exploration sharing, A2 adaptive vs fixed
// bandwidth, A3 equal-split vs plain network kernels.

// RunA1 measures the SAFE-style multi-bandwidth sharing: the bandwidth
// exploration workload (m bandwidths below a common b_max) computed by one
// shared support scan vs m independent per-bandwidth scans (GridCutoff).
// The sweep line is shown for context: it is this repository's fastest
// per-bandwidth exact method and bounds what any scan-sharing can achieve.
func RunA1(cfg *Config) error {
	pts := hkLikeOutbreak(cfg, 60000).Points()
	grid := geostat.NewPixelGrid(studyBox, 128, 128)
	bandwidths := []float64{9, 10, 11, 12, 13, 14, 15, 16}
	tb := newTable("bandwidths m", "cutoff ×m", "sweep-line ×m", "shared one-pass", "speedup vs cutoff")
	for _, m := range []int{2, 4, 8} {
		bw := bandwidths[:m]
		runEach := func(method geostat.KDVMethod) func() {
			return func() {
				for _, b := range bw {
					if _, err := geostat.KDV(pts, geostat.KDVOptions{
						Kernel: geostat.MustKernel(geostat.Quartic, b), Grid: grid, Method: method,
					}); err != nil {
						panic(err)
					}
				}
			}
		}
		tCutoff := medianOf3(runEach(geostat.KDVGridCutoff))
		tSweep := medianOf3(runEach(geostat.KDVSweepLine))
		var shared []*geostat.Heatmap
		tShared := medianOf3(func() {
			var err error
			shared, err = geostat.KDVMultiBandwidth(pts, grid, geostat.Quartic, bw, 0)
			if err != nil {
				panic(err)
			}
		})
		// Exactness check at the largest bandwidth.
		want, err := geostat.KDV(pts, geostat.KDVOptions{
			Kernel: geostat.MustKernel(geostat.Quartic, bw[m-1]), Grid: grid,
		})
		if err != nil {
			return err
		}
		diff, _ := shared[m-1].MaxAbsDiff(want)
		_, peak := want.MinMax()
		if diff > 1e-9*(1+peak) {
			return fmt.Errorf("A1: shared surface differs by %v", diff)
		}
		tb.add(m, tCutoff, tSweep, tShared, speedup(tCutoff, tShared))
	}
	tb.write(cfg.Out)
	fmt.Fprintln(cfg.Out, "shared pays one b_max scan regardless of m; per-bandwidth scans pay Σ b_i² of work.")
	fmt.Fprintln(cfg.Out, "(the SLAM-style sweep line remains the best per-bandwidth method — sharing helps scan-based evaluation.)")
	return nil
}

// RunA2 contrasts fixed-bandwidth and adaptive KDV on data whose clusters
// have very different scales: the fixed bandwidth either blurs the tight
// cluster or fragments the wide one; the adaptive surface resolves both.
func RunA2(cfg *Config) error {
	rng := cfg.rng()
	pts := geostat.GaussianClusters(rng, cfg.scale(20000), studyBox, []geostat.GaussianCluster{
		{Center: geostat.Point{X: 25, Y: 50}, Sigma: 1.5, Weight: 1}, // tight
		{Center: geostat.Point{X: 70, Y: 50}, Sigma: 12, Weight: 1},  // wide
	}, 0.1).Points()
	grid := geostat.NewPixelGrid(studyBox, 128, 128)
	bw, err := geostat.AdaptiveBandwidths(pts, 16, 1.0, 1.0)
	if err != nil {
		return err
	}
	adaptive, err := geostat.KDVAdaptive(pts, bw, geostat.Quartic, grid, -1)
	if err != nil {
		return err
	}
	tb := newTable("surface", "peak x", "peak y", "peak/median contrast")
	report := func(name string, hm *geostat.Heatmap) {
		ix, iy, peak := hm.ArgMax()
		c := grid.Center(ix, iy)
		tb.add(name, c.X, c.Y, peak/medianPositive(hm.Values))
	}
	for _, b := range []float64{2, 12} {
		fixed, err := geostat.KDV(pts, geostat.KDVOptions{
			Kernel: geostat.MustKernel(geostat.Quartic, b), Grid: grid, Workers: cfg.workers(),
		})
		if err != nil {
			return err
		}
		report(fmt.Sprintf("fixed b=%g", b), fixed)
	}
	report("adaptive (k=16 pilot)", adaptive)
	tb.write(cfg.Out)
	minB, maxB := math.Inf(1), math.Inf(-1)
	for _, b := range bw {
		minB = math.Min(minB, b)
		maxB = math.Max(maxB, b)
	}
	fmt.Fprintf(cfg.Out, "pilot bandwidths span %.2f..%.2f: tight-cluster points sharpen, sparse points smooth.\n", minB, maxB)
	return nil
}

func medianPositive(vs []float64) float64 {
	var pos []float64
	for _, v := range vs {
		if v > 0 {
			pos = append(pos, v)
		}
	}
	if len(pos) == 0 {
		return 1
	}
	// Selection by sorting a copy (raster sizes are small here).
	for i := 1; i < len(pos); i++ {
		for j := i; j > 0 && pos[j] < pos[j-1]; j-- {
			pos[j], pos[j-1] = pos[j-1], pos[j]
		}
	}
	return pos[len(pos)/2]
}

// RunA3 measures mass conservation of the equal-split network kernel vs
// the plain shortest-path kernel across intersection-rich networks.
func RunA3(cfg *Config) error {
	rng := cfg.rng()
	tb := newTable("network", "events", "expected mass", "plain kernel mass", "equal-split mass", "plain inflation")
	const bw = 8.0
	kernelMass := 4 * bw / 3 // 1-D Epanechnikov: ∫(1−t²/b²) over [−b, b]
	for _, tc := range []struct {
		name string
		g    *geostat.RoadNetwork
	}{
		{"grid 8x8 (degree 4)", geostat.GridNetwork(8, 8, 10, geostat.Point{})},
		{"ring-radial (hub degree 8)", geostat.RingRadialNetwork(4, 8, 10, geostat.Point{X: 50, Y: 50})},
	} {
		// Interior events only so no mass leaves the network.
		var events []geostat.NetworkPosition
		for len(events) < cfg.scale(300) {
			pos := geostat.RandomNetworkEventsRand(rng, tc.g, 1)[0]
			p := tc.g.PointAt(pos.Edge, pos.Offset)
			if p.Dist(geostat.Point{X: 35, Y: 35}) < 25 {
				events = append(events, pos)
			}
		}
		opt := geostat.NKDVOptions{Kernel: geostat.MustKernel(geostat.Epanechnikov, bw), LixelLength: 0.25}
		plain, err := geostat.NKDV(tc.g, events, opt)
		if err != nil {
			return err
		}
		esd, err := geostat.NKDVEqualSplit(tc.g, events, opt)
		if err != nil {
			return err
		}
		integrate := func(s *geostat.NKDVSurface) float64 {
			total := 0.0
			for i, l := range s.Lixels {
				total += s.Values[i] * l.Length()
			}
			return total
		}
		want := float64(len(events)) * kernelMass
		mPlain, mESD := integrate(plain), integrate(esd)
		tb.add(tc.name, len(events), want, mPlain, mESD, fmt.Sprintf("%.2fx", mPlain/want))
		if math.Abs(mESD-want)/want > 0.05 {
			return fmt.Errorf("A3: equal-split mass %v deviates from expected %v", mESD, want)
		}
	}
	tb.write(cfg.Out)
	fmt.Fprintln(cfg.Out, "equal-split conserves kernel mass through intersections; the plain kernel inflates it.")
	return nil
}
