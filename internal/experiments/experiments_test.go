package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// Every experiment must run to completion in quick mode — this is the
// integration test for the whole geobench harness (each runner already
// self-checks its scientific assertion and returns an error on failure).
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			var buf bytes.Buffer
			cfg := &Config{Out: &buf, Dir: t.TempDir(), Seed: 42, Quick: true}
			if err := r.Run(cfg); err != nil {
				t.Fatalf("%s: %v\noutput:\n%s", r.ID, err, buf.String())
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", r.ID)
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("c1"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	if _, ok := Lookup("F6"); !ok {
		t.Error("exact lookup failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("bogus id found")
	}
	if len(All()) < 16 {
		t.Errorf("only %d experiments registered", len(All()))
	}
}

func TestTableFormatting(t *testing.T) {
	tb := newTable("a", "long-header", "c")
	tb.add("x", 1.5, "yes")
	tb.add(12345, 0.00012, "no")
	var buf bytes.Buffer
	tb.write(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "a ") || !strings.Contains(lines[0], "long-header") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(lines[2], "1.500") {
		t.Errorf("float formatting: %q", lines[2])
	}
	if !strings.Contains(lines[3], "0.00012") {
		t.Errorf("small float formatting: %q", lines[3])
	}
}

func TestConfigScale(t *testing.T) {
	full := &Config{}
	if full.scale(1000) != 1000 {
		t.Error("full scale changed n")
	}
	quick := &Config{Quick: true}
	if quick.scale(1000) != 100 {
		t.Errorf("quick scale = %d", quick.scale(1000))
	}
	if quick.scale(50) != 10 {
		t.Errorf("quick scale floor = %d", quick.scale(50))
	}
}

func TestArtifactDisabled(t *testing.T) {
	cfg := &Config{}
	if _, ok := cfg.artifact("x.png"); ok {
		t.Error("artifact without dir should be disabled")
	}
	cfg.Dir = t.TempDir()
	path, ok := cfg.artifact("x.png")
	if !ok || !strings.HasSuffix(path, "x.png") {
		t.Errorf("artifact = %q, %v", path, ok)
	}
}
