package serve_test

import (
	"net/http"
	"testing"

	"geostat/internal/serve"
)

// TestToolParamEdgeCases asserts the exact 400 body for every malformed-
// parameter class: unknown enum values, out-of-range and non-numeric
// numbers, NaN coordinates, and oversized grids. Bodies are part of the
// API contract (clients pattern-match them), so the assertions are exact
// string equality, not substring checks.
func TestToolParamEdgeCases(t *testing.T) {
	srv := newServer(t, serve.Config{CacheBytes: 1 << 20})
	// field=true attaches values so the interpolation/autocorrelation
	// tools get past dataset validation and into parameter parsing.
	generate(t, srv, "name=d&kind=csr&n=100&seed=1&field=true")

	cases := []struct {
		name   string
		target string
		want   string // exact error message
	}{
		{
			name:   "unknown kernel",
			target: "/v1/kdv?dataset=d&kernel=bogus",
			want:   `kernel: unknown kernel "bogus"`,
		},
		{
			name:   "negative bandwidth",
			target: "/v1/kdv?dataset=d&bandwidth=-2",
			want:   `kernel: bandwidth must be positive and finite, got -2`,
		},
		{
			name:   "NaN bandwidth",
			target: "/v1/kdv?dataset=d&bandwidth=NaN",
			want:   `kernel: bandwidth must be positive and finite, got NaN`,
		},
		{
			name:   "non-numeric bandwidth",
			target: "/v1/kdv?dataset=d&bandwidth=abc",
			want:   `invalid parameters: bandwidth: not a number ("abc")`,
		},
		{
			name:   "unknown KDV method",
			target: "/v1/kdv?dataset=d&method=warp",
			want:   `unknown method "warp"`,
		},
		{
			name:   "zero grid width",
			target: "/v1/kdv?dataset=d&bandwidth=5&width=0",
			want:   `invalid parameters: width/height: must be in [1, 4096]`,
		},
		{
			name:   "oversized grid height",
			target: "/v1/kdv?dataset=d&bandwidth=5&height=5000",
			want:   `invalid parameters: width/height: must be in [1, 4096]`,
		},
		{
			name:   "non-integer width",
			target: "/v1/kdv?dataset=d&bandwidth=5&width=abc",
			want:   `invalid parameters: width: not an integer ("abc")`,
		},
		{
			name:   "NaN bbox coordinate",
			target: "/v1/kdv?dataset=d&bandwidth=5&bbox=NaN,0,10,10",
			want:   `invalid parameters: bbox: coordinates must be finite ("NaN,0,10,10")`,
		},
		{
			name:   "infinite bbox coordinate",
			target: "/v1/kdv?dataset=d&bandwidth=5&bbox=0,0,%2BInf,10",
			want:   `invalid parameters: bbox: coordinates must be finite ("0,0,+Inf,10")`,
		},
		{
			name:   "empty bbox",
			target: "/v1/kdv?dataset=d&bandwidth=5&bbox=5,5,1,1",
			want:   `invalid parameters: bbox: empty box "5,5,1,1"`,
		},
		{
			name:   "malformed bbox",
			target: "/v1/kdv?dataset=d&bandwidth=5&bbox=1,2,3",
			want:   `invalid parameters: bbox: want minx,miny,maxx,maxy ("1,2,3")`,
		},
		{
			name:   "multiple errors joined in read order",
			target: "/v1/kdv?dataset=d&bandwidth=abc&width=xyz",
			want:   `invalid parameters: bandwidth: not a number ("abc"); width: not an integer ("xyz")`,
		},
		{
			name:   "kfunction zero steps",
			target: "/v1/kfunction?dataset=d&steps=0",
			want:   `steps must be in [1, 1000]`,
		},
		{
			name:   "kfunction oversized sims",
			target: "/v1/kfunction?dataset=d&sims=20000",
			want:   `sims must be in [1, 10000]`,
		},
		{
			name:   "kfunction negative smax",
			target: "/v1/kfunction?dataset=d&smax=-1",
			want:   `smax must be positive`,
		},
		{
			name:   "kfunction NaN smax",
			target: "/v1/kfunction?dataset=d&smax=NaN",
			want:   `smax must be positive`,
		},
		{
			name:   "moran unknown weights scheme",
			target: "/v1/moran?dataset=d&weights=foo",
			want:   `unknown weights scheme "foo" (knn|band)`,
		},
		{
			name:   "idw unknown method",
			target: "/v1/idw?dataset=d&method=x",
			want:   `unknown method "x" (naive|knn|radius)`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr := do(t, srv, http.MethodGet, tc.target, nil)
			if rr.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body %s)", rr.Code, rr.Body.String())
			}
			wantBody := `{"error":"` + jsonEscape(tc.want) + `"}` + "\n"
			if got := rr.Body.String(); got != wantBody {
				t.Fatalf("body:\n got %s\nwant %s", got, wantBody)
			}
		})
	}
}

// jsonEscape escapes the characters json.Encoder escapes inside the
// expected error strings (quotes only; the messages contain no others).
func jsonEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '"' {
			out = append(out, '\\')
		}
		out = append(out, s[i])
	}
	return string(out)
}
