package serve

import (
	"fmt"
	"sort"
	"sync"

	"geostat"
)

// DatasetInfo is the registry's public view of one dataset. Digest is only
// populated by the digest endpoint (it costs a full pass over the
// columns); the listing leaves it empty.
type DatasetInfo struct {
	Name      string `json:"name"`
	N         int    `json:"n"`
	Version   uint64 `json:"version"`
	HasTimes  bool   `json:"has_times"`
	HasValues bool   `json:"has_values"`
	Digest    string `json:"digest,omitempty"`
}

type regEntry struct {
	d       *geostat.Dataset
	version uint64

	// digest memoises d.Digest() — immutable dataset, computed on first
	// request. The Once is shared by pointer so copies of the entry value
	// still memoise once.
	digestOnce *sync.Once
	digest     *string
}

// Registry is the in-memory dataset store behind geostatd. Each name maps
// to an immutable dataset snapshot plus a registry-wide monotonic version:
// re-uploading a name bumps the version, so cache keys built from
// name@version can never serve results computed against stale data.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]regEntry
	version uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]regEntry)}
}

// Put stores (or replaces) a dataset under name after validating it.
// Callers must not mutate d afterwards — concurrent requests read it
// without copying.
func (r *Registry) Put(name string, d *geostat.Dataset) (uint64, error) {
	if name == "" {
		return 0, fmt.Errorf("serve: empty dataset name")
	}
	if d == nil || d.N() == 0 {
		return 0, fmt.Errorf("serve: dataset %q is empty", name)
	}
	if err := d.Validate(); err != nil {
		return 0, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.version++
	r.entries[name] = regEntry{
		d: d, version: r.version,
		digestOnce: new(sync.Once), digest: new(string),
	}
	return r.version, nil
}

// Get returns the dataset and its version, or false if name is unknown.
func (r *Registry) Get(name string) (*geostat.Dataset, uint64, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	return e.d, e.version, ok
}

// Digest returns the dataset's content digest (see Dataset.Digest), its
// version, and whether name is registered. The digest is computed once per
// stored snapshot and memoised.
func (r *Registry) Digest(name string) (digest string, version uint64, ok bool) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return "", 0, false
	}
	e.digestOnce.Do(func() { *e.digest = e.d.Digest() })
	return *e.digest, e.version, true
}

// List returns every dataset's info, sorted by name.
func (r *Registry) List() []DatasetInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name) //lint:allow maporder names are sorted before use
	}
	sort.Strings(names)
	out := make([]DatasetInfo, len(names))
	for i, name := range names {
		e := r.entries[name]
		out[i] = DatasetInfo{
			Name:      name,
			N:         e.d.N(),
			Version:   e.version,
			HasTimes:  e.d.HasTimes(),
			HasValues: e.d.HasValues(),
		}
	}
	return out
}
