package serve

import (
	"fmt"
	"sort"
	"sync"

	"geostat"
)

// DatasetInfo is the registry's public view of one dataset.
type DatasetInfo struct {
	Name      string `json:"name"`
	N         int    `json:"n"`
	Version   uint64 `json:"version"`
	HasTimes  bool   `json:"has_times"`
	HasValues bool   `json:"has_values"`
}

type regEntry struct {
	d       *geostat.Dataset
	version uint64
}

// Registry is the in-memory dataset store behind geostatd. Each name maps
// to an immutable dataset snapshot plus a registry-wide monotonic version:
// re-uploading a name bumps the version, so cache keys built from
// name@version can never serve results computed against stale data.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]regEntry
	version uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]regEntry)}
}

// Put stores (or replaces) a dataset under name after validating it.
// Callers must not mutate d afterwards — concurrent requests read it
// without copying.
func (r *Registry) Put(name string, d *geostat.Dataset) (uint64, error) {
	if name == "" {
		return 0, fmt.Errorf("serve: empty dataset name")
	}
	if d == nil || d.N() == 0 {
		return 0, fmt.Errorf("serve: dataset %q is empty", name)
	}
	if err := d.Validate(); err != nil {
		return 0, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.version++
	r.entries[name] = regEntry{d: d, version: r.version}
	return r.version, nil
}

// Get returns the dataset and its version, or false if name is unknown.
func (r *Registry) Get(name string) (*geostat.Dataset, uint64, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	return e.d, e.version, ok
}

// List returns every dataset's info, sorted by name.
func (r *Registry) List() []DatasetInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name) //lint:allow maporder names are sorted before use
	}
	sort.Strings(names)
	out := make([]DatasetInfo, len(names))
	for i, name := range names {
		e := r.entries[name]
		out[i] = DatasetInfo{
			Name:      name,
			N:         e.d.N(),
			Version:   e.version,
			HasTimes:  e.d.HasTimes(),
			HasValues: e.d.HasValues(),
		}
	}
	return out
}
