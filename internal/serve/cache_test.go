package serve

import (
	"fmt"
	"net/url"
	"sync"
	"testing"
)

func TestCacheHitAndMiss(t *testing.T) {
	c := NewCache(1 << 20)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put("a", Value{Body: []byte("payload"), ContentType: "text/plain"})
	v, ok := c.Get("a")
	if !ok || string(v.Body) != "payload" || v.ContentType != "text/plain" {
		t.Fatalf("got (%+v, %v), want the stored value", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	// All keys below hash to whichever shard they hash to; to exercise LRU
	// deterministically, drive one shard by reusing a single key prefix
	// and checking global invariants instead of per-shard layout: total
	// bytes must never exceed the budget, and recently-used entries must
	// survive eviction pressure within their shard.
	c := NewCache(numShards * 64) // 64 bytes per shard
	big := make([]byte, 40)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("key-%03d", i), Value{Body: big})
	}
	st := c.Stats()
	if st.Bytes > numShards*64 {
		t.Fatalf("cache holds %d bytes, budget is %d", st.Bytes, numShards*64)
	}
	if st.Evictions == 0 {
		t.Fatal("expected evictions under pressure, saw none")
	}
}

func TestCacheRecencySurvivesEviction(t *testing.T) {
	// One shard's budget fits exactly one 40-byte entry (+key overhead),
	// so inserting two same-shard keys evicts the least recently used.
	c := NewCache(numShards * 64)
	keyA, keyB := sameShardKeys(c)
	c.Put(keyA, Value{Body: make([]byte, 40)})
	if _, ok := c.Get(keyA); !ok {
		t.Fatal("keyA missing after Put")
	}
	c.Put(keyB, Value{Body: make([]byte, 40)})
	if _, ok := c.Get(keyB); !ok {
		t.Fatal("keyB (most recent) was evicted")
	}
	if _, ok := c.Get(keyA); ok {
		t.Fatal("keyA (least recent) survived past the shard budget")
	}
}

// sameShardKeys returns two distinct keys that hash to the same shard.
func sameShardKeys(c *Cache) (string, string) {
	first := fmt.Sprintf("k-%d", 0)
	target := c.shard(first)
	for i := 1; ; i++ {
		k := fmt.Sprintf("k-%d", i)
		if c.shard(k) == target {
			return first, k
		}
	}
}

func TestCacheOversizedValueNotStored(t *testing.T) {
	c := NewCache(numShards * 32)
	c.Put("huge", Value{Body: make([]byte, 1024)})
	if _, ok := c.Get("huge"); ok {
		t.Fatal("value larger than a shard was cached")
	}
}

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache
	if c = NewCache(0); c != nil {
		t.Fatal("NewCache(0) should return nil")
	}
	c.Put("a", Value{Body: []byte("x")})
	if _, ok := c.Get("a"); ok {
		t.Fatal("nil cache reported a hit")
	}
	if st := c.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil cache stats = %+v, want zero", st)
	}
}

func TestCacheReplaceSameKey(t *testing.T) {
	c := NewCache(1 << 20)
	c.Put("k", Value{Body: []byte("one")})
	c.Put("k", Value{Body: []byte("three")})
	v, ok := c.Get("k")
	if !ok || string(v.Body) != "three" {
		t.Fatalf("got (%q, %v), want the replacement", v.Body, ok)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d after replace, want 1", st.Entries)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(1 << 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("key-%d", i%32)
				if i%3 == 0 {
					c.Put(key, Value{Body: []byte(key)})
				} else if v, ok := c.Get(key); ok && string(v.Body) != key {
					t.Errorf("goroutine %d: key %q returned body %q", g, key, v.Body)
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
}

func TestCacheKeyCanonicalOrdering(t *testing.T) {
	a, _ := url.ParseQuery("width=64&height=32&seed=1")
	b, _ := url.ParseQuery("seed=1&width=64&height=32")
	ka := cacheKey("kdv", "d", 3, a)
	kb := cacheKey("kdv", "d", 3, b)
	if ka != kb {
		t.Fatalf("query ordering changed the key:\n  %s\n  %s", ka, kb)
	}
	if kc := cacheKey("kdv", "d", 4, a); kc == ka {
		t.Fatal("version bump did not change the key")
	}
	c, _ := url.ParseQuery("width=64&height=32&seed=2")
	if kc := cacheKey("kdv", "d", 3, c); kc == ka {
		t.Fatal("seed change did not change the key")
	}
	if kc := cacheKey("idw", "d", 3, a); kc == ka {
		t.Fatal("tool change did not change the key")
	}
}

func TestCacheKeyRepeatedParams(t *testing.T) {
	a, _ := url.ParseQuery("tag=b&tag=a")
	b, _ := url.ParseQuery("tag=a&tag=b")
	if cacheKey("t", "d", 1, a) != cacheKey("t", "d", 1, b) {
		t.Fatal("repeated-parameter ordering changed the key")
	}
}
