package serve

import (
	"context"
	"errors"
	"sync/atomic"

	"geostat/internal/obs"
)

// errOverloaded is returned when a computation cannot even be queued:
// every in-flight slot is busy and the wait queue is at capacity. The
// harness maps it to 503 with Retry-After — shedding load early is what
// keeps the queue from growing into a latency cliff.
var errOverloaded = errors.New("serve: server overloaded (admission queue full)")

// admission is the server's admission controller: a semaphore of
// in-flight computation slots fronted by a bounded wait queue.
//
// The plain semaphore it replaces had an unbounded queue: under
// sustained overload every excess request parked forever (or until its
// client gave up), so latency grew without bound while throughput stayed
// flat. Bounding the queue turns that into fast, explicit backpressure:
// a request that cannot get a slot or a queue position is rejected
// immediately with errOverloaded.
//
// maxQueue semantics (Config.MaxQueue): 0 waits without bound (the
// legacy behaviour, still the zero-value default), > 0 bounds the number
// of computations waiting for a slot, < 0 disables waiting entirely —
// no free slot means immediate rejection.
type admission struct {
	sem      chan struct{} // nil = unlimited concurrency, acquire is free
	maxQueue int
	queued   atomic.Int64

	queueDepth *obs.Gauge
	rejected   *obs.Counter
}

func newAdmission(maxInFlight, maxQueue int, m *obs.Registry) *admission {
	a := &admission{
		maxQueue: maxQueue,
		queueDepth: m.Gauge("serve_admission_queue_count",
			"computations waiting for an in-flight slot"),
		rejected: m.Counter("serve_admission_rejected_total",
			"computations rejected because the admission queue was full"),
	}
	if maxInFlight > 0 {
		a.sem = make(chan struct{}, maxInFlight)
	}
	return a
}

// acquire obtains an in-flight slot, waiting in the bounded queue if
// necessary. On success it returns the release function; on failure the
// error is errOverloaded (queue full) or ctx.Err() (caller gave up while
// queued).
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	if a.sem == nil {
		return func() {}, nil
	}
	select {
	case a.sem <- struct{}{}:
		return a.release, nil
	default:
	}
	if a.maxQueue < 0 {
		a.rejected.Inc()
		return nil, errOverloaded
	}
	if a.maxQueue > 0 {
		// CAS loop so the queue bound is exact: concurrent arrivals
		// cannot both claim the last queue position.
		for {
			n := a.queued.Load()
			if n >= int64(a.maxQueue) {
				a.rejected.Inc()
				return nil, errOverloaded
			}
			if a.queued.CompareAndSwap(n, n+1) {
				break
			}
		}
	} else {
		a.queued.Add(1)
	}
	a.queueDepth.Add(1)
	defer func() {
		a.queued.Add(-1)
		a.queueDepth.Add(-1)
	}()
	select {
	case a.sem <- struct{}{}:
		return a.release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (a *admission) release() { <-a.sem }
