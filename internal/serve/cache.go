package serve

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// numShards is the cache's lock-striping factor. Requests hash across
// shards by cache key, so concurrent tile fetches rarely contend on the
// same mutex. A power of two keeps the modulo cheap.
const numShards = 16

// Value is one cached HTTP payload: the exact bytes and content type the
// handler wrote on the first computation. Bodies are immutable once
// stored — hits serve the same slice without copying, which is what makes
// repeated identical requests byte-identical by construction.
type Value struct {
	Body        []byte
	ContentType string
}

// size is the byte charge of an entry (body + key; the rest is noise).
func (v Value) size(key string) int64 {
	return int64(len(v.Body) + len(v.ContentType) + len(key))
}

// CacheStats is a point-in-time snapshot of cache behaviour.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int64 `json:"entries"`
	Bytes     int64 `json:"bytes"`
}

// HitRate returns hits/(hits+misses), 0 when the cache is untouched.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type cacheEntry struct {
	key string
	val Value
}

type cacheShard struct {
	mu    sync.Mutex
	ll    *list.List // front = most recently used
	index map[string]*list.Element
	bytes int64
}

// Cache is a sharded LRU result cache keyed by the canonical request
// identity (dataset@version, tool, sorted params — see cacheKey). Each
// shard holds its own lock, list, and byte budget; eviction is
// least-recently-used per shard. A nil *Cache is a valid always-miss
// cache, which is how caching is disabled.
type Cache struct {
	shards        [numShards]cacheShard
	maxShardBytes int64
	hits          atomic.Int64
	misses        atomic.Int64
	evictions     atomic.Int64
}

// NewCache returns a cache bounded at roughly maxBytes of payload across
// all shards. maxBytes <= 0 returns nil — the always-miss cache.
func NewCache(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		return nil
	}
	perShard := maxBytes / numShards
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache{maxShardBytes: perShard}
	for i := range c.shards {
		c.shards[i].ll = list.New()
		c.shards[i].index = make(map[string]*list.Element)
	}
	return c
}

func (c *Cache) shard(key string) *cacheShard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return &c.shards[h.Sum32()%numShards]
}

// Get returns the cached value for key, refreshing its recency.
func (c *Cache) Get(key string) (Value, bool) {
	if c == nil {
		return Value{}, false
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.index[key]
	if !ok {
		c.misses.Add(1)
		return Value{}, false
	}
	s.ll.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).val, true
}

// Put stores a value, evicting least-recently-used entries from the
// shard until it fits. A value larger than a whole shard is not cached.
func (c *Cache) Put(key string, v Value) {
	if c == nil {
		return
	}
	sz := v.size(key)
	if sz > c.maxShardBytes {
		return
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.index[key]; ok {
		// Replace in place (same key recomputed, e.g. after a cache-miss
		// race between two identical requests).
		old := el.Value.(*cacheEntry)
		s.bytes += sz - old.val.size(key)
		old.val = v
		s.ll.MoveToFront(el)
	} else {
		s.index[key] = s.ll.PushFront(&cacheEntry{key: key, val: v})
		s.bytes += sz
	}
	for s.bytes > c.maxShardBytes {
		back := s.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		s.ll.Remove(back)
		delete(s.index, e.key)
		s.bytes -= e.val.size(e.key)
		c.evictions.Add(1)
	}
}

// Stats snapshots the cache counters and current occupancy.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	st := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += int64(s.ll.Len())
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}
