// Package serve implements geostatd's HTTP serving layer: Table-1
// analytics (KDV, K-function, Moran's I, General G, IDW) over JSON/PNG,
// backed by an in-memory dataset registry and a sharded LRU result cache.
//
// Every tool request flows through the same harness (Server.handleTool):
// count the request, try the cache, acquire an in-flight slot, bound the
// computation with the per-request timeout, run it with the request
// context threaded down into the worker pools, then map the outcome —
// context.Canceled becomes 499 (client closed request),
// context.DeadlineExceeded becomes 503 with Retry-After, anything else
// becomes 400. Successful responses are cached by their canonical key
// (see cacheKey) and replayed byte-identically.
//
// The geolint determinism rules apply here as everywhere: all randomness
// enters through explicit seed parameters (geostat.NewRand), responses
// are bit-identical for every worker count, and no goroutines are spawned
// outside internal/parallel.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"geostat"
	"geostat/internal/obs"
)

// StatusClientClosedRequest is the nginx-convention status for a request
// abandoned by the client before the computation finished.
const StatusClientClosedRequest = 499

// Config configures a Server.
type Config struct {
	// Timeout bounds each tool computation; <= 0 means no deadline.
	Timeout time.Duration
	// MaxInFlight caps concurrently executing tool requests; <= 0 means
	// unlimited. Requests beyond the cap wait (honouring their context)
	// rather than failing fast.
	MaxInFlight int
	// CacheBytes bounds the result cache; <= 0 disables caching.
	CacheBytes int64
	// Workers is the parallelism handed to every tool invocation
	// (0/1 serial, <0 GOMAXPROCS). Results are bit-identical for every
	// value; this only trades latency for CPU.
	Workers int
	// MaxBodyBytes caps dataset upload bodies; <= 0 means 32 MiB.
	MaxBodyBytes int64
	// SlowThreshold logs the full span tree of any tool request that takes
	// at least this long; <= 0 disables slow-request logging.
	SlowThreshold time.Duration
	// Logf receives slow-request logs; nil means the standard logger.
	Logf func(format string, args ...any)
}

// Server is the geostatd HTTP handler set. Create with NewServer; it is
// safe for concurrent use.
type Server struct {
	cfg     Config
	reg     *Registry
	cache   *Cache
	sem     chan struct{} // nil = unlimited
	mux     *http.ServeMux
	start   time.Time
	metrics *obs.Registry

	// lastTrace is the span tree of the most recently completed tool
	// request, served at /debug/trace/last.
	lastTrace atomic.Pointer[obs.SpanTree]
}

// NewServer returns a Server with an empty registry.
func NewServer(cfg Config) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	s := &Server{
		cfg:     cfg,
		reg:     NewRegistry(),
		cache:   NewCache(cfg.CacheBytes),
		mux:     http.NewServeMux(),
		start:   time.Now(),
		metrics: obs.NewRegistry(),
	}
	if cfg.MaxInFlight > 0 {
		s.sem = make(chan struct{}, cfg.MaxInFlight)
	}
	s.registerObs()
	s.routes()
	return s
}

// Registry exposes the dataset registry (CLI preloading, tests).
func (s *Server) Registry() *Registry { return s.reg }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/trace/last", s.handleTraceLast)
	s.mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	s.mux.HandleFunc("POST /v1/datasets/{name}", s.handleUpload)
	s.mux.HandleFunc("POST /v1/generate", s.handleGenerate)
	s.mux.HandleFunc("GET /v1/kdv", s.toolHandler("kdv", s.computeKDV))
	s.mux.HandleFunc("GET /v1/kfunction", s.toolHandler("kfunction", s.computeKFunction))
	s.mux.HandleFunc("GET /v1/moran", s.toolHandler("moran", s.computeMoran))
	s.mux.HandleFunc("GET /v1/generalg", s.toolHandler("generalg", s.computeGeneralG))
	s.mux.HandleFunc("GET /v1/idw", s.toolHandler("idw", s.computeIDW))
}

// computeFunc runs one tool against a registered dataset and the
// request's parsed parameters, returning the response payload. It must
// honour ctx: the worker pools it drives check cancellation between
// chunks.
type computeFunc func(ctx context.Context, d *geostat.Dataset, p *params) (Value, error)

// toolHandler wraps a computeFunc in the shared serving harness. The
// "dataset" query parameter names the input; the canonical cache key is
// derived from the tool, the dataset@version, and the full sorted query.
func (s *Server) toolHandler(tool string, compute computeFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		mRequests.Add(tool, 1)
		mInFlight.Add(1)
		defer mInFlight.Add(-1)
		s.metrics.Counter("geostatd_requests_total",
			"tool requests served", obs.L("tool", tool)).Inc()
		inflight := s.metrics.Gauge("geostatd_requests_inflight",
			"tool requests executing now")
		inflight.Add(1)
		defer inflight.Add(-1)

		ctx, root := obs.NewTrace(r.Context(), "request")
		root.SetAttr("tool", tool)
		defer s.finishTrace(tool, root)

		name := r.URL.Query().Get("dataset")
		if name == "" {
			s.writeError(w, http.StatusBadRequest, "missing dataset parameter")
			return
		}
		_, lookup := obs.Trace(ctx, "request.lookup")
		d, version, ok := s.reg.Get(name)
		lookup.End()
		if !ok {
			s.writeError(w, http.StatusNotFound, fmt.Sprintf("unknown dataset %q", name))
			return
		}

		key := cacheKey(tool, name, version, r.URL.Query())
		_, probe := obs.Trace(ctx, "request.cache")
		v, hit := s.cache.Get(key)
		probe.End()
		if hit {
			mCacheHits.Add(1)
			root.SetAttr("cache", "hit")
			writeValue(w, v, "hit")
			return
		}
		mCacheMisses.Add(1)

		if s.sem != nil {
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			case <-ctx.Done():
				s.writeToolError(w, ctx.Err())
				return
			}
		}
		if s.cfg.Timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
			defer cancel()
		}

		p := newParams(r.URL.Query())
		v, err := compute(ctx, d, p)
		if err == nil {
			err = p.err()
		}
		if err != nil {
			s.writeToolError(w, err)
			return
		}
		s.cache.Put(key, v)
		writeValue(w, v, "miss")
	}
}

// writeToolError maps a compute failure to its HTTP status: 499 for a
// client disconnect, 503 (+Retry-After) for the per-request deadline,
// 400 for everything else (validation, bad parameters).
func (s *Server) writeToolError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.Canceled):
		mCanceled.Add(1)
		s.writeError(w, StatusClientClosedRequest, "client closed request")
	case errors.Is(err, context.DeadlineExceeded):
		mTimeouts.Add(1)
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusServiceUnavailable, "computation exceeded the per-request timeout")
	default:
		s.writeError(w, http.StatusBadRequest, err.Error())
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	if status >= http.StatusBadRequest && status != StatusClientClosedRequest &&
		status != http.StatusServiceUnavailable {
		mErrors.Add(1)
	}
	if status >= http.StatusBadRequest {
		s.metrics.Counter("geostatd_errors_total",
			"error responses by kind", obs.L("kind", errorKind(status))).Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// writeValue writes a cached-or-fresh payload. X-Cache tells clients (and
// the integration tests) whether the bytes came from the result cache.
func writeValue(w http.ResponseWriter, v Value, cache string) {
	w.Header().Set("Content-Type", v.ContentType)
	w.Header().Set("X-Cache", cache)
	_, _ = w.Write(v.Body)
}

// jsonValue marshals a response payload into a cacheable Value. Struct
// field order makes the encoding deterministic, so cache replays are
// byte-identical to the first computation.
func jsonValue(payload any) (Value, error) {
	b, err := json.Marshal(payload)
	if err != nil {
		return Value{}, err
	}
	return Value{Body: b, ContentType: "application/json"}, nil
}

// healthzResponse is the /healthz payload.
type healthzResponse struct {
	Status       string     `json:"status"`
	UptimeSec    float64    `json:"uptime_sec"`
	Datasets     int        `json:"datasets"`
	Cache        CacheStats `json:"cache"`
	CacheHitRate float64    `json:"cache_hit_rate"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.cache.Stats()
	resp := healthzResponse{
		Status:       "ok",
		UptimeSec:    time.Since(s.start).Seconds(),
		Datasets:     len(s.reg.List()),
		Cache:        st,
		CacheHitRate: st.HitRate(),
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}
