// Package serve implements geostatd's HTTP serving layer: Table-1
// analytics (KDV, K-function, Moran's I, General G, IDW) over JSON/PNG,
// backed by an in-memory dataset registry and a sharded LRU result cache.
//
// Every tool request flows through the same harness (Server.toolHandler):
// count the request, try the cache, then coalesce with any identical
// in-flight request (singleflight.go — one computation, N waiters, each
// honouring its own context). The flight leader acquires an admission
// slot (bounded wait queue, admission.go), bounds the computation with
// the tool's timeout budget, runs it with the detached flight context
// threaded down into the worker pools, and fills the cache. Outcomes
// map to HTTP statuses: context.Canceled becomes 499 (client closed
// request), admission overflow becomes 503 with Retry-After, a timeout
// budget overrun becomes 504 with Retry-After, anything else becomes
// 400. Successful responses are cached by their canonical key (see
// cacheKey) and replayed byte-identically.
//
// The geolint determinism rules apply here as everywhere: all randomness
// enters through explicit seed parameters (geostat.NewRand), responses
// are bit-identical for every worker count, and no goroutines are spawned
// outside internal/parallel.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"geostat"
	"geostat/internal/obs"
)

// StatusClientClosedRequest is the nginx-convention status for a request
// abandoned by the client before the computation finished.
const StatusClientClosedRequest = 499

// Config configures a Server.
type Config struct {
	// Timeout bounds each tool computation; <= 0 means no deadline.
	// ToolTimeouts overrides it per tool.
	Timeout time.Duration
	// ToolTimeouts is the per-tool computation budget (keys are tool
	// names: "kdv", "kfunction", "moran", "generalg", "idw"). A tool
	// without an entry uses Timeout. A budget overrun returns 504.
	ToolTimeouts map[string]time.Duration
	// MaxInFlight caps concurrently executing tool computations; <= 0
	// means unlimited. Computations beyond the cap wait in the
	// admission queue (honouring their context).
	MaxInFlight int
	// MaxQueue bounds how many computations may wait for an in-flight
	// slot: 0 waits without bound (legacy behaviour), > 0 bounds the
	// queue, < 0 rejects immediately when no slot is free. Overflow is
	// rejected with 503 + Retry-After.
	MaxQueue int
	// CacheBytes bounds the result cache; <= 0 disables caching.
	CacheBytes int64
	// Workers is the parallelism handed to every tool invocation
	// (0/1 serial, <0 GOMAXPROCS). Results are bit-identical for every
	// value; this only trades latency for CPU.
	Workers int
	// MaxBodyBytes caps dataset upload bodies; <= 0 means 32 MiB.
	MaxBodyBytes int64
	// SlowThreshold logs the full span tree of any tool request that takes
	// at least this long; <= 0 disables slow-request logging.
	SlowThreshold time.Duration
	// Logf receives slow-request logs; nil means the standard logger.
	Logf func(format string, args ...any)
}

// Server is the geostatd HTTP handler set. Create with NewServer; it is
// safe for concurrent use.
type Server struct {
	cfg     Config
	reg     *Registry
	cache   *Cache
	adm     *admission
	flights *flightGroup
	mux     *http.ServeMux
	start   time.Time
	metrics *obs.Registry

	// lastTrace is the span tree of the most recently completed tool
	// request, served at /debug/trace/last.
	lastTrace atomic.Pointer[obs.SpanTree]
}

// NewServer returns a Server with an empty registry.
func NewServer(cfg Config) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	s := &Server{
		cfg:     cfg,
		reg:     NewRegistry(),
		cache:   NewCache(cfg.CacheBytes),
		mux:     http.NewServeMux(),
		start:   time.Now(),
		metrics: obs.NewRegistry(),
	}
	s.flights = newFlightGroup(s.metrics)
	s.adm = newAdmission(cfg.MaxInFlight, cfg.MaxQueue, s.metrics)
	s.registerObs()
	s.routes()
	return s
}

// toolTimeout returns the computation budget for a tool: its entry in
// ToolTimeouts, or the default Timeout. <= 0 means no deadline.
func (s *Server) toolTimeout(tool string) time.Duration {
	if d, ok := s.cfg.ToolTimeouts[tool]; ok {
		return d
	}
	return s.cfg.Timeout
}

// Registry exposes the dataset registry (CLI preloading, tests).
func (s *Server) Registry() *Registry { return s.reg }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/trace/last", s.handleTraceLast)
	s.mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	s.mux.HandleFunc("GET /v1/datasets/{name}/digest", s.handleDigest)
	s.mux.HandleFunc("POST /v1/datasets/{name}", s.handleUpload)
	s.mux.HandleFunc("POST /v1/generate", s.handleGenerate)
	s.mux.HandleFunc("GET /v1/kdv", s.toolHandler("kdv", s.computeKDV))
	s.mux.HandleFunc("GET /v1/kfunction", s.toolHandler("kfunction", s.computeKFunction))
	s.mux.HandleFunc("GET /v1/moran", s.toolHandler("moran", s.computeMoran))
	s.mux.HandleFunc("GET /v1/generalg", s.toolHandler("generalg", s.computeGeneralG))
	s.mux.HandleFunc("GET /v1/idw", s.toolHandler("idw", s.computeIDW))
}

// computeFunc runs one tool against a registered dataset and the
// request's parsed parameters, returning the response payload. It must
// honour ctx: the worker pools it drives check cancellation between
// chunks.
type computeFunc func(ctx context.Context, d *geostat.Dataset, p *params) (Value, error)

// toolHandler wraps a computeFunc in the shared serving harness. The
// "dataset" query parameter names the input; the canonical cache key is
// derived from the tool, the dataset@version, and the full sorted query.
func (s *Server) toolHandler(tool string, compute computeFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		mRequests.Add(tool, 1)
		mInFlight.Add(1)
		defer mInFlight.Add(-1)
		s.metrics.Counter("geostatd_requests_total",
			"tool requests served", obs.L("tool", tool)).Inc()
		inflight := s.metrics.Gauge("geostatd_requests_inflight",
			"tool requests executing now")
		inflight.Add(1)
		defer inflight.Add(-1)

		ctx, root := obs.NewTrace(r.Context(), "request")
		root.SetAttr("tool", tool)
		defer s.finishTrace(tool, root)

		name := r.URL.Query().Get("dataset")
		if name == "" {
			s.writeError(w, http.StatusBadRequest, "missing dataset parameter")
			return
		}
		_, lookup := obs.Trace(ctx, "request.lookup")
		d, version, ok := s.reg.Get(name)
		lookup.End()
		if !ok {
			s.writeError(w, http.StatusNotFound, fmt.Sprintf("unknown dataset %q", name))
			return
		}

		key := cacheKey(tool, name, version, r.URL.Query())
		_, probe := obs.Trace(ctx, "request.cache")
		v, hit := s.cache.Get(key)
		probe.End()
		if hit {
			mCacheHits.Add(1)
			root.SetAttr("cache", "hit")
			writeValue(w, v, "hit")
			return
		}
		mCacheMisses.Add(1)

		// Identical concurrent misses coalesce into one computation (see
		// singleflight.go). The flight body — admission, timeout budget,
		// compute, cache fill — runs once on a context detached from any
		// single waiter; this handler's ctx only governs how long THIS
		// request keeps waiting for the shared result.
		query := r.URL.Query()
		v, shared, err := s.flights.do(ctx, key, func(fctx context.Context) (Value, error) {
			s.metrics.Counter("serve_compute_total",
				"tool computations actually executed (cache misses after coalescing)").Inc()
			release, aerr := s.adm.acquire(fctx)
			if aerr != nil {
				return Value{}, aerr
			}
			defer release()
			if budget := s.toolTimeout(tool); budget > 0 {
				var cancel context.CancelFunc
				fctx, cancel = context.WithDeadlineCause(fctx,
					time.Now().Add(budget), errBudgetExceeded)
				defer cancel()
			}
			p := newParams(query)
			cv, cerr := compute(fctx, d, p)
			if cerr == nil {
				cerr = p.err()
			}
			if cerr != nil {
				if errors.Is(cerr, context.DeadlineExceeded) &&
					errors.Is(context.Cause(fctx), errBudgetExceeded) {
					cerr = fmt.Errorf("%s: %w", tool, errBudgetExceeded)
				}
				return Value{}, cerr
			}
			s.cache.Put(key, cv)
			return cv, nil
		})
		if shared {
			root.SetAttr("coalesced", "true")
		}
		if err != nil {
			s.writeToolError(w, err)
			return
		}
		if shared {
			writeValue(w, v, "coalesced")
			return
		}
		writeValue(w, v, "miss")
	}
}

// errBudgetExceeded marks a computation killed by its per-tool timeout
// budget (Config.Timeout / Config.ToolTimeouts), as opposed to a client
// that went away. It is installed as the deadline cause so the harness
// can tell the two DeadlineExceeded flavours apart.
var errBudgetExceeded = errors.New("computation exceeded its timeout budget")

// writeToolError maps a compute failure to its HTTP status: 499 for a
// client disconnect, 503 (+Retry-After) for admission rejection —
// overload is retryable somewhere else — 504 (+Retry-After) for a
// computation killed by its timeout budget, 400 for everything else
// (validation, bad parameters).
func (s *Server) writeToolError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errOverloaded):
		mRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, errBudgetExceeded):
		mTimeouts.Add(1)
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusGatewayTimeout, err.Error())
	case errors.Is(err, context.Canceled):
		mCanceled.Add(1)
		s.writeError(w, StatusClientClosedRequest, "client closed request")
	case errors.Is(err, context.DeadlineExceeded):
		mTimeouts.Add(1)
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusGatewayTimeout, "computation exceeded the per-request timeout")
	default:
		s.writeError(w, http.StatusBadRequest, err.Error())
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	if status >= http.StatusBadRequest && status != StatusClientClosedRequest &&
		status != http.StatusServiceUnavailable && status != http.StatusGatewayTimeout {
		mErrors.Add(1)
	}
	if status >= http.StatusBadRequest {
		s.metrics.Counter("geostatd_errors_total",
			"error responses by kind", obs.L("kind", errorKind(status))).Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// writeValue writes a cached-or-fresh payload. X-Cache tells clients (and
// the integration tests) whether the bytes came from the result cache.
func writeValue(w http.ResponseWriter, v Value, cache string) {
	w.Header().Set("Content-Type", v.ContentType)
	w.Header().Set("X-Cache", cache)
	_, _ = w.Write(v.Body)
}

// jsonValue marshals a response payload into a cacheable Value. Struct
// field order makes the encoding deterministic, so cache replays are
// byte-identical to the first computation.
func jsonValue(payload any) (Value, error) {
	b, err := json.Marshal(payload)
	if err != nil {
		return Value{}, err
	}
	return Value{Body: b, ContentType: "application/json"}, nil
}

// healthzResponse is the /healthz payload.
type healthzResponse struct {
	Status       string     `json:"status"`
	UptimeSec    float64    `json:"uptime_sec"`
	Datasets     int        `json:"datasets"`
	Cache        CacheStats `json:"cache"`
	CacheHitRate float64    `json:"cache_hit_rate"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.cache.Stats()
	resp := healthzResponse{
		Status:       "ok",
		UptimeSec:    time.Since(s.start).Seconds(),
		Datasets:     len(s.reg.List()),
		Cache:        st,
		CacheHitRate: st.HitRate(),
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}
