package serve_test

import (
	"encoding/json"
	"math"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"geostat/internal/serve"
)

// The shard coordinator's server-side surface: the dataset digest
// endpoint, windowed (tile=) KDV evaluation, and explicit-thresholds
// K-function band evaluation. These tests pin the exactness contracts the
// coordinator's merge step depends on.

type heatmapResp struct {
	Dataset string    `json:"dataset"`
	Method  string    `json:"method"`
	Width   int       `json:"width"`
	Height  int       `json:"height"`
	Min     float64   `json:"min"`
	Max     float64   `json:"max"`
	Sum     float64   `json:"sum"`
	Values  []float64 `json:"values"`
}

type kfuncResp struct {
	Dataset string    `json:"dataset"`
	S       []float64 `json:"s"`
	K       []float64 `json:"k"`
	Lo      []float64 `json:"lo"`
	Hi      []float64 `json:"hi"`
	Sims    int       `json:"sims"`
	Regimes []string  `json:"regimes"`
}

func getJSON(t *testing.T, srv *serve.Server, target string, out any) {
	t.Helper()
	rr := do(t, srv, http.MethodGet, target, nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", target, rr.Code, rr.Body.String())
	}
	if err := json.Unmarshal(rr.Body.Bytes(), out); err != nil {
		t.Fatalf("GET %s: decode: %v", target, err)
	}
}

func TestDatasetDigestEndpoint(t *testing.T) {
	srv := newServer(t, serve.Config{})
	generate(t, srv, "name=d&kind=clusters&n=300&seed=5")

	var first, again serve.DatasetInfo
	getJSON(t, srv, "/v1/datasets/d/digest", &first)
	if len(first.Digest) != 64 {
		t.Fatalf("digest %q is not hex sha256", first.Digest)
	}
	if first.N != 300 || first.Name != "d" {
		t.Fatalf("unexpected info %+v", first)
	}
	getJSON(t, srv, "/v1/datasets/d/digest", &again)
	if again.Digest != first.Digest || again.Version != first.Version {
		t.Fatalf("digest not stable: %+v vs %+v", first, again)
	}

	// Same generation parameters → same bits → same digest, higher version.
	generate(t, srv, "name=d&kind=clusters&n=300&seed=5")
	var re serve.DatasetInfo
	getJSON(t, srv, "/v1/datasets/d/digest", &re)
	if re.Digest != first.Digest {
		t.Fatalf("identical re-upload changed digest: %s vs %s", re.Digest, first.Digest)
	}
	if re.Version <= first.Version {
		t.Fatalf("re-upload did not bump version: %d vs %d", re.Version, first.Version)
	}

	// Different content → different digest.
	generate(t, srv, "name=d2&kind=clusters&n=300&seed=6")
	var other serve.DatasetInfo
	getJSON(t, srv, "/v1/datasets/d2/digest", &other)
	if other.Digest == first.Digest {
		t.Fatal("different datasets share a digest")
	}

	if rr := do(t, srv, http.MethodGet, "/v1/datasets/nope/digest", nil); rr.Code != http.StatusNotFound {
		t.Fatalf("unknown dataset: status %d, want 404", rr.Code)
	}
}

func TestKDVTileWindowBitIdentical(t *testing.T) {
	srv := newServer(t, serve.Config{CacheBytes: 64 << 20})
	generate(t, srv, "name=ev&kind=clusters&n=400&seed=9")

	const base = "/v1/kdv?dataset=ev&method=naive&kernel=quartic&bandwidth=7&width=24&height=20&bbox=0,0,100,100"
	var full heatmapResp
	getJSON(t, srv, base, &full)
	if full.Width != 24 || full.Height != 20 {
		t.Fatalf("full raster %dx%d", full.Width, full.Height)
	}

	tiles := []struct{ x0, y0, w, h int }{
		{0, 0, 24, 20},
		{0, 0, 9, 7},
		{9, 7, 15, 13},
		{23, 19, 1, 1},
	}
	for _, tl := range tiles {
		var tile heatmapResp
		getJSON(t, srv, base+joinTile(tl.x0, tl.y0, tl.w, tl.h), &tile)
		if tile.Width != tl.w || tile.Height != tl.h {
			t.Fatalf("tile %+v: got %dx%d", tl, tile.Width, tile.Height)
		}
		for iy := 0; iy < tl.h; iy++ {
			for ix := 0; ix < tl.w; ix++ {
				want := full.Values[(tl.y0+iy)*full.Width+tl.x0+ix]
				have := tile.Values[iy*tl.w+ix]
				if math.Float64bits(want) != math.Float64bits(have) {
					t.Fatalf("tile %+v pixel (%d,%d): %x != %x",
						tl, ix, iy, math.Float64bits(have), math.Float64bits(want))
				}
			}
		}
	}

	// Worker /metrics must expose the tile counter for the smoke gate.
	metrics := do(t, srv, http.MethodGet, "/metrics", nil).Body.String()
	if !strings.Contains(metrics, "shard_tiles_total") {
		t.Fatal("/metrics lacks shard_tiles_total after tile requests")
	}
}

func joinTile(x0, y0, w, h int) string {
	return "&tile=" + itoa(x0) + "," + itoa(y0) + "," + itoa(w) + "," + itoa(h)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestKDVTileValidation(t *testing.T) {
	srv := newServer(t, serve.Config{})
	generate(t, srv, "name=ev&kind=csr&n=100&seed=1")
	cases := []string{
		// Non-naive methods must refuse windows.
		"/v1/kdv?dataset=ev&method=auto&bandwidth=8&width=16&height=16&tile=0,0,4,4",
		"/v1/kdv?dataset=ev&method=grid-cutoff&bandwidth=8&width=16&height=16&tile=0,0,4,4",
		// Malformed and out-of-bounds windows.
		"/v1/kdv?dataset=ev&method=naive&bandwidth=8&width=16&height=16&tile=junk",
		"/v1/kdv?dataset=ev&method=naive&bandwidth=8&width=16&height=16&tile=0,0,0,4",
		"/v1/kdv?dataset=ev&method=naive&bandwidth=8&width=16&height=16&tile=14,0,4,4",
	}
	for _, q := range cases {
		if rr := do(t, srv, http.MethodGet, q, nil); rr.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, rr.Code)
		}
	}
}

func TestKFunctionExplicitThresholdsMergeExactly(t *testing.T) {
	srv := newServer(t, serve.Config{CacheBytes: 64 << 20})
	generate(t, srv, "name=ev&kind=clusters&n=250&seed=3")

	const base = "/v1/kfunction?dataset=ev&smax=40&steps=6&sims=9&seed=11"
	var full kfuncResp
	getJSON(t, srv, base, &full)
	if len(full.S) != 6 {
		t.Fatalf("full plot has %d bands", len(full.S))
	}

	// The same six thresholds split into two explicit band requests must
	// reproduce the full plot value-for-value (counts are integers; the
	// envelope simulations draw from the seed independently of the bands).
	fmtS := func(vs []float64) string {
		parts := make([]string, len(vs))
		for i, v := range vs {
			parts[i] = formatFloat(v)
		}
		return strings.Join(parts, ",")
	}
	var lo, hi kfuncResp
	getJSON(t, srv, "/v1/kfunction?dataset=ev&sims=9&seed=11&thresholds="+fmtS(full.S[:3]), &lo)
	getJSON(t, srv, "/v1/kfunction?dataset=ev&sims=9&seed=11&thresholds="+fmtS(full.S[3:]), &hi)
	merged := kfuncResp{
		S:       append(append([]float64{}, lo.S...), hi.S...),
		K:       append(append([]float64{}, lo.K...), hi.K...),
		Lo:      append(append([]float64{}, lo.Lo...), hi.Lo...),
		Hi:      append(append([]float64{}, lo.Hi...), hi.Hi...),
		Regimes: append(append([]string{}, lo.Regimes...), hi.Regimes...),
	}
	for i := range full.S {
		if math.Float64bits(full.S[i]) != math.Float64bits(merged.S[i]) ||
			math.Float64bits(full.K[i]) != math.Float64bits(merged.K[i]) ||
			math.Float64bits(full.Lo[i]) != math.Float64bits(merged.Lo[i]) ||
			math.Float64bits(full.Hi[i]) != math.Float64bits(merged.Hi[i]) {
			t.Fatalf("band %d: merged (%v,%v,%v,%v) != full (%v,%v,%v,%v)", i,
				merged.S[i], merged.K[i], merged.Lo[i], merged.Hi[i],
				full.S[i], full.K[i], full.Lo[i], full.Hi[i])
		}
		if full.Regimes[i] != merged.Regimes[i] {
			t.Fatalf("band %d: regime %q != %q", i, merged.Regimes[i], full.Regimes[i])
		}
	}

	metrics := do(t, srv, http.MethodGet, "/metrics", nil).Body.String()
	if !strings.Contains(metrics, "shard_bands_total") {
		t.Fatal("/metrics lacks shard_bands_total after thresholds requests")
	}
}

func TestKFunctionThresholdsValidation(t *testing.T) {
	srv := newServer(t, serve.Config{})
	generate(t, srv, "name=ev&kind=csr&n=100&seed=1")
	cases := []string{
		"/v1/kfunction?dataset=ev&thresholds=junk",
		"/v1/kfunction?dataset=ev&thresholds=5,4,3",  // not increasing
		"/v1/kfunction?dataset=ev&thresholds=-2,1,3", // negative
	}
	for _, q := range cases {
		if rr := do(t, srv, http.MethodGet, q, nil); rr.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, rr.Code)
		}
	}
}

// formatFloat round-trips a float64 exactly through its decimal form, the
// same convention the CSV writer and the shard coordinator use.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
