package serve_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"geostat/internal/serve"
)

// slowKDV is heavy enough (naive gaussian, 256x256 over 20k points) that
// it cannot finish before the test has attached concurrent waiters, but
// one -race chunk still unwinds within the test timeout.
const slowKDV = "/v1/kdv?dataset=big&method=naive&kernel=gaussian&bandwidth=5&width=256&height=256"

// metricValue scrapes /metrics and returns the value of the series whose
// exposition line starts with prefix (e.g. `serve_compute_total`), or 0.
func metricValue(t *testing.T, srv *serve.Server, prefix string) float64 {
	t.Helper()
	rr := do(t, srv, http.MethodGet, "/metrics", nil)
	for _, line := range bytes.Split(rr.Body.Bytes(), []byte("\n")) {
		if !bytes.HasPrefix(line, []byte(prefix)) {
			continue
		}
		rest := bytes.TrimPrefix(line, []byte(prefix))
		if len(rest) > 0 && rest[0] != ' ' && rest[0] != '{' {
			continue // longer metric name sharing the prefix
		}
		fields := bytes.Fields(line)
		if len(fields) != 2 {
			continue
		}
		if v, err := strconv.ParseFloat(string(fields[1]), 64); err == nil {
			return v
		}
	}
	return 0
}

// TestSingleFlightCoalescesIdenticalRequests drives N identical KDV
// requests concurrently through the handler: exactly one computation
// must run, every waiter must receive byte-identical bodies, and the
// singleflight metrics must account for the sharing.
func TestSingleFlightCoalescesIdenticalRequests(t *testing.T) {
	srv := newServer(t, serve.Config{CacheBytes: 64 << 20, MaxInFlight: 2})
	generate(t, srv, "name=big&kind=csr&n=20000&seed=3")
	// A tile small enough to finish, big enough for waiters to attach.
	const tile = "/v1/kdv?dataset=big&method=naive&kernel=gaussian&bandwidth=5&width=48&height=48"

	const n = 6
	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	codes := make([]int, n)
	xcache := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rr := do(t, srv, http.MethodGet, tile, nil)
			bodies[i] = rr.Body.Bytes()
			codes[i] = rr.Code
			xcache[i] = rr.Header().Get("X-Cache")
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d: body differs from request 0", i)
		}
	}
	// All six raced the cold cache, so at least two overlapped; the
	// computation count must be strictly below the request count.
	computes := metricValue(t, srv, "serve_compute_total")
	if computes >= n {
		t.Fatalf("serve_compute_total = %v, want < %d (coalescing)", computes, n)
	}
	shared := metricValue(t, srv, "serve_singleflight_shared_total")
	coalesced := 0
	for _, c := range xcache {
		if c == "coalesced" {
			coalesced++
		}
	}
	if shared != float64(coalesced) {
		t.Fatalf("serve_singleflight_shared_total = %v, want %d (the X-Cache:coalesced responses)", shared, coalesced)
	}
	if shared+computes < n { // every request either computed, coalesced, or hit the cache
		hits := metricValue(t, srv, "geostatd_cache_hits_total")
		if shared+computes+hits < n {
			t.Fatalf("accounting hole: %v computed + %v shared + %v cache hits < %d requests",
				computes, shared, hits, n)
		}
	}
}

// waitMetric polls a /metrics series until it reaches at least want.
func waitMetric(t *testing.T, srv *serve.Server, prefix string, want float64, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for metricValue(t, srv, prefix) < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s never reached %v", prefix, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSingleFlightWaiterCancelGets499OthersGet200 pins the ctx-detach
// contract: of two coalesced waiters, the one that hangs up gets 499
// immediately while the flight keeps computing for the other, which
// still gets its 200. The test sequences itself off the serve_* metrics
// (compute started → waiter attached → cancel) instead of sleeping, so
// it is robust across machine speeds.
func TestSingleFlightWaiterCancelGets499OthersGet200(t *testing.T) {
	srv := newServer(t, serve.Config{CacheBytes: 64 << 20, MaxInFlight: 2})
	generate(t, srv, "name=big&kind=csr&n=20000&seed=3")
	const tile = "/v1/kdv?dataset=big&method=naive&kernel=gaussian&bandwidth=5&width=128&height=128"

	var wg sync.WaitGroup
	var patient, impatient *httptest.ResponseRecorder

	wg.Add(1)
	go func() { // the leader, who sticks around for the full computation
		defer wg.Done()
		patient = do(t, srv, http.MethodGet, tile, nil)
	}()
	waitMetric(t, srv, "serve_compute_total", 1, 10*time.Second)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	wg.Add(1)
	go func() { // the waiter that will hang up mid-flight
		defer wg.Done()
		r := httptest.NewRequest(http.MethodGet, tile, nil).WithContext(ctx)
		rr := httptest.NewRecorder()
		srv.ServeHTTP(rr, r)
		impatient = rr
	}()
	waitMetric(t, srv, "serve_singleflight_shared_total", 1, 10*time.Second)
	cancel()
	wg.Wait()

	if impatient.Code != serve.StatusClientClosedRequest {
		t.Fatalf("impatient waiter: status %d, want %d: %s",
			impatient.Code, serve.StatusClientClosedRequest, impatient.Body.String())
	}
	if patient.Code != http.StatusOK {
		t.Fatalf("patient waiter: status %d, want 200: %s", patient.Code, patient.Body.String())
	}
	if len(patient.Body.Bytes()) == 0 {
		t.Fatal("patient waiter got an empty body")
	}
}

// TestAdmissionQueueOverflowReturns503 fills the single in-flight slot
// and the one queue position with two distinct long computations, then
// asserts a third distinct request is shed with 503 + Retry-After and
// that the rejection is counted.
func TestAdmissionQueueOverflowReturns503(t *testing.T) {
	srv := newServer(t, serve.Config{CacheBytes: 64 << 20, MaxInFlight: 1, MaxQueue: 1})
	generate(t, srv, "name=big&kind=csr&n=20000&seed=3")

	occupy, occupyCancel := context.WithCancel(context.Background())
	defer occupyCancel()
	var wg sync.WaitGroup
	// Distinct queries so nothing coalesces: bandwidth varies.
	for i, bw := range []string{"5", "6"} {
		wg.Add(1)
		go func(i int, bw string) {
			defer wg.Done()
			r := httptest.NewRequest(http.MethodGet,
				slowKDV+"&bandwidthjitter="+bw, nil).WithContext(occupy)
			srv.ServeHTTP(httptest.NewRecorder(), r)
		}(i, bw)
	}
	// Wait until one computation holds the slot and one sits in the queue.
	deadline := time.Now().Add(10 * time.Second)
	for metricValue(t, srv, "serve_admission_queue_count") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(5 * time.Millisecond)
	}

	rr := do(t, srv, http.MethodGet, slowKDV+"&bandwidthjitter=7", nil)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503: %s", rr.Code, rr.Body.String())
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("503 response is missing Retry-After")
	}
	if got := metricValue(t, srv, "serve_admission_rejected_total"); got < 1 {
		t.Fatalf("serve_admission_rejected_total = %v, want >= 1", got)
	}

	occupyCancel() // release the occupants
	wg.Wait()
}

// TestPerToolTimeoutBudgetReturns504AndFreesSlot gives kdv a tiny budget
// while the default stays generous: the heavy KDV must come back 504
// with Retry-After, and the in-flight slot it held must be free again —
// a cheap request on the same single-slot server must succeed.
func TestPerToolTimeoutBudgetReturns504AndFreesSlot(t *testing.T) {
	srv := newServer(t, serve.Config{
		CacheBytes:   64 << 20,
		MaxInFlight:  1,
		Timeout:      time.Minute,
		ToolTimeouts: map[string]time.Duration{"kdv": 20 * time.Millisecond},
	})
	generate(t, srv, "name=big&kind=csr&n=20000&seed=3")

	rr := do(t, srv, http.MethodGet, slowKDV, nil)
	if rr.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", rr.Code, rr.Body.String())
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("504 response is missing Retry-After")
	}

	// The slot must be free: a tiny kfunction (not subject to the kdv
	// budget) finishes well inside the default budget.
	ok := do(t, srv, http.MethodGet, "/v1/kfunction?dataset=big&smax=5&steps=2&sims=4&seed=1", nil)
	if ok.Code != http.StatusOK {
		t.Fatalf("follow-up request: status %d, want 200 (slot not freed?): %s", ok.Code, ok.Body.String())
	}
}
