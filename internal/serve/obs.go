package serve

import (
	"encoding/json"
	"log"
	"net/http"

	"geostat/internal/obs"
)

// This file wires the internal/obs observability layer into the serving
// harness: a per-Server metric registry exported at GET /metrics in
// Prometheus text format (complementing the process-wide expvar counters
// at /debug/vars), plus the span-tree surface at GET /debug/trace/last.
//
// The registry is per-Server rather than process-wide so test suites can
// spin up many httptest servers without metric collisions, and so a
// scrape observes exactly one server's traffic.

// registerObs installs the scrape-time metric callbacks that read state
// owned elsewhere: the result cache's monotonic hit/miss/eviction
// counters and its current occupancy.
func (s *Server) registerObs() {
	s.metrics.CounterFunc("geostatd_cache_hits_total",
		"result cache hits", func() int64 { return s.cache.Stats().Hits })
	s.metrics.CounterFunc("geostatd_cache_misses_total",
		"result cache misses", func() int64 { return s.cache.Stats().Misses })
	s.metrics.CounterFunc("geostatd_cache_evictions_total",
		"result cache LRU evictions", func() int64 { return s.cache.Stats().Evictions })
	s.metrics.GaugeFunc("geostatd_cache_entries_count",
		"entries resident in the result cache", func() int64 { return s.cache.Stats().Entries })
	s.metrics.GaugeFunc("geostatd_cache_bytes",
		"bytes resident in the result cache", func() int64 { return s.cache.Stats().Bytes })
}

// Metrics exposes the server's obs registry (cmd/geostatd, tests).
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// handleMetrics serves the Prometheus text exposition of every metric in
// the server's registry. Output order is deterministic (sorted families,
// sorted series), so scrapes are diffable.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.WritePrometheus(w)
}

// handleTraceLast serves the span tree of the most recently completed
// tool request as JSON — the one-liner way to see where a request's time
// went without attaching a profiler.
func (s *Server) handleTraceLast(w http.ResponseWriter, r *http.Request) {
	t := s.lastTrace.Load()
	if t == nil {
		s.writeError(w, http.StatusNotFound, "no tool request traced yet")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(t)
}

// finishTrace closes a request's root span, records its latency, publishes
// the tree to /debug/trace/last, and logs the rendered tree when the
// request exceeded the configured slow threshold.
func (s *Server) finishTrace(tool string, root *obs.Span) {
	root.End()
	dur := root.Duration()
	s.metrics.Histogram("geostatd_request_seconds",
		"end-to-end tool request latency", nil, obs.L("tool", tool)).Observe(dur)
	tree := root.Tree()
	s.lastTrace.Store(tree)
	if s.cfg.SlowThreshold > 0 && dur >= s.cfg.SlowThreshold {
		s.logf("slow request (%v >= %v):\n%s", dur, s.cfg.SlowThreshold, tree.Render())
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// errorKind buckets an HTTP error status for the geostatd_errors_total
// counter — labels must be low-cardinality, so the raw message never
// becomes a label value.
func errorKind(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case StatusClientClosedRequest:
		return "canceled"
	case http.StatusServiceUnavailable:
		return "overload"
	case http.StatusGatewayTimeout:
		return "timeout"
	case http.StatusRequestEntityTooLarge:
		return "too_large"
	default:
		return "internal"
	}
}
