package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"geostat/internal/serve"
)

func newServer(t *testing.T, cfg serve.Config) *serve.Server {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = -1
	}
	return serve.NewServer(cfg)
}

// do runs one request through the handler stack and returns the recorder.
func do(t *testing.T, srv *serve.Server, method, target string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body != nil {
		r = httptest.NewRequest(method, target, bytes.NewReader(body))
	} else {
		r = httptest.NewRequest(method, target, nil)
	}
	rr := httptest.NewRecorder()
	srv.ServeHTTP(rr, r)
	return rr
}

// generate registers a synthetic dataset and fails the test on error.
func generate(t *testing.T, srv *serve.Server, query string) {
	t.Helper()
	rr := do(t, srv, http.MethodPost, "/v1/generate?"+query, nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("generate %q: status %d: %s", query, rr.Code, rr.Body.String())
	}
}

func TestKDVTileCachedByteIdentical(t *testing.T) {
	srv := newServer(t, serve.Config{CacheBytes: 64 << 20})
	generate(t, srv, "name=ev&kind=clusters&n=500&seed=7")

	const tile = "/v1/kdv?dataset=ev&kernel=quartic&bandwidth=8&width=64&height=64&bbox=0,0,50,50"
	first := do(t, srv, http.MethodGet, tile, nil)
	if first.Code != http.StatusOK {
		t.Fatalf("first KDV: status %d: %s", first.Code, first.Body.String())
	}
	if got := first.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("first KDV: X-Cache = %q, want miss", got)
	}
	second := do(t, srv, http.MethodGet, tile, nil)
	if second.Code != http.StatusOK {
		t.Fatalf("second KDV: status %d", second.Code)
	}
	if got := second.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("second KDV: X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("cached replay is not byte-identical to the first response")
	}
}

func TestCacheInvalidatedOnReupload(t *testing.T) {
	srv := newServer(t, serve.Config{CacheBytes: 64 << 20})
	generate(t, srv, "name=a&kind=csr&n=200&seed=1")
	const q = "/v1/kdv?dataset=a&bandwidth=10&width=16&height=16"
	if rr := do(t, srv, http.MethodGet, q, nil); rr.Header().Get("X-Cache") != "miss" {
		t.Fatalf("first request: X-Cache = %q, want miss", rr.Header().Get("X-Cache"))
	}
	// Re-registering the name bumps the registry version, so the same URL
	// must not be served from the old entry.
	generate(t, srv, "name=a&kind=csr&n=200&seed=2")
	if rr := do(t, srv, http.MethodGet, q, nil); rr.Header().Get("X-Cache") != "miss" {
		t.Fatalf("request after re-upload: X-Cache = %q, want miss", rr.Header().Get("X-Cache"))
	}
}

// heavyKDV is a naive-method KDV request big enough that it cannot finish
// before the cancellation tests fire (5.2e9 kernel evaluations), while
// the worker pools still observe ctx between row chunks.
const heavyKDV = "/v1/kdv?dataset=big&method=naive&kernel=gaussian&bandwidth=5&width=512&height=512"

func TestCancelledRequestReturns499(t *testing.T) {
	srv := newServer(t, serve.Config{CacheBytes: 64 << 20})
	generate(t, srv, "name=big&kind=csr&n=20000&seed=3")

	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(50*time.Millisecond, cancel)
	defer cancel()
	r := httptest.NewRequest(http.MethodGet, heavyKDV, nil).WithContext(ctx)
	rr := httptest.NewRecorder()
	start := time.Now()
	srv.ServeHTTP(rr, r)
	elapsed := time.Since(start)

	if rr.Code != serve.StatusClientClosedRequest {
		t.Fatalf("status = %d, want %d: %s", rr.Code, serve.StatusClientClosedRequest, rr.Body.String())
	}
	// The computation alone would run for minutes (plain) to tens of
	// minutes (-race); the bound below proves the workers stopped at the
	// first chunk boundary after cancel. The worst case is serial under
	// -race: one chunk is ny/32 rows ≈ 1/32 of the full run, which the
	// race detector stretches to >10s on a single-core machine — so the
	// ceiling is sized to one serial race-mode chunk plus margin, not to
	// wall-clock "promptness".
	if elapsed > 30*time.Second {
		t.Fatalf("cancelled request took %s, want return within one chunk", elapsed)
	}
}

func TestPreCancelledRequestReturns499(t *testing.T) {
	srv := newServer(t, serve.Config{CacheBytes: 64 << 20, MaxInFlight: 2})
	generate(t, srv, "name=big&kind=csr&n=20000&seed=3")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := httptest.NewRequest(http.MethodGet, heavyKDV, nil).WithContext(ctx)
	rr := httptest.NewRecorder()
	srv.ServeHTTP(rr, r)
	if rr.Code != serve.StatusClientClosedRequest {
		t.Fatalf("status = %d, want %d", rr.Code, serve.StatusClientClosedRequest)
	}
}

func TestTimeoutReturns504WithRetryAfter(t *testing.T) {
	srv := newServer(t, serve.Config{CacheBytes: 64 << 20, Timeout: 20 * time.Millisecond})
	generate(t, srv, "name=big&kind=csr&n=20000&seed=3")
	rr := do(t, srv, http.MethodGet, heavyKDV, nil)
	if rr.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", rr.Code, rr.Body.String())
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("504 response is missing Retry-After")
	}
}

func TestCancelledRequestsLeaveNoGoroutines(t *testing.T) {
	srv := newServer(t, serve.Config{CacheBytes: 64 << 20})
	generate(t, srv, "name=big&kind=csr&n=20000&seed=3")
	baseline := runtime.NumGoroutine()

	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		time.AfterFunc(20*time.Millisecond, cancel)
		r := httptest.NewRequest(http.MethodGet, heavyKDV, nil).WithContext(ctx)
		rr := httptest.NewRecorder()
		srv.ServeHTTP(rr, r)
		cancel()
		if rr.Code != serve.StatusClientClosedRequest {
			t.Fatalf("request %d: status = %d, want %d", i, rr.Code, serve.StatusClientClosedRequest)
		}
	}

	// The 499 now returns as soon as the waiter detaches; the flight
	// goroutine and its worker pool unwind in the background at the next
	// chunk boundary, which under -race on a loaded single core can take
	// tens of seconds (see the ceiling rationale in
	// TestCancelledRequestReturns499). Size the settle deadline to that
	// worst case, not to wall-clock promptness.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: baseline %d, now %d",
				baseline, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestUploadCSV(t *testing.T) {
	srv := newServer(t, serve.Config{})
	csv := "x,y,value\n1,2,10\n3,4,20\n5,6,30\n"
	rr := do(t, srv, http.MethodPost, "/v1/datasets/pts", []byte(csv))
	if rr.Code != http.StatusOK {
		t.Fatalf("upload: status %d: %s", rr.Code, rr.Body.String())
	}
	var info struct {
		Name      string `json:"name"`
		N         int    `json:"n"`
		HasValues bool   `json:"has_values"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "pts" || info.N != 3 || !info.HasValues {
		t.Fatalf("unexpected upload info: %+v", info)
	}
}

func TestUploadGeoJSON(t *testing.T) {
	srv := newServer(t, serve.Config{})
	gj := `{"type":"FeatureCollection","features":[
		{"type":"Feature","geometry":{"type":"Point","coordinates":[1,2]},"properties":{"value":10}},
		{"type":"Feature","geometry":{"type":"Point","coordinates":[3,4]},"properties":{"value":20}}]}`
	rr := do(t, srv, http.MethodPost, "/v1/datasets/gj", []byte(gj))
	if rr.Code != http.StatusOK {
		t.Fatalf("upload: status %d: %s", rr.Code, rr.Body.String())
	}
	list := do(t, srv, http.MethodGet, "/v1/datasets", nil)
	if !strings.Contains(list.Body.String(), `"name":"gj"`) {
		t.Fatalf("dataset list missing gj: %s", list.Body.String())
	}
}

func TestUnknownDatasetIs404(t *testing.T) {
	srv := newServer(t, serve.Config{})
	rr := do(t, srv, http.MethodGet, "/v1/kdv?dataset=nope", nil)
	if rr.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", rr.Code)
	}
}

func TestBadParamsAre400(t *testing.T) {
	srv := newServer(t, serve.Config{})
	generate(t, srv, "name=d&kind=csr&n=100&seed=1")
	for _, target := range []string{
		"/v1/kdv?dataset=d&width=notanumber",
		"/v1/kdv?dataset=d&method=wat",
		"/v1/kdv?dataset=d&kernel=wat",
		"/v1/kdv?dataset=d&bbox=1,2,3",
		"/v1/idw?dataset=d&method=wat",
		"/v1/kfunction?dataset=d&steps=0",
		"/v1/kfunction?dataset=d&smax=-1",
	} {
		if rr := do(t, srv, http.MethodGet, target, nil); rr.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", target, rr.Code)
		}
	}
	if rr := do(t, srv, http.MethodPost, "/v1/generate?name=&kind=csr", nil); rr.Code != http.StatusBadRequest {
		t.Errorf("generate without name: status = %d, want 400", rr.Code)
	}
}

func TestAllToolsHappyPath(t *testing.T) {
	srv := newServer(t, serve.Config{CacheBytes: 64 << 20})
	generate(t, srv, "name=d&kind=clusters&n=300&seed=5&field=1")
	for _, target := range []string{
		"/v1/kdv?dataset=d&bandwidth=8&width=32&height=32",
		"/v1/kfunction?dataset=d&smax=20&steps=5&sims=9&seed=2",
		"/v1/moran?dataset=d&perms=49&seed=2&k=6",
		"/v1/generalg?dataset=d&perms=49&seed=2&k=6",
		"/v1/idw?dataset=d&method=knn&k=6&width=32&height=32",
		"/v1/idw?dataset=d&method=radius&radius=25&width=16&height=16",
		"/v1/idw?dataset=d&width=16&height=16",
	} {
		rr := do(t, srv, http.MethodGet, target, nil)
		if rr.Code != http.StatusOK {
			t.Errorf("%s: status = %d: %s", target, rr.Code, rr.Body.String())
			continue
		}
		if !json.Valid(rr.Body.Bytes()) {
			t.Errorf("%s: response is not valid JSON", target)
		}
	}
}

func TestKDVPNGFormat(t *testing.T) {
	srv := newServer(t, serve.Config{CacheBytes: 64 << 20})
	generate(t, srv, "name=d&kind=csr&n=200&seed=1")
	rr := do(t, srv, http.MethodGet, "/v1/kdv?dataset=d&bandwidth=10&width=24&height=24&format=png", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	if ct := rr.Header().Get("Content-Type"); ct != "image/png" {
		t.Fatalf("Content-Type = %q, want image/png", ct)
	}
	if !bytes.HasPrefix(rr.Body.Bytes(), []byte("\x89PNG")) {
		t.Fatal("body does not start with the PNG magic")
	}
}

func TestHealthzReportsCacheStats(t *testing.T) {
	srv := newServer(t, serve.Config{CacheBytes: 64 << 20})
	generate(t, srv, "name=d&kind=csr&n=200&seed=1")
	const q = "/v1/kdv?dataset=d&bandwidth=10&width=16&height=16"
	do(t, srv, http.MethodGet, q, nil)
	do(t, srv, http.MethodGet, q, nil)
	rr := do(t, srv, http.MethodGet, "/healthz", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("healthz: status %d", rr.Code)
	}
	var h struct {
		Status string `json:"status"`
		Cache  struct {
			Hits    int64 `json:"hits"`
			Entries int64 `json:"entries"`
		} `json:"cache"`
		CacheHitRate float64 `json:"cache_hit_rate"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Cache.Hits != 1 || h.Cache.Entries != 1 || h.CacheHitRate <= 0 {
		t.Fatalf("unexpected healthz payload: %s", rr.Body.String())
	}
}

func TestDebugVarsExposesMetrics(t *testing.T) {
	srv := newServer(t, serve.Config{CacheBytes: 64 << 20})
	generate(t, srv, "name=d&kind=csr&n=200&seed=1")
	const q = "/v1/kdv?dataset=d&bandwidth=10&width=16&height=16&seed=42"

	hitsBefore, _ := debugVar(t, srv, "geostatd.cache_hits")
	do(t, srv, http.MethodGet, q, nil)
	do(t, srv, http.MethodGet, q, nil)
	hitsAfter, reqs := debugVar(t, srv, "geostatd.cache_hits")

	// Metrics are process-wide (expvar), so assert on deltas.
	if hitsAfter-hitsBefore != 1 {
		t.Fatalf("cache_hits delta = %d, want 1", hitsAfter-hitsBefore)
	}
	if reqs == 0 {
		t.Fatal("geostatd.requests has no kdv count")
	}
}

// debugVar reads one counter and the kdv request count from /debug/vars.
func debugVar(t *testing.T, srv *serve.Server, name string) (int64, int64) {
	t.Helper()
	rr := do(t, srv, http.MethodGet, "/debug/vars", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("/debug/vars: status %d", rr.Code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(rr.Body.Bytes(), &vars); err != nil {
		t.Fatal(err)
	}
	var v int64
	if raw, ok := vars[name]; ok {
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
	}
	var reqs struct {
		KDV int64 `json:"kdv"`
	}
	if raw, ok := vars["geostatd.requests"]; ok {
		_ = json.Unmarshal(raw, &reqs)
	}
	return v, reqs.KDV
}

func TestRealHTTPServerRoundTrip(t *testing.T) {
	srv := newServer(t, serve.Config{CacheBytes: 64 << 20})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/generate?name=d&kind=csr&n=200&seed=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generate over HTTP: status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/kdv?dataset=d&bandwidth=10&width=16&height=16")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("kdv over HTTP: status %d", resp.StatusCode)
	}
}

func TestMaxInFlightQueuesRatherThanFails(t *testing.T) {
	srv := newServer(t, serve.Config{CacheBytes: 64 << 20, MaxInFlight: 1, Workers: 1})
	generate(t, srv, "name=d&kind=csr&n=500&seed=1")
	// With one slot and sequential requests every request must still run.
	for i := 0; i < 3; i++ {
		q := fmt.Sprintf("/v1/kdv?dataset=d&bandwidth=10&width=16&height=16&seed=%d", i)
		if rr := do(t, srv, http.MethodGet, q, nil); rr.Code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, rr.Code)
		}
	}
}
