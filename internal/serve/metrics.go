package serve

import "expvar"

// Process-wide request metrics, exported at /debug/vars. expvar panics on
// duplicate registration, so these are package-level and registered
// exactly once; every Server instance (including the many servers an
// httptest suite spins up) shares them, and tests assert on deltas rather
// than absolute values. Cache occupancy, by contrast, is per-server and
// reported by /healthz.
var (
	// mRequests counts requests per tool ("kdv", "kfunction", ...).
	mRequests = expvar.NewMap("geostatd.requests")
	// mCacheHits / mCacheMisses count result-cache lookups across servers.
	mCacheHits   = expvar.NewInt("geostatd.cache_hits")
	mCacheMisses = expvar.NewInt("geostatd.cache_misses")
	// mInFlight is the number of tool requests currently executing.
	mInFlight = expvar.NewInt("geostatd.inflight")
	// mCanceled counts requests abandoned by the client (HTTP 499).
	mCanceled = expvar.NewInt("geostatd.canceled")
	// mTimeouts counts requests killed by their timeout budget (504).
	mTimeouts = expvar.NewInt("geostatd.timeouts")
	// mRejected counts requests shed by admission control (503).
	mRejected = expvar.NewInt("geostatd.rejected")
	// mErrors counts requests rejected for any other reason (4xx).
	mErrors = expvar.NewInt("geostatd.errors")
)
