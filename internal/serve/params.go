package serve

import (
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"
)

// params wraps a request's query values with typed accessors that collect
// parse errors instead of failing one at a time: a handler reads every
// parameter it needs, then checks params.err() once.
type params struct {
	q    url.Values
	errs []string
}

func newParams(q url.Values) *params { return &params{q: q} }

func (p *params) fail(key, format string, args ...any) {
	p.errs = append(p.errs, fmt.Sprintf("%s: %s", key, fmt.Sprintf(format, args...)))
}

// err returns a single error naming every malformed parameter, or nil.
func (p *params) err() error {
	if len(p.errs) == 0 {
		return nil
	}
	return fmt.Errorf("invalid parameters: %s", strings.Join(p.errs, "; "))
}

// str returns the parameter or a default when absent/empty.
func (p *params) str(key, def string) string {
	if v := p.q.Get(key); v != "" {
		return v
	}
	return def
}

func (p *params) intv(key string, def int) int {
	v := p.q.Get(key)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		p.fail(key, "not an integer (%q)", v)
		return def
	}
	return n
}

func (p *params) int64v(key string, def int64) int64 {
	v := p.q.Get(key)
	if v == "" {
		return def
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		p.fail(key, "not an integer (%q)", v)
		return def
	}
	return n
}

func (p *params) floatv(key string, def float64) float64 {
	v := p.q.Get(key)
	if v == "" {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		p.fail(key, "not a number (%q)", v)
		return def
	}
	return f
}

func (p *params) boolv(key string, def bool) bool {
	v := p.q.Get(key)
	if v == "" {
		return def
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		p.fail(key, "not a boolean (%q)", v)
		return def
	}
	return b
}

// cacheKey builds the canonical identity of a tool request:
//
//	tool|name@version|k1=v1&k2=v2...
//
// Parameters are sorted by key (and by value within a repeated key), so
// two requests that differ only in query-string ordering share a cache
// entry, and the dataset version makes re-uploads invalidate implicitly.
// Every input that can change the result — seed included — must be a
// query parameter, which is what makes equal keys imply byte-equal
// responses.
func cacheKey(tool, dataset string, version uint64, q url.Values) string {
	keys := make([]string, 0, len(q))
	for k := range q {
		keys = append(keys, k) //lint:allow maporder keys are sorted before use
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(tool)
	b.WriteByte('|')
	b.WriteString(dataset)
	b.WriteByte('@')
	b.WriteString(strconv.FormatUint(version, 10))
	b.WriteByte('|')
	for i, k := range keys {
		vals := append([]string(nil), q[k]...)
		sort.Strings(vals)
		for j, v := range vals {
			if i+j > 0 {
				b.WriteByte('&')
			}
			b.WriteString(url.QueryEscape(k))
			b.WriteByte('=')
			b.WriteString(url.QueryEscape(v))
		}
	}
	return b.String()
}
