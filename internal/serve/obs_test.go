package serve_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"geostat/internal/obs"
	"geostat/internal/serve"
)

// promSampleRE matches one Prometheus text-format sample line:
// name{label="value",...} value
var promSampleRE = regexp.MustCompile(
	`^[a-z][a-z0-9_]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$`)

// scrape fetches /metrics, checks every line is well-formed exposition
// text, and returns the sample lines keyed by their series string.
func scrape(t *testing.T, srv *serve.Server) map[string]string {
	t.Helper()
	rr := do(t, srv, http.MethodGet, "/metrics", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics: Content-Type = %q, want text/plain", ct)
	}
	samples := make(map[string]string)
	for _, line := range strings.Split(strings.TrimRight(rr.Body.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promSampleRE.MatchString(line) {
			t.Fatalf("/metrics: malformed sample line %q", line)
		}
		series, value, _ := strings.Cut(line, " ")
		samples[series] = value
	}
	return samples
}

func TestMetricsEndpointPrometheus(t *testing.T) {
	srv := newServer(t, serve.Config{CacheBytes: 8 << 20, Workers: 2})
	generate(t, srv, "name=ev&kind=clusters&n=300&seed=3")

	const tile = "/v1/kdv?dataset=ev&bandwidth=8&width=32&height=32"
	for i := 0; i < 2; i++ { // miss then hit
		if rr := do(t, srv, http.MethodGet, tile, nil); rr.Code != http.StatusOK {
			t.Fatalf("kdv: status %d: %s", rr.Code, rr.Body.String())
		}
	}
	if rr := do(t, srv, http.MethodGet, "/v1/kdv?dataset=ev&kernel=bogus", nil); rr.Code != http.StatusBadRequest {
		t.Fatalf("bad kernel: status %d, want 400", rr.Code)
	}

	samples := scrape(t, srv)
	for series, want := range map[string]string{
		`geostatd_requests_total{tool="kdv"}`:                   "3",
		`geostatd_request_seconds_count{tool="kdv"}`:            "3",
		`geostatd_request_seconds_bucket{tool="kdv",le="+Inf"}`: "3",
		`geostatd_requests_inflight`:                            "0",
		`geostatd_cache_hits_total`:                             "1",
		`geostatd_cache_misses_total`:                           "2",
		`geostatd_errors_total{kind="bad_request"}`:             "1",
	} {
		if got, ok := samples[series]; !ok {
			t.Errorf("missing series %s", series)
		} else if got != want {
			t.Errorf("%s = %s, want %s", series, got, want)
		}
	}

	// The histogram's TYPE line must be present for Prometheus to accept it.
	rr := do(t, srv, http.MethodGet, "/metrics", nil)
	if !strings.Contains(rr.Body.String(), "# TYPE geostatd_request_seconds histogram") {
		t.Error("missing histogram TYPE line for geostatd_request_seconds")
	}
}

func TestTraceLastSpanTree(t *testing.T) {
	srv := newServer(t, serve.Config{CacheBytes: 8 << 20, Workers: 2})

	// Before any tool request the endpoint 404s.
	if rr := do(t, srv, http.MethodGet, "/debug/trace/last", nil); rr.Code != http.StatusNotFound {
		t.Fatalf("empty trace: status %d, want 404", rr.Code)
	}

	generate(t, srv, "name=ev&kind=csr&n=400&seed=5")
	const tile = "/v1/kdv?dataset=ev&bandwidth=8&method=grid-cutoff&width=32&height=32"
	if rr := do(t, srv, http.MethodGet, tile, nil); rr.Code != http.StatusOK {
		t.Fatalf("kdv: status %d: %s", rr.Code, rr.Body.String())
	}

	rr := do(t, srv, http.MethodGet, "/debug/trace/last", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("/debug/trace/last: status %d", rr.Code)
	}
	var tree obs.SpanTree
	if err := json.Unmarshal(rr.Body.Bytes(), &tree); err != nil {
		t.Fatalf("decode trace: %v", err)
	}
	got := tree.StageNames()
	want := []string{
		"request", "request.lookup", "request.cache",
		"kdv.parse", "kdv.compute", "kde.index_build", "kde.evaluate",
		"parallel.for", "kdv.encode",
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("stage tree = %v, want %v", got, want)
	}
	var tool string
	for _, a := range tree.Attrs {
		if a.Key == "tool" {
			tool = a.Value
		}
	}
	if tool != "kdv" {
		t.Fatalf("root tool attr = %q, want kdv", tool)
	}
}

func TestSlowRequestLogging(t *testing.T) {
	var (
		mu  sync.Mutex
		log strings.Builder
	)
	srv := newServer(t, serve.Config{
		CacheBytes:    8 << 20,
		Workers:       2,
		SlowThreshold: time.Nanosecond, // every request is "slow"
		Logf: func(format string, args ...any) {
			mu.Lock()
			defer mu.Unlock()
			fmt.Fprintf(&log, format+"\n", args...)
		},
	})
	generate(t, srv, "name=ev&kind=csr&n=200&seed=1")
	if rr := do(t, srv, http.MethodGet, "/v1/kdv?dataset=ev&bandwidth=8&width=16&height=16", nil); rr.Code != http.StatusOK {
		t.Fatalf("kdv: status %d", rr.Code)
	}
	mu.Lock()
	out := log.String()
	mu.Unlock()
	for _, frag := range []string{"slow request", "kdv.compute", "tool=kdv"} {
		if !strings.Contains(out, frag) {
			t.Errorf("slow log missing %q:\n%s", frag, out)
		}
	}
}

// TestCacheConcurrentStress hammers the 16-shard LRU from many goroutines
// with a byte budget small enough to force continuous evictions, then
// checks the accounting invariants. Run under -race this doubles as the
// shard-locking correctness test. Raw goroutines are fine in test code.
func TestCacheConcurrentStress(t *testing.T) {
	const capacity = 1 << 14 // 16 KiB across 16 shards: ~1 KiB per shard
	c := serve.NewCache(capacity)
	body := make([]byte, 256)
	const (
		goroutines = 16
		ops        = 3000
		keyspace   = 64
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				key := fmt.Sprintf("tool|ds@1|k=%d", (g*31+i)%keyspace)
				switch i % 3 {
				case 0:
					c.Put(key, serve.Value{Body: body, ContentType: "application/json"})
				case 1:
					c.Get(key)
				case 2:
					if st := c.Stats(); st.Bytes < 0 || st.Entries < 0 {
						t.Errorf("negative occupancy: %+v", st)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	st := c.Stats()
	if st.Bytes > capacity {
		t.Fatalf("cache holds %d bytes, budget %d", st.Bytes, capacity)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions despite keyspace exceeding the byte budget")
	}
	if total := st.Hits + st.Misses; total != goroutines*ops/3 {
		t.Fatalf("hits+misses = %d, want %d", total, goroutines*ops/3)
	}
	// Every key that survived must round-trip.
	found := 0
	for k := 0; k < keyspace; k++ {
		if v, ok := c.Get(fmt.Sprintf("tool|ds@1|k=%d", k)); ok {
			found++
			if len(v.Body) != len(body) {
				t.Fatalf("corrupt cached body: %d bytes", len(v.Body))
			}
		}
	}
	if found == 0 {
		t.Fatal("nothing survived in the cache")
	}
}
