package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"

	"geostat"
	"geostat/internal/obs"
)

// ---- dataset management ----

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	v, err := jsonValue(struct {
		Datasets []DatasetInfo `json:"datasets"`
	}{Datasets: s.reg.List()})
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeValue(w, v, "none")
}

// handleUpload stores a dataset posted as CSV (header x,y[,t][,value]) or
// as a GeoJSON FeatureCollection of Point features (optional numeric "t"
// and "value" properties). The format is sniffed from the first byte: a
// JSON object means GeoJSON, anything else is parsed as CSV.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeError(w, http.StatusRequestEntityTooLarge, err.Error())
		return
	}
	d, err := decodeDataset(body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	version, err := s.reg.Put(name, d)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.writeDatasetInfo(w, DatasetInfo{
		Name: name, N: d.N(), Version: version,
		HasTimes: d.HasTimes(), HasValues: d.HasValues(),
	})
}

func decodeDataset(body []byte) (*geostat.Dataset, error) {
	if b := bytes.TrimLeft(body, " \t\r\n"); len(b) > 0 && b[0] == '{' {
		fc, err := geostat.ParseGeoJSON(body)
		if err != nil {
			return nil, err
		}
		pts, times, values, err := fc.PointData()
		if err != nil {
			return nil, err
		}
		return geostat.NewDataset(pts, times, values)
	}
	return geostat.ReadCSV(bytes.NewReader(body))
}

func (s *Server) writeDatasetInfo(w http.ResponseWriter, info DatasetInfo) {
	v, err := jsonValue(info)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeValue(w, v, "none")
}

// handleDigest serves GET /v1/datasets/{name}/digest: the dataset's
// content digest (SHA-256 over the exact column bits) plus its version.
// The shard coordinator calls this before fanning out tiles, to verify a
// worker's copy of the dataset is bit-identical to the one it planned
// against; a mismatch (or 404) triggers a re-upload.
func (s *Server) handleDigest(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	digest, version, ok := s.reg.Digest(name)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Sprintf("unknown dataset %q", name))
		return
	}
	d, _, _ := s.reg.Get(name)
	s.writeDatasetInfo(w, DatasetInfo{
		Name: name, N: d.N(), Version: version,
		HasTimes: d.HasTimes(), HasValues: d.HasValues(),
		Digest: digest,
	})
}

// handleGenerate registers a synthetic dataset: kind=csr|clusters|outbreak
// with n points from the given seed, over the fixed [0,100]² study box
// (the box the CLI demos use). field=true attaches a smooth measured
// value to every point so the interpolation/autocorrelation tools apply.
func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	p := newParams(r.URL.Query())
	name := p.str("name", "")
	kind := p.str("kind", "csr")
	n := p.intv("n", 1000)
	seed := p.int64v("seed", 1)
	field := p.boolv("field", false)
	if err := p.err(); err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if name == "" {
		s.writeError(w, http.StatusBadRequest, "missing name parameter")
		return
	}
	if n < 1 || n > 1_000_000 {
		s.writeError(w, http.StatusBadRequest, "n must be in [1, 1000000]")
		return
	}
	box := geostat.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	rng := geostat.NewRand(seed)
	var d *geostat.Dataset
	switch kind {
	case "csr":
		d = geostat.UniformCSR(rng, n, box)
	case "clusters":
		d = geostat.GaussianClusters(rng, n, box, []geostat.GaussianCluster{
			{Center: geostat.Point{X: 30, Y: 30}, Sigma: 6, Weight: 2},
			{Center: geostat.Point{X: 70, Y: 60}, Sigma: 10, Weight: 1},
		}, 0.15)
	case "outbreak":
		d = geostat.SpatioTemporalOutbreak(rng, n, box, 0, 10, []geostat.OutbreakWave{
			{Center: geostat.Point{X: 25, Y: 25}, Sigma: 8, TimeMean: 3, TimeSigma: 1, Weight: 1},
			{Center: geostat.Point{X: 75, Y: 70}, Sigma: 8, TimeMean: 7, TimeSigma: 1, Weight: 1},
		}, 0.1)
	default:
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown kind %q (csr|clusters|outbreak)", kind))
		return
	}
	if field {
		d = geostat.WithField(rng, d, func(q geostat.Point) float64 {
			return 10 + q.X/10 + q.Y/20 + 5*gaussBump(q, 35, 35, 15)
		}, 0.5)
	}
	version, err := s.reg.Put(name, d)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.writeDatasetInfo(w, DatasetInfo{
		Name: name, N: d.N(), Version: version,
		HasTimes: d.HasTimes(), HasValues: d.HasValues(),
	})
}

// gaussBump is the hotspot term of the synthetic measured field.
func gaussBump(q geostat.Point, cx, cy, s float64) float64 {
	dx, dy := q.X-cx, q.Y-cy
	return math.Exp(-(dx*dx + dy*dy) / (2 * s * s))
}

// ---- shared parameter plumbing ----

// parseGrid reads the raster parameters (width, height, optional
// bbox=minx,miny,maxx,maxy) and returns the evaluation grid. The default
// window is the dataset's bounding box; an explicit bbox is how clients
// request individual tiles of a larger surface.
func parseGrid(d *geostat.Dataset, p *params) geostat.PixelGrid {
	nx := p.intv("width", 128)
	ny := p.intv("height", 128)
	if nx < 1 || nx > 4096 || ny < 1 || ny > 4096 {
		p.fail("width/height", "must be in [1, 4096]")
		nx, ny = 1, 1
	}
	box := d.Bounds()
	if raw := p.str("bbox", ""); raw != "" {
		var minx, miny, maxx, maxy float64
		if _, err := fmt.Sscanf(raw, "%f,%f,%f,%f", &minx, &miny, &maxx, &maxy); err != nil {
			p.fail("bbox", "want minx,miny,maxx,maxy (%q)", raw)
		} else if !finite(minx) || !finite(miny) || !finite(maxx) || !finite(maxy) {
			// NaN compares false against everything, so without this check a
			// bbox like "NaN,0,10,10" would sail through the emptiness test
			// below and poison the whole raster.
			p.fail("bbox", "coordinates must be finite (%q)", raw)
		} else if minx >= maxx || miny >= maxy {
			p.fail("bbox", "empty box %q", raw)
		} else {
			box = geostat.BBox{MinX: minx, MinY: miny, MaxX: maxx, MaxY: maxy}
		}
	}
	return geostat.NewPixelGrid(box, nx, ny)
}

// parseWeights builds the spatial weight matrix for the autocorrelation
// tools: weights=knn (default, k=8) or weights=band (radius defaults to
// 1/10 of the bbox diagonal). rowstd=true row-standardizes (Moran's I
// convention; General G keeps binary weights by default).
func (s *Server) parseWeights(d *geostat.Dataset, p *params, rowstd bool) (*geostat.SpatialWeights, error) {
	var (
		w   *geostat.SpatialWeights
		err error
	)
	switch scheme := p.str("weights", "knn"); scheme {
	case "knn":
		w, err = geostat.KNNWeightsWorkers(d.Points(), p.intv("k", 8), s.cfg.Workers)
	case "band":
		radius := p.floatv("radius", bboxDiag(d.Bounds())/10)
		w, err = geostat.DistanceBandWeightsWorkers(d.Points(), radius, s.cfg.Workers)
	default:
		return nil, fmt.Errorf("unknown weights scheme %q (knn|band)", scheme)
	}
	if err != nil {
		return nil, err
	}
	if p.boolv("rowstd", rowstd) {
		w.RowStandardize()
	}
	return w, nil
}

func bboxDiag(b geostat.BBox) float64 {
	return math.Hypot(b.Width(), b.Height())
}

// finite reports whether v is neither NaN nor ±Inf.
func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// heatmapValue renders a computed surface as format=json (the full value
// array plus summary stats) or format=png (heat-ramp raster).
func heatmapValue(g *geostat.Heatmap, format, dataset, method string) (Value, error) {
	switch format {
	case "png":
		var buf bytes.Buffer
		if err := g.WritePNG(&buf, geostat.HeatRamp); err != nil {
			return Value{}, err
		}
		return Value{Body: buf.Bytes(), ContentType: "image/png"}, nil
	case "json", "":
		lo, hi := g.MinMax()
		return jsonValue(struct {
			Dataset string    `json:"dataset"`
			Method  string    `json:"method"`
			Width   int       `json:"width"`
			Height  int       `json:"height"`
			Min     float64   `json:"min"`
			Max     float64   `json:"max"`
			Sum     float64   `json:"sum"`
			Values  []float64 `json:"values"`
		}{dataset, method, g.Spec.NX, g.Spec.NY, lo, hi, g.Sum(), g.Values})
	default:
		return Value{}, fmt.Errorf("unknown format %q (json|png)", format)
	}
}

// ---- tool compute functions ----

var kdvMethods = map[string]geostat.KDVMethod{
	"auto":         geostat.KDVAuto,
	"naive":        geostat.KDVNaive,
	"grid-cutoff":  geostat.KDVGridCutoff,
	"sweep-line":   geostat.KDVSweepLine,
	"bound-approx": geostat.KDVBoundApprox,
	"sampled":      geostat.KDVSampled,
}

// computeKDV serves GET /v1/kdv: a kernel density raster tile.
// Parameters: kernel (default quartic), bandwidth (0 = Silverman's rule),
// method (auto|naive|grid-cutoff|sweep-line|bound-approx|sampled),
// width/height/bbox, epsilon/delta/seed for the approximate methods,
// normalize, format=json|png.
func (s *Server) computeKDV(ctx context.Context, d *geostat.Dataset, p *params) (Value, error) {
	_, parse := obs.Trace(ctx, "kdv.parse")
	defer parse.End()
	method, ok := kdvMethods[p.str("method", "auto")]
	if !ok {
		return Value{}, fmt.Errorf("unknown method %q", p.str("method", "auto"))
	}
	ktype, err := geostat.ParseKernel(p.str("kernel", "quartic"))
	if err != nil {
		return Value{}, err
	}
	bandwidth := p.floatv("bandwidth", 0)
	if bandwidth == 0 {
		if bandwidth, err = geostat.SilvermanBandwidth(d.Points()); err != nil {
			return Value{}, err
		}
	}
	k, err := geostat.NewKernel(ktype, bandwidth)
	if err != nil {
		return Value{}, err
	}
	opt := geostat.KDVOptions{
		Kernel:    k,
		Grid:      parseGrid(d, p),
		Method:    method,
		Normalize: p.boolv("normalize", false),
		Workers:   s.cfg.Workers,
		Epsilon:   p.floatv("epsilon", 0.05),
		Delta:     p.floatv("delta", 0.01),
		Seed:      p.int64v("seed", 1),
	}
	// tile=x0,y0,w,h evaluates only that pixel window of the full grid —
	// the shard coordinator's per-worker request unit. Centers still come
	// from the full grid, so assembling tiles reproduces the single-node
	// raster bit-for-bit. Only the exact naive method supports windows.
	if raw := p.str("tile", ""); raw != "" {
		var win geostat.GridWindow
		if _, serr := fmt.Sscanf(raw, "%d,%d,%d,%d", &win.X0, &win.Y0, &win.NX, &win.NY); serr != nil {
			return Value{}, fmt.Errorf("tile: want x0,y0,w,h (%q)", raw)
		}
		if method != geostat.KDVNaive {
			return Value{}, fmt.Errorf("tile evaluation requires method=naive (got %q)", method)
		}
		if werr := opt.Grid.CheckWindow(win); werr != nil {
			return Value{}, werr
		}
		opt.Window = win
		s.metrics.Counter("shard_tiles_total",
			"windowed (tile=) KDV computations served to a shard coordinator").Inc()
	}
	if perr := p.err(); perr != nil {
		return Value{}, perr
	}
	parse.End()

	cctx, compute := obs.Trace(ctx, "kdv.compute")
	defer compute.End()
	g, err := geostat.KDVDatasetCtx(cctx, d, opt)
	compute.End()
	if err != nil {
		return Value{}, err
	}

	_, encode := obs.Trace(ctx, "kdv.encode")
	defer encode.End()
	return heatmapValue(g, p.str("format", "json"), p.str("dataset", ""), method.String())
}

// computeKFunction serves GET /v1/kfunction: the K-function plot with
// Monte-Carlo CSR envelopes (Definition 3). Parameters: smax (default
// quarter of the bbox diagonal), steps (default 10), sims (default 19 —
// the p=0.05 convention), seed.
func (s *Server) computeKFunction(ctx context.Context, d *geostat.Dataset, p *params) (Value, error) {
	_, parse := obs.Trace(ctx, "kfunction.parse")
	defer parse.End()
	smax := p.floatv("smax", bboxDiag(d.Bounds())/4)
	steps := p.intv("steps", 10)
	sims := p.intv("sims", 19)
	seed := p.int64v("seed", 1)
	if err := p.err(); err != nil {
		return Value{}, err
	}
	if steps < 1 || steps > 1000 {
		return Value{}, fmt.Errorf("steps must be in [1, 1000]")
	}
	if sims < 1 || sims > 10000 {
		return Value{}, fmt.Errorf("sims must be in [1, 10000]")
	}
	if !(smax > 0) {
		return Value{}, fmt.Errorf("smax must be positive")
	}
	// thresholds=s1,s2,... evaluates an explicit distance-band subset —
	// the shard coordinator's K-function fan-out unit. Counts per band are
	// integers and each Monte-Carlo simulation draws its point pattern
	// from the seed independently of the band list, so per-band results
	// from any partition of the thresholds merge bit-identically into the
	// single-node plot. Absent, the bands derive from smax/steps.
	var thresholds []float64
	if raw := p.str("thresholds", ""); raw != "" {
		parts := strings.Split(raw, ",")
		if len(parts) > 1000 {
			return Value{}, fmt.Errorf("thresholds: at most 1000 bands (%d)", len(parts))
		}
		thresholds = make([]float64, len(parts))
		for i, part := range parts {
			v, perr := strconv.ParseFloat(part, 64)
			if perr != nil {
				return Value{}, fmt.Errorf("thresholds: not a number (%q)", part)
			}
			thresholds[i] = v
		}
		s.metrics.Counter("shard_bands_total",
			"K-function distance bands served via explicit thresholds= requests").Add(int64(len(parts)))
	} else {
		thresholds = make([]float64, steps)
		for i := range thresholds {
			thresholds[i] = smax * float64(i+1) / float64(steps)
		}
	}
	parse.End()

	cctx, compute := obs.Trace(ctx, "kfunction.compute")
	defer compute.End()
	plot, err := geostat.KFunctionPlot(d.Points(), geostat.KPlotOptions{
		Thresholds:  thresholds,
		Simulations: sims,
		Workers:     s.cfg.Workers,
		Ctx:         cctx,
	}, geostat.NewRand(seed))
	compute.End()
	if err != nil {
		return Value{}, err
	}

	_, encode := obs.Trace(ctx, "kfunction.encode")
	defer encode.End()
	regimes := make([]string, len(plot.S))
	for i := range regimes {
		regimes[i] = plot.RegimeAt(i).String()
	}
	return jsonValue(struct {
		Dataset string    `json:"dataset"`
		S       []float64 `json:"s"`
		K       []float64 `json:"k"`
		Lo      []float64 `json:"lo"`
		Hi      []float64 `json:"hi"`
		Sims    int       `json:"sims"`
		Regimes []string  `json:"regimes"`
	}{p.str("dataset", ""), plot.S, plot.K, plot.Lo, plot.Hi, plot.Sim, regimes})
}

// computeMoran serves GET /v1/moran: global Moran's I with a permutation
// test. Parameters: weights/k/radius/rowstd (see parseWeights), perms
// (default 99), seed.
func (s *Server) computeMoran(ctx context.Context, d *geostat.Dataset, p *params) (Value, error) {
	_, weights := obs.Trace(ctx, "moran.weights")
	defer weights.End()
	w, err := s.parseWeights(d, p, true)
	weights.End()
	if err != nil {
		return Value{}, err
	}
	_, parse := obs.Trace(ctx, "moran.parse")
	defer parse.End()
	opt := geostat.MoranOptions{
		Perms:   p.intv("perms", 99),
		Seed:    p.int64v("seed", 1),
		Workers: s.cfg.Workers,
	}
	if perr := p.err(); perr != nil {
		return Value{}, perr
	}
	parse.End()

	cctx, compute := obs.Trace(ctx, "moran.compute")
	defer compute.End()
	opt.Ctx = cctx
	res, err := geostat.MoranIOpt(d.Values(), w, opt)
	compute.End()
	if err != nil {
		return Value{}, err
	}

	_, encode := obs.Trace(ctx, "moran.encode")
	defer encode.End()
	return jsonValue(struct {
		Dataset  string  `json:"dataset"`
		I        float64 `json:"i"`
		Expected float64 `json:"expected"`
		PermMean float64 `json:"perm_mean"`
		PermStd  float64 `json:"perm_std"`
		Z        float64 `json:"z"`
		P        float64 `json:"p"`
		Perms    int     `json:"perms"`
	}{p.str("dataset", ""), res.I, res.Expected, res.PermMean, res.PermStd, res.Z, res.P, res.Perms})
}

// computeGeneralG serves GET /v1/generalg: Getis-Ord General G with a
// permutation test. Weights stay binary by default (the statistic's
// textbook form); pass rowstd=true to override.
func (s *Server) computeGeneralG(ctx context.Context, d *geostat.Dataset, p *params) (Value, error) {
	_, weights := obs.Trace(ctx, "generalg.weights")
	defer weights.End()
	w, err := s.parseWeights(d, p, false)
	weights.End()
	if err != nil {
		return Value{}, err
	}
	_, parse := obs.Trace(ctx, "generalg.parse")
	defer parse.End()
	opt := geostat.GetisOrdOptions{
		Perms:   p.intv("perms", 99),
		Seed:    p.int64v("seed", 1),
		Workers: s.cfg.Workers,
	}
	if perr := p.err(); perr != nil {
		return Value{}, perr
	}
	parse.End()

	cctx, compute := obs.Trace(ctx, "generalg.compute")
	defer compute.End()
	opt.Ctx = cctx
	res, err := geostat.GeneralGOpt(d.Values(), w, opt)
	compute.End()
	if err != nil {
		return Value{}, err
	}

	_, encode := obs.Trace(ctx, "generalg.encode")
	defer encode.End()
	return jsonValue(struct {
		Dataset  string  `json:"dataset"`
		G        float64 `json:"g"`
		Expected float64 `json:"expected"`
		PermMean float64 `json:"perm_mean"`
		PermStd  float64 `json:"perm_std"`
		Z        float64 `json:"z"`
		P        float64 `json:"p"`
		Perms    int     `json:"perms"`
	}{p.str("dataset", ""), res.G, res.Expected, res.PermMean, res.PermStd, res.Z, res.P, res.Perms})
}

// computeIDW serves GET /v1/idw: inverse-distance-weighted interpolation
// of the dataset's values. Parameters: power (default 2), method
// (naive|knn|radius), k (knn, default 8), radius (radius method, default
// 1/10 of the bbox diagonal), width/height/bbox, format=json|png.
func (s *Server) computeIDW(ctx context.Context, d *geostat.Dataset, p *params) (Value, error) {
	_, parse := obs.Trace(ctx, "idw.parse")
	defer parse.End()
	opt := geostat.IDWOptions{
		Grid:    parseGrid(d, p),
		Power:   p.floatv("power", 2),
		Workers: s.cfg.Workers,
	}
	method := p.str("method", "naive")
	k := p.intv("k", 8)
	radius := p.floatv("radius", bboxDiag(d.Bounds())/10)
	if err := p.err(); err != nil {
		return Value{}, err
	}
	parse.End()

	cctx, compute := obs.Trace(ctx, "idw.compute")
	defer compute.End()
	opt.Ctx = cctx
	var (
		g   *geostat.Heatmap
		err error
	)
	switch method {
	case "naive":
		g, err = geostat.IDW(d, opt)
	case "knn":
		g, err = geostat.IDWKNN(d, opt, k)
	case "radius":
		g, err = geostat.IDWRadius(d, opt, radius)
	default:
		return Value{}, fmt.Errorf("unknown method %q (naive|knn|radius)", method)
	}
	compute.End()
	if err != nil {
		return Value{}, err
	}

	_, encode := obs.Trace(ctx, "idw.encode")
	defer encode.End()
	return heatmapValue(g, p.str("format", "json"), p.str("dataset", ""), "idw-"+method)
}
