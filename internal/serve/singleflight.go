package serve

import (
	"context"
	"sync"

	"geostat/internal/obs"
)

// Single-flight coalescing of identical in-flight tool requests.
//
// Under a hot-key load (every map client zooming into the same tile) the
// result cache only helps after the first computation has finished;
// while it is still running, N identical requests would previously run N
// identical computations, each burning an in-flight slot. The flight
// group collapses them: the first request for a cache key becomes the
// leader and runs the computation once, every concurrent duplicate
// attaches as a waiter, and all of them receive the same Value — the
// exact bytes the leader produced, so coalesced responses stay
// byte-identical to cached replays.
//
// Cancellation contract (the ctx-detach rationale, see DESIGN.md):
//
//   - The computation runs on a context DETACHED from the leader's
//     request context (values — trace spans — are kept; cancellation is
//     not inherited). If the computation inherited the leader's
//     cancellation, the leader hanging up would abort the work that N-1
//     other clients are still waiting for.
//   - Each waiter honours its own request context: a waiter that cancels
//     gets ctx.Err() (mapped to 499) immediately, without disturbing the
//     flight.
//   - The flight keeps a waiter refcount. When the LAST waiter abandons
//     the call, nobody wants the result anymore and the detached context
//     is cancelled, so the worker pools unwind at the next chunk
//     boundary. An abandoned call is unlinked from the group first: a
//     request arriving after the cancellation starts a fresh flight
//     instead of inheriting a doomed one.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall

	// shared counts waiters at ATTACH time (not completion), so a load
	// test can observe coalescing while the flight is still running.
	shared *obs.Counter
}

type flightCall struct {
	// done is closed by the leader goroutine once val/err are set.
	done chan struct{}
	val  Value
	err  error

	// waiters counts requests currently blocked on done; guarded by the
	// group mutex. cancel aborts the detached compute context.
	waiters int
	cancel  context.CancelFunc
}

func newFlightGroup(m *obs.Registry) *flightGroup {
	return &flightGroup{
		calls: make(map[string]*flightCall),
		shared: m.Counter("serve_singleflight_shared_total",
			"requests that attached to another request's in-flight computation"),
	}
}

// detachedContext returns a cancellable context that keeps ctx's values
// (the request trace, so compute spans still land in the leader's tree)
// but not its cancellation: the computation outlives any single waiter
// and is stopped only via the returned CancelFunc.
func detachedContext(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(context.WithoutCancel(ctx))
}

// do returns the value of compute(key), coalescing concurrent calls with
// the same key into one execution. shared reports whether this request
// attached to a flight started by another request (it did not pay for
// the computation itself). A waiter whose ctx ends before the flight
// completes returns ctx.Err() and detaches; compute is only cancelled
// when every waiter has detached.
func (g *flightGroup) do(ctx context.Context, key string, compute func(ctx context.Context) (Value, error)) (v Value, shared bool, err error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		c.waiters++
		g.mu.Unlock()
		g.shared.Inc()
		v, err = g.wait(ctx, key, c)
		return v, true, err
	}
	c := &flightCall{done: make(chan struct{}), waiters: 1}
	cctx, cancel := detachedContext(ctx)
	c.cancel = cancel
	g.calls[key] = c
	g.mu.Unlock()

	go g.run(key, c, cctx, compute) //lint:allow norawgoroutine the flight leader must outlive any one waiter's request context; bounded: one goroutine per distinct in-flight key, it exits when compute returns

	v, err = g.wait(ctx, key, c)
	return v, false, err
}

// run executes the flight and publishes its result. The call is unlinked
// before done is closed so a later request with the same key starts a
// fresh flight rather than observing a completed one.
func (g *flightGroup) run(key string, c *flightCall, ctx context.Context, compute func(ctx context.Context) (Value, error)) {
	v, err := compute(ctx)
	c.cancel() // release the detached context's resources
	g.mu.Lock()
	if g.calls[key] == c {
		delete(g.calls, key)
	}
	c.val, c.err = v, err
	g.mu.Unlock()
	close(c.done)
}

// wait blocks until the flight completes or ctx ends, whichever is
// first. A completed result is preferred when both are ready.
func (g *flightGroup) wait(ctx context.Context, key string, c *flightCall) (Value, error) {
	select {
	case <-c.done:
		return c.val, c.err
	case <-ctx.Done():
		// Prefer a result that raced with the cancellation: the work is
		// done, the client is (marginally) still here.
		select {
		case <-c.done:
			return c.val, c.err
		default:
		}
		g.abandon(key, c)
		return Value{}, ctx.Err()
	}
}

// abandon detaches one waiter. The last waiter out cancels the compute
// context — nobody is listening — after unlinking the call so new
// requests never attach to a flight that is being torn down.
func (g *flightGroup) abandon(key string, c *flightCall) {
	g.mu.Lock()
	c.waiters--
	last := c.waiters == 0
	if last && g.calls[key] == c {
		delete(g.calls, key)
	}
	g.mu.Unlock()
	if last {
		c.cancel()
	}
}
