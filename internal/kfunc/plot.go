package kfunc

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"geostat/internal/dataset"
	"geostat/internal/geom"
	"geostat/internal/parallel"
)

// Regime classifies a dataset's behaviour at one threshold relative to the
// Monte-Carlo envelope (the reading of Figure 2 in the paper).
type Regime int

const (
	// Random: K within [L(s), U(s)] — indistinguishable from CSR.
	Random Regime = iota
	// Clustered: K above U(s) — meaningful hotspots at this scale.
	Clustered
	// Dispersed: K below L(s) — points repel at this scale.
	Dispersed
)

// String returns the regime name.
func (r Regime) String() string {
	switch r {
	case Clustered:
		return "clustered"
	case Dispersed:
		return "dispersed"
	default:
		return "random"
	}
}

// Plot is a K-function plot (Definition 3): the observed curve K(s_d) and
// the pointwise min/max envelope over L simulated CSR datasets.
type Plot struct {
	S   []float64 // thresholds s_1..s_D
	K   []float64 // observed K_P(s_d), raw ordered-pair counts
	Lo  []float64 // L(s_d) = min over simulations (Equation 4)
	Hi  []float64 // U(s_d) = max over simulations (Equation 5)
	Sim int       // number of simulations L
}

// RegimeAt classifies the dataset at threshold index d per Figure 2.
func (p *Plot) RegimeAt(d int) Regime {
	switch {
	case p.K[d] > p.Hi[d]:
		return Clustered
	case p.K[d] < p.Lo[d]:
		return Dispersed
	default:
		return Random
	}
}

// PlotOptions configures MakePlot.
type PlotOptions struct {
	// Thresholds are the s_1 < ... < s_D evaluation distances.
	Thresholds []float64
	// Simulations is L, the number of random datasets for the envelope.
	Simulations int
	// Window is the region CSR simulations draw from. A zero box means the
	// data's bounding box.
	Window geom.BBox
	// Workers parallelises the observed curve AND fans the envelope
	// simulations out across goroutines (0/1 serial, <0 GOMAXPROCS). The
	// envelopes are bit-identical for every worker count: simulation l
	// draws from an RNG seeded deterministically from (seed, l).
	Workers int
	// Ctx optionally bounds the computation: the observed curve and the
	// envelope fan-out check it between chunks, and the plot constructors
	// return ctx.Err() (with a nil plot) when it fires. Nil means no
	// cancellation.
	Ctx context.Context
}

// context returns the effective context of the computation.
func (o *PlotOptions) context() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// newPlot allocates a Plot holding the observed counts with empty
// envelopes.
func newPlot(thresholds []float64, obs []int, sims int) *Plot {
	d := len(thresholds)
	p := &Plot{
		S:   append([]float64(nil), thresholds...),
		K:   make([]float64, d),
		Lo:  make([]float64, d),
		Hi:  make([]float64, d),
		Sim: sims,
	}
	for i, c := range obs {
		p.K[i] = float64(c)
		p.Lo[i] = math.Inf(1)
		p.Hi[i] = math.Inf(-1)
	}
	return p
}

// mergeEnvelope folds one simulation's counts into the pointwise min/max
// envelope. Min/max are order-insensitive, so concurrent merges (under the
// caller's lock) stay bit-identical for every worker count.
func (p *Plot) mergeEnvelope(counts []int) {
	for i, c := range counts {
		v := float64(c)
		p.Lo[i] = math.Min(p.Lo[i], v)
		p.Hi[i] = math.Max(p.Hi[i], v)
	}
}

// innerWorkers decides the parallelism of one simulation's curve: when the
// simulation fan-out itself is parallel, each simulation runs serially
// (the fan-out already saturates the cores); a serial fan-out passes the
// full worker budget down.
func innerWorkers(workers, sims int) int {
	if sims > 1 && parallel.Workers(workers) > 1 {
		return 1
	}
	return workers
}

// MakePlotWithNull computes a K-function plot whose envelope comes from a
// caller-supplied null model: simulate is called opt.Simulations times and
// must return a dataset of comparable size. This generalises Definition 3
// beyond CSR — e.g. pass a SampleFromIntensity closure for the
// inhomogeneous null ("same first-order intensity, no interaction"), or a
// random-labelling null for marked patterns.
//
// simulate is invoked SERIALLY (it may close over shared state such as a
// rand.Rand); only each simulated dataset's curve uses opt.Workers. For a
// fully parallel envelope use MakePlotSeeded with an rng-taking simulator.
func MakePlotWithNull(pts []geom.Point, opt PlotOptions, simulate func() []geom.Point) (*Plot, error) {
	if opt.Simulations < 1 {
		return nil, fmt.Errorf("kfunc: need at least 1 simulation, got %d", opt.Simulations)
	}
	if err := checkThresholds(opt.Thresholds); err != nil {
		return nil, err
	}
	ctx := opt.context()
	obs, err := CurveCtx(ctx, pts, opt.Thresholds, opt.Workers)
	if err != nil {
		return nil, err
	}
	p := newPlot(opt.Thresholds, obs, opt.Simulations)
	for l := 0; l < opt.Simulations; l++ {
		counts, err := CurveCtx(ctx, simulate(), opt.Thresholds, opt.Workers)
		if err != nil {
			return nil, err
		}
		p.mergeEnvelope(counts)
	}
	return p, nil
}

// MakePlotSeeded computes a K-function plot whose envelope simulations fan
// out across opt.Workers goroutines. simulate(rng, l) must generate the
// l-th null dataset from rng alone (it is called concurrently); rng is
// seeded deterministically from (seed, l), so the envelopes are
// bit-identical for every worker count.
func MakePlotSeeded(pts []geom.Point, opt PlotOptions, seed int64, simulate func(rng *rand.Rand, l int) []geom.Point) (*Plot, error) {
	if opt.Simulations < 1 {
		return nil, fmt.Errorf("kfunc: need at least 1 simulation, got %d", opt.Simulations)
	}
	if err := checkThresholds(opt.Thresholds); err != nil {
		return nil, err
	}
	ctx := opt.context()
	obs, err := CurveCtx(ctx, pts, opt.Thresholds, opt.Workers)
	if err != nil {
		return nil, err
	}
	p := newPlot(opt.Thresholds, obs, opt.Simulations)
	inner := innerWorkers(opt.Workers, opt.Simulations)
	var mu sync.Mutex
	var firstErr error
	mcErr := parallel.MonteCarloCtx(ctx, opt.Simulations, opt.Workers, seed, func(rng *rand.Rand, l int) {
		counts, err := Curve(simulate(rng, l), opt.Thresholds, inner)
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		p.mergeEnvelope(counts)
	})
	if mcErr != nil {
		return nil, mcErr
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return p, nil
}

// MakePlot computes a K-function plot for pts: the observed curve plus
// min/max envelopes over opt.Simulations CSR datasets of the same size
// (Definition 3). rng seeds the simulations; pass a seeded source for
// reproducibility. Simulations fan out across opt.Workers with
// bit-identical results for every worker count.
func MakePlot(pts []geom.Point, opt PlotOptions, rng *rand.Rand) (*Plot, error) {
	window := opt.Window
	if window.IsEmpty() || window.Area() == 0 {
		window = geom.NewBBox(pts)
		if window.IsEmpty() || window.Area() == 0 {
			return nil, fmt.Errorf("kfunc: degenerate window; provide PlotOptions.Window")
		}
	}
	n := len(pts)
	return MakePlotSeeded(pts, opt, rng.Int63(), func(rng *rand.Rand, _ int) []geom.Point {
		return dataset.UniformCSR(rng, n, window).Points()
	})
}
