package kfunc

import (
	"fmt"
	"math"
	"math/rand"

	"geostat/internal/dataset"
	"geostat/internal/geom"
)

// Regime classifies a dataset's behaviour at one threshold relative to the
// Monte-Carlo envelope (the reading of Figure 2 in the paper).
type Regime int

const (
	// Random: K within [L(s), U(s)] — indistinguishable from CSR.
	Random Regime = iota
	// Clustered: K above U(s) — meaningful hotspots at this scale.
	Clustered
	// Dispersed: K below L(s) — points repel at this scale.
	Dispersed
)

// String returns the regime name.
func (r Regime) String() string {
	switch r {
	case Clustered:
		return "clustered"
	case Dispersed:
		return "dispersed"
	default:
		return "random"
	}
}

// Plot is a K-function plot (Definition 3): the observed curve K(s_d) and
// the pointwise min/max envelope over L simulated CSR datasets.
type Plot struct {
	S   []float64 // thresholds s_1..s_D
	K   []float64 // observed K_P(s_d), raw ordered-pair counts
	Lo  []float64 // L(s_d) = min over simulations (Equation 4)
	Hi  []float64 // U(s_d) = max over simulations (Equation 5)
	Sim int       // number of simulations L
}

// RegimeAt classifies the dataset at threshold index d per Figure 2.
func (p *Plot) RegimeAt(d int) Regime {
	switch {
	case p.K[d] > p.Hi[d]:
		return Clustered
	case p.K[d] < p.Lo[d]:
		return Dispersed
	default:
		return Random
	}
}

// PlotOptions configures MakePlot.
type PlotOptions struct {
	// Thresholds are the s_1 < ... < s_D evaluation distances.
	Thresholds []float64
	// Simulations is L, the number of random datasets for the envelope.
	Simulations int
	// Window is the region CSR simulations draw from. A zero box means the
	// data's bounding box.
	Window geom.BBox
	// Workers parallelises both the observed curve and each simulation.
	Workers int
}

// MakePlotWithNull computes a K-function plot whose envelope comes from a
// caller-supplied null model: simulate is called opt.Simulations times and
// must return a dataset of comparable size. This generalises Definition 3
// beyond CSR — e.g. pass a SampleFromIntensity closure for the
// inhomogeneous null ("same first-order intensity, no interaction"), or a
// random-labelling null for marked patterns.
func MakePlotWithNull(pts []geom.Point, opt PlotOptions, simulate func() []geom.Point) (*Plot, error) {
	if opt.Simulations < 1 {
		return nil, fmt.Errorf("kfunc: need at least 1 simulation, got %d", opt.Simulations)
	}
	if err := checkThresholds(opt.Thresholds); err != nil {
		return nil, err
	}
	d := len(opt.Thresholds)
	p := &Plot{
		S:   append([]float64(nil), opt.Thresholds...),
		K:   make([]float64, d),
		Lo:  make([]float64, d),
		Hi:  make([]float64, d),
		Sim: opt.Simulations,
	}
	obs, err := Curve(pts, opt.Thresholds, opt.Workers)
	if err != nil {
		return nil, err
	}
	for i, c := range obs {
		p.K[i] = float64(c)
		p.Lo[i] = math.Inf(1)
		p.Hi[i] = math.Inf(-1)
	}
	for l := 0; l < opt.Simulations; l++ {
		counts, err := Curve(simulate(), opt.Thresholds, opt.Workers)
		if err != nil {
			return nil, err
		}
		for i, c := range counts {
			v := float64(c)
			p.Lo[i] = math.Min(p.Lo[i], v)
			p.Hi[i] = math.Max(p.Hi[i], v)
		}
	}
	return p, nil
}

// MakePlot computes a K-function plot for pts: the observed curve plus
// min/max envelopes over opt.Simulations CSR datasets of the same size
// (Definition 3). rng drives the simulations; pass a seeded source for
// reproducibility.
func MakePlot(pts []geom.Point, opt PlotOptions, rng *rand.Rand) (*Plot, error) {
	window := opt.Window
	if window.IsEmpty() || window.Area() == 0 {
		window = geom.NewBBox(pts)
		if window.IsEmpty() || window.Area() == 0 {
			return nil, fmt.Errorf("kfunc: degenerate window; provide PlotOptions.Window")
		}
	}
	n := len(pts)
	return MakePlotWithNull(pts, opt, func() []geom.Point {
		return dataset.UniformCSR(rng, n, window).Points
	})
}
