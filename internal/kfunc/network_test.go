package kfunc

import (
	"math/rand"
	"testing"

	"geostat/internal/geom"
	"geostat/internal/network"
)

func testNet() *network.Graph {
	return network.GridNetwork(8, 8, 10, geom.Point{})
}

func TestNetworkNaiveHandValues(t *testing.T) {
	// Straight-line network with events at offsets 0, 3, 10 on a 2-edge line.
	b := network.NewBuilder()
	n0 := b.AddNode(geom.Point{X: 0, Y: 0})
	n1 := b.AddNode(geom.Point{X: 5, Y: 0})
	n2 := b.AddNode(geom.Point{X: 10, Y: 0})
	b.AddEdge(n0, n1)
	b.AddEdge(n1, n2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	events := []network.Position{
		{Edge: 0, Offset: 0},
		{Edge: 0, Offset: 3},
		{Edge: 1, Offset: 5}, // x = 10
	}
	if got := NetworkNaive(g, events, 2); got != 0 {
		t.Errorf("K(2) = %d", got)
	}
	if got := NetworkNaive(g, events, 3); got != 2 {
		t.Errorf("K(3) = %d, want 2", got)
	}
	if got := NetworkNaive(g, events, 7); got != 4 {
		t.Errorf("K(7) = %d, want 4", got)
	}
	if got := NetworkNaive(g, events, 10); got != 6 {
		t.Errorf("K(10) = %d, want 6", got)
	}
}

func TestNetworkCurveMatchesNaive(t *testing.T) {
	g := testNet()
	rng := rand.New(rand.NewSource(1))
	events := network.RandomPositionsRand(rng, g, 150)
	thresholds := []float64{2, 5, 10, 20, 40}
	curve, err := NetworkCurve(g, events, thresholds, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range thresholds {
		want := NetworkNaive(g, events, s)
		if curve[i] != want {
			t.Errorf("s=%v: curve %d, naive %d", s, curve[i], want)
		}
	}
	// Parallel agrees.
	par, err := NetworkCurve(g, events, thresholds, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range thresholds {
		if par[i] != curve[i] {
			t.Errorf("parallel network curve differs at %d: %d vs %d", i, par[i], curve[i])
		}
	}
}

func TestNetworkCurveEdgeCases(t *testing.T) {
	g := testNet()
	out, err := NetworkCurve(g, nil, []float64{5}, 0)
	if err != nil || out[0] != 0 {
		t.Errorf("empty events: %v, %v", out, err)
	}
	if _, err := NetworkCurve(g, nil, nil, 0); err == nil {
		t.Error("nil thresholds accepted")
	}
	// Duplicate events at the same position count each other at s=0.
	events := []network.Position{{Edge: 0, Offset: 2}, {Edge: 0, Offset: 2}}
	out, err = NetworkCurve(g, events, []float64{0.0001}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 {
		t.Errorf("duplicate events K = %d, want 2", out[0])
	}
}

// Network-clustered events must be flagged Clustered; uniform-on-network
// events must mostly read Random.
func TestNetworkPlotRegimes(t *testing.T) {
	g := testNet()
	rng := rand.New(rand.NewSource(2))
	thresholds := []float64{3, 6, 12, 24}

	clustered := network.ClusteredPositionsRand(rng, g, 200, 3, 4)
	p, err := NetworkPlot(g, clustered, thresholds, 19, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	anyClustered := false
	for d := range thresholds {
		if p.RegimeAt(d) == Clustered {
			anyClustered = true
		}
	}
	if !anyClustered {
		t.Error("network-clustered events never classified Clustered")
	}

	uniform := network.RandomPositionsRand(rng, g, 200)
	p, err = NetworkPlot(g, uniform, thresholds, 19, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	randomCount := 0
	for d := range thresholds {
		if p.RegimeAt(d) == Random {
			randomCount++
		}
	}
	if randomCount < len(thresholds)-1 {
		t.Errorf("uniform events Random at only %d/%d thresholds", randomCount, len(thresholds))
	}

	if _, err := NetworkPlot(g, uniform, thresholds, 0, 0, rng); err == nil {
		t.Error("0 simulations accepted")
	}
}

// Figure 3's overestimation claim, in K-function form: with events on two
// parallel roads that are planar-close but network-far, the planar
// K-function at small s sees cross-road pairs that the network K-function
// must not.
func TestPlanarOverestimatesNetworkK(t *testing.T) {
	// Two parallel roads 1 apart, connected only at the far ends (x=0).
	b := network.NewBuilder()
	a0 := b.AddNode(geom.Point{X: 0, Y: 0})
	a1 := b.AddNode(geom.Point{X: 100, Y: 0})
	c0 := b.AddNode(geom.Point{X: 0, Y: 1})
	c1 := b.AddNode(geom.Point{X: 100, Y: 1})
	b.AddEdge(a0, a1) // edge 0: bottom road
	b.AddEdge(c0, c1) // edge 1: top road
	b.AddEdge(a0, c0) // edge 2: the only connection
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var events []network.Position
	var planar []geom.Point
	for i := 0; i < 20; i++ {
		off := 80 + float64(i) // far end: x in [80, 99]
		events = append(events, network.Position{Edge: 0, Offset: off})
		events = append(events, network.Position{Edge: 1, Offset: off})
		planar = append(planar, geom.Point{X: off, Y: 0}, geom.Point{X: off, Y: 1})
	}
	const s = 2.0
	planarK := Naive(planar, s)
	netK := NetworkNaive(g, events, s)
	if planarK <= netK {
		t.Errorf("planar K=%d should exceed network K=%d", planarK, netK)
	}
	// Each event has its cross-road twin (dist 1) and same-road neighbours
	// (dist 1, 2) planar; network only sees same-road neighbours.
	if netK == 0 {
		t.Error("network K should still count same-road neighbours")
	}
}
