package kfunc

import (
	"fmt"
	"math"

	"geostat/internal/geom"
	"geostat/internal/index/kdtree"
	"geostat/internal/stat"
)

// Classical closed-form CSR tests — the quick screens domain experts run
// before the full Monte-Carlo K-function plot (Definition 3). Both agree
// with the K-plot's verdict on clustered/random/dispersed data and cost
// O(n) / O(n log n) instead of L·O(K-curve).

// QuadratResult is a chi-square quadrat test of CSR.
type QuadratResult struct {
	ChiSquare float64 // Σ (observed − expected)² / expected
	DF        int     // quadrats − 1
	// P is the two-sided p-value: clustering inflates the statistic
	// (upper tail) while regular/dispersed patterns deflate it (lower
	// tail), so both departures count as evidence against CSR.
	P        float64
	VMR      float64 // variance-to-mean ratio of quadrat counts: >1 clustered, <1 dispersed
	Quadrats int
}

// Regime classifies the test at the given significance level.
func (q *QuadratResult) Regime(alpha float64) Regime {
	if q.P >= alpha {
		return Random
	}
	if q.VMR > 1 {
		return Clustered
	}
	return Dispersed
}

// QuadratTest divides window into nx×ny quadrats, counts points per
// quadrat, and tests the counts against the CSR expectation with a
// chi-square test.
func QuadratTest(pts []geom.Point, window geom.BBox, nx, ny int) (*QuadratResult, error) {
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("kfunc: quadrat grid must be at least 1x1, got %dx%d", nx, ny)
	}
	n := len(pts)
	q := nx * ny
	if n < 2*q {
		return nil, fmt.Errorf("kfunc: %d points too few for %d quadrats (want ≥ %d)", n, q, 2*q)
	}
	if window.IsEmpty() || window.Area() == 0 {
		return nil, fmt.Errorf("kfunc: degenerate window")
	}
	grid := geom.NewPixelGrid(window, nx, ny)
	counts := make([]float64, q)
	for _, p := range pts {
		ix, iy, _ := grid.Locate(p)
		counts[grid.Index(ix, iy)]++
	}
	expected := float64(n) / float64(q)
	chi2 := 0.0
	for _, c := range counts {
		d := c - expected
		chi2 += d * d / expected
	}
	mean, std := stat.MeanStd(counts)
	upper := stat.ChiSquareSurvival(q-1, chi2)
	p := 2 * math.Min(upper, 1-upper)
	if p > 1 {
		p = 1
	}
	res := &QuadratResult{
		ChiSquare: chi2,
		DF:        q - 1,
		P:         p,
		VMR:       std * std / mean,
		Quadrats:  q,
	}
	return res, nil
}

// ClarkEvansResult is the Clark-Evans nearest-neighbour test of CSR.
type ClarkEvansResult struct {
	R float64 // observed/expected mean NN distance: <1 clustered, >1 dispersed
	Z float64 // normal test statistic
	P float64 // two-sided p-value
}

// Regime classifies the test at the given significance level.
func (c *ClarkEvansResult) Regime(alpha float64) Regime {
	if c.P >= alpha {
		return Random
	}
	if c.R < 1 {
		return Clustered
	}
	return Dispersed
}

// ClarkEvans computes the Clark-Evans aggregation index: the ratio of the
// observed mean nearest-neighbour distance to its CSR expectation
// 1/(2·sqrt(λ)), with the classical normal test
// z = (r̄_obs − r̄_exp) / (0.26136 / sqrt(n·λ)).
// No edge correction is applied (fine for windows much larger than the
// mean NN distance; the K-plot is the edge-aware alternative).
func ClarkEvans(pts []geom.Point, window geom.BBox) (*ClarkEvansResult, error) {
	n := len(pts)
	if n < 3 {
		return nil, fmt.Errorf("kfunc: Clark-Evans needs at least 3 points, got %d", n)
	}
	if window.IsEmpty() || window.Area() == 0 {
		return nil, fmt.Errorf("kfunc: degenerate window")
	}
	tree := kdtree.New(pts)
	sum := 0.0
	var scratch []int
	for _, p := range pts {
		idx, d2 := tree.KNearest(p, 2, scratch) // self + nearest other
		scratch = idx
		sum += math.Sqrt(d2[len(d2)-1])
	}
	rObs := sum / float64(n)
	lambda := float64(n) / window.Area()
	rExp := 1 / (2 * math.Sqrt(lambda))
	se := 0.26136 / math.Sqrt(float64(n)*lambda)
	z := (rObs - rExp) / se
	return &ClarkEvansResult{
		R: rObs / rExp,
		Z: z,
		P: 2 * stat.NormalSurvival(math.Abs(z)),
	}, nil
}

// LTransform converts the plot's raw ordered-pair counts into centred
// Besag L curves: L̂(s) − s for the observed curve and both envelopes,
// using the classical estimator K̂ = |A|·count/(n(n−1)). Under CSR the
// centred curve hovers around 0, making departures readable at every
// scale (the raw K grows like πs² and hides small-s structure).
func (p *Plot) LTransform(n int, area float64) (l, lo, hi []float64) {
	l = make([]float64, len(p.S))
	lo = make([]float64, len(p.S))
	hi = make([]float64, len(p.S))
	for i, s := range p.S {
		l[i] = BesagL(Estimate(int(p.K[i]), n, area)) - s
		lo[i] = BesagL(Estimate(int(p.Lo[i]), n, area)) - s
		hi[i] = BesagL(Estimate(int(p.Hi[i]), n, area)) - s
	}
	return l, lo, hi
}
