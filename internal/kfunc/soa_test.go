package kfunc

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"geostat/internal/geom"
)

// borderReference recomputes BorderCorrected the pre-columnar way: one
// per-point pass with no chunk-level classification, neighbours counted by
// brute force (boundary inclusive, matching gridindex.RangeCount).
func borderReference(pts []geom.Point, s float64, window geom.BBox) (float64, int, bool) {
	eligible, total := 0, 0
	s2 := s * s
	for _, p := range pts {
		if p.X-window.MinX < s || window.MaxX-p.X < s ||
			p.Y-window.MinY < s || window.MaxY-p.Y < s {
			continue
		}
		eligible++
		for _, q := range pts {
			if q != p && p.Dist2(q) <= s2 {
				total++
			}
		}
	}
	if eligible == 0 {
		return 0, 0, false
	}
	lambda := float64(len(pts)) / window.Area()
	return float64(total) / (float64(eligible) * lambda), eligible, true
}

func TestBorderCorrectedChunkClassification(t *testing.T) {
	// Enough points for several chunks, sorted by distance to the window
	// boundary so the chunk-wise classification exercises all three cases:
	// whole chunks skipped (all points near the border), whole chunks
	// accepted without per-point tests (allIn), and mixed chunks.
	window := geom.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	r := rand.New(rand.NewSource(7))
	pts := make([]geom.Point, 9000)
	for i := range pts {
		pts[i] = geom.Point{X: r.Float64() * 100, Y: r.Float64() * 100}
	}
	borderDist := func(p geom.Point) float64 {
		return math.Min(math.Min(p.X-window.MinX, window.MaxX-p.X),
			math.Min(p.Y-window.MinY, window.MaxY-p.Y))
	}
	sort.Slice(pts, func(i, j int) bool { return borderDist(pts[i]) < borderDist(pts[j]) })

	for _, s := range []float64{2, 5, 12} {
		gotK, gotN, gotOK := BorderCorrected(pts, s, window)
		wantK, wantN, wantOK := borderReference(pts, s, window)
		if gotOK != wantOK || gotN != wantN {
			t.Fatalf("s=%v: eligible = %d/%v, want %d/%v", s, gotN, gotOK, wantN, wantOK)
		}
		if math.Abs(gotK-wantK) > 1e-9*(1+wantK) {
			t.Errorf("s=%v: kHat = %v, want %v", s, gotK, wantK)
		}
	}

	// Degenerate: s larger than half the window leaves no eligible source.
	if _, n, ok := BorderCorrected(pts, 51, window); ok || n != 0 {
		t.Errorf("s=51: eligible = %d, ok = %v, want none", n, ok)
	}
}
