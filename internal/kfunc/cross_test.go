package kfunc

import (
	"math"
	"math/rand"
	"testing"

	"geostat/internal/dataset"
	"geostat/internal/geom"
)

func TestCrossCountHandValues(t *testing.T) {
	a := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}}
	b := []geom.Point{{X: 1, Y: 0}, {X: 2, Y: 0}, {X: 11, Y: 0}}
	if got := CrossCount(a, b, 0.5); got != 0 {
		t.Errorf("K12(0.5) = %d", got)
	}
	if got := CrossCount(a, b, 1); got != 2 { // (a0,b0) and (a1,b2)
		t.Errorf("K12(1) = %d, want 2", got)
	}
	if got := CrossCount(a, b, 2); got != 3 {
		t.Errorf("K12(2) = %d, want 3", got)
	}
	if got := CrossCount(a, b, 100); got != 6 {
		t.Errorf("K12(100) = %d, want 6", got)
	}
	if CrossCount(nil, b, 5) != 0 || CrossCount(a, nil, 5) != 0 {
		t.Error("empty side should count 0")
	}
}

func TestCrossCurveMatchesCounts(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := dataset.UniformCSR(r, 300, box).Points()
	b := dataset.UniformCSR(r, 200, box).Points()
	thresholds := []float64{1, 3, 7, 15}
	curve, err := CrossCurve(a, b, thresholds)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range thresholds {
		if want := CrossCount(a, b, s); curve[i] != want {
			t.Errorf("s=%v: %d vs %d", s, curve[i], want)
		}
	}
	if _, err := CrossCurve(a, b, nil); err == nil {
		t.Error("nil thresholds accepted")
	}
	// Symmetry: K12 count equals K21 count (pairs are pairs).
	rev, _ := CrossCurve(b, a, thresholds)
	for i := range thresholds {
		if rev[i] != curve[i] {
			t.Errorf("asymmetric cross count at %d: %d vs %d", i, rev[i], curve[i])
		}
	}
}

// Attraction: type-a events placed around type-b events exceed the
// random-labelling envelope; independently scattered types stay inside.
func TestCrossPlotDetectsAttraction(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	// b: 30 "bars"; a: "crimes" jittered around bars.
	bars := dataset.UniformCSR(r, 30, box).Points()
	var crimes []geom.Point
	for len(crimes) < 400 {
		c := bars[r.Intn(len(bars))]
		p := geom.Point{X: c.X + r.NormFloat64()*2, Y: c.Y + r.NormFloat64()*2}
		if box.Contains(p) {
			crimes = append(crimes, p)
		}
	}
	thresholds := []float64{2, 4, 8}
	plot, err := CrossPlot(crimes, bars, thresholds, 19, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	if plot.RegimeAt(0) != Clustered {
		t.Errorf("attracted types regime = %v", plot.RegimeAt(0))
	}

	// Independent types: mostly random.
	indepA := dataset.UniformCSR(r, 400, box).Points()
	indepB := dataset.UniformCSR(r, 30, box).Points()
	plot, err = CrossPlot(indepA, indepB, thresholds, 19, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	randomCount := 0
	for i := range thresholds {
		if plot.RegimeAt(i) == Random {
			randomCount++
		}
	}
	if randomCount < 2 {
		t.Errorf("independent types random at only %d/3 thresholds", randomCount)
	}
}

func TestCrossPlotValidation(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := dataset.UniformCSR(r, 10, box).Points()
	if _, err := CrossPlot(a, a, []float64{1}, 0, 1, r); err == nil {
		t.Error("0 sims accepted")
	}
	if _, err := CrossPlot(nil, a, []float64{1}, 5, 1, r); err == nil {
		t.Error("empty type accepted")
	}
}

// Knox: a two-wave outbreak has space-time interaction; shuffled times on
// the same locations do not.
func TestKnoxDetectsInteraction(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	d := dataset.SpatioTemporalOutbreak(r, 800, box, 0, 100, []dataset.Wave{
		{Center: geom.Point{X: 25, Y: 25}, Sigma: 5, TimeMean: 20, TimeSigma: 6, Weight: 1},
		{Center: geom.Point{X: 75, Y: 75}, Sigma: 5, TimeMean: 80, TimeSigma: 6, Weight: 1},
	}, 0.2)
	res, err := Knox(d.Points(), d.Times(), 5, 10, 99, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 0.05 || res.Z < 2 {
		t.Errorf("outbreak Knox: z=%v p=%v", res.Z, res.P)
	}
	if float64(res.Statistic) <= res.PermMean {
		t.Errorf("observed %d not above permutation mean %v", res.Statistic, res.PermMean)
	}

	// Destroy the interaction by shuffling times.
	shuffled := append([]float64(nil), d.Times()...)
	r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	res, err = Knox(d.Points(), shuffled, 5, 10, 99, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.05 && math.Abs(res.Z) > 3 {
		t.Errorf("shuffled times still significant: z=%v p=%v", res.Z, res.P)
	}
}

func TestKnoxValidation(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	pts := []geom.Point{{X: 1, Y: 1}, {X: 2, Y: 2}, {X: 3, Y: 3}}
	times := []float64{1, 2, 3}
	if _, err := Knox(pts, times[:2], 1, 1, 9, 1, r); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Knox(pts[:2], times[:2], 1, 1, 9, 1, r); err == nil {
		t.Error("2 events accepted")
	}
	if _, err := Knox(pts, times, 1, 1, 0, 1, r); err == nil {
		t.Error("0 perms accepted")
	}
	if _, err := Knox(pts, times, 1, 1, 9, 1, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if res, err := Knox(pts, times, 5, 5, 9, 1, r); err != nil || res.Statistic != 3 {
		t.Errorf("tiny Knox: %+v, %v", res, err)
	}
}
