package kfunc

import (
	"math"
	"math/rand"
	"testing"

	"geostat/internal/dataset"
	"geostat/internal/geom"
)

func TestQuadratTestRegimes(t *testing.T) {
	const alpha = 0.01
	cl, err := QuadratTest(clustered(30, 1000), box, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Regime(alpha) != Clustered {
		t.Errorf("clustered data: VMR=%v p=%v regime=%v", cl.VMR, cl.P, cl.Regime(alpha))
	}
	if cl.VMR <= 1 {
		t.Errorf("clustered VMR = %v, want > 1", cl.VMR)
	}

	// CSR should usually read random; check over several seeds.
	randomOK := 0
	for seed := int64(31); seed < 41; seed++ {
		r, err := QuadratTest(csr(seed, 1000), box, 5, 5)
		if err != nil {
			t.Fatal(err)
		}
		if r.Regime(alpha) == Random {
			randomOK++
		}
	}
	if randomOK < 8 {
		t.Errorf("CSR read random only %d/10 times", randomOK)
	}

	disp := dataset.Dispersed(rand.New(rand.NewSource(42)), 1000, box, 2.5)
	dr, err := QuadratTest(disp.Points(), box, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if dr.VMR >= 1 {
		t.Errorf("dispersed VMR = %v, want < 1", dr.VMR)
	}
	if dr.Regime(alpha) != Dispersed {
		t.Errorf("dispersed regime = %v (p=%v)", dr.Regime(alpha), dr.P)
	}
}

func TestQuadratTestValidation(t *testing.T) {
	pts := csr(1, 100)
	if _, err := QuadratTest(pts, box, 0, 5); err == nil {
		t.Error("0 columns accepted")
	}
	if _, err := QuadratTest(pts, box, 20, 20); err == nil {
		t.Error("too many quadrats accepted")
	}
	if _, err := QuadratTest(pts, geom.EmptyBBox(), 2, 2); err == nil {
		t.Error("empty window accepted")
	}
	if r, err := QuadratTest(pts, box, 4, 4); err != nil || r.DF != 15 || r.Quadrats != 16 {
		t.Errorf("shape: %+v, %v", r, err)
	}
}

func TestClarkEvansRegimes(t *testing.T) {
	const alpha = 0.01
	ce, err := ClarkEvans(clustered(50, 1000), box)
	if err != nil {
		t.Fatal(err)
	}
	if ce.R >= 1 || ce.Regime(alpha) != Clustered {
		t.Errorf("clustered: R=%v z=%v regime=%v", ce.R, ce.Z, ce.Regime(alpha))
	}

	disp := dataset.Dispersed(rand.New(rand.NewSource(51)), 800, box, 3)
	ce, err = ClarkEvans(disp.Points(), box)
	if err != nil {
		t.Fatal(err)
	}
	if ce.R <= 1 || ce.Regime(alpha) != Dispersed {
		t.Errorf("dispersed: R=%v regime=%v", ce.R, ce.Regime(alpha))
	}

	// CSR: R near 1 (border bias pushes R slightly up without correction).
	ce, err = ClarkEvans(csr(52, 3000), box)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ce.R-1) > 0.08 {
		t.Errorf("CSR R = %v, want ≈ 1", ce.R)
	}
}

func TestClarkEvansValidation(t *testing.T) {
	if _, err := ClarkEvans(csr(1, 2), box); err == nil {
		t.Error("2 points accepted")
	}
	if _, err := ClarkEvans(csr(1, 10), geom.EmptyBBox()); err == nil {
		t.Error("empty window accepted")
	}
}

// The closed-form tests and the Monte-Carlo K-plot must agree on clearly
// clustered data.
func TestCSRTestsAgreeWithKPlot(t *testing.T) {
	pts := clustered(53, 800)
	rng := rand.New(rand.NewSource(53))
	plot, err := MakePlot(pts, PlotOptions{
		Thresholds:  []float64{3, 6},
		Simulations: 19,
		Window:      box,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	q, err := QuadratTest(pts, box, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	ce, err := ClarkEvans(pts, box)
	if err != nil {
		t.Fatal(err)
	}
	if plot.RegimeAt(0) != Clustered || q.Regime(0.05) != Clustered || ce.Regime(0.05) != Clustered {
		t.Errorf("verdicts disagree: Kplot=%v quadrat=%v clarkEvans=%v",
			plot.RegimeAt(0), q.Regime(0.05), ce.Regime(0.05))
	}
}

func TestLTransform(t *testing.T) {
	// CSR: centred L stays near 0 and inside the envelope transform.
	pts := csr(54, 2000)
	rng := rand.New(rand.NewSource(54))
	plot, err := MakePlot(pts, PlotOptions{
		Thresholds:  []float64{2, 5, 10},
		Simulations: 19,
		Window:      box,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	l, lo, hi := plot.LTransform(len(pts), box.Area())
	for i := range l {
		if lo[i] > hi[i] {
			t.Fatalf("L envelope inverted at %d", i)
		}
		if math.Abs(l[i]) > 1 {
			t.Errorf("CSR centred L(%v) = %v, want ≈ 0", plot.S[i], l[i])
		}
	}
	// Clustered: centred L well above 0.
	plotC, err := MakePlot(clustered(55, 1000), PlotOptions{
		Thresholds:  []float64{2, 5},
		Simulations: 9,
		Window:      box,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	lc, _, _ := plotC.LTransform(1000, box.Area())
	if lc[0] < 1 {
		t.Errorf("clustered centred L = %v, want ≫ 0", lc[0])
	}
}
