package kfunc

import (
	"math"
	"math/rand"
	"testing"

	"geostat/internal/dataset"
	"geostat/internal/geom"
)

var box = geom.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}

func csr(seed int64, n int) []geom.Point {
	return dataset.UniformCSR(rand.New(rand.NewSource(seed)), n, box).Points()
}

func clustered(seed int64, n int) []geom.Point {
	r := rand.New(rand.NewSource(seed))
	return dataset.GaussianClusters(r, n, box, []dataset.Cluster{
		{Center: geom.Point{X: 30, Y: 30}, Sigma: 4, Weight: 1},
		{Center: geom.Point{X: 70, Y: 60}, Sigma: 4, Weight: 1},
	}, 0.1).Points()
}

func TestNaiveHandValues(t *testing.T) {
	// Three collinear points at x = 0, 3, 10.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 3, Y: 0}, {X: 10, Y: 0}}
	if got := Naive(pts, 2); got != 0 {
		t.Errorf("K(2) = %d, want 0", got)
	}
	if got := Naive(pts, 3); got != 2 { // (0,3) both directions; boundary inclusive
		t.Errorf("K(3) = %d, want 2", got)
	}
	if got := Naive(pts, 7); got != 4 {
		t.Errorf("K(7) = %d, want 4", got)
	}
	if got := Naive(pts, 10); got != 6 {
		t.Errorf("K(10) = %d, want 6", got)
	}
	if got := Naive(nil, 5); got != 0 {
		t.Errorf("K on empty = %d", got)
	}
}

func TestIndexedMethodsMatchNaive(t *testing.T) {
	for _, gen := range []func(int64, int) []geom.Point{csr, clustered} {
		pts := gen(1, 600)
		for _, s := range []float64{0.5, 3, 10, 40, 200} {
			want := Naive(pts, s)
			if got := GridIndexed(pts, s); got != want {
				t.Errorf("GridIndexed(s=%v) = %d, want %d", s, got, want)
			}
			if got := KDTreeIndexed(pts, s); got != want {
				t.Errorf("KDTreeIndexed(s=%v) = %d, want %d", s, got, want)
			}
		}
	}
}

func TestCurveMatchesNaiveCurve(t *testing.T) {
	pts := clustered(2, 400)
	thresholds := []float64{1, 2, 5, 10, 20, 50}
	fast, err := Curve(pts, thresholds, 0)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NaiveCurve(pts, thresholds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range thresholds {
		if fast[i] != naive[i] {
			t.Errorf("s=%v: Curve %d vs NaiveCurve %d", thresholds[i], fast[i], naive[i])
		}
	}
	// Parallel agrees with serial.
	par, err := Curve(pts, thresholds, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range thresholds {
		if par[i] != fast[i] {
			t.Errorf("parallel curve differs at %d", i)
		}
	}
}

func TestCurveMonotone(t *testing.T) {
	pts := csr(3, 500)
	thresholds := []float64{1, 2, 4, 8, 16, 32, 64, 128, 150}
	counts, err := Curve(pts, thresholds, 0)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1
	for i, c := range counts {
		if c < prev {
			t.Fatalf("K not monotone at %d: %d < %d", i, c, prev)
		}
		prev = c
	}
	// At s >= diameter every ordered pair counts.
	n := len(pts)
	if counts[len(counts)-1] != n*(n-1) {
		t.Errorf("K(diam) = %d, want %d", counts[len(counts)-1], n*(n-1))
	}
}

func TestThresholdValidation(t *testing.T) {
	pts := csr(4, 10)
	cases := [][]float64{
		{},           // empty
		{5, 5},       // not strictly increasing
		{5, 3},       // decreasing
		{-1, 2},      // negative
		{math.NaN()}, // NaN
	}
	for i, ts := range cases {
		if _, err := Curve(pts, ts, 0); err == nil {
			t.Errorf("case %d: thresholds %v accepted", i, ts)
		}
		if _, err := NaiveCurve(pts, ts); err == nil {
			t.Errorf("case %d: NaiveCurve accepted %v", i, ts)
		}
	}
}

func TestEstimateAndBesagL(t *testing.T) {
	// Under CSR, K̂(s) ≈ πs² and L(s) ≈ s.
	pts := csr(5, 2000)
	const s = 5.0
	count := GridIndexed(pts, s)
	kHat := Estimate(count, len(pts), box.Area())
	if math.Abs(kHat-math.Pi*s*s)/(math.Pi*s*s) > 0.15 {
		t.Errorf("K̂(%v) = %v, want ≈ %v", s, kHat, math.Pi*s*s)
	}
	l := BesagL(kHat)
	if math.Abs(l-s) > 0.5 {
		t.Errorf("L(%v) = %v, want ≈ %v", s, l, s)
	}
	if Estimate(10, 1, 100) != 0 {
		t.Error("Estimate with n<2 should be 0")
	}
	if BesagL(-3) != 0 {
		t.Error("BesagL of negative should be 0")
	}
}

func TestBorderCorrectedLessBiased(t *testing.T) {
	pts := csr(6, 3000)
	const s = 10.0
	kHat := Estimate(GridIndexed(pts, s), len(pts), box.Area())
	corrected, eligible, ok := BorderCorrected(pts, s, box)
	if !ok {
		t.Fatal("no eligible points")
	}
	if eligible >= len(pts) {
		t.Errorf("eligible = %d, want < n", eligible)
	}
	truth := math.Pi * s * s
	if math.Abs(corrected-truth) >= math.Abs(kHat-truth) {
		t.Errorf("border correction did not reduce bias: |%v-πs²| vs |%v-πs²|", corrected, kHat)
	}
	if _, _, ok := BorderCorrected(pts, 51, box); ok {
		t.Error("s > half-window should leave no eligible points")
	}
	if _, _, ok := BorderCorrected(nil, 1, box); ok {
		t.Error("empty dataset should not be ok")
	}
}

// Figure 2's reading: clustered data exits above the envelope, CSR stays
// inside, dispersed data falls below.
func TestPlotRegimes(t *testing.T) {
	thresholds := []float64{2, 4, 6, 8, 10}
	opt := PlotOptions{Thresholds: thresholds, Simulations: 39, Window: box}
	rng := rand.New(rand.NewSource(7))

	cl, err := MakePlot(clustered(8, 500), opt, rng)
	if err != nil {
		t.Fatal(err)
	}
	clusteredSomewhere := false
	for d := range thresholds {
		if cl.RegimeAt(d) == Clustered {
			clusteredSomewhere = true
		}
	}
	if !clusteredSomewhere {
		t.Error("clustered data never classified Clustered")
	}

	rnd, err := MakePlot(csr(9, 500), opt, rng)
	if err != nil {
		t.Fatal(err)
	}
	randomCount := 0
	for d := range thresholds {
		if rnd.RegimeAt(d) == Random {
			randomCount++
		}
	}
	if randomCount < len(thresholds)-1 {
		t.Errorf("CSR data classified Random at only %d/%d thresholds", randomCount, len(thresholds))
	}

	disp := dataset.Dispersed(rand.New(rand.NewSource(10)), 500, box, 4)
	dp, err := MakePlot(disp.Points(), opt, rng)
	if err != nil {
		t.Fatal(err)
	}
	dispersedSomewhere := false
	for d := range thresholds {
		if dp.RegimeAt(d) == Dispersed {
			dispersedSomewhere = true
		}
	}
	if !dispersedSomewhere {
		t.Error("dispersed data never classified Dispersed")
	}
}

func TestPlotValidation(t *testing.T) {
	pts := csr(11, 20)
	if _, err := MakePlot(pts, PlotOptions{Thresholds: []float64{1}, Simulations: 0}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("0 simulations accepted")
	}
	if _, err := MakePlot(nil, PlotOptions{Thresholds: []float64{1}, Simulations: 1}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty dataset with no window accepted")
	}
}

func TestRegimeString(t *testing.T) {
	if Random.String() != "random" || Clustered.String() != "clustered" || Dispersed.String() != "dispersed" {
		t.Error("Regime names wrong")
	}
}

func TestAllIndexesAgree(t *testing.T) {
	for _, gen := range []func(int64, int) []geom.Point{csr, clustered} {
		pts := gen(70, 500)
		for _, s := range []float64{1, 6, 25} {
			want := Naive(pts, s)
			if got := BallTreeIndexed(pts, s); got != want {
				t.Errorf("BallTree(s=%v) = %d, want %d", s, got, want)
			}
			if got := RTreeIndexed(pts, s); got != want {
				t.Errorf("RTree(s=%v) = %d, want %d", s, got, want)
			}
		}
	}
}
