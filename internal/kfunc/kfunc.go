// Package kfunc implements Ripley's K-function (Definition 2 of the paper)
// and its plot with Monte-Carlo envelopes (Definition 3), plus the network
// (§2.3) and spatiotemporal (Equation 8) variants.
//
// Conventions. Equation 2 counts ordered pairs; this package counts
// ordered pairs with i ≠ j (excluding the n self-pairs, which add a
// constant and carry no spatial information — the spatstat convention).
// Raw counts are what Definitions 2–3 compare against envelopes; the
// normalised estimator K̂(s) = |A|·count/(n(n−1)) and Besag's L-transform
// are provided for users who want the classical statistics.
//
// Acceleration families from §2.3:
//
//   - Naive: the O(n²) double loop per threshold.
//   - Indexed: Σ_i RangeCount(p_i, s) over a grid or kd-tree index — the
//     range-query-based family.
//   - Curve: all D thresholds in ONE pass — every pair within s_max is
//     found once via a grid index, histogrammed by distance, and the
//     cumulative histogram yields every K(s_d) simultaneously. This is the
//     sharing observation of §2.4 applied to K-functions.
//   - Workers > 1 parallelises the per-point loop (the parallel family).
package kfunc

import (
	"context"
	"fmt"
	"math"
	"sort"

	"geostat/internal/dataset"
	"geostat/internal/geom"
	"geostat/internal/index/balltree"
	gridindex "geostat/internal/index/grid"
	"geostat/internal/index/kdtree"
	"geostat/internal/index/rtree"
	"geostat/internal/parallel"
)

// Naive computes K_P(s) (ordered pairs, i≠j) by the O(n²) double loop —
// the baseline whose cost §1 of the paper highlights.
func Naive(pts []geom.Point, s float64) int {
	s2 := s * s
	count := 0
	for i := range pts {
		for j := range pts {
			if i != j && pts[i].Dist2(pts[j]) <= s2 {
				count++
			}
		}
	}
	return count
}

// GridIndexed computes K_P(s) as Σ_i |R(p_i)|−1 using a uniform grid index
// (the range-query-based method of §2.3).
func GridIndexed(pts []geom.Point, s float64) int {
	idx := gridindex.New(pts, s)
	count := 0
	for _, p := range pts {
		count += idx.RangeCount(p, s) - 1 // exclude self
	}
	return count
}

// KDTreeIndexed computes K_P(s) using a kd-tree range count per point.
func KDTreeIndexed(pts []geom.Point, s float64) int {
	tree := kdtree.New(pts)
	count := 0
	for _, p := range pts {
		count += tree.RangeCount(p, s) - 1
	}
	return count
}

// BallTreeIndexed computes K_P(s) using a ball-tree range count per point.
func BallTreeIndexed(pts []geom.Point, s float64) int {
	tree := balltree.New(pts)
	count := 0
	for _, p := range pts {
		count += tree.RangeCount(p, s) - 1
	}
	return count
}

// RTreeIndexed computes K_P(s) using an STR R-tree range count per point —
// the index layout of production GIS engines.
func RTreeIndexed(pts []geom.Point, s float64) int {
	tree := rtree.New(pts)
	count := 0
	for _, p := range pts {
		count += tree.RangeCount(p, s) - 1
	}
	return count
}

// Curve computes the K-function at every threshold in thresholds
// (ascending) in a single pass: pairs within the largest threshold are
// enumerated once through a grid index and histogrammed by distance.
// Workers parallelises the per-point enumeration (0/1 serial, <0 =
// GOMAXPROCS).
func Curve(pts []geom.Point, thresholds []float64, workers int) ([]int, error) {
	//lint:allow ctxflow Curve is the sanctioned non-ctx compatibility wrapper (same contract as parallel.For); callers that have a context use CurveCtx
	return CurveCtx(context.Background(), pts, thresholds, workers)
}

// CurveCtx is Curve with cooperative cancellation: workers check ctx
// between chunks of the pair enumeration and the call returns ctx.Err()
// (with a nil slice) when it fires.
func CurveCtx(ctx context.Context, pts []geom.Point, thresholds []float64, workers int) ([]int, error) {
	if err := checkThresholds(thresholds); err != nil {
		return nil, err
	}
	d := len(thresholds)
	counts := make([]int, d)
	if len(pts) < 2 {
		return counts, nil
	}
	sMax := thresholds[d-1]
	idx := gridindex.New(pts, sMax)

	// Per-worker histogram scratch, merged after (integer sums, so the
	// merge order cannot change the result).
	hist := make([]int64, d)
	partials, err := parallel.ForScratchCtx(ctx, len(pts), workers,
		func() []int64 { return make([]int64, d) },
		func(local []int64, i int) {
			countInto(pts, idx, thresholds, i, i+1, local)
		})
	if err != nil {
		return nil, err
	}
	for _, p := range partials {
		for i, v := range p {
			hist[i] += v
		}
	}
	// Cumulative: hist[d] currently holds pairs with dist in the d-th bin
	// (between thresholds[d-1] and thresholds[d]).
	running := int64(0)
	for i := range hist {
		running += hist[i]
		counts[i] = int(running)
	}
	return counts, nil
}

// countInto histograms, for source points [lo, hi), every neighbour within
// thresholds' maximum into the first threshold bin that contains its
// distance. The candidate scan iterates the grid index's cell-ordered
// coordinate columns directly — no per-point callback — which is the
// dominant cost of the one-pass curve.
//
//lint:hotpath per-pair inner loop; callees must not allocate
func countInto(pts []geom.Point, idx *gridindex.Index, thresholds []float64, lo, hi int, hist []int64) {
	sMax := thresholds[len(thresholds)-1]
	s2 := sMax * sMax
	xs, ys, ids := idx.Columns()
	nb := len(hist)
	for i := lo; i < hi; i++ {
		p := pts[i]
		cx0, cx1, cy0, cy1 := idx.CellSpan(p, sMax)
		for cy := cy0; cy <= cy1; cy++ {
			for cx := cx0; cx <= cx1; cx++ {
				clo, chi := idx.Cell(cx, cy)
				for j := clo; j < chi; j++ {
					dx := xs[j] - p.X
					dy := ys[j] - p.Y
					d2 := dx*dx + dy*dy
					if d2 > s2 || int(ids[j]) == i {
						continue
					}
					d := math.Sqrt(d2)
					// First threshold >= d: binary search for short lists
					// would be fine, but thresholds are few, typically ≤ 64.
					bin := sort.SearchFloat64s(thresholds, d)
					if bin < nb {
						hist[bin]++
					}
				}
			}
		}
	}
}

// NaiveCurve computes the K-function at every threshold with the O(D·n²)
// approach used by off-the-shelf packages: one full double loop per
// threshold. It exists as the baseline for the C1 experiment.
func NaiveCurve(pts []geom.Point, thresholds []float64) ([]int, error) {
	if err := checkThresholds(thresholds); err != nil {
		return nil, err
	}
	out := make([]int, len(thresholds))
	for i, s := range thresholds {
		out[i] = Naive(pts, s)
	}
	return out, nil
}

// Estimate converts a raw ordered-pair count into the classical unbiased
// estimator K̂(s) = |A|·count/(n·(n−1)) for a window of the given area.
func Estimate(count, n int, area float64) float64 {
	if n < 2 {
		return 0
	}
	return area * float64(count) / (float64(n) * float64(n-1))
}

// BesagL converts K̂ to Besag's variance-stabilised L(s) = sqrt(K̂/π).
// Under CSR, L(s) ≈ s, making departures easy to read.
func BesagL(kHat float64) float64 {
	if kHat <= 0 {
		return 0
	}
	return math.Sqrt(kHat / math.Pi)
}

// BorderCorrected computes the border-corrected estimator: only points
// whose distance to the window boundary is at least s contribute as
// sources (their discs lie fully inside the window, so their counts are
// unbiased). It returns the corrected K̂(s) and the number of eligible
// source points; ok=false means no point is eligible at this s.
//
// Source eligibility is decided chunk-wise over the columnar layout: a
// chunk whose bounding box lies entirely within s of some window edge has
// no eligible sources and is skipped outright, and one whose box clears
// every edge by at least s needs no per-point boundary tests.
func BorderCorrected(pts []geom.Point, s float64, window geom.BBox) (kHat float64, eligible int, ok bool) {
	n := len(pts)
	if n < 2 {
		return 0, 0, false
	}
	idx := gridindex.New(pts, s)
	cols := dataset.MakeColumns(pts, nil)
	total := 0
	for _, ch := range cols.Chunks {
		bb := ch.BBox
		// Every point within s of one edge — no eligible sources here.
		if bb.MaxX-window.MinX < s || window.MaxX-bb.MinX < s ||
			bb.MaxY-window.MinY < s || window.MaxY-bb.MinY < s {
			continue
		}
		// Whole box clears every edge by >= s — all sources eligible.
		allIn := bb.MinX-window.MinX >= s && window.MaxX-bb.MaxX >= s &&
			bb.MinY-window.MinY >= s && window.MaxY-bb.MaxY >= s
		for i := ch.Lo; i < ch.Hi; i++ {
			p := geom.Point{X: cols.X[i], Y: cols.Y[i]}
			if !allIn && (p.X-window.MinX < s || window.MaxX-p.X < s ||
				p.Y-window.MinY < s || window.MaxY-p.Y < s) {
				continue
			}
			eligible++
			total += idx.RangeCount(p, s) - 1
		}
	}
	if eligible == 0 {
		return 0, 0, false
	}
	lambda := float64(n) / window.Area()
	// K̂ = mean neighbours per eligible source / intensity.
	return float64(total) / (float64(eligible) * lambda), eligible, true
}

func checkThresholds(ts []float64) error {
	if len(ts) == 0 {
		return fmt.Errorf("kfunc: no thresholds")
	}
	prev := math.Inf(-1)
	for i, t := range ts {
		if !(t >= 0) {
			return fmt.Errorf("kfunc: threshold %d is %g, want >= 0", i, t)
		}
		if t <= prev {
			return fmt.Errorf("kfunc: thresholds must be strictly increasing (index %d)", i)
		}
		prev = t
	}
	return nil
}
