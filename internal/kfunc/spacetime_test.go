package kfunc

import (
	"math/rand"
	"testing"

	"geostat/internal/dataset"
	"geostat/internal/geom"
)

func stData(seed int64, n int) *dataset.Dataset {
	r := rand.New(rand.NewSource(seed))
	return dataset.SpatioTemporalOutbreak(r, n, box, 0, 100, []dataset.Wave{
		{Center: geom.Point{X: 25, Y: 25}, Sigma: 5, TimeMean: 20, TimeSigma: 5, Weight: 1},
		{Center: geom.Point{X: 75, Y: 75}, Sigma: 5, TimeMean: 70, TimeSigma: 5, Weight: 1},
	}, 0.1)
}

func TestSTNaiveHandValues(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 3, Y: 0}, {X: 0, Y: 0}}
	times := []float64{0, 0, 10}
	// Pair (0,1): ds=3, dt=0. Pair (0,2): ds=0, dt=10. Pair (1,2): ds=3, dt=10.
	if got := STNaive(pts, times, 3, 0); got != 2 {
		t.Errorf("K(3,0) = %d, want 2", got)
	}
	if got := STNaive(pts, times, 0, 10); got != 2 {
		t.Errorf("K(0,10) = %d, want 2", got)
	}
	if got := STNaive(pts, times, 3, 10); got != 6 {
		t.Errorf("K(3,10) = %d, want 6", got)
	}
	if got := STNaive(pts, times, 1, 1); got != 0 {
		t.Errorf("K(1,1) = %d, want 0", got)
	}
}

func TestSTSurfaceMatchesNaive(t *testing.T) {
	d := stData(1, 300)
	sTh := []float64{2, 5, 10, 30}
	tTh := []float64{1, 5, 20, 60}
	surface, err := STSurface(d.Points(), d.Times(), sTh, tTh, 0)
	if err != nil {
		t.Fatal(err)
	}
	for a, s := range sTh {
		for b, tt := range tTh {
			want := STNaive(d.Points(), d.Times(), s, tt)
			if got := surface[a*len(tTh)+b]; got != want {
				t.Errorf("K(%v,%v) = %d, want %d", s, tt, got, want)
			}
		}
	}
	// Parallel agrees.
	par, err := STSurface(d.Points(), d.Times(), sTh, tTh, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range surface {
		if par[i] != surface[i] {
			t.Fatalf("parallel ST surface differs at %d", i)
		}
	}
}

func TestSTSurfaceValidation(t *testing.T) {
	d := stData(2, 20)
	if _, err := STSurface(d.Points(), d.Times(), nil, []float64{1}, 0); err == nil {
		t.Error("empty spatial thresholds accepted")
	}
	if _, err := STSurface(d.Points(), d.Times(), []float64{1}, []float64{2, 2}, 0); err == nil {
		t.Error("non-increasing temporal thresholds accepted")
	}
	if _, err := STSurface(d.Points(), d.Times()[:5], []float64{1}, []float64{1}, 0); err == nil {
		t.Error("mismatched times accepted")
	}
	out, err := STSurface(nil, nil, []float64{1}, []float64{1}, 0)
	if err != nil || out[0] != 0 {
		t.Errorf("empty data: %v %v", out, err)
	}
}

// Monotonicity in both arguments: K(s,t) is non-decreasing along s and t.
func TestSTSurfaceMonotone(t *testing.T) {
	d := stData(3, 400)
	sTh := []float64{1, 3, 7, 15, 31}
	tTh := []float64{2, 6, 14, 30}
	surface, err := STSurface(d.Points(), d.Times(), sTh, tTh, 0)
	if err != nil {
		t.Fatal(err)
	}
	at := func(a, b int) int { return surface[a*len(tTh)+b] }
	for a := 0; a < len(sTh); a++ {
		for b := 0; b < len(tTh); b++ {
			if a > 0 && at(a, b) < at(a-1, b) {
				t.Fatalf("not monotone in s at (%d,%d)", a, b)
			}
			if b > 0 && at(a, b) < at(a, b-1) {
				t.Fatalf("not monotone in t at (%d,%d)", a, b)
			}
		}
	}
}

// The Figure 6 reading: a two-wave outbreak (space-time interaction) shows
// K above the envelope at small (s,t); a dataset with the same spatial
// pattern but shuffled times does not (no interaction beyond spatial
// clustering... so compare against the interaction-free null directly).
func TestSTPlotDetectsInteraction(t *testing.T) {
	d := stData(4, 500)
	sTh := []float64{3, 6, 12}
	tTh := []float64{5, 10, 20}
	rng := rand.New(rand.NewSource(5))
	p, err := MakeSTPlot(d, sTh, tTh, 19, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if p.RegimeAt(0, 0) != Clustered {
		k, lo, hi := p.At(0, 0)
		t.Errorf("outbreak not clustered at smallest thresholds: K=%v env=[%v,%v]", k, lo, hi)
	}
	// Pure CSR with uniform times reads Random nearly everywhere.
	r2 := rand.New(rand.NewSource(6))
	null := dataset.UniformCSR(r2, 500, box)
	nullTimes := make([]float64, null.N())
	for i := range nullTimes {
		nullTimes[i] = r2.Float64() * 100
	}
	if err := null.SetTimes(nullTimes); err != nil {
		t.Fatal(err)
	}
	pNull, err := MakeSTPlot(null, sTh, tTh, 19, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	randomCount := 0
	for a := range sTh {
		for b := range tTh {
			if pNull.RegimeAt(a, b) == Random {
				randomCount++
			}
		}
	}
	if randomCount < len(sTh)*len(tTh)-2 {
		t.Errorf("null data Random at only %d/%d cells", randomCount, len(sTh)*len(tTh))
	}
}

func TestMakeSTPlotValidation(t *testing.T) {
	d := stData(7, 30)
	rng := rand.New(rand.NewSource(8))
	if _, err := MakeSTPlot(d, []float64{1}, []float64{1}, 0, 0, rng); err == nil {
		t.Error("0 sims accepted")
	}
	noTimes := dataset.FromPoints(d.Points())
	if _, err := MakeSTPlot(noTimes, []float64{1}, []float64{1}, 5, 0, rng); err == nil {
		t.Error("dataset without times accepted")
	}
}
