package kfunc

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"geostat/internal/network"
)

// Network K-function (§2.3 of the paper, Okabe & Yamada [74]): Equation 2
// with the Euclidean distance replaced by the shortest-path distance
// between event positions on a road network.
//
// The naive method runs one full Dijkstra per ordered pair source; the
// shared method runs ONE bounded Dijkstra per event (radius s_max) and
// histograms every co-located event distance, yielding all D thresholds
// simultaneously — the structure of the fast algorithms in [33, 81].

// NetworkNaive computes the network K-function at a single threshold by
// running an unbounded Dijkstra from every event: O(n·(E log V + n)).
func NetworkNaive(g *network.Graph, events []network.Position, s float64) int {
	dij := network.NewDijkstra(g)
	count := 0
	for i, src := range events {
		dij.FromPosition(src, math.Inf(1))
		for j, dst := range events {
			if i == j {
				continue
			}
			if dij.PositionDist(dst, src, true) <= s {
				count++
			}
		}
	}
	return count
}

// NetworkCurve computes the network K-function at every threshold
// (ascending) with one bounded Dijkstra per event. Workers shards events
// across goroutines, each with its own Dijkstra engine.
func NetworkCurve(g *network.Graph, events []network.Position, thresholds []float64, workers int) ([]int, error) {
	if err := checkThresholds(thresholds); err != nil {
		return nil, err
	}
	d := len(thresholds)
	out := make([]int, d)
	if len(events) < 2 {
		return out, nil
	}
	sMax := thresholds[d-1]

	// Group events by edge so each source only inspects edges its bounded
	// search reached.
	byEdge := make(map[int32][]int32)
	for i, ev := range events {
		byEdge[ev.Edge] = append(byEdge[ev.Edge], int32(i))
	}

	nw := normWorkers(workers)
	hist := make([]int64, d)
	var mu sync.Mutex
	var next atomic.Int64
	var wg sync.WaitGroup
	if nw > len(events) {
		nw = len(events)
	}
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dij := network.NewDijkstra(g)
			local := make([]int64, d)
			seenEdge := make(map[int32]bool)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(events) {
					break
				}
				src := events[i]
				dij.FromPosition(src, sMax)
				// Candidate edges: those incident to a reached node, plus the
				// source's own edge (reachable along itself).
				clear(seenEdge)
				consider := func(ei int32) {
					if seenEdge[ei] {
						return
					}
					seenEdge[ei] = true
					for _, j := range byEdge[ei] {
						if int(j) == i {
							continue
						}
						dist := dij.PositionDist(events[j], src, true)
						if dist <= sMax {
							bin := sort.SearchFloat64s(thresholds, dist)
							if bin < d {
								local[bin]++
							}
						}
					}
				}
				consider(src.Edge)
				for _, u := range dij.Reached() {
					g.Neighbors(u, func(_, ei int32, _ float64) { consider(ei) })
				}
			}
			mu.Lock()
			for i, v := range local {
				hist[i] += v
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	running := int64(0)
	for i := range hist {
		running += hist[i]
		out[i] = int(running)
	}
	return out, nil
}

// NetworkPlot computes a network K-function plot: the observed curve plus
// min/max envelopes over sims datasets of equal size placed uniformly at
// random on the network by length (the network CSR null model).
func NetworkPlot(g *network.Graph, events []network.Position, thresholds []float64, sims, workers int, rng *rand.Rand) (*Plot, error) {
	if sims < 1 {
		return nil, fmt.Errorf("kfunc: need at least 1 simulation, got %d", sims)
	}
	obs, err := NetworkCurve(g, events, thresholds, workers)
	if err != nil {
		return nil, err
	}
	d := len(thresholds)
	p := &Plot{
		S:   append([]float64(nil), thresholds...),
		K:   make([]float64, d),
		Lo:  make([]float64, d),
		Hi:  make([]float64, d),
		Sim: sims,
	}
	for i, c := range obs {
		p.K[i] = float64(c)
	}
	for i := range p.Lo {
		p.Lo[i] = math.Inf(1)
		p.Hi[i] = math.Inf(-1)
	}
	for l := 0; l < sims; l++ {
		sim := network.RandomPositions(rng, g, len(events))
		counts, err := NetworkCurve(g, sim, thresholds, workers)
		if err != nil {
			return nil, err
		}
		for i, c := range counts {
			v := float64(c)
			p.Lo[i] = math.Min(p.Lo[i], v)
			p.Hi[i] = math.Max(p.Hi[i], v)
		}
	}
	return p, nil
}
