package kfunc

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"geostat/internal/network"
	"geostat/internal/parallel"
)

// Network K-function (§2.3 of the paper, Okabe & Yamada [74]): Equation 2
// with the Euclidean distance replaced by the shortest-path distance
// between event positions on a road network.
//
// The naive method runs one full Dijkstra per ordered pair source; the
// shared method runs ONE bounded Dijkstra per event (radius s_max) and
// histograms every co-located event distance, yielding all D thresholds
// simultaneously — the structure of the fast algorithms in [33, 81].

// NetworkNaive computes the network K-function at a single threshold by
// running an unbounded Dijkstra from every event: O(n·(E log V + n)).
func NetworkNaive(g *network.Graph, events []network.Position, s float64) int {
	dij := network.NewDijkstra(g)
	count := 0
	for i, src := range events {
		dij.FromPosition(src, math.Inf(1))
		for j, dst := range events {
			if i == j {
				continue
			}
			if dij.PositionDist(dst, src, true) <= s {
				count++
			}
		}
	}
	return count
}

// netCurveScratch is the per-worker state of a parallel NetworkCurve: one
// Dijkstra engine, a local histogram, and the dedup set of visited edges.
type netCurveScratch struct {
	dij      *network.Dijkstra
	hist     []int64
	seenEdge map[int32]bool
}

// NetworkCurve computes the network K-function at every threshold
// (ascending) with one bounded Dijkstra per event. Workers fans events out
// across goroutines (0/1 serial, <0 GOMAXPROCS), each with its own
// Dijkstra engine; dynamic chunking rebalances the skew between events in
// dense and sparse network regions.
func NetworkCurve(g *network.Graph, events []network.Position, thresholds []float64, workers int) ([]int, error) {
	if err := checkThresholds(thresholds); err != nil {
		return nil, err
	}
	d := len(thresholds)
	out := make([]int, d)
	if len(events) < 2 {
		return out, nil
	}
	sMax := thresholds[d-1]

	// Group events by edge so each source only inspects edges its bounded
	// search reached.
	byEdge := make(map[int32][]int32)
	for i, ev := range events {
		byEdge[ev.Edge] = append(byEdge[ev.Edge], int32(i))
	}

	partials := parallel.ForScratch(len(events), workers,
		func() *netCurveScratch {
			return &netCurveScratch{
				dij:      network.NewDijkstra(g),
				hist:     make([]int64, d),
				seenEdge: make(map[int32]bool),
			}
		},
		func(s *netCurveScratch, i int) {
			src := events[i]
			s.dij.FromPosition(src, sMax)
			// Candidate edges: those incident to a reached node, plus the
			// source's own edge (reachable along itself).
			clear(s.seenEdge)
			consider := func(ei int32) {
				if s.seenEdge[ei] {
					return
				}
				s.seenEdge[ei] = true
				for _, j := range byEdge[ei] {
					if int(j) == i {
						continue
					}
					dist := s.dij.PositionDist(events[j], src, true)
					if dist <= sMax {
						bin := sort.SearchFloat64s(thresholds, dist)
						if bin < d {
							s.hist[bin]++
						}
					}
				}
			}
			consider(src.Edge)
			for _, u := range s.dij.Reached() {
				g.Neighbors(u, func(_, ei int32, _ float64) { consider(ei) })
			}
		})
	hist := make([]int64, d)
	for _, p := range partials {
		for i, v := range p.hist {
			hist[i] += v
		}
	}
	running := int64(0)
	for i := range hist {
		running += hist[i]
		out[i] = int(running)
	}
	return out, nil
}

// NetworkPlot computes a network K-function plot: the observed curve plus
// min/max envelopes over sims datasets of equal size placed uniformly at
// random on the network by length (the network CSR null model).
//
// The simulations fan out across workers with per-simulation RNGs derived
// from rng's next value, so the envelopes are bit-identical for every
// worker count.
func NetworkPlot(g *network.Graph, events []network.Position, thresholds []float64, sims, workers int, rng *rand.Rand) (*Plot, error) {
	if sims < 1 {
		return nil, fmt.Errorf("kfunc: need at least 1 simulation, got %d", sims)
	}
	obs, err := NetworkCurve(g, events, thresholds, workers)
	if err != nil {
		return nil, err
	}
	p := newPlot(thresholds, obs, sims)
	seed := rng.Int63()
	inner := innerWorkers(workers, sims)
	var mu sync.Mutex
	var firstErr error
	parallel.MonteCarlo(sims, workers, seed, func(rng *rand.Rand, l int) {
		sim := network.RandomPositionsRand(rng, g, len(events))
		counts, err := NetworkCurve(g, sim, thresholds, inner)
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		p.mergeEnvelope(counts)
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return p, nil
}
