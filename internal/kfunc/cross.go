package kfunc

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"geostat/internal/geom"
	gridindex "geostat/internal/index/grid"
	"geostat/internal/parallel"
)

// Cross-type and space-time interaction extensions of the K-function
// family: the bivariate (cross) K-function used to ask "do type-1 events
// cluster around type-2 events?" (crimes around bars, cases around
// outbreak sources), and the Knox test — the classic closed-form screen
// for space-time interaction that Equation 8's full surface generalises.

// CrossCount returns the number of (a, b) pairs with dist(a_i, b_j) <= s —
// the raw bivariate K-function numerator K_12(s).
func CrossCount(a, b []geom.Point, s float64) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	idx := gridindex.New(b, s)
	count := 0
	for _, p := range a {
		count += idx.RangeCount(p, s)
	}
	return count
}

// CrossCurve evaluates the cross count at every threshold (ascending) in
// one pass over the close pairs.
func CrossCurve(a, b []geom.Point, thresholds []float64) ([]int, error) {
	if err := checkThresholds(thresholds); err != nil {
		return nil, err
	}
	out := make([]int, len(thresholds))
	if len(a) == 0 || len(b) == 0 {
		return out, nil
	}
	sMax := thresholds[len(thresholds)-1]
	idx := gridindex.New(b, sMax)
	hist := make([]int64, len(thresholds))
	for _, p := range a {
		idx.ForEachInRange(p, sMax, func(_ int, d2 float64) {
			bin := sort.SearchFloat64s(thresholds, math.Sqrt(d2))
			if bin < len(hist) {
				hist[bin]++
			}
		})
	}
	running := int64(0)
	for i := range hist {
		running += hist[i]
		out[i] = int(running)
	}
	return out, nil
}

// CrossPlot computes a bivariate K-function plot under the random-labelling
// null: the observed K_12 curve plus min/max envelopes over sims random
// reassignments of the type labels across the pooled points. Exceeding the
// envelope means the two types attract each other beyond what their pooled
// spatial pattern explains.
//
// Simulations fan out across workers (0/1 serial, <0 GOMAXPROCS); each
// relabelling shuffles its own copy of the pool with an RNG derived from
// rng's next value, so the envelopes are bit-identical for every worker
// count.
func CrossPlot(a, b []geom.Point, thresholds []float64, sims, workers int, rng *rand.Rand) (*Plot, error) {
	if sims < 1 {
		return nil, fmt.Errorf("kfunc: need at least 1 simulation, got %d", sims)
	}
	if len(a) == 0 || len(b) == 0 {
		return nil, fmt.Errorf("kfunc: both types need events (%d, %d)", len(a), len(b))
	}
	obs, err := CrossCurve(a, b, thresholds)
	if err != nil {
		return nil, err
	}
	p := newPlot(thresholds, obs, sims)
	pool := make([]geom.Point, 0, len(a)+len(b))
	pool = append(pool, a...)
	pool = append(pool, b...)
	seed := rng.Int63()
	var mu sync.Mutex
	var firstErr error
	parallel.MonteCarloScratch(sims, workers, seed,
		func() []geom.Point { return make([]geom.Point, len(pool)) },
		func(rng *rand.Rand, buf []geom.Point, l int) {
			copy(buf, pool)
			rng.Shuffle(len(buf), func(i, j int) { buf[i], buf[j] = buf[j], buf[i] })
			counts, err := CrossCurve(buf[:len(a)], buf[len(a):], thresholds)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			p.mergeEnvelope(counts)
		})
	if firstErr != nil {
		return nil, firstErr
	}
	return p, nil
}

// KnoxResult is the Knox test for space-time interaction.
type KnoxResult struct {
	Statistic int     // pairs close in BOTH space and time
	PermMean  float64 // mean under time permutation
	PermStd   float64
	Z         float64
	P         float64 // upper-tail pseudo p-value (interaction inflates the count)
	Perms     int
}

// Knox counts unordered pairs simultaneously within spatial threshold s
// and temporal threshold t, and tests it against perms random permutations
// of the times over the fixed locations — the classical space-time
// interaction screen (Equation 8's K(s,t) at a single threshold pair, with
// the correct conditional null).
//
// Permutations fan out across workers (0/1 serial, <0 GOMAXPROCS); each
// permutation shuffles its own copy of the times with an RNG derived from
// rng's next value, so the result is bit-identical for every worker count.
func Knox(pts []geom.Point, times []float64, s, t float64, perms, workers int, rng *rand.Rand) (*KnoxResult, error) {
	n := len(pts)
	if len(times) != n {
		return nil, fmt.Errorf("kfunc: %d points but %d times", n, len(times))
	}
	if n < 3 {
		return nil, fmt.Errorf("kfunc: Knox needs at least 3 events, got %d", n)
	}
	if perms < 1 {
		return nil, fmt.Errorf("kfunc: Knox needs perms >= 1, got %d", perms)
	}
	if rng == nil {
		return nil, fmt.Errorf("kfunc: Knox requires a rng")
	}
	// Enumerate spatially-close unordered pairs ONCE; permutations only
	// re-examine the time gaps of those pairs.
	idx := gridindex.New(pts, s)
	type pair struct{ i, j int32 }
	var pairs []pair
	for i, p := range pts {
		idx.ForEachInRange(p, s, func(j int, _ float64) {
			if j > i {
				pairs = append(pairs, pair{int32(i), int32(j)})
			}
		})
	}
	countClose := func(ts []float64) int {
		c := 0
		for _, pr := range pairs {
			if math.Abs(ts[pr.i]-ts[pr.j]) <= t {
				c++
			}
		}
		return c
	}
	obs := countClose(times)
	samples := make([]float64, perms)
	parallel.MonteCarloScratch(perms, workers, rng.Int63(),
		func() []float64 { return make([]float64, n) },
		func(rng *rand.Rand, perm []float64, p int) {
			copy(perm, times)
			rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			samples[p] = float64(countClose(perm))
		})
	mean, std := permMeanStd(samples)
	res := &KnoxResult{Statistic: obs, PermMean: mean, PermStd: std, Perms: perms}
	if std > 0 {
		res.Z = (float64(obs) - mean) / std
	}
	extreme := 0
	for _, v := range samples {
		if v >= float64(obs) {
			extreme++
		}
	}
	res.P = float64(extreme+1) / float64(perms+1)
	return res, nil
}

func permMeanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}
