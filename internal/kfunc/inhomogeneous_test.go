package kfunc

import (
	"math"
	"math/rand"
	"testing"

	"geostat/internal/dataset"
	"geostat/internal/geom"
	"geostat/internal/kde"
	"geostat/internal/kernel"
)

// The headline use of the custom-null plot: clustered first-order intensity
// without interaction (an inhomogeneous Poisson process) looks "clustered"
// against the CSR null, but reads "random" against the fitted-intensity
// null. True interaction (a Matérn process) exceeds both.
func TestInhomogeneousNullSeparatesIntensityFromInteraction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	thresholds := []float64{2, 4, 6}
	opt := PlotOptions{Thresholds: thresholds, Simulations: 39, Window: box}

	// Ground-truth intensity: one broad Gaussian bump. Draw an
	// interaction-free dataset from it.
	spec := geom.NewPixelGrid(box, 64, 64)
	intensity := make([]float64, spec.NumPixels())
	center := geom.Point{X: 40, Y: 60}
	for iy := 0; iy < spec.NY; iy++ {
		for ix := 0; ix < spec.NX; ix++ {
			d2 := spec.Center(ix, iy).Dist2(center)
			intensity[spec.Index(ix, iy)] = 1 + 20*expApprox(-d2/(2*15*15))
		}
	}
	obs, err := dataset.SampleFromIntensity(rng, spec, intensity, 1500)
	if err != nil {
		t.Fatal(err)
	}

	// Against CSR: the intensity gradient masquerades as clustering.
	csrPlot, err := MakePlot(obs.Points(), opt, rng)
	if err != nil {
		t.Fatal(err)
	}
	if csrPlot.RegimeAt(2) != Clustered {
		t.Errorf("inhomogeneous data vs CSR should read clustered, got %v", csrPlot.RegimeAt(2))
	}

	// Against the FITTED intensity null: fit a KDV to the data, simulate
	// from it — the spurious clustering disappears.
	fit, err := kde.Exact(obs.Points(), kde.Options{
		Kernel: kernel.MustNew(kernel.Quartic, 12),
		Grid:   spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	inhomPlot, err := MakePlotWithNull(obs.Points(), opt, func() []geom.Point {
		sim, err := dataset.SampleFromIntensity(rng, spec, fit.Values, obs.N())
		if err != nil {
			t.Fatal(err)
		}
		return sim.Points()
	})
	if err != nil {
		t.Fatal(err)
	}
	randomCount := 0
	for i := range thresholds {
		if inhomPlot.RegimeAt(i) == Random {
			randomCount++
		}
	}
	if randomCount < len(thresholds)-1 {
		t.Errorf("intensity-matched null should absorb the gradient: random at %d/%d", randomCount, len(thresholds))
	}

	// True interaction still exceeds the fitted-intensity null: a Matérn
	// process has clustering beyond its smoothed intensity.
	mat := clusteredN(&cfgLike{seed: 2}, 1500)
	fitM, err := kde.Exact(mat, kde.Options{Kernel: kernel.MustNew(kernel.Quartic, 12), Grid: spec})
	if err != nil {
		t.Fatal(err)
	}
	matPlot, err := MakePlotWithNull(mat, opt, func() []geom.Point {
		sim, _ := dataset.SampleFromIntensity(rng, spec, fitM.Values, len(mat))
		return sim.Points()
	})
	if err != nil {
		t.Fatal(err)
	}
	if matPlot.RegimeAt(0) != Clustered {
		t.Errorf("Matérn vs fitted-intensity null should stay clustered at small s, got %v", matPlot.RegimeAt(0))
	}
}

// cfgLike provides the tiny interface clusteredN-style helpers need here.
type cfgLike struct{ seed int64 }

func clusteredN(c *cfgLike, n int) []geom.Point {
	r := rand.New(rand.NewSource(c.seed))
	pts := dataset.MaternCluster(r, box, 0.004, 25, 3).Points()
	for len(pts) < n {
		extra := dataset.MaternCluster(r, box, 0.004, 25, 3)
		pts = append(pts, extra.Points()...)
	}
	return pts[:n]
}

func expApprox(x float64) float64 { return math.Exp(x) }

func TestMakePlotWithNullValidation(t *testing.T) {
	pts := csr(3, 50)
	sim := func() []geom.Point { return pts }
	if _, err := MakePlotWithNull(pts, PlotOptions{Thresholds: []float64{1}}, sim); err == nil {
		t.Error("0 simulations accepted")
	}
	if _, err := MakePlotWithNull(pts, PlotOptions{Thresholds: nil, Simulations: 3}, sim); err == nil {
		t.Error("nil thresholds accepted")
	}
	// Self-null: envelopes collapse onto the observed curve.
	p, err := MakePlotWithNull(pts, PlotOptions{Thresholds: []float64{5}, Simulations: 3}, sim)
	if err != nil {
		t.Fatal(err)
	}
	if p.Lo[0] != p.K[0] || p.Hi[0] != p.K[0] {
		t.Errorf("self-null envelope [%v, %v] should equal K %v", p.Lo[0], p.Hi[0], p.K[0])
	}
}
