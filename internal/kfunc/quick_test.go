package kfunc

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"geostat/internal/geom"
)

func genCloud(r *rand.Rand, maxN int) []geom.Point {
	n := r.Intn(maxN)
	pts := make([]geom.Point, n)
	for i := range pts {
		if i > 0 && r.Intn(8) == 0 {
			pts[i] = pts[r.Intn(i)] // duplicates
			continue
		}
		pts[i] = geom.Point{X: r.Float64() * 50, Y: r.Float64() * 50}
	}
	return pts
}

// Property (testing/quick): all three single-threshold K implementations
// agree for arbitrary clouds (including duplicates) and radii.
func TestQuickKMethodsAgree(t *testing.T) {
	f := func(pts []geom.Point, s float64) bool {
		want := Naive(pts, s)
		return GridIndexed(pts, s) == want && KDTreeIndexed(pts, s) == want
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(genCloud(r, 150))
			args[1] = reflect.ValueOf(r.Float64() * 30)
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the one-pass curve equals per-threshold evaluation, is
// monotone, and is even (symmetric ordered pairs ⇒ every count is even).
func TestQuickCurveInvariants(t *testing.T) {
	f := func(pts []geom.Point, a, b, c float64) bool {
		ts := []float64{1 + a*5, 7 + b*5, 13 + c*5}
		curve, err := Curve(pts, ts, 0)
		if err != nil {
			return false
		}
		prev := -1
		for i, s := range ts {
			if curve[i] != Naive(pts, s) {
				return false
			}
			if curve[i] < prev || curve[i]%2 != 0 {
				return false
			}
			prev = curve[i]
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 120,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(genCloud(r, 120))
			for i := 1; i < 4; i++ {
				args[i] = reflect.ValueOf(r.Float64())
			}
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the ST surface equals the naive definition cell by cell for
// random thresholds, and degrades to the purely spatial K when the
// temporal threshold covers the whole time range.
func TestQuickSTSurfaceInvariants(t *testing.T) {
	f := func(pts []geom.Point, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		times := make([]float64, len(pts))
		for i := range times {
			times[i] = r.Float64() * 100
		}
		sTh := []float64{3, 9}
		tTh := []float64{10, 1000} // second threshold covers everything
		surf, err := STSurface(pts, times, sTh, tTh, 0)
		if err != nil {
			return false
		}
		for a, s := range sTh {
			for b, tt := range tTh {
				if surf[a*2+b] != STNaive(pts, times, s, tt) {
					return false
				}
			}
			// t=1000 covers the whole range ⇒ equal to spatial K.
			if surf[a*2+1] != Naive(pts, s) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 80,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(genCloud(r, 100))
			args[1] = reflect.ValueOf(r.Int63())
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
