package kfunc

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"geostat/internal/dataset"
	"geostat/internal/geom"
	gridindex "geostat/internal/index/grid"
	"geostat/internal/parallel"
)

// Spatiotemporal K-function (Equation 8 of the paper): pairs are counted
// when BOTH the spatial distance is within s and the time gap is within t.
// The plot (Figure 6) is a surface over an M×T grid of (s_α, t_β)
// thresholds with min/max envelopes from L simulations (Equations 9–10).

// STNaive computes K(s, t) by the O(n²) double loop (i ≠ j ordered pairs).
func STNaive(pts []geom.Point, times []float64, s, t float64) int {
	s2 := s * s
	count := 0
	for i := range pts {
		for j := range pts {
			if i == j {
				continue
			}
			if pts[i].Dist2(pts[j]) <= s2 && math.Abs(times[i]-times[j]) <= t {
				count++
			}
		}
	}
	return count
}

// STSurface computes K(s_α, t_β) for every combination of the ascending
// spatial and temporal thresholds in ONE pass over the close pairs: each
// pair within (s_max, any t) is binned into the 2-D histogram
// (spatial bin, temporal bin) and a 2-D cumulative sum yields the full
// surface. Row α·len(tThresholds)+β of the result is K(s_α, t_β).
func STSurface(pts []geom.Point, times []float64, sThresholds, tThresholds []float64, workers int) ([]int, error) {
	if err := checkThresholds(sThresholds); err != nil {
		return nil, fmt.Errorf("spatial: %w", err)
	}
	if err := checkThresholds(tThresholds); err != nil {
		return nil, fmt.Errorf("temporal: %w", err)
	}
	if len(times) != len(pts) {
		return nil, fmt.Errorf("kfunc: %d points but %d times", len(pts), len(times))
	}
	m, tt := len(sThresholds), len(tThresholds)
	out := make([]int, m*tt)
	if len(pts) < 2 {
		return out, nil
	}
	sMax := sThresholds[m-1]
	tMax := tThresholds[tt-1]
	idx := gridindex.New(pts, sMax)

	// hist[(sBin)·(tt+1) + tBin] counts pairs whose distance falls in
	// spatial bin sBin and time gap in temporal bin tBin; bin == len means
	// "beyond the largest threshold" and is dropped by the cumulation.
	width := tt + 1
	hist := make([]int64, (m+1)*width)
	binPair := func(local []int64, i int) {
		p := pts[i]
		ti := times[i]
		idx.ForEachInRange(p, sMax, func(j int, d2 float64) {
			if j == i {
				return
			}
			dt := math.Abs(times[j] - ti)
			if dt > tMax {
				return
			}
			sBin := sort.SearchFloat64s(sThresholds, math.Sqrt(d2))
			tBin := sort.SearchFloat64s(tThresholds, dt)
			local[sBin*width+tBin]++
		})
	}

	partials := parallel.ForScratch(len(pts), workers,
		func() []int64 { return make([]int64, len(hist)) },
		func(local []int64, i int) { binPair(local, i) })
	for _, p := range partials {
		for i, v := range p {
			hist[i] += v
		}
	}

	// 2-D cumulative over bins (excluding the overflow row/col).
	cum := make([]int64, (m+1)*width)
	for a := 0; a < m; a++ {
		for b := 0; b < tt; b++ {
			c := hist[a*width+b]
			if a > 0 {
				c += cum[(a-1)*width+b]
			}
			if b > 0 {
				c += cum[a*width+b-1]
			}
			if a > 0 && b > 0 {
				c -= cum[(a-1)*width+b-1]
			}
			cum[a*width+b] = c
			out[a*tt+b] = int(c)
		}
	}
	return out, nil
}

// STPlot is a spatiotemporal K-function plot (Figure 6): observed surface
// plus envelopes, flattened row-major with the spatial index slow.
type STPlot struct {
	S, T      []float64
	K, Lo, Hi []float64 // len(S)·len(T) surfaces
	Sim       int
}

// At returns the surface values at spatial index a, temporal index b.
func (p *STPlot) At(a, b int) (k, lo, hi float64) {
	i := a*len(p.T) + b
	return p.K[i], p.Lo[i], p.Hi[i]
}

// RegimeAt classifies the dataset at threshold pair (a, b) like Figure 6.
func (p *STPlot) RegimeAt(a, b int) Regime {
	k, lo, hi := p.At(a, b)
	switch {
	case k > hi:
		return Clustered
	case k < lo:
		return Dispersed
	default:
		return Random
	}
}

// MakeSTPlot computes the observed K(s,t) surface and min/max envelopes
// over sims random datasets: CSR in the window crossed with uniform times
// over the data's time range (the space-time null model: no interaction).
//
// The simulations fan out across workers with per-simulation RNGs derived
// from rng's next value, so the envelopes are bit-identical for every
// worker count.
func MakeSTPlot(d *dataset.Dataset, sThresholds, tThresholds []float64, sims, workers int, rng *rand.Rand) (*STPlot, error) {
	if !d.HasTimes() {
		return nil, fmt.Errorf("kfunc: dataset has no event times")
	}
	if sims < 1 {
		return nil, fmt.Errorf("kfunc: need at least 1 simulation, got %d", sims)
	}
	obs, err := STSurface(d.Points(), d.Times(), sThresholds, tThresholds, workers)
	if err != nil {
		return nil, err
	}
	window := d.Bounds()
	t0, t1, _ := d.TimeRange()
	p := &STPlot{
		S:   append([]float64(nil), sThresholds...),
		T:   append([]float64(nil), tThresholds...),
		K:   make([]float64, len(obs)),
		Lo:  make([]float64, len(obs)),
		Hi:  make([]float64, len(obs)),
		Sim: sims,
	}
	for i, c := range obs {
		p.K[i] = float64(c)
		p.Lo[i] = math.Inf(1)
		p.Hi[i] = math.Inf(-1)
	}
	n := d.N()
	seed := rng.Int63()
	inner := innerWorkers(workers, sims)
	var mu sync.Mutex
	var firstErr error
	parallel.MonteCarlo(sims, workers, seed, func(rng *rand.Rand, l int) {
		sim := dataset.UniformCSR(rng, n, window)
		simTimes := make([]float64, n)
		for i := range simTimes {
			simTimes[i] = t0 + rng.Float64()*(t1-t0)
		}
		counts, err := STSurface(sim.Points(), simTimes, sThresholds, tThresholds, inner)
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		for i, c := range counts {
			v := float64(c)
			p.Lo[i] = math.Min(p.Lo[i], v)
			p.Hi[i] = math.Max(p.Hi[i], v)
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return p, nil
}
