package stat

import (
	"math"
	"testing"
)

func TestNormalCDF(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1.959963985, 0.975},
		{-1.959963985, 0.025},
		{3, 0.9986501},
		{-6, 9.865876e-10},
	}
	for _, c := range cases {
		if got := NormalCDF(c.z); math.Abs(got-c.want) > 1e-6 {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.z, got, c.want)
		}
	}
	for _, z := range []float64{-3, -1, 0, 0.5, 2, 5} {
		if s := NormalCDF(z) + NormalSurvival(z); math.Abs(s-1) > 1e-12 {
			t.Errorf("CDF+survival at %v = %v", z, s)
		}
	}
}

// Reference values from R's pchisq(x, df, lower.tail=FALSE).
func TestChiSquareSurvival(t *testing.T) {
	cases := []struct {
		df   int
		x    float64
		want float64
	}{
		{1, 3.841459, 0.05},
		{2, 5.991465, 0.05},
		{5, 11.0705, 0.05},
		{10, 18.30704, 0.05},
		{10, 2, 0.9963402},
		{100, 124.3421, 0.05},
		{3, 0.1, 0.9918374}, // 1 − P(1.5, 0.05), hand-verified by series expansion
		{1, 50, 1.537460e-12},
	}
	for _, c := range cases {
		got := ChiSquareSurvival(c.df, c.x)
		if math.Abs(got-c.want)/c.want > 1e-5 {
			t.Errorf("ChiSquareSurvival(%d, %v) = %v, want %v", c.df, c.x, got, c.want)
		}
	}
}

func TestChiSquareEdgeCases(t *testing.T) {
	if got := ChiSquareSurvival(5, 0); got != 1 {
		t.Errorf("survival at 0 = %v", got)
	}
	if got := ChiSquareSurvival(5, -1); got != 1 {
		t.Errorf("survival at negative = %v", got)
	}
	if !math.IsNaN(ChiSquareSurvival(0, 1)) {
		t.Error("df=0 should be NaN")
	}
	if !math.IsNaN(ChiSquareSurvival(2, math.NaN())) {
		t.Error("NaN x should be NaN")
	}
	// Monotone decreasing in x.
	prev := 1.0
	for x := 0.5; x < 40; x += 0.5 {
		got := ChiSquareSurvival(7, x)
		if got > prev+1e-12 {
			t.Fatalf("not monotone at x=%v", x)
		}
		prev = got
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 || std != 2 {
		t.Errorf("MeanStd = %v, %v (want 5, 2)", mean, std)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Errorf("empty MeanStd = %v, %v", m, s)
	}
}
