// Package stat provides the scalar statistics the analytic tools need for
// significance testing: the standard normal CDF and the chi-square
// survival function (via the regularized incomplete gamma function),
// implemented from scratch on the stdlib.
package stat

import "math"

// NormalCDF returns P(Z <= z) for a standard normal Z.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalSurvival returns P(Z > z).
func NormalSurvival(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// ChiSquareSurvival returns P(X > x) for X ~ χ²(df). It evaluates the
// regularized upper incomplete gamma function Q(df/2, x/2).
func ChiSquareSurvival(df int, x float64) float64 {
	if df <= 0 || math.IsNaN(x) {
		return math.NaN()
	}
	if x <= 0 {
		return 1
	}
	return upperGammaRegularized(float64(df)/2, x/2)
}

// upperGammaRegularized computes Q(a, x) = Γ(a, x)/Γ(a) using the series
// expansion for x < a+1 and the continued fraction otherwise (the
// classical two-regime evaluation; each converges rapidly in its regime).
func upperGammaRegularized(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - lowerGammaSeries(a, x)
	}
	return upperGammaContinuedFraction(a, x)
}

// lowerGammaSeries computes P(a, x) by the power series
// P(a,x) = e^{-x} x^a / Γ(a) · Σ_{n≥0} x^n / (a(a+1)...(a+n)).
func lowerGammaSeries(a, x float64) float64 {
	const maxIter = 500
	const eps = 1e-14
	ap := a
	sum := 1.0 / a
	del := sum
	for n := 0; n < maxIter; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// upperGammaContinuedFraction computes Q(a, x) by the Lentz continued
// fraction e^{-x} x^a / Γ(a) · 1/(x+1-a- 1·(1-a)/(x+3-a- ...)).
func upperGammaContinuedFraction(a, x float64) float64 {
	const maxIter = 500
	const eps = 1e-14
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// MeanStd returns the sample mean and population standard deviation.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}
