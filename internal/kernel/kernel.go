// Package kernel implements the kernel functions of Table 2 in the paper
// (uniform, Epanechnikov, quartic, Gaussian) plus the additional kernels the
// paper names as future work in §2.4 (triangular, cosine, exponential,
// triweight), all parameterised by a bandwidth b.
//
// Kernels are evaluated on squared distance: every caller in this
// repository already has dist² available (from index pruning bounds or
// coordinate deltas), and finite-support kernels can then be evaluated with
// no square root at all.
//
// The paper's Table 2 writes kernels unnormalised (the normalisation
// constant w of Equation 1 is applied outside). This package follows that
// convention: Eval returns the raw kernel value; NormConst returns the
// constant that makes the kernel integrate to 1 over the plane, for callers
// that want true density estimates.
package kernel

import (
	"fmt"
	"math"
)

// Type enumerates the supported kernel functions.
type Type int

const (
	// Uniform is the flat disc kernel: 1/b within distance b, else 0.
	Uniform Type = iota
	// Triangular decays linearly: 1 - dist/b within b.
	Triangular
	// Epanechnikov is 1 - dist²/b² within b (Table 2).
	Epanechnikov
	// Quartic is (1 - dist²/b²)² within b (Table 2).
	Quartic
	// Triweight is (1 - dist²/b²)³ within b.
	Triweight
	// Gaussian is exp(-dist²/b²) (Table 2; infinite support).
	Gaussian
	// Cosine is cos(π·dist/(2b)) within b.
	Cosine
	// Exponential is exp(-dist/b) (infinite support).
	Exponential

	numTypes int = iota
)

var typeNames = [...]string{
	Uniform:      "uniform",
	Triangular:   "triangular",
	Epanechnikov: "epanechnikov",
	Quartic:      "quartic",
	Triweight:    "triweight",
	Gaussian:     "gaussian",
	Cosine:       "cosine",
	Exponential:  "exponential",
}

// String returns the lowercase kernel name used by CLIs and CSV headers.
func (t Type) String() string {
	if t < 0 || int(t) >= numTypes {
		return fmt.Sprintf("kernel.Type(%d)", int(t))
	}
	return typeNames[t]
}

// Parse returns the kernel type named by s (as produced by String).
func Parse(s string) (Type, error) {
	for i, name := range typeNames {
		if name == s {
			return Type(i), nil
		}
	}
	return 0, fmt.Errorf("kernel: unknown kernel %q", s)
}

// All returns every supported kernel type, in declaration order.
func All() []Type {
	ts := make([]Type, numTypes)
	for i := range ts {
		ts[i] = Type(i)
	}
	return ts
}

// Kernel is a bandwidth-bound kernel function K(q, p) = k(dist(q, p)).
// The zero value is not usable; construct with New.
type Kernel struct {
	typ   Type
	b     float64 // bandwidth
	invB  float64 // 1/b
	b2    float64 // b²
	invB2 float64 // 1/b²
}

// New returns a kernel of the given type with bandwidth b > 0.
func New(typ Type, b float64) (Kernel, error) {
	if typ < 0 || int(typ) >= numTypes {
		return Kernel{}, fmt.Errorf("kernel: unknown kernel type %d", int(typ))
	}
	if !(b > 0) || math.IsInf(b, 1) {
		return Kernel{}, fmt.Errorf("kernel: bandwidth must be positive and finite, got %g", b)
	}
	return Kernel{typ: typ, b: b, invB: 1 / b, b2: b * b, invB2: 1 / (b * b)}, nil
}

// MustNew is New that panics on error, for tests and internal constants.
func MustNew(typ Type, b float64) Kernel {
	k, err := New(typ, b)
	if err != nil {
		panic(err)
	}
	return k
}

// Type returns the kernel's type.
func (k Kernel) Type() Type { return k.typ }

// Bandwidth returns the kernel's bandwidth b.
func (k Kernel) Bandwidth() float64 { return k.b }

// FiniteSupport reports whether the kernel is exactly zero beyond its
// bandwidth. Finite-support kernels admit cutoff- and sweep-line-based
// exact algorithms (SLAM family); infinite-support kernels (Gaussian,
// exponential) require approximation for sub-O(XYn) evaluation — the gap
// the paper highlights in §2.4.
func (k Kernel) FiniteSupport() bool {
	switch k.typ {
	case Gaussian, Exponential:
		return false
	}
	return true
}

// SupportRadius returns the distance beyond which the kernel's value is
// negligible: exactly b for finite-support kernels, and the distance at
// which the kernel decays below tail=1e-12 of its peak for infinite-support
// ones (used only by callers that accept that truncation explicitly).
func (k Kernel) SupportRadius() float64 {
	switch k.typ {
	case Gaussian:
		// exp(-d²/b²) = 1e-12  =>  d = b·sqrt(12·ln10)
		return k.b * math.Sqrt(12*math.Ln10)
	case Exponential:
		// exp(-d/b) = 1e-12  =>  d = 12·ln10·b
		return k.b * 12 * math.Ln10
	default:
		return k.b
	}
}

// Eval2 returns the kernel value at squared distance d2 >= 0.
func (k Kernel) Eval2(d2 float64) float64 {
	switch k.typ {
	case Uniform:
		if d2 <= k.b2 {
			return k.invB
		}
		return 0
	case Triangular:
		if d2 >= k.b2 {
			return 0
		}
		return 1 - math.Sqrt(d2)*k.invB
	case Epanechnikov:
		if d2 >= k.b2 {
			return 0
		}
		return 1 - d2*k.invB2
	case Quartic:
		if d2 >= k.b2 {
			return 0
		}
		u := 1 - d2*k.invB2
		return u * u
	case Triweight:
		if d2 >= k.b2 {
			return 0
		}
		u := 1 - d2*k.invB2
		return u * u * u
	case Gaussian:
		return math.Exp(-d2 * k.invB2)
	case Cosine:
		if d2 >= k.b2 {
			return 0
		}
		return math.Cos(math.Pi / 2 * math.Sqrt(d2) * k.invB)
	case Exponential:
		return math.Exp(-math.Sqrt(d2) * k.invB)
	}
	return 0
}

// Eval returns the kernel value at distance d >= 0.
func (k Kernel) Eval(d float64) float64 { return k.Eval2(d * d) }

// NormConst returns the constant w such that w·∫∫K(q,p)dq = 1 over the
// plane, i.e. the normalisation constant of Equation 1 for a single point.
// Derivations use polar coordinates: ∫∫k(|x|)dx = 2π∫₀^∞ k(r)·r dr.
func (k Kernel) NormConst() float64 {
	b := k.b
	switch k.typ {
	case Uniform:
		// ∫ = 2π·(1/b)·b²/2 = πb
		return 1 / (math.Pi * b)
	case Triangular:
		// 2π∫₀^b (1-r/b) r dr = 2π(b²/2 - b²/3) = πb²/3
		return 3 / (math.Pi * b * b)
	case Epanechnikov:
		// 2π∫₀^b (1-r²/b²) r dr = 2π(b²/2 - b²/4) = πb²/2
		return 2 / (math.Pi * b * b)
	case Quartic:
		// 2π∫₀^b (1-r²/b²)² r dr = 2π·b²/6 = πb²/3
		return 3 / (math.Pi * b * b)
	case Triweight:
		// 2π∫₀^b (1-r²/b²)³ r dr = 2π·b²/8 = πb²/4
		return 4 / (math.Pi * b * b)
	case Gaussian:
		// 2π∫₀^∞ e^{-r²/b²} r dr = πb²
		return 1 / (math.Pi * b * b)
	case Cosine:
		// 2π∫₀^b cos(πr/2b) r dr = 2πb²·(2/π)·(1 - 2/π)  [by parts]
		// ∫₀^b cos(πr/2b) r dr = b²(4/π²)(π/2 - 1)
		return 1 / (2 * math.Pi * b * b * (4 / (math.Pi * math.Pi)) * (math.Pi/2 - 1))
	case Exponential:
		// 2π∫₀^∞ e^{-r/b} r dr = 2πb²
		return 1 / (2 * math.Pi * b * b)
	}
	return 1
}
