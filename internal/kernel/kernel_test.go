package kernel

import (
	"math"
	"math/rand"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	for _, typ := range All() {
		got, err := Parse(typ.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", typ.String(), err)
		}
		if got != typ {
			t.Errorf("Parse(%q) = %v, want %v", typ.String(), got, typ)
		}
	}
	if _, err := Parse("bogus"); err == nil {
		t.Error("Parse(bogus) should fail")
	}
	if s := Type(-1).String(); s != "kernel.Type(-1)" {
		t.Errorf("invalid type String = %q", s)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Gaussian, 0); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := New(Gaussian, -1); err == nil {
		t.Error("negative bandwidth accepted")
	}
	if _, err := New(Gaussian, math.NaN()); err == nil {
		t.Error("NaN bandwidth accepted")
	}
	if _, err := New(Gaussian, math.Inf(1)); err == nil {
		t.Error("infinite bandwidth accepted")
	}
	if _, err := New(Type(99), 1); err == nil {
		t.Error("unknown type accepted")
	}
	k := MustNew(Quartic, 2.5)
	if k.Type() != Quartic || k.Bandwidth() != 2.5 {
		t.Errorf("accessors: %v %v", k.Type(), k.Bandwidth())
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew with bad args should panic")
		}
	}()
	MustNew(Gaussian, -1)
}

// Table 2 of the paper, spot values at d = 0, b/2, b, 2b.
func TestTable2Values(t *testing.T) {
	const b = 2.0
	cases := []struct {
		typ                    Type
		at0, atHalf, atB, at2B float64
	}{
		{Uniform, 0.5, 0.5, 0.5, 0},
		{Epanechnikov, 1, 0.75, 0, 0},
		{Quartic, 1, 0.5625, 0, 0},
		{Gaussian, 1, math.Exp(-0.25), math.Exp(-1), math.Exp(-4)},
		{Triangular, 1, 0.5, 0, 0},
		{Triweight, 1, 0.421875, 0, 0},
		{Cosine, 1, math.Cos(math.Pi / 4), 0, 0},
		{Exponential, 1, math.Exp(-0.5), math.Exp(-1), math.Exp(-2)},
	}
	for _, c := range cases {
		k := MustNew(c.typ, b)
		checks := []struct {
			d, want float64
		}{{0, c.at0}, {b / 2, c.atHalf}, {b, c.atB}, {2 * b, c.at2B}}
		for _, ch := range checks {
			got := k.Eval(ch.d)
			if math.Abs(got-ch.want) > 1e-12 {
				t.Errorf("%v.Eval(%v) = %v, want %v", c.typ, ch.d, got, ch.want)
			}
		}
	}
}

// Uniform's boundary is inclusive per Table 2 (dist <= b); the polynomial
// kernels vanish at the boundary so inclusivity is immaterial there.
func TestUniformBoundaryInclusive(t *testing.T) {
	k := MustNew(Uniform, 3)
	if got := k.Eval(3); got != 1.0/3 {
		t.Errorf("Eval(b) = %v, want 1/b", got)
	}
	if got := k.Eval(3.0000001); got != 0 {
		t.Errorf("Eval(b+) = %v, want 0", got)
	}
}

// Properties shared by all kernels: non-negative, maximal at 0,
// non-increasing in distance, and Eval2(d²)==Eval(d).
func TestKernelProperties(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, typ := range All() {
		k := MustNew(typ, 1.5)
		peak := k.Eval(0)
		if peak <= 0 {
			t.Errorf("%v: peak %v <= 0", typ, peak)
		}
		prev := peak
		for i := 0; i < 400; i++ {
			d := float64(i) * 0.02 // 0 .. 8, past the support
			v := k.Eval(d)
			if v < 0 {
				t.Fatalf("%v: Eval(%v) = %v < 0", typ, d, v)
			}
			if v > prev+1e-12 {
				t.Fatalf("%v: not monotone at d=%v: %v > %v", typ, d, v, prev)
			}
			prev = v
		}
		for i := 0; i < 100; i++ {
			d := r.Float64() * 4
			if math.Abs(k.Eval(d)-k.Eval2(d*d)) > 1e-12 {
				t.Fatalf("%v: Eval/Eval2 disagree at %v", typ, d)
			}
		}
	}
}

func TestFiniteSupport(t *testing.T) {
	for _, typ := range All() {
		k := MustNew(typ, 2)
		want := typ != Gaussian && typ != Exponential
		if got := k.FiniteSupport(); got != want {
			t.Errorf("%v.FiniteSupport = %v, want %v", typ, got, want)
		}
		r := k.SupportRadius()
		if want && r != 2 {
			t.Errorf("%v.SupportRadius = %v, want b", typ, r)
		}
		if !want && r <= 2 {
			t.Errorf("%v.SupportRadius = %v, want > b", typ, r)
		}
		// Beyond the support radius the kernel is (near) zero.
		if v := k.Eval(r * 1.0000001); v > 1e-12*k.Eval(0) {
			t.Errorf("%v: Eval beyond support = %v", typ, v)
		}
	}
}

// NormConst is validated by numerically integrating w·K over the plane in
// polar coordinates: 2π ∫ w·k(r)·r dr should be 1.
func TestNormConstIntegratesToOne(t *testing.T) {
	for _, typ := range All() {
		for _, b := range []float64{0.5, 1, 3} {
			k := MustNew(typ, b)
			w := k.NormConst()
			rMax := k.SupportRadius() * 1.5
			const steps = 400000
			dr := rMax / steps
			sum := 0.0
			for i := 0; i < steps; i++ {
				r := (float64(i) + 0.5) * dr
				sum += k.Eval(r) * r * dr
			}
			integral := 2 * math.Pi * w * sum
			if math.Abs(integral-1) > 1e-3 {
				t.Errorf("%v b=%v: ∫w·K = %v, want 1", typ, b, integral)
			}
		}
	}
}
