package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// parseBody parses `func f(...) { <src> }` and returns the body.
func parseBody(t testing.TB, src string) *ast.BlockStmt {
	t.Helper()
	file := "package p\nfunc f(cond bool, mode int, xs []int, ch chan int) {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", file, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

func build(t testing.TB, src string) *Graph {
	t.Helper()
	return New(parseBody(t, src), Options{})
}

// blockOf finds the unique block whose Nodes contain a call to the bare
// identifier name — fixtures drop mark0(), mark1(), ... calls to pin
// where statements land.
func blockOf(t *testing.T, g *Graph, name string) *Block {
	t.Helper()
	var found *Block
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			hit := false
			ast.Inspect(n, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
						hit = true
					}
				}
				return !hit
			})
			if hit {
				if found != nil && found != blk {
					t.Fatalf("call %s appears in blocks %d and %d", name, found.Index, blk.Index)
				}
				found = blk
			}
		}
	}
	if found == nil {
		t.Fatalf("no block contains a call to %s\n%s", name, g)
	}
	return found
}

func TestStraightLine(t *testing.T) {
	g := build(t, "mark0()\nmark1()")
	if got, want := g.Edges(), []string{"0->3", "3->1"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("edges = %v, want %v\n%s", got, want, g)
	}
	b := blockOf(t, g, "mark0")
	if b != blockOf(t, g, "mark1") {
		t.Fatalf("straight-line statements split across blocks\n%s", g)
	}
	if len(b.Nodes) != 2 {
		t.Fatalf("body block has %d nodes, want 2", len(b.Nodes))
	}
}

func TestIfNoElse(t *testing.T) {
	g := build(t, "if cond {\nmark1()\n}\nmark2()")
	condBlk := g.Entry.Succs[0]
	if condBlk.Cond == nil {
		t.Fatalf("condition block has nil Cond\n%s", g)
	}
	then, after := blockOf(t, g, "mark1"), blockOf(t, g, "mark2")
	if condBlk.Succs[0] != then {
		t.Errorf("Succs[0] (true edge) = b%d, want then b%d", condBlk.Succs[0].Index, then.Index)
	}
	if condBlk.Succs[1] != after {
		t.Errorf("Succs[1] (false edge) = b%d, want after b%d", condBlk.Succs[1].Index, after.Index)
	}
	if len(then.Succs) != 1 || then.Succs[0] != after {
		t.Errorf("then block must join after\n%s", g)
	}
}

func TestIfElse(t *testing.T) {
	g := build(t, "if cond {\nmark1()\n} else {\nmark2()\n}\nmark3()")
	condBlk := g.Entry.Succs[0]
	then, elseB, after := blockOf(t, g, "mark1"), blockOf(t, g, "mark2"), blockOf(t, g, "mark3")
	if condBlk.Succs[0] != then || condBlk.Succs[1] != elseB {
		t.Fatalf("branch edges wrong: Succs=[b%d b%d], want [b%d b%d]",
			condBlk.Succs[0].Index, condBlk.Succs[1].Index, then.Index, elseB.Index)
	}
	for _, blk := range []*Block{then, elseB} {
		if len(blk.Succs) != 1 || blk.Succs[0] != after {
			t.Errorf("b%d must join after b%d\n%s", blk.Index, after.Index, g)
		}
	}
}

func TestForLoop(t *testing.T) {
	g := build(t, "for i := 0; i < mode; i++ {\nmark1()\n}\nmark2()")
	body, after := blockOf(t, g, "mark1"), blockOf(t, g, "mark2")
	// The head branches on the condition: true into the body, false out.
	var head *Block
	for _, blk := range g.Blocks {
		if blk.Cond != nil {
			head = blk
		}
	}
	if head == nil {
		t.Fatalf("no branch block for loop condition\n%s", g)
	}
	if head.Succs[0] != body || head.Succs[1] != after {
		t.Fatalf("head Succs=[b%d b%d], want [body b%d, after b%d]",
			head.Succs[0].Index, head.Succs[1].Index, body.Index, after.Index)
	}
	// body -> post -> head back edge.
	if len(body.Succs) != 1 {
		t.Fatalf("body has %d succs, want 1 (the post block)", len(body.Succs))
	}
	post := body.Succs[0]
	if len(post.Succs) != 1 || post.Succs[0] != head {
		t.Fatalf("post must loop back to head\n%s", g)
	}
}

func TestInfiniteForNeedsBreak(t *testing.T) {
	// Without a break there is no path to Exit…
	g := build(t, "for {\nmark1()\n}")
	if g.Reachable(g.Entry, g.Exit) {
		t.Fatalf("for{} must not reach exit\n%s", g)
	}
	// …with one, there is.
	g = build(t, "for {\nif cond {\nbreak\n}\n}\nmark2()")
	if !g.Reachable(g.Entry, g.Exit) {
		t.Fatalf("break must restore the path to exit\n%s", g)
	}
	after := blockOf(t, g, "mark2")
	if !g.Reachable(g.Entry, after) {
		t.Fatalf("after block unreachable\n%s", g)
	}
}

func TestRange(t *testing.T) {
	g := build(t, "for _, x := range xs {\nmark1()\n_ = x\n}\nmark2()")
	body, after := blockOf(t, g, "mark1"), blockOf(t, g, "mark2")
	var head *Block
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			if s == body && blk != g.Entry {
				head = blk
			}
		}
	}
	if head == nil {
		t.Fatalf("no range head\n%s", g)
	}
	if head.Cond != nil {
		t.Errorf("range head must not carry a boolean Cond")
	}
	if head.Succs[0] != body || head.Succs[1] != after {
		t.Fatalf("range head Succs=[b%d b%d], want [body b%d, after b%d]",
			head.Succs[0].Index, head.Succs[1].Index, body.Index, after.Index)
	}
	if len(body.Succs) != 1 || body.Succs[0] != head {
		t.Fatalf("range body must loop to head\n%s", g)
	}
}

func TestSwitchDefaultGates(t *testing.T) {
	// Without a default the head can skip every case.
	g := build(t, "switch mode {\ncase 0:\nmark1()\ncase 1:\nmark2()\n}\nmark3()")
	head := g.Entry.Succs[0]
	after := blockOf(t, g, "mark3")
	foundDirect := false
	for _, s := range head.Succs {
		if s == after {
			foundDirect = true
		}
	}
	if !foundDirect {
		t.Fatalf("switch without default needs head->after edge\n%s", g)
	}
	// With a default it cannot.
	g = build(t, "switch mode {\ncase 0:\nmark1()\ndefault:\nmark2()\n}\nmark3()")
	head, after = g.Entry.Succs[0], blockOf(t, g, "mark3")
	for _, s := range head.Succs {
		if s == after {
			t.Fatalf("switch with default must not edge head->after directly\n%s", g)
		}
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := build(t, "switch mode {\ncase 0:\nmark1()\nfallthrough\ncase 1:\nmark2()\n}\nmark3()")
	c0, c1 := blockOf(t, g, "mark1"), blockOf(t, g, "mark2")
	if len(c0.Succs) != 1 || c0.Succs[0] != c1 {
		t.Fatalf("fallthrough must chain case 0 into case 1's block\n%s", g)
	}
}

func TestTypeSwitch(t *testing.T) {
	g := build(t, "var v interface{} = mode\nswitch v.(type) {\ncase int:\nmark1()\ncase string:\nmark2()\ndefault:\nmark3()\n}\nmark4()")
	after := blockOf(t, g, "mark4")
	for _, m := range []string{"mark1", "mark2", "mark3"} {
		c := blockOf(t, g, m)
		if len(c.Succs) != 1 || c.Succs[0] != after {
			t.Errorf("case %s must join after\n%s", m, g)
		}
	}
}

func TestSelect(t *testing.T) {
	g := build(t, "select {\ncase v := <-ch:\nmark1()\n_ = v\ncase ch <- mode:\nmark2()\n}\nmark3()")
	after := blockOf(t, g, "mark3")
	for _, m := range []string{"mark1", "mark2"} {
		c := blockOf(t, g, m)
		if !g.Reachable(g.Entry, c) || !g.Reachable(c, after) {
			t.Errorf("clause %s must sit on an entry->after path\n%s", m, g)
		}
	}
}

func TestEmptySelectBlocksForever(t *testing.T) {
	g := build(t, "mark1()\nselect {}\nmark2()")
	if g.Reachable(g.Entry, g.Exit) {
		t.Fatalf("select{} must cut every path to exit\n%s", g)
	}
	if !g.Reachable(g.Entry, blockOf(t, g, "mark1")) {
		t.Fatalf("code before select{} must stay reachable\n%s", g)
	}
}

func TestGotoOutOfLoop(t *testing.T) {
	g := build(t, "for i := 0; i < mode; i++ {\nif cond {\ngoto out\n}\nmark1()\n}\nout:\nmark2()")
	out := blockOf(t, g, "mark2")
	if !g.Reachable(g.Entry, out) {
		t.Fatalf("goto target unreachable\n%s", g)
	}
	if !g.Reachable(g.Entry, g.Exit) {
		t.Fatalf("no path to exit\n%s", g)
	}
}

func TestGotoIntoLoopBody(t *testing.T) {
	// A backward goto forming a loop with no other back edge.
	g := build(t, "again:\nmark1()\nif cond {\ngoto again\n}\nmark2()")
	target := blockOf(t, g, "mark1")
	// The goto block must edge back to the labeled block.
	hasBack := false
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			if s == target && blk.Index > target.Index {
				hasBack = true
			}
		}
	}
	if !hasBack {
		t.Fatalf("goto must create a back edge to the label\n%s", g)
	}
	if !g.Reachable(g.Entry, g.Exit) {
		t.Fatalf("conditional goto must leave a path to exit\n%s", g)
	}
}

func TestLabeledBreakContinue(t *testing.T) {
	g := build(t, `outer:
for i := 0; i < mode; i++ {
	for j := 0; j < mode; j++ {
		if cond {
			break outer
		}
		if mode == 1 {
			continue outer
		}
		mark1()
	}
}
mark2()`)
	inner, after := blockOf(t, g, "mark1"), blockOf(t, g, "mark2")
	if !g.Reachable(g.Entry, inner) || !g.Reachable(g.Entry, after) {
		t.Fatalf("labeled loop bodies unreachable\n%s", g)
	}
	if !g.Reachable(g.Entry, g.Exit) {
		t.Fatalf("no path to exit\n%s", g)
	}
	// break outer must skip straight to after without re-entering either
	// loop head: find the block ending in the labeled break (the one whose
	// succ is `after` and which is not the outer head).
	breaks := 0
	for _, blk := range after.Preds {
		for _, n := range blk.Nodes {
			if br, ok := n.(*ast.BranchStmt); ok && br.Tok == token.BREAK && br.Label != nil {
				breaks++
			}
		}
	}
	_ = breaks // the break statement itself terminates its block before `after` joins
}

func TestDeferInLoop(t *testing.T) {
	g := build(t, "for i := 0; i < mode; i++ {\ndefer mark1()\n}\nmark2()")
	d := blockOf(t, g, "mark1")
	found := false
	for _, n := range d.Nodes {
		if _, ok := n.(*ast.DeferStmt); ok {
			found = true
		}
	}
	if !found {
		t.Fatalf("defer must appear as an ordinary node in its block\n%s", g)
	}
	if !g.Reachable(g.Entry, g.Exit) {
		t.Fatalf("no path to exit\n%s", g)
	}
}

func TestPanicOnlyExit(t *testing.T) {
	g := build(t, "mark1()\npanic(\"boom\")")
	if g.Reachable(g.Entry, g.Exit) {
		t.Fatalf("panic-only function must not reach normal exit\n%s", g)
	}
	if !g.Reachable(g.Entry, g.Panic) {
		t.Fatalf("panic exit unreachable\n%s", g)
	}
}

func TestPanicOnBranch(t *testing.T) {
	g := build(t, "if cond {\npanic(\"boom\")\n}\nmark1()")
	if !g.Reachable(g.Entry, g.Exit) {
		t.Fatalf("false branch must still reach exit\n%s", g)
	}
	if !g.Reachable(g.Entry, g.Panic) {
		t.Fatalf("true branch must reach panic exit\n%s", g)
	}
}

func TestNoReturnOption(t *testing.T) {
	isExit := func(call *ast.CallExpr) bool {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		return ok && sel.Sel.Name == "Exit"
	}
	body := parseBody(t, "if cond {\nos.Exit(1)\n}\nmark1()")
	g := New(body, Options{NoReturn: isExit})
	if !g.Reachable(g.Entry, g.Panic) {
		t.Fatalf("NoReturn call must route to the panic exit\n%s", g)
	}
	// Without the option the same call is an ordinary statement.
	g = New(parseBody(t, "if cond {\nos.Exit(1)\n}\nmark1()"), Options{})
	for _, blk := range g.Panic.Preds {
		t.Fatalf("panic exit must have no preds without NoReturn, got b%d", blk.Index)
	}
}

func TestUnreachableAfterReturn(t *testing.T) {
	g := build(t, "mark1()\nreturn\nmark2()")
	dead := blockOf(t, g, "mark2")
	if len(dead.Preds) != 0 {
		t.Fatalf("code after return must have no preds, got %d\n%s", len(dead.Preds), g)
	}
	if g.Reachable(g.Entry, dead) {
		t.Fatalf("code after return must be unreachable\n%s", g)
	}
}

func TestCondIsLastNode(t *testing.T) {
	g := build(t, "mark1()\nif cond {\nmark2()\n}")
	for _, blk := range g.Blocks {
		if blk.Cond == nil {
			continue
		}
		if len(blk.Nodes) == 0 || blk.Nodes[len(blk.Nodes)-1] != ast.Node(blk.Cond) {
			t.Fatalf("Cond must be the last node of its block\n%s", g)
		}
	}
}

// TestBuildModule builds a CFG for every function declaration and literal
// in the repository without panicking — the cheap full-corpus smoke test.
func TestBuildModule(t *testing.T) {
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("module root not found: %v", err)
	}
	fset := token.NewFileSet()
	funcs := 0
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if strings.HasPrefix(name, ".") || name == "testdata" || name == "artifacts" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, 0)
		if perr != nil {
			return nil // not our concern here
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body == nil {
				return true
			}
			g := New(body, Options{})
			funcs++
			if g.Entry == nil || g.Exit == nil || g.Panic == nil {
				t.Errorf("%s: graph missing synthetic blocks", path)
			}
			for _, blk := range g.Blocks {
				for _, s := range blk.Succs {
					if s.Index >= len(g.Blocks) || g.Blocks[s.Index] != s {
						t.Errorf("%s: dangling successor edge", path)
					}
				}
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if funcs < 100 {
		t.Fatalf("module smoke built only %d functions; corpus walk is broken", funcs)
	}
	t.Logf("built %d CFGs", funcs)
}

// FuzzBuild feeds arbitrary function bodies to the builder; anything that
// parses must produce a well-formed graph without panicking.
func FuzzBuild(f *testing.F) {
	seeds := []string{
		"x := 1\n_ = x",
		"if a { return }\nreturn",
		"for { break }",
		"L:\nfor i := 0; i < 10; i++ { for { continue L } }",
		"goto done\ndone:",
		"switch x := 1; x { case 1: fallthrough\ncase 2: }",
		"select { case <-c: default: }",
		"defer f()\npanic(1)",
		"return\nunreachable()",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file := "package p\nfunc f() {\n" + src + "\n}\n"
		fset := token.NewFileSet()
		parsed, err := parser.ParseFile(fset, "fuzz.go", file, 0)
		if err != nil {
			t.Skip()
		}
		fd, ok := parsed.Decls[0].(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			t.Skip()
		}
		g := New(fd.Body, Options{})
		if g.Entry.Kind != KindEntry || g.Exit.Kind != KindExit || g.Panic.Kind != KindPanic {
			t.Fatalf("synthetic block kinds wrong")
		}
		for _, blk := range g.Blocks {
			if g.Blocks[blk.Index] != blk {
				t.Fatalf("block index out of sync")
			}
			for _, s := range blk.Succs {
				if s == nil {
					t.Fatalf("nil successor")
				}
			}
		}
	})
}
