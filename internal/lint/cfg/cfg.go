// Package cfg builds intraprocedural control-flow graphs from go/ast
// function bodies, using only the standard library. It is the foundation
// of geolint's path-sensitive obligation analyses ("this cancel func must
// be called on every path to return"): AST-local inspection cannot see
// that a release on one branch does not cover the other, a CFG makes
// every path explicit.
//
// The graph is a set of basic blocks. Each block carries the statements
// and sub-expressions that execute when control enters it, in execution
// order, and edges to its possible successors. Three synthetic blocks
// frame every function:
//
//   - Entry: where control starts; one successor, no nodes.
//   - Exit: every normal function exit (return statements and falling
//     off the end of the body) edges here.
//   - Panic: abnormal exits — panic(...) calls and calls the builder's
//     NoReturn option classifies as never returning (os.Exit, log.Fatal).
//     Analyses that only care about normal returns (obligation leaks)
//     ignore paths into Panic: deferred releases still run on panic, and
//     the process is usually gone anyway.
//
// Construction is purely syntactic: the builder never type-checks and
// never descends into *ast.FuncLit — a function literal is an opaque
// value in the enclosing function's graph and gets its own graph when the
// caller asks for one. Branch conditions are preserved: a block that ends
// in a two-way branch records the condition expression in Cond, with
// Succs[0] the true edge and Succs[1] the false edge, so a downstream
// analysis can refine facts along `err != nil` style guards.
//
// Defer statements appear as ordinary nodes in the block where they
// execute (where the defer is registered, not where the deferred call
// runs). Obligation analyses treat a registered defer-release as a
// release: any path that continues past the defer statement is guaranteed
// the call at exit, normal or panicking.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Kind classifies a block's role in the graph.
type Kind uint8

const (
	// KindBody is an ordinary basic block.
	KindBody Kind = iota
	// KindEntry is the function's unique entry block.
	KindEntry
	// KindExit is the unique normal-return exit block.
	KindExit
	// KindPanic is the unique abnormal exit block (panic / no-return
	// calls).
	KindPanic
)

func (k Kind) String() string {
	switch k {
	case KindEntry:
		return "entry"
	case KindExit:
		return "exit"
	case KindPanic:
		return "panic"
	}
	return "body"
}

// Block is one basic block: nodes execute in order, then control moves to
// one of Succs.
type Block struct {
	// Index is the block's position in Graph.Blocks (stable across
	// builds of the same function: blocks are numbered in creation
	// order).
	Index int
	// Kind marks the synthetic entry/exit blocks.
	Kind Kind
	// Nodes are the statements and header expressions that execute in
	// this block, in execution order. Control-flow statements contribute
	// their header parts only (an if contributes its init statement and
	// condition; the branches are separate blocks).
	Nodes []ast.Node
	// Cond, when non-nil, is the boolean expression this block branches
	// on: Succs[0] is taken when Cond is true, Succs[1] when false. Cond
	// is always also the last entry of Nodes.
	Cond ast.Expr
	// Succs are the possible successor blocks.
	Succs []*Block
	// Preds are the predecessor blocks (computed once building
	// finishes).
	Preds []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Blocks lists every block in creation order; Blocks[0] is Entry,
	// Blocks[1] Exit, Blocks[2] Panic. Blocks with no Preds (other than
	// Entry) are unreachable code.
	Blocks []*Block
	Entry  *Block
	Exit   *Block
	Panic  *Block
}

// Options tune graph construction.
type Options struct {
	// NoReturn reports whether a call expression never returns (so
	// control flows to the Panic block instead of the next statement).
	// The builtin panic(...) is always recognised; NoReturn extends the
	// set, typically with a type-aware check for os.Exit / log.Fatal /
	// runtime.Goexit.
	NoReturn func(*ast.CallExpr) bool
}

// New builds the control-flow graph of one function body. body may be
// the Body of an *ast.FuncDecl or *ast.FuncLit; nested function literals
// are not entered.
func New(body *ast.BlockStmt, opt Options) *Graph {
	b := &builder{opt: opt, labels: map[string]*labelInfo{}}
	b.g = &Graph{}
	b.g.Entry = b.newBlock(KindEntry)
	b.g.Exit = b.newBlock(KindExit)
	b.g.Panic = b.newBlock(KindPanic)
	first := b.newBlock(KindBody)
	b.edge(b.g.Entry, first)
	b.cur = first
	b.stmtList(body.List)
	b.edge(b.cur, b.g.Exit) // falling off the end returns
	for _, blk := range b.g.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return b.g
}

// labelInfo tracks one label: the block a goto jumps to, and — when the
// label names a loop/switch/select — the targets of labeled break and
// continue.
type labelInfo struct {
	target       *Block // start of the labeled statement (goto target)
	breakBlock   *Block // labeled break destination (nil until the construct is built)
	continueTo   *Block // labeled continue destination (loops only)
	used         bool
}

// frame is one enclosing breakable/continuable construct.
type frame struct {
	breakBlock *Block
	continueTo *Block // nil for switch/select (continue passes through)
	label      string // label naming this construct, if any
}

type builder struct {
	g      *Graph
	cur    *Block
	opt    Options
	frames []frame
	labels map[string]*labelInfo
	// pendingLabel is the label attached to the statement about to be
	// built, so loop builders can register labeled break/continue
	// targets.
	pendingLabel string
}

func (b *builder) newBlock(k Kind) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: k}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// edge records from -> to, deduplicating exact repeats.
func (b *builder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// terminate ends the current block (after a return/goto/break/panic) and
// starts a fresh one for whatever follows. The fresh block has no
// predecessors unless a label or join later targets it — that is exactly
// how unreachable code after a return shows up in the graph.
func (b *builder) terminate() {
	b.cur = b.newBlock(KindBody)
}

func (b *builder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// labelOf returns (creating on demand) the info for a label, so forward
// gotos can target labels not yet built.
func (b *builder) labelOf(name string) *labelInfo {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{target: b.newBlock(KindBody)}
		b.labels[name] = li
	}
	return li
}

func (b *builder) pushFrame(breakBlock, continueTo *Block) {
	f := frame{breakBlock: breakBlock, continueTo: continueTo, label: b.pendingLabel}
	if b.pendingLabel != "" {
		li := b.labelOf(b.pendingLabel)
		li.breakBlock = breakBlock
		li.continueTo = continueTo
		b.pendingLabel = ""
	}
	b.frames = append(b.frames, f)
}

func (b *builder) popFrame() { b.frames = b.frames[:len(b.frames)-1] }

// breakTarget resolves a (possibly labeled) break.
func (b *builder) breakTarget(label string) *Block {
	if label != "" {
		if li := b.labels[label]; li != nil && li.breakBlock != nil {
			return li.breakBlock
		}
		return nil
	}
	for i := len(b.frames) - 1; i >= 0; i-- {
		if b.frames[i].breakBlock != nil {
			return b.frames[i].breakBlock
		}
	}
	return nil
}

// continueTarget resolves a (possibly labeled) continue: the innermost
// frame that belongs to a loop.
func (b *builder) continueTarget(label string) *Block {
	if label != "" {
		if li := b.labels[label]; li != nil && li.continueTo != nil {
			return li.continueTo
		}
		return nil
	}
	for i := len(b.frames) - 1; i >= 0; i-- {
		if b.frames[i].continueTo != nil {
			return b.frames[i].continueTo
		}
	}
	return nil
}

// noReturn reports whether a call terminates control flow abnormally.
func (b *builder) noReturn(call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		return true
	}
	if b.opt.NoReturn != nil && b.opt.NoReturn(call) {
		return true
	}
	return false
}

// exprEndsFlow scans a simple statement's expressions for a terminating
// call (panic / no-return).
func (b *builder) stmtPanics(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false // a panic inside a closure fires in the closure
		}
		if call, ok := x.(*ast.CallExpr); ok && b.noReturn(call) {
			found = true
		}
		return !found
	})
	return found
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	// Any label attached to a non-breakable statement has no frame; a
	// pending label only survives into pushFrame for for/range/switch/
	// select, so clear it for everything else once consumed below.
	switch s := s.(type) {
	case nil:
		return
	case *ast.BlockStmt:
		b.pendingLabel = ""
		b.stmtList(s.List)
	case *ast.EmptyStmt:
		b.pendingLabel = ""
	case *ast.LabeledStmt:
		li := b.labelOf(s.Label.Name)
		b.edge(b.cur, li.target)
		b.cur = li.target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.ReturnStmt:
		b.pendingLabel = ""
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.terminate()
	case *ast.BranchStmt:
		b.pendingLabel = ""
		b.branchStmt(s)
	case *ast.IfStmt:
		b.pendingLabel = ""
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)
	case *ast.SelectStmt:
		b.selectStmt(s)
	default:
		// Simple statements: assignments, expression statements, sends,
		// declarations, defer, go, inc/dec. One node, then possibly a
		// jump to the panic exit.
		b.pendingLabel = ""
		b.add(s)
		if b.stmtPanics(s) {
			b.edge(b.cur, b.g.Panic)
			b.terminate()
		}
	}
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if t := b.breakTarget(label); t != nil {
			b.edge(b.cur, t)
		}
		b.terminate()
	case token.CONTINUE:
		if t := b.continueTarget(label); t != nil {
			b.edge(b.cur, t)
		}
		b.terminate()
	case token.GOTO:
		li := b.labelOf(label)
		li.used = true
		b.edge(b.cur, li.target)
		b.terminate()
	case token.FALLTHROUGH:
		// Handled structurally by switchStmt (the case body's last
		// statement); nothing to do here.
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	b.stmt(s.Init)
	b.add(s.Cond)
	condBlock := b.cur
	condBlock.Cond = s.Cond
	then := b.newBlock(KindBody)
	after := b.newBlock(KindBody)
	b.edge(condBlock, then)
	if s.Else != nil {
		elseB := b.newBlock(KindBody)
		b.edge(condBlock, elseB)
		b.cur = elseB
		b.stmt(s.Else)
		b.edge(b.cur, after)
	} else {
		b.edge(condBlock, after)
	}
	b.cur = then
	b.stmtList(s.Body.List)
	b.edge(b.cur, after)
	b.cur = after
}

func (b *builder) forStmt(s *ast.ForStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	b.stmt(s.Init)
	head := b.newBlock(KindBody)
	b.edge(b.cur, head)
	body := b.newBlock(KindBody)
	after := b.newBlock(KindBody)
	// continue goes to the post statement when there is one, else to the
	// condition re-test.
	contTo := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock(KindBody)
		contTo = post
	}
	b.cur = head
	if s.Cond != nil {
		b.add(s.Cond)
		head.Cond = s.Cond
		b.edge(head, body)
		b.edge(head, after)
	} else {
		// for {}: the only way out is break/return.
		b.edge(head, body)
	}
	b.pendingLabel = label
	b.pushFrame(after, contTo)
	b.cur = body
	b.stmtList(s.Body.List)
	b.edge(b.cur, contTo)
	b.popFrame()
	if post != nil {
		b.cur = post
		b.stmt(s.Post)
		b.edge(b.cur, head)
	}
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	head := b.newBlock(KindBody)
	b.edge(b.cur, head)
	b.cur = head
	b.add(s.X)
	body := b.newBlock(KindBody)
	after := b.newBlock(KindBody)
	// Succs[0] = "another element" (body), Succs[1] = exhausted (after);
	// there is no boolean Cond to refine on.
	b.edge(head, body)
	b.edge(head, after)
	b.pendingLabel = label
	b.pushFrame(after, head)
	b.cur = body
	b.stmtList(s.Body.List)
	b.edge(b.cur, head)
	b.popFrame()
	b.cur = after
}

func (b *builder) switchStmt(s *ast.SwitchStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	b.stmt(s.Init)
	if s.Tag != nil {
		b.add(s.Tag)
	}
	head := b.cur
	after := b.newBlock(KindBody)
	b.pendingLabel = label
	b.pushFrame(after, nil)
	b.caseClauses(s.Body, head, after, func(cc *ast.CaseClause) []ast.Node {
		nodes := make([]ast.Node, 0, len(cc.List))
		for _, e := range cc.List {
			nodes = append(nodes, e)
		}
		return nodes
	})
	b.popFrame()
	b.cur = after
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	b.stmt(s.Init)
	b.add(s.Assign)
	head := b.cur
	after := b.newBlock(KindBody)
	b.pendingLabel = label
	b.pushFrame(after, nil)
	b.caseClauses(s.Body, head, after, func(*ast.CaseClause) []ast.Node { return nil })
	b.popFrame()
	b.cur = after
}

// caseClauses wires the shared switch/type-switch shape: every case body
// is a successor of the head; a missing default adds a direct head→after
// edge; a trailing fallthrough chains into the next case's body.
func (b *builder) caseClauses(body *ast.BlockStmt, head, after *Block, headerNodes func(*ast.CaseClause) []ast.Node) {
	var clauses []*ast.CaseClause
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock(KindBody)
		b.edge(head, blocks[i])
	}
	hasDefault := false
	for i, cc := range clauses {
		if cc.List == nil {
			hasDefault = true
		}
		b.cur = blocks[i]
		for _, n := range headerNodes(cc) {
			b.add(n)
		}
		fallsThrough := false
		stmts := cc.Body
		if n := len(stmts); n > 0 {
			if br, ok := stmts[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				stmts = stmts[:n-1]
			}
		}
		b.stmtList(stmts)
		if fallsThrough && i+1 < len(blocks) {
			b.edge(b.cur, blocks[i+1])
			b.terminate()
		} else {
			b.edge(b.cur, after)
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	head := b.cur
	after := b.newBlock(KindBody)
	b.pendingLabel = label
	b.pushFrame(after, nil)
	any := false
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		any = true
		clause := b.newBlock(KindBody)
		b.edge(head, clause)
		b.cur = clause
		b.stmt(cc.Comm)
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	b.popFrame()
	// A select with no default still has every clause as a successor
	// (one eventually fires); `select {}` has none and blocks forever,
	// which the graph reflects as a block with no path to Exit.
	_ = any
	b.cur = after
}

// Reachable reports whether to is reachable from from along Succs edges.
func (g *Graph) Reachable(from, to *Block) bool {
	seen := make([]bool, len(g.Blocks))
	stack := []*Block{from}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if blk == to {
			return true
		}
		if seen[blk.Index] {
			continue
		}
		seen[blk.Index] = true
		stack = append(stack, blk.Succs...)
	}
	return false
}

// Edges renders every edge as "i->j" strings in deterministic order —
// the test suite's structural fingerprint of a graph.
func (g *Graph) Edges() []string {
	var out []string
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			out = append(out, fmt.Sprintf("%d->%d", blk.Index, s.Index))
		}
	}
	return out
}

// String renders the graph for debugging: one line per block with kind,
// node count, branch marker and successor list.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d(%s)", blk.Index, blk.Kind)
		if len(blk.Nodes) > 0 {
			fmt.Fprintf(&sb, " n=%d", len(blk.Nodes))
		}
		if blk.Cond != nil {
			sb.WriteString(" branch")
		}
		if len(blk.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range blk.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
