package lint

import (
	"go/ast"
	"go/types"

	"geostat/internal/lint/analysis"
)

// Shared call-graph plumbing for the fact-producing analyzers: resolving
// the static callee of a call expression and naming functions for the
// curated stdlib behaviour tables.

// staticCallee resolves call to the *types.Func it invokes when that is
// statically known: package-level functions (possibly qualified) and
// methods called on concrete receivers. Calls through function values and
// interface methods return nil — fact analyzers treat them as unknown.
func staticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			// An interface method has no body to have computed facts for;
			// treat it as dynamic.
			if recv := sel.Recv(); recv != nil {
				if _, isIface := recv.Underlying().(*types.Interface); isIface {
					return nil
				}
			}
			return fn
		}
		// No selection entry: a package-qualified call (pkg.F).
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// funcKey names fn for lookup in the stdlib behaviour tables:
// "time.Sleep" for package functions, "(sync.WaitGroup).Wait" for methods
// (pointer receivers are collapsed onto the named type).
func funcKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
			return "(" + named.Obj().Pkg().Path() + "." + named.Obj().Name() + ")." + fn.Name()
		}
		return "(" + t.String() + ")." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// funcInfo pairs a declared function with its object. Collected in file
// and declaration order so fact fixpoints iterate deterministically.
type funcInfo struct {
	fn   *types.Func
	decl *ast.FuncDecl
}

// packageFuncs returns every function/method declared with a body in the
// pass's package, in source order.
func packageFuncs(pass *analysis.Pass) []funcInfo {
	var out []funcInfo
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			out = append(out, funcInfo{fn: fn, decl: fd})
		}
	}
	return out
}

// enclosingFuncs walks file invoking visit for every node along with the
// innermost enclosing function-like node (*ast.FuncDecl or *ast.FuncLit;
// nil at file scope). Used by analyzers whose rules depend on what
// function a node appears in.
func enclosingFuncs(file *ast.File, visit func(n ast.Node, encl ast.Node)) {
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil { // leaving the node pushed last
			stack = stack[:len(stack)-1]
			return true
		}
		var encl ast.Node
		for i := len(stack) - 1; i >= 0; i-- {
			if stack[i] != nil {
				encl = stack[i]
				break
			}
		}
		visit(n, encl)
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			stack = append(stack, n)
		default:
			stack = append(stack, nil)
		}
		return true
	})
}
