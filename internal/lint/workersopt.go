package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"geostat/internal/lint/analysis"
)

// WorkersOpt guards the engine-threading contract of the options API:
// every exported entry point that accepts a worker count — either a
// `Workers` field on an options struct or a `workers int` parameter —
// must actually consume it (read the field, use the parameter, or forward
// the options/parameter to a callee that does). An accepted-but-ignored
// Workers option is an API lie: callers believe they bounded or widened
// the parallelism of a statistic when they did not, and a serial fallback
// silently masks engine regressions.
var WorkersOpt = &analysis.Analyzer{
	Name: "workersopt",
	Doc: "flags exported functions that accept a Workers option or workers " +
		"parameter without threading it onward (to parallel.* or a callee)",
	Run: runWorkersOpt,
}

func runWorkersOpt(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			checkWorkersFunc(pass, fd)
		}
	}
	return nil
}

func checkWorkersFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			switch {
			case name.Name == "workers" && isIntType(obj.Type()):
				if !paramThreaded(pass, fd, obj, false) {
					pass.Reportf(name.Pos(), "%s accepts a workers parameter but never uses it; thread it into a parallel.For*/MonteCarlo call or a callee", fd.Name.Name)
				}
			case hasWorkersField(obj.Type()):
				if !paramThreaded(pass, fd, obj, true) {
					pass.Reportf(name.Pos(), "%s accepts %s with a Workers field but neither reads .Workers nor forwards the options; the worker count is silently ignored", fd.Name.Name, name.Name)
				}
			}
		}
	}
}

// hasWorkersField reports whether t (possibly a pointer) is a struct with
// a Workers field.
func hasWorkersField(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "Workers" {
			return true
		}
	}
	return false
}

func isIntType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// paramThreaded reports whether the parameter (or a local alias assigned
// from it) is consumed inside the body: any use for plain parameters; a
// .Workers selector or whole-value forwarding (call argument, return,
// composite literal entry, alias assignment) for options structs.
func paramThreaded(pass *analysis.Pass, fd *ast.FuncDecl, param types.Object, optsStruct bool) bool {
	aliases := map[types.Object]bool{param: true}
	// Fixpoint over `x := opt` style aliases so copies that are later
	// consumed count as threading.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				id, ok := rhs.(*ast.Ident)
				if !ok || i >= len(as.Lhs) {
					continue
				}
				if !aliases[pass.TypesInfo.ObjectOf(id)] {
					continue
				}
				lid, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				lobj := pass.TypesInfo.ObjectOf(lid)
				if lobj != nil && !aliases[lobj] {
					aliases[lobj] = true
					changed = true
				}
			}
			return true
		})
	}

	threaded := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if threaded {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if id, ok := n.X.(*ast.Ident); ok && aliases[pass.TypesInfo.ObjectOf(id)] {
				if !optsStruct || n.Sel.Name == "Workers" {
					threaded = true
					return false
				}
				// A method call on the options value counts: the method
				// body is free to read .Workers (e.g. cfg.workers()).
				if _, isMethod := pass.TypesInfo.Uses[n.Sel].(*types.Func); isMethod {
					threaded = true
					return false
				}
			}
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[n]
			if obj == nil || !aliases[obj] {
				return true
			}
			if !optsStruct {
				// Any use of a plain workers parameter counts.
				threaded = true
				return false
			}
			if forwardedWhole(pass, fd, n) {
				threaded = true
				return false
			}
		}
		return true
	})
	return threaded
}

// forwardedWhole reports whether the identifier use appears where the
// whole options value escapes this function's control: as a call argument
// (possibly behind & or a selector-free conversion), in a return
// statement, or as a composite-literal element.
func forwardedWhole(pass *analysis.Pass, fd *ast.FuncDecl, id *ast.Ident) bool {
	path := nodePath(fd.Body, id.Pos())
	// Walk outward from the identifier: stop at the first context that
	// decides the question.
	for i := len(path) - 2; i >= 0; i-- {
		switch parent := path[i].(type) {
		case *ast.UnaryExpr, *ast.ParenExpr:
			continue
		case *ast.SelectorExpr:
			return false // opt.Field — field access, not whole-value forwarding
		case *ast.CallExpr:
			for _, arg := range parent.Args {
				if containsPos(arg, id.Pos()) {
					return true
				}
			}
			return false
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr:
			return true
		default:
			return false
		}
	}
	return false
}

// nodePath returns the chain of nodes from root down to the node whose
// position is pos.
func nodePath(root ast.Node, pos token.Pos) []ast.Node {
	var path []ast.Node
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if n == nil || pos < n.Pos() || pos >= n.End() {
			return false
		}
		path = append(path, n)
		return true
	}
	ast.Inspect(root, walk)
	return path
}

func containsPos(n ast.Node, pos token.Pos) bool {
	return n.Pos() <= pos && pos < n.End()
}
