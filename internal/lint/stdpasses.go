package lint

// Stdlib-only reimplementations of the curated vet passes geolint fronts:
// shadow, copylocks, loopclosure, unusedresult. They follow the classic
// x/tools analyzers in spirit but are implemented against go/ast+go/types
// directly (the repository takes no external dependencies). Each is
// deliberately conservative: a miss is acceptable, a noisy false positive
// is not, because `make lint` must stay exit-0 on a healthy tree.

import (
	"go/ast"
	"go/token"
	"go/types"

	"geostat/internal/lint/analysis"
)

// ---- shadow ----

// Shadow flags an inner := that redeclares a variable of an enclosing
// function scope with an identical type, where the outer variable is used
// again after the shadowing scope closes — the footgun where a result or
// err assigned inside a block is silently a different variable.
var Shadow = &analysis.Analyzer{
	Name: "shadow",
	Doc: "flags declarations that shadow an outer variable of the same type " +
		"which is still used after the inner scope ends",
	Run: runShadow,
}

func runShadow(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.DEFINE {
				return true
			}
			for _, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				inner := pass.TypesInfo.Defs[id]
				if inner == nil {
					continue
				}
				checkShadow(pass, f, id, inner)
			}
			return true
		})
	}
	return nil
}

func checkShadow(pass *analysis.Pass, f *ast.File, id *ast.Ident, inner types.Object) {
	innerScope := inner.Parent()
	if innerScope == nil {
		return
	}
	// Find what the same name resolves to just outside the declaration.
	outerScope := innerScope.Parent()
	if outerScope == nil {
		return
	}
	scope, outer := outerScope.LookupParent(id.Name, id.Pos())
	if outer == nil || scope == types.Universe || outer.Parent() == pass.Pkg.Scope() {
		return // no shadowing, a builtin, or a package-level name (config, not a local footgun)
	}
	ov, ok := outer.(*types.Var)
	if !ok || !types.Identical(ov.Type(), inner.Type()) {
		return
	}
	// Only report when the outer variable is used after the inner scope
	// ends — that is where reads silently miss the inner assignment.
	end := innerScope.End()
	for useID, useObj := range pass.TypesInfo.Uses {
		if useObj == outer && useID.Pos() > end {
			pass.Reportf(id.Pos(), "declaration of %q shadows a variable of the same type at %s which is used again after this scope",
				id.Name, pass.Fset.Position(outer.Pos()))
			return
		}
	}
}

// ---- copylocks ----

// CopyLocks flags copies of values whose type (transitively) contains a
// sync lock: by-value function parameters and results, plain value
// assignments from existing values, and range-over-slice element copies.
var CopyLocks = &analysis.Analyzer{
	Name: "copylocks",
	Doc:  "flags by-value copies of types containing sync.Mutex/RWMutex/WaitGroup/Once/Cond",
	Run:  runCopyLocks,
}

func runCopyLocks(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Type.Params != nil {
					for _, field := range n.Type.Params.List {
						if tv, ok := pass.TypesInfo.Types[field.Type]; ok && containsLock(tv.Type) {
							pass.Reportf(field.Type.Pos(), "function passes a lock by value: %s contains a sync primitive; use a pointer", tv.Type)
						}
					}
				}
			case *ast.AssignStmt:
				if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
					return true
				}
				for _, rhs := range n.Rhs {
					// Composite literals and calls build fresh values; only
					// copying an existing variable duplicates a held lock.
					switch rhs.(type) {
					case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
						if tv, ok := pass.TypesInfo.Types[rhs]; ok && containsLock(tv.Type) {
							pass.Reportf(rhs.Pos(), "assignment copies a lock value: %s contains a sync primitive", tv.Type)
						}
					}
				}
			case *ast.RangeStmt:
				if n.Value == nil {
					return true
				}
				// With := the value is a defining ident, recorded in Defs
				// rather than Types.
				var typ types.Type
				if tv, ok := pass.TypesInfo.Types[n.Value]; ok {
					typ = tv.Type
				} else if id, ok := n.Value.(*ast.Ident); ok {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						typ = obj.Type()
					}
				}
				if typ != nil && containsLock(typ) {
					pass.Reportf(n.Value.Pos(), "range copies a lock value per element: %s contains a sync primitive", typ)
				}
			}
			return true
		})
	}
	return nil
}

var lockTypeNames = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true, "Cond": true,
}

// containsLock reports whether t holds a sync lock by value (directly or
// through nested structs/arrays).
func containsLock(t types.Type) bool {
	return containsLockRec(t, map[types.Type]bool{})
}

func containsLockRec(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockTypeNames[obj.Name()] {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockRec(u.Elem(), seen)
	}
	return false
}

// ---- loopclosure ----

// LoopClosure flags go/defer function literals inside a loop that capture
// the loop's iteration variables. Go ≥1.22 gives range variables
// per-iteration semantics, so the classic capture bug cannot bite — but a
// deferred closure over an iteration variable still runs long after the
// loop (function exit), which in this codebase is almost always a mistake
// worth spelling out explicitly.
var LoopClosure = &analysis.Analyzer{
	Name: "loopclosure",
	Doc:  "flags go/defer closures inside loops that capture iteration variables",
	Run:  runLoopClosure,
}

func runLoopClosure(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var vars []types.Object
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.RangeStmt:
				for _, e := range []ast.Expr{n.Key, n.Value} {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							vars = append(vars, obj)
						}
					}
				}
				body = n.Body
			case *ast.ForStmt:
				if init, ok := n.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
					for _, lhs := range init.Lhs {
						if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
							if obj := pass.TypesInfo.Defs[id]; obj != nil {
								vars = append(vars, obj)
							}
						}
					}
				}
				body = n.Body
			default:
				return true
			}
			if len(vars) == 0 || body == nil {
				return true
			}
			ast.Inspect(body, func(inner ast.Node) bool {
				var lit *ast.FuncLit
				switch s := inner.(type) {
				case *ast.GoStmt:
					lit, _ = s.Call.Fun.(*ast.FuncLit)
				case *ast.DeferStmt:
					lit, _ = s.Call.Fun.(*ast.FuncLit)
				}
				if lit == nil {
					return true
				}
				ast.Inspect(lit.Body, func(x ast.Node) bool {
					id, ok := x.(*ast.Ident)
					if !ok {
						return true
					}
					use := pass.TypesInfo.Uses[id]
					for _, v := range vars {
						if use == v {
							pass.Reportf(id.Pos(), "go/defer closure captures loop variable %q; pass it as an argument", id.Name)
							return true
						}
					}
					return true
				})
				return true
			})
			return true
		})
	}
	return nil
}

// ---- unusedresult ----

// UnusedResult flags calls whose only effect is their return value when
// that value is discarded — a silently dropped error message or a pure
// computation thrown away.
var UnusedResult = &analysis.Analyzer{
	Name: "unusedresult",
	Doc:  "flags discarded results of pure functions (fmt.Sprintf, errors.New, strings/strconv/sort helpers)",
	Run:  runUnusedResult,
}

// pureFuncs maps package path to the package-level functions whose result
// is the entire point of calling them.
var pureFuncs = map[string]map[string]bool{
	"fmt":     {"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true},
	"errors":  {"New": true, "Join": true, "Unwrap": true, "Is": true, "As": true},
	"strings": {"ToUpper": true, "ToLower": true, "TrimSpace": true, "Trim": true, "TrimPrefix": true, "TrimSuffix": true, "Repeat": true, "Replace": true, "ReplaceAll": true, "Join": true, "Split": true, "Fields": true, "Contains": true, "HasPrefix": true, "HasSuffix": true},
	"strconv": {"Itoa": true, "Atoi": true, "FormatFloat": true, "ParseFloat": true, "Quote": true},
	"sort":    {"Reverse": true, "SliceIsSorted": true, "IsSorted": true},
	"maps":    {"Keys": true, "Values": true, "Clone": true},
	"slices":  {"Clone": true, "Sorted": true, "Contains": true, "Index": true, "Max": true, "Min": true},
}

func runUnusedResult(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			if set, ok := pureFuncs[fn.Pkg().Path()]; ok && set[fn.Name()] {
				pass.Reportf(call.Pos(), "result of %s.%s is discarded", fn.Pkg().Path(), fn.Name())
			}
			return true
		})
	}
	return nil
}
