package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"geostat/internal/lint/analysis"
)

// ResultsEntropy is exported for every function whose return values are
// (transitively) derived from an entropy source: wall-clock time, the
// unseeded global rand, crypto/rand, the process id, or map iteration
// order. detflow turns the fact into a diagnostic when such a function is
// exported from one of the statistic packages, whose results must be
// bit-identical across runs and worker counts.
type ResultsEntropy struct {
	// Source describes the entropy origin ("time.Now", "map iteration
	// order", "call to pkg.F (time.Now)", ...).
	Source string
}

// AFact marks ResultsEntropy as a fact type.
func (*ResultsEntropy) AFact() {}

// DetFlow is a flow-insensitive taint analysis: entropy sources taint
// the values assigned from them, taint propagates through expressions,
// assignments, conversions, append, and range statements, and a tainted
// value reaching a return statement taints the function (exported as the
// ResultsEntropy fact, cross-package). Exported functions of the guarded
// statistic packages must not be tainted.
//
// Deliberate design points, tuned against this codebase:
//   - A *rand.Rand drawn from is NOT a source: seeded sources threaded
//     through options are the sanctioned randomness (seededrand guards
//     their construction). Only math/rand package-level draws (the
//     global unseeded source) taint.
//   - Map-iteration-order taint (appending inside range-over-map) is
//     cleansed by a subsequent sort.*/slices.Sort* call on the slice;
//     time-based taint is not cleansable.
//   - Results of type error, context.Context, or any internal/obs type
//     are exempt: timing observability legitimately carries wall-clock
//     values, and error text may embed timestamps.
//   - Calls through function values and interface methods are invisible
//     (documented under-approximation).
var DetFlow = &analysis.Analyzer{
	Name: "detflow",
	Doc: "entropy (time.Now, unseeded rand, map iteration order) must not flow " +
		"into exported results of the statistic packages",
	FactTypes: []analysis.Fact{(*ResultsEntropy)(nil)},
	Run:       runDetFlow,
}

// detflowGuarded are the packages whose exported results must be
// deterministic. Fixture packages under fixture/detflow* opt in so the
// analyzer is testable.
var detflowGuarded = map[string]bool{
	"geostat/internal/kde":      true,
	"geostat/internal/kfunc":    true,
	"geostat/internal/idw":      true,
	"geostat/internal/kriging":  true,
	"geostat/internal/moran":    true,
	"geostat/internal/getisord": true,
	"geostat/internal/dataset":  true,
}

func detflowGuardedPkg(path string) bool {
	return detflowGuarded[path] || strings.HasPrefix(path, "fixture/detflow")
}

// entropySource classifies fn as a direct entropy source, returning a
// description or "".
func entropySource(fn *types.Func) string {
	key := funcKey(fn)
	switch key {
	case "time.Now", "time.Since", "time.Until", "os.Getpid":
		return key
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil
	switch pkg.Path() {
	case "math/rand", "math/rand/v2":
		// Package-level draws use the global unseeded source. Methods on
		// *rand.Rand are deterministic given a seeded source, and
		// constructors return sources rather than entropy.
		if isMethod {
			return ""
		}
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return ""
		}
		return key
	case "crypto/rand":
		return key
	}
	return ""
}

func runDetFlow(pass *analysis.Pass) error {
	infos := packageFuncs(pass)
	index := make(map[*types.Func]int, len(infos))
	for i, fi := range infos {
		index[fi.fn] = i
	}
	// entropy[i] non-empty = function i's results carry entropy.
	entropy := make([]string, len(infos))

	// Same-package fixpoint: a call to a tainted same-package function is
	// itself a source, so re-run per-function taint until stable.
	for changed := true; changed; {
		changed = false
		for i, fi := range infos {
			if entropy[i] != "" {
				continue
			}
			src := functionEntropy(pass, fi, func(fn *types.Func) string {
				if j, ok := index[fn]; ok {
					return entropy[j]
				}
				var re ResultsEntropy
				if pass.ImportObjectFact(fn, &re) {
					return re.Source
				}
				return ""
			})
			if src != "" {
				entropy[i] = src
				changed = true
			}
		}
	}

	for i, fi := range infos {
		if entropy[i] == "" {
			continue
		}
		pass.ExportObjectFact(fi.fn, &ResultsEntropy{Source: entropy[i]})
		if detflowGuardedPkg(pass.PkgPath) && fi.decl.Name.IsExported() {
			pass.Reportf(fi.decl.Name.Pos(),
				"exported %s returns a value derived from %s; statistic results must be deterministic — thread a seeded source or take the value as a parameter",
				fi.decl.Name.Name, entropy[i])
		}
	}
	return nil
}

const mapOrderSource = "map iteration order"

// functionEntropy runs the per-function taint pass and returns a source
// description if a tainted value reaches a (non-exempt) result, or "".
// calleeEntropy resolves the taint status of called module functions.
func functionEntropy(pass *analysis.Pass, fi funcInfo, calleeEntropy func(*types.Func) string) string {
	sig, _ := fi.fn.Type().(*types.Signature)
	if sig == nil || sig.Results().Len() == 0 {
		return ""
	}

	tainted := make(map[types.Object]string)
	taintOf := func(e ast.Expr) string { return exprTaint(pass, e, tainted, calleeEntropy) }

	// Named results participate like ordinary variables; a naked return
	// returns whatever they hold.
	var namedResults []types.Object
	if fi.decl.Type.Results != nil {
		for _, field := range fi.decl.Type.Results.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					namedResults = append(namedResults, obj)
				}
			}
		}
	}

	// Flow-insensitive assignment fixpoint over the body (excluding
	// nested function literals, which are separate functions). cleansed
	// records slices a sort call has ordered: once sorted, map-order
	// taint can never re-attach, which keeps the fixpoint monotone (the
	// cleanse would otherwise oscillate with the range-append mark).
	cleansed := make(map[types.Object]bool)
	for changed := true; changed; {
		changed = false
		mark := func(obj types.Object, src string) {
			if obj == nil || src == "" || tainted[obj] != "" {
				return
			}
			if cleansed[obj] && strings.HasPrefix(src, mapOrderSource) {
				return
			}
			if exemptTaintType(obj.Type()) {
				return
			}
			tainted[obj] = src
			changed = true
		}
		walkOwn(fi.decl.Body, func(n ast.Node) {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
					if src := taintOf(n.Rhs[0]); src != "" {
						for _, lhs := range n.Lhs {
							mark(assignTarget(pass, lhs), src)
						}
					}
					return
				}
				for i, lhs := range n.Lhs {
					if i < len(n.Rhs) {
						if src := taintOf(n.Rhs[i]); src != "" {
							mark(assignTarget(pass, lhs), src)
						}
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					var src string
					if len(n.Values) == 1 && len(n.Names) > 1 {
						src = taintOf(n.Values[0])
					} else if i < len(n.Values) {
						src = taintOf(n.Values[i])
					}
					if src != "" {
						mark(pass.TypesInfo.Defs[name], src)
					}
				}
			case *ast.RangeStmt:
				src := taintOf(n.X)
				isMap := false
				if t := pass.TypesInfo.TypeOf(n.X); t != nil {
					_, isMap = t.Underlying().(*types.Map)
				}
				if src != "" {
					mark(assignTarget(pass, n.Key), src)
					mark(assignTarget(pass, n.Value), src)
				}
				if isMap {
					// Appending to an outer slice while ranging a map bakes
					// the iteration order into the slice.
					markMapOrderAppends(pass, n, func(obj types.Object) { mark(obj, mapOrderSource) })
				}
			case *ast.ExprStmt:
				// sort.X(s) cleanses map-order taint from s: the order no
				// longer depends on iteration.
				if call, ok := n.X.(*ast.CallExpr); ok {
					if obj := sortedArg(pass, call); obj != nil && !cleansed[obj] {
						cleansed[obj] = true
						if strings.HasPrefix(tainted[obj], mapOrderSource) {
							delete(tainted, obj)
						}
						changed = true // re-run: marks blocked by cleansing settle
					}
				}
			}
		})
	}

	// Any explicit return with a tainted, non-exempt result value?
	found := ""
	walkOwn(fi.decl.Body, func(n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || found != "" {
			return
		}
		if len(ret.Results) == 0 {
			// Naked return: named results carry whatever they hold.
			for _, obj := range namedResults {
				if src := tainted[obj]; src != "" {
					found = src
					return
				}
			}
			return
		}
		for i, res := range ret.Results {
			if i < sig.Results().Len() && exemptTaintType(sig.Results().At(i).Type()) {
				continue
			}
			if src := taintOf(res); src != "" {
				found = src
				return
			}
		}
	})
	return found
}

// walkOwn visits every node of body except nested function literals.
func walkOwn(body ast.Node, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// exprTaint reports the entropy source reaching expression e, or "".
// Over-approximate: any tainted identifier or source call anywhere in the
// expression (outside nested function literals) taints the whole value.
func exprTaint(pass *analysis.Pass, e ast.Expr, tainted map[types.Object]string, calleeEntropy func(*types.Func) string) string {
	found := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[n]; obj != nil {
				if src := tainted[obj]; src != "" {
					found = src
				}
			}
		case *ast.CallExpr:
			fn := staticCallee(pass, n)
			if fn == nil {
				return true // conversions and dynamic calls: taint via arguments
			}
			if src := entropySource(fn); src != "" {
				found = src
				return false
			}
			if src := calleeEntropy(fn); src != "" {
				found = "call to " + funcKey(fn) + " (" + src + ")"
				return false
			}
			// A call to an untainted function scrubs its arguments' taint
			// only for its own result — but arguments may still appear
			// elsewhere; keep walking them.
		}
		return true
	})
	return found
}

// assignTarget resolves the object an assignment writes through: plain
// identifiers, or the root identifier of an index/selector/star chain
// (writing a tainted value into s[i] or x.f taints the container).
func assignTarget(pass *analysis.Pass, lhs ast.Expr) types.Object {
	if lhs == nil {
		return nil
	}
	if id, ok := lhs.(*ast.Ident); ok {
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			return obj
		}
		return pass.TypesInfo.Uses[id]
	}
	return rootObj(pass, lhs)
}

// markMapOrderAppends taints slices appended to (from outside the range
// body) while ranging over a map.
func markMapOrderAppends(pass *analysis.Pass, rng *ast.RangeStmt, mark func(types.Object)) {
	walkOwn(rng.Body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass, call) || i >= len(as.Lhs) {
				continue
			}
			mark(assignTarget(pass, as.Lhs[i]))
		}
	})
}

// sortedArg recognises sort.*/slices.Sort* calls and returns the root
// object of the first argument (the slice being sorted).
func sortedArg(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	fn := staticCallee(pass, call)
	if fn == nil || fn.Pkg() == nil || len(call.Args) == 0 {
		return nil
	}
	switch fn.Pkg().Path() {
	case "sort":
		// Every sort.X that takes the data as first argument qualifies
		// (Sort, Stable, Slice, SliceStable, Strings, Ints, Float64s).
		if strings.HasPrefix(fn.Name(), "Search") {
			return nil
		}
	case "slices":
		if !strings.HasPrefix(fn.Name(), "Sort") {
			return nil
		}
	default:
		return nil
	}
	return rootObj(pass, call.Args[0])
}

// exemptTaintType reports whether t never counts as tainted output:
// error values, contexts, and observability types legitimately carry
// wall-clock data.
func exemptTaintType(t types.Type) bool {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() == nil {
			return obj.Name() == "error"
		}
		if obj.Pkg().Path() == "context" && obj.Name() == "Context" {
			return true
		}
		if strings.HasSuffix(obj.Pkg().Path(), "internal/obs") {
			return true
		}
		return false
	}
	if t == types.Universe.Lookup("error").Type() {
		return true
	}
	if iface, ok := t.(*types.Interface); ok {
		return iface == types.Universe.Lookup("error").Type().Underlying()
	}
	return false
}
