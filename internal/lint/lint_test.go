package lint_test

import (
	"path/filepath"
	"testing"

	"geostat/internal/lint"
	"geostat/internal/lint/analysistest"
)

// TestAnalyzerFixtures runs every analyzer over its fixture package under
// testdata/src/<name>, which contains both flagged cases (annotated with
// `// want`) and allowed cases (including //lint:allow suppressions).
func TestAnalyzerFixtures(t *testing.T) {
	for _, a := range lint.Analyzers() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			t.Parallel()
			analysistest.Run(t, a, filepath.Join("testdata", "src", a.Name))
		})
	}
}

func TestLookup(t *testing.T) {
	if _, ok := lint.Lookup("seededrand"); !ok {
		t.Error("seededrand not registered")
	}
	if _, ok := lint.Lookup("nosuchpass"); ok {
		t.Error("unknown analyzer resolved")
	}
}
