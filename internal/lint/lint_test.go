package lint_test

import (
	"path/filepath"
	"testing"

	"geostat/internal/lint"
	"geostat/internal/lint/analysistest"
)

// TestAnalyzerFixtures runs every analyzer over its fixture package under
// testdata/src/<name>, which contains both flagged cases (annotated with
// `// want`) and allowed cases (including //lint:allow suppressions).
func TestAnalyzerFixtures(t *testing.T) {
	for _, a := range lint.Analyzers() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			t.Parallel()
			analysistest.Run(t, a, filepath.Join("testdata", "src", a.Name))
		})
	}
}

// TestCrossPackageFactFixtures runs the two-package fact fixtures: the
// producing package exports a fact (MayBlock, ResultsEntropy) that the
// consuming package's diagnostics depend on. A regression here means
// facts stopped crossing package boundaries.
func TestCrossPackageFactFixtures(t *testing.T) {
	cases := []struct {
		analyzer string
		dir      string
	}{
		{"locksafe", "locksafe_xpkg"},
		{"detflow", "detflow_xpkg"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.dir, func(t *testing.T) {
			t.Parallel()
			a, ok := lint.Lookup(tc.analyzer)
			if !ok {
				t.Fatalf("analyzer %q not registered", tc.analyzer)
			}
			analysistest.Run(t, a, filepath.Join("testdata", "src", tc.dir))
		})
	}
}

// TestAllowStatementExtent is the regression test for //lint:allow
// coverage of multi-line statements: a directive attached to a
// composite-literal return suppresses diagnostics on every line of the
// statement, while control-flow statements keep the narrow two-line
// rule.
func TestAllowStatementExtent(t *testing.T) {
	t.Parallel()
	a, ok := lint.Lookup("floateq")
	if !ok {
		t.Fatal("floateq not registered")
	}
	analysistest.Run(t, a, filepath.Join("testdata", "src", "allowstmt"))
}

func TestLookup(t *testing.T) {
	if _, ok := lint.Lookup("seededrand"); !ok {
		t.Error("seededrand not registered")
	}
	if _, ok := lint.Lookup("nosuchpass"); ok {
		t.Error("unknown analyzer resolved")
	}
}
