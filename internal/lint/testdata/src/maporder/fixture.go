// Fixture for the maporder analyzer: appends and order-sensitive
// accumulation driven by map iteration are flagged; order-independent
// folds are not.
package fixture

import "sort"

func flagged(m map[string]float64) ([]string, float64, string) {
	var keys []string
	var sum float64
	var joined string
	for k, v := range m {
		keys = append(keys, k) // want `append to "keys" inside map iteration`
		sum += v               // want `float accumulation into "sum" inside map iteration`
		joined += k            // want `string concatenation into "joined" inside map iteration`
	}
	return keys, sum, joined
}

func allowed(m map[string]float64) (int, []string) {
	// Integer counting is exact, hence order-independent.
	n := 0
	for range m {
		n++
	}
	// Local accumulators declared inside the loop restart every
	// iteration; no cross-iteration order dependence.
	for k := range m {
		var local []string
		local = append(local, k)
		_ = local
	}
	// The sanctioned pattern: collect, then sort before use. The append
	// itself still trips the analyzer, so it carries the suppression the
	// real code would need.
	var keys []string
	for k := range m {
		keys = append(keys, k) //lint:allow maporder keys are sorted before use
	}
	sort.Strings(keys)
	return n, keys
}
