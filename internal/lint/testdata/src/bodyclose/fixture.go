// Package bodyclose exercises the path-sensitive response-body analysis:
// leaks on early returns, error-guard refinement (err != nil paths carry
// no response), draining without closing, escapes via return and struct
// field, and //lint:allow suppression.
package bodyclose

import (
	"io"
	"net/http"
)

type session struct {
	resp *http.Response
}

func leakOnEarlyReturn(c *http.Client, url string, cond bool) error {
	resp, err := c.Get(url) // want `response body from \(net/http\.Client\)\.Get is not closed on every path`
	if err != nil {
		return err
	}
	if cond {
		return nil // leaks the connection
	}
	return resp.Body.Close()
}

// drainWithoutClose pins that reading the body (a derived selector as a
// call argument) does NOT discharge the obligation.
func drainWithoutClose(c *http.Client, url string) error {
	resp, err := c.Get(url) // want `response body from \(net/http\.Client\)\.Get is not closed on every path`
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

func closedOnAllPaths(c *http.Client, url string, cond bool) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	if cond {
		resp.Body.Close()
		return nil
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.Body.Close()
}

func deferRelease(c *http.Client, url string) ([]byte, error) {
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

func nilGuard(c *http.Client, url string) {
	resp, _ := c.Get(url)
	if resp == nil {
		return // nothing was acquired on this path
	}
	resp.Body.Close()
}

func escapeViaReturn(c *http.Client, url string) (*http.Response, error) {
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	return resp, nil // caller owns the body now
}

func escapeViaField(s *session, c *http.Client, url string) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	s.resp = resp
	return nil
}

func discarded(c *http.Client, url string) {
	_, _ = c.Get(url) // want `response body from \(net/http\.Client\)\.Get is discarded`
}

func suppressed(c *http.Client, url string) error {
	//lint:allow bodyclose fixture demonstrates a justified suppression
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	_ = resp
	return nil
}
