// Fixture for the shadow analyzer: a := redeclaration that hides a
// same-type outer variable which is still used afterwards is flagged.
package fixture

import "strconv"

func flagged(s string) error {
	n, err := strconv.Atoi(s)
	if n > 0 {
		m, err := strconv.Atoi(s + "0") // want `declaration of "err" shadows a variable of the same type`
		_ = m
		_ = err
	}
	return err // the outer err — the shadow above lost any assignment to it
}

func allowed(s string) error {
	// Outer value not used after the inner scope: shadowing is harmless.
	n, err := strconv.Atoi(s)
	if err != nil {
		return err
	}
	if n > 0 {
		n, err := strconv.Atoi(s + "0")
		_ = n
		return err
	}
	return nil
}

func allowedDifferentType(v int) int {
	if v > 0 {
		// Same name, different type: not the err-drop hazard this pass hunts.
		v := "positive"
		_ = v
	}
	return v
}
