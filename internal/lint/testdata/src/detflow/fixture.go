// Package fixture exercises detflow: entropy must not reach exported
// results (the fixture/detflow path prefix opts into the guarded set).
package fixture

import (
	"math/rand"
	"sort"
	"time"
)

func Stamp() int64 { // want `exported Stamp returns a value derived from time\.Now`
	return time.Now().UnixNano()
}

func Draw() float64 { // want `exported Draw returns a value derived from math/rand\.Float64`
	return rand.Float64()
}

// Seeded draws from an explicitly seeded source: deterministic, clean.
func Seeded(rng *rand.Rand) float64 {
	return rng.Float64()
}

func Keys(m map[string]int) []string { // want `exported Keys returns a value derived from map iteration order`
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SortedKeys sorts before returning: iteration order is cleansed.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// stamp is unexported: it gets the fact but no diagnostic.
func stamp() int64 { return time.Now().UnixNano() }

func Transitive() int64 { // want `exported Transitive returns a value derived from call to fixture/detflow\.stamp \(time\.Now\)`
	return stamp()
}

// Elapsed returns only an error: error results are exempt (their text
// may legitimately embed timestamps).
func Elapsed() error {
	_ = time.Now()
	return nil
}

func Allowed() int64 { //lint:allow detflow fixture demonstrates an intentional timestamp result
	return time.Now().UnixNano()
}
