// Package blocker is the fact-producing side of the cross-package
// locksafe fixture: blockfacts marks WaitAll may-block here, and the
// user package's locksafe pass imports the fact.
package blocker

import "sync"

var wg sync.WaitGroup

// WaitAll blocks until the group drains.
func WaitAll() { wg.Wait() }

// Quick is pure bookkeeping and must not be marked may-block.
func Quick() int { return 1 }
