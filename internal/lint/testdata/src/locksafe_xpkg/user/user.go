// Package user holds a lock across an imported may-block call — visible
// only through the MayBlock fact exported while analyzing blocker.
package user

import (
	"sync"

	"fixture/locksafe_xpkg/blocker"
)

var mu sync.Mutex

func bad() {
	mu.Lock()
	defer mu.Unlock()
	blocker.WaitAll() // want `call to fixture/locksafe_xpkg/blocker\.WaitAll while mutex mu is held`
}

func good() int {
	mu.Lock()
	defer mu.Unlock()
	return blocker.Quick()
}
