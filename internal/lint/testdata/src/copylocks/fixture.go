// Fixture for the copylocks analyzer: passing, assigning, or ranging
// sync primitives by value is flagged; pointers are fine.
package fixture

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func flaggedParam(g guarded) int { // want `function passes a lock by value`
	return g.n
}

func flaggedAssign(g *guarded) int {
	cp := *g // want `assignment copies a lock value`
	return cp.n
}

func flaggedRange(gs []guarded) int {
	total := 0
	for _, g := range gs { // want `range copies a lock value per element`
		total += g.n
	}
	return total
}

func allowed(g *guarded, gs []guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	total := 0
	for i := range gs {
		total += gs[i].n
	}
	return total + g.n
}
