// Package mustclose exercises the path-sensitive file/listener analysis:
// leaks on branches, the close-on-error idiom, deferred closes, escapes
// via return and struct field, and //lint:allow suppression.
package mustclose

import (
	"net"
	"os"
)

type wrap struct {
	f *os.File
}

func leakOnBranch(path string, cond bool) error {
	f, err := os.Open(path) // want `file from os\.Open is not closed on every path`
	if err != nil {
		return err
	}
	if cond {
		return nil // leaks the descriptor
	}
	return f.Close()
}

func listenerLeak(addr string, cond bool) error {
	ln, err := net.Listen("tcp", addr) // want `listener from net\.Listen is not closed on every path`
	if err != nil {
		return err
	}
	if cond {
		return nil // leaks the port
	}
	return ln.Close()
}

// closeOnErrorIdiom is the repository's Write*File shape: close
// explicitly on the error path, return the close error otherwise.
func closeOnErrorIdiom(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if werr := write(f); werr != nil {
		f.Close()
		return werr
	}
	return f.Close()
}

func deferRelease(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, 16)
	_, rerr := f.Read(buf)
	return rerr
}

func escapeAtBirth(path string) (*os.File, error) {
	return os.Open(path) // caller owns the handle
}

func escapeViaReturn(path string) (*os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func escapeViaField(w *wrap, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w.f = f
	return nil
}

func discarded(path string) {
	os.Create(path) // want `file from os\.Create is discarded`
}

func suppressed(path string, cond bool) error {
	//lint:allow mustclose fixture demonstrates a justified suppression
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if cond {
		return nil
	}
	return f.Close()
}
