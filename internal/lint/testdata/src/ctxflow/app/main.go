// Command app shows the main-package exemption: program roots own the
// root context.
package main

import (
	"context"

	"fixture/ctxflow/lib"
)

func main() {
	_ = lib.WorkCtx(context.Background(), 1)
}
