// Package lib exercises ctxflow's rules outside a main package.
package lib

import "context"

// Options mimics the repository's options-threading idiom.
type Options struct {
	Ctx context.Context
}

// Work / WorkCtx is a non-ctx/ctx variant pair.
func Work(n int) int { return n + 1 }

// WorkCtx is the context-aware variant.
func WorkCtx(ctx context.Context, n int) int {
	if ctx != nil && ctx.Err() != nil {
		return 0
	}
	return n + 1
}

func usesBackground() int {
	ctx := context.Background() // want `context.Background\(\) outside a main package`
	_ = ctx
	return 0
}

func usesTODO() {
	_ = context.TODO() // want `context.TODO\(\) outside a main package`
}

// normalizer returns a context, so substituting a default is its job.
func normalizer(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

func drops(ctx context.Context, n int) int {
	return Work(n) // want `call to fixture/ctxflow/lib\.Work drops ctx`
}

func threads(ctx context.Context, n int) int {
	return WorkCtx(ctx, n)
}

// viaOptions stores ctx into an options field: the context travels
// inside the value, so calling the non-ctx variant is sanctioned.
func viaOptions(ctx context.Context, n int) int {
	var o Options
	o.Ctx = ctx
	_ = o
	return Work(n)
}

func suppressed(ctx context.Context, n int) int {
	//lint:allow ctxflow fixture demonstrates an intentional drop
	return Work(n)
}
