// Fixture for the loopclosure analyzer: go/defer closures that capture
// the loop variable are flagged; passing it as an argument is the fix.
package fixture

func sink(int) {}

func flagged(xs []int) {
	for _, v := range xs {
		//lint:allow norawgoroutine fixture exercises loopclosure, not goroutine policy
		go func() {
			sink(v) // want `go/defer closure captures loop variable "v"`
		}()
	}
	for i := 0; i < len(xs); i++ {
		defer func() {
			sink(i) // want `go/defer closure captures loop variable "i"`
		}()
	}
}

func allowed(xs []int) {
	for _, v := range xs {
		//lint:allow norawgoroutine fixture exercises loopclosure, not goroutine policy
		go func(v int) {
			sink(v)
		}(v)
	}
	for _, v := range xs {
		// Plain closures run synchronously within the iteration.
		f := func() { sink(v) }
		f()
	}
}
