// Fixture for the workersopt analyzer: exported entry points that accept
// a worker count (bare or inside an options struct) must thread it
// somewhere; silently ignoring it is flagged.
package fixture

// Options mirrors the repository's option-struct convention.
type Options struct {
	Workers int
	Scale   float64
}

func fanOut(n, workers int) {}

// IgnoresWorkers takes the parameter and drops it.
func IgnoresWorkers(n, workers int) { // want `IgnoresWorkers accepts a workers parameter but never uses it`
	fanOut(n, 0)
}

// IgnoresOptions takes the options struct and never looks at Workers.
func IgnoresOptions(n int, opt Options) float64 { // want `IgnoresOptions accepts opt with a Workers field`
	return opt.Scale * float64(n)
}

// ThreadsWorkers forwards the bare parameter.
func ThreadsWorkers(n, workers int) {
	fanOut(n, workers)
}

// ReadsWorkers consumes the field directly.
func ReadsWorkers(n int, opt Options) {
	fanOut(n, opt.Workers)
}

// ForwardsOptions hands the whole struct to a callee, which owns the
// threading decision.
func ForwardsOptions(n int, opt Options) float64 {
	return helper(n, opt)
}

// unexported helpers are outside the contract; only the public surface
// must honour the option.
func helper(n int, opt Options) float64 {
	fanOut(n, opt.Workers)
	return opt.Scale
}

// Suppressed documents a legitimately serial entry point.
//
//lint:allow workersopt fixture demo of an inherently serial path
func Suppressed(n int, opt Options) float64 {
	return opt.Scale * float64(n)
}
