// Fixture for the unusedresult analyzer: discarding the result of a
// known-pure function is flagged; using or assigning it is not.
package fixture

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

func flagged(name string) {
	fmt.Sprintf("hello %s", name)    // want `result of fmt.Sprintf is discarded`
	errors.New("boom")               // want `result of errors.New is discarded`
	strings.TrimSpace(name)          // want `result of strings.TrimSpace is discarded`
	sort.SliceIsSorted(nil, nil)     // want `result of sort.SliceIsSorted is discarded`
	fmt.Errorf("wrap %w", errDemo()) // want `result of fmt.Errorf is discarded`
}

func errDemo() error { return nil }

func allowed(name string) (string, error) {
	s := fmt.Sprintf("hello %s", name)
	if err := errDemo(); errors.Is(err, nil) {
		return s, err
	}
	// Functions called for effect (printing) are not in the pure set.
	fmt.Println(s)
	return strings.ToUpper(s), errors.New("done")
}
