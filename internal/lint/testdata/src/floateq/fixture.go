// Fixture for the floateq analyzer: ==/!= between computed float values
// is flagged; zero sentinels, NaN self-compares, and const folding are
// not.
package fixture

func flagged(a, b, c float64) bool {
	if a*b == c { // want `floating-point == on computed values`
		return true
	}
	return a+1 != b // want `floating-point != on computed values`
}

func allowed(x, scale float64) bool {
	if x == 0 { // literal-zero sentinel
		return false
	}
	if x != x { // the canonical NaN guard
		return true
	}
	const eps = 1e-9
	if eps == 1e-9 { // constant folding, checked exactly by the compiler
		_ = x
	}
	//lint:allow floateq fixture demo of an intentional exact compare
	return scale == 1.5
}
