// Package fixture exercises purity: //lint:hotpath functions may only
// call no-alloc/no-I/O callees.
package fixture

import "math"

func pure(x float64) float64 { return math.Sqrt(x) + 1 }

func allocates(n int) []int { return make([]int, n) }

// callsAllocates is impure transitively.
func callsAllocates(n int) int { return len(allocates(n)) }

//lint:hotpath fixture inner loop
func hotGood(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += pure(x)
	}
	return s
}

//lint:hotpath fixture inner loop
func hotBad(xs []float64) float64 {
	s := 0.0
	for i := range xs {
		s += float64(len(allocates(i))) // want `hot path hotBad calls fixture/purity\.allocates`
	}
	return s
}

//lint:hotpath fixture inner loop
func hotTransitive(n int) int {
	return callsAllocates(n) // want `hot path hotTransitive calls fixture/purity\.callsAllocates`
}

//lint:hotpath fixture inner loop
func hotSuppressed(n int) int {
	//lint:allow purity fixture demonstrates an accepted allocation in a hot path
	return callsAllocates(n)
}

// unmarked functions may allocate freely.
func cold(n int) []int { return allocates(n) }
