// Package cancelleak exercises the path-sensitive cancel-func analysis:
// leaks on one branch, releases on all branches, deferred releases,
// escapes via return and struct field, discarded results, panic-exempt
// paths, and //lint:allow suppression.
package cancelleak

import (
	"context"
	"time"
)

type holder struct {
	cancel context.CancelFunc
}

func leakOnBranch(parent context.Context, cond bool) {
	ctx, cancel := context.WithCancel(parent) // want `cancel func from context\.WithCancel is not called on every path`
	if cond {
		cancel()
		return
	}
	_ = ctx // the fallthrough path forgets cancel
}

func leakInLoop(parent context.Context, n int) {
	for i := 0; i < n; i++ {
		_, cancel := context.WithCancel(parent) // want `cancel func from context\.WithCancel is not called on every path`
		if i == 0 {
			cancel()
		}
	}
}

func allPaths(parent context.Context, cond bool) {
	_, cancel := context.WithCancel(parent)
	if cond {
		cancel()
		return
	}
	cancel()
}

func deferRelease(parent context.Context) {
	ctx, cancel := context.WithTimeout(parent, time.Second)
	defer cancel()
	_ = ctx
}

func deferClosureRelease(parent context.Context) {
	_, cancel := context.WithDeadline(parent, time.Now().Add(time.Second))
	defer func() { cancel() }()
}

// escapeAtBirth: the tuple is returned directly; the caller owns the
// cancel func (this is the detachedContext idiom in internal/serve).
func escapeAtBirth(parent context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(parent)
}

func escapeViaReturn(parent context.Context) context.CancelFunc {
	_, cancel := context.WithCancel(parent)
	return cancel
}

func escapeViaField(parent context.Context, h *holder) {
	_, cancel := context.WithCancel(parent)
	h.cancel = cancel
}

func escapeViaArg(parent context.Context, keep func(context.CancelFunc)) {
	_, cancel := context.WithCancel(parent)
	keep(cancel)
}

func discarded(parent context.Context) {
	_, _ = context.WithCancel(parent) // want `cancel func from context\.WithCancel is discarded`
}

func panicExempt(parent context.Context, cond bool) {
	_, cancel := context.WithCancel(parent)
	if cond {
		panic("invariant broken") // abnormal exit: no leak report
	}
	cancel()
}

func suppressed(parent context.Context, cond bool) {
	//lint:allow cancelleak fixture demonstrates a justified suppression
	_, cancel := context.WithCancel(parent)
	if cond {
		cancel()
	}
}
