// Fixture for the obsname analyzer: every string literal handed to an
// obs registration or Trace call must follow the documented naming
// convention. Dynamic names are invisible to the analyzer and fail at
// runtime instead.
package fixture

import (
	"context"

	"geostat/internal/obs"
)

func metrics(r *obs.Registry) {
	// Conforming names pass silently.
	r.Counter("geostatd_requests_total", "requests").Inc()
	r.Gauge("geostatd_requests_inflight", "in flight").Add(1)
	r.Histogram("geostatd_request_seconds", "latency", nil).Observe(0)
	r.CounterFunc("geostatd_cache_hits_total", "hits", func() int64 { return 0 })
	r.GaugeFunc("geostatd_cache_bytes", "bytes", func() int64 { return 0 })

	r.Counter("geostatd_requests", "no unit suffix").Inc()           // want `counter name "geostatd_requests" must end in _total`
	r.Counter("Geostatd_Requests_total", "upper case").Inc()         // want `not a valid metric name`
	r.Gauge("geostatd_inflight_total", "counter unit on a gauge")    // want `gauge name "geostatd_inflight_total" must end in`
	r.Histogram("geostatd_request_total", "bad unit", nil)           // want `histogram name "geostatd_request_total" must end in`
	r.CounterFunc("hits", "single segment", func() int64 { return 0 }) // want `not a valid metric name`

	// A provably-fine case the analyzer cannot see is suppressed with the
	// standard directive (here: exercising the suppression path).
	r.Counter("geostatd_requests", "suppressed").Inc() //lint:allow obsname fixture exercises the suppression path
}

func spans(ctx context.Context) {
	// Conforming span names pass silently.
	ctx, root := obs.NewTrace(ctx, "request")
	_, sp := obs.Trace(ctx, "kdv.compute")
	sp.End()
	root.End()

	_, bad := obs.Trace(ctx, "KDV.Compute") // want `not a valid span name`
	bad.End()
	_, deep := obs.Trace(ctx, "a.b.c.d") // want `not a valid span name`
	deep.End()

	// Dynamic names are skipped statically (validated at runtime).
	tool := "kdv"
	_, dyn := obs.Trace(ctx, tool+".parse")
	dyn.End()
}
