// Package b imports a and must see its ResultsEntropy fact: the taint
// crosses the package boundary through the fact store, not the syntax.
package b

import "fixture/detflow_xpkg/a"

func Wraps() int64 { // want `exported Wraps returns a value derived from call to fixture/detflow_xpkg/a\.Stamp \(time\.Now\)`
	return a.Stamp()
}

// Constant is untainted: importing a tainted package taints nothing by
// itself.
func Constant() int64 { return 42 }
