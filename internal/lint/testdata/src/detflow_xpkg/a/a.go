// Package a is the fact-producing side of the cross-package detflow
// fixture.
package a

import "time"

func Stamp() int64 { // want `exported Stamp returns a value derived from time\.Now`
	return time.Now().UnixNano()
}
