// Fixture for the norawgoroutine analyzer: raw goroutines and WaitGroup
// pools are flagged; mutex-protected state and suppressed demos are not.
package fixture

import "sync"

func work() {}

func flagged() {
	go work() // want `raw goroutine outside internal/parallel`

	var wg sync.WaitGroup // want `sync.WaitGroup outside internal/parallel`
	wg.Wait()
}

func allowed() {
	// Mutexes protect shared state; they do not spawn workers.
	var mu sync.Mutex
	mu.Lock()
	mu.Unlock()

	//lint:allow norawgoroutine fixture demo of a justified raw goroutine
	go work()
}
