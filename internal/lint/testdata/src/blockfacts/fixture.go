// Package fixture exercises blockfacts, the fact producer. It emits no
// diagnostics by design; the fact flow it feeds is asserted by the
// locksafe fixtures (same-package and cross-package).
package fixture

import "sync"

var wg sync.WaitGroup
var ch = make(chan int)

// direct blockers of every local kind.
func sends() { ch <- 1 }

func receives() int { return <-ch }

func selects() {
	select {
	case <-ch:
	default:
	}
}

func waits() { wg.Wait() }

// transitive: blocks because sends does.
func callsSends() { sends() }

// pure bookkeeping: must NOT be marked may-block.
func counts(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}
