// Fixture for the seededrand analyzer: rand.New and global math/rand
// draws are flagged; drawing from a *rand.Rand that a caller threaded in
// is fine, and so are the source constructors themselves.
package fixture

import "math/rand"

func flagged() float64 {
	r := rand.New(rand.NewSource(1)) // want `rand.New outside internal/parallel`
	_ = rand.Float64()               // want `rand.Float64 draws from the global source`
	rand.Shuffle(3, func(i, j int) {})  // want `rand.Shuffle draws from the global source`
	return r.Float64()
}

func allowed(r *rand.Rand) float64 {
	// Methods on an explicitly threaded generator are the sanctioned way
	// to draw; only construction and global draws are policed.
	_ = r.Intn(10)
	_ = rand.NewSource(7) // source constructors are exempt: they are how seeds enter

	//lint:allow seededrand fixture demo of a justified ad-hoc generator
	demo := rand.New(rand.NewSource(2))
	return demo.Float64()
}
