// Package fixture exercises locksafe: no mutex held across channel
// operations or may-block calls.
package fixture

import (
	"sync"
	"time"
)

var (
	mu sync.Mutex
	rw sync.RWMutex
	ch = make(chan int)
)

func sleepy() { time.Sleep(time.Millisecond) }

func quick() int { return 1 }

func badSend() {
	mu.Lock()
	ch <- 1 // want `channel send while mutex mu is held`
	mu.Unlock()
}

func badRecvDeferred() int {
	mu.Lock()
	defer mu.Unlock()
	return <-ch // want `channel receive while mutex mu is held`
}

func badSelect() {
	mu.Lock()
	defer mu.Unlock()
	select { // want `select while mutex mu is held`
	case <-ch:
	default:
	}
}

func badStdlibCall() {
	mu.Lock()
	time.Sleep(time.Millisecond) // want `call to time.Sleep while mutex mu is held`
	mu.Unlock()
}

func badTransitiveCall() {
	mu.Lock()
	defer mu.Unlock()
	sleepy() // want `call to fixture/locksafe.sleepy while mutex mu is held`
}

func badReadLock() {
	rw.RLock()
	defer rw.RUnlock()
	sleepy() // want `call to fixture/locksafe.sleepy while mutex rw is held`
}

func badInBranch(cond bool) {
	mu.Lock()
	defer mu.Unlock()
	if cond {
		ch <- 1 // want `channel send while mutex mu is held`
	}
}

func goodNonBlocking() {
	mu.Lock()
	_ = quick()
	mu.Unlock()
}

func goodUnlockFirst() {
	mu.Lock()
	n := quick()
	mu.Unlock()
	ch <- n
}

func goodClosureDefinedUnderLock() func() {
	mu.Lock()
	defer mu.Unlock()
	// Defining a closure under the lock is fine; it runs later. The call
	// that runs it is what locksafe checks.
	return func() { ch <- 1 }
}

func suppressed() {
	mu.Lock()
	defer mu.Unlock()
	//lint:allow locksafe fixture demonstrates an accepted send under lock
	ch <- 1
}
