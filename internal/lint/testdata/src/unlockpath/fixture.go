// Package unlockpath exercises the path-sensitive unlock analysis:
// locks leaked by early returns, unlocks on all branches, deferred
// unlocks (direct and via closure), RLock/RUnlock flavour matching,
// panic-exempt paths, and //lint:allow suppression.
package unlockpath

import "sync"

type guarded struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func (g *guarded) leakOnEarlyReturn(cond bool) int {
	g.mu.Lock() // want `mutex g\.mu is locked here but not unlocked on every path`
	if cond {
		return 0 // leaks the lock: the next contender deadlocks
	}
	g.mu.Unlock()
	return g.n
}

func (g *guarded) unlockAllPaths(cond bool) int {
	g.mu.Lock()
	if cond {
		g.mu.Unlock()
		return 0
	}
	g.mu.Unlock()
	return g.n
}

func (g *guarded) deferUnlock() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func (g *guarded) deferClosureUnlock() int {
	g.mu.Lock()
	defer func() { g.mu.Unlock() }()
	return g.n
}

func (g *guarded) readPath(cond bool) int {
	g.rw.RLock() // want `mutex g\.rw is locked here but not unlocked on every path`
	if cond {
		g.rw.RUnlock()
		return 0
	}
	return g.n // leaks the read lock
}

// wrongFlavour: an RLock is not discharged by Unlock — that is a
// runtime fault on an RWMutex.
func (g *guarded) wrongFlavour() { // nolint-style mismatch
	g.rw.RLock() // want `mutex g\.rw is locked here but not unlocked on every path`
	g.rw.Unlock()
}

// relock: two critical sections are two independent obligations.
func (g *guarded) relock(cond bool) int {
	g.mu.Lock()
	g.mu.Unlock()
	g.mu.Lock() // want `mutex g\.mu is locked here but not unlocked on every path`
	if cond {
		g.mu.Unlock()
		return 0
	}
	return g.n
}

func (g *guarded) panicExempt(cond bool) int {
	g.mu.Lock()
	if cond {
		panic("invariant broken") // abnormal exit: deferred state is gone anyway
	}
	g.mu.Unlock()
	return g.n
}

func (g *guarded) switchPaths(mode int) int {
	g.mu.Lock()
	switch mode {
	case 0:
		g.mu.Unlock()
		return 0
	case 1:
		g.mu.Unlock()
		return 1
	default:
		g.mu.Unlock()
	}
	return g.n
}

func (g *guarded) suppressed() int {
	//lint:allow unlockpath lock intentionally handed to the caller by documented contract
	g.mu.Lock()
	return g.n
}
