// Package fixture is the regression fixture for //lint:allow statement
// extents: a directive attached to a multi-line statement suppresses
// diagnostics anywhere inside it (composite literals, chained calls),
// while control-flow statements still only get the directive's own line
// and the next.
package fixture

type flags struct {
	eq, ne bool
}

// suppressed: the directive covers the whole multi-line return
// statement, including the comparisons two and three lines below it.
func covered(x, y float64) flags {
	//lint:allow floateq fixture: the whole literal is intentionally exact
	return flags{
		eq: x == y,
		ne: x != y,
	}
}

// unsuppressed control: the same literal without a directive reports on
// every line.
func uncovered(x, y float64) flags {
	return flags{
		eq: x == y, // want `floating-point == on computed values`
		ne: x != y, // want `floating-point != on computed values`
	}
}

// A directive above a control-flow statement must NOT blanket the body:
// only its own line and the next are covered.
func loopNotBlanketed(xs []float64, y float64) int {
	n := 0
	//lint:allow floateq only this line and the next are covered
	for _, x := range xs {
		if x == y { // want `floating-point == on computed values`
			n++
		}
	}
	return n
}
