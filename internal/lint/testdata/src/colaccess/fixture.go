// Fixture for the colaccess analyzer: the dataset's columnar storage
// (dataset.Columns and dataset.Chunk fields) is a shared read-only view.
// Reads pass; writes, compound assignments, ++/-- and address-taking are
// flagged everywhere outside internal/dataset.
package fixture

import (
	"geostat/internal/dataset"
	"geostat/internal/geom"
)

func reads(d *dataset.Dataset) float64 {
	// Reading the columns and chunk aggregates is the supported hot path.
	cols := d.Columns()
	sum := 0.0
	for _, ch := range d.Chunks() {
		sum += ch.WeightSum
		for i := ch.Lo; i < ch.Hi; i++ {
			sum += cols.X[i] * cols.Y[i]
		}
	}
	return sum
}

func writes(d *dataset.Dataset) {
	cols := d.Columns()
	cols.X = nil          // want `write to dataset column storage Columns\.X`
	cols.X[0] = 1         // want `write to dataset column storage Columns\.X`
	cols.W[2] += 0.5      // want `write to dataset column storage Columns\.W`
	cols.Chunks = nil     // want `write to dataset column storage Columns\.Chunks`
	cols.Chunks[0].Lo = 3 // want `write to dataset column storage Chunk\.Lo`

	chunks := d.Chunks()
	chunks[0].Hi++            // want `write to dataset column storage Chunk\.Hi`
	chunks[0].WeightSum = 0   // want `write to dataset column storage Chunk\.WeightSum`
	chunks[0].Centroid.X = 99 // want `write to dataset column storage Chunk\.Centroid`
}

func addresses(d *dataset.Dataset) {
	cols := d.Columns()
	p := &cols.Y // want `address of dataset column storage Columns\.Y`
	_ = p
	chunks := d.Chunks()
	bb := &chunks[0].BBox // want `address of dataset column storage Chunk\.BBox`
	_ = bb
}

func unrelated() {
	// Same field names on other types pass untouched.
	var pt geom.Point
	pt.X = 1
	pt.Y = 2
	box := geom.BBox{MinX: pt.X, MinY: pt.Y}
	box.MaxX = 5
	_ = box
}

func suppressed(d *dataset.Dataset) {
	cols := d.Columns()
	//lint:allow colaccess fixture exercises the suppression path
	cols.Y = nil
}
