package lint

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"geostat/internal/lint/analysis"
)

var updateGolden = flag.Bool("update", false, "rewrite golden SARIF files")

// TestSARIFGoldenV3 pins the exact SARIF emitted for the v3 obligation
// rules (cancelleak, bodyclose, mustclose, unlockpath) byte-for-byte, so
// a formatting or rule-metadata drift shows up as a reviewable diff.
// Regenerate with `go test ./internal/lint -run SARIFGoldenV3 -update`.
func TestSARIFGoldenV3(t *testing.T) {
	var analyzers []*analysis.Analyzer
	for _, name := range []string{"cancelleak", "bodyclose", "mustclose", "unlockpath"} {
		a, ok := Lookup(name)
		if !ok {
			t.Fatalf("analyzer %s not registered", name)
		}
		if a.Advisory {
			t.Fatalf("analyzer %s must be gating, not advisory", name)
		}
		analyzers = append(analyzers, a)
	}
	findings := []Finding{
		{
			Diagnostic: analysis.Diagnostic{Analyzer: "cancelleak",
				Message: "cancel func from context.WithCancel is not called on every path to return; the leaked path pins the context's timer and children"},
			File: "internal/serve/serve.go", Line: 210, Col: 2,
		},
		{
			Diagnostic: analysis.Diagnostic{Analyzer: "bodyclose",
				Message: "response body from (net/http.Client).Get is not closed on every path to return; the leaked path holds the connection out of the pool"},
			File: "internal/load/run.go", Line: 120, Col: 2,
		},
		{
			Diagnostic: analysis.Diagnostic{Analyzer: "mustclose",
				Message: "file from os.Create is not closed on every path to return"},
			File: "internal/experiments/figures.go", Line: 40, Col: 2,
		},
		{
			Diagnostic: analysis.Diagnostic{Analyzer: "unlockpath",
				Message: "mutex s.mu is locked here but not unlocked on every path to return; the leaked path deadlocks the next contender"},
			File: "internal/serve/registry.go", Line: 60, Col: 2,
		},
	}
	got, err := SARIF(analyzers, findings)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden", "v3.sarif")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("SARIF drifted from golden %s (re-run with -update if intended)\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}
