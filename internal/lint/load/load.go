// Package load parses and typechecks the module's packages for geolint
// using only the standard library. Intra-module imports are resolved
// directly against the module tree; standard-library imports go through
// go/importer's source importer (compiled export data is not assumed to
// exist). Test files are not loaded: the determinism invariants geolint
// enforces apply to production code, and test-only randomness is exempt by
// design.
package load

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and typechecked package.
type Package struct {
	// Path is the import path ("geostat/internal/kde").
	Path string
	// Dir is the absolute directory holding the sources.
	Dir string
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types is the typechecked package object.
	Types *types.Package
	// Info holds full type information for Files.
	Info *types.Info
	// Errors are type errors encountered while checking this package.
	Errors []error
}

// Loader loads module packages on demand and memoises the results.
type Loader struct {
	// Fset is shared by every package the loader touches.
	Fset *token.FileSet
	// ModuleRoot is the directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module path declared in go.mod.
	ModulePath string

	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
	extra   map[string]string // synthetic import path -> directory (fixtures)
	goVer   string
}

// NewLoader returns a loader for the module rooted at moduleRoot.
func NewLoader(moduleRoot string) (*Loader, error) {
	abs, err := filepath.Abs(moduleRoot)
	if err != nil {
		return nil, err
	}
	modPath, goVer, err := readGoMod(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleRoot: abs,
		ModulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
		extra:      make(map[string]string),
		goVer:      goVer,
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory with a go.mod.
func FindModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("load: no go.mod found above %s", dir)
		}
		d = parent
	}
}

func readGoMod(path string) (modPath, goVer string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.Trim(strings.TrimSpace(rest), `"`)
		}
		if rest, ok := strings.CutPrefix(line, "go "); ok {
			goVer = "go" + strings.TrimSpace(rest)
		}
	}
	if modPath == "" {
		return "", "", fmt.Errorf("load: no module line in %s", path)
	}
	return modPath, goVer, nil
}

// Module loads every package of the module (skipping testdata and hidden
// directories), sorted by import path.
func (l *Loader) Module() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "artifacts") {
			return fs.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(path)
		if err != nil {
			return nil, fmt.Errorf("load: %s: %w", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir typechecks the sources in dir under the given synthetic import
// path — used by the analyzer fixture tests, whose packages live under
// testdata and are not part of the module proper.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.check(importPath, abs)
}

// Register maps a synthetic import path to a source directory, so that
// fixture packages can import each other ("fixture/locksafe/blocker" from
// "fixture/locksafe/user"). Registered paths resolve before the standard
// library; they are loaded lazily on first import or via LoadDir.
func (l *Loader) Register(importPath, dir string) error {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return err
	}
	l.extra[importPath] = abs
	return nil
}

// load resolves an intra-module import path to its directory and checks it.
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	rel := strings.TrimPrefix(path, l.ModulePath)
	rel = strings.TrimPrefix(rel, "/")
	dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
	return l.check(path, dir)
}

// check parses and typechecks one directory as one package.
func (l *Loader) check(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	pkg := &Package{Path: path, Dir: dir, Files: files}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer:  l,
		GoVersion: l.goVer,
		Error:     func(err error) { pkg.Errors = append(pkg.Errors, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	pkg.Types = tpkg
	pkg.Info = info
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module packages are checked
// from source in-tree, everything else is delegated to the standard
// library's source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		if len(pkg.Errors) > 0 {
			return nil, fmt.Errorf("package %q has type errors: %v", path, pkg.Errors[0])
		}
		return pkg.Types, nil
	}
	if extraDir, ok := l.extra[path]; ok {
		pkg, err := l.check(path, extraDir)
		if err != nil {
			return nil, err
		}
		if len(pkg.Errors) > 0 {
			return nil, fmt.Errorf("package %q has type errors: %v", path, pkg.Errors[0])
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
