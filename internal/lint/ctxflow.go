package lint

import (
	"go/ast"
	"go/types"

	"geostat/internal/lint/analysis"
)

// CtxFlow enforces the context-threading convention: cancellation must
// reach every level of the compute stack, so long-running tile jobs can
// be abandoned when the client goes away.
//
// Two rules:
//
//  1. context.Background() / context.TODO() may appear only in main
//     packages (program roots own the root context), in the parallel
//     engine (whose legacy non-ctx wrappers are the sanctioned
//     compatibility layer), or inside functions that themselves return a
//     context.Context (normalizers like Options.context() that
//     substitute a default for nil).
//
//  2. A function that receives a context.Context must not drop it: a
//     call to F when the callee's package also provides FCtx (same name
//     + "Ctx" suffix, accepting a context) is flagged — the ctx-aware
//     variant must be used so cancellation threads through. Functions
//     that store their ctx into a struct field (the Options.Ctx
//     threading idiom: `opt.Ctx = ctx; return KDV(pts, opt)`) are
//     exempt — the context travels inside the options value.
var CtxFlow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "context.Background/TODO confined to main, the parallel engine, and " +
		"context normalizers; functions holding a ctx must call FCtx variants, not F",
	Run: runCtxFlow,
}

func runCtxFlow(pass *analysis.Pass) error {
	isMain := pass.Pkg != nil && pass.Pkg.Name() == "main"
	isEngine := pass.PkgPath == enginePath
	storesCache := make(map[ast.Node]bool)
	for _, f := range pass.Files {
		enclosingFuncs(f, func(n ast.Node, encl ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			fn := staticCallee(pass, call)
			if fn == nil {
				return
			}
			key := funcKey(fn)
			if key == "context.Background" || key == "context.TODO" {
				if isMain || isEngine || returnsContext(pass, encl) {
					return
				}
				pass.Reportf(call.Pos(), "%s() outside a main package or the parallel engine: accept a context.Context and thread it through", key)
				return
			}
			if encl == nil || !hasContextParam(pass, encl) {
				return
			}
			if signatureTakesContext(fn) {
				return
			}
			if storesCtxInField(pass, encl, storesCache) {
				return
			}
			if alt := ctxVariant(fn); alt != "" {
				pass.Reportf(call.Pos(), "call to %s drops ctx: this function receives a context.Context, call %s and pass it", key, alt)
			}
		})
	}
	return nil
}

// storesCtxInField reports whether the enclosing function assigns a
// context.Context value into a struct field — the options-threading
// idiom. Such a function passes its ctx inside a value the signature
// check cannot see, so the dropped-ctx rule stands down.
func storesCtxInField(pass *analysis.Pass, encl ast.Node, cache map[ast.Node]bool) bool {
	if v, ok := cache[encl]; ok {
		return v
	}
	stores := false
	ast.Inspect(encl, func(n ast.Node) bool {
		if stores {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if t := pass.TypesInfo.TypeOf(sel); t != nil && isContextType(t) {
				stores = true
			}
		}
		return true
	})
	cache[encl] = stores
	return stores
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// returnsContext reports whether the enclosing function-like node has a
// context.Context among its results.
func returnsContext(pass *analysis.Pass, encl ast.Node) bool {
	sig := enclSignature(pass, encl)
	if sig == nil {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isContextType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

// hasContextParam reports whether the enclosing function-like node takes
// a context.Context parameter.
func hasContextParam(pass *analysis.Pass, encl ast.Node) bool {
	sig := enclSignature(pass, encl)
	if sig == nil {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

func enclSignature(pass *analysis.Pass, encl ast.Node) *types.Signature {
	switch e := encl.(type) {
	case *ast.FuncDecl:
		if fn, ok := pass.TypesInfo.Defs[e.Name].(*types.Func); ok {
			if sig, ok := fn.Type().(*types.Signature); ok {
				return sig
			}
		}
	case *ast.FuncLit:
		if t := pass.TypesInfo.TypeOf(e); t != nil {
			if sig, ok := t.(*types.Signature); ok {
				return sig
			}
		}
	}
	return nil
}

// signatureTakesContext reports whether fn accepts a context.Context.
func signatureTakesContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// ctxVariant returns the name of fn's context-accepting sibling
// (fn.Name()+"Ctx" in the same package, taking a context.Context), or ""
// if there is none. Methods are skipped: the convention only names
// package-level variants.
func ctxVariant(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return ""
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	alt, ok := pkg.Scope().Lookup(fn.Name() + "Ctx").(*types.Func)
	if !ok || !signatureTakesContext(alt) {
		return ""
	}
	return pkg.Name() + "." + alt.Name()
}
