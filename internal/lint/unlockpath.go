package lint

import (
	"go/ast"

	"geostat/internal/lint/analysis"
)

// UnlockPath verifies that a sync.Mutex/RWMutex locked in a function is
// unlocked on every path to function exit — the control-flow complement
// to locksafe. locksafe bounds what happens INSIDE a critical section
// (no blocking work while held); unlockpath bounds where the section
// ENDS: an early return that skips the Unlock leaves every future
// contender deadlocked, which in geostatd means the registry, cache
// shard or flight group wedges the whole serving layer on the next
// request.
//
// The lock-identification machinery (receiver text as the tracking key,
// Lock/RLock vs Unlock/RUnlock pairing) is shared with locksafe via
// lockCall. Obligations are key-based: there is no first-class value to
// escape, so the only discharges are an unlock (direct or deferred,
// including a deferred closure that unlocks) on the same receiver with
// the matching flavour. Paths ending in panic or a no-return call are
// exempt — deferred unlocks run during panicking, and a process calling
// os.Exit has no waiters left to deadlock.
//
// Intentional lock-handoff patterns (lock here, unlock in a callee or
// another goroutine) are invisible to an intraprocedural analysis; they
// need a justified //lint:allow, which the suppression-debt gate counts.
var UnlockPath = &analysis.Analyzer{
	Name: "unlockpath",
	Doc: "a locked sync.Mutex/RWMutex is unlocked on every path to " +
		"return (deferred unlock counts)",
	Run: runUnlockPath,
}

func runUnlockPath(pass *analysis.Pass) error {
	rule := &obRule{
		acquisitions: func(pass *analysis.Pass, node ast.Node) []*oblig {
			stmt, ok := node.(ast.Stmt)
			if !ok {
				return nil
			}
			name, pos, op, ok := lockOp(pass, stmt)
			if !ok {
				return nil
			}
			switch op {
			case "Lock":
				return []*oblig{{pos: pos, key: name, releaseOp: "Unlock", what: "mutex " + name}}
			case "RLock":
				return []*oblig{{pos: pos, key: name, releaseOp: "RUnlock", what: "mutex " + name}}
			}
			return nil
		},
		isRelease: func(pass *analysis.Pass, call *ast.CallExpr, ob *oblig) bool {
			name, _, op, ok := lockCall(pass, call)
			return ok && op == ob.releaseOp && name == ob.key
		},
		leak: func(ob *oblig) string {
			return ob.what + " is locked here but not unlocked on every path to return; the leaked path deadlocks the next contender"
		},
	}
	return runObligations(pass, rule)
}
