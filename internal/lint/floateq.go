package lint

import (
	"bytes"
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"

	"geostat/internal/lint/analysis"
)

// FloatEq flags == and != between floating-point operands where at least
// one side is a computed value. In statistic code such comparisons are
// where platform- or order-dependent rounding silently changes a branch
// (e.g. an envelope bound compared against a freshly accumulated sum).
// Two idioms are allowed because they are exact by construction:
//
//   - sentinel comparisons against the literal 0 (IEEE zero is produced
//     exactly, e.g. "if sigma == 0" after a variance computation guards a
//     degenerate input, not a rounding accident);
//   - NaN guards of the form x != x (and x == x).
//
// Anything else should compare against a tolerance or carry a
// //lint:allow floateq justification.
var FloatEq = &analysis.Analyzer{
	Name: "floateq",
	Doc: "flags ==/!= on computed float expressions; compare with a tolerance " +
		"(zero sentinels and x != x NaN guards are allowed)",
	Run: runFloatEq,
}

func runFloatEq(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, xok := pass.TypesInfo.Types[be.X]
			yt, yok := pass.TypesInfo.Types[be.Y]
			if !xok || !yok || !isFloat(xt.Type) || !isFloat(yt.Type) {
				return true
			}
			// Constant-vs-constant folds at compile time; nothing to flag.
			if xt.Value != nil && yt.Value != nil {
				return true
			}
			// Zero sentinel: one side is the exact constant 0.
			if isZeroConst(xt.Value) || isZeroConst(yt.Value) {
				return true
			}
			// NaN guard: syntactically identical operands.
			if exprString(pass.Fset, be.X) == exprString(pass.Fset, be.Y) {
				return true
			}
			pass.Reportf(be.OpPos, "floating-point %s on computed values; compare with a tolerance, or justify with //lint:allow floateq", be.Op)
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isZeroConst(v constant.Value) bool {
	if v == nil {
		return false
	}
	f, ok := constant.Float64Val(constant.ToFloat(v))
	return ok && f == 0
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, fset, e)
	return buf.String()
}
