package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"geostat/internal/lint/analysis"
)

// NoAllocNoIO is exported for functions proven (syntactically) to neither
// allocate nor perform I/O: no make/new/append/composite literals, no
// string building, no goroutines or channel traffic, and only calls to
// other no-alloc/no-I/O functions, math, or binary-search helpers.
type NoAllocNoIO struct{}

// AFact marks NoAllocNoIO as a fact type.
func (*NoAllocNoIO) AFact() {}

// Purity (advisory) guards the columnar inner loops: a function marked
// with a //lint:hotpath directive must only call functions carrying the
// NoAllocNoIO fact (or the math/sort.Search/pure-builtin allowlist). An
// allocation inside the per-pixel loop turns an O(1)-allocation kernel
// into one allocation per output cell and wrecks the cache-blocking
// gains the columnar layout exists for.
//
// Advisory: the fact is a syntactic under-approximation (calls through
// function values and interface methods are invisible and assumed pure,
// a documented hole), so findings inform review rather than gate CI.
// The hot function's OWN allocations are deliberately out of scope —
// they are visible in review; the analyzer guards the transitive callee
// surface that review cannot see.
var Purity = &analysis.Analyzer{
	Name: "purity",
	Doc: "advisory: //lint:hotpath functions call only no-alloc/no-I/O " +
		"(NoAllocNoIO fact) callees",
	Advisory:  true,
	FactTypes: []analysis.Fact{(*NoAllocNoIO)(nil)},
	Run:       runPurity,
}

func runPurity(pass *analysis.Pass) error {
	infos := packageFuncs(pass)
	index := make(map[*types.Func]int, len(infos))
	for i, fi := range infos {
		index[fi.fn] = i
	}

	// Greatest fixpoint: assume every function with no local violation is
	// pure, then strike functions whose same-package callees turn out
	// impure, until stable. Mutually recursive pure functions stay pure.
	pure := make([]bool, len(infos))
	callees := make([][]*types.Func, len(infos))
	for i, fi := range infos {
		violation, calls := localPurity(pass, fi.decl)
		pure[i] = !violation
		callees[i] = calls
	}
	for changed := true; changed; {
		changed = false
		for i := range infos {
			if !pure[i] {
				continue
			}
			for _, callee := range callees[i] {
				if !calleePure(pass, index, pure, callee) {
					pure[i] = false
					changed = true
					break
				}
			}
		}
	}
	for i, fi := range infos {
		if pure[i] {
			pass.ExportObjectFact(fi.fn, &NoAllocNoIO{})
		}
	}

	// Check the //lint:hotpath functions' transitive callee surface.
	for _, fi := range infos {
		if !isHotpath(fi.decl) {
			continue
		}
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := staticCallee(pass, call)
			if fn == nil {
				return true // dynamic call or conversion: documented hole
			}
			if purityAllowed(fn) {
				return true
			}
			if calleePure(pass, index, pure, fn) {
				return true
			}
			pass.Reportf(call.Pos(),
				"hot path %s calls %s, which may allocate or perform I/O (no NoAllocNoIO fact); hoist it out of the inner loop or make the callee allocation-free",
				fi.decl.Name.Name, funcKey(fn))
			return true
		})
	}
	return nil
}

// calleePure resolves a callee's purity: same-package via the fixpoint
// state, imported functions via the fact store.
func calleePure(pass *analysis.Pass, index map[*types.Func]int, pure []bool, fn *types.Func) bool {
	if j, ok := index[fn]; ok {
		return pure[j]
	}
	if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
		var f NoAllocNoIO
		return pass.ImportObjectFact(fn, &f)
	}
	return false // same package but no body (assembly/extern): unknown
}

// purityAllowed lists callees that are no-alloc/no-I/O by fiat: all of
// math, and sort/slices binary searches.
func purityAllowed(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "math":
		return true
	case "sort", "slices":
		return strings.HasPrefix(fn.Name(), "Search") || fn.Name() == "BinarySearch" || fn.Name() == "BinarySearchFunc"
	}
	return false
}

// localPurity scans one function body for direct violations and collects
// its same-package static callees. Nested function literals count as a
// violation outright: creating a closure allocates.
func localPurity(pass *analysis.Pass, fd *ast.FuncDecl) (violation bool, callees []*types.Func) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if violation {
			return false
		}
		switch n := n.(type) {
		case *ast.CompositeLit, *ast.FuncLit, *ast.GoStmt, *ast.SendStmt, *ast.SelectStmt:
			violation = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				violation = true
			}
		case *ast.BinaryExpr:
			// String concatenation allocates.
			if n.Op.String() == "+" {
				if t := pass.TypesInfo.TypeOf(n.X); t != nil && isString(t) {
					violation = true
				}
			}
		case *ast.AssignStmt:
			// Writing through a map index may grow the map.
			for _, lhs := range n.Lhs {
				if ix, ok := lhs.(*ast.IndexExpr); ok {
					if t := pass.TypesInfo.TypeOf(ix.X); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							violation = true
						}
					}
				}
			}
		case *ast.CallExpr:
			violation, callees = purityCall(pass, n, callees)
		}
		return !violation
	})
	return violation, callees
}

// purityCall classifies one call inside a purity candidate.
func purityCall(pass *analysis.Pass, call *ast.CallExpr, callees []*types.Func) (bool, []*types.Func) {
	// Builtins: len/cap/min/max and friends are fine; make/new/append
	// allocate.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new", "append", "copy", "clear", "panic", "recover", "print", "println":
				return true, callees
			}
			return false, callees
		}
	}
	// Conversions: string/[]byte/[]rune conversions allocate; numeric
	// conversions do not.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		t := tv.Type
		if isString(t) {
			return true, callees
		}
		if _, ok := t.Underlying().(*types.Slice); ok {
			return true, callees
		}
		return false, callees
	}
	fn := staticCallee(pass, call)
	if fn == nil {
		return false, callees // dynamic: assumed pure (documented hole)
	}
	if purityAllowed(fn) {
		return false, callees
	}
	if fn.Pkg() == pass.Pkg {
		return false, append(callees, fn)
	}
	var f NoAllocNoIO
	if pass.ImportObjectFact(fn, &f) {
		return false, callees
	}
	return true, callees
}

// isHotpath reports whether fd carries a //lint:hotpath directive in its
// doc comment.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, "//lint:hotpath") {
			return true
		}
	}
	return false
}
