package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"geostat/internal/lint/analysis"
	"geostat/internal/obs"
)

// ObsName enforces the observability naming convention documented in
// internal/obs: metric names are snake_case `subsystem_stage_unit` with a
// kind-appropriate unit suffix (counters end in _total, histograms in
// _seconds/_bytes, ...), span names are dotted lowercase `tool.stage`
// paths of one to three segments. The registry panics on a bad name at
// runtime; this analyzer moves that failure to vet-time by validating
// every string literal passed to an obs registration or Trace call with
// the same obs.ValidMetricName/ValidSpanName the runtime uses, so the
// two can never disagree. Names built dynamically (e.g. tool+".parse")
// are outside the static check and fail at runtime instead.
var ObsName = &analysis.Analyzer{
	Name: "obsname",
	Doc: "flags obs metric/span name literals that violate the documented " +
		"tool_stage_unit / tool.stage naming convention",
	Run: runObsName,
}

const obsPath = "geostat/internal/obs"

// obsMetricKinds maps Registry method names to the metric kind whose unit
// suffixes apply; obsSpanFuncs lists the span constructors. Both take the
// name as their first argument after the receiver/context.
var obsMetricKinds = map[string]string{
	"Counter":     "counter",
	"CounterFunc": "counter",
	"Gauge":       "gauge",
	"GaugeFunc":   "gauge",
	"Histogram":   "histogram",
}

var obsSpanFuncs = map[string]int{
	// name argument index
	"Trace":    1,
	"NewTrace": 1,
}

func runObsName(pass *analysis.Pass) error {
	if pass.PkgPath == obsPath {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[sel.Sel]
			if !ok {
				return true
			}
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != obsPath {
				return true
			}
			if kind, ok := obsMetricKinds[fn.Name()]; ok {
				if name, lit, ok := stringArg(call, 0); ok {
					if err := obs.ValidMetricName(kind, name); err != nil {
						pass.Reportf(lit.Pos(), "obs metric name: %v", err)
					}
				}
				return true
			}
			if idx, ok := obsSpanFuncs[fn.Name()]; ok {
				if name, lit, ok := stringArg(call, idx); ok {
					if err := obs.ValidSpanName(name); err != nil {
						pass.Reportf(lit.Pos(), "obs span name: %v", err)
					}
				}
			}
			return true
		})
	}
	return nil
}

// stringArg returns the string literal at argument position i, if any.
func stringArg(call *ast.CallExpr, i int) (string, *ast.BasicLit, bool) {
	if i >= len(call.Args) {
		return "", nil, false
	}
	lit, ok := call.Args[i].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", nil, false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", nil, false
	}
	return s, lit, true
}
