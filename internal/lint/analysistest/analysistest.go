// Package analysistest runs one geolint analyzer over a fixture package
// and compares its diagnostics against `// want "regexp"` annotations —
// a standard-library reimplementation of the classic analyzer test
// harness. A fixture line may carry at most one want comment; every
// diagnostic must match a want on its line, and every want must be
// matched by exactly one diagnostic. //lint:allow directives are honoured
// before matching, so fixtures also exercise the suppression path.
//
// A fixture directory may be a single package (Go files directly in the
// dir) or a multi-package fixture (subdirectories, each one package,
// importable from each other as "fixture/<dir>/<sub>"). Multi-package
// fixtures run through the cross-package driver, so they exercise fact
// export and import; diagnostics and wants are collected across all
// packages.
package analysistest

import (
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"geostat/internal/lint"
	"geostat/internal/lint/analysis"
	"geostat/internal/lint/load"
)

var wantRe = regexp.MustCompile("//\\s*want\\s+(?:`(.*)`|\"(.*)\")\\s*$")

// want is one expectation: a diagnostic on (file, line) matching re.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads the fixture in dir (one package, or one package per
// subdirectory), applies a, and reports any mismatch between produced
// diagnostics and want annotations as test errors.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	root, err := load.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := load.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}

	base := "fixture/" + filepath.Base(dir)
	var pkgs []*load.Package
	if subs := packageSubdirs(t, dir); len(subs) > 0 {
		// Multi-package fixture: register every subpackage first so the
		// fixtures can import each other, then load them all.
		for _, sub := range subs {
			if regErr := l.Register(base+"/"+sub, filepath.Join(dir, sub)); regErr != nil {
				t.Fatal(regErr)
			}
		}
		for _, sub := range subs {
			pkg, loadErr := l.LoadDir(filepath.Join(dir, sub), base+"/"+sub)
			if loadErr != nil {
				t.Fatalf("load fixture %s/%s: %v", dir, sub, loadErr)
			}
			pkgs = append(pkgs, pkg)
		}
	} else {
		pkg, loadErr := l.LoadDir(dir, base)
		if loadErr != nil {
			t.Fatalf("load fixture %s: %v", dir, loadErr)
		}
		pkgs = append(pkgs, pkg)
	}
	var files []*ast.File
	for _, pkg := range pkgs {
		if len(pkg.Errors) > 0 {
			t.Fatalf("fixture %s has type errors: %v", pkg.Path, pkg.Errors[0])
		}
		files = append(files, pkg.Files...)
	}

	wants := collectWants(t, l, files)
	findings, err := lint.RunPackages(l, pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	diags := make([]analysis.Diagnostic, len(findings))
	for i, f := range findings {
		diags[i] = f.Diagnostic
	}

	for _, d := range diags {
		pos := l.Fset.Position(d.Pos)
		w := findWant(wants, pos.Filename, pos.Line)
		switch {
		case w == nil:
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		case w.matched:
			t.Errorf("%s:%d: second diagnostic on a line with one want: %s", pos.Filename, pos.Line, d.Message)
		case !w.re.MatchString(d.Message):
			t.Errorf("%s:%d: diagnostic %q does not match want %q", pos.Filename, pos.Line, d.Message, w.re)
		default:
			w.matched = true
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: want %q: no diagnostic", w.file, w.line, w.re)
		}
	}
}

// packageSubdirs lists subdirectories of dir that contain Go files,
// sorted. Empty means dir is a single-package fixture.
func packageSubdirs(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir %s: %v", dir, err)
	}
	var subs []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		glob, err := filepath.Glob(filepath.Join(dir, e.Name(), "*.go"))
		if err == nil && len(glob) > 0 {
			subs = append(subs, e.Name())
		}
	}
	sort.Strings(subs)
	return subs
}

// collectWants extracts every want annotation from the fixture comments.
func collectWants(t *testing.T, l *load.Loader, files []*ast.File) []*want {
	t.Helper()
	var out []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "// want ") {
						t.Fatalf("malformed want comment: %s", c.Text)
					}
					continue
				}
				pattern := m[1]
				if pattern == "" {
					pattern = m[2]
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				pos := l.Fset.Position(c.Pos())
				out = append(out, &want{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return out
}

func findWant(wants []*want, file string, line int) *want {
	for _, w := range wants {
		if w.file == file && w.line == line {
			return w
		}
	}
	return nil
}
