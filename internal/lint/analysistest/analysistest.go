// Package analysistest runs one geolint analyzer over a fixture package
// and compares its diagnostics against `// want "regexp"` annotations —
// a standard-library reimplementation of the classic analyzer test
// harness. A fixture line may carry at most one want comment; every
// diagnostic must match a want on its line, and every want must be
// matched by exactly one diagnostic. //lint:allow directives are honoured
// before matching, so fixtures also exercise the suppression path.
package analysistest

import (
	"go/ast"
	"regexp"
	"strings"
	"testing"

	"geostat/internal/lint"
	"geostat/internal/lint/analysis"
	"geostat/internal/lint/load"
)

var wantRe = regexp.MustCompile("//\\s*want\\s+(?:`(.*)`|\"(.*)\")\\s*$")

// want is one expectation: a diagnostic on (file, line) matching re.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads the fixture package in dir, applies a, and reports any
// mismatch between produced diagnostics and want annotations as test
// errors.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	root, err := load.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := load.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(dir, "fixture/"+a.Name)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	if len(pkg.Errors) > 0 {
		t.Fatalf("fixture %s has type errors: %v", dir, pkg.Errors[0])
	}

	wants := collectWants(t, l, pkg.Files)
	diags, err := lint.Run(l, pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	for _, d := range diags {
		pos := l.Fset.Position(d.Pos)
		w := findWant(wants, pos.Filename, pos.Line)
		switch {
		case w == nil:
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		case w.matched:
			t.Errorf("%s:%d: second diagnostic on a line with one want: %s", pos.Filename, pos.Line, d.Message)
		case !w.re.MatchString(d.Message):
			t.Errorf("%s:%d: diagnostic %q does not match want %q", pos.Filename, pos.Line, d.Message, w.re)
		default:
			w.matched = true
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: want %q: no diagnostic", w.file, w.line, w.re)
		}
	}
}

// collectWants extracts every want annotation from the fixture comments.
func collectWants(t *testing.T, l *load.Loader, files []*ast.File) []*want {
	t.Helper()
	var out []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "// want ") {
						t.Fatalf("malformed want comment: %s", c.Text)
					}
					continue
				}
				pattern := m[1]
				if pattern == "" {
					pattern = m[2]
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				pos := l.Fset.Position(c.Pos())
				out = append(out, &want{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return out
}

func findWant(wants []*want, file string, line int) *want {
	for _, w := range wants {
		if w.file == file && w.line == line {
			return w
		}
	}
	return nil
}
