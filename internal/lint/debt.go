package lint

// Suppression debt: every //lint:allow directive in the module is a
// standing exception to an invariant, and exceptions rot — the code they
// excuse gets copied, the reason drifts out of date, and a suite with a
// hundred silent allows enforces nothing. geolint therefore treats the
// directive inventory as a budget: `geolint -debt` writes the inventory
// as JSON, the budget file (lint_debt.json) is committed, and CI diffs
// the two. A new suppression fails the build unless the budget file is
// updated in the same change — growth is possible, but only as an
// explicit, reviewable diff. Shrinking always passes (with a nudge to
// refresh the baseline), and a directive with no reason text is an
// immediate failure regardless of the budget: unjustified allows are
// debt with no paper trail.

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"geostat/internal/lint/load"
)

// DebtEntry is one //lint:allow directive found in production sources.
type DebtEntry struct {
	// File is the module-relative, slash-separated path.
	File string `json:"file"`
	Line int    `json:"line"`
	// Analyzers are the analyzer names the directive suppresses.
	Analyzers []string `json:"analyzers"`
	// Reason is the justification text after the analyzer list; empty
	// means unjustified.
	Reason string `json:"reason,omitempty"`
}

// DebtReport is the module's full suppression inventory.
type DebtReport struct {
	// Total counts directives (an entry naming two analyzers is one
	// directive but two budget units in ByAnalyzer).
	Total int `json:"total"`
	// Unjustified counts directives with no reason text.
	Unjustified int `json:"unjustified"`
	// ByAnalyzer counts suppressions charged to each analyzer.
	ByAnalyzer map[string]int `json:"by_analyzer"`
	// Entries lists every directive, sorted by file then line.
	Entries []DebtEntry `json:"entries"`
}

// CollectDebt inventories every //lint:allow directive in pkgs. Test
// files and testdata fixtures never enter the loader, so the inventory
// covers exactly the code the lint gate covers.
func CollectDebt(l *load.Loader, pkgs []*load.Package) *DebtReport {
	r := &DebtReport{ByAnalyzer: map[string]int{}}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					names, reason, ok := parseAllowDetail(c.Text)
					if !ok {
						continue
					}
					pos := l.Fset.Position(c.Pos())
					rel, err := filepath.Rel(l.ModuleRoot, pos.Filename)
					if err != nil {
						rel = pos.Filename
					}
					e := DebtEntry{
						File:      filepath.ToSlash(rel),
						Line:      pos.Line,
						Analyzers: names,
						Reason:    reason,
					}
					r.Entries = append(r.Entries, e)
					r.Total++
					if reason == "" {
						r.Unjustified++
					}
					for _, n := range names {
						r.ByAnalyzer[n]++
					}
				}
			}
		}
	}
	sort.Slice(r.Entries, func(i, j int) bool {
		if r.Entries[i].File != r.Entries[j].File {
			return r.Entries[i].File < r.Entries[j].File
		}
		return r.Entries[i].Line < r.Entries[j].Line
	})
	return r
}

// JSON renders the report in the committed-baseline format: indented,
// trailing newline, deterministic key order (encoding/json sorts maps).
func (r *DebtReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ParseDebt reads a report previously written by JSON.
func ParseDebt(data []byte) (*DebtReport, error) {
	var r DebtReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("debt baseline: %w", err)
	}
	if r.ByAnalyzer == nil {
		r.ByAnalyzer = map[string]int{}
	}
	return &r, nil
}

// DiffDebt compares the current inventory against the committed budget.
// It returns a human-readable delta table and whether the gate passes.
// The gate fails when any analyzer's suppression count grew beyond the
// budget, or when any current directive has no reason. Shrinking passes
// but the table asks for a baseline refresh so the budget stays tight.
func DiffDebt(baseline, current *DebtReport) (string, bool) {
	names := map[string]bool{}
	for n := range baseline.ByAnalyzer {
		names[n] = true
	}
	for n := range current.ByAnalyzer {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		//lint:allow maporder sorted immediately below; only membership comes from the map
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	var sb strings.Builder
	ok := true
	shrunk := false
	fmt.Fprintf(&sb, "%-16s %8s %8s %7s\n", "analyzer", "budget", "current", "delta")
	for _, n := range sorted {
		b, c := baseline.ByAnalyzer[n], current.ByAnalyzer[n]
		mark := ""
		switch {
		case c > b:
			mark = "  GREW: update lint_debt.json in this change to accept the new suppression"
			ok = false
		case c < b:
			shrunk = true
		}
		fmt.Fprintf(&sb, "%-16s %8d %8d %+7d%s\n", n, b, c, c-b, mark)
	}
	if current.Unjustified > 0 {
		ok = false
		for _, e := range current.Entries {
			if e.Reason == "" {
				fmt.Fprintf(&sb, "%s:%d: //lint:allow %s has no reason — every suppression must say why\n",
					e.File, e.Line, strings.Join(e.Analyzers, ","))
			}
		}
	}
	if ok && shrunk {
		sb.WriteString("debt shrank: refresh the baseline with `make lint-debt` to lock in the lower budget\n")
	}
	return sb.String(), ok
}

// parseAllowDetail recognises "//lint:allow name1[,name2] reason..." and
// returns the allowed analyzer names plus the reason text (empty when the
// directive carries none).
func parseAllowDetail(text string) (names []string, reason string, ok bool) {
	rest, found := strings.CutPrefix(text, "//lint:allow")
	if !found {
		return nil, "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, "", false
	}
	return strings.Split(fields[0], ","), strings.Join(fields[1:], " "), true
}
