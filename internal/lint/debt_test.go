package lint

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseAllowDetail(t *testing.T) {
	tests := []struct {
		text   string
		names  []string
		reason string
		ok     bool
	}{
		{"//lint:allow maporder keys are sorted below", []string{"maporder"}, "keys are sorted below", true},
		{"//lint:allow floateq,maporder shared justification", []string{"floateq", "maporder"}, "shared justification", true},
		{"//lint:allow cancelleak", []string{"cancelleak"}, "", true},
		{"//lint:allow", nil, "", false},
		{"// lint:allow maporder spaced prefix is not a directive", nil, "", false},
		{"// plain comment", nil, "", false},
	}
	for _, tt := range tests {
		names, reason, ok := parseAllowDetail(tt.text)
		if ok != tt.ok || reason != tt.reason || len(names) != len(tt.names) {
			t.Errorf("parseAllowDetail(%q) = (%v, %q, %v), want (%v, %q, %v)",
				tt.text, names, reason, ok, tt.names, tt.reason, tt.ok)
			continue
		}
		for i := range names {
			if names[i] != tt.names[i] {
				t.Errorf("parseAllowDetail(%q) names[%d] = %q, want %q", tt.text, i, names[i], tt.names[i])
			}
		}
	}
}

func report(byAnalyzer map[string]int, entries ...DebtEntry) *DebtReport {
	r := &DebtReport{ByAnalyzer: byAnalyzer, Entries: entries}
	for _, n := range byAnalyzer {
		r.Total += n
	}
	for _, e := range entries {
		if e.Reason == "" {
			r.Unjustified++
		}
	}
	return r
}

func TestDiffDebtGate(t *testing.T) {
	base := report(map[string]int{"maporder": 2, "floateq": 1})

	t.Run("equal passes", func(t *testing.T) {
		table, ok := DiffDebt(base, report(map[string]int{"maporder": 2, "floateq": 1}))
		if !ok {
			t.Fatalf("equal debt must pass:\n%s", table)
		}
	})
	t.Run("growth fails", func(t *testing.T) {
		table, ok := DiffDebt(base, report(map[string]int{"maporder": 3, "floateq": 1}))
		if ok {
			t.Fatalf("growth must fail")
		}
		if !strings.Contains(table, "GREW") {
			t.Fatalf("table must flag the grown analyzer:\n%s", table)
		}
	})
	t.Run("new analyzer fails", func(t *testing.T) {
		_, ok := DiffDebt(base, report(map[string]int{"maporder": 2, "floateq": 1, "cancelleak": 1}))
		if ok {
			t.Fatalf("a suppression for a previously debt-free analyzer must fail")
		}
	})
	t.Run("shrink passes with refresh note", func(t *testing.T) {
		table, ok := DiffDebt(base, report(map[string]int{"maporder": 1, "floateq": 1}))
		if !ok {
			t.Fatalf("shrinking must pass:\n%s", table)
		}
		if !strings.Contains(table, "refresh the baseline") {
			t.Fatalf("shrink must ask for a baseline refresh:\n%s", table)
		}
	})
	t.Run("unjustified fails even within budget", func(t *testing.T) {
		cur := report(map[string]int{"maporder": 2, "floateq": 1},
			DebtEntry{File: "a.go", Line: 3, Analyzers: []string{"maporder"}})
		table, ok := DiffDebt(base, cur)
		if ok {
			t.Fatalf("a reason-less directive must fail regardless of budget")
		}
		if !strings.Contains(table, "no reason") {
			t.Fatalf("table must name the unjustified directive:\n%s", table)
		}
	})
}

func TestDebtJSONRoundTrip(t *testing.T) {
	r := report(map[string]int{"maporder": 1},
		DebtEntry{File: "internal/x/x.go", Line: 10, Analyzers: []string{"maporder"}, Reason: "sorted below"})
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseDebt(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total != r.Total || got.Unjustified != r.Unjustified ||
		got.ByAnalyzer["maporder"] != 1 || len(got.Entries) != 1 ||
		!reflect.DeepEqual(got.Entries[0], r.Entries[0]) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if data[len(data)-1] != '\n' {
		t.Fatalf("baseline format must end with a newline")
	}
}
