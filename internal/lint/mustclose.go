package lint

import (
	"go/ast"
	"go/types"

	"geostat/internal/lint/analysis"
)

// MustClose verifies that OS-level resources acquired from a curated set
// of constructors — open files and network listeners/connections — are
// closed on every path to function exit, or escape to the caller. A
// descriptor leaked once per request is an EMFILE crash at serving
// scale; a leaked listener keeps its port.
var MustClose = &analysis.Analyzer{
	Name: "mustclose",
	Doc: "os.Open/Create files and net.Listen/Dial endpoints are closed " +
		"on all paths to return (or escape to the caller)",
	Run: runMustClose,
}

// mustCloseSources maps acquiring calls to the resource name used in
// diagnostics. All return (resource, error).
var mustCloseSources = map[string]string{
	"os.Open":         "file from os.Open",
	"os.Create":       "file from os.Create",
	"os.OpenFile":     "file from os.OpenFile",
	"os.CreateTemp":   "file from os.CreateTemp",
	"net.Listen":      "listener from net.Listen",
	"net.ListenTCP":   "listener from net.ListenTCP",
	"net.Dial":        "connection from net.Dial",
	"net.DialTimeout": "connection from net.DialTimeout",
}

func runMustClose(pass *analysis.Pass) error {
	rule := &obRule{
		acquisitions: func(pass *analysis.Pass, node ast.Node) []*oblig {
			return valueAcquisitions(pass, node,
				func(fn *types.Func, sig *types.Signature) (int, int, string, bool) {
					what, ok := mustCloseSources[funcKey(fn)]
					if !ok {
						return 0, 0, "", false
					}
					return 0, 1, what, true
				},
				func(pass *analysis.Pass, call *ast.CallExpr, what string) {
					pass.Reportf(call.Pos(),
						"%s is discarded without being closed; bind it and close it", what)
				})
		},
		isRelease: func(pass *analysis.Pass, call *ast.CallExpr, ob *oblig) bool {
			return methodReleaseCall(pass, call, ob, "", "Close")
		},
		leak: func(ob *oblig) string {
			return ob.what + " is not closed on every path to return; the leaked path holds the descriptor"
		},
	}
	return runObligations(pass, rule)
}
