package lint

import (
	"encoding/json"
	"testing"

	"geostat/internal/lint/analysis"
)

func sarifFixture() ([]*analysis.Analyzer, []Finding) {
	gate := &analysis.Analyzer{Name: "gatecheck", Doc: "a gating analyzer"}
	note := &analysis.Analyzer{Name: "notecheck", Doc: "an advisory analyzer", Advisory: true}
	findings := []Finding{
		{
			Diagnostic: analysis.Diagnostic{Analyzer: "gatecheck", Message: "boom"},
			File:       "pkg/a.go", Line: 3, Col: 7,
		},
		{
			Diagnostic: analysis.Diagnostic{Analyzer: "notecheck", Message: "hmm"},
			Advisory:   true,
			File:       "pkg/b.go", Line: 12, Col: 1,
		},
	}
	return []*analysis.Analyzer{gate, note}, findings
}

// TestSARIFStructure decodes the emitted SARIF as generic JSON and
// asserts the 2.1.0 shape code scanning requires: schema/version, a rule
// per analyzer, results with ruleId/ruleIndex/level/locations.
func TestSARIFStructure(t *testing.T) {
	analyzers, findings := sarifFixture()
	raw, err := SARIF(analyzers, findings)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if v := doc["version"]; v != "2.1.0" {
		t.Errorf("version = %v, want 2.1.0", v)
	}
	if s, _ := doc["$schema"].(string); s == "" {
		t.Error("missing $schema")
	}
	runs := doc["runs"].([]any)
	if len(runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(runs))
	}
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != "geolint" {
		t.Errorf("driver name = %v", driver["name"])
	}
	rules := driver["rules"].([]any)
	if len(rules) != 2 {
		t.Fatalf("rules = %d, want 2", len(rules))
	}
	r0 := rules[0].(map[string]any)
	if r0["id"] != "gatecheck" {
		t.Errorf("rule 0 id = %v", r0["id"])
	}
	if lvl := r0["defaultConfiguration"].(map[string]any)["level"]; lvl != "error" {
		t.Errorf("gating rule level = %v, want error", lvl)
	}
	r1 := rules[1].(map[string]any)
	if lvl := r1["defaultConfiguration"].(map[string]any)["level"]; lvl != "note" {
		t.Errorf("advisory rule level = %v, want note", lvl)
	}

	results := run["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	res0 := results[0].(map[string]any)
	if res0["ruleId"] != "gatecheck" || res0["level"] != "error" {
		t.Errorf("result 0 = %v", res0)
	}
	if idx := res0["ruleIndex"].(float64); idx != 0 {
		t.Errorf("result 0 ruleIndex = %v", idx)
	}
	loc := res0["locations"].([]any)[0].(map[string]any)["physicalLocation"].(map[string]any)
	if uri := loc["artifactLocation"].(map[string]any)["uri"]; uri != "pkg/a.go" {
		t.Errorf("uri = %v", uri)
	}
	if line := loc["region"].(map[string]any)["startLine"].(float64); line != 3 {
		t.Errorf("startLine = %v", line)
	}
	res1 := results[1].(map[string]any)
	if res1["level"] != "note" {
		t.Errorf("advisory result level = %v, want note", res1["level"])
	}
}

// TestSARIFEmptyFindings: an all-clean run still emits the full rule
// table and an empty (not null) results array.
func TestSARIFEmptyFindings(t *testing.T) {
	analyzers, _ := sarifFixture()
	raw, err := SARIF(analyzers, nil)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Runs []struct {
			Results []any `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Runs[0].Results == nil {
		t.Error("results is null; code scanning wants an empty array")
	}
}

func TestJSONReport(t *testing.T) {
	_, findings := sarifFixture()
	raw, err := JSONReport(findings)
	if err != nil {
		t.Fatal(err)
	}
	var got []map[string]any
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("findings = %d, want 2", len(got))
	}
	if got[0]["file"] != "pkg/a.go" || got[0]["advisory"] != false {
		t.Errorf("finding 0 = %v", got[0])
	}
	if got[1]["advisory"] != true {
		t.Errorf("finding 1 advisory = %v", got[1]["advisory"])
	}
}
