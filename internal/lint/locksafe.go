package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"geostat/internal/lint/analysis"
)

// LockSafe rejects blocking work inside mutex critical sections: between
// a sync.Mutex/RWMutex (R)Lock and its (R)Unlock, no channel operation,
// select, or call to a function carrying the MayBlock fact may appear.
// A goroutine that blocks while holding a lock stalls every other
// goroutine contending for it — in this codebase that means a slow
// metrics scrape or a stuck worker freezes request handling. This is the
// statically-checkable half of the registry race class fixed in PR 4.
//
// The critical-section tracking is syntactic and per-function: a lock is
// considered held from the Lock() statement to the matching Unlock() in
// the same block (deferred unlocks hold to function end). Function
// literals are analyzed as their own scopes; a closure defined under a
// held lock is only flagged through the call that runs it (parallel.For
// carries MayBlock, so the common "fan out under lock" mistake is still
// caught at the call site).
var LockSafe = &analysis.Analyzer{
	Name: "locksafe",
	Doc: "no sync.Mutex/RWMutex held across channel operations or calls " +
		"that may block (MayBlock fact)",
	Requires:  []*analysis.Analyzer{BlockFacts},
	FactTypes: []analysis.Fact{(*MayBlock)(nil)},
	Run:       runLockSafe,
}

func runLockSafe(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkLockRegions(pass, n.Body.List, map[string]token.Pos{})
				}
			case *ast.FuncLit:
				checkLockRegions(pass, n.Body.List, map[string]token.Pos{})
			}
			return true
		})
	}
	return nil
}

// checkLockRegions scans one statement list tracking which mutexes are
// held. Nested blocks get a copy of the held set: a lock acquired inside
// an if-branch does not leak to the statements after it, and an unlock
// inside a branch does not clear the parent's view (conservative both
// ways — the analyzer prefers a missed region over a false "not held").
func checkLockRegions(pass *analysis.Pass, stmts []ast.Stmt, held map[string]token.Pos) {
	for _, stmt := range stmts {
		checkOneStmt(pass, stmt, held)
	}
}

// checkOneStmt handles a single statement: lock-set bookkeeping for
// (un)lock calls, violation scanning for simple statements, and
// header-scan + recursion for control flow (so nested statements are
// scanned exactly once, by their own block's pass).
func checkOneStmt(pass *analysis.Pass, stmt ast.Stmt, held map[string]token.Pos) {
	if name, _, op, ok := lockOp(pass, stmt); ok {
		switch op {
		case "Lock", "RLock":
			held[name] = stmt.Pos()
		case "Unlock", "RUnlock":
			delete(held, name)
		}
		return
	}
	if d, ok := stmt.(*ast.DeferStmt); ok {
		// defer mu.Unlock() keeps the lock held to function end; it is not
		// itself work done under the lock. Other deferred calls fall
		// through: with a deferred unlock in place they run before it
		// (LIFO), i.e. still under the lock.
		if _, _, op, ok := deferLockOp(pass, d); ok && (op == "Unlock" || op == "RUnlock") {
			return
		}
	}
	switch s := stmt.(type) {
	case *ast.BlockStmt, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
		*ast.SwitchStmt, *ast.TypeSwitchStmt:
		if len(held) > 0 {
			reportBlockingInHeader(pass, stmt, held)
		}
		descendLockRegions(pass, stmt, held)
	case *ast.SelectStmt:
		if len(held) > 0 {
			pass.Reportf(s.Pos(), "select while %s is held; release the lock before communicating", heldName(held))
		}
		descendLockRegions(pass, stmt, held)
	case *ast.LabeledStmt:
		checkOneStmt(pass, s.Stmt, held)
	default:
		if len(held) > 0 {
			reportBlockingIn(pass, stmt, held)
		}
	}
}

// reportBlockingInHeader scans only the non-body parts of a control-flow
// statement (init/condition/post/range operand); the bodies are scanned
// by the recursive block pass.
func reportBlockingInHeader(pass *analysis.Pass, stmt ast.Stmt, held map[string]token.Pos) {
	scan := func(n ast.Node) {
		if n != nil {
			reportBlockingIn(pass, n, held)
		}
	}
	switch s := stmt.(type) {
	case *ast.IfStmt:
		scan(s.Init)
		scan(s.Cond)
	case *ast.ForStmt:
		scan(s.Init)
		scan(s.Cond)
		scan(s.Post)
	case *ast.RangeStmt:
		if t := pass.TypesInfo.TypeOf(s.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				pass.Reportf(s.Pos(), "range over channel while %s is held; release the lock before communicating", heldName(held))
			}
		}
		scan(s.X)
	case *ast.SwitchStmt:
		scan(s.Init)
		scan(s.Tag)
	case *ast.TypeSwitchStmt:
		scan(s.Init)
		scan(s.Assign)
	}
}

// lockOp recognises a statement of the form `expr.Lock()` / `expr.Unlock()`
// (and RLock/RUnlock) on a sync.Mutex or sync.RWMutex, returning the
// receiver's source text as the tracking key.
func lockOp(pass *analysis.Pass, stmt ast.Stmt) (name string, pos token.Pos, op string, ok bool) {
	es, isExpr := stmt.(*ast.ExprStmt)
	if !isExpr {
		return "", 0, "", false
	}
	call, isCall := es.X.(*ast.CallExpr)
	if !isCall {
		return "", 0, "", false
	}
	return lockCall(pass, call)
}

func deferLockOp(pass *analysis.Pass, d *ast.DeferStmt) (name string, pos token.Pos, op string, ok bool) {
	return lockCall(pass, d.Call)
}

func lockCall(pass *analysis.Pass, call *ast.CallExpr) (name string, pos token.Pos, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", 0, "", false
	}
	fn := staticCallee(pass, call)
	if fn == nil {
		return "", 0, "", false
	}
	switch funcKey(fn) {
	case "(sync.Mutex).Lock", "(sync.RWMutex).Lock":
		return exprString(pass.Fset, sel.X), call.Pos(), "Lock", true
	case "(sync.RWMutex).RLock":
		return exprString(pass.Fset, sel.X), call.Pos(), "RLock", true
	case "(sync.Mutex).Unlock", "(sync.RWMutex).Unlock":
		return exprString(pass.Fset, sel.X), call.Pos(), "Unlock", true
	case "(sync.RWMutex).RUnlock":
		return exprString(pass.Fset, sel.X), call.Pos(), "RUnlock", true
	}
	return "", 0, "", false
}

// reportBlockingIn scans one simple statement or expression (not
// descending into nested function literals) for blocking constructs
// while locks in held are held.
func reportBlockingIn(pass *analysis.Pass, root ast.Node, held map[string]token.Pos) {
	holder := heldName(held)
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its body runs later; the invoking call is checked instead
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send while %s is held; release the lock before communicating", holder)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "channel receive while %s is held; release the lock before communicating", holder)
			}
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), "select while %s is held; release the lock before communicating", holder)
		case *ast.CallExpr:
			fn := staticCallee(pass, n)
			if fn == nil {
				return true
			}
			key := funcKey(fn)
			if key == "(sync.Mutex).Unlock" || key == "(sync.RWMutex).Unlock" || key == "(sync.RWMutex).RUnlock" {
				return true
			}
			if blockingStdlib[key] {
				pass.Reportf(n.Pos(), "call to %s while %s is held; it may block — release the lock first", key, holder)
				return true
			}
			var mb MayBlock
			if pass.ImportObjectFact(fn, &mb) {
				pass.Reportf(n.Pos(), "call to %s while %s is held; it may block (%s) — release the lock first", key, holder, mb.Why)
			}
		}
		return true
	})
}

// heldName renders the held-lock set for diagnostics: the lexically
// first-locked mutex name (deterministic, not map order).
func heldName(held map[string]token.Pos) string {
	best := ""
	var bestPos token.Pos = -1
	for name, pos := range held {
		if bestPos < 0 || pos < bestPos || (pos == bestPos && name < best) {
			best, bestPos = name, pos
		}
	}
	return "mutex " + best
}

// descendLockRegions recurses into the nested statement lists of stmt,
// passing each a copy of the held set.
func descendLockRegions(pass *analysis.Pass, stmt ast.Stmt, held map[string]token.Pos) {
	clone := func() map[string]token.Pos {
		c := make(map[string]token.Pos, len(held))
		for k, v := range held {
			c[k] = v
		}
		return c
	}
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		checkLockRegions(pass, s.List, clone())
	case *ast.IfStmt:
		checkLockRegions(pass, s.Body.List, clone())
		if s.Else != nil {
			// else / else-if: route through checkOneStmt so an else-if's
			// header is scanned too.
			checkOneStmt(pass, s.Else, clone())
		}
	case *ast.ForStmt:
		checkLockRegions(pass, s.Body.List, clone())
	case *ast.RangeStmt:
		checkLockRegions(pass, s.Body.List, clone())
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				checkLockRegions(pass, cc.Body, clone())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				checkLockRegions(pass, cc.Body, clone())
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				checkLockRegions(pass, cc.Body, clone())
			}
		}
	}
}
