package lint

import (
	"encoding/json"
	"path/filepath"

	"geostat/internal/lint/analysis"
)

// SARIF 2.1.0 output (static analysis results interchange format), the
// subset GitHub code scanning consumes: one run, one tool, one rule per
// analyzer, one result per finding. Advisory analyzers map to level
// "note" so code scanning surfaces them without failing the check; gating
// analyzers map to "error".

const (
	sarifSchema  = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID                   string       `json:"id"`
	ShortDescription     sarifMessage `json:"shortDescription"`
	DefaultConfiguration sarifConfig  `json:"defaultConfiguration"`
}

type sarifConfig struct {
	Level string `json:"level"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

func sarifLevel(advisory bool) string {
	if advisory {
		return "note"
	}
	return "error"
}

// SARIF renders findings as a SARIF 2.1.0 log. analyzers defines the
// rule table (every analyzer that ran, findings or not — code scanning
// uses the table to show rule metadata), in the given order.
func SARIF(analyzers []*analysis.Analyzer, findings []Finding) ([]byte, error) {
	rules := make([]sarifRule, len(analyzers))
	index := make(map[string]int, len(analyzers))
	for i, a := range analyzers {
		rules[i] = sarifRule{
			ID:                   a.Name,
			ShortDescription:     sarifMessage{Text: a.Doc},
			DefaultConfiguration: sarifConfig{Level: sarifLevel(a.Advisory)},
		}
		index[a.Name] = i
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:    f.Analyzer,
			RuleIndex: index[f.Analyzer],
			Level:     sarifLevel(f.Advisory),
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(f.File)},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "geolint", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}

// jsonFinding is the -json output record: one finding, flattened.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Advisory bool   `json:"advisory"`
}

// JSONReport renders findings as a JSON array (machine-readable variant
// of the default text output; same ordering).
func JSONReport(findings []Finding) ([]byte, error) {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:     filepath.ToSlash(f.File),
			Line:     f.Line,
			Col:      f.Col,
			Analyzer: f.Analyzer,
			Message:  f.Message,
			Advisory: f.Advisory,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}
