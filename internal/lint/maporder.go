package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"geostat/internal/lint/analysis"
)

// MapOrder flags `range` over a map whose body assembles ordered or
// order-sensitive results in variables declared outside the loop:
//
//   - append to an outer slice (the output order follows map iteration
//     order, which Go randomises per run);
//   - += / -= / *= / /= on an outer float variable (float arithmetic is
//     not associative, so the accumulated value is run-dependent at the
//     bit level — exactly what breaks the repo's bit-identical guarantees);
//   - += on an outer string (concatenation order is the iteration order).
//
// Integer accumulation, counting, and map-to-map transforms are
// order-insensitive and pass. The fix is to sort the keys first (or
// restructure onto a slice); a deliberate unordered assembly can carry
// //lint:allow maporder with the reason.
var MapOrder = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flags map iteration feeding order-sensitive accumulation " +
		"(appends, float/string +=) in outer variables; sort keys first",
	Run: runMapOrder,
}

func runMapOrder(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(pass, rs)
			return true
		})
	}
	return nil
}

func checkMapRangeBody(pass *analysis.Pass, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ASSIGN:
			// x = append(x, ...) with x declared outside the loop.
			for i, rhs := range as.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(as.Lhs) {
					continue
				}
				if obj := rootObj(pass, as.Lhs[i]); obj != nil && declaredOutside(obj, rs) {
					pass.Reportf(as.Pos(), "append to %q inside map iteration: output order is nondeterministic; sort the keys first", obj.Name())
				}
			}
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			for _, lhs := range as.Lhs {
				obj := rootObj(pass, lhs)
				if obj == nil || !declaredOutside(obj, rs) {
					continue
				}
				tv, ok := pass.TypesInfo.Types[lhs]
				if !ok {
					continue
				}
				switch {
				case isFloat(tv.Type):
					pass.Reportf(as.Pos(), "float accumulation into %q inside map iteration is order-dependent at the bit level; sort the keys first", obj.Name())
				case isString(tv.Type) && as.Tok == token.ADD_ASSIGN:
					pass.Reportf(as.Pos(), "string concatenation into %q inside map iteration follows map order; sort the keys first", obj.Name())
				}
			}
		}
		return true
	})
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[id]
	if !ok {
		return false
	}
	b, ok := obj.(*types.Builtin)
	return ok && b.Name() == "append"
}

// rootObj resolves the variable at the base of an assignable expression
// (x, x.f, x[i] all resolve to x).
func rootObj(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return pass.TypesInfo.ObjectOf(v)
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether obj's declaration precedes the range
// statement (so mutations inside the loop escape it).
func declaredOutside(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() < rs.Pos()
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
