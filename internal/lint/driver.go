package lint

import (
	"fmt"
	"sort"
	"strings"

	"geostat/internal/lint/analysis"
	"geostat/internal/lint/load"
)

// This file is the geolint driver: it runs a set of analyzers over a set
// of packages with cross-package fact propagation. Two orderings make
// facts sound:
//
//   - packages run in import dependency order (a package only runs after
//     everything it imports), so facts about imported objects are already
//     in the store when a consumer looks them up;
//   - within each package, analyzers run in Requires order, so a fact
//     producer (blockfacts) has exported its facts for THIS package before
//     a same-package consumer (locksafe) asks for them.
//
// Both sorts are stable with deterministic tie-breaks (import path,
// declaration order), so geolint's output order is reproducible.

// Finding is one surviving diagnostic plus the gate classification of the
// analyzer that produced it.
type Finding struct {
	analysis.Diagnostic
	// Advisory mirrors the producing analyzer's Advisory flag: advisory
	// findings are reported but never fail the run.
	Advisory bool
	// File, Line, Col are the resolved position (File relative to the
	// module root when possible).
	File string
	Line int
	Col  int
}

// RunPackages applies analyzers to pkgs with shared fact propagation and
// returns surviving findings sorted by position. Packages with type
// errors are an error: facts derived from a broken package would be
// meaningless.
func RunPackages(l *load.Loader, pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	analyzers, err := sortAnalyzers(analyzers)
	if err != nil {
		return nil, err
	}
	ordered, err := sortPackages(pkgs)
	if err != nil {
		return nil, err
	}
	store := analysis.NewFactStore()
	var findings []Finding
	for _, pkg := range ordered {
		if len(pkg.Errors) > 0 {
			return nil, fmt.Errorf("%s: type error: %v", pkg.Path, pkg.Errors[0])
		}
		var diags []analysis.Diagnostic
		advisory := make(map[string]bool, len(analyzers))
		for _, a := range analyzers {
			advisory[a.Name] = a.Advisory
			pass := analysis.NewPass(a, l.Fset, pkg.Files, pkg.Path, pkg.Types, pkg.Info,
				func(d analysis.Diagnostic) { diags = append(diags, d) })
			pass.SetFacts(store)
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
			}
		}
		diags = filterAllowed(l, pkg, diags)
		for _, d := range diags {
			pos := l.Fset.Position(d.Pos)
			name := pos.Filename
			if rel, ok := strings.CutPrefix(name, l.ModuleRoot+"/"); ok {
				name = rel
			}
			findings = append(findings, Finding{
				Diagnostic: d,
				Advisory:   advisory[d.Analyzer],
				File:       name,
				Line:       pos.Line,
				Col:        pos.Column,
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// ExitCode maps a run's findings to geolint's exit status: 1 iff any
// non-suppressed finding came from a gating (non-advisory) analyzer, 0
// otherwise. Advisory findings never mask or zero a gating failure — the
// fold is monotone, whatever order findings arrive in.
func ExitCode(findings []Finding) int {
	for _, f := range findings {
		if !f.Advisory {
			return 1
		}
	}
	return 0
}

// sortAnalyzers returns analyzers in dependency order: every analyzer
// runs after all of its Requires. The sort is stable (input order breaks
// ties) and a Requires cycle is an error. Required analyzers that were
// not passed in are added implicitly — a consumer without its fact
// producer would silently see an empty store.
func sortAnalyzers(in []*analysis.Analyzer) ([]*analysis.Analyzer, error) {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[*analysis.Analyzer]int)
	var out []*analysis.Analyzer
	var visit func(a *analysis.Analyzer) error
	visit = func(a *analysis.Analyzer) error {
		switch state[a] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: analyzer dependency cycle through %q", a.Name)
		}
		state[a] = visiting
		for _, req := range a.Requires {
			if err := visit(req); err != nil {
				return err
			}
		}
		state[a] = done
		out = append(out, a)
		return nil
	}
	for _, a := range in {
		if err := visit(a); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// sortPackages returns pkgs in import dependency order: a package comes
// after every package in the input set that it (transitively) imports.
// Ties (and the starting order) are import-path order, so the result is
// deterministic. Imports outside the input set (stdlib, unanalyzed
// packages) are ignored.
func sortPackages(in []*load.Package) ([]*load.Package, error) {
	byPath := make(map[string]*load.Package, len(in))
	paths := make([]string, 0, len(in))
	for _, p := range in {
		byPath[p.Path] = p
		paths = append(paths, p.Path)
	}
	sort.Strings(paths)

	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int)
	var out []*load.Package
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: package import cycle through %q", path)
		}
		state[path] = visiting
		pkg := byPath[path]
		if pkg.Types != nil {
			imps := make([]string, 0, len(pkg.Types.Imports()))
			for _, imp := range pkg.Types.Imports() {
				if _, ok := byPath[imp.Path()]; ok {
					imps = append(imps, imp.Path())
				}
			}
			sort.Strings(imps)
			for _, imp := range imps {
				if err := visit(imp); err != nil {
					return err
				}
			}
		}
		state[path] = done
		out = append(out, pkg)
		return nil
	}
	for _, path := range paths {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return out, nil
}
