package lint

import (
	"go/ast"
	"go/types"

	"geostat/internal/lint/analysis"
)

// MayBlock is exported for every function that can block the calling
// goroutine: it performs a channel operation or select, calls a known
// blocking standard-library function, or (transitively) calls a function
// that does. locksafe consumes it to reject blocking work inside mutex
// critical sections.
type MayBlock struct {
	// Why is a human-readable chain explaining the classification,
	// e.g. "calls geostat/internal/parallel.ForCtx, which may block
	// ((sync.WaitGroup).Wait)".
	Why string
}

// AFact marks MayBlock as a fact type.
func (*MayBlock) AFact() {}

// blockingStdlib lists standard-library functions that block the calling
// goroutine (or can, depending on I/O). Keys use funcKey naming. The
// table is deliberately curated rather than exhaustive: entries are
// things this codebase calls, or plausibly will, where blocking while
// holding a lock has bitten real systems. fmt.Fprint* is included
// because it writes to an arbitrary io.Writer — in production here that
// writer is an HTTP response socket, so its latency belongs to the
// remote peer. fmt.Sprint*/Print* (strings, stdout) are not.
var blockingStdlib = map[string]bool{
	"time.Sleep":               true,
	"(sync.WaitGroup).Wait":    true,
	"(sync.Cond).Wait":         true,
	"(net/http.Client).Do":     true,
	"(net/http.Client).Get":    true,
	"(net/http.Client).Post":   true,
	"net/http.Get":             true,
	"net/http.Post":            true,
	"net.Dial":                 true,
	"net.DialTimeout":          true,
	"net.Listen":               true,
	"(os/exec.Cmd).Run":        true,
	"(os/exec.Cmd).Wait":       true,
	"(os/exec.Cmd).Output":     true,
	"(os/exec.Cmd).CombinedOutput": true,
	"io.ReadAll":               true,
	"io.Copy":                  true,
	"io.CopyN":                 true,
	"fmt.Fprintf":              true,
	"fmt.Fprint":               true,
	"fmt.Fprintln":             true,
	"fmt.Fscan":                true,
	"fmt.Fscanf":               true,
	"fmt.Fscanln":              true,
	"(bufio.Scanner).Scan":     true,
	"(bufio.Writer).Flush":     true,
	"(os.File).Read":           true,
	"(os.File).Write":          true,
	"(os.File).Sync":           true,
	"os.ReadFile":              true,
	"os.WriteFile":             true,
}

// BlockFacts computes and exports the MayBlock fact for the package's
// functions. It reports nothing itself; locksafe turns the facts into
// diagnostics.
//
// The analysis is an over-approximation with one deliberate hole each
// way: closures are attributed to their enclosing function even when the
// closure only runs later (over-reports), and calls through function
// values or interface methods are invisible (under-reports).
// sync.Mutex.Lock itself is NOT may-block: lock-ordering is out of
// scope, and marking it would flag every nested critical section.
var BlockFacts = &analysis.Analyzer{
	Name: "blockfacts",
	Doc: "fact producer: mark functions that may block (channel ops, select, " +
		"blocking stdlib calls, or transitive calls to either); reports nothing",
	FactTypes: []analysis.Fact{(*MayBlock)(nil)},
	Run:       runBlockFacts,
}

func runBlockFacts(pass *analysis.Pass) error {
	infos := packageFuncs(pass)
	index := make(map[*types.Func]int, len(infos))
	for i, fi := range infos {
		index[fi.fn] = i
	}

	why := make([]string, len(infos))          // non-empty = may block
	callees := make([][]*types.Func, len(infos)) // same-package static callees

	for i, fi := range infos {
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			if why[i] != "" {
				return false
			}
			switch n := n.(type) {
			case *ast.SendStmt:
				why[i] = "channel send"
			case *ast.UnaryExpr:
				if n.Op.String() == "<-" {
					why[i] = "channel receive"
				}
			case *ast.SelectStmt:
				why[i] = "select"
			case *ast.RangeStmt:
				if t := pass.TypesInfo.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						why[i] = "range over channel"
					}
				}
			case *ast.CallExpr:
				fn := staticCallee(pass, n)
				if fn == nil {
					return true
				}
				key := funcKey(fn)
				switch {
				case blockingStdlib[key]:
					why[i] = "calls " + key
				case fn.Pkg() == pass.Pkg:
					callees[i] = append(callees[i], fn)
				default:
					var mb MayBlock
					if pass.ImportObjectFact(fn, &mb) {
						why[i] = "calls " + key + ", which may block (" + mb.Why + ")"
					}
				}
			}
			return true
		})
	}

	// Same-package call-graph fixpoint: a function that calls a may-block
	// function may block. Iterates to a fixed point (bounded by the number
	// of functions); iteration order does not affect the result.
	for changed := true; changed; {
		changed = false
		for i := range infos {
			if why[i] != "" {
				continue
			}
			for _, callee := range callees[i] {
				j, ok := index[callee]
				if !ok || why[j] == "" {
					continue
				}
				why[i] = "calls " + funcKey(callee) + ", which may block"
				changed = true
				break
			}
		}
	}

	for i, fi := range infos {
		if why[i] != "" {
			pass.ExportObjectFact(fi.fn, &MayBlock{Why: why[i]})
		}
	}
	return nil
}
