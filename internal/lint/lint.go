// Package lint is geolint: the project-specific static-analysis suite that
// enforces the repository's determinism and concurrency invariants at
// vet-time instead of in flaky test runs.
//
// Since the facts upgrade, geolint is a cross-package analysis framework:
// the driver (see driver.go) runs analyzers over the module's packages in
// import dependency order, analyzers export typed facts about
// package-level objects (a function may block; a function's results
// depend on an entropy source; a function neither allocates nor performs
// I/O), and downstream analyzers consume facts from imported packages.
//
// The custom analyzers guard the conventions PR 1 established plus the
// scale-out preconditions (distributed tiles, bit-exact shard merges)
// from the roadmap:
//
//   - norawgoroutine — every goroutine is owned by internal/parallel;
//   - seededrand — every random draw comes from an explicitly seeded
//     source threaded through options (no math/rand globals, no rand.New
//     outside internal/parallel);
//   - floateq — no ==/!= on computed floating-point values in statistic
//     code (zero sentinels and NaN self-compares are allowed);
//   - maporder — no result assembly driven by map iteration order;
//   - workersopt — every exported entry point that accepts a Workers
//     option actually threads it into the parallel engine;
//   - obsname — every obs metric/span name literal follows the
//     documented tool_stage_unit / tool.stage naming convention;
//   - colaccess — the dataset's columnar storage (dataset.Columns /
//     dataset.Chunk fields) is never mutated outside internal/dataset;
//   - blockfacts — (fact producer, no reports) marks functions that may
//     block: channel operations, selects, WaitGroup.Wait, blocking stdlib
//     calls, and anything that transitively calls one;
//   - ctxflow — a function that receives a context.Context threads it to
//     every callee that accepts one; context.Background()/TODO() is
//     confined to main packages, the parallel engine's legacy wrappers,
//     and context-returning normalizers;
//   - locksafe — no sync.Mutex/RWMutex held across channel operations or
//     calls carrying the may-block fact (the statically-checkable half of
//     the PR-4 registry race class);
//   - detflow — entropy taint must not reach exported result values of
//     the statistic packages: time.Now, unseeded rand, and map-iteration
//     order cannot flow into what kde/kfunc/idw/kriging/moran/getisord/
//     dataset return;
//   - purity — (advisory) functions marked //lint:hotpath call only
//     callees carrying the no-alloc/no-I/O fact, guarding the columnar
//     inner loops' bit-exactness and allocation claims.
//
// Since the v3 upgrade, geolint is also path-sensitive: internal/lint/cfg
// builds an intraprocedural control-flow graph per function, and the
// obligation engine (obligation.go) checks "acquired here must be
// released on every path to return" over it. Four analyzers ride the
// engine:
//
//   - cancelleak — every context cancel func is called on all paths (or
//     escapes to the caller);
//   - bodyclose — every http.Response body is closed on all paths;
//   - mustclose — os.Open/Create files and net.Listen/Dial endpoints are
//     closed on all paths;
//   - unlockpath — a locked Mutex/RWMutex is unlocked on every exit path
//     (the control-flow complement to locksafe, sharing its
//     lock-recognition machinery).
//
// A curated set of general passes rides along: shadow, copylocks,
// loopclosure and unusedresult (stdlib-only reimplementations of the
// classic vet checks).
//
// A finding is suppressed by a `//lint:allow <analyzer> <reason>` comment
// on the flagged line, the line directly above it, or anywhere the
// directive's statement extends: a directive attached to a multi-line
// statement (its own line or the line above the statement's first line)
// covers the whole statement, so a diagnostic inside a multi-line
// composite literal or chained call cannot escape the suppression. The
// reason is mandatory by convention: suppressions are for cases where the
// invariant is provably respected in a way the analyzer cannot see (for
// example a demo that intentionally shows nondeterminism), never for
// convenience.
package lint

import (
	"go/ast"

	"geostat/internal/lint/analysis"
	"geostat/internal/lint/load"
)

// Analyzers returns every analyzer geolint runs, custom passes first.
// Fact producers precede their consumers (the driver re-sorts by Requires
// anyway; keeping the listing ordered makes -list readable).
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		NoRawGoroutine,
		SeededRand,
		FloatEq,
		MapOrder,
		WorkersOpt,
		ObsName,
		ColAccess,
		BlockFacts,
		CtxFlow,
		LockSafe,
		DetFlow,
		Purity,
		CancelLeak,
		BodyClose,
		MustClose,
		UnlockPath,
		Shadow,
		CopyLocks,
		LoopClosure,
		UnusedResult,
	}
}

// Lookup returns the analyzer with the given name.
func Lookup(name string) (*analysis.Analyzer, bool) {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// Run applies analyzers to a single package (loaded by l) and returns
// surviving diagnostics sorted by file position. It is the single-package
// convenience over RunPackages; fixture packages that import other
// fixture packages get their dependencies analyzed too (facts), but only
// pkg's own diagnostics are returned.
func Run(l *load.Loader, pkg *load.Package, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	findings, err := RunPackages(l, []*load.Package{pkg}, analyzers)
	if err != nil {
		return nil, err
	}
	diags := make([]analysis.Diagnostic, len(findings))
	for i, f := range findings {
		diags[i] = f.Diagnostic
	}
	return diags, nil
}

// filterAllowed drops diagnostics covered by a //lint:allow directive.
// Coverage is line-based (the directive's line and the line below it, the
// historical contract) plus statement-based: a directive whose line
// coincides with, or directly precedes, the first line of a simple
// statement or declaration suppresses the statement's whole line range,
// so multi-line composite literals and chained calls cannot escape.
func filterAllowed(l *load.Loader, pkg *load.Package, diags []analysis.Diagnostic) []analysis.Diagnostic {
	// allowed[file][line] = analyzer names allowed on that line.
	allowed := make(map[string]map[int][]string)
	addRange := func(file string, lo, hi int, names []string) {
		m := allowed[file]
		if m == nil {
			m = make(map[int][]string)
			allowed[file] = m
		}
		for line := lo; line <= hi; line++ {
			m[line] = append(m[line], names...)
		}
	}
	for _, f := range pkg.Files {
		// Directive lines first: the classic "this line and the next".
		type directive struct {
			line  int
			names []string
		}
		var dirs []directive
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := l.Fset.Position(c.Pos())
				dirs = append(dirs, directive{line: pos.Line, names: names})
				addRange(pos.Filename, pos.Line, pos.Line+1, names)
			}
		}
		if len(dirs) == 0 {
			continue
		}
		// Statement extents: find each simple statement/declaration whose
		// first line matches a directive (same line for a trailing comment,
		// next line for a comment above) and extend the allowance over its
		// full line range.
		fileName := l.Fset.Position(f.Pos()).Filename
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil || !suppressibleNode(n) {
				return true
			}
			start := l.Fset.Position(n.Pos()).Line
			end := l.Fset.Position(n.End()).Line
			if end <= start+1 {
				return true // single/two-line: the line rule already covers it
			}
			for _, d := range dirs {
				if d.line == start || d.line == start-1 {
					addRange(fileName, start, end, d.names)
				}
			}
			return true
		})
	}
	out := diags[:0]
	for _, d := range diags {
		pos := l.Fset.Position(d.Pos)
		if lineAllows(allowed[pos.Filename], pos.Line, d.Analyzer) {
			continue
		}
		out = append(out, d)
	}
	return out
}

// suppressibleNode reports whether n is a statement/declaration kind whose
// whole extent a //lint:allow directive covers. Control-flow statements
// (if/for/range/switch) are excluded on purpose: a directive above a loop
// must not blanket-suppress the loop body, only its own and the next
// line.
func suppressibleNode(n ast.Node) bool {
	switch n.(type) {
	case *ast.AssignStmt, *ast.ExprStmt, *ast.ReturnStmt, *ast.DeclStmt,
		*ast.GoStmt, *ast.DeferStmt, *ast.SendStmt, *ast.IncDecStmt,
		*ast.GenDecl, *ast.ValueSpec:
		return true
	}
	return false
}

func lineAllows(m map[int][]string, line int, analyzer string) bool {
	if m == nil {
		return false
	}
	for _, name := range m[line] {
		if name == analyzer {
			return true
		}
	}
	return false
}

// parseAllow recognises "//lint:allow name1[,name2] reason..." and returns
// the allowed analyzer names. The debt inventory (debt.go) uses the
// detail variant to also capture the reason text.
func parseAllow(text string) ([]string, bool) {
	names, _, ok := parseAllowDetail(text)
	return names, ok
}
