// Package lint is geolint: the project-specific static-analysis suite that
// enforces the repository's determinism and concurrency invariants at
// vet-time instead of in flaky test runs.
//
// The custom analyzers guard the conventions PR 1 established:
//
//   - norawgoroutine — every goroutine is owned by internal/parallel;
//   - seededrand — every random draw comes from an explicitly seeded
//     source threaded through options (no math/rand globals, no rand.New
//     outside internal/parallel);
//   - floateq — no ==/!= on computed floating-point values in statistic
//     code (zero sentinels and NaN self-compares are allowed);
//   - maporder — no result assembly driven by map iteration order;
//   - workersopt — every exported entry point that accepts a Workers
//     option actually threads it into the parallel engine;
//   - obsname — every obs metric/span name literal follows the
//     documented tool_stage_unit / tool.stage naming convention;
//   - colaccess — the dataset's columnar storage (dataset.Columns /
//     dataset.Chunk fields) is never mutated outside internal/dataset.
//
// A curated set of general passes rides along: shadow, copylocks,
// loopclosure and unusedresult (stdlib-only reimplementations of the
// classic vet checks).
//
// A finding is suppressed by a `//lint:allow <analyzer> <reason>` comment
// on the flagged line or the line directly above it. The reason is
// mandatory by convention: suppressions are for cases where the invariant
// is provably respected in a way the analyzer cannot see (for example a
// demo that intentionally shows nondeterminism), never for convenience.
package lint

import (
	"fmt"
	"sort"
	"strings"

	"geostat/internal/lint/analysis"
	"geostat/internal/lint/load"
)

// Analyzers returns every analyzer geolint runs, custom passes first.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		NoRawGoroutine,
		SeededRand,
		FloatEq,
		MapOrder,
		WorkersOpt,
		ObsName,
		ColAccess,
		Shadow,
		CopyLocks,
		LoopClosure,
		UnusedResult,
	}
}

// Lookup returns the analyzer with the given name.
func Lookup(name string) (*analysis.Analyzer, bool) {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// Run applies analyzers to pkg (loaded by l) and returns surviving
// diagnostics sorted by file position.
func Run(l *load.Loader, pkg *load.Package, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := analysis.NewPass(a, l.Fset, pkg.Files, pkg.Path, pkg.Types, pkg.Info,
			func(d analysis.Diagnostic) { diags = append(diags, d) })
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	diags = filterAllowed(l, pkg, diags)
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := l.Fset.Position(diags[i].Pos), l.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// filterAllowed drops diagnostics covered by a //lint:allow directive on
// the same line or the line directly above.
func filterAllowed(l *load.Loader, pkg *load.Package, diags []analysis.Diagnostic) []analysis.Diagnostic {
	// allowed[file][line] = set of analyzer names allowed there.
	allowed := make(map[string]map[int][]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := l.Fset.Position(c.Pos())
				m := allowed[pos.Filename]
				if m == nil {
					m = make(map[int][]string)
					allowed[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], names...)
			}
		}
	}
	out := diags[:0]
	for _, d := range diags {
		pos := l.Fset.Position(d.Pos)
		if lineAllows(allowed[pos.Filename], pos.Line, d.Analyzer) {
			continue
		}
		out = append(out, d)
	}
	return out
}

func lineAllows(m map[int][]string, line int, analyzer string) bool {
	if m == nil {
		return false
	}
	for _, l := range []int{line, line - 1} {
		for _, name := range m[l] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// parseAllow recognises "//lint:allow name1[,name2] reason..." and returns
// the allowed analyzer names.
func parseAllow(text string) ([]string, bool) {
	rest, ok := strings.CutPrefix(text, "//lint:allow")
	if !ok {
		return nil, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, false
	}
	return strings.Split(fields[0], ","), true
}
