package lint

import (
	"go/ast"
	"go/types"

	"geostat/internal/lint/analysis"
)

// SeededRand enforces the seeded-randomness invariant: every random draw in
// production code comes from an explicitly seeded source that was threaded
// in through options, so that any statistic (permutation test, envelope,
// sampled KDV) is bit-reproducible from its recorded seed. The math/rand
// package-level functions draw from the shared global source — results then
// depend on whatever else has consumed it — and ad-hoc rand.New calls
// scatter seed policy across the codebase. Construction is centralised in
// internal/parallel (parallel.NewRand, parallel.MonteCarlo, parallel.TaskRand);
// accepting an already-seeded *rand.Rand as a parameter remains fine.
var SeededRand = &analysis.Analyzer{
	Name: "seededrand",
	Doc: "flags math/rand global functions and rand.New outside internal/parallel; " +
		"thread a seed through options and use parallel.NewRand/parallel.MonteCarlo",
	Run: runSeededRand,
}

// seededRandExempt lists math/rand(/v2) functions that only build Source
// values: they carry an explicit seed already and are always consumed by a
// constructor that is itself flagged, so reporting them would double up.
var seededRandExempt = map[string]bool{
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

func runSeededRand(pass *analysis.Pass) error {
	if pass.PkgPath == enginePath {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[sel.Sel]
			if !ok {
				return true
			}
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			// Methods on *rand.Rand (an explicit seeded source) are fine;
			// only package-level functions are policed.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			if seededRandExempt[fn.Name()] {
				return true
			}
			if fn.Name() == "New" {
				pass.Reportf(call.Pos(), "rand.New outside internal/parallel; use parallel.NewRand(seed) (or parallel.MonteCarlo for task fan-out) so seed policy stays in one place")
			} else {
				pass.Reportf(call.Pos(), "%s.%s draws from the global source; thread a seed through options and use parallel.NewRand/parallel.MonteCarlo", path, fn.Name())
			}
			return true
		})
	}
	return nil
}
