package analysis

import (
	"go/token"
	"go/types"
	"testing"
)

type testFact struct{ N int }

func (*testFact) AFact() {}

type otherFact struct{ S string }

func (*otherFact) AFact() {}

func newTestPass(t *testing.T, name string, facts *FactStore, factTypes ...Fact) *Pass {
	t.Helper()
	a := &Analyzer{Name: name, FactTypes: factTypes, Run: func(*Pass) error { return nil }}
	p := NewPass(a, token.NewFileSet(), nil, "p", nil, nil, func(Diagnostic) {})
	p.SetFacts(facts)
	return p
}

func TestFactRoundTrip(t *testing.T) {
	store := NewFactStore()
	pkg := types.NewPackage("p", "p")
	obj := types.NewVar(token.Pos(10), pkg, "x", types.Typ[types.Int])

	producer := newTestPass(t, "producer", store, (*testFact)(nil))
	producer.ExportObjectFact(obj, &testFact{N: 7})

	// Facts are shared by fact TYPE, not by analyzer: a different
	// analyzer that declares the type sees the fact.
	consumer := newTestPass(t, "consumer", store, (*testFact)(nil))
	var got testFact
	if !consumer.ImportObjectFact(obj, &got) {
		t.Fatal("fact not found by consumer")
	}
	if got.N != 7 {
		t.Fatalf("got N=%d, want 7", got.N)
	}
	if !consumer.HasObjectFact(obj, &testFact{}) {
		t.Error("HasObjectFact = false")
	}

	// A different object, or a different fact type, finds nothing.
	other := types.NewVar(token.Pos(20), pkg, "y", types.Typ[types.Int])
	if consumer.ImportObjectFact(other, &got) {
		t.Error("fact found for object that has none")
	}
	withOther := newTestPass(t, "other", store, (*otherFact)(nil))
	var of otherFact
	if withOther.ImportObjectFact(obj, &of) {
		t.Error("fact of different type resolved")
	}
	if store.Len() != 1 {
		t.Errorf("store.Len = %d, want 1", store.Len())
	}
}

func TestFactImportCopies(t *testing.T) {
	store := NewFactStore()
	pkg := types.NewPackage("p", "p")
	obj := types.NewVar(token.Pos(1), pkg, "x", types.Typ[types.Int])
	p := newTestPass(t, "p", store, (*testFact)(nil))
	p.ExportObjectFact(obj, &testFact{N: 1})

	var a testFact
	p.ImportObjectFact(obj, &a)
	a.N = 99 // mutating the copy must not corrupt the store
	var b testFact
	p.ImportObjectFact(obj, &b)
	if b.N != 1 {
		t.Fatalf("store corrupted through imported copy: N=%d", b.N)
	}
}

func TestObjectsWithFactSorted(t *testing.T) {
	store := NewFactStore()
	pkg := types.NewPackage("p", "p")
	p := newTestPass(t, "p", store, (*testFact)(nil))
	late := types.NewVar(token.Pos(200), pkg, "late", types.Typ[types.Int])
	early := types.NewVar(token.Pos(100), pkg, "early", types.Typ[types.Int])
	p.ExportObjectFact(late, &testFact{})
	p.ExportObjectFact(early, &testFact{})
	objs := store.ObjectsWithFact(&testFact{})
	if len(objs) != 2 || objs[0] != early || objs[1] != late {
		t.Fatalf("objects not position-sorted: %v", objs)
	}
}

func TestUndeclaredFactPanics(t *testing.T) {
	store := NewFactStore()
	pkg := types.NewPackage("p", "p")
	obj := types.NewVar(token.Pos(1), pkg, "x", types.Typ[types.Int])
	p := newTestPass(t, "p", store) // declares no fact types
	defer func() {
		if recover() == nil {
			t.Fatal("ExportObjectFact with undeclared fact type did not panic")
		}
	}()
	p.ExportObjectFact(obj, &testFact{})
}

func TestExportWithoutPackagePanics(t *testing.T) {
	store := NewFactStore()
	p := newTestPass(t, "p", store, (*testFact)(nil))
	defer func() {
		if recover() == nil {
			t.Fatal("ExportObjectFact on nil object did not panic")
		}
	}()
	p.ExportObjectFact(nil, &testFact{})
}
