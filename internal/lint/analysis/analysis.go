// Package analysis is a minimal, dependency-free clone of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// typechecked package through a Pass and reports Diagnostics. The x/tools
// module is deliberately not imported — the repository is stdlib-only — so
// this package defines just the subset geolint needs: per-package analyzers
// over syntax plus full type information, with positional diagnostics and
// cross-package object facts.
//
// Facts are how analyzers see across package boundaries. An analyzer that
// learns something about a package-level object (for example "this
// function may block") exports a Fact for it; when a downstream package is
// analyzed later, any analyzer that declared the fact's type can import
// it. Unlike x/tools, facts are not serialised: the geolint driver checks
// the whole module in one process, in import dependency order, against
// one shared store — an object's fact is simply still in memory when its
// importers are analyzed.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow
	// directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description: the invariant the analyzer
	// guards and what to do about a report.
	Doc string
	// Requires lists analyzers that must run before this one on every
	// package, typically because they export facts this analyzer imports.
	// The driver orders analyzers by this graph and rejects cycles.
	Requires []*Analyzer
	// FactTypes declares (by example value) every fact type this analyzer
	// exports or imports. Export/Import of an undeclared type panics: the
	// declaration is what lets the driver know which analyzers share
	// facts, so an undeclared use is a bug in the analyzer.
	FactTypes []Fact
	// Advisory marks a report-only analyzer: its diagnostics are printed
	// (and carried in SARIF at "note" level) but never affect geolint's
	// exit code. Gating analyzers fail the build.
	Advisory bool
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass hands an Analyzer one typechecked package.
type Pass struct {
	Analyzer *Analyzer
	// Fset maps token.Pos to file positions for every file in the pass.
	Fset *token.FileSet
	// Files are the package's parsed source files (comments included).
	Files []*ast.File
	// PkgPath is the package's import path (e.g. "geostat/internal/kde").
	PkgPath string
	// Pkg is the typechecked package.
	Pkg *types.Package
	// TypesInfo holds the package's type and object resolution results.
	TypesInfo *types.Info

	// report receives each diagnostic; installed by the driver.
	report func(Diagnostic)
	// facts is the driver's shared fact store; nil when the pass runs
	// outside a driver (facts then silently no-op on export and always
	// miss on import, so single-package runs keep working).
	facts *FactStore
}

// NewPass returns a Pass delivering diagnostics to report.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkgPath string, pkg *types.Package, info *types.Info, report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		PkgPath:   pkgPath,
		Pkg:       pkg,
		TypesInfo: info,
		report:    report,
	}
}

// SetFacts installs the driver's shared fact store.
func (p *Pass) SetFacts(s *FactStore) { p.facts = s }

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}
