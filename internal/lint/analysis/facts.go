package analysis

import (
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// Fact is a typed statement an analyzer proves about a package-level
// object, exported during the producing package's pass and importable by
// every later pass that declared the fact's type. Implementations must be
// pointer types (Import copies into the caller's pointer) and carry the
// marker method:
//
//	type MayBlock struct{ Why string }
//	func (*MayBlock) AFact() {}
type Fact interface {
	AFact()
}

// factKey identifies one fact: the object it describes plus the fact's
// dynamic type (one object may carry several facts of different types).
type factKey struct {
	obj types.Object
	typ reflect.Type
}

// FactStore holds every fact exported so far in a driver run. It is keyed
// by types.Object identity, which is stable across passes because the
// loader memoises each typechecked package: the *types.Func for a.F seen
// while checking package a is the same pointer its importers see.
type FactStore struct {
	m map[factKey]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[factKey]Fact)}
}

// ExportObjectFact records fact for obj. The fact's type must appear in
// the running analyzer's FactTypes declaration, and obj must belong to a
// package (no builtins); both violations panic — they are analyzer bugs,
// not input conditions.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil || obj.Pkg() == nil {
		panic(fmt.Sprintf("%s: ExportObjectFact on object without a package", p.Analyzer.Name))
	}
	p.checkFactDeclared(fact)
	if p.facts == nil {
		return
	}
	p.facts.m[factKey{obj: obj, typ: reflect.TypeOf(fact)}] = fact
}

// ImportObjectFact copies the fact recorded for obj into fact (which must
// be a pointer of a declared fact type) and reports whether one existed.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	p.checkFactDeclared(fact)
	if p.facts == nil || obj == nil {
		return false
	}
	got, ok := p.facts.m[factKey{obj: obj, typ: reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

// HasObjectFact reports whether obj carries a fact of the same type as
// fact, without copying it.
func (p *Pass) HasObjectFact(obj types.Object, fact Fact) bool {
	p.checkFactDeclared(fact)
	if p.facts == nil || obj == nil {
		return false
	}
	_, ok := p.facts.m[factKey{obj: obj, typ: reflect.TypeOf(fact)}]
	return ok
}

func (p *Pass) checkFactDeclared(fact Fact) {
	t := reflect.TypeOf(fact)
	if t == nil || t.Kind() != reflect.Pointer {
		panic(fmt.Sprintf("%s: fact %T is not a pointer type", p.Analyzer.Name, fact))
	}
	for _, d := range p.Analyzer.FactTypes {
		if reflect.TypeOf(d) == t {
			return
		}
	}
	panic(fmt.Sprintf("%s: fact type %T not declared in FactTypes", p.Analyzer.Name, fact))
}

// ObjectsWithFact returns every object carrying a fact of the same type
// as fact, sorted by position for deterministic iteration. Used by tests
// and debugging output; analyzers normally query specific objects.
func (s *FactStore) ObjectsWithFact(fact Fact) []types.Object {
	t := reflect.TypeOf(fact)
	var out []types.Object
	for k := range s.m {
		if k.typ == t {
			out = append(out, k.obj) //lint:allow maporder out is position-sorted immediately below
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos() != out[j].Pos() {
			return out[i].Pos() < out[j].Pos()
		}
		return out[i].Name() < out[j].Name()
	})
	return out
}

// Len returns the number of facts recorded.
func (s *FactStore) Len() int { return len(s.m) }
