package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"geostat/internal/lint"
	"geostat/internal/lint/load"
)

// TestSelfLint asserts the module is clean under its own full analyzer
// suite — the same invariant `make lint` gates CI on. Advisory findings
// are reported (they don't gate) but any gating finding fails: a change
// that introduces one must either fix it or carry a justified
// //lint:allow.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module; skipped in -short")
	}
	root, err := load.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := load.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Module()
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		if len(pkg.Errors) > 0 {
			t.Fatalf("%s: type error: %v", pkg.Path, pkg.Errors[0])
		}
	}
	findings, err := lint.RunPackages(l, pkgs, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Advisory {
			t.Logf("advisory: %s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
			continue
		}
		t.Errorf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
	}
	if code := lint.ExitCode(findings); code != 0 && !t.Failed() {
		t.Errorf("ExitCode = %d with no gating findings listed (invariant broken)", code)
	}

	// The v3 obligation analyzers gate (a leak must fail CI, not advise),
	// and the full suite includes all four — pin both so a registration
	// slip cannot silently soften the gate.
	for _, name := range []string{"cancelleak", "bodyclose", "mustclose", "unlockpath"} {
		a, ok := lint.Lookup(name)
		if !ok {
			t.Errorf("analyzer %s missing from the suite", name)
			continue
		}
		if a.Advisory {
			t.Errorf("analyzer %s is advisory; obligation leaks must gate", name)
		}
	}

	// Suppression-debt invariants the committed baseline relies on: every
	// directive in production code carries a reason, and the inventory
	// matches lint_debt.json (the CI debt gate, run in-process).
	debt := lint.CollectDebt(l, pkgs)
	if debt.Unjustified != 0 {
		for _, e := range debt.Entries {
			if e.Reason == "" {
				t.Errorf("%s:%d: //lint:allow with no reason", e.File, e.Line)
			}
		}
	}
	raw, err := os.ReadFile(filepath.Join(root, "lint_debt.json"))
	if err != nil {
		t.Fatalf("reading committed debt baseline: %v", err)
	}
	baseline, err := lint.ParseDebt(raw)
	if err != nil {
		t.Fatal(err)
	}
	if table, ok := lint.DiffDebt(baseline, debt); !ok {
		t.Errorf("suppression debt exceeds the committed budget; update lint_debt.json deliberately if intended\n%s", table)
	}
}
