package lint_test

import (
	"testing"

	"geostat/internal/lint"
	"geostat/internal/lint/load"
)

// TestSelfLint asserts the module is clean under its own full analyzer
// suite — the same invariant `make lint` gates CI on. Advisory findings
// are reported (they don't gate) but any gating finding fails: a change
// that introduces one must either fix it or carry a justified
// //lint:allow.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module; skipped in -short")
	}
	root, err := load.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := load.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Module()
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		if len(pkg.Errors) > 0 {
			t.Fatalf("%s: type error: %v", pkg.Path, pkg.Errors[0])
		}
	}
	findings, err := lint.RunPackages(l, pkgs, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Advisory {
			t.Logf("advisory: %s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
			continue
		}
		t.Errorf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
	}
	if code := lint.ExitCode(findings); code != 0 && !t.Failed() {
		t.Errorf("ExitCode = %d with no gating findings listed (invariant broken)", code)
	}
}
