package lint

import (
	"go/ast"
	"go/types"

	"geostat/internal/lint/analysis"
)

// BodyClose verifies that every *http.Response obtained from a call is
// closed (resp.Body.Close()) on every path to function exit, or escapes
// to the caller. An unclosed body leaks the underlying connection and —
// under the load runner's fan-out, or the future geoshard coordinator's
// per-tile requests — exhausts the client's connection pool, turning a
// retry storm into a self-inflicted outage.
//
// Any statically-resolved call with a *net/http.Response result counts
// as an acquisition (client.Do, http.Get, Transport.RoundTrip, and any
// in-module helper that returns a response), so wrapping the client does
// not launder the obligation. The error-result sibling refines paths:
// along `err != nil` there is no response to close.
var BodyClose = &analysis.Analyzer{
	Name: "bodyclose",
	Doc: "every http.Response body is closed on all paths to return " +
		"(or the response escapes to the caller)",
	Run: runBodyClose,
}

func runBodyClose(pass *analysis.Pass) error {
	rule := &obRule{
		acquisitions: func(pass *analysis.Pass, node ast.Node) []*oblig {
			return valueAcquisitions(pass, node,
				func(fn *types.Func, sig *types.Signature) (int, int, string, bool) {
					resIdx, errIdx := -1, -1
					results := sig.Results()
					for i := 0; i < results.Len(); i++ {
						t := results.At(i).Type()
						if isHTTPResponsePtr(t) {
							resIdx = i
						} else if isErrorType(t) {
							errIdx = i
						}
					}
					if resIdx < 0 {
						return 0, 0, "", false
					}
					return resIdx, errIdx, "response body from " + funcKey(fn), true
				},
				func(pass *analysis.Pass, call *ast.CallExpr, what string) {
					pass.Reportf(call.Pos(),
						"%s is discarded without being closed; bind the response and close its body", what)
				})
		},
		isRelease: func(pass *analysis.Pass, call *ast.CallExpr, ob *oblig) bool {
			return methodReleaseCall(pass, call, ob, "Body", "Close")
		},
		leak: func(ob *oblig) string {
			return ob.what + " is not closed on every path to return; the leaked path holds the connection out of the pool"
		},
	}
	return runObligations(pass, rule)
}

func isHTTPResponsePtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Response"
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
