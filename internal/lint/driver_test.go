package lint

import (
	"strings"
	"testing"

	"geostat/internal/lint/analysis"
)

func TestSortAnalyzersDependencyOrder(t *testing.T) {
	producer := &analysis.Analyzer{Name: "producer", Run: func(*analysis.Pass) error { return nil }}
	consumer := &analysis.Analyzer{
		Name:     "consumer",
		Requires: []*analysis.Analyzer{producer},
		Run:      func(*analysis.Pass) error { return nil },
	}
	got, err := sortAnalyzers([]*analysis.Analyzer{consumer, producer})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != producer || got[1] != consumer {
		t.Fatalf("want [producer consumer], got %v", names(got))
	}
}

func TestSortAnalyzersAddsImplicitRequires(t *testing.T) {
	producer := &analysis.Analyzer{Name: "producer", Run: func(*analysis.Pass) error { return nil }}
	consumer := &analysis.Analyzer{
		Name:     "consumer",
		Requires: []*analysis.Analyzer{producer},
		Run:      func(*analysis.Pass) error { return nil },
	}
	// Only the consumer is requested; the producer must be pulled in
	// anyway, or the consumer would silently see an empty fact store.
	got, err := sortAnalyzers([]*analysis.Analyzer{consumer})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != producer || got[1] != consumer {
		t.Fatalf("want implicit [producer consumer], got %v", names(got))
	}
}

func TestSortAnalyzersCycle(t *testing.T) {
	a := &analysis.Analyzer{Name: "a", Run: func(*analysis.Pass) error { return nil }}
	b := &analysis.Analyzer{Name: "b", Requires: []*analysis.Analyzer{a}, Run: func(*analysis.Pass) error { return nil }}
	a.Requires = []*analysis.Analyzer{b}
	if _, err := sortAnalyzers([]*analysis.Analyzer{a, b}); err == nil {
		t.Fatal("cycle not detected")
	} else if !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("error does not mention the cycle: %v", err)
	}
}

func TestRegistryRequiresAcyclic(t *testing.T) {
	if _, err := sortAnalyzers(Analyzers()); err != nil {
		t.Fatalf("production analyzer set does not sort: %v", err)
	}
}

// TestExitCode pins the gating semantics: advisory findings never fail
// the run, and a single gating finding always does — regardless of how
// the findings interleave (the historical bug zeroed a gating failure
// when a later advisory-only package reset the status).
func TestExitCode(t *testing.T) {
	gating := Finding{Advisory: false}
	advisory := Finding{Advisory: true}
	cases := []struct {
		name     string
		findings []Finding
		want     int
	}{
		{"empty", nil, 0},
		{"advisory only", []Finding{advisory, advisory}, 0},
		{"gating only", []Finding{gating}, 1},
		{"gating then advisory", []Finding{gating, advisory}, 1},
		{"advisory then gating", []Finding{advisory, gating}, 1},
	}
	for _, tc := range cases {
		if got := ExitCode(tc.findings); got != tc.want {
			t.Errorf("%s: ExitCode = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func names(as []*analysis.Analyzer) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}
