package lint

import (
	"go/ast"
	"go/types"

	"geostat/internal/lint/analysis"
)

// enginePath is the one package allowed to own goroutines and raw RNG
// construction.
const enginePath = "geostat/internal/parallel"

// NoRawGoroutine enforces the single-execution-engine invariant: all
// goroutine fan-out lives in internal/parallel. Elsewhere, `go` statements
// and sync.WaitGroup worker pools are flagged — hand-rolled pools are
// exactly how nondeterministic scheduling leaks into statistic results
// (merge order, uncoordinated RNG draws), and they escape the engine's
// determinism tests. sync.Mutex is allowed: guarding an order-insensitive
// merge is fine; spawning is not.
var NoRawGoroutine = &analysis.Analyzer{
	Name: "norawgoroutine",
	Doc: "flags go statements and sync.WaitGroup pools outside internal/parallel; " +
		"use parallel.For/ForRange/ForScratch/MonteCarlo instead",
	Run: runNoRawGoroutine,
}

func runNoRawGoroutine(pass *analysis.Pass) error {
	if pass.PkgPath == enginePath {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "raw goroutine outside internal/parallel; schedule through parallel.For/ForRange/ForScratch (or parallel.MonteCarlo for seeded fan-out)")
			case *ast.Ident:
				obj := pass.TypesInfo.Defs[n]
				if obj == nil {
					return true
				}
				if v, ok := obj.(*types.Var); ok && isWaitGroup(v.Type()) {
					pass.Reportf(n.Pos(), "sync.WaitGroup outside internal/parallel; worker pools belong to the parallel engine")
				}
			}
			return true
		})
	}
	return nil
}

// isWaitGroup reports whether t is sync.WaitGroup, possibly behind
// pointers.
func isWaitGroup(t types.Type) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
