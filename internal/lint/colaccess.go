package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"geostat/internal/lint/analysis"
)

// ColAccess guards the chunked-SoA dataset core: the column slices
// (dataset.Columns.X/Y/W/Chunks) and per-chunk aggregates (dataset.Chunk's
// fields) are shared, read-only views of a Dataset's internal storage.
// Reading them is the whole point of the columnar API — the hot loops in
// kde/kfunc/idw iterate the slices directly — but any mutation outside
// internal/dataset corrupts the dataset behind its owner's back and
// silently desynchronises the chunk aggregates (bbox, weight sum,
// centroid) from the coordinates they summarise. The analyzer therefore
// flags writes, compound assignments, ++/-- and address-taking of those
// fields (including element writes like cols.X[i] = v) in every package
// except internal/dataset itself; mutation goes through the Dataset API
// (SetWeights, Subset, ...) which rebuilds the aggregates.
var ColAccess = &analysis.Analyzer{
	Name: "colaccess",
	Doc: "flags mutation of the dataset's internal column storage " +
		"(dataset.Columns / dataset.Chunk fields) outside internal/dataset",
	Run: runColAccess,
}

const datasetPkgPath = "geostat/internal/dataset"

func runColAccess(pass *analysis.Pass) error {
	if pass.PkgPath == datasetPkgPath {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				// Plain and compound assignments; := never has a field LHS.
				for _, lhs := range st.Lhs {
					if name, pos, ok := colField(pass, lhs); ok {
						pass.Reportf(pos, "write to dataset column storage %s outside %s; mutate through the Dataset API", name, datasetPkgPath)
					}
				}
			case *ast.IncDecStmt:
				if name, pos, ok := colField(pass, st.X); ok {
					pass.Reportf(pos, "write to dataset column storage %s outside %s; mutate through the Dataset API", name, datasetPkgPath)
				}
			case *ast.UnaryExpr:
				if st.Op == token.AND {
					if name, pos, ok := colField(pass, st.X); ok {
						pass.Reportf(pos, "address of dataset column storage %s escapes the read-only view; copy the value instead", name)
					}
				}
			}
			return true
		})
	}
	return nil
}

// colField unwraps parens, indexing and slicing, and reports whether the
// base expression selects a field of dataset.Columns or dataset.Chunk.
// It returns the qualified field name and the selector position.
func colField(pass *analysis.Pass, e ast.Expr) (string, token.Pos, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.SelectorExpr:
			s, ok := pass.TypesInfo.Selections[x]
			if !ok || s.Kind() != types.FieldVal {
				return "", token.NoPos, false
			}
			recv := s.Recv()
			if p, isPtr := recv.(*types.Pointer); isPtr {
				recv = p.Elem()
			}
			if named, isNamed := recv.(*types.Named); isNamed {
				obj := named.Obj()
				if obj.Pkg() != nil && obj.Pkg().Path() == datasetPkgPath &&
					(obj.Name() == "Columns" || obj.Name() == "Chunk") {
					return obj.Name() + "." + x.Sel.Name, x.Pos(), true
				}
			}
			// A nested field write (chunks[0].Centroid.X = v) still mutates
			// the chunk storage: keep walking toward the base.
			e = x.X
		default:
			return "", token.NoPos, false
		}
	}
}
