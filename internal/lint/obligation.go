package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"geostat/internal/lint/analysis"
	"geostat/internal/lint/cfg"
)

// The obligation engine: a generic path-sensitive "acquire must be
// released on every path to return" analysis over the CFGs built by
// internal/lint/cfg. cancelleak, bodyclose, mustclose and unlockpath are
// thin configurations of this engine.
//
// Model. An acquisition (context.WithCancel, client.Do, os.Open,
// mu.Lock) creates an obligation. Starting from the acquisition point
// the engine explores every control-flow path forward; a path is
// discharged when it
//
//   - releases the obligation (calls the cancel func, resp.Body.Close(),
//     f.Close(), mu.Unlock());
//   - registers a deferred release (`defer cancel()`, including a
//     deferred func literal whose body releases) — defers run on every
//     exit, normal or panicking, of any path that continues past the
//     defer statement;
//   - lets the obligation escape: the resource value is returned, passed
//     as a call argument, stored into a variable/field/map/slice, sent on
//     a channel, captured by a function literal, or its address is taken.
//     Ownership has transferred to code this intraprocedural analysis
//     cannot see, so responsibility transfers with it;
//   - ends in panic or a no-return call (os.Exit, log.Fatal): the
//     process or goroutine is gone, deferred cleanup has run, and
//     reporting would only produce noise on guard clauses;
//   - is statically impossible for this obligation: along the true edge
//     of `err != nil` (where err is the acquisition's error result) the
//     resource was never acquired, and along the nil edge of a
//     `res == nil` check there is nothing to release.
//
// A path that reaches the function's normal exit with the obligation
// still pending is a leak, reported at the acquisition site.
//
// Escapes are the engine's deliberate unsoundness valve: passing or
// storing the resource optimistically assumes the receiver releases it.
// The analyzers therefore prefer missed leaks over false alarms —
// //lint:allow should only ever be needed where even this escape rule is
// too weak (and every such allow is counted by the suppression-debt
// gate).
//
// Reads are not escapes: using a field of the resource (resp.StatusCode),
// comparing it (resp == nil), or passing a derived selector to a function
// (io.ReadAll(resp.Body)) keeps the obligation live. Only the resource
// identifier itself moving into return/arg/store positions — or any
// derived value being returned or stored — transfers it.

// oblig is one tracked obligation within one function.
type oblig struct {
	// pos is the acquisition site (diagnostics anchor here).
	pos token.Pos
	// obj is the variable bound to the resource; nil for key-based
	// obligations (unlockpath), which have no first-class value.
	obj types.Object
	// errObj is the error result bound by the same acquisition (nil if
	// none): branches on it refine where the obligation exists.
	errObj types.Object
	// key identifies a key-based obligation (mutex receiver text);
	// releaseOp is the call name that discharges it (Unlock/RUnlock).
	key       string
	releaseOp string
	// what names the resource in diagnostics.
	what string
}

// obRule configures the engine for one analyzer.
type obRule struct {
	// acquisitions inspects one CFG node and returns the obligations it
	// creates. It may call pass.Reportf directly for acquisitions that
	// are wrong at birth (a discarded cancel func).
	acquisitions func(pass *analysis.Pass, node ast.Node) []*oblig
	// isRelease reports whether call discharges ob.
	isRelease func(pass *analysis.Pass, call *ast.CallExpr, ob *oblig) bool
	// leak renders the diagnostic for an obligation that reached a
	// normal exit still pending.
	leak func(ob *oblig) string
}

// runObligations applies rule to every function and function literal in
// the pass — each gets its own CFG and its own obligation tracking.
func runObligations(pass *analysis.Pass, rule *obRule) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFuncObligations(pass, rule, fn.Body)
				}
			case *ast.FuncLit:
				checkFuncObligations(pass, rule, fn.Body)
			}
			return true
		})
	}
	return nil
}

// checkFuncObligations builds the function's CFG, finds every
// acquisition, and tracks each obligation to all exits.
func checkFuncObligations(pass *analysis.Pass, rule *obRule, body *ast.BlockStmt) {
	g := cfg.New(body, cfg.Options{NoReturn: func(call *ast.CallExpr) bool {
		return noReturnCall(pass, call)
	}})
	for _, blk := range g.Blocks {
		for i, node := range blk.Nodes {
			for _, ob := range rule.acquisitions(pass, node) {
				if leaks(pass, rule, g, ob, blk, i+1) {
					pass.Reportf(ob.pos, "%s", rule.leak(ob))
				}
			}
		}
	}
}

// leaks explores every path from the acquisition forward. Returns true
// iff some path reaches the normal exit with the obligation pending.
func leaks(pass *analysis.Pass, rule *obRule, g *cfg.Graph, ob *oblig, start *cfg.Block, startIdx int) bool {
	type item struct {
		b   *cfg.Block
		idx int
	}
	visited := make([]bool, len(g.Blocks))
	work := []item{{start, startIdx}}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		resolved := false
		for j := it.idx; j < len(it.b.Nodes); j++ {
			if nodeResolves(pass, rule, ob, it.b.Nodes[j]) {
				resolved = true
				break
			}
		}
		if resolved {
			continue
		}
		if it.b == g.Exit {
			return true
		}
		for si, s := range it.b.Succs {
			if s == g.Panic {
				continue // abnormal exit: defers ran, process is going away
			}
			if branchWaives(pass, ob, it.b, si) {
				continue // obligation provably absent along this edge
			}
			if !visited[s.Index] {
				visited[s.Index] = true
				work = append(work, item{s, 0})
			}
		}
	}
	return false
}

// branchWaives reports whether the obligation cannot exist along edge si
// of a branching block: the true edge of `err != nil` for the
// acquisition's own error result (acquire failed, resource never
// existed), or the nil edge of a nil-check on the resource itself.
func branchWaives(pass *analysis.Pass, ob *oblig, b *cfg.Block, si int) bool {
	if b.Cond == nil || len(b.Succs) != 2 {
		return false
	}
	be, ok := ast.Unparen(b.Cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return false
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if isNilIdent(y) {
		// fall through with x as the tested expression
	} else if isNilIdent(x) {
		x = y
	} else {
		return false
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return false
	}
	tested := pass.TypesInfo.Uses[id]
	if tested == nil {
		return false
	}
	// trueEdge is si == 0 (cfg contract: Succs[0] taken when Cond holds).
	trueEdge := si == 0
	switch tested {
	case ob.errObj:
		// err != nil: true edge has no resource. err == nil: false edge.
		return (be.Op == token.NEQ) == trueEdge
	case ob.obj:
		// res == nil: true edge has nothing to release.
		return (be.Op == token.EQL) == trueEdge
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// nodeResolves reports whether executing node discharges the obligation:
// a release call, a deferred release, or an escape.
func nodeResolves(pass *analysis.Pass, rule *obRule, ob *oblig, node ast.Node) bool {
	if d, ok := node.(*ast.DeferStmt); ok {
		if rule.isRelease(pass, d.Call, ob) {
			return true
		}
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			// defer func() { ... cancel() ... }(): the closure's body runs
			// at exit; a release anywhere in it discharges the obligation.
			released := false
			walkOwn(lit.Body, func(n ast.Node) {
				if call, ok := n.(*ast.CallExpr); ok && rule.isRelease(pass, call, ob) {
					released = true
				}
			})
			if released {
				return true
			}
		}
		// defer cleanup(f): the resource escapes into the deferred call.
		if ob.obj != nil && escapes(pass, ob.obj, d) {
			return true
		}
		return false
	}
	released := false
	walkOwn(node, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok && rule.isRelease(pass, call, ob) {
			released = true
		}
	})
	if released {
		return true
	}
	return ob.obj != nil && escapes(pass, ob.obj, node)
}

// escapes reports whether node transfers ownership of obj: the
// identifier (or a value derived from it) moves into a return, call
// argument, store, composite literal, channel send, address-of, or is
// captured by a function literal.
func escapes(pass *analysis.Pass, obj types.Object, node ast.Node) bool {
	found := false
	var stack []ast.Node
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if lit, ok := n.(*ast.FuncLit); ok {
			// Closure capture: the literal may release or hold the
			// resource at any later time — ownership is out of this
			// function's hands.
			if refsObject(pass, lit, obj) {
				found = true
			}
			return false // don't double-count interior uses (and no push)
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			if escapeContext(stack, id) {
				found = true
			}
		}
		stack = append(stack, n)
		return true
	})
	return found
}

// escapeContext decides whether one use of the resource identifier, with
// the given ancestor stack (outermost first), transfers ownership.
// viaSel distinguishes the resource itself from a derived value
// (resp.Body): derived values escape through returns and stores but not
// through call arguments — io.ReadAll(resp.Body) reads the body, it does
// not adopt the response.
func escapeContext(stack []ast.Node, id ast.Node) bool {
	child := id
	viaSel := false
	for i := len(stack) - 1; i >= 0; i-- {
		switch a := stack[i].(type) {
		case *ast.ParenExpr, *ast.StarExpr, *ast.IndexExpr, *ast.SliceExpr, *ast.TypeAssertExpr:
			// Transparent wrappers: keep walking up.
		case *ast.SelectorExpr:
			if a.Sel == child {
				return false // the field name itself, not a value use
			}
			viaSel = true
		case *ast.CallExpr:
			if a.Fun == child {
				return false // method call on the resource (release or read)
			}
			return !viaSel // the resource itself as an argument escapes
		case *ast.ReturnStmt:
			return true
		case *ast.AssignStmt:
			for _, r := range a.Rhs {
				if r == child {
					// `_ = res` silences unused-var; it stores nothing.
					return !allBlank(a.Lhs)
				}
			}
			return false // LHS: reassignment, not a use of the old value
		case *ast.ValueSpec:
			for _, v := range a.Values {
				if v == child {
					return true
				}
			}
			return false
		case *ast.CompositeLit, *ast.KeyValueExpr:
			return true
		case *ast.SendStmt:
			return a.Value == child
		case *ast.UnaryExpr:
			if a.Op == token.AND {
				return true // address escapes
			}
			return false
		case *ast.BinaryExpr:
			return false // comparisons/arithmetic read, they don't transfer
		default:
			return false
		}
		child = stack[i]
	}
	return false
}

// allBlank reports whether every expression is the blank identifier.
func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// refsObject reports whether any identifier under root resolves to obj.
func refsObject(pass *analysis.Pass, root ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// noReturnFuncs are calls that terminate the goroutine or process:
// control never reaches the next statement, so the CFG routes them to
// the panic exit.
var noReturnFuncs = map[string]bool{
	"os.Exit":        true,
	"runtime.Goexit": true,
	"log.Fatal":      true,
	"log.Fatalf":     true,
	"log.Fatalln":    true,
	"log.Panic":      true,
	"log.Panicf":     true,
	"log.Panicln":    true,
}

func noReturnCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := staticCallee(pass, call)
	return fn != nil && noReturnFuncs[funcKey(fn)]
}

// valueAcquisitions is the shared acquisition scanner for value-mode
// rules (cancelleak/bodyclose/mustclose): it finds matching calls in one
// CFG node and classifies how their results are bound.
//
//   - `res, err := acquire(...)` binds an obligation to res (and its
//     error sibling for branch refinement);
//   - binding the resource to `_`, or dropping the whole result
//     (`acquire(...)` as a statement), is wrong at birth — reported
//     immediately via discard;
//   - a call in any other position (return value, argument, field
//     store, composite literal) escapes at birth: ownership moved in
//     the same expression, nothing to track.
//
// match inspects a statically-resolved callee and reports the result
// index of the resource, the index of its error sibling (-1 if none),
// and the diagnostic name of the resource.
func valueAcquisitions(
	pass *analysis.Pass,
	node ast.Node,
	match func(fn *types.Func, sig *types.Signature) (resIdx, errIdx int, what string, ok bool),
	discard func(pass *analysis.Pass, call *ast.CallExpr, what string),
) []*oblig {
	var out []*oblig
	bind := func(lhs []ast.Expr, call *ast.CallExpr, resIdx, errIdx int, what string) {
		if resIdx >= len(lhs) {
			return
		}
		id, ok := ast.Unparen(lhs[resIdx]).(*ast.Ident)
		if !ok {
			return // stored straight into a field/element: escaped at birth
		}
		if id.Name == "_" {
			discard(pass, call, what)
			return
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			return
		}
		ob := &oblig{pos: call.Pos(), obj: obj, what: what}
		if errIdx >= 0 && errIdx < len(lhs) {
			if eid, ok := ast.Unparen(lhs[errIdx]).(*ast.Ident); ok && eid.Name != "_" {
				if eobj := pass.TypesInfo.Defs[eid]; eobj != nil {
					ob.errObj = eobj
				} else {
					ob.errObj = pass.TypesInfo.Uses[eid]
				}
			}
		}
		out = append(out, ob)
	}
	matchCall := func(call *ast.CallExpr) (int, int, string, bool) {
		fn := staticCallee(pass, call)
		if fn == nil {
			return 0, 0, "", false
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return 0, 0, "", false
		}
		return match(fn, sig)
	}
	switch n := node.(type) {
	case *ast.AssignStmt:
		if len(n.Rhs) == 1 {
			if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
				if resIdx, errIdx, what, ok := matchCall(call); ok {
					bind(n.Lhs, call, resIdx, errIdx, what)
				}
			}
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 1 {
					continue
				}
				call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr)
				if !ok {
					continue
				}
				if resIdx, errIdx, what, ok := matchCall(call); ok {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, name := range vs.Names {
						lhs[i] = name
					}
					bind(lhs, call, resIdx, errIdx, what)
				}
			}
		}
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
			if _, _, what, ok := matchCall(call); ok {
				discard(pass, call, what)
			}
		}
	}
	return out
}

// identReleaseCall matches `obj(...)`: a direct call of the tracked
// value (the cancel-func shape).
func identReleaseCall(pass *analysis.Pass, call *ast.CallExpr, ob *oblig) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == ob.obj
}

// methodReleaseCall matches `obj.<name>(...)` (mustclose's f.Close
// shape) and, with an intermediate field, `obj.<field>.<name>(...)`
// (bodyclose's resp.Body.Close shape when field is non-empty).
func methodReleaseCall(pass *analysis.Pass, call *ast.CallExpr, ob *oblig, field, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	x := ast.Unparen(sel.X)
	if field != "" {
		inner, isSel := x.(*ast.SelectorExpr)
		if !isSel || inner.Sel.Name != field {
			return false
		}
		x = ast.Unparen(inner.X)
	}
	id, isIdent := x.(*ast.Ident)
	return isIdent && pass.TypesInfo.Uses[id] == ob.obj
}
