package lint

import (
	"go/ast"
	"go/types"

	"geostat/internal/lint/analysis"
)

// CancelLeak verifies that every cancel func returned by
// context.WithCancel / WithTimeout / WithDeadline (and their *Cause
// variants) is called on every path to function exit, or escapes to a
// caller who will (returned, stored, passed on). A lost cancel pins the
// context's timer and child-goroutine bookkeeping for the lifetime of
// the parent context — in geostatd's single-flight and admission layers,
// which mint a detached context per coalesced flight and a deadline per
// tool budget, that is a slow per-request leak under exactly the hot-key
// load the coalescer exists for.
//
// This is the path-sensitive complement to ctxflow: ctxflow checks that
// contexts travel, cancelleak checks that their lifetimes end.
var CancelLeak = &analysis.Analyzer{
	Name: "cancelleak",
	Doc: "every context cancel func is called on all paths to return " +
		"(or escapes to the caller)",
	Run: runCancelLeak,
}

var cancelFuncSources = map[string]string{
	"context.WithCancel":        "context.WithCancel",
	"context.WithCancelCause":   "context.WithCancelCause",
	"context.WithTimeout":       "context.WithTimeout",
	"context.WithTimeoutCause":  "context.WithTimeoutCause",
	"context.WithDeadline":      "context.WithDeadline",
	"context.WithDeadlineCause": "context.WithDeadlineCause",
}

func runCancelLeak(pass *analysis.Pass) error {
	rule := &obRule{
		acquisitions: func(pass *analysis.Pass, node ast.Node) []*oblig {
			return valueAcquisitions(pass, node,
				func(fn *types.Func, sig *types.Signature) (int, int, string, bool) {
					src, ok := cancelFuncSources[funcKey(fn)]
					if !ok {
						return 0, 0, "", false
					}
					// (ctx, cancel) — the cancel func is result 1, no error.
					return 1, -1, "cancel func from " + src, true
				},
				func(pass *analysis.Pass, call *ast.CallExpr, what string) {
					pass.Reportf(call.Pos(),
						"%s is discarded; it must be called (or returned) to release the context's resources", what)
				})
		},
		isRelease: identReleaseCall,
		leak: func(ob *oblig) string {
			return ob.what + " is not called on every path to return; the leaked path pins the context's timer and children"
		},
	}
	return runObligations(pass, rule)
}
